"""Tests for Circuit compilation and the MNASystem evaluation layer."""

import numpy as np
import pytest

from repro.netlist import Circuit, DC, MultiTone, Sine


class TestCircuitBuilding:
    def test_node_ordering_first_appearance(self):
        ckt = Circuit()
        ckt.resistor("R1", "b", "a", 1.0)
        ckt.resistor("R2", "a", "c", 1.0)
        assert ckt.node_names() == ["b", "a", "c"]

    def test_ground_aliases_excluded(self):
        ckt = Circuit()
        ckt.resistor("R1", "a", "0", 1.0)
        ckt.resistor("R2", "a", "gnd", 1.0)
        ckt.resistor("R3", "a", "GND", 1.0)
        assert ckt.node_names() == ["a"]

    def test_duplicate_name_rejected(self):
        ckt = Circuit()
        ckt.resistor("R1", "a", "0", 1.0)
        with pytest.raises(ValueError, match="duplicate"):
            ckt.resistor("R1", "b", "0", 1.0)

    def test_membership_and_lookup(self):
        ckt = Circuit()
        r = ckt.resistor("R1", "a", "0", 1.0)
        assert "R1" in ckt
        assert ckt["R1"] is r
        assert len(ckt) == 1

    def test_branch_indices_after_nodes(self):
        ckt = Circuit()
        ckt.vsource("V1", "a", "0", 1.0)
        ckt.inductor("L1", "a", "b", 1e-9)
        sys = ckt.compile()
        assert sys.n == 4  # a, b + two branch currents
        assert sys.branch("V1") == 2
        assert sys.branch("L1") == 3

    def test_branch_lookup_missing(self):
        ckt = Circuit()
        ckt.resistor("R1", "a", "0", 1.0)
        sys = ckt.compile()
        with pytest.raises(KeyError):
            sys.branch("R1")


class TestMNAEvaluation:
    def make_rc(self):
        ckt = Circuit()
        ckt.vsource("V1", "in", "0", Sine(1.0, 1e6, offset=0.5))
        ckt.resistor("R1", "in", "out", 1e3)
        ckt.capacitor("C1", "out", "0", 1e-9)
        return ckt.compile()

    def test_f_linear(self):
        sys = self.make_rc()
        x = np.array([1.0, 0.25, 0.0])  # v_in, v_out, i_src
        f = sys.f(x)
        # KCL at out: (v_out - v_in)/R
        np.testing.assert_allclose(f[sys.node("out")], (0.25 - 1.0) / 1e3)

    def test_q_linear(self):
        sys = self.make_rc()
        x = np.array([1.0, 0.25, 0.0])
        q = sys.q(x)
        np.testing.assert_allclose(q[sys.node("out")], 0.25 * 1e-9)

    def test_b_scalar_and_vector(self):
        sys = self.make_rc()
        b0 = sys.b(0.0)
        assert b0.shape == (3,)
        bt = sys.b(np.array([0.0, 0.25e-6]))
        assert bt.shape == (3, 2)
        np.testing.assert_allclose(bt[:, 0], b0)
        # quarter period of 1 MHz: sin = 1 -> source = 1.5
        np.testing.assert_allclose(bt[sys.branch("V1"), 1], 1.5, rtol=1e-12)

    def test_b_dc_uses_offset(self):
        sys = self.make_rc()
        np.testing.assert_allclose(sys.b_dc()[sys.branch("V1")], 0.5)

    def test_source_frequencies_deduplicated(self):
        ckt = Circuit()
        ckt.vsource("V1", "a", "0", Sine(1.0, 1e6))
        ckt.isource("I1", "a", "0", Sine(1.0, 1e6))
        ckt.vsource("V2", "b", "0", MultiTone([(1.0, 2e6, 0.0), (0.1, 1e6, 0.0)]))
        ckt.resistor("R1", "a", "0", 1.0)
        ckt.resistor("R2", "b", "0", 1.0)
        sys = ckt.compile()
        assert sys.source_frequencies() == (1e6, 2e6)

    def test_batch_f_matches_columns(self):
        ckt = Circuit()
        ckt.vsource("V1", "in", "0", 1.0)
        ckt.resistor("R1", "in", "d", 100.0)
        ckt.diode("D1", "d", "0")
        sys = ckt.compile()
        rng = np.random.default_rng(0)
        X = 0.3 * rng.standard_normal((sys.n, 5))
        F = sys.f(X)
        for k in range(5):
            np.testing.assert_allclose(F[:, k], sys.f(X[:, k]), rtol=1e-12)

    def test_point_jacobian_matches_fd(self):
        ckt = Circuit()
        ckt.vsource("V1", "in", "0", 1.0)
        ckt.resistor("R1", "in", "d", 100.0)
        ckt.diode("D1", "d", "0", tt=1e-9)
        sys = ckt.compile()
        x = np.array([1.0, 0.4, -1e-3])
        G = sys.G(x).toarray()
        C = sys.C(x).toarray()
        h = 1e-7
        for j in range(sys.n):
            xp, xm = x.copy(), x.copy()
            xp[j] += h
            xm[j] -= h
            np.testing.assert_allclose(
                G[:, j], (sys.f(xp) - sys.f(xm)) / (2 * h), rtol=1e-4, atol=1e-9
            )
            np.testing.assert_allclose(
                C[:, j], (sys.q(xp) - sys.q(xm)) / (2 * h), rtol=1e-4, atol=1e-15
            )

    def test_batch_jacobian_matches_point(self):
        ckt = Circuit()
        ckt.vsource("V1", "in", "0", 1.0)
        ckt.resistor("R1", "in", "d", 100.0)
        ckt.diode("D1", "d", "0", cj0=1e-12)
        sys = ckt.compile()
        rng = np.random.default_rng(1)
        X = 0.3 * rng.standard_normal((sys.n, 4))
        rows, cols = sys.jacobian_pattern()
        g_vals, c_vals = sys.batch_jacobians(X)
        import scipy.sparse as sp

        for k in range(4):
            G_batch = sp.csr_matrix((g_vals[:, k], (rows, cols)), shape=(sys.n, sys.n))
            np.testing.assert_allclose(
                G_batch.toarray(), sys.G(X[:, k]).toarray(), rtol=1e-12, atol=1e-15
            )
            C_batch = sp.csr_matrix((c_vals[:, k], (rows, cols)), shape=(sys.n, sys.n))
            np.testing.assert_allclose(
                C_batch.toarray(), sys.C(X[:, k]).toarray(), rtol=1e-12, atol=1e-20
            )

    def test_noise_injection_vectors(self):
        ckt = Circuit()
        ckt.resistor("R1", "a", "0", 1e3)
        ckt.resistor("R2", "a", "b", 1e3)
        sys = ckt.compile()
        inj = sys.noise_injection_vectors()
        assert len(inj) == 2
        src, u = inj[1]  # R2 couples a and b
        assert u[sys.node("a")] == 1.0
        assert u[sys.node("b")] == -1.0


class TestKCLStructure:
    def test_current_conservation_through_source(self, resistive_divider):
        """Sum of KCL equations implies source current equals loop current."""
        from repro.analysis import dc_analysis

        sys = resistive_divider
        x = dc_analysis(sys).x
        i_src = x[sys.branch("V1")]
        np.testing.assert_allclose(i_src, -10.0 / 2000.0, rtol=1e-9)

    def test_inductor_dc_short(self):
        from repro.analysis import dc_analysis

        ckt = Circuit()
        ckt.vsource("V1", "a", "0", 1.0)
        ckt.resistor("R1", "a", "b", 100.0)
        ckt.inductor("L1", "b", "0", 1e-6)
        sys = ckt.compile()
        x = dc_analysis(sys).x
        np.testing.assert_allclose(x[sys.node("b")], 0.0, atol=1e-9)
        np.testing.assert_allclose(x[sys.branch("L1")], 0.01, rtol=1e-9)
