"""Tests for vector fitting and the data -> model -> co-simulation path."""

import numpy as np
import pytest

from repro.analysis import ac_analysis
from repro.netlist import Circuit, Sine
from repro.rom import ReducedOrderBlock, vector_fit
from repro.rom.vecfit import initial_poles


def rational(s, poles, residues, d=0.0):
    out = np.full(np.asarray(s).shape, d, dtype=complex)
    for p, r in zip(poles, residues):
        out = out + r / (s - p)
    return out


class TestVectorFit:
    def test_exact_recovery_mixed_poles(self):
        poles = np.array([-1e9 + 2e9j, -1e9 - 2e9j, -5e8])
        res = np.array([1e8 + 5e7j, 1e8 - 5e7j, 2e8])
        f = np.geomspace(1e7, 1e10, 150)
        s = 2j * np.pi * f
        H = rational(s, poles, res, d=1e-3)
        fit = vector_fit(f, H, n_poles=3)
        assert fit.rms_error < 1e-6
        np.testing.assert_allclose(
            np.sort(fit.poles.real), np.sort(poles.real), rtol=1e-4
        )
        np.testing.assert_allclose(fit.d, 1e-3, rtol=1e-3)

    def test_two_resonance_fit(self):
        poles = np.array(
            [-2e8 + 5e9j, -2e8 - 5e9j, -4e8 + 1.5e10j, -4e8 - 1.5e10j]
        )
        res = np.array([3e8, 3e8, 1e8 - 2e8j, 1e8 + 2e8j])
        f = np.geomspace(1e8, 1e11, 300)
        s = 2j * np.pi * f
        H = rational(s, poles, res)
        fit = vector_fit(f, H, n_poles=4, fit_d=False)
        assert fit.rms_error < 1e-5

    def test_stability_enforced(self):
        # noisy data that tempts unstable poles
        rng = np.random.default_rng(0)
        f = np.geomspace(1e6, 1e9, 100)
        s = 2j * np.pi * f
        H = rational(s, np.array([-1e7]), np.array([1e7])) * (
            1 + 0.05 * rng.standard_normal(f.size)
        )
        fit = vector_fit(f, H, n_poles=4)
        assert np.all(fit.poles.real <= 0)

    def test_more_poles_reduce_error_on_real_data(self):
        from repro.em import SpiralInductor, SubstrateModel

        coil = SpiralInductor(
            turns=3, outer=200e-6, width=10e-6, spacing=5e-6, thickness=1e-6,
            nw=1, nt=1, substrate=SubstrateModel(), max_segment_length=100e-6,
        )
        freqs = np.geomspace(0.05e9, 10e9, 50)
        Z, _, _ = coil.sweep(freqs)
        Y = 1.0 / Z
        err = [vector_fit(freqs, Y, n_poles=n).rms_error for n in (2, 6, 10)]
        assert err[1] < err[0]
        assert err[2] <= err[1] * 1.5
        assert err[2] < 0.05

    def test_initial_poles_cover_band(self):
        poles = initial_poles([1e6, 1e9], 6)
        assert poles.size == 6
        assert np.all(poles.real < 0)
        freqs = np.abs(poles.imag[poles.imag > 0]) / (2 * np.pi)
        assert freqs.min() < 1e7 and freqs.max() > 1e8

    def test_transfer_evaluation(self):
        poles = np.array([-1e6])
        res = np.array([2e6])
        f = np.geomspace(1e4, 1e8, 50)
        fit = vector_fit(f, rational(2j * np.pi * f, poles, res), n_poles=1)
        s_test = np.array([0.0 + 1j * 2 * np.pi * 1e5])
        np.testing.assert_allclose(
            fit.transfer(s_test), rational(s_test, poles, res), rtol=1e-6
        )


class TestRealization:
    def test_reduced_system_matches_fit(self):
        poles = np.array([-1e9 + 3e9j, -1e9 - 3e9j, -2e8])
        res = np.array([2e8 - 1e8j, 2e8 + 1e8j, 5e7])
        f = np.geomspace(1e7, 1e10, 120)
        s = 2j * np.pi * f
        fit = vector_fit(f, rational(s, poles, res, d=2e-3), n_poles=3)
        rom = fit.to_reduced_system()
        np.testing.assert_allclose(
            rom.transfer(s)[:, 0, 0], fit.transfer(s), rtol=1e-8
        )
        # realization is real-valued
        for mat in (rom.C, rom.G, rom.B, rom.L, rom.D):
            assert not np.iscomplexobj(mat) or np.max(np.abs(np.imag(mat))) == 0

    def test_fitted_model_as_circuit_element(self):
        """Data -> vector fit -> ReducedOrderBlock -> AC simulation: the
        fitted admittance behaves like the network it was sampled from."""
        # sample the admittance of a series RLC branch to ground
        R, L, C = 10.0, 5e-9, 2e-12
        f0 = 1 / (2 * np.pi * np.sqrt(L * C))
        f = np.geomspace(0.1 * f0, 10 * f0, 200)
        s = 2j * np.pi * f
        Y = 1.0 / (R + s * L + 1.0 / (s * C))
        fit = vector_fit(f, Y, n_poles=2, fit_d=False)
        assert fit.rms_error < 1e-3
        rom = fit.to_reduced_system()

        host = Circuit("host")
        host.vsource("Vin", "src", "0", Sine(1.0, f0))
        host.resistor("Rs", "src", "port", 50.0)
        host.add(ReducedOrderBlock("Xfit", ["port"], rom))
        sys = host.compile()
        freqs_test = np.array([0.3 * f0, f0, 3 * f0])
        ac = ac_analysis(sys, "Vin", freqs_test)
        v = ac.voltage(sys, "port")
        expect = 1.0 / (1.0 + 50.0 * np.interp(freqs_test, f, np.real(Y)) \
                        + 1j * 50.0 * np.interp(freqs_test, f, np.imag(Y)))
        np.testing.assert_allclose(np.abs(v), np.abs(expect), rtol=2e-2)
        # at resonance the branch loads the divider hardest
        assert np.abs(v)[1] < np.abs(v)[0] and np.abs(v)[1] < np.abs(v)[2]


class TestCommonPoles:
    def test_shared_pole_multiport_fit(self):
        """All entries of a multiport share the structure's resonances."""
        from repro.rom import vector_fit_common_poles

        poles = np.array([-2e8 + 5e9j, -2e8 - 5e9j, -1e8 + 1.2e10j, -1e8 - 1.2e10j])
        f = np.geomspace(1e8, 5e10, 200)
        s = 2j * np.pi * f

        def resp(res):
            return sum(r / (s - p) for p, r in zip(poles, res))

        H11 = resp([3e8, 3e8, 1e8, 1e8])
        H21 = resp([1e8 - 2e8j, 1e8 + 2e8j, -5e7, -5e7])
        fits = vector_fit_common_poles(f, [H11, H21], n_poles=4, fit_d=False)
        assert fits[0].rms_error < 1e-4
        assert fits[1].rms_error < 1e-4
        np.testing.assert_allclose(fits[0].poles, fits[1].poles)
        np.testing.assert_allclose(
            np.sort(fits[0].poles.imag), np.sort(poles.imag), rtol=1e-3
        )

    def test_single_response_degenerates_to_siso(self):
        from repro.rom import vector_fit, vector_fit_common_poles

        poles = np.array([-1e8 + 3e9j, -1e8 - 3e9j])
        f = np.geomspace(1e8, 2e10, 120)
        s = 2j * np.pi * f
        H = sum(2e8 / (s - p) for p in poles)
        multi = vector_fit_common_poles(f, H, n_poles=2, fit_d=False)[0]
        siso = vector_fit(f, H, n_poles=2, fit_d=False)
        np.testing.assert_allclose(
            np.sort_complex(multi.poles), np.sort_complex(siso.poles), rtol=1e-6
        )
