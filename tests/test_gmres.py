"""Tests for the shared GMRES implementation."""

import numpy as np
import pytest

from repro.linalg import gmres


def dense_matvec(A):
    return lambda v: A @ v


class TestGMRESBasics:
    def test_identity(self):
        b = np.array([1.0, 2.0, 3.0])
        res = gmres(lambda v: v, b)
        assert res.converged
        np.testing.assert_allclose(res.x, b, atol=1e-10)

    def test_diagonal(self):
        d = np.array([1.0, 10.0, 100.0])
        b = np.array([1.0, 1.0, 1.0])
        res = gmres(lambda v: d * v, b, tol=1e-12)
        assert res.converged
        np.testing.assert_allclose(res.x, b / d, rtol=1e-9)

    def test_random_well_conditioned(self):
        rng = np.random.default_rng(0)
        A = np.eye(30) + 0.1 * rng.standard_normal((30, 30))
        x_true = rng.standard_normal(30)
        res = gmres(dense_matvec(A), A @ x_true, tol=1e-12)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, rtol=1e-8)

    def test_zero_rhs(self):
        res = gmres(lambda v: 2 * v, np.zeros(5))
        assert res.converged
        np.testing.assert_array_equal(res.x, np.zeros(5))

    def test_complex_system(self):
        rng = np.random.default_rng(1)
        A = np.eye(20) * (2 + 1j) + 0.1 * (
            rng.standard_normal((20, 20)) + 1j * rng.standard_normal((20, 20))
        )
        x_true = rng.standard_normal(20) + 1j * rng.standard_normal(20)
        res = gmres(dense_matvec(A), A @ x_true, tol=1e-12)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, rtol=1e-8)

    def test_initial_guess_exact(self):
        A = np.diag([1.0, 2.0, 3.0])
        x_true = np.array([1.0, 1.0, 1.0])
        res = gmres(dense_matvec(A), A @ x_true, x0=x_true)
        assert res.converged
        assert res.iterations == 0


class TestGMRESRestartsAndPrecond:
    def test_restart_still_converges(self):
        # clustered spectrum: restarted GMRES converges across cycles
        rng = np.random.default_rng(2)
        A = np.eye(50) + 0.1 * rng.standard_normal((50, 50))
        x_true = rng.standard_normal(50)
        res = gmres(dense_matvec(A), A @ x_true, restart=8, tol=1e-10, maxiter=2000)
        assert res.converged
        assert res.iterations > 8  # actually crossed a restart boundary
        np.testing.assert_allclose(res.x, x_true, rtol=1e-6)

    def test_preconditioner_reduces_iterations(self):
        # badly scaled diagonal with row-scaled coupling: the Jacobi
        # preconditioner restores a clustered spectrum
        n = 60
        rng = np.random.default_rng(3)
        d = np.geomspace(1.0, 1e6, n)
        # column-scaled coupling: right preconditioning (x = P y) scales
        # columns, so A @ diag(1/d) must be the well-conditioned matrix
        A = np.diag(d) + 0.01 * d[None, :] * rng.standard_normal((n, n))
        b = rng.standard_normal(n)
        plain = gmres(dense_matvec(A), b, tol=1e-10, restart=30, maxiter=600)
        precond = gmres(
            dense_matvec(A), b, tol=1e-10, restart=30, maxiter=600, precond=lambda v: v / d
        )
        assert precond.converged
        assert precond.iterations < plain.iterations or not plain.converged

    def test_true_residual_reported(self):
        rng = np.random.default_rng(4)
        A = np.eye(25) + 0.2 * rng.standard_normal((25, 25))
        b = rng.standard_normal(25)
        res = gmres(dense_matvec(A), b, tol=1e-11)
        r = np.linalg.norm(b - A @ res.x) / np.linalg.norm(b)
        assert r <= 1e-9

    def test_maxiter_cap(self):
        # rotation-like matrix that GMRES needs full dimension to solve
        n = 40
        A = np.diag(np.ones(n - 1), -1)
        A[0, -1] = 1.0
        b = np.zeros(n)
        b[0] = 1.0
        res = gmres(dense_matvec(A), b, tol=1e-14, restart=5, maxiter=12)
        assert res.iterations <= 12
        assert not res.converged

    def test_residual_history_monotone_within_cycle(self):
        rng = np.random.default_rng(5)
        A = np.eye(30) * 3 + 0.2 * rng.standard_normal((30, 30))
        b = rng.standard_normal(30)
        res = gmres(dense_matvec(A), b, tol=1e-12, restart=40)
        hist = np.array(res.residuals)
        assert np.all(np.diff(hist) <= 1e-12)


class TestHappyBreakdown:
    """Krylov-space exhaustion must terminate cleanly with the exact
    projected solution (regression: the subdiagonal entry used to be
    zeroed by the Givens rotation before the breakdown test read it)."""

    def test_low_degree_operator_breaks_down_early(self):
        # b has components along only 3 eigenvectors, so the Krylov
        # space is exhausted at dimension 3 even though n = 20
        n = 20
        d = np.ones(n)
        d[:3] = [2.0, 3.0, 5.0]
        b = np.zeros(n)
        b[:3] = [1.0, 1.0, 1.0]
        res = gmres(lambda v: d * v, b, tol=1e-12, restart=10, maxiter=50)
        assert res.converged
        assert res.iterations <= 4
        np.testing.assert_allclose(res.x, b / d, atol=1e-10)
        assert np.isfinite(res.residuals).all()

    def test_exact_solution_in_one_step(self):
        # A = I: the very first Arnoldi step exhausts the space
        b = np.array([1.0, -2.0, 3.0, 4.0])
        res = gmres(lambda v: v, b, tol=1e-14, restart=4)
        assert res.converged
        assert res.iterations == 1
        np.testing.assert_allclose(res.x, b, atol=1e-12)

    def test_breakdown_inside_larger_restart_window(self):
        # invariant subspace of dimension 5 inside a restart window of 16
        rng = np.random.default_rng(9)
        Q, _ = np.linalg.qr(rng.standard_normal((16, 16)))
        d = np.concatenate([[1.0, 2.0, 4.0, 8.0, 16.0], np.full(11, 3.0)])
        A = Q @ np.diag(d) @ Q.T
        b = Q[:, :5] @ np.array([1.0, 1.0, 1.0, 1.0, 1.0])
        res = gmres(lambda v: A @ v, b, tol=1e-12, restart=16, maxiter=64)
        assert res.converged
        assert res.iterations <= 6
        np.testing.assert_allclose(A @ res.x, b, atol=1e-9)


class TestExhaustedFinalReturnRecheck:
    """The final (maxiter-exhausted) return must recheck the true residual.

    The Arnoldi-recurrence estimate drifts away from ``||b - Ax|| / ||b||``
    when the matvec is inexact — exactly the compressed-operator setting
    (IES3 blocks, lossy preconditioners) robust_gmres ranks best iterates
    in.  Pre-fix, gmres returned the recurrence value as the final
    residual, which on this system is orders of magnitude optimistic.
    """

    @staticmethod
    def _quantized_system():
        # Inexact matvec modeling a compressed operator: quantize the
        # product to ~3 decimal digits.  The recurrence residual keeps
        # shrinking while the true residual stalls near the quantization
        # floor, so a single long cycle truncated by maxiter exits with
        # a recurrence estimate far below the truth.
        rng = np.random.default_rng(26)
        n = 100
        A = np.eye(n) * 2.0 + 0.5 * rng.standard_normal((n, n))
        b = rng.standard_normal(n)

        def matvec(v):
            w = A @ v
            q = 1e-3 * np.max(np.abs(w))
            return np.round(w / q) * q if q > 0 else w

        return matvec, b

    def test_final_residual_is_true_residual_on_exhaustion(self):
        matvec, b = self._quantized_system()
        n = b.size
        res = gmres(matvec, b, tol=1e-12, restart=n, maxiter=n - 2)
        true_rel = np.linalg.norm(b - matvec(res.x)) / np.linalg.norm(b)
        # the reported residual must match reality, not the recurrence
        assert res.final_residual == pytest.approx(true_rel, rel=0.5)
        # and the verdict must follow the true residual
        assert res.converged == (true_rel <= 1e-12)

    def test_exhaustion_never_claims_unearned_convergence(self):
        matvec, b = self._quantized_system()
        n = b.size
        res = gmres(matvec, b, tol=1e-12, restart=n, maxiter=n - 2)
        assert not res.converged
        assert res.final_residual > 1e-12

    def test_maxiter_zero_with_exact_initial_guess(self):
        # maxiter=0 skips the loop entirely; the final return alone must
        # notice that x0 already solves the system
        A = np.diag([2.0, 3.0, 4.0])
        x_true = np.array([1.0, -1.0, 0.5])
        b = A @ x_true
        res = gmres(lambda v: A @ v, b, x0=x_true, tol=1e-10, maxiter=0)
        assert res.converged
        assert res.final_residual <= 1e-10

    def test_converged_path_unaffected(self):
        rng = np.random.default_rng(3)
        A = np.eye(40) + 0.1 * rng.standard_normal((40, 40))
        x_true = rng.standard_normal(40)
        res = gmres(lambda v: A @ v, A @ x_true, tol=1e-12)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, rtol=1e-8)
