"""Tests for the MoM and FD field solvers (the Table 1 pair)."""

import numpy as np
import pytest

from repro.em import (
    EPS0,
    Box,
    FDLaplaceSolver,
    capacitance_matrix,
    conductor_bus,
    make_plate,
    parallel_plates,
)


class TestMoM:
    def test_unit_square_plate_capacitance(self):
        """Literature value: C of a 1 m square plate ~ 40.8 pF (0.367 * 4 pi eps0)."""
        res = capacitance_matrix(make_plate(1.0, 1.0, 12, 12), compute_condition=False)
        c = res.self_capacitance(0)
        assert 38e-12 < c < 41.5e-12

    def test_plate_capacitance_scales_linearly_with_size(self):
        c1 = capacitance_matrix(
            make_plate(1.0, 1.0, 8, 8), compute_condition=False
        ).self_capacitance(0)
        c2 = capacitance_matrix(
            make_plate(2.0, 2.0, 8, 8), compute_condition=False
        ).self_capacitance(0)
        np.testing.assert_allclose(c2 / c1, 2.0, rtol=1e-6)

    def test_parallel_plates_exceed_ideal(self):
        res = capacitance_matrix(parallel_plates(1.0, 0.1, 10), compute_condition=False)
        ideal = EPS0 * 1.0 / 0.1
        c = res.coupling(0, 1)
        assert ideal < c < 1.4 * ideal  # ideal + fringe

    def test_fringe_shrinks_with_gap(self):
        def excess(gap):
            res = capacitance_matrix(
                parallel_plates(1.0, gap, 8), compute_condition=False
            )
            return res.coupling(0, 1) / (EPS0 / gap) - 1.0

        assert excess(0.05) < excess(0.2)

    def test_cap_matrix_symmetric(self):
        panels = conductor_bus(3, 1e-6, 20e-6, 3e-6, 1, 8)
        res = capacitance_matrix(panels, compute_condition=False)
        np.testing.assert_allclose(res.cap_matrix, res.cap_matrix.T, rtol=1e-6)

    def test_cap_matrix_diagonally_dominant(self):
        panels = conductor_bus(3, 1e-6, 20e-6, 3e-6, 1, 8)
        C = capacitance_matrix(panels, compute_condition=False).cap_matrix
        for i in range(3):
            assert C[i, i] > 0
            assert C[i, i] >= np.sum(np.abs(C[i])) - C[i, i] - 1e-18

    def test_nearest_neighbour_coupling_strongest(self):
        panels = conductor_bus(3, 1e-6, 20e-6, 3e-6, 1, 8)
        res = capacitance_matrix(panels, compute_condition=False)
        assert res.coupling(0, 1) > res.coupling(0, 2) > 0

    def test_well_conditioned(self):
        res = capacitance_matrix(make_plate(1.0, 1.0, 8, 8))
        assert res.condition_number < 1e3  # integral operators: good conditioning

    def test_ground_plane_increases_self_capacitance(self):
        plate = make_plate(10e-6, 10e-6, 6, 6, center=(0, 0, 1e-6))
        free = capacitance_matrix(plate, compute_condition=False)
        grounded = capacitance_matrix(plate, ground_plane=True, compute_condition=False)
        assert grounded.self_capacitance(0) > free.self_capacitance(0)


class TestFDSolver:
    @pytest.fixture(scope="class")
    def two_plate_solver(self):
        return FDLaplaceSolver(
            domain=(1.0, 1.0, 1.0),
            shape=(19, 19, 19),
            boxes=[
                Box(lo=(0.3, 0.3, 0.35), hi=(0.7, 0.7, 0.40), conductor=0),
                Box(lo=(0.3, 0.3, 0.60), hi=(0.7, 0.7, 0.65), conductor=1),
            ],
        )

    def test_capacitance_reasonable(self, two_plate_solver):
        res = two_plate_solver.solve(estimate_condition=False)
        # surface separation 0.2; coarse grid + fringe bound the result
        ideal = EPS0 * 0.16 / 0.2
        c12 = -res.cap_matrix[0, 1]
        assert 0.7 * ideal < c12 < 2.5 * ideal

    def test_matrix_is_sparse_but_large(self, two_plate_solver):
        res = two_plate_solver.solve(estimate_condition=False)
        # volume discretization: unknowns >> surface panel counts
        assert res.unknowns > 4000
        assert res.matrix_nnz < 8 * res.unknowns  # 7-point stencil

    def test_symmetry(self, two_plate_solver):
        res = two_plate_solver.solve(estimate_condition=False)
        np.testing.assert_allclose(
            res.cap_matrix[0, 1], res.cap_matrix[1, 0], rtol=2e-2
        )

    def test_conditioning_degrades_with_refinement(self):
        def cond(shape):
            s = FDLaplaceSolver(
                domain=(1.0, 1.0, 1.0),
                shape=shape,
                boxes=[Box(lo=(0.4, 0.4, 0.4), hi=(0.6, 0.6, 0.6), conductor=0)],
            )
            return s.solve().condition_estimate

        c_coarse = cond((9, 9, 9))
        c_fine = cond((17, 17, 17))
        assert c_fine > 2.0 * c_coarse  # ~ h^-2 growth

    def test_agreement_with_mom_for_plates(self, two_plate_solver):
        """The differential and integral solvers agree on the same structure."""
        fd = two_plate_solver.solve(estimate_condition=False)
        mom = capacitance_matrix(
            parallel_plates(0.4, 0.2, 8), compute_condition=False
        )
        c_fd = -fd.cap_matrix[0, 1]
        c_mom = mom.coupling(0, 1)
        # same plate size/gap; boundary conditions differ (closed box vs
        # free space), so agreement is loose but the scale must match
        assert 0.5 < c_fd / c_mom < 2.0


class TestFastCapacitance:
    def test_matches_dense(self):
        from repro.em import capacitance_matrix_fast

        panels = conductor_bus(3, 2e-6, 60e-6, 6e-6, 2, 20)
        dense = capacitance_matrix(panels, compute_condition=False)
        fast = capacitance_matrix_fast(panels)
        np.testing.assert_allclose(
            fast.cap_matrix, dense.cap_matrix, rtol=1e-6
        )
        assert fast.matrix_nnz < dense.matrix_nnz

    def test_ground_plane_supported(self):
        from repro.em import capacitance_matrix_fast

        panels = conductor_bus(2, 2e-6, 60e-6, 6e-6, 2, 16)
        for p in panels:
            p.center = p.center + np.array([0.0, 0.0, 2e-6])
        free = capacitance_matrix_fast(panels, ground_plane=False)
        gnd = capacitance_matrix_fast(panels, ground_plane=True)
        assert gnd.self_capacitance(0) > free.self_capacitance(0)
