"""Tests for DC operating-point analysis."""

import numpy as np
import pytest

from repro.analysis import dc_analysis
from repro.linalg import ConvergenceError
from repro.netlist import Circuit, Sine


class TestLinearDC:
    def test_divider(self, resistive_divider):
        res = dc_analysis(resistive_divider)
        assert res.voltage(resistive_divider, "mid") == pytest.approx(5.0)
        assert res.strategy == "newton"
        assert res.residual_norm < 1e-9

    def test_sine_source_uses_dc_offset(self):
        ckt = Circuit()
        ckt.vsource("V1", "a", "0", Sine(1.0, 1e6, offset=2.0))
        ckt.resistor("R1", "a", "0", 1e3)
        sys = ckt.compile()
        res = dc_analysis(sys)
        assert res.voltage(sys, "a") == pytest.approx(2.0)

    def test_current_source(self):
        ckt = Circuit()
        ckt.isource("I1", "0", "a", 1e-3)
        ckt.resistor("R1", "a", "0", 1e3)
        sys = ckt.compile()
        res = dc_analysis(sys)
        assert res.voltage(sys, "a") == pytest.approx(1.0)

    def test_vcvs(self):
        ckt = Circuit()
        ckt.vsource("V1", "a", "0", 1.0)
        ckt.vcvs("E1", "b", "0", "a", "0", 5.0)
        ckt.resistor("R1", "a", "x", 1e3)
        ckt.resistor("Rx", "x", "0", 1e3)
        ckt.resistor("R2", "b", "0", 1e3)
        sys = ckt.compile()
        res = dc_analysis(sys)
        assert res.voltage(sys, "b") == pytest.approx(5.0)


class TestNonlinearDC:
    def test_diode_drop(self):
        ckt = Circuit()
        ckt.vsource("V1", "in", "0", 5.0)
        ckt.resistor("R1", "in", "d", 1e3)
        ckt.diode("D1", "d", "0")
        sys = ckt.compile()
        res = dc_analysis(sys)
        vd = res.voltage(sys, "d")
        assert 0.55 < vd < 0.8
        # KCL closure: resistor current equals diode current
        i_r = (5.0 - vd) / 1e3
        i_d = ckt["D1"].current(vd)[0]
        np.testing.assert_allclose(i_r, i_d, rtol=1e-6)

    def test_reverse_diode_blocks(self):
        ckt = Circuit()
        ckt.vsource("V1", "in", "0", -5.0)
        ckt.resistor("R1", "in", "d", 1e3)
        ckt.diode("D1", "d", "0")
        sys = ckt.compile()
        res = dc_analysis(sys)
        assert res.voltage(sys, "d") == pytest.approx(-5.0, abs=1e-3)

    def test_bjt_common_emitter(self):
        ckt = Circuit()
        ckt.vsource("Vcc", "vcc", "0", 5.0)
        ckt.vsource("Vb", "vb", "0", 0.7)
        ckt.resistor("Rb", "vb", "b", 10e3)
        ckt.resistor("Rc", "vcc", "c", 1e3)
        ckt.bjt("Q1", "c", "b", "0")
        sys = ckt.compile()
        res = dc_analysis(sys)
        vc = res.voltage(sys, "c")
        assert 0.0 < vc < 5.0  # transistor is conducting

    def test_diode_stack_needs_continuation(self):
        # a chain of diodes straight across a supply is a hard DC problem
        ckt = Circuit()
        ckt.vsource("V1", "n0", "0", 3.0)
        for k in range(4):
            ckt.diode(f"D{k}", f"n{k}", f"n{k+1}")
        ckt.resistor("Rl", "n4", "0", 10.0)
        sys = ckt.compile()
        res = dc_analysis(sys)
        assert res.residual_norm < 1e-6
        drops = [res.voltage(sys, f"n{k}") - res.voltage(sys, f"n{k+1}") for k in range(4)]
        # equal devices share the drop equally
        np.testing.assert_allclose(drops, drops[0], rtol=1e-6)

    def test_initial_guess_respected(self):
        ckt = Circuit()
        ckt.vsource("V1", "in", "0", 5.0)
        ckt.resistor("R1", "in", "d", 1e3)
        ckt.diode("D1", "d", "0")
        sys = ckt.compile()
        ref = dc_analysis(sys)
        warm = dc_analysis(sys, x0=ref.x)
        assert warm.iterations <= ref.iterations
        np.testing.assert_allclose(warm.x, ref.x, rtol=1e-8)


class TestMOSFETDC:
    def test_nmos_inverter(self):
        ckt = Circuit()
        ckt.vsource("Vdd", "vdd", "0", 3.0)
        ckt.vsource("Vg", "g", "0", 2.0)
        ckt.resistor("Rd", "vdd", "d", 10e3)
        ckt.mosfet("M1", "d", "g", "0", kp=2e-4, vth=0.5)
        sys = ckt.compile()
        res = dc_analysis(sys)
        vd = res.voltage(sys, "d")
        assert vd < 1.5  # strongly on, output pulled low
