"""Pre-flight validation tests + EM/ROM recovery under injected faults.

Covers the diagnostics layer end to end: every pathological fixture
(floating node, voltage-source loop, current-source cutset, zero-area
panel, tone mismatch, ...) must yield a structured
:class:`~repro.robust.diagnostics.Diagnostic` with its stable code;
``on_invalid="warn"`` must degrade gracefully; and the EM/ROM solve
paths must escalate through their recovery ladders when the fault
harness corrupts their operators.
"""

import warnings

import numpy as np
import pytest

from repro.analysis import dc_analysis, transient_analysis
from repro.analysis.shooting import shooting_analysis
from repro.em.fdsolver import Box, FDLaplaceSolver
from repro.em.geometry import Panel, Segment, make_plate
from repro.em.ies3 import compress_operator
from repro.em.mom import capacitance_matrix, capacitance_matrix_fast
from repro.em.peec import SpiralInductor
from repro.hb import harmonic_balance
from repro.netlist import Circuit, NetlistError, Sine, parse_netlist
from repro.robust import (
    FaultClock,
    FaultyMNASystem,
    ValidationError,
    ValidationReport,
    enforce,
    inject_error,
    inject_nan,
    robust_direct_solve,
)
from repro.robust.validate import (
    lint_analysis,
    lint_circuit,
    lint_fd_grid,
    lint_mna,
    lint_panels,
    lint_segments,
    preflight,
)
from repro.rom.krylov import arnoldi
from repro.rom.statespace import DescriptorSystem


# ---------------------------------------------------------------------------
# topology lint fixtures
# ---------------------------------------------------------------------------


def healthy_circuit():
    ckt = Circuit("healthy")
    ckt.vsource("V1", "in", "0", 1.0)
    ckt.resistor("R1", "in", "out", 1e3)
    ckt.capacitor("C1", "out", "0", 1e-9)
    ckt.resistor("R2", "out", "0", 1e4)
    return ckt


def test_healthy_circuit_lints_clean():
    rep = lint_circuit(healthy_circuit())
    assert rep.ok
    assert len(rep) == 0


def test_floating_subgraph_detected():
    ckt = healthy_circuit()
    ckt.resistor("R9", "a", "b", 1e3)  # island, no path to ground
    rep = lint_circuit(ckt)
    assert rep.has("TOPO_FLOATING_SUBGRAPH")
    diag = rep.by_code("TOPO_FLOATING_SUBGRAPH")[0]
    assert diag.severity == "error"
    assert diag.suggestion  # a concrete fix is proposed
    with pytest.raises(ValidationError) as err:
        ckt.compile(on_invalid="raise")
    assert err.value.report.has("TOPO_FLOATING_SUBGRAPH")


def test_vsource_loop_detected():
    ckt = Circuit("vloop")
    ckt.vsource("V1", "a", "0", 1.0)
    ckt.vsource("V2", "a", "0", 2.0)
    ckt.resistor("R1", "a", "0", 1e3)
    rep = lint_circuit(ckt)
    assert rep.has("TOPO_VSOURCE_LOOP")
    assert rep.by_code("TOPO_VSOURCE_LOOP")[0].severity == "error"


def test_inductor_loop_detected():
    ckt = Circuit("lloop")
    ckt.vsource("V1", "a", "0", 1.0)
    ckt.resistor("R1", "a", "b", 10.0)
    ckt.inductor("L1", "b", "0", 1e-9)
    ckt.inductor("L2", "b", "0", 2e-9)
    rep = lint_circuit(ckt)
    assert rep.has("TOPO_INDUCTOR_LOOP")


def test_current_cutset_detected():
    ckt = Circuit("cutset")
    ckt.isource("I1", "x", "0", 1e-3)
    ckt.capacitor("C1", "x", "0", 1e-12)  # no DC return path
    rep = lint_circuit(ckt)
    assert rep.has("TOPO_CURRENT_CUTSET")
    assert rep.by_code("TOPO_CURRENT_CUTSET")[0].severity == "error"


def test_dangling_node_is_warning_only():
    ckt = healthy_circuit()
    ckt.resistor("R9", "out", "stub", 1e3)
    rep = lint_circuit(ckt)
    assert rep.has("TOPO_DANGLING_NODE")
    assert rep.ok  # warnings do not invalidate
    ckt.compile(on_invalid="raise")  # and do not raise


def test_no_ground_detected():
    ckt = Circuit("noground")
    ckt.resistor("R1", "a", "b", 1e3)
    ckt.capacitor("C1", "a", "b", 1e-12)
    rep = lint_circuit(ckt)
    assert rep.has("TOPO_NO_GROUND")


def test_nonfinite_device_param_detected():
    ckt = healthy_circuit()
    ckt.resistor("R9", "in", "0", float("nan"))
    rep = lint_circuit(ckt)
    assert rep.has("DEV_NONFINITE_PARAM")
    assert "R9" in rep.by_code("DEV_NONFINITE_PARAM")[0].location


# ---------------------------------------------------------------------------
# on_invalid policy
# ---------------------------------------------------------------------------


def broken_circuit():
    ckt = healthy_circuit()
    ckt.resistor("R9", "a", "b", 1e3)
    return ckt


def test_on_invalid_warn_degrades_gracefully():
    ckt = broken_circuit()
    with pytest.warns(RuntimeWarning, match="TOPO_FLOATING_SUBGRAPH"):
        system = ckt.compile(on_invalid="warn")
    # the report still travels with the compiled system
    assert system.validation is not None
    assert system.validation.has("TOPO_FLOATING_SUBGRAPH")


def test_on_invalid_ignore_attaches_report_silently():
    ckt = broken_circuit()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        system = ckt.compile(on_invalid="ignore")
    assert system.validation.has("TOPO_FLOATING_SUBGRAPH")


def test_on_invalid_default_compile_records_only():
    system = broken_circuit().compile()
    assert system.validation.has("TOPO_FLOATING_SUBGRAPH")


def test_on_invalid_rejects_unknown_mode():
    rep = ValidationReport()
    with pytest.raises(ValueError, match="on_invalid"):
        enforce(rep, "explode")


def test_dc_analysis_attaches_validation():
    sys_ = healthy_circuit().compile()
    res = dc_analysis(sys_)
    assert res.validation is not None and res.validation.ok


def test_dc_analysis_raises_on_invalid_input():
    sys_ = broken_circuit().compile()
    with pytest.raises(ValidationError):
        dc_analysis(sys_, on_invalid="raise")


# ---------------------------------------------------------------------------
# analysis-setup lint
# ---------------------------------------------------------------------------


def test_transient_nonpositive_timestep():
    sys_ = healthy_circuit().compile()
    with pytest.raises(ValidationError) as err:
        transient_analysis(sys_, t_stop=1e-6, dt=0.0)
    assert err.value.report.has("AN_TIMESTEP_NONPOSITIVE")


def test_transient_coarse_timestep_warns_not_raises():
    ckt = Circuit("fast")
    ckt.vsource("V1", "in", "0", Sine(1.0, 1e9))
    ckt.resistor("R1", "in", "0", 50.0)
    sys_ = ckt.compile()
    rep = preflight(sys_, "transient", dt=1e-8, t_stop=1e-6)
    assert rep.has("AN_TIMESTEP_COARSE")
    assert rep.ok  # warning severity


def test_hb_tone_mismatch():
    ckt = Circuit("twotone")
    ckt.vsource("V1", "in", "0", Sine(1.0, 1e6))
    ckt.resistor("R1", "in", "0", 50.0)
    sys_ = ckt.compile()
    rep = lint_analysis(sys_, "hb", freqs=[1.7e6])
    assert rep.has("AN_TONE_MISMATCH")
    with pytest.raises(ValidationError):
        harmonic_balance(sys_, freqs=[1.7e6], harmonics=4)


def test_hb_zero_amplitude_probe_is_not_a_mismatch():
    ckt = Circuit("probe")
    ckt.vsource("V1", "in", "0", Sine(1.0, 1e6))
    ckt.vsource("Vprobe", "p", "0", Sine(0.0, 9e5))  # pnoise-style probe
    ckt.resistor("R1", "in", "0", 50.0)
    ckt.resistor("R2", "p", "0", 50.0)
    sys_ = ckt.compile()
    rep = lint_analysis(sys_, "hb", freqs=[1e6])
    assert not rep.has("AN_TONE_MISMATCH")


def test_shooting_nonpositive_period():
    sys_ = healthy_circuit().compile()
    with pytest.raises(ValidationError) as err:
        shooting_analysis(sys_, period=0.0)
    assert err.value.report.has("AN_PERIOD_NONPOSITIVE")


# ---------------------------------------------------------------------------
# MNA numerical-health probes
# ---------------------------------------------------------------------------


def test_mna_probe_clean_circuit():
    sys_ = healthy_circuit().compile()
    rep = lint_mna(sys_)
    assert rep.ok


def test_mna_probe_flags_poor_scaling():
    ckt = Circuit("scaling")
    ckt.vsource("V1", "a", "0", 1.0)
    ckt.resistor("R1", "a", "b", 1e-12)
    ckt.resistor("R2", "b", "0", 1e12)
    sys_ = ckt.compile()
    rep = lint_mna(sys_)
    assert rep.has("MNA_POOR_SCALING") or rep.has("MNA_ILL_CONDITIONED")


def test_preflight_skips_numeric_probe_on_fault_proxy():
    sys_ = healthy_circuit().compile()
    clock = FaultClock(start=1, count=None)
    proxy = FaultyMNASystem(sys_, G=inject_nan(sys_.G, clock))
    rep = preflight(proxy, "dc", numeric=True)
    assert rep.ok
    assert clock.calls == 0  # lint never consumed the fault schedule


# ---------------------------------------------------------------------------
# EM geometry lint
# ---------------------------------------------------------------------------


def zero_area_panel():
    return Panel(np.zeros(3), np.zeros(3), np.array([0.0, 1e-6, 0.0]))


def test_zero_area_panel_detected():
    panels = make_plate(1e-3, 1e-3, 2, 2) + [zero_area_panel()]
    rep = lint_panels(panels)
    assert rep.has("EM_ZERO_AREA_PANEL")
    with pytest.raises(ValidationError):
        capacitance_matrix(panels)


def test_overlapping_panels_detected():
    p = make_plate(1e-3, 1e-3, 2, 2)
    rep = lint_panels(p + [p[0]])
    assert rep.has("EM_OVERLAPPING_PANELS")


def test_extreme_aspect_panel_warns():
    skinny = Panel(np.zeros(3), np.array([1e-3, 0, 0]), np.array([0, 1e-9, 0]))
    rep = lint_panels([skinny])
    assert rep.has("EM_EXTREME_ASPECT")


def test_zero_length_segment_detected():
    segs = [Segment(np.zeros(3), np.zeros(3), 1e-6, 1e-6)]
    rep = lint_segments(segs)
    assert rep.has("EM_ZERO_LENGTH_SEGMENT")


def test_fd_inverted_box_detected():
    rep = lint_fd_grid((1.0, 1.0, 1.0), (10, 10, 10),
                       [Box((0.7, 0.3, 0.3), (0.3, 0.7, 0.7), 0)])
    assert rep.has("FD_BOX_INVERTED")
    with pytest.raises(ValidationError):
        FDLaplaceSolver((1.0, 1.0, 1.0), (10, 10, 10),
                        [Box((0.7, 0.3, 0.3), (0.3, 0.7, 0.7), 0)])


def test_fd_solver_warn_mode_still_builds():
    with pytest.warns(RuntimeWarning, match="FD_BOX_INVERTED"):
        solver = FDLaplaceSolver(
            (1.0, 1.0, 1.0), (10, 10, 10),
            [Box((0.7, 0.3, 0.3), (0.3, 0.7, 0.7), 0)],
            on_invalid="warn",
        )
    assert solver.validation is not None and not solver.validation.ok


def test_spiral_inductor_carries_validation():
    coil = SpiralInductor(turns=2, nw=1, nt=1)
    assert coil.validation is not None and coil.validation.ok


# ---------------------------------------------------------------------------
# parser line numbers (satellite 1) and branch() message (satellite 2)
# ---------------------------------------------------------------------------


def test_parse_error_carries_line_and_file():
    text = "title card\nV1 in 0 1.0\nR1 in out garbage\n.end\n"
    with pytest.raises(NetlistError) as err:
        parse_netlist(text, filename="bad.cir")
    assert err.value.line_no == 3
    assert err.value.filename == "bad.cir"
    assert "bad.cir:3" in str(err.value)


def test_parse_error_too_few_fields_located():
    text = "title card\nR1 in\n.end\n"
    with pytest.raises(NetlistError) as err:
        parse_netlist(text)
    assert err.value.line_no == 2
    assert "line 2" in str(err.value)


def test_branch_keyerror_lists_available_devices():
    sys_ = healthy_circuit().compile()
    with pytest.raises(KeyError) as err:
        sys_.branch("R1")  # resistors carry no branch current
    assert "V1" in str(err.value)


# ---------------------------------------------------------------------------
# CLI linter
# ---------------------------------------------------------------------------


def test_cli_lints_bundled_netlists(tmp_path, capsys):
    from repro.validate import main

    import pathlib

    netlists = sorted(
        str(p)
        for p in (pathlib.Path(__file__).parent.parent / "examples" / "netlists").glob("*.cir")
    )
    assert netlists, "bundled example netlists must exist"
    assert main(netlists) == 0

    bad = tmp_path / "bad.cir"
    bad.write_text("fixture\nV1 a 0 1.0\nV2 a 0 2.0\nR1 a 0 1k\n.end\n")
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "TOPO_VSOURCE_LOOP" in out


def test_cli_reports_parse_errors_without_crashing(tmp_path, capsys):
    from repro.validate import main

    bad = tmp_path / "broken.cir"
    bad.write_text("fixture\nR1 in out nonsense\n.end\n")
    assert main([str(bad)]) == 1
    assert "PARSE_ERROR" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# EM recovery under injected faults
# ---------------------------------------------------------------------------


def fd_case():
    return FDLaplaceSolver(
        (1.0, 1.0, 1.0), (8, 8, 8),
        [Box((0.3, 0.3, 0.4), (0.7, 0.7, 0.6), 0)],
    )


def test_fd_solver_recovers_from_poisoned_matvec():
    clean = fd_case().solve(estimate_condition=False)
    solver = fd_case()
    clock = FaultClock(start=1, count=1)
    solver._matvec = inject_nan(solver._matvec, clock)
    res = solver.solve(estimate_condition=False)
    assert clock.fired == 1
    cg = [a for a in res.report.attempts if a.strategy == "cg"]
    assert cg and not cg[0].converged
    assert res.report.converged  # a GMRES rung rescued the solve
    assert np.allclose(res.cap_matrix, clean.cap_matrix, rtol=1e-4)


def test_fd_report_records_clean_cg_fast_path():
    res = fd_case().solve(estimate_condition=False)
    assert res.report.converged
    assert res.report.attempts[0].strategy == "cg"
    assert res.report.attempts[0].converged


def test_ies3_solve_recovers_from_injected_error():
    panels = make_plate(1e-3, 1e-3, 6, 6)
    from repro.em.kernels import PanelKernel

    kern = PanelKernel(panels)
    op = compress_operator(kern.block, kern.centers, leaf_size=8)
    rhs = np.ones(op.n)
    clean = op.solve(rhs, tol=1e-10)
    assert clean.converged

    clock = FaultClock(start=1, count=1)
    op.matvec = inject_error(op.matvec, clock)
    res = op.solve(rhs, tol=1e-10)
    assert clock.fired == 1
    assert res.converged
    assert not res.report.attempts[0].converged  # first rung took the fault
    assert res.report.attempts[-1].converged
    assert np.allclose(res.x, clean.x, rtol=1e-6)


def test_ies3_aca_svd_fallback_fires_on_rough_kernel():
    # oscillatory pseudo-random kernel: far-field blocks are numerically
    # full-rank, so the truncated ACA cross fails the sampled residual
    # check and the dense-SVD recompression path must take over
    n = 96
    points = np.zeros((n, 3))
    points[:, 0] = np.arange(n, dtype=float)

    def entry(rows, cols):
        r = np.asarray(rows, dtype=float)[:, None]
        c = np.asarray(cols, dtype=float)[None, :]
        return np.sin(12.9898 * r + 78.233 * c) * np.cos(3.7 * r * c + 1.3)

    op = compress_operator(entry, points, leaf_size=12, tol=1e-8, max_rank=4)
    assert op.stats.svd_fallback_blocks > 0


def test_mom_fast_carries_report_and_validation():
    panels = make_plate(1e-3, 1e-3, 4, 4)
    res = capacitance_matrix_fast(panels)
    assert res.validation is not None and res.validation.ok
    assert res.report is not None and res.report.converged


# ---------------------------------------------------------------------------
# ROM recovery
# ---------------------------------------------------------------------------


def test_robust_direct_solve_singular_consistent():
    A = np.diag([1.0, 1.0, 0.0])
    b = np.array([1.0, 2.0, 0.0])
    res = robust_direct_solve(A, b, on_failure="best_effort")
    assert res.converged
    assert res.report.strategy in ("gmres-jacobi", "lstsq")
    assert np.allclose(A @ res.x, b, atol=1e-8)


def test_descriptor_transfer_survives_pole_probe():
    G = np.diag([1.0, 1.0, 0.0])
    B = np.array([[1.0], [0.0], [0.0]])
    d = DescriptorSystem(C=np.zeros((3, 3)), G=G, B=B, L=B.copy())
    rep = ValidationReport()  # unused; transfer takes a SolveReport
    from repro.robust import SolveReport

    srep = SolveReport(analysis="rom")
    H = d.transfer([0.0], on_failure="best_effort", report=srep)
    assert np.all(np.isfinite(H))
    assert len(srep.attempts) >= 1
    assert np.isclose(H[0, 0, 0].real, 1.0)


def test_arnoldi_survives_singular_expansion_point():
    import scipy.sparse as sp

    G = sp.csr_matrix(np.diag([1.0, 2.0, 0.0]))
    C = sp.identity(3, format="csr")
    B = np.array([[1.0], [1.0], [0.0]])  # in the range of the singular G
    red = arnoldi(DescriptorSystem(C=C, G=G, B=B, L=B.copy()), q=2, s0=0.0)
    assert red.order >= 1
    assert np.all(np.isfinite(red.G))


def test_cli_json_output_machine_readable(tmp_path, capsys):
    """``--json`` emits one structured document scripts can consume."""
    import json

    from repro.validate import main

    good = tmp_path / "good.cir"
    good.write_text("fixture\nV1 in 0 1.0\nR1 in 0 1k\n.end\n")
    bad = tmp_path / "bad.cir"
    bad.write_text("fixture\nR1 in out nonsense\n.end\n")
    assert main(["--json", str(good), str(bad)]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is False
    assert doc["files"] == 2 and doc["failed"] == 1
    reports = {r["subject"]: r for r in doc["reports"]}
    assert reports[str(good)]["failed"] is False
    bad_rep = reports[str(bad)]
    assert bad_rep["failed"] is True and bad_rep["errors"] >= 1
    diag = next(d for d in bad_rep["diagnostics"] if d["code"] == "PARSE_ERROR")
    assert diag["severity"] == "error"
    assert diag["location"].startswith(str(bad))  # file:line for tooling


def test_cli_json_strict_promotes_warnings(tmp_path, capsys):
    import json

    from repro.validate import main

    # compiles fine but carries a warning-severity diagnostic (dangling
    # internal node)
    warny = tmp_path / "warny.cir"
    warny.write_text(
        "fixture\nV1 in 0 1.0\nR1 in mid 1k\nR2 mid 0 1k\nR3 mid dangle 1k\n.end\n"
    )
    assert main(["--json", str(warny)]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is True and doc["strict"] is False
    assert main(["--json", "--strict", str(warny)]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is False and doc["strict"] is True
    assert doc["reports"][0]["failed"] is True
    assert doc["reports"][0]["errors"] == 0  # warnings did the failing


def test_cli_exit_code_2_on_usage_error(capsys):
    from repro.validate import main

    assert main([]) == 2
    assert main(["--json"]) == 2
    assert "no netlist files" in capsys.readouterr().err
