"""Property-based tests (hypothesis) for cross-module invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.em import PanelKernel, capacitance_matrix, make_plate
from repro.em.clustertree import build_cluster_tree
from repro.linalg import gmres
from repro.mpde import Axis, MPDEGrid
from repro.netlist import Circuit, Sine
from repro.rom import DescriptorSystem, arnoldi, pvl

pos_r = st.floats(min_value=1.0, max_value=1e6)
pos_c = st.floats(min_value=1e-15, max_value=1e-6)


class TestCircuitInvariants:
    @given(
        r1=pos_r, r2=pos_r, r3=pos_r,
        v=st.floats(min_value=-10, max_value=10),
    )
    def test_divider_between_rails(self, r1, r2, r3, v):
        """Any resistive divider output lies between the rails."""
        from repro.analysis import dc_analysis

        ckt = Circuit()
        ckt.vsource("V1", "in", "0", v)
        ckt.resistor("R1", "in", "a", r1)
        ckt.resistor("R2", "a", "b", r2)
        ckt.resistor("R3", "b", "0", r3)
        sys = ckt.compile()
        res = dc_analysis(sys)
        lo, hi = min(0.0, v), max(0.0, v)
        assert lo - 1e-9 <= res.voltage(sys, "a") <= hi + 1e-9
        assert lo - 1e-9 <= res.voltage(sys, "b") <= hi + 1e-9

    @given(r=pos_r, c=pos_c)
    def test_kcl_residual_zero_at_dc_solution(self, r, c):
        from repro.analysis import dc_analysis

        ckt = Circuit()
        ckt.vsource("V1", "in", "0", 1.0)
        ckt.resistor("R1", "in", "out", r)
        ckt.capacitor("C1", "out", "0", c)
        ckt.diode("D1", "out", "0")
        sys = ckt.compile()
        res = dc_analysis(sys)
        assert np.linalg.norm(sys.f(res.x) - sys.b_dc()) < 1e-7

    @given(
        r=pos_r,
        c=pos_c,
        freq=st.floats(min_value=1e3, max_value=1e9),
    )
    def test_hb_matches_ac_for_linear_circuits(self, r, c, freq):
        """On a linear circuit HB and AC are the same analysis."""
        from repro.analysis import ac_analysis
        from repro.hb import harmonic_balance

        assume(r * c < 1.0)  # keep the pole in a sane range
        ckt = Circuit()
        ckt.vsource("V1", "in", "0", Sine(1.0, freq))
        ckt.resistor("R1", "in", "out", r)
        ckt.capacitor("C1", "out", "0", c)
        sys = ckt.compile()
        hb = harmonic_balance(sys, harmonics=2)
        ac = ac_analysis(sys, "V1", [freq])
        np.testing.assert_allclose(
            hb.amplitude_at("out", (1,)),
            abs(ac.voltage(sys, "out"))[0],
            rtol=1e-8,
        )


class TestGridProperties:
    @given(
        n=st.sampled_from([4, 8, 16, 32]),
        freq=st.floats(min_value=1e3, max_value=1e9),
        k=st.integers(min_value=1, max_value=3),
    )
    def test_spectral_derivative_exact_for_harmonics(self, n, freq, k):
        assume(k < n // 2)
        ax = Axis("fourier", freq, n)
        t = ax.times()
        y = np.cos(2 * np.pi * k * freq * t)
        dy = np.real(np.fft.ifft(np.fft.fft(y) * ax.deriv_eigenvalues()))
        expect = -2 * np.pi * k * freq * np.sin(2 * np.pi * k * freq * t)
        np.testing.assert_allclose(dy, expect, rtol=1e-7, atol=1e-3 * abs(expect).max())

    @given(
        n1=st.sampled_from([4, 8]),
        n2=st.sampled_from([4, 8, 16]),
    )
    def test_derivative_annihilates_constants_and_integrates_to_zero(self, n1, n2):
        grid = MPDEGrid([Axis("fourier", 1.0, n1), Axis("fd", 10.0, n2)])
        rng = np.random.default_rng(n1 * 100 + n2)
        X = rng.standard_normal((n1, n2, 2))
        dX = grid.apply_derivative(X)
        # mean of a periodic derivative over the grid vanishes
        np.testing.assert_allclose(dX.mean(axis=(0, 1)), 0.0, atol=1e-10)


class TestGMRESProperties:
    @given(
        n=st.integers(min_value=2, max_value=25),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_solves_random_diagonally_dominant(self, n, seed):
        rng = np.random.default_rng(seed)
        A = rng.standard_normal((n, n))
        A += np.diag(np.sign(np.diag(A)) * (np.abs(A).sum(axis=1) + 1.0))
        x_true = rng.standard_normal(n)
        res = gmres(lambda v: A @ v, A @ x_true, tol=1e-12, maxiter=10 * n)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, rtol=1e-6, atol=1e-9)


class TestEMProperties:
    @given(
        nx=st.integers(min_value=2, max_value=5),
        w=st.floats(min_value=0.5, max_value=3.0),
    )
    @settings(max_examples=10)
    def test_capacitance_matrix_symmetric_psd(self, nx, w):
        panels = make_plate(w, 1.0, nx, 3) + make_plate(
            w, 1.0, nx, 3, center=(0, 0, 0.4), conductor=1
        )
        C = capacitance_matrix(panels, compute_condition=False).cap_matrix
        np.testing.assert_allclose(C, C.T, rtol=1e-6)
        assert np.all(np.linalg.eigvalsh(0.5 * (C + C.T)) > -1e-18)
        assert C[0, 1] < 0 < C[0, 0]

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=15)
    def test_cluster_tree_partitions_points(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.standard_normal((rng.integers(5, 120), 3))
        tree = build_cluster_tree(pts, leaf_size=8)
        collected = []

        def walk(node):
            if node.is_leaf:
                collected.extend(node.indices.tolist())
            else:
                walk(node.left)
                walk(node.right)

        walk(tree)
        assert sorted(collected) == list(range(pts.shape[0]))


class TestROMProperties:
    @given(
        n=st.integers(min_value=4, max_value=20),
        q=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=20)
    def test_moment_matching_property(self, n, q, seed):
        """Arnoldi of order q matches >= q moments on random stable systems."""
        assume(q < n)
        rng = np.random.default_rng(seed)
        C = np.diag(rng.uniform(0.5, 2.0, n))
        G = np.diag(rng.uniform(0.5, 2.0, n)) + 0.3 * rng.standard_normal((n, n))
        assume(np.linalg.cond(G) < 1e6)
        B = rng.standard_normal((n, 1))
        L = rng.standard_normal((n, 1))
        desc = DescriptorSystem(C=C, G=G, B=B, L=L)
        rom = arnoldi(desc, q)
        m_full = desc.moments(q)[:, 0, 0]
        m_rom = rom.moments(q)[:, 0, 0]
        scale = np.abs(m_full) + 1e-12
        assert np.all(np.abs(m_rom - m_full) / scale < 1e-5)

    @given(
        n=st.integers(min_value=5, max_value=16),
        seed=st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=20)
    def test_pvl_exact_at_full_order(self, n, seed):
        """PVL at q = n reproduces the full transfer function."""
        rng = np.random.default_rng(seed)
        C = np.diag(rng.uniform(0.5, 2.0, n))
        G = np.diag(rng.uniform(1.0, 2.0, n)) + 0.2 * rng.standard_normal((n, n))
        assume(np.linalg.cond(G) < 1e5)
        B = rng.standard_normal((n, 1))
        L = rng.standard_normal((n, 1))
        desc = DescriptorSystem(C=C, G=G, B=B, L=L)
        rom = pvl(desc, n)
        s = 1j * np.array([0.1, 1.0, 3.0])
        np.testing.assert_allclose(
            rom.transfer(s)[:, 0, 0], desc.transfer(s)[:, 0, 0], rtol=1e-5, atol=1e-9
        )


class TestVectorFitProperties:
    @given(
        seed=st.integers(min_value=0, max_value=400),
        n_pairs=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=15)
    def test_random_stable_rational_roundtrip(self, seed, n_pairs):
        """Vector fitting recovers random stable rational functions."""
        from repro.rom import vector_fit

        rng = np.random.default_rng(seed)
        poles = []
        residues = []
        for _ in range(n_pairs):
            a = -rng.uniform(0.02, 0.5) * 1e9
            b = rng.uniform(0.5, 8.0) * 1e9
            r = (rng.uniform(0.1, 2.0) + 1j * rng.uniform(-1, 1)) * 1e8
            poles.extend([a + 1j * b, a - 1j * b])
            residues.extend([r, np.conj(r)])
        poles = np.array(poles)
        residues = np.array(residues)
        f = np.geomspace(1e7, 3e10, 240)
        s = 2j * np.pi * f
        H = np.zeros(f.size, dtype=complex)
        for p, r in zip(poles, residues):
            H += r / (s - p)
        fit = vector_fit(f, H, n_poles=poles.size, fit_d=False)
        assert fit.rms_error < 1e-4
        assert np.all(fit.poles.real <= 1e-6 * np.abs(fit.poles))
        # the realization reproduces the samples too
        rom = fit.to_reduced_system()
        np.testing.assert_allclose(
            rom.transfer(s)[:, 0, 0], H, rtol=2e-3, atol=1e-4 * np.max(np.abs(H))
        )


class TestTouchstoneRoundtripProperty:
    @given(
        ports=st.integers(min_value=1, max_value=4),
        m=st.integers(min_value=1, max_value=6),
        fmt=st.sampled_from(["RI", "MA", "DB"]),
        seed=st.integers(min_value=0, max_value=2**16),
        hint=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_write_read_roundtrip(self, tmp_path_factory, ports, m, fmt, seed, hint):
        """write_touchstone -> read_touchstone is identity within tolerance
        over formats x port counts, with and without the .sNp extension
        hint (the latter exercises the wrapped-row port inference)."""
        from repro.em import read_touchstone, write_touchstone

        rng = np.random.default_rng(seed)
        freqs = np.sort(rng.uniform(1e8, 1e10, m))
        assume(np.all(np.diff(freqs) > 0) or m == 1)
        S = 0.5 * rng.standard_normal((m, ports, ports)) + 0.5j * rng.standard_normal(
            (m, ports, ports)
        )
        d = tmp_path_factory.mktemp("ts")
        name = f"dut.s{ports}p" if hint else "dut.dat"
        path = str(d / name)
        write_touchstone(path, freqs, S, fmt=fmt)
        data = read_touchstone(path)
        assert data.num_ports == ports
        np.testing.assert_allclose(data.freqs, freqs, rtol=1e-8)
        np.testing.assert_allclose(data.S, S, rtol=1e-6, atol=1e-9)
