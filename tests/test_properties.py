"""Property-based tests (hypothesis) for cross-module invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.em import PanelKernel, capacitance_matrix, make_plate
from repro.em.clustertree import build_cluster_tree
from repro.linalg import gmres
from repro.mpde import Axis, MPDEGrid
from repro.netlist import Circuit, Sine
from repro.rom import DescriptorSystem, arnoldi, pvl

pos_r = st.floats(min_value=1.0, max_value=1e6)
pos_c = st.floats(min_value=1e-15, max_value=1e-6)


class TestCircuitInvariants:
    @given(
        r1=pos_r, r2=pos_r, r3=pos_r,
        v=st.floats(min_value=-10, max_value=10),
    )
    def test_divider_between_rails(self, r1, r2, r3, v):
        """Any resistive divider output lies between the rails."""
        from repro.analysis import dc_analysis

        ckt = Circuit()
        ckt.vsource("V1", "in", "0", v)
        ckt.resistor("R1", "in", "a", r1)
        ckt.resistor("R2", "a", "b", r2)
        ckt.resistor("R3", "b", "0", r3)
        sys = ckt.compile()
        res = dc_analysis(sys)
        lo, hi = min(0.0, v), max(0.0, v)
        assert lo - 1e-9 <= res.voltage(sys, "a") <= hi + 1e-9
        assert lo - 1e-9 <= res.voltage(sys, "b") <= hi + 1e-9

    @given(r=pos_r, c=pos_c)
    def test_kcl_residual_zero_at_dc_solution(self, r, c):
        from repro.analysis import dc_analysis

        ckt = Circuit()
        ckt.vsource("V1", "in", "0", 1.0)
        ckt.resistor("R1", "in", "out", r)
        ckt.capacitor("C1", "out", "0", c)
        ckt.diode("D1", "out", "0")
        sys = ckt.compile()
        res = dc_analysis(sys)
        assert np.linalg.norm(sys.f(res.x) - sys.b_dc()) < 1e-7

    @given(
        r=pos_r,
        c=pos_c,
        freq=st.floats(min_value=1e3, max_value=1e9),
    )
    def test_hb_matches_ac_for_linear_circuits(self, r, c, freq):
        """On a linear circuit HB and AC are the same analysis."""
        from repro.analysis import ac_analysis
        from repro.hb import harmonic_balance

        assume(r * c < 1.0)  # keep the pole in a sane range
        ckt = Circuit()
        ckt.vsource("V1", "in", "0", Sine(1.0, freq))
        ckt.resistor("R1", "in", "out", r)
        ckt.capacitor("C1", "out", "0", c)
        sys = ckt.compile()
        hb = harmonic_balance(sys, harmonics=2)
        ac = ac_analysis(sys, "V1", [freq])
        np.testing.assert_allclose(
            hb.amplitude_at("out", (1,)),
            abs(ac.voltage(sys, "out"))[0],
            rtol=1e-8,
        )


class TestGridProperties:
    @given(
        n=st.sampled_from([4, 8, 16, 32]),
        freq=st.floats(min_value=1e3, max_value=1e9),
        k=st.integers(min_value=1, max_value=3),
    )
    def test_spectral_derivative_exact_for_harmonics(self, n, freq, k):
        assume(k < n // 2)
        ax = Axis("fourier", freq, n)
        t = ax.times()
        y = np.cos(2 * np.pi * k * freq * t)
        dy = np.real(np.fft.ifft(np.fft.fft(y) * ax.deriv_eigenvalues()))
        expect = -2 * np.pi * k * freq * np.sin(2 * np.pi * k * freq * t)
        np.testing.assert_allclose(dy, expect, rtol=1e-7, atol=1e-3 * abs(expect).max())

    @given(
        n1=st.sampled_from([4, 8]),
        n2=st.sampled_from([4, 8, 16]),
    )
    def test_derivative_annihilates_constants_and_integrates_to_zero(self, n1, n2):
        grid = MPDEGrid([Axis("fourier", 1.0, n1), Axis("fd", 10.0, n2)])
        rng = np.random.default_rng(n1 * 100 + n2)
        X = rng.standard_normal((n1, n2, 2))
        dX = grid.apply_derivative(X)
        # mean of a periodic derivative over the grid vanishes
        np.testing.assert_allclose(dX.mean(axis=(0, 1)), 0.0, atol=1e-10)


class TestGMRESProperties:
    @given(
        n=st.integers(min_value=2, max_value=25),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_solves_random_diagonally_dominant(self, n, seed):
        rng = np.random.default_rng(seed)
        A = rng.standard_normal((n, n))
        A += np.diag(np.sign(np.diag(A)) * (np.abs(A).sum(axis=1) + 1.0))
        x_true = rng.standard_normal(n)
        res = gmres(lambda v: A @ v, A @ x_true, tol=1e-12, maxiter=10 * n)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, rtol=1e-6, atol=1e-9)


class TestEMProperties:
    @given(
        nx=st.integers(min_value=2, max_value=5),
        w=st.floats(min_value=0.5, max_value=3.0),
    )
    @settings(max_examples=10)
    def test_capacitance_matrix_symmetric_psd(self, nx, w):
        panels = make_plate(w, 1.0, nx, 3) + make_plate(
            w, 1.0, nx, 3, center=(0, 0, 0.4), conductor=1
        )
        C = capacitance_matrix(panels, compute_condition=False).cap_matrix
        np.testing.assert_allclose(C, C.T, rtol=1e-6)
        assert np.all(np.linalg.eigvalsh(0.5 * (C + C.T)) > -1e-18)
        assert C[0, 1] < 0 < C[0, 0]

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=15)
    def test_cluster_tree_partitions_points(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.standard_normal((rng.integers(5, 120), 3))
        tree = build_cluster_tree(pts, leaf_size=8)
        collected = []

        def walk(node):
            if node.is_leaf:
                collected.extend(node.indices.tolist())
            else:
                walk(node.left)
                walk(node.right)

        walk(tree)
        assert sorted(collected) == list(range(pts.shape[0]))


class TestROMProperties:
    @given(
        n=st.integers(min_value=4, max_value=20),
        q=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=20)
    def test_moment_matching_property(self, n, q, seed):
        """Arnoldi of order q matches >= q moments on random stable systems."""
        assume(q < n)
        rng = np.random.default_rng(seed)
        C = np.diag(rng.uniform(0.5, 2.0, n))
        G = np.diag(rng.uniform(0.5, 2.0, n)) + 0.3 * rng.standard_normal((n, n))
        assume(np.linalg.cond(G) < 1e6)
        B = rng.standard_normal((n, 1))
        L = rng.standard_normal((n, 1))
        desc = DescriptorSystem(C=C, G=G, B=B, L=L)
        rom = arnoldi(desc, q)
        m_full = desc.moments(q)[:, 0, 0]
        m_rom = rom.moments(q)[:, 0, 0]
        scale = np.abs(m_full) + 1e-12
        assert np.all(np.abs(m_rom - m_full) / scale < 1e-5)

    @given(
        n=st.integers(min_value=5, max_value=16),
        seed=st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=20)
    def test_pvl_exact_at_full_order(self, n, seed):
        """PVL at q = n reproduces the full transfer function."""
        rng = np.random.default_rng(seed)
        C = np.diag(rng.uniform(0.5, 2.0, n))
        G = np.diag(rng.uniform(1.0, 2.0, n)) + 0.2 * rng.standard_normal((n, n))
        assume(np.linalg.cond(G) < 1e5)
        B = rng.standard_normal((n, 1))
        L = rng.standard_normal((n, 1))
        desc = DescriptorSystem(C=C, G=G, B=B, L=L)
        rom = pvl(desc, n)
        s = 1j * np.array([0.1, 1.0, 3.0])
        np.testing.assert_allclose(
            rom.transfer(s)[:, 0, 0], desc.transfer(s)[:, 0, 0], rtol=1e-5, atol=1e-9
        )


class TestVectorFitProperties:
    @given(
        seed=st.integers(min_value=0, max_value=400),
        n_pairs=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=15)
    def test_random_stable_rational_roundtrip(self, seed, n_pairs):
        """Vector fitting recovers random stable rational functions."""
        from repro.rom import vector_fit

        rng = np.random.default_rng(seed)
        poles = []
        residues = []
        for _ in range(n_pairs):
            a = -rng.uniform(0.02, 0.5) * 1e9
            b = rng.uniform(0.5, 8.0) * 1e9
            r = (rng.uniform(0.1, 2.0) + 1j * rng.uniform(-1, 1)) * 1e8
            poles.extend([a + 1j * b, a - 1j * b])
            residues.extend([r, np.conj(r)])
        poles = np.array(poles)
        residues = np.array(residues)
        f = np.geomspace(1e7, 3e10, 240)
        s = 2j * np.pi * f
        H = np.zeros(f.size, dtype=complex)
        for p, r in zip(poles, residues):
            H += r / (s - p)
        fit = vector_fit(f, H, n_poles=poles.size, fit_d=False)
        assert fit.rms_error < 1e-4
        assert np.all(fit.poles.real <= 1e-6 * np.abs(fit.poles))
        # the realization reproduces the samples too
        rom = fit.to_reduced_system()
        np.testing.assert_allclose(
            rom.transfer(s)[:, 0, 0], H, rtol=2e-3, atol=1e-4 * np.max(np.abs(H))
        )


class TestTouchstoneRoundtripProperty:
    @given(
        ports=st.integers(min_value=1, max_value=4),
        m=st.integers(min_value=1, max_value=6),
        fmt=st.sampled_from(["RI", "MA", "DB"]),
        seed=st.integers(min_value=0, max_value=2**16),
        hint=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_write_read_roundtrip(self, tmp_path_factory, ports, m, fmt, seed, hint):
        """write_touchstone -> read_touchstone is identity within tolerance
        over formats x port counts, with and without the .sNp extension
        hint (the latter exercises the wrapped-row port inference)."""
        from repro.em import read_touchstone, write_touchstone

        rng = np.random.default_rng(seed)
        freqs = np.sort(rng.uniform(1e8, 1e10, m))
        assume(np.all(np.diff(freqs) > 0) or m == 1)
        S = 0.5 * rng.standard_normal((m, ports, ports)) + 0.5j * rng.standard_normal(
            (m, ports, ports)
        )
        d = tmp_path_factory.mktemp("ts")
        name = f"dut.s{ports}p" if hint else "dut.dat"
        path = str(d / name)
        write_touchstone(path, freqs, S, fmt=fmt)
        data = read_touchstone(path)
        assert data.num_ports == ports
        np.testing.assert_allclose(data.freqs, freqs, rtol=1e-8)
        np.testing.assert_allclose(data.S, S, rtol=1e-6, atol=1e-9)


class TestVectorizedStamping:
    """The batched stamping path is bit-identical to the scalar reference.

    Random circuits mixing linear devices (R/L/C, V/I sources) with every
    batchable nonlinear family (diodes, BJTs, MOSFETs, switches) and the
    per-device callables (NonlinearResistor/NonlinearCapacitor) must
    produce *exactly* equal DAE terms, point Jacobians (same sparsity,
    same values) and batch-Jacobian slabs under both paths.
    """

    NODES = ("0", "a", "b", "c", "d")

    def _random_circuit(self, rng, n_devices):
        from repro.netlist.components import (
            NonlinearCapacitor,
            NonlinearResistor,
        )

        ckt = Circuit("prop")
        ckt.vsource("Vsrc", "a", "0", float(rng.uniform(-1.0, 1.0)))
        kinds = rng.choice(
            ["R", "L", "C", "I", "D", "Q", "M", "S", "NR", "NC"], size=n_devices
        )
        pick = lambda: str(rng.choice(self.NODES))
        for i, kind in enumerate(kinds):
            name = f"{kind}{i}"
            if kind == "R":
                ckt.resistor(name, pick(), pick(), float(rng.uniform(10, 1e5)))
            elif kind == "L":
                ckt.inductor(name, pick(), pick(), float(rng.uniform(1e-9, 1e-6)))
            elif kind == "C":
                ckt.capacitor(name, pick(), pick(), float(rng.uniform(1e-15, 1e-9)))
            elif kind == "I":
                ckt.isource(name, pick(), pick(), float(rng.uniform(-1e-3, 1e-3)))
            elif kind == "D":
                ckt.diode(
                    name, pick(), pick(),
                    isat=float(rng.uniform(1e-16, 1e-12)),
                    tt=float(rng.choice([0.0, 1e-9])),
                    cj0=float(rng.choice([0.0, 1e-12])),
                )
            elif kind == "Q":
                ckt.bjt(
                    name, pick(), pick(), pick(),
                    beta_f=float(rng.uniform(10, 300)),
                    polarity=int(rng.choice([1, -1])),
                    tf=float(rng.choice([0.0, 1e-11])),
                    cje=float(rng.choice([0.0, 1e-13])),
                    cjc=float(rng.choice([0.0, 1e-13])),
                )
            elif kind == "M":
                ckt.mosfet(
                    name, pick(), pick(), pick(),
                    kp=float(rng.uniform(1e-5, 1e-3)),
                    vth=float(rng.uniform(0.2, 0.8)),
                    lam=float(rng.choice([0.0, 0.05])),
                    cgs=float(rng.choice([0.0, 1e-14])),
                    cgd=float(rng.choice([0.0, 1e-14])),
                    polarity=int(rng.choice([1, -1])),
                )
            elif kind == "S":
                from repro.netlist.components import SwitchConductance

                ckt.add(
                    SwitchConductance(
                        name, pick(), pick(), pick(), pick(),
                        g_on=float(rng.uniform(1e-3, 1e-1)),
                        sharpness=float(rng.uniform(5.0, 40.0)),
                    )
                )
            elif kind == "NR":
                aa = float(rng.uniform(1e-4, 1e-2))
                ckt.add(
                    NonlinearResistor(
                        name, pick(), pick(),
                        lambda v, aa=aa: aa * v**3,
                        lambda v, aa=aa: 3.0 * aa * v**2,
                    )
                )
            else:  # NC
                cc = float(rng.uniform(1e-13, 1e-11))
                ckt.add(
                    NonlinearCapacitor(
                        name, pick(), pick(),
                        lambda v, cc=cc: cc * np.tanh(v),
                        lambda v, cc=cc: cc * (1.0 - np.tanh(v) ** 2),
                    )
                )
        # guarantee at least two batchable families are present
        ckt.diode("Dfix", "b", "0")
        ckt.bjt("Qfix", "c", "b", "0")
        return ckt

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_devices=st.integers(min_value=2, max_value=14),
        m=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_scalar_and_vectorized_paths_bit_identical(self, seed, n_devices, m):
        rng = np.random.default_rng(seed)
        ckt = self._random_circuit(rng, n_devices)
        sys_vec = ckt.compile(vectorize=True)
        sys_ref = ckt.compile(vectorize=False)
        assert sys_vec.vectorize and not sys_ref.vectorize
        # both paths share one canonical nonlinear-device ordering
        assert [d.name for d, _, _ in sys_vec._nl] == [
            d.name for d, _, _ in sys_ref._nl
        ]

        x = rng.normal(scale=1.0, size=sys_vec.n)
        X = rng.normal(scale=1.0, size=(sys_vec.n, m))

        np.testing.assert_array_equal(sys_vec.f(x), sys_ref.f(x))
        np.testing.assert_array_equal(sys_vec.q(x), sys_ref.q(x))
        np.testing.assert_array_equal(sys_vec.f(X), sys_ref.f(X))
        np.testing.assert_array_equal(sys_vec.q(X), sys_ref.q(X))

        Gv, Gs = sys_vec.G(x), sys_ref.G(x)
        Cv, Cs = sys_vec.C(x), sys_ref.C(x)
        # same sparsity structure AND same values, exactly
        assert Gv.nnz == Gs.nnz and Cv.nnz == Cs.nnz
        np.testing.assert_array_equal(Gv.toarray(), Gs.toarray())
        np.testing.assert_array_equal(Cv.toarray(), Cs.toarray())

        pv, ps = sys_vec.jacobian_pattern(), sys_ref.jacobian_pattern()
        np.testing.assert_array_equal(pv[0], ps[0])
        np.testing.assert_array_equal(pv[1], ps[1])
        gv, cv = sys_vec.batch_jacobians(X)
        gs, cs = sys_ref.batch_jacobians(X)
        np.testing.assert_array_equal(gv, gs)
        np.testing.assert_array_equal(cv, cs)

    def test_stamp_mode_env_and_validation(self, monkeypatch):
        from repro.netlist.mna import STAMP_ENV, resolve_stamp_mode

        monkeypatch.setenv(STAMP_ENV, "scalar")
        assert resolve_stamp_mode(None) == "scalar"
        monkeypatch.setenv(STAMP_ENV, "vectorized")
        assert resolve_stamp_mode(None) == "vectorized"
        assert resolve_stamp_mode(True) == "vectorized"
        assert resolve_stamp_mode(False) == "scalar"
        monkeypatch.setenv(STAMP_ENV, "simd")
        with pytest.raises(ValueError, match="unknown stamp mode"):
            resolve_stamp_mode(None)
        monkeypatch.delenv(STAMP_ENV)
        rng = np.random.default_rng(1234)
        ckt = self._random_circuit(rng, 3)
        assert ckt.compile().vectorize  # default is the batched path
