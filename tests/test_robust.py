"""Recovery-layer tests: every escalation rung fires under injected faults.

Each ladder in :mod:`repro.robust.policy` is driven through failure and
recovery with the fault-injection harness: singular Jacobians push DC
through gmin/source stepping, NaN residuals exercise transient step
backoff, and stalled/perturbed matvecs walk GMRES up its restart ladder
into the dense fallback.  ``best_effort`` mode must never raise on any
injected failure and must hand back a degraded result with the full
:class:`~repro.robust.report.SolveReport` attached.
"""

import numpy as np
import pytest

from repro.analysis.dc import DC_LADDER, dc_analysis
from repro.analysis.shooting import shooting_analysis
from repro.analysis.transient import transient_analysis
from repro.hb import harmonic_balance
from repro.linalg import ConvergenceError
from repro.phasenoise import VanDerPol, find_oscillator_pss
from repro.robust import (
    AttemptRecord,
    EscalationPolicy,
    FaultClock,
    FaultyMNASystem,
    RungOutcome,
    SolveFailure,
    SolveReport,
    inject_error,
    inject_nan,
    inject_perturb,
    inject_singular,
    robust_gmres,
    run_ladder,
)

SINGULAR_WARN = "ignore:Matrix is exactly singular"


# ---------------------------------------------------------------------------
# fault-injection harness itself
# ---------------------------------------------------------------------------
class TestFaultClock:
    def test_window(self):
        clock = FaultClock(start=2, count=2)
        assert [clock.tick() for _ in range(5)] == [False, True, True, False, False]
        assert clock.calls == 5
        assert clock.fired == 2

    def test_forever(self):
        clock = FaultClock(start=3, count=None)
        assert [clock.tick() for _ in range(5)] == [False, False, True, True, True]


class TestInjectors:
    def test_inject_nan(self):
        fn = inject_nan(lambda x: x + 1.0, FaultClock(start=1, count=1))
        assert np.isnan(fn(np.zeros(3))).all()
        np.testing.assert_allclose(fn(np.zeros(3)), 1.0)

    def test_inject_singular_dense_and_sparse(self):
        import scipy.sparse as sp

        dense = inject_singular(lambda: np.eye(3), FaultClock())
        assert not dense().any()
        sparse = inject_singular(lambda: sp.identity(3, format="csr"), FaultClock())
        out = sparse()
        assert sp.issparse(out) and out.nnz == 0 and out.shape == (3, 3)

    def test_inject_perturb(self):
        clock = FaultClock(start=1, count=1)
        fn = inject_perturb(lambda x: x, clock, scale=0.5)
        v = np.ones(8)
        assert np.linalg.norm(fn(v) - v) > 0.0
        np.testing.assert_array_equal(fn(v), v)
        assert clock.fired == 1

    def test_inject_error(self):
        fn = inject_error(lambda: 42, FaultClock(start=1, count=1))
        with pytest.raises(ConvergenceError, match="injected"):
            fn()
        assert fn() == 42

    def test_faulty_system_delegates(self, resistive_divider):
        clock = FaultClock(start=1, count=None)
        bad = FaultyMNASystem(
            resistive_divider, G=inject_singular(resistive_divider.G, clock)
        )
        assert bad.n == resistive_divider.n
        assert bad.title == resistive_divider.title
        x = np.zeros(bad.n)
        np.testing.assert_array_equal(bad.f(x), resistive_divider.f(x))
        assert bad.G(x).nnz == 0

    def test_faulty_system_rejects_unknown(self, resistive_divider):
        with pytest.raises(ValueError, match="cannot override"):
            FaultyMNASystem(resistive_divider, nonsense=lambda: None)


# ---------------------------------------------------------------------------
# report bookkeeping
# ---------------------------------------------------------------------------
class TestSolveReport:
    def _report(self):
        rep = SolveReport(analysis="demo")
        rep.record(
            AttemptRecord(
                strategy="a", converged=False, iterations=3,
                residual_norm=1.0, failure_cause="ConvergenceError: no",
            )
        )
        rep.record(AttemptRecord(strategy="a", converged=False, iterations=2))
        rep.record(AttemptRecord(strategy="b", converged=True, iterations=5, residual_norm=1e-12))
        return rep

    def test_outcome_properties(self):
        rep = self._report()
        assert rep.converged
        assert rep.strategy == "b"
        assert rep.total_iterations == 10
        assert rep.attempt_counts() == {"a": 2, "b": 1}
        assert rep.best_residual == pytest.approx(1e-12)

    def test_summary_mentions_every_attempt(self):
        text = self._report().summary()
        assert "demo" in text and "converged" in text
        assert text.count("failed") == 2

    def test_merge_prefixes(self):
        rep = SolveReport(analysis="outer")
        rep.merge(self._report(), prefix="inner")
        assert rep.attempt_counts() == {"inner:a": 2, "inner:b": 1}


# ---------------------------------------------------------------------------
# ladder engine
# ---------------------------------------------------------------------------
def _failing_rung(norm=1.0):
    def thunk():
        exc = ConvergenceError("nope")
        exc.best_x = np.full(2, norm)
        exc.best_norm = norm
        exc.iterations = 4
        raise exc

    return thunk


class TestEscalationEngine:
    def test_first_success_stops_ladder(self):
        calls = []
        out, rep = run_ladder(
            "demo",
            [
                ("a", lambda: calls.append("a") or RungOutcome(value=1, residual_norm=0.0)),
                ("b", lambda: calls.append("b") or RungOutcome(value=2)),
            ],
        )
        assert out.value == 1 and calls == ["a"]
        assert rep.strategy == "a" and len(rep.attempts) == 1

    def test_escalates_past_failures(self):
        out, rep = run_ladder(
            "demo",
            [("a", _failing_rung()), ("b", lambda: RungOutcome(value="ok", iterations=2))],
        )
        assert out.value == "ok"
        assert [a.converged for a in rep.attempts] == [False, True]
        assert rep.attempts[0].iterations == 4
        assert "ConvergenceError" in rep.attempts[0].failure_cause

    def test_raise_mode_carries_report_and_best(self):
        with pytest.raises(SolveFailure) as err:
            run_ladder("demo", [("a", _failing_rung(0.5)), ("b", _failing_rung(2.0))])
        assert len(err.value.report.attempts) == 2
        assert err.value.best.residual_norm == pytest.approx(0.5)
        # SolveFailure must remain catchable as a plain ConvergenceError
        assert isinstance(err.value, ConvergenceError)

    def test_best_effort_uses_fallback(self):
        out, rep = run_ladder(
            "demo",
            [("a", _failing_rung(0.5))],
            on_failure="best_effort",
            fallback=lambda best, rep: RungOutcome(value=("degraded", best.value)),
        )
        assert out.value[0] == "degraded"
        assert not rep.converged

    def test_best_effort_without_fallback_raises(self):
        with pytest.raises(SolveFailure):
            run_ladder("demo", [("a", _failing_rung())], on_failure="best_effort")

    def test_warn_mode_warns(self):
        with pytest.warns(RuntimeWarning, match="best-effort"):
            run_ladder(
                "demo",
                [("a", _failing_rung())],
                on_failure="warn",
                fallback=lambda best, rep: RungOutcome(value=None),
            )

    def test_policy_selects_and_orders_rungs(self):
        out, rep = run_ladder(
            "demo",
            [("a", _failing_rung()), ("b", lambda: RungOutcome(value="b"))],
            policy=EscalationPolicy(rungs=("b",)),
        )
        assert out.value == "b" and len(rep.attempts) == 1

    def test_unknown_rung_rejected(self):
        with pytest.raises(ValueError, match="unknown escalation rung"):
            run_ladder(
                "demo",
                [("a", _failing_rung())],
                policy=EscalationPolicy(rungs=("typo",)),
            )

    def test_bad_on_failure_rejected(self):
        with pytest.raises(ValueError, match="on_failure"):
            EscalationPolicy(on_failure="explode")

    def test_max_attempts_cap(self):
        out, rep = run_ladder(
            "demo",
            [("a", _failing_rung()), ("b", _failing_rung()), ("c", _failing_rung())],
            policy=EscalationPolicy(max_attempts=1, on_failure="best_effort"),
            fallback=lambda best, rep: RungOutcome(value=None),
        )
        assert len(rep.attempts) == 1
        assert any("attempt cap" in note for note in rep.notes)

    def test_time_budget_skips_later_rungs(self):
        out, rep = run_ladder(
            "demo",
            [("a", _failing_rung()), ("b", lambda: RungOutcome(value="late"))],
            policy=EscalationPolicy(time_budget=0.0, on_failure="best_effort"),
            fallback=lambda best, rep: RungOutcome(value="degraded"),
        )
        assert out.value == "degraded"
        assert any("time budget" in note for note in rep.notes)


# ---------------------------------------------------------------------------
# DC ladder under injected singular Jacobians
# ---------------------------------------------------------------------------
class TestDCLadder:
    @pytest.mark.filterwarnings(SINGULAR_WARN)
    def test_gmin_recovers_from_singular_jacobian(self, resistive_divider):
        clock = FaultClock(start=1, count=1)
        bad = FaultyMNASystem(
            resistive_divider, G=inject_singular(resistive_divider.G, clock)
        )
        res = dc_analysis(bad)
        assert res.converged
        assert res.strategy == "gmin-stepping"
        assert clock.fired == 1
        assert res.report.attempts[0].strategy == "newton"
        assert not res.report.attempts[0].converged
        np.testing.assert_allclose(res.x, dc_analysis(resistive_divider).x, atol=1e-6)

    @pytest.mark.filterwarnings(SINGULAR_WARN)
    def test_source_stepping_recovers_when_gmin_also_fails(self, resistive_divider):
        # calls 1 (plain Newton) and 2 (first gmin sub-solve) get a
        # singular Jacobian; source stepping sees a healthy circuit
        clock = FaultClock(start=1, count=2)
        bad = FaultyMNASystem(
            resistive_divider, G=inject_singular(resistive_divider.G, clock)
        )
        res = dc_analysis(bad)
        assert res.converged
        assert res.strategy == "source-stepping"
        assert res.report.attempt_counts() == {
            "newton": 1, "gmin-stepping": 1, "source-stepping": 1,
        }
        np.testing.assert_allclose(res.x, dc_analysis(resistive_divider).x, atol=1e-6)

    def test_best_effort_never_raises(self, resistive_divider):
        clock = FaultClock(start=1, count=None)
        bad = FaultyMNASystem(
            resistive_divider, f=inject_nan(resistive_divider.f, clock)
        )
        res = dc_analysis(bad, on_failure="best_effort")
        assert not res.converged
        assert res.strategy == "best-effort"
        assert set(res.report.attempt_counts()) == set(DC_LADDER)
        assert res.x.shape == (resistive_divider.n,)

    def test_raise_mode_reports_every_rung(self, resistive_divider):
        bad = FaultyMNASystem(
            resistive_divider,
            f=inject_nan(resistive_divider.f, FaultClock(start=1, count=None)),
        )
        with pytest.raises(SolveFailure) as err:
            dc_analysis(bad)
        assert set(err.value.report.attempt_counts()) == set(DC_LADDER)


# ---------------------------------------------------------------------------
# transient step backoff under injected NaN residuals
# ---------------------------------------------------------------------------
class TestTransientLadder:
    def test_backoff_recovers_from_nan_window(self, rc_lowpass):
        dt = 1e-8
        clock = FaultClock(start=5, count=2)
        bad = FaultyMNASystem(rc_lowpass, f=inject_nan(rc_lowpass.f, clock))
        res = transient_analysis(
            bad, t_stop=8 * dt, dt=dt, x0=np.zeros(rc_lowpass.n), method="be"
        )
        assert res.converged
        assert res.rejected_steps >= 1
        assert clock.fired >= 1
        assert np.isfinite(res.X).all()
        assert res.t[-1] == pytest.approx(8 * dt, rel=1e-9)
        counts = res.report.attempt_counts()
        assert counts.get("step-backoff", 0) == res.rejected_steps
        assert res.report.strategy == "step"

    def test_best_effort_returns_partial_trajectory(self, rc_lowpass):
        dt = 1e-8
        bad = FaultyMNASystem(
            rc_lowpass, f=inject_nan(rc_lowpass.f, FaultClock(start=5, count=None))
        )
        res = transient_analysis(
            bad, t_stop=20 * dt, dt=dt, x0=np.zeros(rc_lowpass.n),
            method="be", on_failure="best_effort", h_floor=0.05 * dt,
        )
        assert not res.converged
        assert 0.0 < res.t[-1] < 20 * dt
        assert res.rejected_steps >= 2
        assert res.report.notes  # the give-up cause is recorded

    def test_raise_and_warn_modes(self, rc_lowpass):
        dt = 1e-8

        def broken():
            return FaultyMNASystem(
                rc_lowpass, f=inject_nan(rc_lowpass.f, FaultClock(start=5, count=None))
            )

        kwargs = dict(t_stop=20 * dt, dt=dt, x0=np.zeros(rc_lowpass.n),
                      method="be", h_floor=0.05 * dt)
        with pytest.raises(SolveFailure, match="hit the floor"):
            transient_analysis(broken(), **kwargs)
        with pytest.warns(RuntimeWarning, match="partial trajectory"):
            res = transient_analysis(broken(), on_failure="warn", **kwargs)
        assert not res.converged


# ---------------------------------------------------------------------------
# GMRES restart escalation and dense fallback
# ---------------------------------------------------------------------------
def _cyclic_shift(n):
    """Orthogonal shift operator: GMRES makes zero progress until the
    Krylov space reaches the full dimension — the canonical stagnator."""

    def matvec(v):
        return np.roll(v, 1)

    return matvec


class TestRobustGMRES:
    def test_converges_on_first_rung(self):
        rng = np.random.default_rng(3)
        A = np.eye(12) + 0.1 * rng.standard_normal((12, 12))
        b = rng.standard_normal(12)
        res = robust_gmres(lambda v: A @ v, b, restart=12, tol=1e-12)
        assert res.converged
        assert res.report.strategy == "restart(12)"
        assert len(res.report.attempts) == 1
        np.testing.assert_allclose(A @ res.x, b, atol=1e-9)

    def test_restart_escalation_recovers_stagnation(self):
        n = 32
        b = np.zeros(n)
        b[0] = 1.0
        res = robust_gmres(
            _cyclic_shift(n), b, restart=8, maxiter=64, tol=1e-10,
            restart_growth=(1, 2, 4), dense_max_n=0,
        )
        assert res.converged
        assert res.report.strategy == "restart(32)"
        assert [a.converged for a in res.report.attempts] == [False, False, True]
        np.testing.assert_allclose(np.roll(res.x, 1), b, atol=1e-8)

    def test_dense_fallback_when_restarts_exhausted(self):
        n = 24
        b = np.zeros(n)
        b[0] = 1.0
        res = robust_gmres(
            _cyclic_shift(n), b, restart=4, maxiter=16, tol=1e-10,
            restart_growth=(1,), dense_max_n=64,
        )
        assert res.converged
        assert res.report.strategy == "dense-fallback"
        assert res.report.attempts[-1].detail.get("dense")
        np.testing.assert_allclose(np.roll(res.x, 1), b, atol=1e-8)

    def test_injected_spurious_failure_escalates(self):
        rng = np.random.default_rng(5)
        A = np.eye(10) + 0.05 * rng.standard_normal((10, 10))
        b = rng.standard_normal(10)
        clock = FaultClock(start=1, count=1)
        mv = inject_error(lambda v: A @ v, clock)
        res = robust_gmres(mv, b, restart=5, tol=1e-10, restart_growth=(1, 2))
        assert res.converged
        assert clock.fired == 1
        assert not res.report.attempts[0].converged
        assert "injected" in res.report.attempts[0].failure_cause

    def test_perturbed_matvec_stalls_then_recovers(self):
        rng = np.random.default_rng(11)
        A = np.eye(16) + 0.1 * rng.standard_normal((16, 16))
        b = rng.standard_normal(16)
        # corrupt the operator for the whole first rung (~20 applications)
        clock = FaultClock(start=1, count=20)
        mv = inject_perturb(lambda v: A @ v, clock, scale=0.3)
        res = robust_gmres(mv, b, restart=16, maxiter=18, tol=1e-10, restart_growth=(1, 1, 1))
        assert res.converged
        assert len(res.report.attempts) >= 2
        np.testing.assert_allclose(A @ res.x, b, atol=1e-7)

    def test_best_effort_returns_unconverged_result(self):
        n = 16
        b = np.zeros(n)
        b[0] = 1.0
        res = robust_gmres(
            _cyclic_shift(n), b, restart=4, maxiter=8, tol=1e-12,
            restart_growth=(1,), dense_max_n=0, on_failure="best_effort",
        )
        assert not res.converged
        assert not res.report.converged
        assert res.x.shape == (n,)

    def test_exhaustion_raises_solvefailure(self):
        n = 16
        b = np.zeros(n)
        b[0] = 1.0
        with pytest.raises(SolveFailure, match="gmres"):
            robust_gmres(
                _cyclic_shift(n), b, restart=4, maxiter=8, tol=1e-12,
                restart_growth=(1,), dense_max_n=0,
            )


# ---------------------------------------------------------------------------
# HB / MPDE ladder
# ---------------------------------------------------------------------------
class TestMPDELadder:
    def test_forced_source_ramp_rung(self, rc_lowpass):
        res = harmonic_balance(
            rc_lowpass, harmonics=4,
            policy=EscalationPolicy(rungs=("source-ramp",)),
        )
        assert res.converged
        assert res.report.strategy == "source-ramp"
        assert res.report.attempts[0].detail.get("ramp_steps", 0) >= 4

    def test_forced_harmonic_continuation_rung(self, rc_lowpass):
        res = harmonic_balance(
            rc_lowpass, harmonics=4,
            policy=EscalationPolicy(rungs=("harmonic-continuation",)),
        )
        assert res.converged
        assert res.report.strategy == "harmonic-continuation"
        assert "coarse_shape" in res.report.attempts[0].detail

    def test_injected_nan_escalates_past_direct(self, rc_lowpass):
        clock = FaultClock(start=1, count=2)
        bad = FaultyMNASystem(
            rc_lowpass, batch_fq=inject_nan(rc_lowpass.batch_fq, clock)
        )
        res = harmonic_balance(bad, freqs=[1e6], harmonics=4)
        assert res.converged
        assert clock.fired >= 1
        assert res.report.attempts[0].strategy == "direct"
        assert not res.report.attempts[0].converged
        assert res.report.strategy in ("source-ramp", "harmonic-continuation")

    def test_best_effort_returns_unconverged_solution(self, rc_lowpass):
        bad = FaultyMNASystem(
            rc_lowpass,
            batch_fq=inject_nan(rc_lowpass.batch_fq, FaultClock(start=1, count=None)),
        )
        res = harmonic_balance(bad, freqs=[1e6], harmonics=4, on_failure="best_effort")
        assert not res.converged
        assert not res.report.converged
        assert len(res.report.attempts) == 3


# ---------------------------------------------------------------------------
# shooting ladder
# ---------------------------------------------------------------------------
class TestShootingLadder:
    def test_forced_transient_settle_rung(self, rc_lowpass):
        res = shooting_analysis(
            rc_lowpass, period=1e-6, steps_per_period=60,
            policy=EscalationPolicy(rungs=("transient-settle",)),
        )
        assert res.converged
        assert res.report.strategy == "transient-settle"
        np.testing.assert_allclose(res.X[:, 0], res.X[:, -1], atol=1e-6)

    def test_best_effort_returns_partial_pss(self, diode_rectifier):
        res = shooting_analysis(
            diode_rectifier, period=1e-6, steps_per_period=40,
            maxiter=1, abstol=1e-14, on_failure="best_effort",
        )
        assert not res.converged
        assert len(res.report.attempts) == 2
        assert res.X.shape == (diode_rectifier.n, 41)
        assert np.isfinite(res.X).all()

    def test_raise_mode(self, diode_rectifier):
        with pytest.raises(SolveFailure):
            shooting_analysis(
                diode_rectifier, period=1e-6, steps_per_period=40,
                maxiter=1, abstol=1e-14,
            )


# ---------------------------------------------------------------------------
# oscillator PSS ladder
# ---------------------------------------------------------------------------
class TestPSSLadder:
    def test_forced_settle_retry_rung(self):
        vdp = VanDerPol(mu=0.2)
        res = find_oscillator_pss(
            vdp, x0=np.array([2.0, 0.0]), period_guess=2 * np.pi, steps=200,
            policy=EscalationPolicy(rungs=("settle-retry",)),
        )
        assert res.converged
        assert res.report.strategy == "settle-retry"
        expect = 2 * np.pi * (1 + 0.2**2 / 16)
        np.testing.assert_allclose(res.period, expect, rtol=1e-3)

    def test_best_effort_never_raises(self):
        vdp = VanDerPol(mu=0.2)
        res = find_oscillator_pss(
            vdp, x0=np.array([3.0, 1.5]), period_guess=2 * np.pi, steps=100,
            maxiter=2, abstol=1e-14, on_failure="best_effort",
        )
        assert not res.converged
        assert len(res.report.attempts) == 2
        assert np.isfinite(res.X).all()
        assert res.period > 0
