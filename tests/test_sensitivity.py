"""Gradient correctness for the sensitivity engines.

Every analytic gradient in ``repro.sensitivity`` is checked three ways:

* **adjoint vs direct** — two independent derivations of the same
  number (one transpose solve vs per-parameter forward solves) must
  agree to machine precision;
* **vs central finite differences** — each engine's gradient must match
  a two-sided re-solve of the underlying analysis through the public
  ``set_param`` path, to 1e-5 relative (the ISSUE's contract);
* **explore vs full re-solve** — the Woodbury-corrected driver must
  reproduce scratch DC solves (objectives and gradients) at every
  design point, on every sweep backend.

The HB adjoint's matrix-free transpose operator is additionally checked
against the assembled ``J.T`` directly, since a silently-wrong ``Dᵀ``
would still converge GMRES — to the wrong vector.
"""

import numpy as np
import pytest

from repro.analysis.dc import dc_analysis
from repro.analysis.transient import transient_analysis
from repro.netlist import Circuit, Sine
from repro.sensitivity import (
    FinalValue,
    HarmonicAmplitude,
    ParamSet,
    SampleMean,
    TimeAverage,
    dc_sensitivity,
    explore,
    hb_sensitivity,
    resolve_param,
    transient_sensitivity,
)

RTOL = 1e-5


def central_fd(build, specs, evaluate, rel_step=1e-6, abs_step=1e-6):
    """Two-sided differences through fresh systems and set_param.

    ``abs_step`` kicks in for parameters whose nominal value is zero
    (e.g. channel-length modulation), where a relative step vanishes.
    """
    grads = []
    for spec in specs:
        vals = []
        probe = resolve_param(build(), spec)
        p0 = probe.get()
        h = rel_step * abs(p0) if p0 else abs_step
        for sgn in (+1.0, -1.0):
            system = build()
            bp = resolve_param(system, spec)
            bp.set(p0 + sgn * h)
            system.refresh_stamps(linear=True)
            vals.append(evaluate(system))
        grads.append((vals[0] - vals[1]) / (2 * h))
    return np.asarray(grads)


def _tight_dc(node):
    """DC objective evaluator solved well below FD noise level."""
    return lambda s: float(dc_analysis(s, abstol=1e-13).x[s.node(node)])


def assert_close(got, want, rtol=RTOL, atol=0.0):
    got, want = np.asarray(got), np.asarray(want)
    assert np.all(np.abs(got - want) <= rtol * np.abs(want) + atol), (
        f"gradient mismatch:\n got {got}\nwant {want}"
    )


# --- DC ----------------------------------------------------------------


class TestDCSensitivity:
    @staticmethod
    def _diode_divider():
        ckt = Circuit("div")
        ckt.vsource("V1", "in", "0", waveform=2.0)
        ckt.resistor("R1", "in", "mid", 1e3)
        ckt.diode("D1", "mid", "0")
        ckt.resistor("R2", "mid", "0", 5e3)
        return ckt.compile()

    DIODE_SPECS = ["R1.resistance", "R2.resistance", "D1.isat",
                   "D1.ideality", "V1.value"]

    def test_adjoint_equals_direct(self):
        system = self._diode_divider()
        adj = dc_sensitivity(system, self.DIODE_SPECS, objective="mid")
        dire = dc_sensitivity(
            system, self.DIODE_SPECS, objective="mid", method="direct"
        )
        assert_close(adj.gradient, dire.gradient, rtol=1e-12)
        assert adj.value == pytest.approx(dire.value)
        # direct mode carries the full state sensitivities
        assert dire.sensitivities.shape == (system.n, len(self.DIODE_SPECS))

    def test_matches_fd(self):
        build = self._diode_divider
        adj = dc_sensitivity(build(), self.DIODE_SPECS, objective="mid")
        fd = central_fd(build, self.DIODE_SPECS, _tight_dc("mid"))
        assert_close(adj.gradient, fd)

    def test_named_lookup(self):
        res = dc_sensitivity(
            self._diode_divider(), self.DIODE_SPECS, objective="mid"
        )
        assert res["V1.value"] == res.gradient[-1]

    @staticmethod
    def _bjt_stage():
        ckt = Circuit("ce")
        ckt.vsource("VCC", "vcc", "0", waveform=5.0)
        ckt.resistor("RC", "vcc", "c", 1e3)
        ckt.resistor("RB", "vcc", "b", 100e3)
        ckt.bjt("Q1", "c", "b", "0")
        return ckt.compile()

    def test_bjt_params_match_fd(self):
        specs = ["Q1.isat", "Q1.beta_f", "RC.resistance", "RB.resistance"]
        adj = dc_sensitivity(self._bjt_stage(), specs, objective="c")
        fd = central_fd(self._bjt_stage, specs, _tight_dc("c"), rel_step=1e-5)
        assert_close(adj.gradient, fd)

    @staticmethod
    def _mos_stage():
        ckt = Circuit("cs")
        ckt.vsource("VDD", "vdd", "0", waveform=3.0)
        ckt.resistor("RD", "vdd", "d", 2e3)
        ckt.vsource("VG", "g", "0", waveform=1.5)
        ckt.mosfet("M1", "d", "g", "0")
        return ckt.compile()

    def test_mosfet_params_match_fd(self):
        specs = ["M1.kp", "M1.vth", "M1.lam", "RD.resistance", "VG.value"]
        adj = dc_sensitivity(self._mos_stage(), specs, objective="d")
        fd = central_fd(self._mos_stage, specs, _tight_dc("d"))
        assert_close(adj.gradient, fd)

    def test_adjoint_requires_objective(self):
        with pytest.raises(ValueError, match="objective"):
            dc_sensitivity(self._diode_divider(), ["R1.resistance"])

    def test_bad_spec_rejected(self):
        with pytest.raises(KeyError):
            dc_sensitivity(
                self._diode_divider(), ["R1.nope"], objective="mid"
            )
        with pytest.raises(KeyError):
            dc_sensitivity(
                self._diode_divider(), ["RX.resistance"], objective="mid"
            )
        with pytest.raises(ValueError, match=r"[Dd]uplicate"):
            ParamSet(
                self._diode_divider(),
                ["R1.resistance", "R1.resistance"],
            )


# --- transient ---------------------------------------------------------


def _rectifier():
    ckt = Circuit("rect")
    ckt.vsource("V1", "in", "0", Sine(2.0, 1e6))
    ckt.diode("D1", "in", "out")
    ckt.resistor("RL", "out", "0", 1e4)
    ckt.capacitor("CL", "out", "0", 1e-9)
    return ckt.compile()


TRAN_SPECS = ["RL.resistance", "CL.capacitance", "D1.isat", "V1.amplitude"]
TSTOP, DT = 2e-6, 4e-9


class TestTransientSensitivity:
    @pytest.mark.parametrize("integrator", ["trap", "be"])
    @pytest.mark.parametrize("objective", ["out", TimeAverage("out")],
                             ids=["final", "avg"])
    def test_adjoint_direct_fd_agree(self, integrator, objective):
        system = _rectifier()
        traj = transient_analysis(system, TSTOP, DT, method=integrator)
        adj = transient_sensitivity(
            system, traj, TRAN_SPECS, objective, integrator=integrator
        )
        dire = transient_sensitivity(
            system, traj, TRAN_SPECS, objective,
            method="direct", integrator=integrator,
        )
        # same discrete gradient, two derivations
        assert_close(adj.gradient, dire.gradient, rtol=1e-9)

        from repro.sensitivity.objectives import resolve_trajectory_objective

        def evaluate(s):
            r = transient_analysis(s, TSTOP, DT, method=integrator)
            return resolve_trajectory_objective(objective, s).value(r.t, r.X, s)

        fd = central_fd(_rectifier, TRAN_SPECS, evaluate)
        assert_close(adj.gradient, fd, rtol=1e-4)

    def test_bare_objective_means_final_value(self):
        system = _rectifier()
        traj = transient_analysis(system, TSTOP, DT)
        bare = transient_sensitivity(system, traj, TRAN_SPECS, "out")
        final = transient_sensitivity(
            system, traj, TRAN_SPECS, FinalValue("out")
        )
        np.testing.assert_array_equal(bare.gradient, final.gradient)

    def test_x0_mode_selects_the_right_contract(self):
        """dc mode matches a re-solve restarting from the perturbed DC
        point; fixed mode matches a re-solve pinned to the reference x0.

        The RC divider's time constant (5 µs) exceeds the window (2 µs),
        so the initial condition's parameter dependence survives to the
        final sample and the two contracts give visibly different
        gradients."""

        def divider():
            ckt = Circuit("rcdiv")
            ckt.vsource("V1", "in", "0", waveform=2.0)
            ckt.resistor("R1", "in", "out", 1e4)
            ckt.resistor("RL", "out", "0", 1e4)
            ckt.capacitor("CL", "out", "0", 1e-9)
            return ckt.compile()

        system = divider()
        traj = transient_analysis(system, TSTOP, DT)
        dc_mode = transient_sensitivity(system, traj, ["R1.resistance"], "out")
        fixed = transient_sensitivity(
            system, traj, ["R1.resistance"], "out", x0_mode="fixed"
        )
        assert not np.allclose(dc_mode.gradient, fixed.gradient, rtol=0.05)

        x0_ref = dc_analysis(system).x.copy()

        def evaluate_dc(s):
            r = transient_analysis(s, TSTOP, DT)
            return float(r.X[s.node("out"), -1])

        def evaluate_fixed(s):
            r = transient_analysis(s, TSTOP, DT, x0=x0_ref)
            return float(r.X[s.node("out"), -1])

        # rel_step is deliberately coarse: with a tiny step the per-step
        # perturbation residual falls below the transient Newton abstol
        # and every step accepts the unperturbed guess — FD reads 0.
        # The circuit is linear, so the large step costs no truncation.
        assert_close(
            dc_mode.gradient,
            central_fd(divider, ["R1.resistance"], evaluate_dc, rel_step=1e-3),
            rtol=1e-4,
        )
        assert_close(
            fixed.gradient,
            central_fd(divider, ["R1.resistance"], evaluate_fixed, rel_step=1e-3),
            rtol=1e-4,
        )

    def test_unknown_integrator_rejected(self):
        system = _rectifier()
        traj = transient_analysis(system, TSTOP, DT)
        with pytest.raises(ValueError, match="integrator"):
            transient_sensitivity(system, traj, ["RL.resistance"], "out",
                                  integrator="gear2")


# --- HB / MPDE ---------------------------------------------------------


def _hb_stage():
    ckt = Circuit("amp")
    ckt.vsource("V1", "in", "0", Sine(0.8, 1e6))
    ckt.resistor("Rs", "in", "a", 100.0)
    ckt.diode("D1", "a", "0")
    ckt.resistor("RL", "a", "0", 2e3)
    ckt.capacitor("CL", "a", "0", 1e-10)
    return ckt.compile()


HB_SPECS = ["Rs.resistance", "RL.resistance", "D1.isat", "CL.capacitance"]


class TestHBSensitivity:
    @pytest.fixture(scope="class")
    def hb_solution(self):
        from repro.hb.hb_core import harmonic_balance

        system = _hb_stage()
        return system, harmonic_balance(system, freqs=[1e6], harmonics=5)

    @pytest.mark.parametrize("solver", ["direct", "gmres"])
    def test_adjoint_equals_direct(self, hb_solution, solver):
        system, sol = hb_solution
        obj = HarmonicAmplitude("a", (2,))
        adj = hb_sensitivity(system, sol, HB_SPECS, obj, solver=solver)
        dire = hb_sensitivity(
            system, sol, HB_SPECS, obj, method="direct", solver=solver
        )
        assert_close(adj.gradient, dire.gradient, rtol=1e-7)

    def test_matches_fd(self, hb_solution):
        from repro.hb.hb_core import harmonic_balance

        system, sol = hb_solution
        obj = HarmonicAmplitude("a", (2,))
        adj = hb_sensitivity(system, sol, HB_SPECS, obj)

        def evaluate(s):
            r = harmonic_balance(s, freqs=[1e6], harmonics=5)
            return obj.value(np.asarray(r.x), r.grid, s)

        fd = central_fd(_hb_stage, HB_SPECS, evaluate)
        assert_close(adj.gradient, fd, rtol=1e-4)

    def test_sample_mean_matches_fd(self, hb_solution):
        from repro.hb.hb_core import harmonic_balance

        system, sol = hb_solution
        obj = SampleMean("a")
        adj = hb_sensitivity(system, sol, HB_SPECS, obj)

        def evaluate(s):
            r = harmonic_balance(s, freqs=[1e6], harmonics=5)
            return obj.value(np.asarray(r.x), r.grid, s)

        fd = central_fd(_hb_stage, HB_SPECS, evaluate)
        assert_close(adj.gradient, fd, rtol=1e-4)

    def test_matrix_free_transpose_matches_assembled(self, hb_solution):
        """Jᵀw from FFT circulant adjoint == assembled J.T @ w."""
        from repro.mpde.mpde_core import (
            MPDEOptions,
            _MPDEProblem,
            _block_diag_sparse,
        )

        system, sol = hb_solution
        grid = sol.grid
        n = system.n
        x = np.asarray(sol.x, dtype=float)
        prob = _MPDEProblem(system, grid, None, MPDEOptions())
        cols = grid.columns(x, n)
        g_vals, c_vals = system.batch_jacobians(cols)
        G_big = _block_diag_sparse(prob.pattern, g_vals, n, grid.total)
        C_big = _block_diag_sparse(prob.pattern, c_vals, n, grid.total)
        J = prob.direct_jacobian(G_big, C_big)

        G_bigT, C_bigT = G_big.T.tocsr(), C_big.T.tocsr()
        rng = np.random.default_rng(0)
        for _ in range(3):
            w = rng.standard_normal(n * grid.total)
            W = grid.reshape(w, n)
            ref = J.T @ w
            got = C_bigT @ grid.apply_derivative_adjoint(W).reshape(-1) + G_bigT @ w
            np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)

    def test_derivative_adjoint_is_true_transpose(self, hb_solution):
        """<Du, v> == <u, Dᵀv> for random fields on the grid."""
        _, sol = hb_solution
        grid = sol.grid
        rng = np.random.default_rng(1)
        for _ in range(3):
            u = rng.standard_normal(grid.shape + (2,))
            v = rng.standard_normal(grid.shape + (2,))
            lhs = np.sum(grid.apply_derivative(u) * v)
            rhs = np.sum(u * grid.apply_derivative_adjoint(v))
            assert lhs == pytest.approx(rhs, rel=1e-10, abs=1e-12)


# --- hypothesis-randomized ladder -------------------------------------

try:
    from hypothesis import given
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestRandomizedLadder:
    @staticmethod
    def _ladder(r_values):
        ckt = Circuit("ladder")
        ckt.vsource("V1", "n0", "0", waveform=3.0)
        for k, r in enumerate(r_values):
            ckt.resistor(f"R{k}", f"n{k}", f"n{k + 1}", r)
            ckt.resistor(f"G{k}", f"n{k + 1}", "0", 10 * r)
        ckt.diode("D1", f"n{len(r_values)}", "0")
        return ckt.compile()

    @given(
        st.lists(
            st.floats(min_value=10.0, max_value=1e5),
            min_size=2,
            max_size=5,
        )
    )
    def test_adjoint_direct_fd_on_random_ladders(self, r_values):
        build = lambda: self._ladder(r_values)
        specs = [f"R{k}.resistance" for k in range(len(r_values))]
        out = f"n{len(r_values)}"
        # tight operating point: the FD reference re-solves at 1e-13, so
        # the analytic gradient must be taken at a matching x (the diode
        # makes the gradient itself ~1e-5-sensitive to solver slack)
        adj = dc_sensitivity(build(), specs, objective=out, abstol=1e-13)
        dire = dc_sensitivity(build(), specs, objective=out, method="direct",
                              abstol=1e-13)
        assert_close(adj.gradient, dire.gradient, rtol=1e-9)
        fd = central_fd(build, specs, _tight_dc(out), rel_step=1e-5)
        scale = np.max(np.abs(fd)) or 1.0
        assert_close(adj.gradient, fd, rtol=RTOL, atol=1e-9 * scale)


# --- explore -----------------------------------------------------------


def _explore_system():
    ckt = Circuit("mixerish")
    ckt.vsource("V1", "in", "0", waveform=3.0)
    ckt.resistor("R1", "in", "a", 1e3)
    ckt.diode("D1", "a", "b")
    ckt.resistor("R2", "b", "0", 2e3)
    ckt.resistor("R3", "a", "0", 1e4)
    ckt.capacitor("C1", "b", "0", 1e-9)
    return ckt.compile()


EXPLORE_PARAMS = ["R1.resistance", "R2.resistance"]


def _corner_grid(m=5):
    r1 = np.linspace(500.0, 2000.0, m)
    r2 = np.linspace(1000.0, 5000.0, m)
    return [(a, b) for a in r1 for b in r2]


class TestExplore:
    def test_woodbury_matches_full(self):
        system = _explore_system()
        pts = _corner_grid()
        full = explore(system, EXPLORE_PARAMS, "b", pts, mode="full",
                       gradients=True)
        wood = explore(system, EXPLORE_PARAMS, "b", pts, gradients=True)
        np.testing.assert_allclose(
            wood.objectives, full.objectives, rtol=1e-7, atol=1e-10
        )
        np.testing.assert_allclose(
            wood.gradients, full.gradients, rtol=1e-5, atol=1e-12
        )
        assert wood.stats["variant_rows"] > 0
        assert wood.mode == "woodbury" and full.mode == "full"

    def test_gradients_match_fd_at_corners(self):
        system = _explore_system()
        pts = _corner_grid(3)
        res = explore(system, EXPLORE_PARAMS, "b", pts, gradients=True)
        for k in (0, len(pts) // 2, len(pts) - 1):
            def evaluate(s, point=pts[k]):
                ps = ParamSet(s, EXPLORE_PARAMS)
                ps.set_values(np.asarray(point, dtype=float))
                return float(dc_analysis(s).x[s.node("b")])

            fd = []
            for j in range(2):
                vals = []
                h = 1e-6 * pts[k][j]
                for sgn in (+1.0, -1.0):
                    s2 = _explore_system()
                    ps = ParamSet(s2, EXPLORE_PARAMS)
                    v = np.asarray(pts[k], dtype=float)
                    v[j] += sgn * h
                    ps.set_values(v)
                    vals.append(float(dc_analysis(s2).x[s2.node("b")]))
                fd.append((vals[0] - vals[1]) / (2 * h))
            assert_close(res.gradients[k], fd, rtol=1e-4)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backends_agree_with_serial(self, backend):
        system = _explore_system()
        pts = _corner_grid(4)
        serial = explore(system, EXPLORE_PARAMS, "b", pts)
        par = explore(system, EXPLORE_PARAMS, "b", pts,
                      workers=2, backend=backend)
        np.testing.assert_allclose(
            par.objectives, serial.objectives, rtol=1e-12, atol=0
        )

    def test_dict_points_and_best_index(self):
        system = _explore_system()
        pts = _corner_grid(3)
        as_dicts = [dict(zip(EXPLORE_PARAMS, p)) for p in pts]
        a = explore(system, EXPLORE_PARAMS, "b", pts)
        b = explore(system, EXPLORE_PARAMS, "b", as_dicts)
        np.testing.assert_array_equal(a.objectives, b.objectives)
        assert a.best_index == int(np.argmin(a.objectives))

    def test_caller_system_never_mutated(self):
        system = _explore_system()
        before = {d.name: d.get_param("resistance")
                  for d in system.devices if hasattr(d, "resistance")}
        explore(system, EXPLORE_PARAMS, "b", _corner_grid(3), gradients=True)
        after = {d.name: d.get_param("resistance")
                 for d in system.devices if hasattr(d, "resistance")}
        assert before == after

    def test_skip_slots_become_nan(self, tmp_path):
        from repro.robust import ChaosSpec, SweepChaos, chaos_sweeps

        system = _explore_system()
        pts = _corner_grid(3)
        chaos = SweepChaos({2: ChaosSpec(kind="error", times=99)}, tmp_path)
        with chaos_sweeps(chaos):
            res = explore(
                system, EXPLORE_PARAMS, "b", pts,
                sweep_options={"on_item_failure": "skip", "retries": 0},
            )
        assert res.stats["skipped"] == [2]
        assert np.isnan(res.objectives[2])
        assert np.all(np.isfinite(np.delete(res.objectives, 2)))

    def test_input_validation(self):
        system = _explore_system()
        with pytest.raises(ValueError, match="mode"):
            explore(system, EXPLORE_PARAMS, "b", _corner_grid(2),
                    mode="magic")
        with pytest.raises(ValueError, match="at least one"):
            explore(system, EXPLORE_PARAMS, "b", [])
        with pytest.raises(ValueError, match="missing"):
            explore(system, EXPLORE_PARAMS, "b",
                    [{"R1.resistance": 1e3}])
        with pytest.raises(ValueError, match="shape"):
            explore(system, EXPLORE_PARAMS, "b", [(1e3,)])
