"""Fault-tolerant sweep execution under injected chaos.

Exercises the resilient engine behind ``repro.perf.sweep_map`` — per-item
deadlines, bounded deterministic retry, quarantine, checkpoint/resume,
crashed-worker replacement — against the :class:`~repro.robust.SweepChaos`
harness, which injects transient errors, hangs, and hard ``os._exit``
worker crashes on a deterministic per-item schedule.  Also locks down the
two headline guarantees:

* a sweep that loses a worker process mid-flight completes **bit-identical**
  to a fault-free serial run;
* a checkpointed sweep interrupted at item *k* resumes executing only the
  remaining items (verified by call counting).

The CI ``chaos-smoke`` job runs this file on the process backend.
"""

import base64
import io
import json
import multiprocessing
import os
import pickle
import signal
import time
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro.analysis import ac_analysis
from repro.perf import (
    ON_ITEM_FAILURE_MODES,
    SweepItemTimeout,
    SweepRemoteError,
    SweepWorkerCrash,
    backoff_seconds,
    resolve_checkpoint,
    resolve_retries,
    resolve_timeout,
    sweep_map,
)
from repro.perf.sweep import (
    CHECKPOINT_COMPACT_ENV,
    CHECKPOINT_ENV,
    CHECKPOINT_KEY_ENV,
    MAX_ITEM_RECORDS_ENV,
    RETRIES_ENV,
    TIMEOUT_ENV,
    resolve_checkpoint_compact,
    resolve_max_item_records,
)
from repro.robust import (
    ChaosSpec,
    SweepChaos,
    TransientFault,
    chaos_sweeps,
    tear_final_line,
)


# --- module-level tasks (picklable, unlike closures/lambdas) ---------------
def _square(x):
    return x * x


def _cube(x):
    return x * x * x


def _boom(x):
    if x == 2:
        raise ValueError(f"boom at {x}")
    return x


def _spectrum(x):
    """Array-returning task: exercises result pickling and FP identity."""
    t = np.linspace(0.0, 1.0, 64)
    return np.sin(2.0 * np.pi * x * t) * np.exp(-0.5 * x * t)


def _sleepy(x):
    time.sleep(30.0)
    return x


class _Counted:
    """Task that counts every execution in a file (workers included)."""

    def __init__(self, marker):
        self.marker = marker

    def __call__(self, x):
        with open(self.marker, "ab") as fh:
            fh.write(b".")
        return x * x


class _CrashOnceAt:
    """Kills its worker process the first time it sees ``bad``.

    The marker file makes the crash once-only, so the executor's serial
    re-run of the lost chunk (legacy path) succeeds in the parent.
    """

    def __init__(self, marker, bad):
        self.marker = marker
        self.bad = bad

    def __call__(self, x):
        if x == self.bad and not os.path.exists(self.marker):
            open(self.marker, "w").close()
            os._exit(3)
        return x * x


def _calls(marker) -> int:
    try:
        return os.path.getsize(marker)
    except OSError:
        return 0


def _nap(x):
    time.sleep(0.3)
    return x


class _UnpicklableError(Exception):
    """Survives ``pickle.dumps`` but not ``pickle.loads`` (the second
    required argument is missing from ``args``) — the classic shape of
    a worker exception that cannot cross the process boundary."""

    def __init__(self, detail, extra):
        super().__init__(detail)
        self.extra = extra


class _FlakyUnpicklable:
    """Raises :class:`_UnpicklableError` on each item's first execution
    (file-marker attempt counter, so it holds across worker processes)."""

    def __init__(self, marker):
        self.marker = marker

    def __call__(self, x):
        seen = f"{self.marker}.{x}"
        if not os.path.exists(seen):
            open(seen, "w").close()
            raise _UnpicklableError(f"flaky at {x}", x)
        return x * 10


# ---------------------------------------------------------------------------
# knob resolution + primitives
# ---------------------------------------------------------------------------
class TestKnobResolution:
    def test_timeout_env(self, monkeypatch):
        monkeypatch.delenv(TIMEOUT_ENV, raising=False)
        assert resolve_timeout(None) is None
        monkeypatch.setenv(TIMEOUT_ENV, "2.5")
        assert resolve_timeout(None) == 2.5
        assert resolve_timeout(1.0) == 1.0  # arg wins over env
        for junk in ("soon", "-1", "0", "inf"):
            monkeypatch.setenv(TIMEOUT_ENV, junk)
            with pytest.raises(ValueError):
                resolve_timeout(None)

    def test_retries_env_and_mode_default(self, monkeypatch):
        monkeypatch.delenv(RETRIES_ENV, raising=False)
        assert resolve_retries(None, "raise") == 0
        assert resolve_retries(None, "skip") == 0
        assert resolve_retries(None, "retry") == 1
        monkeypatch.setenv(RETRIES_ENV, "3")
        assert resolve_retries(None, "raise") == 3
        monkeypatch.setenv(RETRIES_ENV, "-2")
        with pytest.raises(ValueError):
            resolve_retries(None, "raise")

    def test_checkpoint_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv(CHECKPOINT_ENV, raising=False)
        assert resolve_checkpoint(None) is None
        target = str(tmp_path / "ck.jsonl")
        monkeypatch.setenv(CHECKPOINT_ENV, target)
        assert resolve_checkpoint(None) == target

    def test_unknown_failure_mode_rejected(self):
        assert set(ON_ITEM_FAILURE_MODES) == {"raise", "retry", "skip"}
        with pytest.raises(ValueError, match="on_item_failure"):
            sweep_map(_square, [1], on_item_failure="explode")

    def test_env_timeout_engages_ledger(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "30")
        stats = {}
        assert sweep_map(_square, [1, 2, 3], stats=stats) == [1, 4, 9]
        assert stats["fault_policy"]["timeout"] == 30.0
        ledger = {r["index"]: r for r in stats["items"]}
        assert all(ledger[i]["status"] == "ok" for i in range(3))
        assert all(ledger[i]["attempts"] == 1 for i in range(3))
        assert all(ledger[i]["wall_time"] >= 0.0 for i in range(3))

    def test_backoff_deterministic_and_bounded(self):
        assert backoff_seconds(3, 1) == backoff_seconds(3, 1)
        for attempt in (1, 2, 3):
            d = backoff_seconds(5, attempt, base=0.1)
            lo = 0.1 * 2 ** (attempt - 1) * 0.5
            assert lo <= d < 3 * lo
        # jitter decorrelates neighbouring items
        assert len({backoff_seconds(i, 1) for i in range(8)}) > 1

    def test_fault_exceptions_pickle_roundtrip(self):
        for exc in (SweepItemTimeout(3, 0.5, "kill"), SweepWorkerCrash(7, "gone")):
            clone = pickle.loads(pickle.dumps(exc))
            assert type(clone) is type(exc)
            assert clone.index == exc.index
            assert str(clone) == str(exc)

    def test_chaos_spec_validation(self, tmp_path):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            ChaosSpec(kind="meteor")
        with pytest.raises(ValueError, match="times"):
            ChaosSpec(times=0)
        with pytest.raises(TypeError):
            SweepChaos({0: "crash"}, tmp_path)


# ---------------------------------------------------------------------------
# failure policies: raise / retry / skip
# ---------------------------------------------------------------------------
class TestFailurePolicies:
    def test_skip_returns_partial_with_ledger(self):
        stats = {}
        out = sweep_map(_boom, [1, 2, 3], on_item_failure="skip", stats=stats)
        assert out == [1, None, 3]
        assert stats["quarantined"] == 1
        ledger = {r["index"]: r for r in stats["items"]}
        assert ledger[1]["status"] == "skipped"
        assert ledger[1]["attempts"] == 1
        assert "ValueError: boom at 2" in ledger[1]["failure_cause"]
        assert ledger[0]["status"] == ledger[2]["status"] == "ok"

    def test_retry_recovers_transient(self, tmp_path):
        chaos = SweepChaos({1: ChaosSpec(kind="error")}, tmp_path)
        stats = {}
        with chaos_sweeps(chaos):
            out = sweep_map(
                _square, [1, 2, 3], on_item_failure="retry", stats=stats
            )
        assert out == [1, 4, 9]
        assert chaos.attempts(1) == 2
        assert stats["retried"] == 1
        ledger = {r["index"]: r for r in stats["items"]}
        assert ledger[1]["status"] == "ok"
        assert ledger[1]["attempts"] == 2
        assert ledger[1]["retries"] == 1
        assert ledger[1]["backoff_time"] > 0.0
        # the transient stays visible even though a later attempt won
        assert "TransientFault" in ledger[1]["failure_cause"]

    def test_retry_exhausted_raises_transient(self, tmp_path):
        chaos = SweepChaos({1: ChaosSpec(kind="error", times=5)}, tmp_path)
        stats = {}
        with chaos_sweeps(chaos):
            with pytest.raises(TransientFault):
                sweep_map(_square, [1, 2, 3], on_item_failure="retry", stats=stats)
        assert chaos.attempts(1) == 2  # first try + the single default retry
        ledger = {r["index"]: r for r in stats["items"]}
        assert ledger[1]["status"] == "failed"

    def test_retry_on_filters_exception_types(self):
        stats = {}
        out = sweep_map(
            _boom,
            [1, 2, 3],
            on_item_failure="skip",
            retries=3,
            retry_on=(TransientFault,),
            stats=stats,
        )
        assert out == [1, None, 3]
        ledger = {r["index"]: r for r in stats["items"]}
        assert ledger[1]["attempts"] == 1  # ValueError is not retryable here
        assert stats["retried"] == 0

    def test_raise_mode_with_chaos_propagates(self, tmp_path):
        chaos = SweepChaos({0: ChaosSpec(kind="error", times=99)}, tmp_path)
        with chaos_sweeps(chaos):
            with pytest.raises(TransientFault):
                sweep_map(_square, [1, 2, 3])

    def test_quarantined_poison_item(self, tmp_path):
        chaos = SweepChaos({2: ChaosSpec(kind="error", times=99)}, tmp_path)
        stats = {}
        with chaos_sweeps(chaos):
            out = sweep_map(
                _square, [1, 2, 3, 4], on_item_failure="skip", retries=2, stats=stats
            )
        assert out == [1, 4, None, 16]
        assert chaos.attempts(2) == 3  # first try + two retries
        assert stats["quarantined"] == 1
        assert stats["retried"] == 2


# ---------------------------------------------------------------------------
# per-item deadlines, per backend
# ---------------------------------------------------------------------------
class TestDeadlines:
    def test_serial_signal_enforced(self, tmp_path):
        chaos = SweepChaos({1: ChaosSpec(kind="hang", duration=5.0)}, tmp_path)
        stats = {}
        t0 = time.monotonic()
        with chaos_sweeps(chaos):
            out = sweep_map(
                _square,
                [1, 2, 3],
                backend="serial",
                timeout=0.4,
                on_item_failure="retry",
                stats=stats,
            )
        assert out == [1, 4, 9]
        assert time.monotonic() - t0 < 4.0  # SIGALRM cut the 5 s hang short
        assert stats["timeouts"] == 1
        ledger = {r["index"]: r for r in stats["items"]}
        assert ledger[1]["status"] == "ok"
        assert ledger[1]["attempts"] == 2
        assert "signal" in ledger[1]["failure_cause"]

    def test_thread_backend_abandons_stuck_item(self, tmp_path):
        chaos = SweepChaos({0: ChaosSpec(kind="hang", duration=1.5)}, tmp_path)
        stats = {}
        t0 = time.monotonic()
        with chaos_sweeps(chaos):
            out = sweep_map(
                _square,
                [1, 2, 3, 4],
                workers=2,
                backend="thread",
                timeout=0.3,
                on_item_failure="retry",
                stats=stats,
            )
        assert out == [1, 4, 9, 16]
        assert time.monotonic() - t0 < 8.0
        assert stats["timeouts"] >= 1
        ledger = {r["index"]: r for r in stats["items"]}
        assert ledger[0]["status"] == "ok"
        assert "abandoned" in ledger[0]["failure_cause"]

    def test_process_backend_worker_alarm(self, tmp_path):
        chaos = SweepChaos({2: ChaosSpec(kind="hang", duration=30.0)}, tmp_path)
        stats = {}
        t0 = time.monotonic()
        with chaos_sweeps(chaos):
            out = sweep_map(
                _square,
                [1, 2, 3, 4],
                workers=2,
                backend="process",
                timeout=0.5,
                on_item_failure="retry",
                stats=stats,
            )
        assert out == [1, 4, 9, 16]
        assert time.monotonic() - t0 < 25.0  # the in-worker SIGALRM fired
        assert stats["timeouts"] == 1
        ledger = {r["index"]: r for r in stats["items"]}
        assert ledger[2]["status"] == "ok"
        assert "signal" in ledger[2]["failure_cause"]

    def test_timeout_without_retry_raises(self, tmp_path):
        chaos = SweepChaos({1: ChaosSpec(kind="hang", duration=5.0)}, tmp_path)
        with chaos_sweeps(chaos):
            with pytest.raises(SweepItemTimeout) as exc_info:
                sweep_map(_square, [1, 2, 3], backend="serial", timeout=0.3)
        assert exc_info.value.index == 1
        assert exc_info.value.deadline == 0.3


# ---------------------------------------------------------------------------
# worker crashes: pool replacement, breadcrumb replay, bit-identity
# ---------------------------------------------------------------------------
class TestWorkerCrashes:
    def test_worker_crash_mid_sweep_bit_identical(self, tmp_path):
        """ISSUE acceptance: kill a worker mid-sweep; the sweep completes
        bit-identical to a fault-free serial run."""
        items = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0]
        reference = [_spectrum(x) for x in items]
        chaos = SweepChaos({3: ChaosSpec(kind="crash")}, tmp_path)
        stats = {}
        with chaos_sweeps(chaos):
            got = sweep_map(
                _spectrum,
                items,
                workers=2,
                backend="process",
                on_item_failure="retry",
                stats=stats,
            )
        assert chaos.attempts(3) == 2  # crashed once, replayed once
        assert stats["pool_replacements"] >= 1
        assert len(got) == len(reference)
        for r, g in zip(reference, got):
            np.testing.assert_array_equal(r, g)
        ledger = {r["index"]: r for r in stats["items"]}
        assert all(ledger[i]["status"] == "ok" for i in range(len(items)))

    def test_persistent_crasher_is_quarantined(self, tmp_path):
        chaos = SweepChaos({1: ChaosSpec(kind="crash", times=99)}, tmp_path)
        stats = {}
        with chaos_sweeps(chaos):
            out = sweep_map(
                _square,
                [1, 2, 3, 4],
                workers=2,
                backend="process",
                on_item_failure="skip",
                retries=1,
                stats=stats,
            )
        assert out == [1, None, 9, 16]
        assert stats["quarantined"] == 1
        ledger = {r["index"]: r for r in stats["items"]}
        assert ledger[1]["status"] == "skipped"
        assert "SweepWorkerCrash" in ledger[1]["failure_cause"]

    def test_legacy_broken_pool_harvests_and_reruns(self, tmp_path):
        """No fault knobs → legacy chunked path: a broken pool harvests
        completed chunks and re-runs only the missing ones serially."""
        fn = _CrashOnceAt(str(tmp_path / "marker"), bad=5)
        stats = {}
        out = sweep_map(
            fn, list(range(8)), workers=2, backend="process", chunksize=2, stats=stats
        )
        assert out == [x * x for x in range(8)]
        assert stats["backend"] == "serial"
        assert stats["backend_requested"] == "process"


# ---------------------------------------------------------------------------
# checkpoint / resume
# ---------------------------------------------------------------------------
class TestCheckpoint:
    def test_interrupted_sweep_resumes_only_remaining(self, tmp_path):
        """ISSUE acceptance: interrupted at item k, the resumed sweep
        executes only the remaining items (verified by call counting)."""
        marker = str(tmp_path / "calls")
        ck = str(tmp_path / "ck.jsonl")
        fn = _Counted(marker)
        items = list(range(6))

        chaos = SweepChaos({3: ChaosSpec(kind="error", times=99)}, tmp_path / "c")
        with chaos_sweeps(chaos):
            with pytest.raises(TransientFault):
                sweep_map(fn, items, backend="serial", checkpoint=ck)
        assert _calls(marker) == 3  # items 0..2 executed before the abort

        stats = {}
        out = sweep_map(fn, items, backend="serial", checkpoint=ck, stats=stats)
        assert out == [x * x for x in items]
        assert _calls(marker) == 6  # only items 3..5 executed on resume
        assert stats["cached"] == 3
        assert stats["checkpoint"]["restored"] == 3
        assert stats["checkpoint"]["saved"] == 3
        ledger = {r["index"]: r for r in stats["items"]}
        assert all(ledger[i]["status"] == "cached" for i in range(3))
        assert all(ledger[i]["status"] == "ok" for i in range(3, 6))

    def test_checkpoint_keyed_by_fn_fingerprint(self, tmp_path):
        ck = str(tmp_path / "ck.jsonl")
        sweep_map(_square, [1, 2, 3], checkpoint=ck)
        stats = {}
        out = sweep_map(_cube, [1, 2, 3], checkpoint=ck, stats=stats)
        assert out == [1, 8, 27]  # foreign-fingerprint entries ignored
        assert stats["cached"] == 0

    def test_checkpoint_tag_overrides_fingerprint(self, tmp_path):
        ck = str(tmp_path / "ck.jsonl")
        sweep_map(_square, [1, 2, 3], checkpoint=ck, checkpoint_tag="shared")
        stats = {}
        out = sweep_map(_cube, [1, 2, 3], checkpoint=ck, checkpoint_tag="shared", stats=stats)
        assert out == [1, 4, 9]  # restored under the shared tag, not re-run
        assert stats["cached"] == 3

    def test_checkpoint_works_under_process_backend(self, tmp_path):
        ck = str(tmp_path / "ck.jsonl")
        items = [0.5, 1.5, 2.5, 3.5]
        first = sweep_map(_spectrum, items, workers=2, backend="process", checkpoint=ck)
        stats = {}
        second = sweep_map(
            _spectrum, items, workers=2, backend="process", checkpoint=ck, stats=stats
        )
        assert stats["cached"] == len(items)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_corrupt_checkpoint_lines_skipped(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        sweep_map(_square, [1, 2, 3], checkpoint=str(ck))
        with open(ck, "a") as fh:
            fh.write("not json\n")
            fh.write('{"fp": "feedface", "key": "x"}\n')
        stats = {}
        out = sweep_map(_square, [1, 2, 3], checkpoint=str(ck), stats=stats)
        assert out == [1, 4, 9]
        assert stats["cached"] == 3


class TestCheckpointAuth:
    def test_hmac_rejects_tampered_lines(self, monkeypatch, tmp_path):
        """With a key set, a tampered result blob fails its MAC and is
        recomputed instead of being unpickled and trusted."""
        monkeypatch.setenv(CHECKPOINT_KEY_ENV, "sweep-secret")
        marker = str(tmp_path / "calls")
        ck = tmp_path / "ck.jsonl"
        fn = _Counted(marker)
        sweep_map(fn, [1, 2, 3], checkpoint=str(ck))
        assert _calls(marker) == 3
        lines = ck.read_text().splitlines()
        assert all('"mac"' in ln for ln in lines)
        rec = json.loads(lines[0])
        rec["result"] = base64.b64encode(pickle.dumps(999)).decode("ascii")
        lines[0] = json.dumps(rec)
        ck.write_text("\n".join(lines) + "\n")
        stats = {}
        out = sweep_map(fn, [1, 2, 3], checkpoint=str(ck), stats=stats)
        assert out == [1, 4, 9]  # tampered entry recomputed, not restored
        assert stats["cached"] == 2
        assert _calls(marker) == 4

    def test_unauthenticated_lines_ignored_once_key_set(
        self, monkeypatch, tmp_path
    ):
        """Lines saved without a key are never unpickled under a key —
        restore only trusts blobs it can authenticate."""
        ck = tmp_path / "ck.jsonl"
        sweep_map(_square, [1, 2, 3], checkpoint=str(ck))
        monkeypatch.setenv(CHECKPOINT_KEY_ENV, "sweep-secret")
        stats = {}
        out = sweep_map(_square, [1, 2, 3], checkpoint=str(ck), stats=stats)
        assert out == [1, 4, 9]
        assert stats["cached"] == 0


# ---------------------------------------------------------------------------
# hard-kill backstop: queue wait must not count against the deadline
# ---------------------------------------------------------------------------
class TestHardKillBackstop:
    def test_queue_wait_does_not_count_against_deadline(self):
        """Many short items behind few workers: items queued behind
        busy workers must not be hard-killed when the *sweep* outlasts
        the per-item allowance (regression: the backstop used to time
        from submission, and submission drained the whole todo list)."""
        items = list(range(16))  # 16 x 0.3 s / 2 workers >> 2*0.5 + 1 s
        stats = {}
        out = sweep_map(
            _nap, items, workers=2, backend="process", timeout=0.5, stats=stats
        )
        assert out == items
        assert stats["timeouts"] == 0
        assert stats["pool_replacements"] == 0
        assert stats["backend"] == "process"
        ledger = {r["index"]: r for r in stats["items"]}
        assert all(ledger[i]["status"] == "ok" for i in items)


# ---------------------------------------------------------------------------
# pool replacement budget: runaway breakage degrades instead of spinning
# ---------------------------------------------------------------------------
class TestPoolReplacementBudget:
    def test_runaway_pool_breakage_degrades_to_serial(self, monkeypatch):
        """When every submission breaks the pool and leaves no
        breadcrumbs (e.g. a crashing worker initializer), the engine
        must stop replacing pools after its budget and finish the sweep
        on the serial drain rather than spin forever."""
        from repro.perf import sweep as sweep_mod

        def broken_submit(self, i, scratch):
            self.records[i].attempts += 1
            self.attempted[0] += 1
            raise BrokenProcessPool("injected: submit always breaks")

        monkeypatch.setattr(sweep_mod._ResilientSweep, "_submit", broken_submit)
        items = [1, 2, 3]
        stats = {}
        out = sweep_map(
            _square, items, workers=2, backend="process", timeout=5.0, stats=stats
        )
        assert out == [1, 4, 9]
        assert stats["backend"] == "serial"
        assert stats["backend_requested"] == "process"
        assert stats["pool_replacements"] == max(4, 2 * len(items))


# ---------------------------------------------------------------------------
# unpicklable worker exceptions: retry_on stays backend-independent
# ---------------------------------------------------------------------------
class TestRemoteErrors:
    def test_retry_on_matches_unpicklable_worker_exception(self, tmp_path):
        """An exception that cannot pickle back to the parent must
        still match ``retry_on=(ItsType,)`` on the process backend
        (regression: it was rewrapped as a bare RuntimeError, silently
        disabling retry only on this backend)."""
        fn = _FlakyUnpicklable(str(tmp_path / "seen"))
        stats = {}
        out = sweep_map(
            fn,
            [1, 2, 3],
            workers=2,
            backend="process",
            retries=1,
            retry_on=(_UnpicklableError,),
            stats=stats,
        )
        assert out == [10, 20, 30]
        assert stats["retried"] == 3
        ledger = {r["index"]: r for r in stats["items"]}
        assert all(ledger[i]["attempts"] == 2 for i in range(3))

    def test_remote_error_matches_original_bases_not_wrapper(self, tmp_path):
        """Matching is by the original type's MRO: a foreign retry_on
        type does not match (even though the wrapper is a
        RuntimeError), and the surfaced error names the original."""
        fn = _FlakyUnpicklable(str(tmp_path / "seen"))
        with pytest.raises(SweepRemoteError) as exc_info:
            sweep_map(
                fn,
                [1, 2],
                workers=2,
                backend="process",
                retries=2,
                retry_on=(ValueError,),
            )
        assert exc_info.value.original.endswith("_UnpicklableError")
        assert any(n.endswith("_UnpicklableError") for n in exc_info.value.mro)
        assert "builtins.Exception" in exc_info.value.mro


# ---------------------------------------------------------------------------
# fallbacks under fault tolerance (process → thread, mixed outcomes)
# ---------------------------------------------------------------------------
class TestFaultModeFallbacks:
    def test_unpicklable_fn_falls_back_with_ledger(self):
        captured = 2.0
        stats = {}
        out = sweep_map(
            lambda x: x * captured if x != 3 else 1 / 0,
            [1, 2, 3, 4],
            workers=2,
            backend="process",
            on_item_failure="skip",
            stats=stats,
        )
        assert out == [2.0, 4.0, None, 8.0]
        assert stats["backend"] == "thread"
        assert stats["backend_requested"] == "process"
        ledger = {r["index"]: r for r in stats["items"]}
        assert ledger[2]["status"] == "skipped"
        assert "ZeroDivisionError" in ledger[2]["failure_cause"]

    def test_thread_fallback_preserves_exception_identity(self):
        captured = []  # makes the lambda unpicklable via closure

        def fn(x):
            captured.append(x)
            if x == 2:
                raise ZeroDivisionError("identity check")
            return x

        with pytest.raises(ZeroDivisionError, match="identity check"):
            sweep_map(fn, [1, 2, 3], workers=2, backend="process", timeout=60.0)

    def test_mixed_outcomes_keep_item_order(self, tmp_path):
        chaos = SweepChaos(
            {1: ChaosSpec(kind="error"), 3: ChaosSpec(kind="error", times=99)},
            tmp_path,
        )
        stats = {}
        with chaos_sweeps(chaos):
            out = sweep_map(
                _square,
                [1, 2, 3, 4, 5],
                workers=2,
                backend="thread",
                on_item_failure="skip",
                retries=1,
                stats=stats,
            )
        assert out == [1, 4, 9, None, 25]  # positional: order survives chaos
        assert stats["retried"] >= 1
        assert stats["quarantined"] == 1


# ---------------------------------------------------------------------------
# interrupt handling: no orphaned workers
# ---------------------------------------------------------------------------
class TestInterrupt:
    @pytest.mark.parametrize("fault_mode", [False, True])
    def test_keyboard_interrupt_leaves_no_orphans(self, fault_mode):
        def raise_interrupt(signum, frame):
            raise KeyboardInterrupt

        old = signal.signal(signal.SIGALRM, raise_interrupt)
        signal.setitimer(signal.ITIMER_REAL, 1.5)
        try:
            kwargs = {"timeout": 60.0} if fault_mode else {}
            with pytest.raises(KeyboardInterrupt):
                sweep_map(
                    _sleepy,
                    list(range(4)),
                    workers=2,
                    backend="process",
                    chunksize=1,
                    **kwargs,
                )
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old)
        # the pool must be torn down promptly — 30 s sleepers terminated,
        # not waited out, and no worker processes left behind
        deadline = time.monotonic() + 8.0
        while time.monotonic() < deadline:
            if not multiprocessing.active_children():
                break
            time.sleep(0.1)
        assert multiprocessing.active_children() == []


# ---------------------------------------------------------------------------
# trace integration: per-item samples roll up through summarize
# ---------------------------------------------------------------------------
class TestTraceRollup:
    def test_summarize_rolls_up_fault_sweep(self, tmp_path):
        from repro.trace import disable, enable
        from repro.trace.summarize import event_table, load_trace, span_table, summarize

        path = str(tmp_path / "trace.jsonl")
        enable(path)
        try:
            chaos = SweepChaos({1: ChaosSpec(kind="error")}, tmp_path / "c")
            with chaos_sweeps(chaos):
                out = sweep_map(
                    _square,
                    [1, 2, 3, 4],
                    workers=2,
                    backend="process",
                    on_item_failure="retry",
                )
        finally:
            disable()
        assert out == [1, 4, 9, 16]
        records = load_trace(path)
        rows = {r["name"]: r for r in span_table(records)}
        # worker-side sweep.task samples were absorbed into the parent
        # trace, so the p50/p95 rollup covers every item execution
        assert rows["sweep.task"]["count"] >= 4
        assert rows["sweep.task"]["p95"] >= rows["sweep.task"]["p50"] >= 0.0
        events = dict(event_table(records))
        assert events.get("sweep.retry", 0) >= 1
        buf = io.StringIO()
        summarize(path, out=buf)
        assert "sweep.task" in buf.getvalue()
        assert "sweep.retry" in buf.getvalue()


# ---------------------------------------------------------------------------
# chaos driven through every sweep consumer
# ---------------------------------------------------------------------------
class TestConsumersUnderChaos:
    """Each consumer recovers from an injected transient on its first
    sweep item and reproduces the fault-free result exactly."""

    RETRY = {"on_item_failure": "retry"}

    def test_ac_analysis(self, rc_lowpass, tmp_path):
        freqs = [1e3, 1e5, 1e7]
        clean = ac_analysis(rc_lowpass, "V1", freqs)
        stats = {}
        chaos = SweepChaos({0: ChaosSpec(kind="error")}, tmp_path)
        with chaos_sweeps(chaos):
            chaotic = ac_analysis(
                rc_lowpass,
                "V1",
                freqs,
                sweep_options={"on_item_failure": "retry", "stats": stats},
            )
        assert chaos.attempts(0) == 2
        assert stats["retried"] == 1
        np.testing.assert_array_equal(clean.X, chaotic.X)

    def test_hb_sweep(self, tmp_path):
        from repro.hb.hb_core import hb_sweep
        from repro.netlist import Circuit, Sine

        ckt = Circuit("hb")
        ckt.vsource("V1", "in", "0", Sine(offset=0.2, amplitude=0.4, freq=1e6))
        ckt.resistor("R1", "in", "out", 1e3)
        ckt.capacitor("C1", "out", "0", 1e-12)
        ckt.diode("D1", "out", "0")
        system = ckt.compile()
        points = [{"harmonics": [2]}, {"harmonics": [3]}]
        clean = hb_sweep(system, points, freqs=[1e6])
        chaos = SweepChaos({0: ChaosSpec(kind="error")}, tmp_path)
        with chaos_sweeps(chaos):
            chaotic = hb_sweep(
                system, points, sweep_options=dict(self.RETRY), freqs=[1e6]
            )
        assert chaos.attempts(0) == 2
        for a, b in zip(clean, chaotic):
            np.testing.assert_array_equal(a.solution.x, b.solution.x)

    def test_monte_carlo(self, tmp_path):
        from repro.phasenoise import VanDerPol
        from repro.phasenoise.montecarlo import simulate_sde_ensemble

        vdp = VanDerPol(mu=0.2, sigma=0.05)
        x0 = np.array([2.0, 0.0])
        _, clean = simulate_sde_ensemble(vdp, x0, 5.0, 100, 64, seed=7)
        chaos = SweepChaos({0: ChaosSpec(kind="error")}, tmp_path)
        with chaos_sweeps(chaos):
            _, chaotic = simulate_sde_ensemble(
                vdp, x0, 5.0, 100, 64, seed=7, sweep_options=dict(self.RETRY)
            )
        assert chaos.attempts(0) == 2
        np.testing.assert_array_equal(clean, chaotic)

    def test_rom_transfer(self, tmp_path):
        from repro.netlist import Circuit
        from repro.rom import port_descriptor

        ckt = Circuit("rom")
        ckt.vsource("P1", "p", "0", 0.0)
        ckt.resistor("R1", "p", "a", 50.0)
        ckt.capacitor("C1", "a", "0", 1e-12)
        ckt.inductor("L1", "a", "0", 1e-9)
        desc = port_descriptor(ckt.compile(), ["P1"])
        s_vals = 2j * np.pi * np.logspace(6, 9, 4)
        clean = desc.transfer(s_vals)
        chaos = SweepChaos({0: ChaosSpec(kind="error")}, tmp_path)
        with chaos_sweeps(chaos):
            chaotic = desc.transfer(s_vals, sweep_options=dict(self.RETRY))
        assert chaos.attempts(0) == 2
        np.testing.assert_array_equal(clean, chaotic)

    def test_em_fast_extraction(self, tmp_path):
        from repro.em import conductor_bus
        from repro.em.mom import capacitance_matrix_fast

        panels = conductor_bus(2, 2e-6, 60e-6, 6e-6, 1, 8)
        clean = capacitance_matrix_fast(panels, leaf_size=4)
        chaos = SweepChaos({0: ChaosSpec(kind="error")}, tmp_path)
        with chaos_sweeps(chaos):
            chaotic = capacitance_matrix_fast(
                panels, leaf_size=4, sweep_options=dict(self.RETRY)
            )
        assert chaos.attempts(0) >= 2  # faulted once, then clean re-runs
        np.testing.assert_array_equal(clean.cap_matrix, chaotic.cap_matrix)


# ---------------------------------------------------------------------------
# retry_on across multi-level custom exception hierarchies
# ---------------------------------------------------------------------------
class _FaultBase(Exception):
    pass


class _FaultMid(_FaultBase):
    pass


class _FaultLeafUnpicklable(_FaultMid):
    """Grandchild of _FaultBase that cannot pickle back to the parent
    (second required argument missing from ``args``)."""

    def __init__(self, detail, extra):
        super().__init__(detail)
        self.extra = extra


class _DiamondLeft(_FaultBase):
    pass


class _DiamondRight(_FaultBase):
    pass


class _DiamondLeafUnpicklable(_DiamondLeft, _DiamondRight):
    """Diamond MRO: matching must see *both* parent chains."""

    def __init__(self, detail, extra):
        super().__init__(detail)
        self.extra = extra


class _SiblingFault(_FaultBase):
    pass


class _RaiseOnce:
    """Raises ``exc_type`` on each item's first execution (file-marker
    attempt counter, so it holds across worker processes)."""

    def __init__(self, marker, exc_type):
        self.marker = marker
        self.exc_type = exc_type

    def __call__(self, x):
        seen = f"{self.marker}.{x}"
        if not os.path.exists(seen):
            open(seen, "w").close()
            raise self.exc_type(f"fault at {x}", x)
        return x + 100


class TestRemoteErrorHierarchies:
    def test_grandparent_match_across_process_boundary(self, tmp_path):
        """``retry_on=(GrandparentType,)`` must match a grandchild
        exception even when it crosses the process boundary wrapped as
        SweepRemoteError — the whole MRO travels, not just the leaf."""
        fn = _RaiseOnce(str(tmp_path / "seen"), _FaultLeafUnpicklable)
        stats = {}
        out = sweep_map(
            fn, [1, 2, 3], workers=2, backend="process",
            retries=1, retry_on=(_FaultBase,), stats=stats,
        )
        assert out == [101, 102, 103]
        assert stats["retried"] == 3

    def test_diamond_mro_second_branch_matches(self, tmp_path):
        """A diamond-inheritance leaf matches ``retry_on`` naming either
        parent; the second branch is only reachable via the full MRO."""
        fn = _RaiseOnce(str(tmp_path / "seen"), _DiamondLeafUnpicklable)
        stats = {}
        out = sweep_map(
            fn, [1, 2], workers=2, backend="process",
            retries=1, retry_on=(_DiamondRight,), stats=stats,
        )
        assert out == [101, 102]
        assert stats["retried"] == 2

    def test_sibling_type_does_not_match(self, tmp_path):
        """A sibling under the same base is not an ancestor: no retry."""
        fn = _RaiseOnce(str(tmp_path / "seen"), _FaultLeafUnpicklable)
        with pytest.raises(SweepRemoteError) as exc_info:
            sweep_map(
                fn, [1, 2], workers=2, backend="process",
                retries=2, retry_on=(_SiblingFault,),
            )
        assert exc_info.value.original.endswith("_FaultLeafUnpicklable")

    def test_serial_backend_agrees_with_remote_matching(self, tmp_path):
        """Same hierarchy without a process boundary: plain isinstance
        matching reaches the same retry decision."""
        fn = _RaiseOnce(str(tmp_path / "seen"), _FaultLeafUnpicklable)
        stats = {}
        out = sweep_map(fn, [1, 2], backend="serial", retries=1,
                        retry_on=(_FaultBase,), stats=stats)
        assert out == [101, 102]
        assert stats["retried"] == 2


# ---------------------------------------------------------------------------
# checkpoint resume after a SIGKILL mid-write (torn final line)
# ---------------------------------------------------------------------------
def _run_sweep_to_death(marker, ck, chaos_dir):
    """Child-process entry: serial checkpointed sweep whose chaos
    schedule ``os._exit``'s the process at item 3 — a SIGKILL stand-in
    that skips every cleanup path, exactly like the real signal."""
    chaos = SweepChaos({3: ChaosSpec(kind="crash", times=1)}, chaos_dir)
    with chaos_sweeps(chaos):
        sweep_map(_Counted(marker), list(range(6)), backend="serial",
                  checkpoint=ck)


class TestCheckpointTornTail:
    def test_resume_after_sigkill_mid_write_discards_torn_line(self, tmp_path):
        marker = str(tmp_path / "calls")
        ck = str(tmp_path / "ck.jsonl")
        proc = multiprocessing.get_context().Process(
            target=_run_sweep_to_death,
            args=(marker, ck, str(tmp_path / "chaos")),
        )
        proc.start()
        proc.join(60)
        assert proc.exitcode == 87  # died by chaos crash, not cleanly
        assert _calls(marker) == 3  # items 0..2 ran before the death
        # model the kill landing mid-``write``: the final checkpoint
        # line is torn in half
        assert tear_final_line(ck) > 0
        stats = {}
        out = sweep_map(_Counted(marker), list(range(6)), backend="serial",
                        checkpoint=ck, stats=stats)
        assert out == [x * x for x in range(6)]
        # torn record (item 2) discarded and recomputed with 3..5
        assert _calls(marker) == 7
        assert stats["cached"] == 2
        assert stats["checkpoint"]["restored"] == 2


# ---------------------------------------------------------------------------
# size-triggered checkpoint compaction
# ---------------------------------------------------------------------------
class TestCheckpointCompaction:
    def _bloat(self, ck, copies):
        """Append ``copies`` superseded generations of every record."""
        with open(ck) as fh:
            generation = fh.read()
        with open(ck, "a") as fh:
            for _ in range(copies):
                fh.write(generation)

    def test_oversize_checkpoint_compacts_on_open(self, monkeypatch, tmp_path):
        ck = tmp_path / "ck.jsonl"
        sweep_map(_square, [1, 2, 3], checkpoint=str(ck))
        self._bloat(ck, 200)
        big = ck.stat().st_size
        monkeypatch.setenv(CHECKPOINT_COMPACT_ENV, "4096")
        stats = {}
        out = sweep_map(_square, [1, 2, 3], checkpoint=str(ck), stats=stats)
        assert out == [1, 4, 9]
        assert stats["cached"] == 3  # every live record survived
        assert ck.stat().st_size < big
        comp = stats["checkpoint"]["compacted"]
        assert comp["before_bytes"] == big
        assert comp["after_bytes"] == ck.stat().st_size
        assert comp["dropped_lines"] == 3 * 200

    def test_compaction_preserves_foreign_fingerprints(
        self, monkeypatch, tmp_path
    ):
        """Compacting under one function's sweep must not drop another
        function's records from a shared checkpoint file."""
        ck = tmp_path / "ck.jsonl"
        sweep_map(_square, [1, 2, 3], checkpoint=str(ck))
        sweep_map(_cube, [1, 2, 3], checkpoint=str(ck))
        self._bloat(ck, 100)
        monkeypatch.setenv(CHECKPOINT_COMPACT_ENV, "1024")
        stats = {}
        sweep_map(_square, [1, 2, 3], checkpoint=str(ck), stats=stats)
        assert stats["cached"] == 3
        assert "compacted" in stats["checkpoint"]
        stats2 = {}
        out = sweep_map(_cube, [1, 2, 3], checkpoint=str(ck), stats=stats2)
        assert out == [1, 8, 27]
        assert stats2["cached"] == 3  # cube records survived verbatim

    def test_zero_disables_compaction(self, monkeypatch, tmp_path):
        ck = tmp_path / "ck.jsonl"
        sweep_map(_square, [1, 2, 3], checkpoint=str(ck))
        self._bloat(ck, 50)
        size = ck.stat().st_size
        monkeypatch.setenv(CHECKPOINT_COMPACT_ENV, "0")
        stats = {}
        sweep_map(_square, [1, 2, 3], checkpoint=str(ck), stats=stats)
        assert stats["cached"] == 3
        assert ck.stat().st_size == size
        assert "compacted" not in stats["checkpoint"]

    def test_budget_resolution(self, monkeypatch):
        assert resolve_checkpoint_compact(8192) == 8192
        assert resolve_checkpoint_compact(0) == 0
        monkeypatch.setenv(CHECKPOINT_COMPACT_ENV, "1e6")
        assert resolve_checkpoint_compact() == 10 ** 6
        with pytest.raises(ValueError):
            resolve_checkpoint_compact(-1)
        monkeypatch.setenv(CHECKPOINT_COMPACT_ENV, "not-a-size")
        with pytest.raises(ValueError):
            resolve_checkpoint_compact()


# ---------------------------------------------------------------------------
# bounded per-item ledger with exact rollup counters
# ---------------------------------------------------------------------------
class TestItemLedgerCap:
    def test_cap_keeps_failures_and_exact_counts(self):
        items = [2] * 5 + [1] * 45  # _boom raises at 2
        stats = {}
        out = sweep_map(_boom, items, backend="serial",
                        on_item_failure="skip", stats=stats,
                        max_item_records=10)
        assert out[:5] == [None] * 5 and out[5:] == [1] * 45
        assert len(stats["items"]) == 10
        kept = [r["status"] for r in stats["items"]]
        assert kept.count("skipped") == 5  # failures always retained
        assert kept.count("ok") == 5
        assert stats["status_counts"] == {"skipped": 5, "ok": 45}
        assert stats["items_truncated"] == 40
        indices = [r["index"] for r in stats["items"]]
        assert indices == sorted(indices)  # ledger stays in item order

    def test_env_cap(self, monkeypatch):
        monkeypatch.setenv(MAX_ITEM_RECORDS_ENV, "4")
        stats = {}
        out = sweep_map(_square, list(range(9)), backend="serial",
                        retries=1, stats=stats)
        assert out == [x * x for x in range(9)]
        assert len(stats["items"]) == 4
        assert stats["items_truncated"] == 5
        assert stats["status_counts"] == {"ok": 9}

    def test_zero_means_unlimited(self):
        stats = {}
        sweep_map(_square, list(range(9)), backend="serial", retries=1,
                  stats=stats, max_item_records=0)
        assert len(stats["items"]) == 9
        assert stats["items_truncated"] == 0

    def test_resolver_validation(self):
        assert resolve_max_item_records(7) == 7
        assert resolve_max_item_records(0) == 0
        with pytest.raises(ValueError):
            resolve_max_item_records(-3)
