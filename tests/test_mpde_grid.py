"""Tests for multi-time grids, circulant differentiation, and excitations."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mpde import Axis, MPDEGrid, decompose_waveform
from repro.netlist import Circuit, DC, MultiTone, Sine, SquareWave


class TestAxis:
    def test_times_uniform(self):
        ax = Axis("fourier", 1e6, 8)
        t = ax.times()
        assert t.size == 8
        np.testing.assert_allclose(np.diff(t), 1.0 / 1e6 / 8)

    def test_fourier_derivative_of_sine(self):
        ax = Axis("fourier", 2.0, 32)
        t = ax.times()
        y = np.sin(2 * np.pi * 2.0 * t)
        spec = np.fft.fft(y) * ax.deriv_eigenvalues()
        dy = np.real(np.fft.ifft(spec))
        expect = 2 * np.pi * 2.0 * np.cos(2 * np.pi * 2.0 * t)
        np.testing.assert_allclose(dy, expect, atol=1e-9)

    def test_fd_derivative_first_order(self):
        ax = Axis("fd", 1.0, 256)
        t = ax.times()
        y = np.sin(2 * np.pi * t)
        spec = np.fft.fft(y) * ax.deriv_eigenvalues()
        dy = np.real(np.fft.ifft(spec))
        h = 1.0 / 256
        expect = (y - np.roll(y, 1)) / h
        np.testing.assert_allclose(dy, expect, atol=1e-10)

    def test_fd2_more_accurate_than_fd(self):
        exact_err = {}
        for kind in ("fd", "fd2"):
            ax = Axis(kind, 1.0, 64)
            t = ax.times()
            y = np.sin(2 * np.pi * t)
            dy = np.real(np.fft.ifft(np.fft.fft(y) * ax.deriv_eigenvalues()))
            exact_err[kind] = np.max(np.abs(dy - 2 * np.pi * np.cos(2 * np.pi * t)))
        assert exact_err["fd2"] < exact_err["fd"] / 5

    def test_validation(self):
        with pytest.raises(ValueError):
            Axis("nope", 1.0, 8)
        with pytest.raises(ValueError):
            Axis("fourier", -1.0, 8)
        with pytest.raises(ValueError):
            Axis("fourier", 1.0, 1)

    def test_transient_axis_has_no_derivative(self):
        ax = Axis("transient", 0.0, 4)
        assert not ax.periodic
        with pytest.raises(ValueError):
            ax.deriv_eigenvalues()


class TestDecompose:
    def test_sine_single_piece(self):
        pieces = decompose_waveform(Sine(1.0, 5.0))
        assert len(pieces) == 1
        assert pieces[0][0] == 5.0

    def test_dc_is_frequencyless(self):
        pieces = decompose_waveform(DC(3.0))
        assert pieces[0][0] is None

    def test_multitone_split(self):
        w = MultiTone([(1.0, 2.0, 0.0), (0.5, 3.0, 0.1)], offset=1.0)
        pieces = decompose_waveform(w)
        freqs = [p[0] for p in pieces]
        assert freqs == [None, 2.0, 3.0]
        # DC piece carries the offset
        assert pieces[0][1].dc == 1.0


class TestGrid:
    def test_combined_eigenvalues_shape(self):
        grid = MPDEGrid([Axis("fourier", 1.0, 4), Axis("fd", 10.0, 8)])
        lam = grid.combined_eigenvalues()
        assert lam.shape == (4, 8)
        assert grid.total == 32

    def test_apply_derivative_bivariate(self):
        grid = MPDEGrid([Axis("fourier", 1.0, 16), Axis("fourier", 50.0, 32)])
        t1 = grid.axes[0].times()
        t2 = grid.axes[1].times()
        Y = np.sin(2 * np.pi * t1)[:, None] * np.cos(2 * np.pi * 50.0 * t2)[None, :]
        dY = grid.apply_derivative(Y[..., None])[..., 0]
        expect = (
            2 * np.pi * np.cos(2 * np.pi * t1)[:, None] * np.cos(2 * np.pi * 50 * t2)[None, :]
            - 2 * np.pi * 50 * np.sin(2 * np.pi * t1)[:, None] * np.sin(2 * np.pi * 50 * t2)[None, :]
        )
        np.testing.assert_allclose(dY, expect, atol=1e-8)

    def test_flatten_roundtrip(self):
        grid = MPDEGrid([Axis("fourier", 1.0, 4), Axis("fd", 2.0, 6)])
        rng = np.random.default_rng(0)
        x = rng.standard_normal(grid.total * 3)
        X = grid.reshape(x, 3)
        np.testing.assert_array_equal(grid.flatten(X), x)
        cols = grid.columns(x, 3)
        assert cols.shape == (3, grid.total)
        np.testing.assert_array_equal(grid.from_columns(cols), x)

    def test_excitation_axis_matching(self):
        ckt = Circuit()
        ckt.vsource("V1", "a", "0", Sine(1.0, 1e6))
        ckt.vsource("V2", "b", "0", Sine(0.5, 1e9))
        ckt.resistor("R1", "a", "b", 1.0)
        sys = ckt.compile()
        grid = MPDEGrid([Axis("fourier", 1e6, 8), Axis("fourier", 1e9, 8)])
        B = grid.excitation(sys)
        Bg = B.reshape(8, 8, sys.n)
        # V1 varies only along axis 0: constant across axis 1, varying
        # across axis 0
        br1 = sys.branch("V1")
        np.testing.assert_allclose(Bg[:, 0, br1], Bg[:, 5, br1])
        assert not np.allclose(Bg[0, 0, br1], Bg[2, 0, br1])
        # V2 varies only along axis 1
        br2 = sys.branch("V2")
        np.testing.assert_allclose(Bg[0, :, br2], Bg[5, :, br2])
        assert not np.allclose(Bg[0, 0, br2], Bg[0, 2, br2])

    def test_excitation_harmonic_matching(self):
        # a 3 MHz source lives on the 1 MHz axis as its 3rd harmonic
        ckt = Circuit()
        ckt.vsource("V1", "a", "0", Sine(1.0, 3e6))
        ckt.resistor("R1", "a", "0", 1.0)
        sys = ckt.compile()
        grid = MPDEGrid([Axis("fourier", 1e6, 16)])
        B = grid.excitation(sys)
        vals = B[:, sys.branch("V1")]
        t = grid.axes[0].times()
        np.testing.assert_allclose(vals, np.sin(2 * np.pi * 3e6 * t), atol=1e-12)

    def test_excitation_unmatched_raises(self):
        ckt = Circuit()
        ckt.vsource("V1", "a", "0", Sine(1.0, 1.7e6))
        ckt.resistor("R1", "a", "0", 1.0)
        sys = ckt.compile()
        grid = MPDEGrid([Axis("fourier", 1e6, 8)])
        with pytest.raises(ValueError, match="no grid axis"):
            grid.excitation(sys)

    def test_excitation_transient_time_fallback(self):
        ckt = Circuit()
        ckt.vsource("V1", "a", "0", Sine(1.0, 123.0))  # matches no axis
        ckt.vsource("V2", "b", "0", Sine(1.0, 1e6))
        ckt.resistor("R1", "a", "b", 1.0)
        sys = ckt.compile()
        grid = MPDEGrid([Axis("fourier", 1e6, 8)])
        tau = 1.0 / 123.0 / 4.0  # quarter period -> sin = 1
        B = grid.excitation(sys, transient_time=tau)
        np.testing.assert_allclose(B[:, sys.branch("V1")], 1.0, rtol=1e-12)

    def test_interpolate_diagonal_reconstructs(self):
        grid = MPDEGrid([Axis("fourier", 3.0, 16), Axis("fourier", 40.0, 32)])
        t1 = grid.axes[0].times()
        t2 = grid.axes[1].times()
        X = (np.sin(2 * np.pi * 3 * t1)[:, None] + np.cos(2 * np.pi * 40 * t2)[None, :])[..., None]
        t = np.linspace(0, 0.3, 50)
        out = grid.interpolate_diagonal(X, t)
        expect = np.sin(2 * np.pi * 3 * t) + np.cos(2 * np.pi * 40 * t)
        np.testing.assert_allclose(out[:, 0], expect, atol=1e-9)

    @given(n1=st.sampled_from([4, 8, 16]), n2=st.sampled_from([4, 8]))
    def test_derivative_of_constant_is_zero(self, n1, n2):
        grid = MPDEGrid([Axis("fourier", 1.0, n1), Axis("fd", 7.0, n2)])
        X = np.ones((n1, n2, 2)) * 3.7
        dX = grid.apply_derivative(X)
        np.testing.assert_allclose(dX, 0.0, atol=1e-12)


class TestComboMatching:
    def test_am_sidebands_on_two_tone_grid(self):
        """AM sidebands (fc +- fm) land as 2-D mix tones, not aliased
        harmonics of the slow axis."""
        from repro.netlist import am_source

        fc, fm = 100e6, 1e6
        ckt = Circuit()
        ckt.vsource("V1", "a", "0", am_source(1.0, fc, fm, 0.4))
        ckt.resistor("R1", "a", "0", 1.0)
        sys = ckt.compile()
        grid = MPDEGrid([Axis("fourier", fm, 16), Axis("fourier", fc, 16)])
        B = grid.excitation(sys).reshape(16, 16, sys.n)
        br = sys.branch("V1")
        spec = np.fft.fft2(B[:, :, br]) / 256
        # carrier at (0, 1), sidebands at (+-1, 1)
        np.testing.assert_allclose(2 * abs(spec[0, 1]), 1.0, rtol=1e-9)
        np.testing.assert_allclose(2 * abs(spec[1, 1]), 0.2, rtol=1e-9)
        np.testing.assert_allclose(2 * abs(spec[-1, 1]), 0.2, rtol=1e-9)

    def test_unresolvable_harmonic_rejected(self):
        """A 99x harmonic of a 16-sample axis must not silently alias."""
        ckt = Circuit()
        ckt.vsource("V1", "a", "0", Sine(1.0, 99e6))
        ckt.resistor("R1", "a", "0", 1.0)
        sys = ckt.compile()
        grid = MPDEGrid([Axis("fourier", 1e6, 16)])
        with pytest.raises(ValueError, match="resolves"):
            grid.excitation(sys)


class TestCoreHelpers:
    def test_block_diag_assembly(self):
        from repro.mpde.mpde_core import _block_diag_sparse

        pattern = (np.array([0, 1, 1]), np.array([0, 0, 1]))
        vals = np.array([[1.0, 10.0], [2.0, 20.0], [3.0, 30.0]])
        M = _block_diag_sparse(pattern, vals, n=2, m=2).toarray()
        expect = np.array(
            [
                [1.0, 0, 0, 0],
                [2.0, 3.0, 0, 0],
                [0, 0, 10.0, 0],
                [0, 0, 20.0, 30.0],
            ]
        )
        np.testing.assert_array_equal(M, expect)

    def test_circulant_matches_fft_application(self):
        from repro.mpde.mpde_core import _circulant_matrix

        ax = Axis("fourier", 2.0, 8)
        eigs = ax.deriv_eigenvalues()
        D = _circulant_matrix(eigs).toarray()
        rng = np.random.default_rng(0)
        x = rng.standard_normal(8)
        via_fft = np.real(np.fft.ifft(eigs * np.fft.fft(x)))
        np.testing.assert_allclose(D @ x, via_fft, atol=1e-12)

    def test_circulant_complex_offset(self):
        from repro.mpde.mpde_core import _circulant_matrix

        ax = Axis("fourier", 2.0, 8)
        eigs = ax.deriv_eigenvalues() + 1j * 3.0
        D = _circulant_matrix(eigs)
        assert np.iscomplexobj(D.toarray())
        x = np.arange(8.0)
        via_fft = np.fft.ifft(eigs * np.fft.fft(x))
        np.testing.assert_allclose(D @ x, via_fft, atol=1e-10)

    def test_fd_circulant_is_banded(self):
        from repro.mpde.mpde_core import _circulant_matrix

        ax = Axis("fd", 1.0, 64)
        D = _circulant_matrix(ax.deriv_eigenvalues())
        assert D.nnz == 2 * 64  # backward difference: two bands
