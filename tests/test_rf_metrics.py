"""Tests for RF metrics (IP3, compression, noise figure, dB helpers)."""

import numpy as np
import pytest

from repro.analysis import noise_analysis
from repro.hb import harmonic_balance
from repro.netlist import Circuit, MultiTone, Sine
from repro.rf import (
    compression_point,
    db10,
    db20,
    dbc,
    ip3_from_two_tone,
    noise_figure_db,
)


class TestDbHelpers:
    def test_db20(self):
        np.testing.assert_allclose(db20(10.0), 20.0)
        np.testing.assert_allclose(db20([1.0, 0.1]), [0.0, -20.0])

    def test_db10(self):
        np.testing.assert_allclose(db10(100.0), 20.0)

    def test_dbc(self):
        assert dbc(0.01, 1.0) == pytest.approx(-40.0)

    def test_db20_handles_zero(self):
        assert db20(0.0) < -1000


class TestIP3:
    @pytest.fixture(scope="class")
    def cubic_amp(self):
        """Polynomial 'amplifier' with known IP3: i = g v (1 - eps v^2)."""
        g, eps = 1e-3, 30.0
        a_in = 0.01
        ckt = Circuit("cubic")
        ckt.vsource("V1", "in", "0", MultiTone([(a_in, 1e6, 0.0), (a_in, 1.3e6, 0.0)]))
        ckt.nonlinear_resistor(
            "Gamp", "in", "x",
            lambda v: g * v * (1 - eps * v * v),
            lambda v: g * (1 - 3 * eps * v * v),
        )
        ckt.vsource("Vx", "x", "0", 0.0)  # virtual ground: current output
        ckt.resistor("Rconv", "in", "0", 1e6)
        return ckt.compile(), g, eps, a_in

    def test_ip3_against_polynomial_theory(self, cubic_amp):
        sys, g, eps, a_in = cubic_amp
        hb = harmonic_balance(sys, freqs=[1e6, 1.3e6], harmonics=[4, 4])
        # read the output current = branch current of Vx; its unknown index
        # is past the node voltages, so use amplitudes on the branch index
        br = sys.branch("Vx")
        res = ip3_from_two_tone(hb, br, input_amplitude=a_in)
        # theory: IM3/fund = (3/4) eps a^2 -> IIP3 amplitude = sqrt(4/(3 eps))
        iip3_theory = np.sqrt(4.0 / (3.0 * eps))
        np.testing.assert_allclose(
            res["im3_dbc"], db20(0.75 * eps * a_in**2), atol=0.3
        )
        np.testing.assert_allclose(
            res["iip3_amplitude"], iip3_theory, rtol=0.05
        )

    def test_zero_im3_raises(self):
        ckt = Circuit("linear")
        ckt.vsource("V1", "in", "0", MultiTone([(0.1, 1e6, 0.0), (0.1, 1.3e6, 0.0)]))
        ckt.resistor("R1", "in", "out", 1e3)
        ckt.resistor("R2", "out", "0", 1e3)
        sys = ckt.compile()
        hb = harmonic_balance(sys, freqs=[1e6, 1.3e6], harmonics=[2, 2])
        res = ip3_from_two_tone(hb, "out")
        # a linear circuit has IM3 at numerical roundoff: the intercept
        # point blows up and the IM3 level is far below any physical spur
        assert res["im3_dbc"] < -250.0
        assert res["oip3_amplitude"] > 1e3


class TestCompression:
    def test_analytic_compressive_gain(self):
        # out = G a (1 - a^2/3): gain drops 1 dB when a^2/3 ~ 0.109
        def solve(a):
            return 10.0 * a * max(1.0 - a * a / 3.0, 0.05)

        sweep = compression_point(solve, np.geomspace(0.01, 1.0, 25))
        a_1db = np.sqrt(3 * (1 - 10 ** (-1 / 20)))
        np.testing.assert_allclose(sweep.p1db_input, a_1db, rtol=0.08)
        assert sweep.small_signal_gain == pytest.approx(20.0, abs=0.01)

    def test_no_compression_gives_nan(self):
        sweep = compression_point(lambda a: 5.0 * a, [0.01, 0.1, 1.0])
        assert np.isnan(sweep.p1db_input)

    def test_gain_db_property(self):
        sweep = compression_point(lambda a: 2.0 * a, [0.1, 1.0])
        np.testing.assert_allclose(sweep.gain_db, db20(2.0))


class TestNoiseFigure:
    def test_attenuator_nf_equals_loss(self):
        """A matched resistive attenuator's NF equals its attenuation."""
        ckt = Circuit("pad")
        ckt.vsource("Vs", "src", "0", 0.0)
        ckt.resistor("Rs", "src", "in", 50.0)
        # 6 dB pi pad (approx): 150 / 37.5 / 150
        ckt.resistor("Rp1", "in", "0", 150.0)
        ckt.resistor("Rser", "in", "out", 37.5)
        ckt.resistor("Rp2", "out", "0", 150.0)
        ckt.resistor("RL", "out", "0", 50.0)
        sys = ckt.compile()
        nz = noise_analysis(sys, "out", [1e6])
        nf = noise_figure_db(nz, "Rs.thermal")
        # the spot-NF helper counts every downstream resistor including
        # the load, so it sits above the textbook 6 dB pad figure
        assert 6.0 < nf < 10.5

    def test_noiseless_circuit_nf_zero(self):
        """If only the source resistor exists, NF = 0 dB."""
        ckt = Circuit("bare")
        ckt.vsource("Vs", "src", "0", 0.0)
        ckt.resistor("Rs", "src", "out", 50.0)
        ckt.capacitor("CL", "out", "0", 1e-12)
        sys = ckt.compile()
        nz = noise_analysis(sys, "out", [1e6])
        assert noise_figure_db(nz, "Rs.thermal") == pytest.approx(0.0, abs=1e-9)

    def test_bad_source_name(self):
        ckt = Circuit("bare")
        ckt.resistor("R1", "out", "0", 50.0)
        sys = ckt.compile()
        nz = noise_analysis(sys, "out", [1e6])
        with pytest.raises(KeyError):
            noise_figure_db(nz, "nope.thermal")


class TestACPR:
    def test_regrowth_grows_faster_than_signal(self):
        """Spectral regrowth (ACPR) degrades 2 dB per 1 dB of drive —
        the third-order signature."""
        from repro.rf import acpr_from_two_tone

        def acpr_at(a_in):
            ckt = Circuit("pa")
            ckt.vsource(
                "V1", "in", "0", MultiTone([(a_in, 10e6, 0.0), (a_in, 10.1e6, 0.0)])
            )
            ckt.nonlinear_resistor(
                "Gpa", "in", "x",
                lambda v: 1e-3 * v * (1 - 8.0 * v * v),
                lambda v: 1e-3 * (1 - 24.0 * v * v),
            )
            ckt.vsource("Vx", "x", "0", 0.0)
            ckt.resistor("Rconv", "in", "0", 1e6)
            sys = ckt.compile()
            hb = harmonic_balance(sys, freqs=[10e6, 10.1e6], harmonics=[5, 5])
            return acpr_from_two_tone(hb, sys.branch("Vx"))

        low = acpr_at(0.02)
        high = acpr_at(0.04)
        # channel power rises ~6 dB, adjacent ~18 dB -> ACPR worsens ~12 dB
        delta = high["acpr_adjacent_db"] - low["acpr_adjacent_db"]
        assert 9.0 < delta < 15.0
        # alternate channel (IM5) sits below the adjacent (IM3)
        assert high["acpr_alternate_db"] < high["acpr_adjacent_db"]

    def test_linear_circuit_has_deep_acpr(self):
        from repro.rf import acpr_from_two_tone

        ckt = Circuit("lin")
        ckt.vsource("V1", "in", "0", MultiTone([(0.1, 10e6, 0.0), (0.1, 10.1e6, 0.0)]))
        ckt.resistor("R1", "in", "out", 1e3)
        ckt.resistor("R2", "out", "0", 1e3)
        sys = ckt.compile()
        hb = harmonic_balance(sys, freqs=[10e6, 10.1e6], harmonics=[3, 3])
        res = acpr_from_two_tone(hb, "out")
        assert res["acpr_adjacent_db"] < -200
