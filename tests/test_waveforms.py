"""Tests for source waveforms."""

import numpy as np
import pytest

from repro.netlist import DC, PWL, MultiTone, Pulse, Sine, SquareWave


class TestDC:
    def test_value_everywhere(self):
        w = DC(2.5)
        t = np.linspace(0, 1, 7)
        np.testing.assert_array_equal(w(t), np.full(7, 2.5))
        assert w.dc == 2.5
        assert w.frequencies == ()


class TestSine:
    def test_amplitude_and_period(self):
        w = Sine(amplitude=2.0, freq=10.0)
        t = np.linspace(0, 0.1, 1000, endpoint=False)
        v = w(t)
        assert abs(v.max() - 2.0) < 1e-3
        assert abs(v.min() + 2.0) < 1e-3
        np.testing.assert_allclose(w(0.0), 0.0, atol=1e-12)

    def test_offset_and_phase(self):
        w = Sine(1.0, 5.0, phase=np.pi / 2, offset=3.0)
        np.testing.assert_allclose(w(0.0), 4.0)  # offset + sin(pi/2)
        assert w.dc == 3.0
        assert w.frequencies == (5.0,)


class TestMultiTone:
    def test_sum_of_tones(self):
        w = MultiTone([(1.0, 3.0, 0.0), (0.5, 7.0, 0.1)], offset=0.2)
        t = np.array([0.0, 0.01, 0.02])
        expect = 0.2 + np.sin(2 * np.pi * 3 * t) + 0.5 * np.sin(2 * np.pi * 7 * t + 0.1)
        np.testing.assert_allclose(w(t), expect, rtol=1e-12)

    def test_frequencies(self):
        w = MultiTone([(1.0, 3.0, 0.0), (0.5, 7.0, 0.0)])
        assert w.frequencies == (3.0, 7.0)
        assert w.dc == 0.0


class TestSquareWave:
    def test_levels(self):
        w = SquareWave(amplitude=1.0, freq=10.0, sharpness=50.0)
        assert w(0.025) > 0.99  # quarter period: top
        assert w(0.075) < -0.99
        assert w.frequencies == (10.0,)

    def test_smooth_edges(self):
        w = SquareWave(1.0, 1.0, sharpness=10.0)
        t = np.linspace(0, 1, 10001)
        dv = np.diff(w(t)) / np.diff(t)
        assert np.max(np.abs(dv)) < 100.0  # finite slew rate


class TestPulse:
    def test_plateau_levels(self):
        w = Pulse(v1=0.0, v2=5.0, delay=0.0, rise=0.1, fall=0.1, width=0.3, period=1.0)
        assert w(0.2) == 5.0
        assert w(0.9) == 0.0

    def test_rise_interpolation(self):
        w = Pulse(v1=0.0, v2=4.0, rise=0.2, fall=0.1, width=0.3, period=1.0)
        np.testing.assert_allclose(w(0.1), 2.0)

    def test_periodicity(self):
        w = Pulse(v1=-1.0, v2=1.0, rise=0.05, fall=0.05, width=0.4, period=1.0)
        t = np.linspace(0, 1, 100, endpoint=False)
        np.testing.assert_allclose(w(t), w(t + 3.0), atol=1e-12)

    def test_delay_holds_v1(self):
        w = Pulse(v1=0.3, v2=1.0, delay=0.5, rise=0.01, fall=0.01, width=0.2, period=1.0)
        assert w(0.2) == 0.3

    def test_dc_average(self):
        w = Pulse(v1=0.0, v2=1.0, rise=1e-9, fall=1e-9, width=0.5, period=1.0)
        assert abs(w.dc - 0.5) < 1e-6


class TestPWL:
    def test_interpolation(self):
        w = PWL([(0.0, 0.0), (1.0, 2.0), (2.0, 0.0)])
        np.testing.assert_allclose(w(0.5), 1.0)
        np.testing.assert_allclose(w(1.5), 1.0)

    def test_clamps_outside(self):
        w = PWL([(0.0, 1.0), (1.0, 3.0)])
        assert w(-1.0) == 1.0
        assert w(2.0) == 3.0

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            PWL([(0.0, 1.0)])


class TestAMSource:
    def test_matches_direct_am_expression(self):
        from repro.netlist import am_source

        w = am_source(1.0, 1e6, 1e4, 0.5)
        t = np.linspace(0, 1e-4, 5001)
        direct = (1 + 0.5 * np.sin(2 * np.pi * 1e4 * t)) * np.sin(2 * np.pi * 1e6 * t)
        np.testing.assert_allclose(w(t), direct, atol=1e-12)

    def test_three_tones(self):
        from repro.netlist import am_source

        w = am_source(2.0, 1e6, 1e4, 0.3)
        assert sorted(w.frequencies) == [0.99e6, 1e6, 1.01e6]

    def test_sideband_amplitudes(self):
        from repro.netlist import am_source

        w = am_source(2.0, 1e6, 1e4, 0.3)
        amps = sorted(abs(a) for a, _, _ in w.tones)
        np.testing.assert_allclose(amps, [0.3, 0.3, 2.0])
