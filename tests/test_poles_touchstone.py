"""Tests for pole analysis and Touchstone I/O."""

import numpy as np
import pytest

from repro.analysis import pole_analysis
from repro.em import (
    TouchstoneData,
    read_touchstone,
    s_to_z,
    write_touchstone,
    z_to_s,
)
from repro.netlist import Circuit
from repro.rf import lc_oscillator


class TestPoleAnalysis:
    def test_rc_single_pole(self):
        ckt = Circuit()
        ckt.vsource("V1", "in", "0", 0.0)
        ckt.resistor("R1", "in", "out", 1e3)
        ckt.capacitor("C1", "out", "0", 1e-9)
        sys = ckt.compile()
        res = pole_analysis(sys)
        assert res.is_stable
        np.testing.assert_allclose(res.dominant(), -1.0 / (1e3 * 1e-9), rtol=1e-9)

    def test_rlc_conjugate_pair(self):
        R, L, C = 1e3, 1e-6, 1e-9
        ckt = Circuit()
        ckt.isource("I1", "0", "t", 0.0)
        ckt.resistor("R1", "t", "0", R)
        ckt.inductor("L1", "t", "0", L)
        ckt.capacitor("C1", "t", "0", C)
        sys = ckt.compile()
        res = pole_analysis(sys)
        f0 = 1.0 / (2 * np.pi * np.sqrt(L * C))
        np.testing.assert_allclose(sorted(res.frequencies_hz())[-1], f0, rtol=1e-2)
        assert res.is_stable

    def test_oscillator_startup_criterion(self):
        """Paper sec. 3 oscillators: RHP pole pair at the DC point."""
        sys = lc_oscillator()  # g1 > 1/R: must start up
        res = pole_analysis(sys)
        assert not res.is_stable
        assert res.unstable.size == 2  # complex growing pair
        np.testing.assert_allclose(
            np.abs(np.imag(res.unstable[0])) / (2 * np.pi), 5.03e9, rtol=0.05
        )

    def test_marginal_oscillator_is_stable(self):
        sys = lc_oscillator(g1=2e-3, allow_no_startup=True)  # below 1/R
        res = pole_analysis(sys)
        assert res.is_stable


class TestTouchstone:
    @pytest.fixture
    def two_port(self):
        rng = np.random.default_rng(0)
        freqs = np.geomspace(1e8, 1e10, 7)
        Z = (
            50.0
            + 20 * rng.standard_normal((7, 2, 2))
            + 10j * rng.standard_normal((7, 2, 2))
        )
        return freqs, z_to_s(Z[0])[None].repeat(7, 0) * 0 + np.array(
            [z_to_s(Z[k]) for k in range(7)]
        )

    @pytest.mark.parametrize("fmt", ["RI", "MA", "DB"])
    def test_roundtrip_two_port(self, tmp_path, two_port, fmt):
        freqs, S = two_port
        path = str(tmp_path / "net.s2p")
        write_touchstone(path, freqs, S, fmt=fmt, comment="test network")
        data = read_touchstone(path)
        assert data.num_ports == 2
        np.testing.assert_allclose(data.freqs, freqs, rtol=1e-8)
        np.testing.assert_allclose(data.S, S, rtol=1e-6, atol=1e-9)
        assert data.z0 == 50.0

    def test_one_port_roundtrip(self, tmp_path):
        freqs = np.array([1e9, 2e9])
        S = np.array([0.5 + 0.1j, -0.2 + 0.4j])[:, None, None]
        path = str(tmp_path / "coil.s1p")
        write_touchstone(path, freqs, S, z0=75.0)
        data = read_touchstone(path)
        assert data.z0 == 75.0
        np.testing.assert_allclose(data.S, S, rtol=1e-8)

    def test_ghz_unit_parsing(self, tmp_path):
        path = str(tmp_path / "x.s1p")
        with open(path, "w") as fh:
            fh.write("# GHz S MA R 50\n1.0 0.5 45.0\n2.0 0.25 -90.0\n")
        data = read_touchstone(path)
        np.testing.assert_allclose(data.freqs, [1e9, 2e9])
        np.testing.assert_allclose(
            data.S[0, 0, 0], 0.5 * np.exp(1j * np.pi / 4), rtol=1e-9
        )

    def test_fit_from_touchstone(self, tmp_path):
        """Measured-file workflow: .s1p -> Y(f) -> vector fit -> model."""
        from repro.rom import vector_fit

        R, L, C = 5.0, 2e-9, 1e-12
        freqs = np.geomspace(1e8, 2e10, 100)
        s = 2j * np.pi * freqs
        Y = 1.0 / (R + s * L + 1.0 / (s * C))
        Z = 1.0 / Y
        S = np.array([[[ (z - 50) / (z + 50) ]] for z in Z])
        path = str(tmp_path / "res.s1p")
        write_touchstone(path, freqs, S)
        data = read_touchstone(path)
        z_back = 50.0 * (1 + data.S[:, 0, 0]) / (1 - data.S[:, 0, 0])
        fit = vector_fit(data.freqs, 1.0 / z_back, n_poles=2, fit_d=False)
        assert fit.rms_error < 1e-3
        f0 = 1 / (2 * np.pi * np.sqrt(L * C))
        np.testing.assert_allclose(
            np.abs(fit.poles[0].imag) / (2 * np.pi), f0, rtol=0.02
        )


class TestTouchstoneHardening:
    @staticmethod
    def _random_sparams(rng, m, p):
        S = 0.3 * rng.standard_normal((m, p, p)) + 0.3j * rng.standard_normal(
            (m, p, p)
        )
        return S

    @pytest.mark.parametrize("fmt", ["RI", "MA", "DB"])
    @pytest.mark.parametrize("ports", [1, 2, 3, 4])
    def test_roundtrip_formats_by_port_count(self, tmp_path, fmt, ports):
        rng = np.random.default_rng(ports * 10 + len(fmt))
        freqs = np.linspace(1e9, 5e9, 5)
        S = self._random_sparams(rng, 5, ports)
        path = str(tmp_path / f"dut.s{ports}p")
        write_touchstone(path, freqs, S, fmt=fmt)
        data = read_touchstone(path)
        assert data.num_ports == ports
        np.testing.assert_allclose(data.freqs, freqs, rtol=1e-8)
        np.testing.assert_allclose(data.S, S, rtol=1e-6, atol=1e-9)

    def test_wrapped_rows_written_for_three_ports(self, tmp_path):
        # p >= 3 must write one matrix row per line (<= 4 complex values),
        # the version-1 wrapping convention other tools expect
        freqs = np.array([1e9])
        S = np.arange(9).reshape(1, 3, 3) * (0.01 + 0.01j)
        path = str(tmp_path / "wrap.s3p")
        write_touchstone(path, freqs, S)
        data_lines = [
            l for l in open(path).read().splitlines()
            if l and not l.startswith(("!", "#"))
        ]
        assert len(data_lines) == 3  # one per matrix row
        assert len(data_lines[0].split()) == 7  # f + 3 complex values
        assert len(data_lines[1].split()) == 6  # continuation, no frequency

    def test_wrapped_rows_infer_ports_without_extension(self, tmp_path):
        # wrapped 3-port data in a file whose name gives no port hint:
        # the odd/even row-length record heuristic must find p = 3
        rng = np.random.default_rng(7)
        freqs = np.linspace(1e9, 3e9, 4)
        S = self._random_sparams(rng, 4, 3)
        src = str(tmp_path / "dut.s3p")
        write_touchstone(src, freqs, S)
        anon = str(tmp_path / "measurement.dat")
        with open(src) as fin, open(anon, "w") as fout:
            fout.write(fin.read())
        data = read_touchstone(anon)
        assert data.num_ports == 3
        np.testing.assert_allclose(data.S, S, rtol=1e-6, atol=1e-9)

    def test_option_line_trailing_r_token(self, tmp_path):
        # "R" as the last option token must not crash; Z0 stays default
        path = str(tmp_path / "trailing.s1p")
        with open(path, "w") as fh:
            fh.write("# Hz S MA R\n1e9 0.5 45.0\n")
        data = read_touchstone(path)
        assert data.z0 == 50.0
        np.testing.assert_allclose(data.freqs, [1e9])

    def test_option_line_junk_after_r(self, tmp_path):
        path = str(tmp_path / "junk.s1p")
        with open(path, "w") as fh:
            fh.write("# Hz S RI R fifty\n1e9 0.5 0.1\n")
        data = read_touchstone(path)
        assert data.z0 == 50.0
        np.testing.assert_allclose(data.S[0, 0, 0], 0.5 + 0.1j)

    def test_empty_file_raises(self, tmp_path):
        path = str(tmp_path / "empty.s2p")
        with open(path, "w") as fh:
            fh.write("# Hz S RI R 50\n")
        with pytest.raises(ValueError, match="no data rows"):
            read_touchstone(path)

    def test_db_format_roundtrips_small_magnitudes(self, tmp_path):
        # dB formatting of near-zero entries must survive the round trip
        freqs = np.array([1e9, 2e9])
        S = np.array(
            [[[1e-6 + 0j, 0.9 + 0.1j], [0.9 - 0.1j, 1e-8 + 0j]]] * 2
        )
        path = str(tmp_path / "small.s2p")
        write_touchstone(path, freqs, S, fmt="DB")
        data = read_touchstone(path)
        np.testing.assert_allclose(data.S, S, rtol=1e-6, atol=1e-12)
