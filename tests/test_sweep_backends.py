"""Cross-backend equivalence suite for the sweep executor.

The contract under test (see ``repro.perf.sweep``): for a pure task,
``sweep_map`` returns **bit-identical** results — same values, same
ordering, same attached reports — whichever backend (serial / thread /
process) and worker count (1 / 2 / 4) runs it.  Also locks down the
strict worker/backend validation, the transparent process→thread
fallback for unpicklable tasks, exception propagation, and the stats
accounting every benchmark relies on.
"""

import pickle

import numpy as np
import pytest

from repro.netlist import Circuit, Sine
from repro.perf import BACKENDS, resolve_backend, resolve_workers, sweep_map
from repro.perf.sweep import BACKEND_ENV, WORKERS_ENV, worker_factor_cache
from repro.robust import SolveReport

WORKER_COUNTS = (1, 2, 4)


# --- module-level tasks (picklable, unlike closures/lambdas) ---------------
def _square(x):
    return x * x


def _spectrum(x):
    """Array-returning task: exercises result pickling and FP identity."""
    t = np.linspace(0.0, 1.0, 64)
    return np.sin(2.0 * np.pi * x * t) * np.exp(-0.5 * x * t)


def _boom(x):
    if x == 2:
        raise ValueError(f"boom at {x}")
    return x


class _FactorTask:
    """Task that keys the per-worker factor cache on every item."""

    def __init__(self, A):
        self.A = A

    def __call__(self, k):
        cache = worker_factor_cache()
        solve, _ = cache.factor("A", lambda: self.A)
        return solve(np.full(self.A.shape[0], float(k)))


# ---------------------------------------------------------------------------
# strict configuration validation
# ---------------------------------------------------------------------------
class TestResolveWorkers:
    @pytest.mark.parametrize("bad", [0, -1, -3, 2.5, "x", True, False, [2]])
    def test_rejects_non_positive_and_non_int(self, bad):
        with pytest.raises(ValueError):
            resolve_workers(bad)

    def test_rejects_bad_values_in_sweep_map_too(self):
        for bad in (0, -3, 2.5, "x", True):
            with pytest.raises(ValueError):
                sweep_map(_square, [1, 2, 3], workers=bad)

    def test_env_junk_raises(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ValueError, match="not an integer"):
            resolve_workers(None)
        monkeypatch.setenv(WORKERS_ENV, "0")
        with pytest.raises(ValueError, match=">= 1"):
            resolve_workers(None)

    def test_accepts_integers(self, monkeypatch):
        assert resolve_workers(1) == 1
        assert resolve_workers(np.int64(3)) == 3
        monkeypatch.setenv(WORKERS_ENV, " 4 ")
        assert resolve_workers(None) == 4
        monkeypatch.setenv(WORKERS_ENV, "")
        assert resolve_workers(None) == 1


class TestResolveBackend:
    def test_default_and_env(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend(None) == "thread"
        monkeypatch.setenv(BACKEND_ENV, "process")
        assert resolve_backend(None) == "process"
        assert resolve_backend("serial") == "serial"  # arg wins over env

    def test_unknown_raises(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown sweep backend"):
            resolve_backend("fibers")
        monkeypatch.setenv(BACKEND_ENV, "gpu")
        with pytest.raises(ValueError, match="unknown sweep backend"):
            resolve_backend(None)
        with pytest.raises(ValueError, match="unknown sweep backend"):
            sweep_map(_square, [1], backend="gpu")


# ---------------------------------------------------------------------------
# bit-identical results across every backend x worker count
# ---------------------------------------------------------------------------
class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_scalar_results_and_ordering(self, backend, workers):
        items = list(range(23))
        expect = [_square(x) for x in items]
        assert sweep_map(_square, items, workers=workers, backend=backend) == expect

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_array_results_bit_identical(self, backend, workers):
        items = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5]
        reference = [_spectrum(x) for x in items]
        got = sweep_map(_spectrum, items, workers=workers, backend=backend)
        assert len(got) == len(reference)
        for r, g in zip(reference, got):
            np.testing.assert_array_equal(r, g)

    @pytest.mark.parametrize("workers", (2, 4))
    def test_process_chunking_never_changes_results(self, workers):
        items = list(range(17))
        expect = [_square(x) for x in items]
        for chunksize in (1, 2, 5, 100):
            got = sweep_map(
                _square, items, workers=workers, backend="process", chunksize=chunksize
            )
            assert got == expect

    def test_report_attachment_identical_across_backends(self):
        from repro.rom import port_descriptor

        ckt = Circuit("rom")
        ckt.vsource("P1", "p", "0", 0.0)
        ckt.resistor("R1", "p", "a", 50.0)
        ckt.capacitor("C1", "a", "0", 1e-12)
        ckt.inductor("L1", "a", "0", 1e-9)
        desc = port_descriptor(ckt.compile(), ["P1"])
        s_vals = 2j * np.pi * np.logspace(6, 10, 12)

        results = {}
        strategies = {}
        for backend in BACKENDS:
            rep = SolveReport(analysis="rom")
            results[backend] = desc.transfer(
                s_vals, workers=4, backend=backend, report=rep
            )
            strategies[backend] = [a.strategy for a in rep.attempts]
        np.testing.assert_array_equal(results["serial"], results["thread"])
        np.testing.assert_array_equal(results["serial"], results["process"])
        # per-point sub-reports merge in frequency order on every backend
        assert strategies["serial"] == strategies["thread"] == strategies["process"]
        assert len(strategies["serial"]) >= s_vals.size

    def test_hb_and_monte_carlo_process_equivalence(self):
        from repro.hb.hb_core import hb_sweep
        from repro.phasenoise import VanDerPol
        from repro.phasenoise.montecarlo import simulate_sde_ensemble

        ckt = Circuit("hb")
        ckt.vsource("V1", "in", "0", Sine(offset=0.2, amplitude=0.4, freq=1e6))
        ckt.resistor("R1", "in", "out", 1e3)
        ckt.capacitor("C1", "out", "0", 1e-12)
        ckt.diode("D1", "out", "0")
        system = ckt.compile()
        points = [{"harmonics": [h]} for h in (3, 4, 5)]
        serial = hb_sweep(system, points, workers=1, freqs=[1e6])
        procs = hb_sweep(system, points, workers=4, backend="process", freqs=[1e6])
        for a, b in zip(serial, procs):
            np.testing.assert_array_equal(a.solution.x, b.solution.x)

        vdp = VanDerPol(mu=0.2, sigma=0.05)
        x0 = np.array([2.0, 0.0])
        _, tr1 = simulate_sde_ensemble(vdp, x0, 10.0, 200, 70, seed=7, workers=1)
        _, trp = simulate_sde_ensemble(
            vdp, x0, 10.0, 200, 70, seed=7, workers=4, backend="process"
        )
        np.testing.assert_array_equal(tr1, trp)


# ---------------------------------------------------------------------------
# exception propagation + stats accounting
# ---------------------------------------------------------------------------
class TestFailurePaths:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_fn_exception_propagates(self, backend, workers):
        with pytest.raises(ValueError, match="boom at 2"):
            sweep_map(_boom, [1, 2, 3], workers=workers, backend=backend)

    def test_process_first_failure_in_item_order_wins(self):
        # items 3 and 5 both raise; the earliest *in item order* surfaces
        with pytest.raises(ValueError, match="boom at 3"):
            sweep_map(
                _boom_many, [2, 3, 4, 5], workers=4, backend="process", chunksize=1
            )

    def test_stats_filled_on_process_failure(self):
        stats = {}
        with pytest.raises(ValueError, match="boom at 2"):
            sweep_map(
                _boom, [1, 2, 3, 4], workers=2, backend="process", stats=stats
            )
        assert stats["tasks"] == 4
        assert stats["backend"] == "process"
        assert stats["workers"] == 2
        # all chunks were submitted before the failure surfaced
        assert stats["attempted"] == 4

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stats_accounting(self, backend):
        stats = {}
        out = sweep_map(_square, list(range(10)), workers=4, backend=backend, stats=stats)
        assert out == [x * x for x in range(10)]
        assert stats["tasks"] == 10
        assert stats["attempted"] == 10
        if backend == "serial":
            assert stats["workers"] == 1
            assert stats["backend"] == "serial"
        else:
            assert stats["workers"] == 4
            assert stats["backend"] == backend
            assert "backend_requested" not in stats
        if backend == "process":
            assert stats["chunksize"] >= 1

    def test_workers_one_is_not_a_fallback(self):
        stats = {}
        sweep_map(_square, [1, 2, 3], workers=1, backend="process", stats=stats)
        assert stats["backend"] == "serial"
        assert "backend_requested" not in stats


def _boom_many(x):
    if x % 2 == 1:
        raise ValueError(f"boom at {x}")
    return x


# ---------------------------------------------------------------------------
# process-backend specifics: fallback, chunking, worker caches, pickling
# ---------------------------------------------------------------------------
class TestProcessBackend:
    def test_unpicklable_fn_falls_back_to_threads(self):
        captured = 3.0
        stats = {}
        out = sweep_map(
            lambda x: x * captured,
            [1, 2, 3, 4],
            workers=2,
            backend="process",
            stats=stats,
        )
        assert out == [3.0, 6.0, 9.0, 12.0]
        assert stats["backend"] == "thread"
        assert stats["backend_requested"] == "process"

    def test_default_chunksize_amortizes(self):
        stats = {}
        sweep_map(_square, list(range(100)), workers=4, backend="process", stats=stats)
        # ceil(100 / (4 * 4)) = 7
        assert stats["chunksize"] == 7

    def test_worker_cache_counts_ship_back(self):
        rng = np.random.default_rng(0)
        A = rng.standard_normal((5, 5)) + 5 * np.eye(5)
        stats = {}
        out = sweep_map(
            _FactorTask(A),
            list(range(12)),
            workers=2,
            backend="process",
            stats=stats,
        )
        expect = [np.linalg.solve(A, np.full(5, float(k))) for k in range(12)]
        for e, o in zip(expect, out):
            np.testing.assert_allclose(o, e, rtol=1e-10)
        wc = stats["worker_cache"]
        # every worker factors once, every further item in its chunks hits
        assert wc["factor_misses"] >= 1
        assert wc["factor_hits"] + wc["factor_misses"] == 12

    def test_mna_system_pickle_roundtrip(self):
        ckt = Circuit("pkl")
        ckt.vsource("V1", "in", "0", Sine(offset=0.7, amplitude=0.2, freq=1e6))
        ckt.resistor("R1", "in", "a", 100.0)
        ckt.diode("D1", "a", "0")
        system = ckt.compile()
        clone = pickle.loads(pickle.dumps(system))
        x = np.linspace(-0.1, 0.8, system.n)
        np.testing.assert_array_equal(system.f(x), clone.f(x))
        np.testing.assert_array_equal(
            system.G(x).toarray(), clone.G(x).toarray()
        )
        assert clone.vectorize == system.vectorize
        assert len(clone.noise_sources) == len(system.noise_sources)

    def test_hbresult_getattr_guard(self):
        from repro.hb.hb_core import HBResult

        shell = object.__new__(HBResult)  # 'solution' not yet assigned
        with pytest.raises(AttributeError):
            shell.solution  # must raise, not recurse

    def test_trace_absorbs_worker_spans(self, tmp_path):
        from repro.trace import disable, enable, get_tracer

        tracer = enable(None)
        try:
            sweep_map(_square, list(range(8)), workers=2, backend="process")
            summary = tracer.summary_since()
            assert summary["spans"].get("sweep.task", {}).get("count") == 8
            assert "sweep.map" in summary["spans"]
        finally:
            disable()


# ---------------------------------------------------------------------------
# fault-tolerance knobs must not perturb results (engine vs legacy paths)
# ---------------------------------------------------------------------------
class TestFaultModeEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", (1, 2))
    def test_fault_knobs_do_not_change_results(self, backend, workers):
        # engaging the resilient per-item engine (deadline + retry budget)
        # must be invisible in the results: same values, same order
        items = [0.5, 1.0, 1.5, 2.0]
        reference = [_spectrum(x) for x in items]
        stats = {}
        got = sweep_map(
            _spectrum,
            items,
            workers=workers,
            backend=backend,
            timeout=60.0,
            on_item_failure="retry",
            stats=stats,
        )
        for r, g in zip(reference, got):
            np.testing.assert_array_equal(r, g)
        assert [r["status"] for r in stats["items"]] == ["ok"] * len(items)
        assert stats["retried"] == 0 and stats["timeouts"] == 0


# ---------------------------------------------------------------------------
# env-driven backend selection (what the CI sweep-backends job exercises)
# ---------------------------------------------------------------------------
class TestEnvSelection:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_env_backend_matches_explicit(self, monkeypatch, backend):
        items = [0.5, 1.5, 2.5, 3.5]
        explicit = sweep_map(_spectrum, items, workers=4, backend=backend)
        monkeypatch.setenv(BACKEND_ENV, backend)
        monkeypatch.setenv(WORKERS_ENV, "4")
        via_env = sweep_map(_spectrum, items)
        for e, v in zip(explicit, via_env):
            np.testing.assert_array_equal(e, v)
