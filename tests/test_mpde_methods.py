"""Cross-validation of the MPDE method family (paper sec. 2.2).

The strongest correctness argument for the multi-time engines is that
four independent discretizations — two-tone HB, MFDTD, MMFT, and
hierarchical shooting — agree on the same circuit, and all agree with
brute-force univariate shooting where that is affordable.
"""

import numpy as np
import pytest

from repro.analysis import shooting_analysis
from repro.hb import harmonic_balance
from repro.mpde import (
    envelope_analysis,
    hierarchical_shooting,
    solve_mfdtd,
    solve_mmft,
)
from repro.netlist import Circuit, Sine


def small_mixer(f_rf=100e3, f_lo=10e6):
    """Scaled-down switch mixer (fast to solve with every method)."""
    ckt = Circuit("mini mixer")
    ckt.vsource("Vrf", "rf", "0", Sine(0.1, f_rf))
    ckt.vsource("Vlo", "lo", "0", Sine(1.0, f_lo))
    ckt.resistor("Rs", "rf", "a", 50.0)
    ckt.switch("S1", "a", "out", "lo", "0", g_on=1e-2, g_off=1e-8, sharpness=10.0)
    ckt.resistor("RL", "out", "0", 1e3)
    ckt.capacitor("CL", "out", "0", 20e-12)
    return ckt.compile()


@pytest.fixture(scope="module")
def mixer_system():
    return small_mixer()


@pytest.fixture(scope="module")
def hb_reference(mixer_system):
    hb = harmonic_balance(mixer_system, freqs=[100e3, 10e6], harmonics=[3, 8])
    return hb.amplitude_at("out", (1, 1))


class TestMethodAgreement:
    def test_mmft_matches_hb(self, mixer_system, hb_reference):
        mm = solve_mmft(mixer_system, 100e3, 10e6, slow_harmonics=3, fast_steps=128, fd_order=2)
        np.testing.assert_allclose(
            mm.mix_amplitude("out", 1, 1), hb_reference, rtol=2e-2
        )

    def test_mfdtd_matches_hb(self, mixer_system, hb_reference):
        sol = solve_mfdtd(mixer_system, freqs=[100e3, 10e6], sizes=[16, 128], order=2)
        H = np.fft.fft2(sol.grid_waveform("out")) / (16 * 128)
        amp = 2 * abs(H[1, 1])
        np.testing.assert_allclose(amp, hb_reference, rtol=5e-2)

    def test_hierarchical_shooting_matches_hb(self, mixer_system, hb_reference):
        hs = hierarchical_shooting(
            mixer_system, 100e3, 10e6, slow_steps=24, fast_steps=64
        )
        np.testing.assert_allclose(
            hs.mix_amplitude("out", 1, 1), hb_reference, rtol=5e-2
        )

    def test_univariate_shooting_matches_hb(self, hb_reference):
        # smaller scale separation so brute force stays cheap: 100 kHz/2 MHz
        sys = small_mixer(f_lo=2e6)
        hb = harmonic_balance(sys, freqs=[100e3, 2e6], harmonics=[3, 8])
        ref = hb.amplitude_at("out", (1, 1))
        sh = shooting_analysis(sys, period=1e-5, steps_per_period=2000)
        v = sh.voltage(sys, "out")
        t = sh.t[:-1]
        comp = np.mean(v[:-1] * np.exp(-2j * np.pi * 2.1e6 * t))
        np.testing.assert_allclose(2 * abs(comp), ref, rtol=3e-2)


class TestMFDTDProperties:
    def test_converges_with_grid_refinement(self, mixer_system, hb_reference):
        errs = []
        for n2 in (32, 128):
            sol = solve_mfdtd(mixer_system, freqs=[100e3, 10e6], sizes=[8, n2], order=1)
            H = np.fft.fft2(sol.grid_waveform("out")) / (8 * n2)
            errs.append(abs(2 * abs(H[1, 1]) - hb_reference))
        assert errs[1] < errs[0]

    def test_residual_converged(self, mixer_system):
        sol = solve_mfdtd(mixer_system, freqs=[100e3, 10e6], sizes=[8, 32])
        assert sol.residual_norm < 1e-8


class TestMMFTProperties:
    def test_time_varying_harmonic_periodic(self, mixer_system):
        mm = solve_mmft(mixer_system, 100e3, 10e6, slow_harmonics=3, fast_steps=64)
        X1 = mm.time_varying_harmonic("out", 1)
        assert X1.shape == (64,)
        # harmonics are conjugate-symmetric in the slow index
        Xm1 = mm.time_varying_harmonic("out", -1)
        np.testing.assert_allclose(X1, np.conj(Xm1), atol=1e-12)

    def test_more_slow_harmonics_refine(self, mixer_system, hb_reference):
        # refinement in the slow Fourier order must not move the answer
        # away from the converged reference (it saturates once the fast
        # axis dominates the residual error)
        errs = [
            abs(
                solve_mmft(mixer_system, 100e3, 10e6, h, 64).mix_amplitude("out", 1, 1)
                - hb_reference
            )
            for h in (1, 3, 5)
        ]
        assert errs[1] <= errs[0] * 1.05 + 1e-12
        assert errs[2] <= errs[0] * 1.05 + 1e-12


class TestEnvelope:
    def test_rc_charging_envelope(self):
        """Carrier amplitude envelope follows the RC charging curve."""
        ckt = Circuit()
        ckt.vsource("V1", "in", "0", Sine(1.0, 10e6))
        ckt.resistor("R1", "in", "out", 1e3)
        ckt.capacitor("C1", "out", "0", 10e-9)
        sys = ckt.compile()
        env = envelope_analysis(
            sys, fast_freq=10e6, t_stop=40e-6, dt=2e-6, fast_steps=16, initial="dc"
        )
        e = env.harmonic_envelope("out", 1)
        w = 2 * np.pi * 10e6
        steady = 1.0 / np.sqrt(1 + (w * 1e3 * 10e-9) ** 2)
        assert e[0] < 0.1 * steady
        np.testing.assert_allclose(e[-1], steady, rtol=5e-2)

    def test_periodic_initial_condition_stays_steady(self):
        # with no slow modulation, the fast-PSS initial condition is the
        # exact solution and the envelope must not drift
        ckt = Circuit()
        ckt.vsource("V1", "in", "0", Sine(1.0, 10e6))
        ckt.resistor("R1", "in", "out", 1e3)
        ckt.capacitor("C1", "out", "0", 10e-9)
        sys = ckt.compile()
        env = envelope_analysis(
            sys, fast_freq=10e6, t_stop=5e-6, dt=1e-6,
            fast_steps=16, initial="periodic",
        )
        e = env.harmonic_envelope("out", 1)
        np.testing.assert_allclose(e, e[0], rtol=1e-3)

    def test_invalid_initial_rejected(self, mixer_system):
        with pytest.raises(ValueError):
            envelope_analysis(mixer_system, 10e6, 1e-6, 0.5e-6, initial="warm")
