"""End-to-end receiver-chain tests (LNA + mixer + IF filter)."""

import numpy as np
import pytest

from repro.analysis import (
    dc_analysis,
    noise_analysis,
    periodic_noise_analysis,
    pole_analysis,
)
from repro.hb import harmonic_balance
from repro.netlist import Sine
from repro.rf import ReceiverSpec, receiver_front_end


@pytest.fixture(scope="module")
def spec():
    return ReceiverSpec()


@pytest.fixture(scope="module")
def conversion_hb(spec):
    sys = receiver_front_end(spec)
    hb = harmonic_balance(sys, freqs=[spec.f_rf, spec.f_lo], harmonics=[3, 3])
    return sys, hb


class TestReceiverChain:
    def test_bias_sane(self, spec):
        sys = receiver_front_end(spec)
        dc = dc_analysis(sys)
        vc = dc.voltage(sys, "c")
        assert 0.5 < vc < spec.vcc - 0.2  # transistor in the active region

    def test_stable_at_bias(self, spec):
        sys = receiver_front_end(spec)
        res = pole_analysis(sys)
        assert res.is_stable

    def test_downconversion_gain(self, spec, conversion_hb):
        sys, hb = conversion_hb
        a_if = hb.amplitude_at("ifp", (1, -1))  # f_rf - f_lo = 10 MHz
        gain_db = 20 * np.log10(a_if / 1e-3)
        assert 0.0 < gain_db < 25.0  # LNA gain minus mixer conversion loss

    def test_if_filter_rejects_rf(self, spec, conversion_hb):
        sys, hb = conversion_hb
        a_if = hb.amplitude_at("ifp", (1, -1))
        a_rf_leak = hb.amplitude_at("ifp", (1, 0))  # 900 MHz at the IF port
        assert a_rf_leak < 0.3 * a_if

    def test_balanced_output(self, spec, conversion_hb):
        sys, hb = conversion_hb
        np.testing.assert_allclose(
            hb.amplitude_at("ifp", (1, -1)),
            hb.amplitude_at("ifn", (1, -1)),
            rtol=1e-6,
        )

    def test_sum_product_filtered(self, spec, conversion_hb):
        sys, hb = conversion_hb
        a_if = hb.amplitude_at("ifp", (1, -1))  # 10 MHz
        a_sum = hb.amplitude_at("ifp", (1, 1))  # 1.79 GHz
        assert a_sum < 0.5 * a_if  # single-pole IF filter: partial rejection


class TestReceiverNoise:
    def test_mixer_pnoise_exceeds_dc_estimate(self, spec):
        """Receiver output noise at the IF: the LPTV analysis around the
        LO steady state includes the sideband folding a DC-point
        analysis misses — the canonical pnoise use case."""
        quiet = ReceiverSpec()
        sys = receiver_front_end(quiet, rf_wave=Sine(0.0, quiet.f_rf))
        hb = harmonic_balance(sys, freqs=[quiet.f_lo], harmonics=16)
        pn = periodic_noise_analysis(hb.solution, "ifp", [quiet.f_if])
        st = noise_analysis(sys, "ifp", [quiet.f_if])
        assert pn.psd[0] > 0
        # the commutation folds the LNA's amplified RF-band noise down to
        # the IF; the frozen-DC estimate misses it by orders of magnitude
        assert pn.psd[0] > 5.0 * st.psd[0]

    def test_pnoise_contributions_include_lna(self, spec):
        quiet = ReceiverSpec()
        sys = receiver_front_end(quiet, rf_wave=Sine(0.0, quiet.f_rf))
        hb = harmonic_balance(sys, freqs=[quiet.f_lo], harmonics=12)
        pn = periodic_noise_analysis(hb.solution, "ifp", [quiet.f_if])
        names = list(pn.contributions)
        assert any("Q1" in n for n in names)
        assert any("Rs" in n for n in names)
        total = sum(v[0] for v in pn.contributions.values())
        np.testing.assert_allclose(total, pn.psd[0], rtol=1e-9)
