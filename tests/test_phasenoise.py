"""Phase-noise tests: PSS, Floquet/PPV, spectra, and the paper's claims."""

import numpy as np
import pytest

from repro.phasenoise import (
    MNAOscillator,
    NegativeResistanceLC,
    RingOscillator,
    VanDerPol,
    compute_ppv,
    estimate_period,
    find_oscillator_pss,
    integrate,
    jitter_stddev,
    lorentzian_psd,
    ltv_phase_noise_dbc,
    oscillator_psd,
    ssb_phase_noise_dbc,
    total_power,
)
from repro.rf import lc_oscillator, mna_ring_oscillator


@pytest.fixture(scope="module")
def vdp_pss():
    vdp = VanDerPol(mu=0.2, sigma=0.01)
    return find_oscillator_pss(
        vdp, x0=np.array([2.0, 0.0]), period_guess=2 * np.pi, steps=400
    )


@pytest.fixture(scope="module")
def vdp_ppv(vdp_pss):
    return compute_ppv(vdp_pss)


class TestPSS:
    def test_vdp_period(self, vdp_pss):
        # weakly nonlinear vdP: T = 2 pi (1 + mu^2/16 + O(mu^4))
        expect = 2 * np.pi * (1 + 0.2**2 / 16)
        np.testing.assert_allclose(vdp_pss.period, expect, rtol=1e-4)

    def test_vdp_amplitude(self, vdp_pss):
        assert abs(np.max(vdp_pss.X[0]) - 2.0) < 0.05

    def test_unit_floquet_multiplier(self, vdp_pss):
        assert vdp_pss.floquet_error < 1e-8

    def test_periodicity(self, vdp_pss):
        np.testing.assert_allclose(vdp_pss.X[:, 0], vdp_pss.X[:, -1], atol=1e-8)

    def test_second_multiplier_stable(self, vdp_pss):
        eigs = np.linalg.eigvals(vdp_pss.monodromy)
        eigs = sorted(np.abs(eigs))
        assert eigs[0] < 1.0 - 1e-3  # contracting transverse direction

    def test_period_estimation(self):
        vdp = VanDerPol(mu=0.3)
        x0, T = estimate_period(
            vdp, np.array([1.0, 0.0]), t_settle=60.0, t_window=40.0
        )
        assert abs(T - 2 * np.pi * (1 + 0.3**2 / 16)) < 0.05

    def test_lc_oscillator_frequency(self):
        lc = NegativeResistanceLC()
        pss = find_oscillator_pss(
            lc, period_guess=1.0 / lc.f0_estimate, t_settle=60.0 / lc.f0_estimate, steps=300
        )
        np.testing.assert_allclose(pss.f0, lc.f0_estimate, rtol=1e-2)

    def test_ring_oscillator_runs(self):
        ring = RingOscillator(inoise_psd=1e-24)
        T_guess = 2 * 3 * 0.7 * 10e3 * 100e-15 * 2
        pss = find_oscillator_pss(ring, period_guess=T_guess, steps=400)
        assert pss.floquet_error < 1e-8
        assert pss.f0 > 1e6

    def test_harmonics_normalization(self, vdp_pss):
        coeffs = vdp_pss.harmonics(0, kmax=4)
        # vdP near-sinusoidal with amplitude ~2 -> |X_1| ~ 1
        assert abs(abs(coeffs[1]) - 1.0) < 0.05


class TestPPV:
    def test_c_positive(self, vdp_ppv):
        assert vdp_ppv.c > 0

    def test_biorthonormality(self, vdp_ppv):
        dots = np.einsum("ki,ki->k", vdp_ppv.v1, vdp_ppv.u1)
        np.testing.assert_allclose(dots, 1.0, rtol=1e-6)

    def test_ppv_periodic(self, vdp_ppv):
        np.testing.assert_allclose(vdp_ppv.v1[0], vdp_ppv.v1[-1], rtol=1e-6)

    def test_c_scales_with_noise_power(self):
        def c_for(sigma):
            vdp = VanDerPol(mu=0.2, sigma=sigma)
            pss = find_oscillator_pss(
                vdp, x0=np.array([2.0, 0.0]), period_guess=2 * np.pi, steps=300
            )
            return compute_ppv(pss).c

        np.testing.assert_allclose(c_for(0.02) / c_for(0.01), 4.0, rtol=1e-6)

    def test_noiseless_oscillator_has_zero_c(self):
        vdp = VanDerPol(mu=0.2, sigma=0.0)
        pss = find_oscillator_pss(
            vdp, x0=np.array([2.0, 0.0]), period_guess=2 * np.pi, steps=300
        )
        assert compute_ppv(pss).c == 0.0


class TestSpectrumClaims:
    """The qualitative results of paper sec. 3, as executable checks."""

    def test_finite_power_at_carrier_vs_ltv_divergence(self, vdp_ppv):
        f0 = vdp_ppv.pss.f0
        c = vdp_ppv.c
        at_carrier = ssb_phase_noise_dbc(np.array([1e-12]), f0, c)
        assert np.isfinite(at_carrier[0])  # correct theory: finite
        ltv = ltv_phase_noise_dbc(np.array([1e-12]), f0, c)
        assert ltv[0] > at_carrier[0] + 100  # LTV blows up near the carrier

    def test_matches_ltv_far_from_carrier(self, vdp_ppv):
        f0, c = vdp_ppv.pss.f0, vdp_ppv.c
        fm = np.array([1e3 * f0**2 * c * np.pi])  # far beyond the corner
        np.testing.assert_allclose(
            ssb_phase_noise_dbc(fm, f0, c), ltv_phase_noise_dbc(fm, f0, c), atol=0.05
        )

    def test_lorentzian_integrates_to_carrier_power(self, vdp_ppv):
        f0, c = vdp_ppv.pss.f0, vdp_ppv.c
        f = np.linspace(f0 - 0.5 * f0, f0 + 0.5 * f0, 400001)
        psd = lorentzian_psd(f, f0, c, k=1, carrier_power=2.5)
        total = np.trapezoid(psd, f)
        np.testing.assert_allclose(total, 2.5, rtol=1e-2)

    def test_linewidth_grows_with_harmonic_index(self, vdp_ppv):
        # half-width at half max of harmonic k is pi f0^2 k^2 c
        f0, c = vdp_ppv.pss.f0, vdp_ppv.c
        for k in (1, 3):
            peak = lorentzian_psd(np.array([k * f0]), f0, c, k=k)[0]
            hwhm = np.pi * f0**2 * k**2 * c
            half = lorentzian_psd(np.array([k * f0 + hwhm]), f0, c, k=k)[0]
            np.testing.assert_allclose(half, peak / 2, rtol=1e-9)

    def test_jitter_sqrt_growth(self, vdp_ppv):
        c = vdp_ppv.c
        np.testing.assert_allclose(
            jitter_stddev(4.0, c) / jitter_stddev(1.0, c), 2.0, rtol=1e-12
        )

    def test_oscillator_psd_sums_harmonics(self, vdp_ppv):
        f0 = vdp_ppv.pss.f0
        f = np.array([f0, 2 * f0, 3 * f0])
        psd = oscillator_psd(f, vdp_ppv, state=0, kmax=5)
        assert psd[0] > psd[1]  # fundamental dominates in vdP
        assert np.all(psd > 0)

    def test_total_power_positive(self, vdp_ppv):
        assert total_power(vdp_ppv, state=0) > 1.9  # ~ amplitude^2/2 = 2


class TestMNAAdapter:
    def test_lc_oscillator_adapts(self):
        osc = MNAOscillator(lc_oscillator())
        assert osc.n == 2  # tank voltage + inductor current
        f = osc.f(np.array([0.1, 0.0]))
        assert np.all(np.isfinite(f))

    def test_adapter_jacobian_matches_fd(self):
        osc = MNAOscillator(lc_oscillator())
        x = np.array([0.3, 1e-3])
        J = osc.jac(x)
        h = 1e-7
        for j in range(2):
            xp, xm = x.copy(), x.copy()
            xp[j] += h
            xm[j] -= h
            np.testing.assert_allclose(
                J[:, j], (osc.f(xp) - osc.f(xm)) / (2 * h), rtol=1e-5
            )

    def test_rejects_singular_c(self):
        from repro.netlist import Circuit

        ckt = Circuit()
        ckt.resistor("R1", "a", "0", 1e3)  # no capacitor: singular C
        with pytest.raises(ValueError, match="singular"):
            MNAOscillator(ckt.compile())

    def test_mna_ring_matches_ode_ring(self):
        """The MNA ring and the native ODE ring share the same physics."""
        ode_ring = RingOscillator(inoise_psd=0.0)
        T_guess = 2 * 3 * 0.7 * 10e3 * 100e-15 * 2
        pss_ode = find_oscillator_pss(ode_ring, period_guess=T_guess, steps=300)
        mna_ring = MNAOscillator(mna_ring_oscillator())
        # hand the ODE ring's settled state to the (slower-to-evaluate)
        # MNA adapter so the expensive settle/estimate phase is skipped
        pss_mna = find_oscillator_pss(
            mna_ring, x0=pss_ode.x0, period_guess=pss_ode.period, steps=300
        )
        np.testing.assert_allclose(pss_mna.f0, pss_ode.f0, rtol=1e-3)

    def test_mna_noise_matrix_shape(self):
        osc = MNAOscillator(lc_oscillator())
        B = osc.noise_matrix(np.zeros(2))
        assert B.shape == (2, osc.p)
        assert osc.p >= 1  # at least the tank resistor


class TestSourceDecomposition:
    """Paper sec. 3: per-source contributions and node sensitivities
    'can be obtained easily'."""

    def test_per_source_sums_to_c(self):
        from repro.phasenoise import per_source_c

        ring = RingOscillator(inoise_psd=1e-24)
        T_guess = 2 * 3 * 0.7 * 10e3 * 100e-15 * 2
        pss = find_oscillator_pss(ring, period_guess=T_guess, steps=300)
        ppv = compute_ppv(pss)
        shares = per_source_c(ppv)
        assert shares.shape == (3,)  # one source per stage
        np.testing.assert_allclose(shares.sum(), ppv.c, rtol=1e-9)
        # ring symmetry: every stage contributes equally
        np.testing.assert_allclose(shares, shares[0], rtol=1e-3)

    def test_dominant_source_identified(self):
        from repro.phasenoise import per_source_c

        # vdP has one source; trivially 100%
        vdp = VanDerPol(mu=0.2, sigma=0.01)
        pss = find_oscillator_pss(
            vdp, x0=np.array([2.0, 0.0]), period_guess=2 * np.pi, steps=300
        )
        ppv = compute_ppv(pss)
        shares = per_source_c(ppv)
        np.testing.assert_allclose(shares[0], ppv.c, rtol=1e-12)

    def test_node_sensitivity_ranks_states(self):
        from repro.phasenoise import node_sensitivity

        vdp = VanDerPol(mu=0.2, sigma=0.01)
        pss = find_oscillator_pss(
            vdp, x0=np.array([2.0, 0.0]), period_guess=2 * np.pi, steps=300
        )
        ppv = compute_ppv(pss)
        sens = node_sensitivity(ppv)
        assert sens.shape == (2,)
        assert np.all(sens > 0)
        # injecting at the velocity state is what the vdP sigma does
        # (B = [[0],[sigma]] in the unit-white convention): its
        # sensitivity times sigma^2 must reproduce c exactly
        np.testing.assert_allclose(sens[1] * 0.01**2, ppv.c, rtol=1e-9)


class TestFlickerCorner:
    def test_reduces_to_white_without_corner(self):
        from repro.phasenoise import ssb_phase_noise_with_flicker

        fm = np.array([1e3, 1e5, 1e7])
        np.testing.assert_allclose(
            ssb_phase_noise_with_flicker(fm, 1e9, 1e-18, 0.0),
            ssb_phase_noise_dbc(fm, 1e9, 1e-18),
            atol=1e-12,
        )

    def test_slope_steepens_below_corner(self):
        from repro.phasenoise import ssb_phase_noise_with_flicker

        f0, c, fc = 1e9, 1e-18, 1e5
        lo = ssb_phase_noise_with_flicker(np.array([1e3, 2e3]), f0, c, fc)
        hi = ssb_phase_noise_with_flicker(np.array([1e7, 2e7]), f0, c, fc)
        slope_lo = (lo[1] - lo[0]) / np.log10(2.0)
        slope_hi = (hi[1] - hi[0]) / np.log10(2.0)
        np.testing.assert_allclose(slope_lo, -30.0, atol=1.0)  # 1/f^3 region
        np.testing.assert_allclose(slope_hi, -20.0, atol=1.0)  # 1/f^2 region

    def test_corner_location(self):
        from repro.phasenoise import ssb_phase_noise_with_flicker

        f0, c, fc = 1e9, 1e-18, 1e5
        at_corner = ssb_phase_noise_with_flicker(np.array([fc]), f0, c, fc)
        white = ssb_phase_noise_dbc(np.array([fc]), f0, c)
        np.testing.assert_allclose(at_corner - white, 10 * np.log10(2.0), atol=1e-9)


class TestMonteCarloDeterminism:
    """Every stochastic draw must be steerable by seed/rng."""

    def test_same_seed_same_ensemble(self):
        from repro.phasenoise import simulate_sde_ensemble

        vdp = VanDerPol(mu=0.2, sigma=0.05)
        x0 = np.array([2.0, 0.0])
        t1, w1 = simulate_sde_ensemble(vdp, x0, 10.0, 200, 4, seed=42)
        t2, w2 = simulate_sde_ensemble(vdp, x0, 10.0, 200, 4, seed=42)
        np.testing.assert_array_equal(w1, w2)
        _, w3 = simulate_sde_ensemble(vdp, x0, 10.0, 200, 4, seed=43)
        assert not np.array_equal(w1, w3)

    def test_external_generator_wins_over_seed(self):
        from repro.phasenoise import simulate_sde_ensemble

        vdp = VanDerPol(mu=0.2, sigma=0.05)
        x0 = np.array([2.0, 0.0])
        _, wa = simulate_sde_ensemble(
            vdp, x0, 5.0, 100, 3, seed=0, rng=np.random.default_rng(7)
        )
        _, wb = simulate_sde_ensemble(
            vdp, x0, 5.0, 100, 3, seed=999, rng=np.random.default_rng(7)
        )
        np.testing.assert_array_equal(wa, wb)

    def test_estimate_period_accepts_rng(self):
        vdp = VanDerPol(mu=0.3)
        x1, T1 = estimate_period(
            vdp, t_settle=40.0, t_window=40.0, rng=np.random.default_rng(5)
        )
        x2, T2 = estimate_period(
            vdp, t_settle=40.0, t_window=40.0, rng=np.random.default_rng(5)
        )
        np.testing.assert_array_equal(x1, x2)
        assert T1 == T2
