"""Tests for the cluster tree, ACA low-rank compression, and IES3 operator."""

import numpy as np
import pytest

from repro.em import (
    PanelKernel,
    aca,
    admissible,
    block_partition,
    build_cluster_tree,
    compress_operator,
    conductor_bus,
    low_rank_block,
    make_plate,
    svd_recompress,
)


class TestClusterTree:
    def test_leaf_size_respected(self):
        rng = np.random.default_rng(0)
        pts = rng.standard_normal((200, 3))
        tree = build_cluster_tree(pts, leaf_size=16)

        def check(node):
            if node.is_leaf:
                assert node.size <= 16
            else:
                check(node.left)
                check(node.right)
                assert node.size == node.left.size + node.right.size

        check(tree)
        assert tree.size == 200

    def test_indices_partition(self):
        rng = np.random.default_rng(1)
        pts = rng.standard_normal((100, 3))
        tree = build_cluster_tree(pts, leaf_size=10)
        leaves = []

        def collect(node):
            if node.is_leaf:
                leaves.append(node.indices)
            else:
                collect(node.left)
                collect(node.right)

        collect(tree)
        all_idx = np.sort(np.concatenate(leaves))
        np.testing.assert_array_equal(all_idx, np.arange(100))

    def test_bbox_contains_points(self):
        rng = np.random.default_rng(2)
        pts = rng.standard_normal((50, 3))
        tree = build_cluster_tree(pts, leaf_size=8)
        assert np.all(pts[tree.indices] >= tree.bbox_lo - 1e-12)
        assert np.all(pts[tree.indices] <= tree.bbox_hi + 1e-12)

    def test_admissibility(self):
        a = build_cluster_tree(np.array([[0.0, 0, 0], [1.0, 0, 0]]), leaf_size=4)
        b = build_cluster_tree(np.array([[10.0, 0, 0], [11.0, 0, 0]]), leaf_size=4)
        assert admissible(a, b, eta=1.5)
        assert not admissible(a, a, eta=1.5)  # overlapping: distance 0

    def test_block_partition_covers_matrix(self):
        rng = np.random.default_rng(3)
        pts = rng.standard_normal((80, 3))
        tree = build_cluster_tree(pts, leaf_size=10)
        lr, dense = block_partition(tree, tree, eta=1.5)
        covered = np.zeros((80, 80), dtype=int)
        for a, b in lr + dense:
            covered[np.ix_(a.indices, b.indices)] += 1
        np.testing.assert_array_equal(covered, np.ones((80, 80), dtype=int))


class TestACA:
    def test_exact_low_rank_recovery(self):
        rng = np.random.default_rng(0)
        U0 = rng.standard_normal((40, 3))
        V0 = rng.standard_normal((3, 30))
        M = U0 @ V0
        U, V = aca(lambda i: M[i, :].copy(), lambda j: M[:, j].copy(), 40, 30, tol=1e-12)
        assert U.shape[1] <= 5
        np.testing.assert_allclose(U @ V, M, atol=1e-9)

    def test_smooth_kernel_compresses(self):
        x = np.linspace(0.0, 1.0, 50)
        y = np.linspace(10.0, 11.0, 50)  # well separated
        M = 1.0 / np.abs(x[:, None] - y[None, :])
        U, V = aca(lambda i: M[i, :].copy(), lambda j: M[:, j].copy(), 50, 50, tol=1e-8)
        assert U.shape[1] < 10
        assert np.max(np.abs(U @ V - M)) / np.max(np.abs(M)) < 1e-6

    def test_svd_recompress_reduces_rank(self):
        rng = np.random.default_rng(1)
        U0 = rng.standard_normal((30, 2))
        V0 = rng.standard_normal((2, 30))
        # redundant cross: rank 2 stored as rank 6
        U = np.hstack([U0, U0, U0])
        V = np.vstack([V0, V0 * 0.5, V0 * 0.1])
        U2, V2 = svd_recompress(U, V, tol=1e-10)
        assert U2.shape[1] == 2
        np.testing.assert_allclose(U2 @ V2, U @ V, atol=1e-9)

    def test_svd_recompress_empty(self):
        U = np.zeros((5, 0))
        V = np.zeros((0, 5))
        U2, V2 = svd_recompress(U, V)
        assert U2.shape == (5, 0)

    def test_low_rank_block_interface(self):
        pts_a = np.linspace(0, 1, 20)
        pts_b = np.linspace(5, 6, 25)

        def entry(rows, cols):
            return 1.0 / np.abs(pts_a[rows][:, None] - pts_b[cols][None, :])

        U, V = low_rank_block(entry, np.arange(20), np.arange(25), tol=1e-8)
        M = entry(np.arange(20), np.arange(25))
        assert np.max(np.abs(U @ V - M)) / np.max(M) < 1e-6


class TestCompressedOperator:
    @pytest.fixture(scope="class")
    def bus_setup(self):
        panels = conductor_bus(num=4, width=2e-6, length=80e-6, pitch=6e-6, nx=2, ny=24)
        kern = PanelKernel(panels)
        op = compress_operator(kern.block, kern.centers, leaf_size=24, tol=1e-7)
        return panels, kern, op

    def test_matvec_accuracy(self, bus_setup):
        panels, kern, op = bus_setup
        P = kern.dense()
        rng = np.random.default_rng(0)
        for _ in range(3):
            x = rng.standard_normal(len(panels))
            np.testing.assert_allclose(op.matvec(x), P @ x, rtol=1e-5)

    def test_solve_matches_dense(self, bus_setup):
        panels, kern, op = bus_setup
        P = kern.dense()
        sel = np.array([p.conductor for p in panels])
        v = (sel == 0).astype(float)
        res = op.solve(v, tol=1e-10)
        assert res.converged
        q_dense = np.linalg.solve(P, v)
        np.testing.assert_allclose(res.x, q_dense, rtol=1e-5, atol=1e-22)

    def test_stats_consistency(self, bus_setup):
        _, _, op = bus_setup
        s = op.stats
        assert s.low_rank_blocks > 0
        assert s.dense_blocks > 0
        assert 0 < s.compression_ratio <= 1.2
        assert s.mean_rank <= s.max_rank

    def test_compression_improves_with_size(self):
        """Larger problems compress better — the Figure 6 trend."""
        ratios = []
        for ny in (12, 48):
            panels = conductor_bus(4, 2e-6, 80e-6, 6e-6, 1, ny)
            kern = PanelKernel(panels)
            op = compress_operator(kern.block, kern.centers, leaf_size=16, tol=1e-6)
            ratios.append(op.stats.compression_ratio)
        assert ratios[1] < ratios[0]

    def test_eta_tradeoff(self):
        panels = conductor_bus(2, 2e-6, 60e-6, 6e-6, 1, 30)
        kern = PanelKernel(panels)
        tight = compress_operator(kern.block, kern.centers, eta=0.8, tol=1e-7)
        loose = compress_operator(kern.block, kern.centers, eta=2.5, tol=1e-7)
        # looser admissibility -> more low-rank coverage -> fewer stored floats
        assert loose.stats.stored_floats <= tight.stats.stored_floats
