"""Tests for univariate shooting PSS and stationary noise analysis."""

import numpy as np
import pytest

from repro.analysis import (
    dc_analysis,
    noise_analysis,
    shooting_analysis,
    transient_analysis,
)
from repro.netlist import Circuit, Sine
from repro.netlist.components import BOLTZMANN


class TestShooting:
    def test_rc_matches_ac(self, rc_lowpass, rc_theory_gain):
        sh = shooting_analysis(rc_lowpass, period=1e-6, steps_per_period=200)
        v = sh.voltage(rc_lowpass, "out")
        amp = 0.5 * (v.max() - v.min())
        np.testing.assert_allclose(amp, rc_theory_gain, rtol=1e-3)

    def test_periodicity_of_solution(self, diode_rectifier):
        sh = shooting_analysis(diode_rectifier, period=1e-6, steps_per_period=300)
        np.testing.assert_allclose(sh.X[:, 0], sh.X[:, -1], atol=1e-6)

    def test_monodromy_stable(self, rc_lowpass):
        sh = shooting_analysis(rc_lowpass, period=1e-6, steps_per_period=100)
        eigs = np.abs(np.linalg.eigvals(sh.monodromy))
        assert np.all(eigs <= 1.0 + 1e-9)

    def test_matches_long_transient(self, diode_rectifier):
        sh = shooting_analysis(diode_rectifier, period=1e-6, steps_per_period=300)
        tr = transient_analysis(diode_rectifier, t_stop=15e-6, dt=1e-6 / 300)
        v_sh = sh.voltage(diode_rectifier, "out")
        v_tr = tr.voltage(diode_rectifier, "out")[-301:]
        # 15 us is ~1.5 load time-constants of settling: percent-level match
        np.testing.assert_allclose(v_sh.mean(), v_tr.mean(), rtol=2e-2)

    def test_faster_than_transient_settling(self, rc_lowpass):
        """Shooting finds PSS in far fewer simulated periods than settling."""
        sh = shooting_analysis(rc_lowpass, period=1e-6, steps_per_period=100)
        periods_simulated = sh.transient_steps / 100
        assert periods_simulated <= 10  # RC settle would need ~ 5 tau = 5 periods


class TestNoise:
    def test_single_resistor_divider(self):
        ckt = Circuit()
        ckt.vsource("V1", "in", "0", 0.0)
        ckt.resistor("R1", "in", "out", 1e3)
        ckt.resistor("R2", "out", "0", 1e3)
        sys = ckt.compile()
        res = noise_analysis(sys, "out", [1e3])
        # two 1k resistors in parallel seen from the output: 4kT * 500
        np.testing.assert_allclose(
            res.psd[0], 4 * BOLTZMANN * 300.0 * 500.0, rtol=1e-9
        )

    def test_contributions_sum_to_total(self):
        ckt = Circuit()
        ckt.vsource("V1", "in", "0", 0.0)
        ckt.resistor("R1", "in", "out", 2e3)
        ckt.resistor("R2", "out", "0", 3e3)
        ckt.capacitor("C1", "out", "0", 1e-12)
        sys = ckt.compile()
        res = noise_analysis(sys, "out", [1e3, 1e6, 1e9])
        total = sum(res.contributions.values())
        np.testing.assert_allclose(total, res.psd, rtol=1e-12)

    def test_rc_filtering_of_noise(self):
        ckt = Circuit()
        ckt.resistor("R1", "out", "0", 1e3)
        ckt.capacitor("C1", "out", "0", 1e-9)
        sys = ckt.compile()
        fc = 1.0 / (2 * np.pi * 1e3 * 1e-9)
        res = noise_analysis(sys, "out", [fc / 100, fc, 100 * fc])
        # single-pole rolloff of the thermal plateau
        np.testing.assert_allclose(res.psd[1] / res.psd[0], 0.5, rtol=1e-3)
        np.testing.assert_allclose(res.psd[2] / res.psd[0], 1e-4, rtol=1e-2)

    def test_diode_shot_noise_bias_dependence(self):
        def psd_at_bias(v_bias):
            ckt = Circuit()
            ckt.vsource("V1", "in", "0", v_bias)
            ckt.resistor("R1", "in", "d", 1e3)
            ckt.diode("D1", "d", "0")
            sys = ckt.compile()
            return noise_analysis(sys, "d", [1e3]).psd[0]

        assert psd_at_bias(5.0) != psd_at_bias(1.0)

    def test_spot_noise_volts(self):
        ckt = Circuit()
        ckt.resistor("R1", "out", "0", 1e3)
        sys = ckt.compile()
        res = noise_analysis(sys, "out", [1e3])
        np.testing.assert_allclose(
            res.spot_noise_volts(0), np.sqrt(4 * BOLTZMANN * 300 * 1e3), rtol=1e-9
        )
