"""Crash-safe simulation service: queue, leases, cache, dead-letter.

Exercises ``repro.serve`` end to end — content-addressed job identity,
WAL torn-line recovery, admission rejection, retry/backoff ladders with
dead-letter quarantine, lease-based reclaim of killed workers — and
locks down the headline acceptance scenario: a 20-job batch surviving a
SIGKILL'd worker plus a torn WAL line, with every valid job completing
exactly once, bit-identical to a fault-free serial run, and a full
resubmission costing zero solves.

The CI ``serve-smoke`` job runs this file.
"""

import json
import os
import signal
import time

import numpy as np
import pytest

from repro.robust import ChaosSpec, ServeChaos, chaos_serve, tear_final_line
from repro.serve import (
    JobSpec,
    ServiceConfig,
    SimulationService,
    WALError,
    WriteAheadLog,
    canonical_netlist,
    content_key,
    open_service,
)
from repro.serve.queue import JobQueue
from repro.serve.store import ResultStore
from repro.serve.wal import decode_line, encode_record
from repro.trace import Tracer, using

RC = """rc lowpass
V1 in 0 SIN(0 1 1e6)
R1 in out 1k
C1 out 0 1n
.end
"""

DIVIDER = """resistive divider
V1 in 0 1.0
R1 in out 1k
R2 out 0 1k
.end
"""

BROKEN = "broken netlist\nR1 only\n.end\n"

#: AC analysis naming a nonexistent source: passes the netlist lint
#: (the circuit itself is fine) but raises at solve time — the natural
#: poison job for dead-letter tests.
POISON_PARAMS = {"source": "VXX", "freqs": [1e3]}


def rc_variant(i):
    """Distinct valid netlist per i (distinct content keys)."""
    return RC.replace("C1 out 0 1n", f"C1 out 0 {i + 1}n")


# -- content-addressed identity -----------------------------------------


class TestContentKey:
    def test_formatting_never_changes_key(self):
        messy = (
            "a title line\n"
            "* a comment\n"
            "V1 in 0   SIN(0 1 1e6)\n"
            "; another comment\n"
            "r1 IN out\n+ 1k\n"
            "C1 out 0 1n\n"
            ".end\n"
            "V9 ghost 0 5.0\n"
        )
        assert canonical_netlist(messy) == canonical_netlist(RC)
        assert content_key(messy, "dc") == content_key(RC, "dc")

    def test_card_order_changes_key(self):
        reordered = RC.replace(
            "R1 in out 1k\nC1 out 0 1n", "C1 out 0 1n\nR1 in out 1k"
        )
        assert content_key(reordered, "dc") != content_key(RC, "dc")

    def test_analysis_and_params_change_key(self):
        assert content_key(RC, "dc") != content_key(RC, "ac")
        assert content_key(RC, "ac", {"f": 1.0}) != content_key(
            RC, "ac", {"f": 2.0}
        )

    def test_param_order_is_free(self):
        a = content_key(RC, "ac", {"f_start": 1.0, "f_stop": 2.0})
        b = content_key(RC, "ac", {"f_stop": 2.0, "f_start": 1.0})
        assert a == b

    def test_jobspec_key_roundtrip(self):
        spec = JobSpec(netlist=RC, analysis="DC", label="x")
        again = JobSpec.from_dict(spec.as_dict())
        assert again.key == spec.key
        assert again.analysis == "dc"


# -- write-ahead log ----------------------------------------------------


class TestWAL:
    def test_append_replay_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.jsonl")
        for i in range(5):
            wal.append({"job": f"j{i}", "ev": "submitted"})
        records, offset = wal.replay(0)
        assert [r["job"] for r in records] == [f"j{i}" for i in range(5)]
        assert offset == os.path.getsize(tmp_path / "w.jsonl")

    def test_incremental_replay(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.jsonl")
        wal.append({"job": "a", "ev": "submitted"})
        _, offset = wal.replay(0)
        wal.append({"job": "b", "ev": "submitted"})
        records, _ = wal.replay(offset)
        assert [r["job"] for r in records] == ["b"]

    def test_checksum_rejects_corruption(self):
        line = encode_record({"job": "a", "ev": "done"})
        assert decode_line(line)["job"] == "a"
        assert decode_line(line.replace("done", "dead")) is None
        assert decode_line(line[: len(line) // 2]) is None
        assert decode_line("not json at all") is None

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "w.jsonl"
        wal = WriteAheadLog(path)
        for i in range(4):
            wal.append({"job": f"j{i}", "ev": "submitted"})
        removed = tear_final_line(path)
        assert removed > 0
        # the torn tail has no newline: replay leaves it pending
        records, _ = WriteAheadLog(path).replay(0)
        assert [r["job"] for r in records] == ["j0", "j1", "j2"]

    def test_torn_tail_guard_isolates_next_append(self, tmp_path):
        path = tmp_path / "w.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"job": "a", "ev": "submitted"})
        wal.append({"job": "b", "ev": "submitted"})
        tear_final_line(path)
        wal2 = WriteAheadLog(path)
        wal2.append({"job": "c", "ev": "submitted"})
        records, _ = wal2.replay(0)
        # b's torn half is skipped; a and c survive intact
        assert [r["job"] for r in records] == ["a", "c"]
        assert wal2.stats["skipped"] == 1

    def test_injected_disk_full_raises_walerror(self, tmp_path):
        chaos = ServeChaos(
            state_dir=tmp_path / "chaos",
            wal_faults={"append": ChaosSpec(kind="disk_full", times=1)},
        )
        wal = WriteAheadLog(tmp_path / "w.jsonl")
        with chaos_serve(chaos):
            with pytest.raises(WALError):
                wal.append({"job": "a", "ev": "submitted"})
            wal.append({"job": "b", "ev": "submitted"})  # schedule spent
        records, _ = wal.replay(0)
        assert [r["job"] for r in records] == ["b"]

    def test_injected_torn_write_recovers_on_replay(self, tmp_path):
        chaos = ServeChaos(
            state_dir=tmp_path / "chaos",
            wal_faults={"append": ChaosSpec(kind="torn", times=1)},
        )
        wal = WriteAheadLog(tmp_path / "w.jsonl")
        with chaos_serve(chaos):
            wal.append({"job": "a", "ev": "submitted"})  # torn on disk
            wal.append({"job": "b", "ev": "submitted"})
        records, _ = wal.replay(0)
        assert [r["job"] for r in records] == ["b"]
        assert wal.stats["skipped"] == 1


# -- result store -------------------------------------------------------


class TestResultStore:
    def test_roundtrip_and_write_once(self, tmp_path):
        store = ResultStore(tmp_path / "res")
        payload = {"x": np.arange(4.0)}
        assert store.put("k1", payload) is True
        assert store.put("k1", {"x": "other"}) is False  # first write wins
        got = store.get("k1")
        np.testing.assert_array_equal(got["x"], payload["x"])
        assert "k1" in store and len(store) == 1

    def test_corrupted_payload_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "res")
        store.put("k1", {"x": 1})
        pkl = os.path.join(store.root, "k1"[:2], "k1.pkl")
        with open(pkl, "r+b") as fh:
            fh.write(b"\xde\xad\xbe\xef")
        assert store.get("k1") is None  # sha mismatch: re-solve

    def test_hmac_rejects_tampered_and_unauthenticated(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_CHECKPOINT_KEY", raising=False)
        monkeypatch.setenv("REPRO_SERVE_RESULT_KEY", "s3cret")
        store = ResultStore(tmp_path / "res")
        store.put("k1", {"x": 1})
        assert store.get("k1") == {"x": 1}
        # strip the MAC from the sidecar: entry becomes untrusted
        meta_path = os.path.join(store.root, "k1"[:2], "k1.json")
        with open(meta_path) as fh:
            meta = json.load(fh)
        del meta["mac"]
        with open(meta_path, "w") as fh:
            json.dump(meta, fh)
        assert store.get("k1") is None
        # the untrusted entry was quarantined, not left to flap between
        # hit and miss depending on who asks: it stays a miss even after
        # the key is unset, and a resubmission recomputes cleanly
        monkeypatch.delenv("REPRO_SERVE_RESULT_KEY")
        assert store.get("k1") is None
        assert "k1" not in store
        corrupt = os.listdir(os.path.join(store.root, "corrupt"))
        assert any(name.startswith("k1") for name in corrupt)
        assert store.put("k1", {"x": 1}) is True  # key is free again
        assert store.get("k1") == {"x": 1}


# -- admission gate -----------------------------------------------------


class TestAdmission:
    def test_broken_netlist_rejected_before_enqueue(self, tmp_path):
        svc = open_service(tmp_path / "s")
        res = svc.submit(BROKEN, "dc")
        assert res.state == "rejected" and not res.ok
        assert res.report.has("PARSE_ERROR")
        rec = svc.status(res.job_id)
        assert rec["state"] == "rejected"
        assert any(d["code"] == "PARSE_ERROR" for d in rec["diagnostics"])
        assert svc.drain() == 0  # nothing reached the queue

    def test_unknown_analysis_rejected(self, tmp_path):
        svc = open_service(tmp_path / "s")
        res = svc.submit(RC, "smith-chart")
        assert res.state == "rejected"
        assert res.report.has("SERVE_UNKNOWN_ANALYSIS")

    def test_missing_params_rejected(self, tmp_path):
        svc = open_service(tmp_path / "s")
        res = svc.submit(RC, "ac", {})  # no source at all
        assert res.state == "rejected"
        assert res.report.has("SERVE_MISSING_PARAM")
        res = svc.submit(RC, "ac", {"source": "V1"})  # no frequency grid
        assert res.state == "rejected"
        assert any(d.location == "freqs"
                   for d in res.report.by_code("SERVE_MISSING_PARAM"))
        res = svc.submit(RC, "transient", {"t_stop": -1.0, "dt": 1e-9})
        assert res.state == "rejected"
        assert res.report.has("SERVE_BAD_PARAM")

    def test_admission_off_enqueues_anything(self, tmp_path):
        svc = open_service(tmp_path / "s", admission="off")
        res = svc.submit(BROKEN, "dc")
        assert res.state == "queued"  # and will die at runtime instead


# -- happy paths / caching ----------------------------------------------


class TestService:
    def test_dc_job_matches_direct_analysis(self, tmp_path):
        svc = open_service(tmp_path / "s")
        res = svc.submit(DIVIDER, "dc", label="div")
        assert res.state == "queued"
        assert svc.drain() == 1
        payload = svc.result(res.job_id)
        assert payload["analysis"] == "dc"
        from repro.analysis import dc_analysis
        from repro.netlist.parser import parse_netlist

        direct = dc_analysis(parse_netlist(DIVIDER).compile())
        np.testing.assert_array_equal(payload["x"], direct.x)

    def test_ac_and_transient_jobs(self, tmp_path):
        svc = open_service(tmp_path / "s")
        ac = svc.submit(
            RC, "ac",
            {"source": "V1", "f_start": 1e3, "f_stop": 1e8, "n_points": 7},
        )
        tr = svc.submit(RC, "transient", {"t_stop": 2e-6, "dt": 1e-8})
        assert ac.state == "queued" and tr.state == "queued"
        svc.drain()
        ac_payload = svc.result(ac.job_id)
        assert ac_payload["freqs"].shape == (7,)
        assert ac_payload["X"].shape[1] == 7  # X[:, k] per frequency
        assert np.iscomplexobj(ac_payload["X"])
        tr_payload = svc.result(tr.job_id)
        assert tr_payload["t"][-1] == pytest.approx(2e-6, rel=1e-6)

    def test_resubmission_is_a_cache_hit_with_zero_solves(self, tmp_path):
        svc = open_service(tmp_path / "s")
        first = svc.submit(RC, "dc")
        svc.drain()
        with using(Tracer()) as tracer:
            again = svc.submit(RC, "dc")
            summary = tracer.summary_since()
        assert again.state == "done" and again.cached
        assert again.key == first.key
        assert "serve.solve" not in summary["spans"]
        assert summary["events"].get("serve.cache_hit") == 1
        np.testing.assert_array_equal(
            svc.result(again.job_id)["x"], svc.result(first.job_id)["x"]
        )

    def test_identical_inflight_job_is_deduped(self, tmp_path):
        svc = open_service(tmp_path / "s")
        first = svc.submit(RC, "dc")
        second = svc.submit(RC, "dc")
        assert second.state == "deduped"
        assert second.job_id == first.job_id
        assert len(svc.status()) == 1

    def test_reopen_preserves_state(self, tmp_path):
        root = tmp_path / "s"
        svc = open_service(root)
        res = svc.submit(RC, "dc")
        svc.drain()
        svc2 = open_service(root)
        assert svc2.status(res.job_id)["state"] == "done"
        assert svc2.result(res.job_id) is not None


# -- retry ladder / dead letter -----------------------------------------


class TestRetryDeadLetter:
    def test_transient_fault_retries_to_done(self, tmp_path):
        chaos = ServeChaos(
            {"rc lowpass": ChaosSpec(kind="error", times=1)},
            tmp_path / "chaos",
        )
        svc = open_service(tmp_path / "s", backoff_base=0.01)
        res = svc.submit(RC, "dc")
        with chaos_serve(chaos):
            svc.drain()
        rec = svc.status(res.job_id)
        assert rec["state"] == "done"
        assert rec["attempts"] == 2
        assert chaos.attempts("rc lowpass") == 2

    def test_poison_job_goes_to_dead_letter(self, tmp_path):
        svc = open_service(tmp_path / "s", max_retries=1, backoff_base=0.01)
        res = svc.submit(RC, "ac", POISON_PARAMS, label="poison")
        assert res.state == "queued"  # lints clean: poison is a runtime fact
        svc.drain()
        rec = svc.status(res.job_id)
        assert rec["state"] == "dead"
        assert rec["attempts"] == 2  # initial + max_retries
        assert "VXX" in rec["failure_cause"]
        quarantine = tmp_path / "s" / "dead" / f"{res.job_id}.json"
        assert quarantine.exists()
        assert json.loads(quarantine.read_text())["job_id"] == res.job_id

    def test_requeue_dead_runs_again(self, tmp_path):
        chaos = ServeChaos(
            # attempts 1+2 fail (the whole retry budget); attempt 3 —
            # which only a requeue can grant — runs clean
            {"rc lowpass": ChaosSpec(kind="error", times=2)},
            tmp_path / "chaos",
        )
        svc = open_service(tmp_path / "s", max_retries=1, backoff_base=0.01)
        res = svc.submit(RC, "dc")
        with chaos_serve(chaos):
            svc.drain()
            assert svc.status(res.job_id)["state"] == "dead"
            requeued = svc.requeue_dead()
            assert requeued == [res.job_id]
            assert not (tmp_path / "s" / "dead" / f"{res.job_id}.json").exists()
            svc.drain()
        rec = svc.status(res.job_id)
        assert rec["state"] == "done"
        assert rec["requeues"] == 1


# -- lease recovery -----------------------------------------------------


class TestLeaseRecovery:
    def _submit_one(self, root, **cfg):
        svc = open_service(root, **cfg)
        res = svc.submit(RC, "dc")
        return svc, res

    def test_dead_owner_pid_reclaims_immediately(self, tmp_path):
        svc, res = self._submit_one(tmp_path / "s", lease_ttl=3600.0)
        q = svc.queue
        assert q.try_lease(res.job_id, "w-dead")
        q.record_running(res.job_id, "w-dead")
        # rewrite the lease as owned by a PID that cannot exist
        lease = tmp_path / "s" / "leases" / f"{res.job_id}.lease"
        lease.write_text(json.dumps(
            {"job": res.job_id, "worker": "w-dead", "pid": 2 ** 22 + 17,
             "attempt": 1}
        ))
        reclaimed = q.reclaim_expired()
        assert reclaimed == [res.job_id]
        rec = svc.status(res.job_id)
        assert rec["state"] == "queued"
        assert rec["lease_reclaimed"] == 1
        assert svc.drain() == 1
        assert svc.status(res.job_id)["state"] == "done"

    def test_stale_heartbeat_reclaims(self, tmp_path):
        svc, res = self._submit_one(tmp_path / "s", lease_ttl=0.2)
        q = svc.queue
        assert q.try_lease(res.job_id, "w-hung")
        # owner pid is alive (it is us) but the heartbeat goes silent
        lease = tmp_path / "s" / "leases" / f"{res.job_id}.lease"
        old = time.time() - 5.0
        os.utime(lease, (old, old))
        assert q.reclaim_expired() == [res.job_id]
        assert svc.status(res.job_id)["lease_reclaimed"] == 1

    def test_running_job_with_no_lease_is_reclaimed(self, tmp_path):
        # models a worker that died between dropping its lease and
        # appending the outcome event
        svc, res = self._submit_one(tmp_path / "s", lease_ttl=3600.0)
        q = svc.queue
        assert q.try_lease(res.job_id, "w-gone")
        q.record_running(res.job_id, "w-gone")
        q.release_lease(res.job_id)
        assert q.reclaim_expired() == [res.job_id]
        assert svc.status(res.job_id)["state"] == "queued"

    def test_second_claim_loses(self, tmp_path):
        svc, res = self._submit_one(tmp_path / "s")
        q = svc.queue
        assert q.try_lease(res.job_id, "w1") is True
        assert q.try_lease(res.job_id, "w2") is False

    def test_repeated_worker_death_dead_letters(self, tmp_path):
        svc, res = self._submit_one(
            tmp_path / "s", lease_ttl=3600.0, max_retries=1
        )
        q = svc.queue
        for _ in range(2):  # attempts 1 and 2 both die ownerless
            assert q.try_lease(res.job_id, "w-doomed")
            q.record_running(res.job_id, "w-doomed")
            q.release_lease(res.job_id)
            q.reclaim_expired()
        rec = svc.status(res.job_id)
        assert rec["state"] == "dead"
        assert "died repeatedly" in rec["failure_cause"]


# -- the acceptance scenario --------------------------------------------


class TestServiceChaos:
    def test_sigkill_and_torn_wal_recover_exactly_once(self, tmp_path):
        """2 workers, 20 jobs, SIGKILL one worker mid-solve, tear the
        WAL's final line; after restart every valid job is done with
        exactly one recorded result, bit-identical to a fault-free
        serial run, and full resubmission costs zero solves."""
        root = tmp_path / "s"
        state = tmp_path / "chaos"
        # high TTL: recovery must come from dead-PID detection, not the
        # clock — the surviving worker may not out-wait a 30 s lease
        svc = open_service(root, lease_ttl=30.0, max_retries=2,
                           backoff_base=0.01)
        netlists = [rc_variant(i) for i in range(19)]
        hang_net = rc_variant(50) + "* marker-hang\n"
        submitted = [svc.submit(hang_net, "dc", label="hangjob")]
        submitted += [
            svc.submit(n, "dc", label=f"j{i}") for i, n in enumerate(netlists)
        ]
        assert all(s.state == "queued" for s in submitted)

        # first execution of the marked job hangs "forever"
        chaos = ServeChaos(
            {"marker-hang": ChaosSpec(kind="hang", duration=600.0, times=1)},
            state,
        )
        with chaos_serve(chaos):
            procs = svc.spawn_workers(2, max_seconds=120)
            # wait until some worker is visibly stuck on the hang job
            victim = None
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                rec = svc.status(submitted[0].job_id)
                if rec and rec["state"] == "running" and rec["worker"]:
                    victim = int(rec["worker"].lstrip("w"))
                    break
                time.sleep(0.05)
            assert victim is not None, "hang job never started running"
            # SIGKILL mid-solve, and reap so the PID is really gone
            os.kill(procs[victim].pid, signal.SIGKILL)
            procs[victim].join(timeout=10)
            assert svc.wait(timeout=90), f"not drained: {svc.summary()}"
            for p in procs:
                p.join(timeout=30)

        rec = svc.status(submitted[0].job_id)
        assert rec["state"] == "done"
        assert rec["lease_reclaimed"] >= 1
        assert chaos.attempts("marker-hang") == 2  # killed once, replayed

        # now tear the WAL's final line and restart the service
        assert tear_final_line(root / "wal.jsonl") > 0
        svc2 = open_service(root)
        svc2.drain()
        states = [r["state"] for r in svc2.status()]
        assert states.count("done") == 20

        # exactly one recorded result per job (write-once store)
        keys = {s.key for s in submitted}
        assert sorted(svc2.queue.store.keys()) == sorted(keys)

        # bit-identical to a fault-free serial run in a fresh root
        ref = open_service(tmp_path / "ref")
        ref_jobs = [ref.submit(hang_net, "dc")]
        ref_jobs += [ref.submit(n, "dc") for n in netlists]
        ref.drain()
        for got, want in zip(submitted, ref_jobs):
            a = svc2.queue.store.get(got.key)
            b = ref.queue.store.get(want.key)
            np.testing.assert_array_equal(a["x"], b["x"])
            assert a["node_names"] == b["node_names"]

        # resubmitting the whole batch: zero solves, 100% cache hits
        with using(Tracer()) as tracer:
            again = [svc2.submit(hang_net, "dc")]
            again += [svc2.submit(n, "dc") for n in netlists]
            summary = tracer.summary_since()
        assert all(a.state == "done" and a.cached for a in again)
        assert "serve.solve" not in summary["spans"]
        assert summary["events"].get("serve.cache_hit") == 20

    def test_worker_crash_chaos_recovers(self, tmp_path):
        """ServeChaos 'crash' (os._exit in the worker) on one job: the
        batch still completes via lease reclaim on a fresh attempt."""
        root = tmp_path / "s"
        svc = open_service(root, lease_ttl=2.0, max_retries=2,
                           backoff_base=0.01)
        crashy = rc_variant(60) + "* marker-crash\n"
        cj = svc.submit(crashy, "dc", label="crashy")
        rest = [svc.submit(rc_variant(i), "dc") for i in range(5)]
        chaos = ServeChaos(
            {"marker-crash": ChaosSpec(kind="crash", times=1)},
            tmp_path / "chaos",
        )
        with chaos_serve(chaos):
            procs = svc.spawn_workers(2, max_seconds=60)
            assert svc.wait(timeout=60), f"not drained: {svc.summary()}"
            for p in procs:
                p.join(timeout=30)
        rec = svc.status(cj.job_id)
        assert rec["state"] == "done"
        assert rec["lease_reclaimed"] >= 1
        assert all(svc.status(r.job_id)["state"] == "done" for r in rest)

    def test_disk_full_on_submit_fails_loudly(self, tmp_path):
        chaos = ServeChaos(
            state_dir=tmp_path / "chaos",
            wal_faults={"append": ChaosSpec(kind="disk_full", times=1)},
        )
        svc = open_service(tmp_path / "s")
        with chaos_serve(chaos):
            with pytest.raises(WALError):
                svc.submit(RC, "dc")
            res = svc.submit(RC, "dc")  # schedule spent: succeeds
        assert res.state == "queued"
        svc.drain()
        assert svc.status(res.job_id)["state"] == "done"

    def test_torn_submit_event_is_not_a_job(self, tmp_path):
        chaos = ServeChaos(
            state_dir=tmp_path / "chaos",
            wal_faults={"append": ChaosSpec(kind="torn", times=1)},
        )
        svc = open_service(tmp_path / "s")
        with chaos_serve(chaos):
            ghost = svc.submit(RC, "dc")
        # the submitted event was torn: not durably enqueued
        assert svc.status(ghost.job_id) is None
        res = svc.submit(RC, "dc")  # resubmission enqueues cleanly
        assert res.state == "queued"
        svc.drain()
        assert svc.status(res.job_id)["state"] == "done"


# -- CLI ----------------------------------------------------------------


class TestServeCLI:
    def _write_netlist(self, tmp_path, text=RC):
        path = tmp_path / "net.cir"
        path.write_text(text)
        return str(path)

    def test_submit_status_drain_result(self, tmp_path, capsys):
        from repro.serve.__main__ import main

        root = str(tmp_path / "s")
        net = self._write_netlist(tmp_path)
        assert main(["submit", root, net, "--analysis", "dc"]) == 0
        job_id = capsys.readouterr().out.split(":")[0]
        assert main(["drain", root]) == 0
        assert main(["status", root]) == 0
        assert "done" in capsys.readouterr().out
        assert main(["result", root, job_id]) == 0
        assert "array" in capsys.readouterr().out
        assert main(["status", root, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["states"] == {"done": 1}

    def test_submit_rejected_exits_nonzero(self, tmp_path, capsys):
        from repro.serve.__main__ import main

        root = str(tmp_path / "s")
        net = self._write_netlist(tmp_path, BROKEN)
        assert main(["submit", root, net]) == 1
        assert "PARSE_ERROR" in capsys.readouterr().out

    def test_drain_with_dead_job_exits_nonzero_then_requeue(
        self, tmp_path, capsys
    ):
        from repro.serve.__main__ import main

        root = str(tmp_path / "s")
        net = self._write_netlist(tmp_path)
        assert main([
            "submit", root, net, "--analysis", "ac",
            "--param", "source=VXX", "--param", "freqs=[1e3]",
            "--max-retries", "0",
        ]) == 0
        assert main(["drain", root, "--max-retries", "0"]) == 1
        assert main(["requeue-dead", root]) == 0
        assert "requeued 1" in capsys.readouterr().out

    def test_param_parsing(self):
        from repro.serve.__main__ import _parse_param

        assert _parse_param("source=V1") == ("source", "V1")
        assert _parse_param("f_start=1e3") == ("f_start", 1e3)
        assert _parse_param("freqs=[1.0,2.0]") == ("freqs", [1.0, 2.0])


# -- store durability (fsync / write-once / quarantine) -----------------


def _racing_put(root, key, barrier, out_q):
    """Child-process body for the two-process write-once race."""
    store = ResultStore(root)
    payload = {"x": np.arange(64.0)}
    barrier.wait()
    out_q.put(store.put(key, payload, meta={"writer": os.getpid()}))


class TestStoreDurability:
    def test_zero_length_pkl_is_a_miss_and_quarantined(self, tmp_path):
        """Regression: a power loss between create and write leaves a
        zero-length .pkl; pre-fix has() reported it as a cache hit
        forever, so the key could never be recomputed."""
        store = ResultStore(tmp_path / "res")
        store.put("deadbeef", {"x": 1})
        pkl = os.path.join(store.root, "de", "deadbeef.pkl")
        with open(pkl, "wb"):
            pass  # truncate to zero bytes
        assert store.has("deadbeef") is False
        assert store.get("deadbeef") is None
        assert not os.path.exists(pkl)  # quarantined, not left to rot
        # the key is free again: a resubmission records a fresh result
        assert store.put("deadbeef", {"x": 1}) is True
        assert store.get("deadbeef") == {"x": 1}

    def test_power_loss_torn_artifact_recomputes_bit_identical(self, tmp_path):
        """Craft the exact pre-fix artifact — half a payload under the
        final name with a sidecar recording the full checksum — and
        prove the service recomputes through it."""
        svc = open_service(tmp_path / "s", backoff_base=0.01)
        res = svc.submit(RC, "dc")
        svc.drain()
        good = svc.queue.store.get(res.key)
        pkl, meta = svc.queue.store._paths(res.key)
        blob = open(pkl, "rb").read()
        with open(pkl, "wb") as fh:
            fh.write(blob[: len(blob) // 2])  # torn payload, intact sidecar
        # resubmission must not trust the torn entry: it recomputes
        res2 = svc.submit(RC, "dc")
        assert res2.state == "queued", "torn entry was served as a cache hit"
        svc.drain()
        again = svc.queue.store.get(res.key)
        np.testing.assert_array_equal(again["x"], good["x"])
        corrupt = os.listdir(os.path.join(svc.queue.store.root, "corrupt"))
        assert any(name.startswith(res.key) for name in corrupt)

    def test_concurrent_two_process_put_single_winner(self, tmp_path):
        """os.link arbitration: two processes racing one key get exactly
        one winner, and the surviving entry verifies."""
        import multiprocessing as mp

        root = str(tmp_path / "res")
        ResultStore(root)  # create the directory before forking
        key = "ab" + "0" * 62
        ctx = mp.get_context()
        barrier = ctx.Barrier(2)
        out_q = ctx.Queue()
        procs = [
            ctx.Process(target=_racing_put, args=(root, key, barrier, out_q))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        results = [out_q.get(timeout=30) for _ in procs]
        for p in procs:
            p.join(timeout=30)
        assert sorted(results) == [False, True]  # exactly one winner
        store = ResultStore(root)
        got = store.get(key)  # verifies sha (and quarantines if torn)
        np.testing.assert_array_equal(got["x"], np.arange(64.0))
        meta = store.get_meta(key)
        assert meta["sha256"]  # sidecar consistent with the blob

    def test_chaos_torn_put_retries_to_done(self, tmp_path):
        """A put torn mid-write (power-loss model) raises; the retry
        ladder quarantines the damage and the next attempt records a
        clean result."""
        chaos = ServeChaos(
            store_faults={"put": ChaosSpec(kind="torn", times=1)},
            state_dir=tmp_path / "chaos",
        )
        svc = open_service(tmp_path / "s", backoff_base=0.01, max_retries=2)
        res = svc.submit(RC, "dc")
        with chaos_serve(chaos):
            svc.drain()
        rec = svc.status(res.job_id)
        assert rec["state"] == "done"
        assert rec["attempts"] == 2  # torn put burned one attempt
        assert chaos.store_ops("put") >= 2
        assert svc.queue.store.get(res.key) is not None

    def test_crash_mid_put_never_publishes(self, tmp_path):
        """SIGKILL between the fsync'd temp write and publication: the
        final name must not exist, and a resubmission recomputes a
        bit-identical result (the acceptance scenario)."""
        chaos = ServeChaos(
            store_faults={"put": ChaosSpec(kind="crash", times=1, exit_code=86)},
            state_dir=tmp_path / "chaos",
        )
        svc = open_service(tmp_path / "s", lease_ttl=30.0, max_retries=2,
                           backoff_base=0.01)
        res = svc.submit(RC, "dc")
        with chaos_serve(chaos):
            procs = svc.spawn_workers(1, max_seconds=60)
            procs[0].join(timeout=60)
            # the worker died inside put(): no published payload, and
            # has() must not be fooled by any leftovers
            pkl, _ = svc.queue.store._paths(res.key)
            assert not os.path.exists(pkl)
            assert svc.queue.store.has(res.key) is False
            # recovery: reclaim the dead worker's lease and drain inline
            svc.recover()
            svc.drain()
        rec = svc.status(res.job_id)
        assert rec["state"] == "done"
        got = svc.queue.store.get(res.key)
        # bit-identical to a fault-free run in a fresh root
        ref = open_service(tmp_path / "ref")
        ref_res = ref.submit(RC, "dc")
        ref.drain()
        want = ref.queue.store.get(ref_res.key)
        np.testing.assert_array_equal(got["x"], want["x"])
        assert got["node_names"] == want["node_names"]

    def test_atomic_write_bytes_never_leaves_partial(self, tmp_path):
        path = tmp_path / "f.bin"
        atomic = __import__("repro.serve.store", fromlist=["atomic_write_bytes"])
        atomic.atomic_write_bytes(str(path), b"x" * 1000)
        assert path.read_bytes() == b"x" * 1000
        atomic.atomic_write_bytes(str(path), b"y" * 10)
        assert path.read_bytes() == b"y" * 10
        # no stray temp files left behind
        assert [p.name for p in tmp_path.iterdir()] == ["f.bin"]


# -- lease staleness vs clock steps -------------------------------------


class TestLeaseClockHardening:
    def _leased_job(self, tmp_path, **cfg):
        svc = open_service(tmp_path / "s", **cfg)
        res = svc.submit(RC, "dc")
        q = svc.queue
        assert q.try_lease(res.job_id, "w-live")
        q.record_running(res.job_id, "w-live")
        lease = tmp_path / "s" / "leases" / f"{res.job_id}.lease"
        return svc, res, q, lease

    def test_future_mtime_lease_is_fresh(self, tmp_path):
        """A lease touched 'in the future' (clock stepped back under a
        live worker) has age 0, not a huge negative number that later
        arithmetic could misread — it is simply not stale."""
        svc, res, q, lease = self._leased_job(tmp_path, lease_ttl=0.2)
        future = time.time() + 3600.0
        os.utime(lease, (future, future))
        assert q.reclaim_expired() == []
        assert svc.status(res.job_id)["state"] == "running"

    def test_clock_step_blocks_ttl_reclaim_of_live_owner(self, tmp_path):
        """With a visible wall-vs-monotonic step, TTL expiry alone must
        not reclaim: the owner (this process) is alive, so the lease
        survives even though its age exceeds the TTL."""
        svc, res, q, lease = self._leased_job(tmp_path, lease_ttl=0.2)
        old = time.time() - 50.0
        os.utime(lease, (old, old))
        # sanity: without a step this lease would be reclaimed
        assert abs(q.clock_step()) < 1.0
        # simulate a 100 s backward NTP step since open
        q._clock_anchor = (q._clock_anchor[0] + 100.0, q._clock_anchor[1])
        assert abs(q.clock_step()) > 99.0
        assert q.reclaim_expired() == []
        assert svc.status(res.job_id)["state"] == "running"

    def test_clock_step_still_reclaims_dead_owner(self, tmp_path):
        """The dead-PID fast path is step-proof: a provably dead owner
        loses its lease no matter what the wall clock did."""
        svc, res, q, lease = self._leased_job(tmp_path, lease_ttl=0.2)
        lease.write_text(json.dumps(
            {"job": res.job_id, "worker": "w-dead", "pid": 2 ** 22 + 19,
             "attempt": 1}
        ))
        old = time.time() - 50.0
        os.utime(lease, (old, old))
        q._clock_anchor = (q._clock_anchor[0] + 100.0, q._clock_anchor[1])
        assert q.reclaim_expired() == [res.job_id]
        assert svc.status(res.job_id)["state"] == "queued"

    def test_no_step_ttl_reclaim_still_works(self, tmp_path):
        """The hardening must not break the plain hung-worker case:
        silent heartbeat + honest clock still reclaims."""
        svc, res, q, lease = self._leased_job(tmp_path, lease_ttl=0.2)
        old = time.time() - 5.0
        os.utime(lease, (old, old))
        assert q.reclaim_expired() == [res.job_id]


# -- result-store GC ----------------------------------------------------


class TestStoreGC:
    def _filled(self, tmp_path, n=4, now=1_000_000.0):
        """A store with n entries, oldest first (mtimes 1s apart)."""
        store = ResultStore(tmp_path / "res")
        keys = []
        for i in range(n):
            key = f"{i:02d}" + "e" * 62
            store.put(key, {"x": np.arange(128.0) + i})
            pkl, meta = store._paths(key)
            t = now - (n - i) * 10.0
            os.utime(pkl, (t, t))
            keys.append(key)
        return store, keys, now

    def test_max_bytes_evicts_lru_first(self, tmp_path):
        store, keys, now = self._filled(tmp_path)
        per = store.total_bytes() // 4
        stats = store.gc(max_bytes=2 * per + 10, now=now)
        assert stats["evicted_keys"] == keys[:2]  # oldest two go
        assert stats["bytes_after"] <= 2 * per + 10
        assert not stats["over_budget"]
        assert sorted(store.keys()) == sorted(keys[2:])
        # survivors still verify
        assert store.get(keys[3]) is not None

    def test_max_age_evicts_idle_entries(self, tmp_path):
        store, keys, now = self._filled(tmp_path)
        stats = store.gc(max_age=25.0, now=now)  # entries older than 25 s
        assert stats["evicted_keys"] == keys[:2]
        assert sorted(store.keys()) == sorted(keys[2:])

    def test_pinned_entries_survive_and_flag_over_budget(self, tmp_path):
        store, keys, now = self._filled(tmp_path)
        for key in keys:
            store.pin(key)
        stats = store.gc(max_bytes=1, now=now)
        assert stats["evicted"] == 0
        assert stats["kept_pinned"] == 4
        assert stats["over_budget"] is True
        store.unpin(keys[0])
        stats = store.gc(max_bytes=1, now=now)
        assert stats["evicted_keys"] == [keys[0]]

    def test_caller_pinned_set_protects(self, tmp_path):
        store, keys, now = self._filled(tmp_path)
        stats = store.gc(max_bytes=1, pinned={keys[0]}, now=now)
        assert keys[0] not in stats["evicted_keys"]
        assert keys[0] in list(store.keys())

    def test_verified_read_touches_lru_clock(self, tmp_path):
        store, keys, now = self._filled(tmp_path)
        assert store.get(keys[0]) is not None  # bumps mtime to real now
        stats = store.gc(max_bytes=store.total_bytes() // 2, now=now)
        assert keys[0] not in stats["evicted_keys"]

    def test_dry_run_plans_without_deleting(self, tmp_path):
        store, keys, now = self._filled(tmp_path)
        stats = store.gc(max_bytes=1, dry_run=True, now=now)
        assert stats["evicted"] == 4 and stats["dry_run"]
        assert sorted(store.keys()) == sorted(keys)  # nothing touched

    def test_orphan_meta_and_tmp_sweep_respects_grace(self, tmp_path):
        store, keys, now = self._filled(tmp_path)
        d = os.path.dirname(store._paths(keys[0])[0])
        old_meta = os.path.join(d, "ff" + "a" * 62 + ".json")
        open(old_meta, "w").write("{}")
        os.utime(old_meta, (now - 3600, now - 3600))
        young_tmp = os.path.join(d, ".tmp-inflight")
        open(young_tmp, "wb").write(b"x")  # fresh: an in-flight put
        stats = store.gc(now=now)
        assert stats["orphan_meta_removed"] == 1
        assert stats["tmp_removed"] == 0
        assert not os.path.exists(old_meta)
        assert os.path.exists(young_tmp)

    def test_gc_store_pins_inflight_job_keys(self, tmp_path):
        """A worker wrote its result but has not recorded done yet:
        that key is in flight and must survive any GC budget."""
        svc = open_service(tmp_path / "s")
        res = svc.submit(RC, "dc")
        q = svc.queue
        assert q.try_lease(res.job_id, "w1")
        q.record_running(res.job_id, "w1")
        q.store.put(res.key, {"x": np.arange(8.0)})
        stats = q.gc_store(max_bytes=1)
        assert stats["evicted"] == 0
        assert stats["over_budget"] is True
        assert q.store.has(res.key)
        # once the job settles, the same budget evicts it
        q.record_done(res.job_id, res.key, "w1", wall=0.0)
        q.release_lease(res.job_id)
        stats = q.gc_store(max_bytes=1)
        assert stats["evicted_keys"] == [res.key]

    def test_worker_runs_gc_opportunistically(self, tmp_path):
        """gc_max_bytes in the service config makes workers bound the
        store between jobs without any operator involvement."""
        svc = open_service(tmp_path / "s", gc_max_bytes=1, gc_every=1,
                           backoff_base=0.01)
        for i in range(3):
            svc.submit(rc_variant(i), "dc")
        svc.drain()
        assert all(r["state"] == "done" for r in svc.status())
        # the worker's between-jobs GC kept the store bounded: under the
        # (absurd) 1-byte budget every settled result is evicted; at most
        # the final job's own result can linger until the next GC pass
        assert len(svc.queue.store) <= 1

    def test_gc_cli(self, tmp_path, capsys):
        from repro.serve.__main__ import main

        root = str(tmp_path / "s")
        svc = open_service(root)
        svc.submit(RC, "dc")
        svc.drain()
        assert main(["gc", root, "--max-bytes", "1", "--dry-run"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["dry_run"] is True and out["evicted"] == 1
        assert len(svc.queue.store) == 1  # dry run deleted nothing
        assert main(["gc", root, "--max-bytes", "1"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["evicted"] == 1
        assert len(svc.queue.store) == 0
