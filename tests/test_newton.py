"""Tests for the damped Newton solver."""

import numpy as np
import pytest

from repro.linalg import ConvergenceError, NewtonOptions, newton_solve


class TestNewtonScalarVector:
    def test_linear_system_one_step(self):
        A = np.array([[2.0, 1.0], [1.0, 3.0]])
        b = np.array([1.0, 2.0])
        res = newton_solve(lambda x: A @ x - b, lambda x: A, np.zeros(2))
        assert res.converged
        np.testing.assert_allclose(res.x, np.linalg.solve(A, b), rtol=1e-10)
        assert res.iterations <= 2

    def test_sqrt_via_newton(self):
        res = newton_solve(
            lambda x: np.array([x[0] ** 2 - 2.0]),
            lambda x: np.array([[2.0 * x[0]]]),
            np.array([1.0]),
        )
        assert res.converged
        np.testing.assert_allclose(res.x[0], np.sqrt(2.0), rtol=1e-9)

    def test_exponential_needs_damping(self):
        # f(x) = exp(x) - 1e-6: undamped Newton from x=30 overshoots wildly
        res = newton_solve(
            lambda x: np.array([np.exp(np.clip(x[0], -700, 700)) - 1e-6]),
            lambda x: np.array([[np.exp(np.clip(x[0], -700, 700))]]),
            np.array([5.0]),
            NewtonOptions(maxiter=200, abstol=1e-12),
        )
        assert res.converged
        np.testing.assert_allclose(res.x[0], np.log(1e-6), rtol=1e-6)

    def test_dx_limit(self):
        calls = []

        def residual(x):
            calls.append(x.copy())
            return np.array([1e8 * x[0] - 1.0])

        res = newton_solve(
            residual,
            lambda x: np.array([[1e8]]),
            np.array([0.0]),
            NewtonOptions(dx_limit=1e-3, maxiter=100, abstol=1e-12),
        )
        assert res.converged

    def test_failure_raises(self):
        with pytest.raises(ConvergenceError):
            newton_solve(
                lambda x: np.array([x[0] ** 2 + 1.0]),  # no real root
                lambda x: np.array([[2.0 * x[0] + 1e-3]]),
                np.array([1.0]),
                NewtonOptions(maxiter=15),
            )

    def test_jacobian_as_solver_callable(self):
        A = np.diag([2.0, 4.0])
        b = np.array([2.0, 8.0])
        res = newton_solve(
            lambda x: A @ x - b,
            lambda x: (lambda r: np.linalg.solve(A, r)),
            np.zeros(2),
        )
        assert res.converged
        np.testing.assert_allclose(res.x, [1.0, 2.0], rtol=1e-10)

    def test_sparse_jacobian(self):
        import scipy.sparse as sp

        A = sp.diags([3.0, 5.0, 7.0]).tocsr()
        b = np.array([3.0, 10.0, 21.0])
        res = newton_solve(lambda x: A @ x - b, lambda x: A, np.zeros(3))
        assert res.converged
        np.testing.assert_allclose(res.x, [1.0, 2.0, 3.0], rtol=1e-10)

    def test_history_recorded(self):
        A = np.eye(2) * 2
        b = np.ones(2)
        res = newton_solve(lambda x: A @ x - b, lambda x: A, np.zeros(2))
        assert len(res.history) >= 1
        assert res.history[-1] <= 1e-9


class TestFailureDiagnostics:
    """Newton must fail fast — with a best-effort payload — instead of
    looping on non-finite residuals until maxiter."""

    def test_nan_residual_fails_fast_with_payload(self):
        calls = {"n": 0}

        def residual(x):
            calls["n"] += 1
            return np.full(2, np.nan)

        with pytest.raises(ConvergenceError, match="not finite") as err:
            newton_solve(residual, lambda x: np.eye(2), np.zeros(2),
                         NewtonOptions(maxiter=100))
        # far fewer evaluations than maxiter * backtracks would allow
        assert calls["n"] < 30
        assert err.value.best_x is not None
        assert err.value.iterations is not None

    def test_residual_turning_nan_mid_solve(self):
        # healthy for the first iterate, NaN afterwards: the solver must
        # report the last finite residual in its payload
        def residual(x):
            if np.linalg.norm(x) < 0.5:
                return x - 2.0
            return np.full_like(x, np.nan)

        with pytest.raises(ConvergenceError) as err:
            newton_solve(residual, lambda x: np.eye(2), np.zeros(2))
        assert np.isfinite(err.value.best_norm)

    def test_singular_jacobian_payload(self):
        with pytest.raises(ConvergenceError, match="singular") as err:
            newton_solve(
                lambda x: x - 1.0,
                lambda x: np.zeros((2, 2)),
                np.zeros(2),
            )
        np.testing.assert_array_equal(err.value.best_x, np.zeros(2))
