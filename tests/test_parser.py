"""Tests for the SPICE-flavoured netlist parser."""

import numpy as np
import pytest

from repro.netlist import NetlistError, parse_netlist, parse_value
from repro.netlist.components import BJT, MOSFET, Capacitor, Diode, Resistor
from repro.netlist.waveforms import DC, Pulse, Sine


class TestParseValue:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("100", 100.0),
            ("4.7k", 4700.0),
            ("100n", 1e-7),
            ("1meg", 1e6),
            ("2.5u", 2.5e-6),
            ("3p", 3e-12),
            ("1.5f", 1.5e-15),
            ("-2m", -2e-3),
            ("1e-9", 1e-9),
            ("2.2E3", 2200.0),
            ("1g", 1e9),
        ],
    )
    def test_values(self, token, expected):
        assert parse_value(token) == pytest.approx(expected)

    def test_unit_suffix_ignored(self):
        assert parse_value("5v") == 5.0

    def test_garbage_rejected(self):
        with pytest.raises(NetlistError):
            parse_value("abc")


class TestParser:
    def test_basic_rc(self):
        ckt = parse_netlist(
            """
            test rc circuit
            V1 in 0 SIN(0 1 1meg)
            R1 in out 1k
            C1 out 0 1n
            .end
            """
        )
        assert ckt.title == "test rc circuit"
        assert isinstance(ckt["R1"], Resistor)
        assert ckt["R1"].resistance == 1000.0
        assert isinstance(ckt["C1"], Capacitor)
        assert isinstance(ckt["V1"].waveform, Sine)
        assert ckt["V1"].waveform.freq == 1e6

    def test_dc_source_forms(self):
        ckt = parse_netlist("V1 a 0 5\nV2 b 0 dc 3.3\nR1 a b 1k\n")
        assert isinstance(ckt["V1"].waveform, DC)
        assert ckt["V1"].waveform.value == 5.0
        assert ckt["V2"].waveform.value == pytest.approx(3.3)

    def test_pulse_source(self):
        ckt = parse_netlist("V1 a 0 PULSE(0 5 1n 2n 2n 10n 20n)\nR1 a 0 50\n")
        w = ckt["V1"].waveform
        assert isinstance(w, Pulse)
        assert w.period == pytest.approx(20e-9)
        assert w.v2 == 5.0

    def test_semiconductors(self):
        ckt = parse_netlist(
            """
            D1 a 0 IS=1e-15 N=1.5
            Q1 c b e BF=80 PNP
            M1 d g s KP=1m VTH=0.4 PMOS
            R1 a c 1k
            R2 d b 1k
            R3 e s 1k
            """
        )
        assert isinstance(ckt["D1"], Diode)
        assert ckt["D1"].isat == 1e-15
        assert isinstance(ckt["Q1"], BJT)
        assert ckt["Q1"].beta_f == 80.0
        assert ckt["Q1"].polarity == -1
        assert isinstance(ckt["M1"], MOSFET)
        assert ckt["M1"].polarity == -1

    def test_continuation_and_comments(self):
        ckt = parse_netlist(
            """
            * comment line
            R1 a 0
            + 2k   ; trailing comment
            """
        )
        assert ckt["R1"].resistance == 2000.0

    def test_mutual_inductance(self):
        ckt = parse_netlist(
            """
            L1 a 0 1u
            L2 b 0 1u
            K1 L1 L2 0.9
            R1 a b 1k
            """
        )
        assert ckt["K1"].coupling == pytest.approx(0.9)

    def test_controlled_sources(self):
        ckt = parse_netlist("E1 o 0 a 0 10\nG1 p 0 a 0 1m\nR1 a o 1k\nR2 p 0 1k\n")
        assert ckt["E1"].gain == 10.0
        assert ckt["G1"].gm == pytest.approx(1e-3)

    def test_unknown_card_rejected(self):
        with pytest.raises(NetlistError):
            parse_netlist("R1 a 0 1k\nZ1 a b nonsense\n")

    def test_short_card_rejected(self):
        # (a lone two-token first line reads as a title; mid-file short
        # cards must be rejected)
        with pytest.raises(NetlistError):
            parse_netlist("R1 a 0 1k\nR2 b\n")

    def test_end_stops_parsing(self):
        ckt = parse_netlist("R1 a 0 1k\n.end\nR2 b 0 2k\n")
        assert "R2" not in ckt

    def test_parsed_circuit_simulates(self):
        from repro.analysis import dc_analysis

        ckt = parse_netlist(
            """
            parsed divider
            V1 in 0 10
            R1 in mid 1k
            R2 mid 0 1k
            """
        )
        sys = ckt.compile()
        res = dc_analysis(sys)
        assert res.voltage(sys, "mid") == pytest.approx(5.0)


class TestSubcircuits:
    def test_flat_expansion(self):
        from repro.analysis import dc_analysis

        ckt = parse_netlist(
            """
            .subckt divider in out
            R1 in out 1k
            R2 out 0 1k
            .ends
            V1 top 0 10
            X1 top tap divider
            """
        )
        sys = ckt.compile()
        res = dc_analysis(sys)
        assert res.voltage(sys, "tap") == pytest.approx(5.0)
        # internal devices carry the instance path
        assert "X1.R1" in ckt

    def test_nested_instances(self):
        from repro.analysis import dc_analysis

        ckt = parse_netlist(
            """
            .subckt divider in out
            R1 in out 1k
            R2 out 0 1k
            .ends
            .subckt quad a b
            Xd1 a m divider
            Xd2 m b divider
            .ends
            V1 top 0 8
            X1 top tap quad
            """
        )
        sys = ckt.compile()
        res = dc_analysis(sys)
        # cascaded loaded dividers: v_mid = 8 * 3/(2*3+2) ... solved network
        assert 0.0 < res.voltage(sys, "tap") < res.voltage(sys, "X1.m")

    def test_internal_nodes_isolated_between_instances(self):
        ckt = parse_netlist(
            """
            .subckt cell a
            R1 a internal 1k
            R2 internal 0 1k
            .ends
            V1 p 0 1
            X1 p cell
            X2 p cell
            """
        )
        names = ckt.node_names()
        assert "X1.internal" in names and "X2.internal" in names

    def test_mutual_inductor_references_scoped(self):
        ckt = parse_netlist(
            """
            .subckt xfmr p s
            L1 p 0 1u
            L2 s 0 1u
            K1 L1 L2 0.9
            .ends
            X1 a b xfmr
            R1 a b 1k
            """
        )
        assert "X1.K1" in ckt
        assert ckt["X1.K1"].ind1 is ckt["X1.L1"]

    def test_port_count_mismatch(self):
        with pytest.raises(NetlistError, match="ports"):
            parse_netlist(
                """
                .subckt cell a b
                R1 a b 1k
                .ends
                X1 p cell
                """
            )

    def test_unknown_subckt(self):
        with pytest.raises(NetlistError, match="unknown subcircuit"):
            parse_netlist("X1 a b nothere\n")

    def test_unterminated_definition(self):
        with pytest.raises(NetlistError, match="unterminated"):
            parse_netlist(".subckt cell a\nR1 a 0 1k\n")

    def test_ground_not_renamed(self):
        ckt = parse_netlist(
            """
            .subckt cell a
            R1 a 0 1k
            .ends
            X1 p cell
            R2 p 0 1k
            """
        )
        assert ckt.node_names() == ["p"]
