"""Skip-slot handling in every ``sweep_map`` consumer.

``on_item_failure="skip"`` quarantines a failing sweep item and leaves a
``None`` in its result slot.  Consumers used to crash on that ``None``
(or worse, silently mis-shape their output); now each one either keeps
its output shape with visible NaN holes (AC, Monte-Carlo, ROM transfer)
or refuses loudly with :class:`~repro.perf.SweepItemSkipped` when a hole
would make the result *wrong* rather than incomplete (HB sweep slot
access, EM assembly/extraction).  Faults are injected with the chaos
harness so the skip path is exercised exactly as production would see
it — the item fails persistently, retries exhaust, the engine skips.
"""

import numpy as np
import pytest

from repro.analysis.ac import ac_analysis
from repro.perf import SkippedSlot, SweepItemSkipped
from repro.robust import ChaosSpec, SweepChaos, chaos_sweeps

SKIP = {"on_item_failure": "skip", "retries": 0}


def _persistent_fault(index, tmp_path):
    """A fault that never heals: retries exhaust, the engine skips."""
    return SweepChaos({index: ChaosSpec(kind="error", times=99)}, tmp_path)


class TestACSkip:
    def test_nan_column_and_note(self, rc_lowpass, tmp_path):
        freqs = [1e3, 1e5, 1e7]
        clean = ac_analysis(rc_lowpass, "V1", freqs)
        with chaos_sweeps(_persistent_fault(1, tmp_path)):
            res = ac_analysis(rc_lowpass, "V1", freqs, sweep_options=dict(SKIP))
        assert res.skipped == (1,)
        assert np.all(np.isnan(res.X[:, 1]))
        # surviving columns are untouched
        np.testing.assert_array_equal(res.X[:, 0], clean.X[:, 0])
        np.testing.assert_array_equal(res.X[:, 2], clean.X[:, 2])
        assert any("skipped" in note for note in res.notes)

    def test_clean_run_reports_nothing(self, rc_lowpass):
        res = ac_analysis(rc_lowpass, "V1", [1e3, 1e5])
        assert res.skipped == ()
        assert res.notes == ()


class TestHBSweepSkip:
    def _system(self):
        from repro.netlist import Circuit, Sine

        ckt = Circuit("hb")
        ckt.vsource("V1", "in", "0", Sine(offset=0.2, amplitude=0.4, freq=1e6))
        ckt.resistor("R1", "in", "out", 1e3)
        ckt.capacitor("C1", "out", "0", 1e-12)
        ckt.diode("D1", "out", "0")
        return ckt.compile()

    def test_skipped_point_becomes_placeholder(self, tmp_path):
        from repro.hb.hb_core import hb_sweep

        system = self._system()
        points = [{"harmonics": [2]}, {"harmonics": [3]}]
        with chaos_sweeps(_persistent_fault(0, tmp_path)):
            results = hb_sweep(
                system, points, freqs=[1e6], sweep_options=dict(SKIP)
            )
        assert isinstance(results[0], SkippedSlot)
        assert not results[0]  # falsy, so `if res:` filters naturally
        # the surviving point is a real solution
        assert np.all(np.isfinite(results[1].solution.x))
        # attribute access on the hole fails loudly, with the context
        with pytest.raises(SweepItemSkipped, match="hb_sweep"):
            results[0].solution


class TestMonteCarloSkip:
    def test_nan_path_block_keeps_shape(self, tmp_path):
        from repro.phasenoise import VanDerPol
        from repro.phasenoise.montecarlo import _PATH_CHUNK, simulate_sde_ensemble

        vdp = VanDerPol(mu=0.2, sigma=0.05)
        x0 = np.array([2.0, 0.0])
        n_paths = 3 * _PATH_CHUNK
        _, clean = simulate_sde_ensemble(vdp, x0, 5.0, 100, n_paths, seed=7)
        with chaos_sweeps(_persistent_fault(1, tmp_path)):
            _, holes = simulate_sde_ensemble(
                vdp, x0, 5.0, 100, n_paths, seed=7, sweep_options=dict(SKIP)
            )
        assert holes.shape == clean.shape
        block = slice(_PATH_CHUNK, 2 * _PATH_CHUNK)
        assert np.all(np.isnan(holes[:, block]))
        np.testing.assert_array_equal(holes[:, : _PATH_CHUNK], clean[:, : _PATH_CHUNK])
        np.testing.assert_array_equal(
            holes[:, 2 * _PATH_CHUNK :], clean[:, 2 * _PATH_CHUNK :]
        )


class TestROMTransferSkip:
    def _descriptor(self):
        from repro.netlist import Circuit
        from repro.rom import port_descriptor

        ckt = Circuit("rom")
        ckt.vsource("P1", "p", "0", 0.0)
        ckt.resistor("R1", "p", "a", 50.0)
        ckt.capacitor("C1", "a", "0", 1e-12)
        ckt.inductor("L1", "a", "0", 1e-9)
        return port_descriptor(ckt.compile(), ["P1"])

    def test_nan_block_and_report_note(self, tmp_path):
        from repro.robust.report import SolveReport

        desc = self._descriptor()
        s_vals = 2j * np.pi * np.logspace(6, 9, 4)
        clean = desc.transfer(s_vals)
        report = SolveReport(analysis="rom")
        with chaos_sweeps(_persistent_fault(2, tmp_path)):
            holes = desc.transfer(
                s_vals, report=report, sweep_options=dict(SKIP)
            )
        assert holes.shape == clean.shape
        assert np.all(np.isnan(holes[2]))
        np.testing.assert_array_equal(holes[0], clean[0])
        np.testing.assert_array_equal(holes[3], clean[3])
        assert any("skipped" in note for note in report.notes)


class TestEMSkipRefusal:
    """A hole in an EM operator is wrong, not incomplete: refuse loudly."""

    def _panels(self):
        from repro.em import conductor_bus

        return conductor_bus(2, 2e-6, 60e-6, 6e-6, 1, 8)

    def test_dense_assembly_raises(self, tmp_path):
        from repro.em.kernels import PanelKernel

        kern = PanelKernel(self._panels())
        with chaos_sweeps(_persistent_fault(0, tmp_path)):
            with pytest.raises(SweepItemSkipped, match="row-block assembly"):
                kern.dense(sweep_options=dict(SKIP))

    def test_ies3_compression_raises(self, tmp_path):
        from repro.em.ies3 import compress_operator
        from repro.em.kernels import PanelKernel

        kern = PanelKernel(self._panels())
        with chaos_sweeps(_persistent_fault(0, tmp_path)):
            with pytest.raises(SweepItemSkipped, match="IES3"):
                compress_operator(
                    kern.block, kern.centers, leaf_size=4,
                    sweep_options=dict(SKIP),
                )

    def test_fast_extraction_raises(self, tmp_path):
        from repro.em.mom import capacitance_matrix_fast

        # fault far enough in to hit the per-conductor excitation sweep
        # on at least some schedules; either sweep refusing is correct
        with chaos_sweeps(_persistent_fault(0, tmp_path)):
            with pytest.raises(SweepItemSkipped):
                capacitance_matrix_fast(
                    self._panels(), leaf_size=4, sweep_options=dict(SKIP)
                )
