"""ROM tests: moments, PVL vs Arnoldi, AWE instability, PRIMA passivity."""

import numpy as np
import pytest

from repro.netlist import Circuit
from repro.rom import (
    DescriptorSystem,
    arnoldi,
    awe,
    check_passivity,
    port_descriptor,
    prima,
    pvl,
    stable_poles_only,
)


def two_pole_system():
    """H(s) = 1/(1+s) + 2/(1+s/10)."""
    C = np.diag([1.0, 0.1])
    G = np.eye(2)
    B = np.array([[1.0], [1.0]])
    L = np.array([[1.0], [2.0]])
    return DescriptorSystem(C=C, G=G, B=B, L=L)


def rc_ladder_desc(n=40, r=10.0, c=1e-12, with_vccs=True):
    """Terminated RC ladder; optional VCCS breaks reciprocity so the
    one-sided/two-sided moment-count contrast is visible."""
    ckt = Circuit("ladder")
    ckt.vsource("Vp", "n0", "0", 0.0)
    for k in range(n):
        ckt.resistor(f"R{k}", f"n{k}", f"n{k+1}", r)
        ckt.capacitor(f"C{k}", f"n{k+1}", "0", c)
    ckt.resistor("Rload", f"n{n}", "0", 100.0)
    if with_vccs:
        ckt.vccs("Gm1", f"n{n//2}", "0", "n1", "0", 2e-3)
    return port_descriptor(ckt.compile(), ["Vp"])


def rlc_line_desc(n=25):
    ckt = Circuit("tline")
    ckt.vsource("Vp", "n0", "0", 0.0)
    for k in range(n):
        ckt.resistor(f"R{k}", f"n{k}", f"m{k}", 1.0)
        ckt.inductor(f"L{k}", f"m{k}", f"n{k+1}", 1e-9)
        ckt.capacitor(f"C{k}", f"n{k+1}", "0", 1e-12)
    ckt.resistor("Rload", f"n{n}", "0", 50.0)
    return port_descriptor(ckt.compile(), ["Vp"])


class TestDescriptor:
    def test_transfer_analytic(self):
        d = two_pole_system()
        s = np.array([0.0, 1j, 10j])
        H = d.transfer(s)[:, 0, 0]
        expect = 1 / (1 + s) + 2 / (1 + s / 10)
        np.testing.assert_allclose(H, expect, rtol=1e-12)

    def test_moments_match_taylor(self):
        d = two_pole_system()
        m = d.moments(4)[:, 0, 0]
        # H(s) = sum_k [(-1)^k + 2 (-1/10)^k ... careful] derive directly:
        expect = [3.0, -(1.0 + 0.2), (1.0 + 0.02), -(1.0 + 0.002)]
        np.testing.assert_allclose(np.real(m), expect, rtol=1e-10)

    def test_moments_about_shifted_point(self):
        d = two_pole_system()
        s0 = 0.5
        m = d.moments(3, s0=s0)[:, 0, 0]
        h = 1e-5
        # compare with numerical Taylor coefficients at s0
        s_pts = s0 + h * np.array([-1, 0, 1])
        H = d.transfer(s_pts)[:, 0, 0]
        np.testing.assert_allclose(m[0], H[1], rtol=1e-8)
        np.testing.assert_allclose(m[1], (H[2] - H[0]) / (2 * h), rtol=1e-4)

    def test_port_descriptor_dc_admittance(self):
        d = rc_ladder_desc(n=10, with_vccs=False)
        y0 = d.transfer([0.0])[0, 0, 0]
        np.testing.assert_allclose(np.real(y0), 1.0 / (10 * 10.0 + 100.0), rtol=1e-9)

    def test_port_descriptor_needs_vsource(self):
        ckt = Circuit()
        ckt.resistor("R1", "a", "0", 1.0)
        with pytest.raises(KeyError):
            port_descriptor(ckt.compile(), ["R1"])


class TestMomentMatching:
    """PVL matches 2q moments, Arnoldi q — the paper's factor of two."""

    def test_pvl_two_q_moments(self):
        d = rc_ladder_desc()
        q = 4
        mom_full = d.moments(2 * q)[:, 0, 0]
        mom_red = pvl(d, q).moments(2 * q)[:, 0, 0]
        rel = np.abs((mom_red - mom_full) / mom_full)
        assert np.all(rel[: 2 * q - 1] < 1e-6)

    def test_arnoldi_q_moments_only(self):
        d = rc_ladder_desc()
        q = 4
        mom_full = d.moments(2 * q)[:, 0, 0]
        mom_red = arnoldi(d, q).moments(2 * q)[:, 0, 0]
        rel = np.abs((mom_red - mom_full) / mom_full)
        assert np.all(rel[:q] < 1e-6)  # first q matched...
        assert np.any(rel[q : 2 * q] > 1e-6)  # ...but not 2q (nonsymmetric net)

    def test_pvl_transfer_convergence(self):
        d = rc_ladder_desc()
        freqs = np.geomspace(1e6, 2e9, 30)
        s = 2j * np.pi * freqs
        H = d.transfer(s)[:, 0, 0]
        errs = []
        for q in (4, 8, 12):
            Hr = pvl(d, q).transfer(s)[:, 0, 0]
            errs.append(np.max(np.abs(Hr - H) / np.abs(H)))
        assert errs[2] < errs[1] < errs[0]
        assert errs[2] < 1e-4

    def test_expansion_about_nonzero_s0(self):
        d = rc_ladder_desc()
        s0 = 2 * np.pi * 1e9
        rom = pvl(d, 6, s0=s0)
        s = 2j * np.pi * np.linspace(0.8e9, 1.2e9, 7)
        np.testing.assert_allclose(
            rom.transfer(s)[:, 0, 0], d.transfer(s)[:, 0, 0], rtol=5e-4
        )

    def test_mimo_arnoldi(self):
        # 2-port RC network
        ckt = Circuit()
        ckt.vsource("V1", "p1", "0", 0.0)
        ckt.vsource("V2", "p2", "0", 0.0)
        for k, (a, b) in enumerate([("p1", "m"), ("m", "p2")]):
            ckt.resistor(f"R{k}", a, b, 100.0)
        ckt.capacitor("Cm", "m", "0", 1e-12)
        d = port_descriptor(ckt.compile(), ["V1", "V2"])
        rom = arnoldi(d, 4)
        s = 2j * np.pi * np.geomspace(1e6, 1e10, 10)
        np.testing.assert_allclose(rom.transfer(s), d.transfer(s), rtol=1e-6)


class TestAWE:
    def test_exact_on_two_pole(self):
        d = two_pole_system()
        pm = awe(d, 2)
        np.testing.assert_allclose(sorted(np.real(pm.poles())), [-10.0, -1.0], rtol=1e-6)

    def test_transfer_matches_low_order(self):
        d = rc_ladder_desc()
        pm = awe(d, 6)
        freqs = np.geomspace(1e6, 5e8, 15)
        s = 2j * np.pi * freqs
        np.testing.assert_allclose(
            pm.transfer(s), d.transfer(s)[:, 0, 0], rtol=5e-2
        )

    def test_hankel_condition_explodes(self):
        """The instability mechanism: Hankel conditioning grows without
        bound as more moments are matched (paper sec. 5)."""
        d = rc_ladder_desc()
        conds = [awe(d, q).hankel_condition for q in (2, 6, 10, 14)]
        assert conds[1] > 1e2 * conds[0]
        assert conds[3] > 1e20

    def test_pvl_beats_awe_at_high_order(self):
        d = rc_ladder_desc(n=60)
        q = 20
        freqs = np.geomspace(1e6, 5e9, 40)
        s = 2j * np.pi * freqs
        H = d.transfer(s)[:, 0, 0]
        err_awe = np.max(np.abs(awe(d, q).transfer(s) - H) / np.abs(H))
        err_pvl = np.max(np.abs(pvl(d, q).transfer(s)[:, 0, 0] - H) / np.abs(H))
        assert err_pvl < err_awe


class TestPassivity:
    def test_prima_passive_on_rlc(self):
        d = rlc_line_desc()
        rom = prima(d, 8)
        rep = check_passivity(rom, 2 * np.pi * np.geomspace(1e6, 1e11, 60))
        assert rep.is_passive

    def test_pvl_can_lose_passivity(self):
        """The paper's warning: Lanczos ROMs of passive nets may be
        non-passive; PRIMA's congruence never is."""
        d = rlc_line_desc()
        omegas = 2 * np.pi * np.geomspace(1e6, 1e11, 60)
        rep_pvl = check_passivity(pvl(d, 8), omegas)
        rep_prima = check_passivity(prima(d, 8), omegas)
        assert rep_prima.is_positive_real
        # PVL q=8 on this line is non-passive (verified empirically); if a
        # future change makes it passive the contrast test must be updated
        assert not rep_pvl.is_passive

    def test_stable_poles_only_removes_rhp(self):
        # artificial SISO ROM with one unstable pole
        C = np.eye(2)
        G = -np.diag([-1.0, 2.0])  # poles at -1 and +2
        B = np.ones((2, 1))
        L = np.ones((2, 1))
        from repro.rom.statespace import ReducedSystem

        rom = ReducedSystem(C=C, G=G, B=B, L=L)
        fixed = stable_poles_only(rom)
        assert np.all(np.real(fixed.poles()) <= 1e-9)

    def test_passivity_report_fields(self):
        d = rlc_line_desc()
        rep = check_passivity(prima(d, 6), 2 * np.pi * np.geomspace(1e7, 1e10, 20))
        assert np.isfinite(rep.min_hermitian_eig)
        assert rep.worst_frequency > 0
