"""Smoke tests: the quick examples must run clean end to end.

Only the fast examples run here (the mixer/modulator/oscillator walkthroughs
take minutes and are exercised by the benchmark suite instead).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


class TestExampleSmoke:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "HB DC term matches shooting mean" in out
        assert "dominant source" in out

    def test_am_envelope(self):
        out = run_example("am_envelope.py")
        assert "HB cross-check" in out
        # envelope and HB agree on the demodulated tone within ~10%
        line = [l for l in out.splitlines() if "% apart" in l][0]
        pct = float(line.split("(")[1].split("%")[0])
        assert pct < 12.0

    def test_inductor_extraction(self):
        out = run_example("inductor_extraction.py")
        assert "IES3 self capacitance" in out
        assert "vector fit" in out
        assert "bandpass response" in out
