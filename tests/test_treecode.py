"""Tests for the multipole-class treecode operator."""

import numpy as np
import pytest

from repro.em import PanelKernel, build_treecode, conductor_bus, make_plate


@pytest.fixture(scope="module")
def bus_kernel():
    panels = conductor_bus(num=3, width=2e-6, length=80e-6, pitch=6e-6, nx=2, ny=24)
    return panels, PanelKernel(panels)


class TestTreecode:
    def test_matvec_accuracy_free_space(self, bus_kernel):
        panels, kern = bus_kernel
        tc = build_treecode(kern, eta=1.0)
        P = kern.dense()
        rng = np.random.default_rng(0)
        x = rng.standard_normal(len(panels))
        err = np.linalg.norm(tc.matvec(x) - P @ x) / np.linalg.norm(P @ x)
        assert err < 2e-2  # monopole+dipole: percent-level far field

    def test_tighter_eta_more_accurate(self, bus_kernel):
        panels, kern = bus_kernel
        P = kern.dense()
        rng = np.random.default_rng(1)
        x = rng.standard_normal(len(panels))

        def err(eta):
            tc = build_treecode(kern, eta=eta)
            return np.linalg.norm(tc.matvec(x) - P @ x) / np.linalg.norm(P @ x)

        assert err(0.7) < err(2.5)

    def test_near_field_exact(self):
        # with eta tiny, everything is near field -> exact
        panels = make_plate(10e-6, 10e-6, 3, 3)
        kern = PanelKernel(panels)
        tc = build_treecode(kern, eta=1e-6, leaf_size=4)
        P = kern.dense()
        x = np.arange(9, dtype=float)
        np.testing.assert_allclose(tc.matvec(x), P @ x, rtol=1e-12)

    def test_solve_converges(self, bus_kernel):
        panels, kern = bus_kernel
        tc = build_treecode(kern, eta=1.0)
        sel = np.array([p.conductor for p in panels])
        res = tc.solve((sel == 0).astype(float), tol=1e-8)
        assert res.converged
        # solution close to the dense one (percent level)
        q = np.linalg.solve(kern.dense(), (sel == 0).astype(float))
        rel = np.linalg.norm(res.x - q) / np.linalg.norm(q)
        assert rel < 5e-2

    def test_stores_less_than_dense(self, bus_kernel):
        panels, kern = bus_kernel
        tc = build_treecode(kern, eta=1.5)
        assert tc.stored_floats < len(panels) ** 2

    def test_kernel_dependence_on_image_kernel(self):
        """The documented limitation: image kernels break the far field."""
        panels = conductor_bus(num=3, width=2e-6, length=80e-6, pitch=6e-6, nx=2, ny=24)
        for p in panels:
            p.center = p.center + np.array([0.0, 0.0, 2e-6])
        kern_free = PanelKernel(panels, ground_plane=False)
        kern_gnd = PanelKernel(panels, ground_plane=True)
        rng = np.random.default_rng(2)
        x = rng.standard_normal(len(panels))

        def err(kern):
            tc = build_treecode(kern, eta=1.5)
            P = kern.dense()
            return np.linalg.norm(tc.matvec(x) - P @ x) / np.linalg.norm(P @ x)

        assert err(kern_gnd) > 5 * err(kern_free)
