"""Reporting/validation bugfix regressions.

Three previously-silent failure modes now fail loudly or report fully:

* adaptive-transient LTE rejections were counted in ``rejected_steps``
  but never recorded on the solve report — the attempt history showed a
  clean run even when half the steps were thrown away;
* ``hb_grid(oversample=0)`` silently degraded to the minimum grid,
  aliasing nonlinear products into the retained harmonics;
* ``HBResult.dbc`` against a zero-amplitude carrier returned a
  plausible-looking finite number instead of flagging the bogus
  ``carrier_index``.
"""

import numpy as np
import pytest

from repro.analysis.transient import _MAX_RECORDED_REJECTIONS, transient_analysis
from repro.hb.hb_core import harmonic_balance, hb_grid
from repro.netlist import Circuit, Sine, SquareWave


class TestLTERejectionRecords:
    def _run(self, lte_tol, t_stop=2e-6, drive=None):
        # a stiff-ish drive with a coarse initial step forces the LTE
        # controller to reject and halve repeatedly
        ckt = Circuit("lte")
        ckt.vsource("V1", "in", "0", drive or Sine(1.0, 1e6))
        ckt.resistor("R1", "in", "out", 1e3)
        ckt.capacitor("C1", "out", "0", 1e-9)
        sys = ckt.compile()
        return transient_analysis(
            sys, t_stop, 1e-7, adaptive=True, lte_tol=lte_tol
        )

    def test_lte_rejections_recorded(self):
        res = self._run(lte_tol=1e-6)
        assert res.rejected_steps > 0
        lte = [a for a in res.report.attempts if a.strategy == "step-lte"]
        assert lte, "LTE rejections must appear in the attempt history"
        for rec in lte:
            assert not rec.converged
            assert "truncation error" in rec.failure_cause
            # the record carries where/when the rejection happened
            assert "t" in rec.detail and "h" in rec.detail
            assert rec.residual_norm > 0

    def test_record_count_matches_counter_under_cap(self):
        res = self._run(lte_tol=1e-6)
        rejections = [
            a
            for a in res.report.attempts
            if a.strategy in ("step-lte", "step-backoff") and not a.converged
        ]
        if res.rejected_steps <= _MAX_RECORDED_REJECTIONS:
            assert len(rejections) == res.rejected_steps
        else:
            assert len(rejections) == _MAX_RECORDED_REJECTIONS
            assert any("not individually recorded" in n for n in res.report.notes)

    def test_cap_bounds_report_growth(self):
        # a square-wave drive over many periods: each edge triggers a
        # fresh burst of LTE rejections (smooth segments let the step
        # grow back, so the controller keeps re-entering the reject path)
        res = self._run(
            lte_tol=1e-7, t_stop=5e-5, drive=SquareWave(1.0, 1e6)
        )
        assert res.rejected_steps > _MAX_RECORDED_REJECTIONS
        rejections = [a for a in res.report.attempts if not a.converged]
        assert len(rejections) <= _MAX_RECORDED_REJECTIONS
        assert any("not individually recorded" in n for n in res.report.notes)
        # the exact counter is not capped
        assert res.rejected_steps > len(rejections)


class TestHBGridOversampleValidation:
    @pytest.mark.parametrize("bad", [0, -1, 0.5, 1.5])
    def test_rejects_non_positive_or_fractional(self, bad):
        with pytest.raises(ValueError, match="oversample"):
            hb_grid([1e6], [4], oversample=bad)

    def test_accepts_valid_values(self):
        g1 = hb_grid([1e6], [4], oversample=1)
        g4 = hb_grid([1e6], [4], oversample=4)
        assert g4.shape[0] >= g1.shape[0]

    def test_float_integral_value_ok(self):
        # 2.0 is an integer in value; only fractional values are bogus
        g = hb_grid([1e6], [4], oversample=2.0)
        assert g.shape[0] >= 8


class TestDbcZeroCarrier:
    def _result(self):
        ckt = Circuit("hb")
        ckt.vsource("V1", "in", "0", Sine(offset=0.2, amplitude=0.4, freq=1e6))
        ckt.resistor("R1", "in", "out", 1e3)
        ckt.capacitor("C1", "out", "0", 1e-12)
        ckt.diode("D1", "out", "0")
        return harmonic_balance(ckt.compile(), freqs=[1e6], harmonics=4)

    def test_zero_carrier_raises(self):
        res = self._result()
        # a harmonic index far beyond any excited product has exactly
        # zero amplitude only in pathological cases; build the guaranteed
        # zero by zeroing the spectrum instead: use an index of a node
        # clamped to zero — the ground-referenced source current at an
        # unexcited cross-harmonic of a single-tone grid is not reliably
        # zero, so synthesize the condition through a zeroed solution
        import copy

        dead = copy.deepcopy(res)
        dead.solution.x = np.zeros_like(np.asarray(res.solution.x))
        with pytest.raises(ValueError, match="zero"):
            dead.dbc("out", (2,), carrier_index=(1,))

    def test_valid_carrier_still_works(self):
        res = self._result()
        level = res.dbc("out", (2,), carrier_index=(1,))
        assert np.isfinite(level)
        assert level < 0  # second harmonic sits below the carrier

    def test_spectrum_dbc_zero_carrier_raises(self):
        import copy

        res = self._result()
        dead = copy.deepcopy(res)
        dead.solution.x = np.zeros_like(np.asarray(res.solution.x))
        with pytest.raises(ValueError, match="zero"):
            dead.spectrum_dbc("out", carrier_index=(1,))
