"""Coverage for result-object accessors across the engines."""

import numpy as np
import pytest

from repro.analysis import dc_analysis, shooting_analysis, transient_analysis
from repro.hb import harmonic_balance
from repro.mpde import Axis, MPDEGrid, envelope_analysis, solve_mpde
from repro.mpde.envelope import FastPeriodicSystem
from repro.netlist import Circuit, Sine


@pytest.fixture
def driven_rc():
    ckt = Circuit("rc")
    ckt.vsource("V1", "in", "0", Sine(1.0, 1e6))
    ckt.resistor("R1", "in", "out", 1e3)
    ckt.capacitor("C1", "out", "0", 1e-9)
    return ckt.compile()


class TestMPDESolutionAccessors:
    def test_grid_waveform_by_name_and_index(self, driven_rc):
        hb = harmonic_balance(driven_rc, harmonics=4)
        by_name = hb.grid_waveform("out")
        by_index = hb.grid_waveform(driven_rc.node("out"))
        np.testing.assert_array_equal(by_name, by_index)

    def test_univariate_reconstruction_matches_grid(self, driven_rc):
        hb = harmonic_balance(driven_rc, harmonics=4)
        t = hb.grid.axes[0].times()
        rec = hb.univariate(t)
        np.testing.assert_allclose(
            rec[:, driven_rc.node("out")], hb.grid_waveform("out"), atol=1e-9
        )

    def test_spectrum_sorted_and_consistent(self, driven_rc):
        hb = harmonic_balance(driven_rc, harmonics=4)
        spec = hb.spectrum("out")
        freqs = [f for f, _ in spec]
        assert freqs == sorted(freqs)
        fund = dict(spec)[1e6]
        np.testing.assert_allclose(fund, hb.amplitude_at("out", (1,)), rtol=1e-9)

    def test_spectrum_dbc_floor(self, driven_rc):
        hb = harmonic_balance(driven_rc, harmonics=4)
        rows = hb.spectrum_dbc("out", carrier_index=(1,), floor_db=-60.0)
        levels = [lvl for _, lvl in rows]
        assert max(levels) == pytest.approx(0.0, abs=1e-9)  # the carrier
        assert all(lvl >= -60.0 for lvl in rows and levels)

    def test_solution_metadata(self, driven_rc):
        hb = harmonic_balance(driven_rc, harmonics=4)
        assert hb.wall_time > 0
        assert hb.solver in ("direct", "gmres")
        assert hb.residual_norm < 1e-8


class TestTransientShootingAccessors:
    def test_transient_sample_and_voltage(self, driven_rc):
        tr = transient_analysis(driven_rc, t_stop=2e-6, dt=1e-8)
        assert tr.sample(0).shape == (driven_rc.n,)
        assert tr.voltage(driven_rc, "out").shape == tr.t.shape
        assert tr.newton_iterations > 0

    def test_shooting_voltage(self, driven_rc):
        sh = shooting_analysis(driven_rc, period=1e-6, steps_per_period=50)
        v = sh.voltage(driven_rc, "out")
        assert v.shape == sh.t.shape
        assert sh.period == 1e-6

    def test_dc_result_voltage(self, driven_rc):
        res = dc_analysis(driven_rc)
        assert res.voltage(driven_rc, "out") == pytest.approx(0.0, abs=1e-9)


class TestEnvelopeAccessors:
    def test_fast_waveform_shape(self, driven_rc):
        env = envelope_analysis(
            driven_rc, fast_freq=1e6, t_stop=2e-6, dt=1e-6, fast_steps=8,
            initial="periodic",
        )
        w = env.fast_waveform("out", 0)
        assert w.shape == (8,)
        e0 = env.harmonic_envelope("out", 0)
        assert e0.shape == env.tau.shape

    def test_fast_periodic_system_roundtrip(self, driven_rc):
        fps = FastPeriodicSystem(driven_rc, Axis("fourier", 1e6, 8))
        Y = fps.periodic_solution(0.0)
        # the semi-discretized residual vanishes at the periodic solution
        assert np.linalg.norm(fps.FY(Y) - fps.BY(0.0)) < 1e-7

    def test_fast_periodic_requires_periodic_axis(self, driven_rc):
        with pytest.raises(ValueError):
            FastPeriodicSystem(driven_rc, Axis("transient", 0.0, 8))


class TestGridValidation:
    def test_grid_requires_axes(self):
        with pytest.raises(ValueError):
            MPDEGrid([])

    def test_grid_rejects_transient_axes(self):
        with pytest.raises(ValueError):
            MPDEGrid([Axis("transient", 0.0, 8)])

    def test_solve_mpde_accepts_explicit_x0(self, driven_rc):
        grid = MPDEGrid([Axis("fourier", 1e6, 16)])
        cold = solve_mpde(driven_rc, grid)
        warm = solve_mpde(driven_rc, grid, x0=cold.x)
        assert warm.newton_iterations <= cold.newton_iterations
