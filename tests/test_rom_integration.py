"""ROM co-simulation tests: noise ROM and the time/frequency ROM devices.

These close the paper's sec. 5 loop: the same reduced model must serve
the full circuit analyses in both domains.
"""

import numpy as np
import pytest

from repro.analysis import ac_analysis, noise_analysis, transient_analysis
from repro.hb import harmonic_balance
from repro.netlist import Circuit, Sine
from repro.rom import (
    NoiseROM,
    ReducedOrderBlock,
    arnoldi,
    port_descriptor,
    prima,
    rom_to_fd_block,
)
from repro.rom.statespace import ReducedSystem


def ladder_circuit(n=20, r=20.0, c=0.5e-12):
    ckt = Circuit("ladder")
    ckt.vsource("Vp", "n0", "0", 0.0)
    for k in range(n):
        ckt.resistor(f"R{k}", f"n{k}", f"n{k+1}", r)
        ckt.capacitor(f"C{k}", f"n{k+1}", "0", c)
    ckt.resistor("Rload", f"n{n}", "0", 200.0)
    return ckt


def host_with(load_device_adder, f0=1e9):
    """Host driver: source + 50 ohm into whatever load the adder stamps."""
    ckt = Circuit("host")
    ckt.vsource("Vin", "src", "0", Sine(1.0, f0))
    ckt.resistor("Rs", "src", "port", 50.0)
    load_device_adder(ckt)
    return ckt.compile()


@pytest.fixture(scope="module")
def ladder_desc():
    return port_descriptor(ladder_circuit().compile(), ["Vp"])


@pytest.fixture(scope="module")
def ladder_rom(ladder_desc):
    return prima(ladder_desc, 10)


class TestROMDeviceTimeDomain:
    def test_full_descriptor_stamp_exact_ac(self, ladder_desc):
        full_rom = ReducedSystem(
            C=ladder_desc.C.toarray(), G=ladder_desc.G.toarray(),
            B=ladder_desc.B, L=ladder_desc.L,
        )
        sys = host_with(lambda c: c.add(ReducedOrderBlock("X", ["port"], full_rom)))
        ac = ac_analysis(sys, "Vin", [1e9])
        Y = ladder_desc.transfer([2j * np.pi * 1e9])[0, 0, 0]
        expect = 1.0 / (1.0 + 50.0 * Y)
        np.testing.assert_allclose(ac.voltage(sys, "port")[0], expect, rtol=1e-10)

    def test_reduced_stamp_close_to_full(self, ladder_desc, ladder_rom):
        sys = host_with(lambda c: c.add(ReducedOrderBlock("X", ["port"], ladder_rom)))
        ac = ac_analysis(sys, "Vin", [2e8])
        Y = ladder_desc.transfer([2j * np.pi * 2e8])[0, 0, 0]
        expect = 1.0 / (1.0 + 50.0 * Y)
        np.testing.assert_allclose(ac.voltage(sys, "port")[0], expect, rtol=1e-3)

    def test_transient_with_rom_matches_inline_network(self, ladder_rom):
        f0 = 2e8
        sys_rom = host_with(
            lambda c: c.add(ReducedOrderBlock("X", ["port"], ladder_rom)), f0
        )
        tr_rom = transient_analysis(sys_rom, t_stop=20e-9, dt=0.02e-9)

        def add_inline(ckt):
            lad = ladder_circuit()
            for dev in lad.devices:
                if dev.name == "Vp":
                    continue
                ckt.add(dev)
            # connect ladder input node n0 to the host port
            ckt.resistor("Rjoin", "port", "n0", 1e-6)

        sys_full = host_with(add_inline, f0)
        tr_full = transient_analysis(sys_full, t_stop=20e-9, dt=0.02e-9)
        v_rom = tr_rom.voltage(sys_rom, "port")
        v_full = tr_full.voltage(sys_full, "port")
        # steady part of the waveforms agree
        np.testing.assert_allclose(v_rom[-200:], v_full[-200:], atol=2e-3)

    def test_complex_rom_rejected(self, ladder_desc):
        from repro.rom import pvl

        rom_c = pvl(ladder_desc, 4, s0=1j * 2 * np.pi * 1e9)
        with pytest.raises(ValueError, match="complex"):
            ReducedOrderBlock("X", ["port"], rom_c)

    def test_port_count_mismatch_rejected(self, ladder_rom):
        with pytest.raises(ValueError, match="square"):
            ReducedOrderBlock("X", ["a", "b"], ladder_rom)


class TestROMInHB:
    def test_fd_block_matches_rom_device(self, ladder_rom):
        """The same ROM evaluated as Y(omega) in HB and stamped in the
        time domain gives the same fundamental response — the paper's
        both-domains requirement, verified end to end."""
        f0 = 2e8

        sys_td = host_with(
            lambda c: c.add(ReducedOrderBlock("X", ["port"], ladder_rom)), f0
        )
        hb_td = harmonic_balance(sys_td, harmonics=4)

        sys_fd = host_with(lambda c: c.resistor("Rdummy", "port", "0", 1e9), f0)
        blk = rom_to_fd_block(sys_fd, ladder_rom, ["port"])
        hb_fd = harmonic_balance(sys_fd, harmonics=4, fd_blocks=[blk])

        np.testing.assert_allclose(
            hb_fd.amplitude_at("port", (1,)),
            hb_td.amplitude_at("port", (1,)),
            rtol=1e-6,
        )

    def test_fd_block_with_nonlinear_host(self, ladder_rom):
        """ROM as HB load behind a diode — mixed linear-model/nonlinear-
        circuit simulation, the Figure-1-style use case."""

        def add_diode_and_dummy(ckt):
            ckt.diode("D1", "port", "0")
            ckt.resistor("Rdummy", "port", "0", 1e9)

        sys = host_with(add_diode_and_dummy, 2e8)
        blk = rom_to_fd_block(sys, ladder_rom, ["port"])
        hb = harmonic_balance(sys, harmonics=10, fd_blocks=[blk])
        assert hb.residual_norm < 1e-7
        assert hb.amplitude_at("port", (2,)) > 0  # diode generates harmonics


class TestNoiseROM:
    def test_matches_full_noise_analysis(self):
        ckt = ladder_circuit(n=15)
        sys = ckt.compile()
        freqs = np.geomspace(1e6, 1e10, 12)
        full = noise_analysis(sys, "n15", freqs)
        nrom = NoiseROM.from_mna(sys, "n15", order=12)
        np.testing.assert_allclose(nrom.psd(freqs), full.psd, rtol=1e-3)

    def test_contribution_lookup(self):
        sys = ladder_circuit(n=5).compile()
        nrom = NoiseROM.from_mna(sys, "n5", order=8)
        freqs = [1e8]
        contrib = nrom.contribution(freqs, "R0.thermal")
        assert contrib[0] > 0
        total = sum(
            nrom.contribution(freqs, name)[0] for name in nrom.source_names
        )
        np.testing.assert_allclose(total, nrom.psd(freqs)[0], rtol=1e-10)

    def test_rejects_noiseless_circuit(self):
        ckt = Circuit()
        ckt.capacitor("C1", "a", "0", 1e-12)
        ckt.inductor("L1", "a", "0", 1e-9)
        with pytest.raises(ValueError, match="no noise"):
            NoiseROM.from_mna(ckt.compile(), "a", order=2)
