"""Cross-module integration scenarios: netlists through the full stack."""

import numpy as np
import pytest

from repro.analysis import ac_analysis, dc_analysis, noise_analysis
from repro.em import SpiralInductor
from repro.hb import harmonic_balance
from repro.mpde import solve_mmft
from repro.netlist import Circuit, PWL, parse_netlist
from repro.phasenoise import MNAOscillator, compute_ppv, find_oscillator_pss
from repro.rf import noise_figure_db


class TestNetlistThroughEngines:
    def test_parsed_mixer_mmft(self):
        """A netlist-defined switch-free mixer (diode ring style) through MMFT."""
        ckt = parse_netlist(
            """
            diode mixer
            Vrf rf 0 SIN(0 0.05 100k)
            Vlo lo 0 SIN(0 1.2 10meg)
            Rrf rf a 100
            Rlo lo a 200
            D1 a out IS=1e-13
            Rl out 0 500
            Cl out 0 10p
            Ca a 0 1p
            """
        )
        sys = ckt.compile()
        mm = solve_mmft(sys, 100e3, 10e6, slow_harmonics=3, fast_steps=64)
        # a diode driven by RF+LO mixes: the f_lo +- f_rf product exists
        assert mm.mix_amplitude("out", 1, 1) > 2e-5

    def test_parsed_amp_noise_figure(self):
        ckt = parse_netlist(
            """
            one-transistor amp
            Vs src 0 0
            Rs src ac 50
            Cc ac b 20p
            Vbb vb 0 0.8
            Rb vb b 5k
            Q1 c b e IS=1e-15 BF=100
            Re e 0 50
            Vcc vcc 0 3
            Rc vcc c 500
            """
        )
        sys = ckt.compile()
        nz = noise_analysis(sys, "c", [10e6])
        nf = noise_figure_db(nz, "Rs.thermal")
        assert 0.5 < nf < 20.0

    def test_parsed_subckt_lc_oscillator_phase_noise(self):
        """A hierarchy-defined oscillator through the whole sec. 3 pipeline."""
        ckt = parse_netlist(
            """
            .subckt tank a
            Lt a 0 1n
            Ct a 0 1p
            Rt a 0 300
            .ends
            X1 osc tank
            """
        )
        # add the nonlinear negative-resistance cell via the API
        ckt.nonlinear_resistor(
            "Gneg", "osc", "0",
            lambda v: -5e-3 * v + 1e-3 * v**3,
            lambda v: -5e-3 + 3e-3 * v**2,
        )
        sys = ckt.compile()
        osc = MNAOscillator(sys)
        pss = find_oscillator_pss(
            osc, period_guess=2 * np.pi * np.sqrt(1e-9 * 1e-12),
            t_settle=None, steps=200,
        )
        ppv = compute_ppv(pss)
        assert 4.5e9 < pss.f0 < 5.5e9
        assert ppv.c > 0  # tank resistor thermal noise present


class TestExtractionIntoCircuit:
    def test_extracted_inductor_resonates_in_hb(self):
        """PEEC-extracted L and R dropped into a circuit: the tank built
        from extraction results resonates where the extraction says."""
        coil = SpiralInductor(
            turns=3, outer=200e-6, width=10e-6, spacing=5e-6, thickness=2e-6,
            nw=1, nt=1, substrate=None, max_segment_length=150e-6,
        )
        L = coil.dc_inductance()
        R = coil.dc_resistance_total()
        C = 1e-12
        f0 = 1.0 / (2 * np.pi * np.sqrt(L * C))

        ckt = Circuit("extracted tank")
        ckt.isource("I1", "0", "t", 0.0)
        ckt.inductor("L1", "t", "m", L)
        ckt.resistor("R1", "m", "0", R)
        ckt.capacitor("C1", "t", "0", C)
        sys = ckt.compile()
        ac = ac_analysis(sys, "I1", np.linspace(0.8 * f0, 1.2 * f0, 41))
        z = np.abs(ac.voltage(sys, "t"))
        f_peak = ac.freqs[int(np.argmax(z))]
        np.testing.assert_allclose(f_peak, f0, rtol=0.05)


class TestWaveformsInTransient:
    def test_pwl_ramp_through_rc(self):
        from repro.analysis import transient_analysis

        ckt = Circuit()
        ckt.vsource("V1", "in", "0", PWL([(0, 0.0), (1e-6, 1.0), (1e-3, 1.0)]))
        ckt.resistor("R1", "in", "out", 1e3)
        ckt.capacitor("C1", "out", "0", 1e-9)
        sys = ckt.compile()
        tr = transient_analysis(sys, t_stop=10e-6, dt=20e-9)
        v = tr.voltage(sys, "out")
        assert v[-1] > 0.99  # settled to the ramp top
        assert np.all(np.diff(v) > -1e-9)  # monotone charge

    def test_pulse_drives_logic_like_load(self):
        from repro.analysis import transient_analysis
        from repro.netlist import Pulse

        ckt = Circuit()
        ckt.vsource(
            "V1", "in", "0",
            Pulse(v1=0.0, v2=1.0, rise=1e-9, fall=1e-9, width=40e-9, period=100e-9),
        )
        ckt.resistor("R1", "in", "out", 100.0)
        ckt.capacitor("C1", "out", "0", 10e-12)
        sys = ckt.compile()
        tr = transient_analysis(sys, t_stop=300e-9, dt=0.5e-9)
        v = tr.voltage(sys, "out")
        assert v.max() > 0.95 and v.min() < 0.05  # full swing both ways


class TestHBWarmStart:
    def test_warm_start_reduces_newton_work(self, diode_rectifier):
        cold = harmonic_balance(diode_rectifier, harmonics=12)
        warm = harmonic_balance(diode_rectifier, harmonics=12, x0=cold.x)
        assert warm.newton_iterations <= cold.newton_iterations
        np.testing.assert_allclose(
            warm.amplitude_at("out", (0,)), cold.amplitude_at("out", (0,)), rtol=1e-8
        )
