"""Tests for partial inductance kernels and the PEEC spiral extractor."""

import numpy as np
import pytest

from repro.em import (
    MU0,
    Segment,
    SpiralInductor,
    SubstrateModel,
    dc_resistance,
    mutual_neumann,
    mutual_parallel_filaments,
    partial_inductance_matrix,
    self_inductance_bar,
    wheeler_inductance,
)
from repro.em.peec import reference_inductor_model


def seg(start, end, w=1e-6, t=1e-6):
    return Segment(np.asarray(start, float), np.asarray(end, float), w, t)


class TestPartialInductance:
    def test_self_inductance_order_of_magnitude(self):
        # 1 mm of 10x1 um trace: ~ 1 nH/mm rule of thumb
        L = self_inductance_bar(1e-3, 10e-6, 1e-6)
        assert 0.5e-9 < L < 2e-9

    def test_self_inductance_grows_superlinearly(self):
        L1 = self_inductance_bar(1e-3, 10e-6, 1e-6)
        L2 = self_inductance_bar(2e-3, 10e-6, 1e-6)
        assert L2 > 2 * L1  # log(l) term

    def test_mutual_parallel_decays_with_distance(self):
        m_near = mutual_parallel_filaments(1e-3, 10e-6)
        m_far = mutual_parallel_filaments(1e-3, 100e-6)
        assert m_near > m_far > 0

    def test_mutual_less_than_self(self):
        L = self_inductance_bar(1e-3, 1e-6, 1e-6)
        M = mutual_parallel_filaments(1e-3, 5e-6)
        assert M < L

    def test_neumann_matches_grover_for_parallel(self):
        s1 = seg([0, 0, 0], [1e-3, 0, 0])
        s2 = seg([0, 20e-6, 0], [1e-3, 20e-6, 0])
        m_num = mutual_neumann(s1, s2, order=12)
        m_ana = mutual_parallel_filaments(1e-3, 20e-6)
        np.testing.assert_allclose(m_num, m_ana, rtol=1e-3)

    def test_perpendicular_segments_no_coupling(self):
        s1 = seg([0, 0, 0], [1e-3, 0, 0])
        s2 = seg([0, 50e-6, 0], [0, 50e-6 + 1e-3, 0])
        assert mutual_neumann(s1, s2) == 0.0

    def test_antiparallel_negative(self):
        s1 = seg([0, 0, 0], [1e-3, 0, 0])
        s2 = seg([1e-3, 20e-6, 0], [0, 20e-6, 0])
        assert mutual_neumann(s1, s2) < 0

    def test_matrix_symmetric_positive_definite(self):
        segs = [
            seg([0, 0, 0], [0.5e-3, 0, 0]),
            seg([0.5e-3, 0, 0], [0.5e-3, 0.5e-3, 0]),
            seg([0.5e-3, 0.5e-3, 0], [0, 0.5e-3, 0]),
            seg([0, 10e-6, 0], [0.5e-3, 10e-6, 0]),
        ]
        L = partial_inductance_matrix(segs)
        np.testing.assert_allclose(L, L.T, rtol=1e-12)
        assert np.all(np.linalg.eigvalsh(L) > 0)

    def test_dc_resistance_copper(self):
        r = dc_resistance(seg([0, 0, 0], [1e-3, 0, 0], w=10e-6, t=1e-6))
        np.testing.assert_allclose(r, 1.7e-8 * 1e-3 / 1e-11, rtol=1e-12)


class TestSpiralInductor:
    @pytest.fixture(scope="class")
    def coil(self):
        return SpiralInductor(
            turns=3, outer=200e-6, width=10e-6, spacing=5e-6, thickness=1e-6,
            nw=2, nt=1, substrate=None, max_segment_length=100e-6,
        )

    def test_dc_inductance_near_wheeler(self, coil):
        L_peec = coil.dc_inductance()
        L_wh = wheeler_inductance(3, 200e-6, 10e-6, 5e-6)
        assert abs(L_peec - L_wh) / L_wh < 0.25

    def test_dc_resistance_sums_segments(self, coil):
        total_len = sum(s.length for s in coil.segments)
        expect = 2.8e-8 * total_len / (10e-6 * 1e-6)
        np.testing.assert_allclose(coil.dc_resistance_total(), expect, rtol=1e-9)

    def test_lossless_coil_q_grows_with_f(self, coil):
        freqs = [0.1e9, 0.5e9]
        _, _, Q = coil.sweep(freqs)
        assert Q[1] > Q[0] > 0

    def test_skin_effect_raises_resistance(self):
        kwargs = dict(
            turns=2, outer=200e-6, width=12e-6, spacing=5e-6, thickness=3e-6,
            substrate=None, max_segment_length=100e-6,
        )
        solid = SpiralInductor(nw=1, nt=1, **kwargs)
        fil = SpiralInductor(nw=3, nt=2, **kwargs)
        f_test = 20e9
        r_solid = np.real(solid.input_impedance(f_test))
        r_fil = np.real(fil.input_impedance(f_test))
        # the filament model lets current crowd -> higher AC resistance
        assert r_fil > r_solid * 1.05

    def test_substrate_creates_self_resonance(self):
        coil = SpiralInductor(
            turns=4, outer=300e-6, width=10e-6, spacing=5e-6, thickness=1e-6,
            nw=1, nt=1, substrate=SubstrateModel(), max_segment_length=100e-6,
        )
        freqs = np.geomspace(0.1e9, 20e9, 25)
        _, L_eff, _ = coil.sweep(freqs)
        assert L_eff[0] > 0
        assert np.any(L_eff < 0)  # above self-resonance the coil is capacitive

    def test_substrate_lowers_q(self):
        base = dict(
            turns=3, outer=200e-6, width=10e-6, spacing=5e-6, thickness=1e-6,
            nw=1, nt=1, max_segment_length=100e-6,
        )
        lossless = SpiralInductor(substrate=None, **base)
        lossy = SpiralInductor(substrate=SubstrateModel(), **base)
        f_test = 3e9
        q_free = np.imag(lossless.input_impedance(f_test)) / np.real(
            lossless.input_impedance(f_test)
        )
        q_sub = np.imag(lossy.input_impedance(f_test)) / np.real(
            lossy.input_impedance(f_test)
        )
        assert q_sub < q_free

    def test_reference_model_shapes(self, coil):
        freqs = np.geomspace(0.1e9, 10e9, 10)
        L_ref, Q_ref = reference_inductor_model(coil, freqs)
        assert L_ref.shape == Q_ref.shape == freqs.shape
        assert np.all(L_ref[:3] > 0)

    def test_reference_noise_reproducible(self, coil):
        freqs = np.geomspace(0.1e9, 10e9, 8)
        a = reference_inductor_model(coil, freqs, noise_seed=42)
        b = reference_inductor_model(coil, freqs, noise_seed=42)
        np.testing.assert_array_equal(a[0], b[0])


class TestWheeler:
    def test_scales_with_turns_squared_roughly(self):
        L2 = wheeler_inductance(2, 300e-6, 10e-6, 5e-6)
        L4 = wheeler_inductance(4, 300e-6, 10e-6, 5e-6)
        assert 2.0 < L4 / L2 < 4.5
