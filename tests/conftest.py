"""Shared fixtures: canonical circuits used across the test suite."""

import numpy as np
import pytest

from repro.netlist import Circuit, Sine

try:
    from hypothesis import HealthCheck, settings

    settings.register_profile(
        "fast",
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile("fast")
except ImportError:  # pragma: no cover
    pass


RC_R = 1e3
RC_C = 1e-9
RC_FREQ = 1e6


@pytest.fixture
def rc_lowpass():
    """Driven RC lowpass: V source -> R -> out node with C to ground."""
    ckt = Circuit("rc lowpass")
    ckt.vsource("V1", "in", "0", Sine(1.0, RC_FREQ))
    ckt.resistor("R1", "in", "out", RC_R)
    ckt.capacitor("C1", "out", "0", RC_C)
    return ckt.compile()


@pytest.fixture
def rc_theory_gain():
    """|H| of the RC lowpass at its drive frequency."""
    w = 2 * np.pi * RC_FREQ
    return 1.0 / np.sqrt(1.0 + (w * RC_R * RC_C) ** 2)


@pytest.fixture
def diode_rectifier():
    """Half-wave rectifier: sine -> diode -> RC load."""
    ckt = Circuit("rectifier")
    ckt.vsource("V1", "in", "0", Sine(2.0, 1e6))
    ckt.diode("D1", "in", "out")
    ckt.resistor("RL", "out", "0", 10e3)
    ckt.capacitor("CL", "out", "0", 1e-9)
    return ckt.compile()


@pytest.fixture
def resistive_divider():
    ckt = Circuit("divider")
    ckt.vsource("V1", "in", "0", 10.0)
    ckt.resistor("R1", "in", "mid", 1e3)
    ckt.resistor("R2", "mid", "0", 1e3)
    return ckt.compile()


@pytest.fixture
def rlc_tank():
    """Current-driven parallel RLC resonant at ~5.03 MHz."""
    ckt = Circuit("rlc")
    ckt.isource("I1", "0", "out", Sine(1e-3, 1e6))
    ckt.resistor("R1", "out", "0", 1e3)
    ckt.inductor("L1", "out", "0", 1e-6)
    ckt.capacitor("C1", "out", "0", 1e-9)
    return ckt.compile()
