"""Tests for the repro.trace span/event tracing layer."""

import json
import threading

import numpy as np
import pytest

from repro.netlist import Circuit, Sine
from repro.perf import sweep_map
from repro.trace import (
    NullTracer,
    Tracer,
    disable,
    enable,
    get_tracer,
    load_trace,
    main,
    spanned,
    span_table,
    traceable,
    using,
)
from repro.trace.tracer import _NULL_SPAN


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Every test starts and ends with the no-op default tracer."""
    disable()
    yield
    disable()


def detector_system():
    ckt = Circuit("detector")
    ckt.vsource("V1", "in", "0", Sine(1.0, 1e6))
    ckt.resistor("R1", "in", "out", 1e3)
    ckt.diode("D1", "out", "0")
    ckt.capacitor("C1", "out", "0", 1e-9)
    return ckt.compile()


# ---------------------------------------------------------------------------
# Tracer core
# ---------------------------------------------------------------------------
class TestTracerCore:
    def test_disabled_default_is_null_singleton(self):
        tr = get_tracer()
        assert isinstance(tr, NullTracer)
        assert tr.enabled is False
        assert tr.span("anything", k=1) is _NULL_SPAN
        assert tr.event("anything") is None
        assert tr.summary_since(tr.mark()) == {}

    def test_null_span_is_reusable_context_manager(self):
        with _NULL_SPAN as sp:
            assert sp.annotate(extra=1) is sp
        with _NULL_SPAN:
            pass

    def test_span_nesting_and_parents(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tr = Tracer(path)
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                assert inner.parent == outer.id
            tr.event("tick")
        tr.close()
        recs = load_trace(path)
        by_name = {r["name"]: r for r in recs}
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["parent"] is None
        assert by_name["tick"]["span"] == by_name["outer"]["id"]
        # spans close innermost-first, so inner is written before outer
        assert recs.index(by_name["inner"]) < recs.index(by_name["outer"])

    def test_monotonic_timestamps(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tr = Tracer(path)
        for k in range(5):
            tr.event("e", k=k)
        tr.close()
        times = [r["t"] for r in load_trace(path)]
        assert times == sorted(times)
        assert all(t >= 0.0 for t in times)

    def test_span_error_annotation(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tr = Tracer(path)
        with pytest.raises(ValueError):
            with tr.span("boom"):
                raise ValueError("oops")
        tr.close()
        (rec,) = load_trace(path)
        assert rec["attrs"]["error"] == "ValueError"

    def test_mark_and_summary_since(self):
        tr = Tracer()  # in-memory only, no file
        with tr.span("a"):
            pass
        mark = tr.mark()
        with tr.span("a"):
            pass
        tr.event("ev")
        summary = tr.summary_since(mark)
        assert summary["spans"]["a"]["count"] == 1
        assert summary["events"] == {"ev": 1}
        full = tr.summary_since(None)
        assert full["spans"]["a"]["count"] == 2

    def test_numpy_attrs_serialize(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tr = Tracer(path)
        tr.event("np", a=np.float64(1.5), b=np.bool_(True), c=np.arange(3))
        tr.close()
        (rec,) = load_trace(path)
        assert rec["attrs"] == {"a": 1.5, "b": True, "c": [0, 1, 2]}

    def test_using_restores_previous(self, tmp_path):
        outer = enable(str(tmp_path / "outer.jsonl"))
        inner = Tracer(str(tmp_path / "inner.jsonl"))
        with using(inner):
            assert get_tracer() is inner
        assert get_tracer() is outer
        inner.close()

    def test_using_accepts_path(self, tmp_path):
        path = str(tmp_path / "p.jsonl")
        with using(path) as tr:
            assert get_tracer() is tr
            tr.event("hello")
        assert isinstance(get_tracer(), NullTracer)
        assert load_trace(path)[0]["name"] == "hello"

    def test_traceable_decorator(self, tmp_path):
        @traceable
        @spanned("fn.call")
        def fn(x):
            return x * 2

        assert fn(3) == 6  # no tracer active, no trace kwarg: plain call
        path = str(tmp_path / "t.jsonl")
        assert fn(3, trace=path) == 6
        assert [r["name"] for r in load_trace(path)] == ["fn.call"]

    def test_spanned_noop_when_disabled(self):
        calls = []

        @spanned("x")
        def fn():
            calls.append(1)
            return 42

        assert fn() == 42
        assert calls == [1]


# ---------------------------------------------------------------------------
# Thread safety under sweep_map
# ---------------------------------------------------------------------------
class TestThreadSafety:
    def test_jsonl_well_formed_under_workers(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        tr = enable(path)

        def work(i):
            with tr.span("unit", i=i):
                tr.event("unit.tick", i=i)
            return i * i

        stats = {}
        out = sweep_map(work, list(range(32)), workers=4, stats=stats)
        disable()
        assert out == [i * i for i in range(32)]
        assert stats["workers"] == 4
        # strict parse: any interleaved/torn line raises
        recs = load_trace(path)
        spans = [r for r in recs if r["type"] == "span" and r["name"] == "unit"]
        events = [r for r in recs if r["type"] == "event" and r["name"] == "unit.tick"]
        assert len(spans) == 32 and len(events) == 32
        assert sorted(r["attrs"]["i"] for r in spans) == list(range(32))
        # each tick is parented to its own thread's open span
        ids = {r["id"]: r for r in spans}
        for ev in events:
            assert ev["span"] in ids
            assert ids[ev["span"]]["attrs"]["i"] == ev["attrs"]["i"]

    def test_thread_ids_are_compact(self, tmp_path):
        path = str(tmp_path / "tid.jsonl")
        tr = Tracer(path)

        def work():
            tr.event("w")

        threads = [threading.Thread(target=work) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        tr.close()
        tids = {r["tid"] for r in load_trace(path)}
        assert tids <= set(range(4))


# ---------------------------------------------------------------------------
# Enabled-vs-disabled equivalence (analyses)
# ---------------------------------------------------------------------------
class TestEquivalence:
    def test_transient_bit_identical(self, tmp_path):
        from repro.analysis import transient_analysis

        sys_ = detector_system()
        base = transient_analysis(sys_, 2e-6, 2e-8)
        traced = transient_analysis(
            sys_, 2e-6, 2e-8, trace=str(tmp_path / "tran.jsonl")
        )
        np.testing.assert_array_equal(base.t, traced.t)
        np.testing.assert_array_equal(base.X, traced.X)
        trace = traced.report.perf["trace"]
        assert trace["events"]["transient.step"] > 0
        assert "newton.solve" in trace["spans"]
        assert "trace" not in (base.report.perf or {})

    def test_hb_bit_identical(self, tmp_path):
        from repro.hb import harmonic_balance

        sys_ = detector_system()
        base = harmonic_balance(sys_, freqs=[1e6], harmonics=8)
        traced = harmonic_balance(
            sys_, freqs=[1e6], harmonics=8, trace=str(tmp_path / "hb.jsonl")
        )
        np.testing.assert_array_equal(base.x, traced.x)
        trace = traced.report.perf["trace"]
        assert trace["events"]["mpde.newton"] > 0

    def test_ac_sweep_bit_identical_with_workers(self, tmp_path):
        from repro.analysis import ac_analysis

        sys_ = detector_system()
        freqs = np.geomspace(1e3, 1e9, 25)
        base = ac_analysis(sys_, "V1", freqs)
        with using(str(tmp_path / "ac.jsonl")):
            traced = ac_analysis(sys_, "V1", freqs, workers=4)
        np.testing.assert_array_equal(base.X, traced.X)

    def test_report_merge_keeps_trace_dict(self, tmp_path):
        from repro.analysis import transient_analysis

        sys_ = detector_system()
        r1 = transient_analysis(sys_, 1e-6, 2e-8, trace=str(tmp_path / "a.jsonl"))
        r2 = transient_analysis(sys_, 1e-6, 2e-8, trace=str(tmp_path / "b.jsonl"))
        r1.report.merge(r2.report)
        assert isinstance(r1.report.perf["trace"], dict)


# ---------------------------------------------------------------------------
# Summarize CLI
# ---------------------------------------------------------------------------
class TestSummarize:
    def _make_trace(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        tr = Tracer(path)
        for k in range(10):
            with tr.span("step", k=k):
                with tr.span("solve"):
                    tr.event("iter", k=k)
        tr.close()
        return path

    def test_cli_exit_zero_and_tables(self, tmp_path, capsys):
        path = self._make_trace(tmp_path)
        assert main(["summarize", path]) == 0
        out = capsys.readouterr().out
        assert "step" in out and "solve" in out and "iter" in out

    def test_cli_top_rollup(self, tmp_path, capsys):
        path = self._make_trace(tmp_path)
        assert main(["summarize", path, "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "step/solve" in out

    def test_span_table_percentiles(self, tmp_path):
        path = self._make_trace(tmp_path)
        rows = span_table(load_trace(path))
        by_name = {r["name"]: r for r in rows}
        assert by_name["step"]["count"] == 10
        assert by_name["step"]["p50"] <= by_name["step"]["p95"] <= by_name["step"]["max"]
        # inclusive parent time dominates child time
        assert by_name["step"]["total"] >= by_name["solve"]["total"]

    def test_malformed_jsonl_raises(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as fh:
            fh.write('{"type": "event", "name": "ok", "t": 0}\nnot json\n')
        with pytest.raises(ValueError, match="malformed"):
            load_trace(path)

    def test_empty_trace_summarizes(self, tmp_path, capsys):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w").close()
        assert main(["summarize", path]) == 0
        assert "(none)" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Disabled overhead
# ---------------------------------------------------------------------------
class TestDisabledOverhead:
    def test_get_tracer_is_trivial(self):
        # a worst-case guard: a million get_tracer()+enabled checks must
        # cost well under a second (the hot loops do far fewer)
        import time

        t0 = time.perf_counter()
        for _ in range(1_000_000):
            if get_tracer().enabled:  # pragma: no cover
                raise AssertionError
        assert time.perf_counter() - t0 < 1.0

    def test_env_var_enables(self, tmp_path, monkeypatch):
        # REPRO_TRACE is read at import; simulate by calling enable()
        # the way the module-level hook does
        path = str(tmp_path / "env.jsonl")
        tr = enable(path)
        assert get_tracer() is tr
        tr.event("x")
        disable()
        assert load_trace(path)[0]["name"] == "x"
