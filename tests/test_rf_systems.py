"""Tests for the paper's example-system generators (repro.rf)."""

import numpy as np
import pytest

from repro.analysis import dc_analysis
from repro.hb import harmonic_balance
from repro.mpde import solve_mmft
from repro.rf import (
    ModulatorSpec,
    lc_oscillator,
    mna_ring_oscillator,
    quadrature_modulator,
    switching_mixer,
)


class TestSwitchingMixer:
    def test_compiles_and_biases(self):
        sys = switching_mixer()
        res = dc_analysis(sys)
        assert res.residual_norm < 1e-6

    def test_paper_calibration(self):
        """Defaults are calibrated to the paper's Figure 4 observables."""
        sys = switching_mixer()
        mm = solve_mmft(sys, 100e3, 900e6, slow_harmonics=3, fast_steps=64)
        a1 = 2 * mm.mix_amplitude("outp", 1, 1)
        a3 = 2 * mm.mix_amplitude("outp", 3, 1)
        assert 0.050 < a1 < 0.075  # ~60 mV
        assert -39 < 20 * np.log10(a3 / a1) < -31  # ~-35 dB

    def test_linear_path_without_cubic(self):
        sys = switching_mixer(cubic=0.0)
        mm = solve_mmft(sys, 100e3, 900e6, slow_harmonics=3, fast_steps=64)
        a1 = mm.mix_amplitude("outp", 1, 1)
        a3 = mm.mix_amplitude("outp", 3, 1)
        assert a3 < 1e-4 * a1  # distortion gone with the nonlinearity

    def test_balanced_output_antisymmetric(self):
        sys = switching_mixer()
        mm = solve_mmft(sys, 100e3, 900e6, slow_harmonics=3, fast_steps=64)
        ap = mm.mix_amplitude("outp", 1, 1)
        an = mm.mix_amplitude("outn", 1, 1)
        np.testing.assert_allclose(ap, an, rtol=1e-6)

    def test_conversion_gain_scales_with_load(self):
        lo = switching_mixer(r_load=300.0)
        hi = switching_mixer(r_load=1200.0)
        a_lo = solve_mmft(lo, 100e3, 900e6, 3, 64).mix_amplitude("outp", 1, 1)
        a_hi = solve_mmft(hi, 100e3, 900e6, 3, 64).mix_amplitude("outp", 1, 1)
        assert a_hi > a_lo


class TestModulator:
    @pytest.fixture(scope="class")
    def hb_default(self):
        spec = ModulatorSpec()
        sys = quadrature_modulator(spec)
        return spec, harmonic_balance(
            sys, freqs=[spec.f_bb, spec.f_ref], harmonics=[3, 10]
        )

    def test_carrier_frequency_plan(self):
        spec = ModulatorSpec()
        assert spec.f_lo2 == 7 * spec.f_ref
        assert spec.f_carrier == pytest.approx(1.62e9)

    def test_calibrated_spur_levels(self, hb_default):
        spec, hb = hb_default
        assert -40 < hb.dbc("rfp", (-1, 8), (1, 8)) < -30
        assert -84 < hb.dbc("rfp", (0, 8), (1, 8)) < -72

    def test_ssb_selects_usb(self, hb_default):
        spec, hb = hb_default
        usb = hb.amplitude_at("rfp", (1, 8))
        lsb = hb.amplitude_at("rfp", (-1, 8))
        assert usb > 10 * lsb

    def test_offset_controls_lo_feedthrough(self):
        spec = ModulatorSpec(dual_conversion=False, bb_offset=0.0)
        sys = quadrature_modulator(spec)
        hb = harmonic_balance(sys, freqs=[spec.f_bb, spec.f_ref], harmonics=[3, 6])
        assert hb.dbc("ifp", (0, 1), (1, 1)) < -120

    def test_single_conversion_variant(self):
        spec = ModulatorSpec(dual_conversion=False)
        sys = quadrature_modulator(spec)
        assert "rfp" not in sys.node_names
        hb = harmonic_balance(sys, freqs=[spec.f_bb, spec.f_ref], harmonics=[3, 6])
        assert hb.amplitude_at("ifp", (1, 1)) > 0.01


class TestOscillatorGenerators:
    def test_lc_requires_startup_margin(self):
        with pytest.raises(ValueError, match="startup"):
            lc_oscillator(R=300.0, g1=1.0 / 300.0)

    def test_ring_requires_odd_stages(self):
        with pytest.raises(ValueError, match="odd"):
            mna_ring_oscillator(stages=4)

    def test_lc_oscillates_in_transient(self):
        from repro.analysis import transient_analysis

        sys = lc_oscillator()
        x0 = np.zeros(sys.n)
        x0[sys.node("tank")] = 0.05  # kick
        f0 = 1 / (2 * np.pi * np.sqrt(1e-9 * 1e-12))
        tr = transient_analysis(sys, t_stop=60 / f0, dt=1 / f0 / 60, x0=x0)
        v = tr.voltage(sys, "tank")
        assert v[-200:].max() > 10 * 0.05  # grew to the limit cycle

    def test_ring_dc_unstable_symmetric_point(self):
        sys = mna_ring_oscillator()
        res = dc_analysis(sys)
        # the symmetric all-equal point is the (unstable) DC solution
        vals = [res.voltage(sys, f"v{k}") for k in range(3)]
        np.testing.assert_allclose(vals, vals[0], atol=1e-6)
