"""Device tests, including finite-difference Jacobian verification.

The batch-evaluation interface (``nl_eval``) drives every nonlinear
analysis; the core property checked here is that the analytic ``df``
and ``dq`` blocks match finite differences of ``f`` and ``q`` for
arbitrary operating points.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.netlist import components as cmp

volt = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False, allow_infinity=False)
# junction devices: keep |v_junction| <= ~0.9 V so the exponential current
# stays small enough for the finite-difference reference to be meaningful
# (beyond that, float64 cancellation in the FD stencil, not the model,
# dominates the comparison)
jvolt = st.floats(min_value=-0.45, max_value=0.45, allow_nan=False, allow_infinity=False)


def fd_check(device, V, rtol=5e-5, atol=1e-9):
    """Compare analytic df/dq against central finite differences."""
    V = np.asarray(V, dtype=float)
    if V.ndim == 1:
        V = V[:, None]
    f0, q0, df, dq = device.nl_eval(V)
    k_in = V.shape[0]
    h = 1e-6
    for j in range(k_in):
        Vp = V.copy()
        Vm = V.copy()
        Vp[j] += h
        Vm[j] -= h
        fp, qp, _, _ = device.nl_eval(Vp)
        fm, qm, _, _ = device.nl_eval(Vm)
        df_num = (fp - fm) / (2 * h)
        dq_num = (qp - qm) / (2 * h)
        scale_f = np.maximum(np.abs(df_num), np.abs(df[:, j, :])) + atol
        scale_q = np.maximum(np.abs(dq_num), np.abs(dq[:, j, :])) + atol
        assert np.all(np.abs(df[:, j, :] - df_num) <= rtol * scale_f + atol), (
            f"df mismatch col {j}: {df[:, j, :]} vs {df_num}"
        )
        assert np.all(np.abs(dq[:, j, :] - dq_num) <= rtol * scale_q + atol), (
            f"dq mismatch col {j}: {dq[:, j, :]} vs {dq_num}"
        )


def make_diode():
    d = cmp.Diode("D", "a", "b", tt=1e-9, cj0=1e-12)
    d.bind([0, 1], [])
    return d


def make_bjt(polarity=1):
    q = cmp.BJT("Q", "c", "b", "e", tf=1e-11, cje=1e-14, cjc=1e-14, polarity=polarity)
    q.bind([0, 1, 2], [])
    return q


def make_mosfet(polarity=1):
    m = cmp.MOSFET("M", "d", "g", "s", lam=0.05, cgs=1e-14, cgd=5e-15, polarity=polarity)
    m.bind([0, 1, 2], [])
    return m


def make_switch():
    s = cmp.SwitchConductance("S", "a", "b", "cp", "cn")
    s.bind([0, 1, 2, 3], [])
    return s


class TestLimexp:
    def test_matches_exp_below_threshold(self):
        v, dv = cmp.limexp(np.array([0.0, 1.0, 50.0]))
        np.testing.assert_allclose(v, np.exp([0.0, 1.0, 50.0]))
        np.testing.assert_allclose(dv, np.exp([0.0, 1.0, 50.0]))

    def test_linear_beyond_threshold(self):
        v, dv = cmp.limexp(np.array([100.0]), umax=80.0)
        expect = np.exp(80.0) * (1.0 + 20.0)
        np.testing.assert_allclose(v, [expect])
        np.testing.assert_allclose(dv, [np.exp(80.0)])

    def test_continuity_at_threshold(self):
        below, _ = cmp.limexp(np.array([79.999999]))
        above, _ = cmp.limexp(np.array([80.000001]))
        assert abs(below - above) / below < 1e-5


class TestDiode:
    @given(va=jvolt, vb=jvolt)
    def test_jacobian_consistency(self, va, vb):
        fd_check(make_diode(), np.array([va, vb]))

    def test_forward_current(self):
        d = make_diode()
        i, g = d.current(0.7)
        assert i > 1e-4  # strongly conducting
        assert g > 0

    def test_kcl_conservation(self):
        d = make_diode()
        f, q, _, _ = d.nl_eval(np.array([[0.7], [0.0]]))
        np.testing.assert_allclose(f.sum(axis=0), 0.0, atol=1e-18)
        np.testing.assert_allclose(q.sum(axis=0), 0.0, atol=1e-25)

    def test_shot_noise_scales_with_current(self):
        d = make_diode()
        src = d.noise_sources()[0]
        X_hi = np.array([[0.7], [0.0]])
        X_lo = np.array([[0.5], [0.0]])
        assert src.psd_at(X_hi)[0] > src.psd_at(X_lo)[0] > 0

    def test_batch_evaluation_matches_scalar(self):
        d = make_diode()
        V = np.array([[0.1, 0.5, 0.7], [0.0, 0.0, 0.0]])
        f_batch, _, _, _ = d.nl_eval(V)
        for k in range(3):
            f_one, _, _, _ = d.nl_eval(V[:, k : k + 1])
            np.testing.assert_allclose(f_batch[:, k], f_one[:, 0])


class TestBJT:
    @given(vc=jvolt, vb=jvolt, ve=jvolt)
    def test_jacobian_consistency_npn(self, vc, vb, ve):
        fd_check(make_bjt(1), np.array([vc, vb, ve]))

    @given(vc=jvolt, vb=jvolt, ve=jvolt)
    def test_jacobian_consistency_pnp(self, vc, vb, ve):
        fd_check(make_bjt(-1), np.array([vc, vb, ve]))

    def test_active_region_gain(self):
        q = make_bjt()
        V = np.array([[2.0], [0.65], [0.0]])
        f, _, _, _ = q.nl_eval(V)
        ic, ib, ie = f[:, 0]
        assert ic > 0 and ib > 0
        assert 50 < ic / ib < 150  # beta_f = 100

    def test_terminal_current_conservation(self):
        q = make_bjt()
        V = np.array([[1.0, 0.3], [0.7, 0.8], [0.0, 0.1]])
        f, qq, _, _ = q.nl_eval(V)
        np.testing.assert_allclose(f.sum(axis=0), 0.0, atol=1e-15)
        np.testing.assert_allclose(qq.sum(axis=0), 0.0, atol=1e-20)

    def test_pnp_mirror(self):
        npn = make_bjt(1)
        pnp = make_bjt(-1)
        Vn = np.array([[2.0], [0.65], [0.0]])
        fn, _, _, _ = npn.nl_eval(Vn)
        fp, _, _, _ = pnp.nl_eval(-Vn)
        np.testing.assert_allclose(fp, -fn, rtol=1e-12)

    def test_noise_sources_exist(self):
        assert len(make_bjt().noise_sources()) == 2


class TestMOSFET:
    @given(vd=volt, vg=volt, vs=volt)
    def test_jacobian_consistency(self, vd, vg, vs):
        # skip points too close to the region boundaries where the model
        # is only C^1 and the FD stencil straddles the kink
        vov = vg - vs - 0.5
        vds = vd - vs
        if abs(vds - vov) < 1e-3 or abs(vov) < 1e-3 or abs(vds) < 1e-3:
            return
        if abs((vg - vd - 0.5) - (vs - vd)) < 1e-3 or abs(vg - vd - 0.5) < 1e-3:
            return
        fd_check(make_mosfet(), np.array([vd, vg, vs]))

    def test_cutoff(self):
        m = make_mosfet()
        f, _, _, _ = m.nl_eval(np.array([[1.0], [0.2], [0.0]]))
        assert abs(f[0, 0]) < 1e-9  # only gmin leakage

    def test_saturation_square_law(self):
        m = cmp.MOSFET("M", "d", "g", "s", kp=2e-4, vth=0.5, lam=0.0)
        m.bind([0, 1, 2], [])
        f1, _, _, _ = m.nl_eval(np.array([[2.0], [1.0], [0.0]]))
        f2, _, _, _ = m.nl_eval(np.array([[2.0], [1.5], [0.0]]))
        # vov doubles from 0.5 to 1.0 -> current quadruples
        np.testing.assert_allclose(f2[0, 0] / f1[0, 0], 4.0, rtol=1e-4)

    def test_symmetric_swap(self):
        # exchanging drain and source terminals negates the current
        m = make_mosfet()
        fwd, _, _, _ = m.nl_eval(np.array([[1.0], [1.2], [0.0]]))
        rev, _, _, _ = m.nl_eval(np.array([[0.0], [1.2], [1.0]]))
        np.testing.assert_allclose(rev[0, 0], -fwd[0, 0], rtol=1e-9)

    def test_gate_current_zero(self):
        m = make_mosfet()
        f, _, _, _ = m.nl_eval(np.array([[1.0], [1.5], [0.0]]))
        assert f[1, 0] == 0.0


class TestSwitchConductance:
    @given(v1=volt, v2=volt, cp=volt, cn=volt)
    def test_jacobian_consistency(self, v1, v2, cp, cn):
        fd_check(make_switch(), np.array([v1, v2, cp, cn]))

    def test_on_off_ratio(self):
        s = make_switch()
        g_on, _ = s.conductance(np.array([1.0]))
        g_off, _ = s.conductance(np.array([-1.0]))
        assert g_on / g_off > 1e5

    def test_current_sign(self):
        s = make_switch()
        f, _, _, _ = s.nl_eval(np.array([[1.0], [0.0], [1.0], [0.0]]))
        assert f[0, 0] > 0  # current leaves node a
        np.testing.assert_allclose(f[0, 0], -f[1, 0])


class TestLinearStamps:
    def test_resistor_stamp(self):
        r = cmp.Resistor("R", "a", "b", 100.0)
        r.bind([0, 1], [])
        stamps = dict(((i, j), v) for i, j, v in r.g_stamps())
        assert stamps[(0, 0)] == pytest.approx(0.01)
        assert stamps[(0, 1)] == pytest.approx(-0.01)

    def test_resistor_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            cmp.Resistor("R", "a", "b", -1.0)

    def test_capacitor_stamp(self):
        c = cmp.Capacitor("C", "a", "b", 1e-9)
        c.bind([0, 1], [])
        stamps = dict(((i, j), v) for i, j, v in c.c_stamps())
        assert stamps[(0, 0)] == pytest.approx(1e-9)

    def test_inductor_branch(self):
        l = cmp.Inductor("L", "a", "b", 1e-6)
        l.bind([0, 1], [2])
        cs = dict(((i, j), v) for i, j, v in l.c_stamps())
        assert cs[(2, 2)] == pytest.approx(1e-6)
        gs = dict(((i, j), v) for i, j, v in l.g_stamps())
        assert gs[(0, 2)] == 1.0 and gs[(2, 0)] == -1.0

    def test_mutual_inductance_value(self):
        l1 = cmp.Inductor("L1", "a", "0", 1e-6)
        l2 = cmp.Inductor("L2", "b", "0", 4e-6)
        l1.bind([0, -1], [2])
        l2.bind([1, -1], [3])
        k = cmp.MutualInductance("K1", l1, l2, 0.5)
        assert k.mutual == pytest.approx(0.5 * 2e-6)
        cs = dict(((i, j), v) for i, j, v in k.c_stamps())
        assert cs[(2, 3)] == cs[(3, 2)] == pytest.approx(1e-6)

    def test_mutual_rejects_k_out_of_range(self):
        l1 = cmp.Inductor("L1", "a", "0", 1e-6)
        l2 = cmp.Inductor("L2", "b", "0", 1e-6)
        with pytest.raises(ValueError):
            cmp.MutualInductance("K1", l1, l2, 1.0)

    def test_resistor_thermal_noise_psd(self):
        r = cmp.Resistor("R", "a", "b", 1000.0, temp=300.0)
        r.bind([0, 1], [])
        src = r.noise_sources()[0]
        expect = 4 * cmp.BOLTZMANN * 300.0 / 1000.0
        np.testing.assert_allclose(src.psd_at(np.zeros((2, 1)))[0], expect)

    def test_vccs_stamp(self):
        g = cmp.VCCS("G", "op", "on", "cp", "cn", 1e-3)
        g.bind([0, 1, 2, 3], [])
        stamps = dict(((i, j), v) for i, j, v in g.g_stamps())
        assert stamps[(0, 2)] == pytest.approx(1e-3)
        assert stamps[(1, 2)] == pytest.approx(-1e-3)
