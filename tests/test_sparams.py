"""Tests for network-parameter conversions."""

import numpy as np
import pytest

from repro.em import (
    abcd_to_s,
    cascade_abcd,
    s21_db,
    s_to_y,
    s_to_z,
    series_impedance_twoport,
    shunt_admittance_twoport,
    y_to_s,
    z_to_s,
)


class TestConversions:
    def test_z_s_roundtrip(self):
        rng = np.random.default_rng(0)
        Z = rng.standard_normal((3, 3)) * 50 + 1j * rng.standard_normal((3, 3)) * 20
        np.testing.assert_allclose(s_to_z(z_to_s(Z)), Z, rtol=1e-10)

    def test_y_s_roundtrip(self):
        rng = np.random.default_rng(1)
        Y = (rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))) * 0.02
        np.testing.assert_allclose(s_to_y(y_to_s(Y)), Y, rtol=1e-10)

    def test_matched_load_s11_zero(self):
        Z = np.array([[50.0]])
        S = z_to_s(Z, z0=50.0)
        np.testing.assert_allclose(S[0, 0], 0.0, atol=1e-14)

    def test_open_circuit_s11_one(self):
        S = z_to_s(np.array([[1e12]]), z0=50.0)
        np.testing.assert_allclose(S[0, 0], 1.0, rtol=1e-9)

    def test_short_circuit_s11_minus_one(self):
        S = z_to_s(np.array([[1e-9]]), z0=50.0)
        np.testing.assert_allclose(S[0, 0], -1.0, rtol=1e-9)


class TestABCD:
    def test_through_line_unity(self):
        M = cascade_abcd(series_impedance_twoport(0.0))
        S = abcd_to_s(M)
        np.testing.assert_allclose(S[1, 0], 1.0, atol=1e-12)
        np.testing.assert_allclose(S[0, 0], 0.0, atol=1e-12)

    def test_series_50_ohm_loss(self):
        S = abcd_to_s(series_impedance_twoport(50.0))
        # |S21| = 2 z0 / (2 z0 + Z) = 100/150
        np.testing.assert_allclose(abs(S[1, 0]), 2 / 3, rtol=1e-12)

    def test_cascade_order(self):
        a = series_impedance_twoport(10.0)
        b = shunt_admittance_twoport(0.01)
        M = cascade_abcd(a, b)
        np.testing.assert_allclose(M, a @ b, rtol=1e-12)

    def test_lc_resonator_notch_and_peak(self):
        # series LC in a through path: transmission peaks at resonance
        L, C = 5e-9, 2e-12
        f0 = 1 / (2 * np.pi * np.sqrt(L * C))

        def s21_at(f):
            w = 2 * np.pi * f
            z = 1j * w * L + 1 / (1j * w * C)
            return abs(abcd_to_s(series_impedance_twoport(z))[1, 0])

        assert s21_at(f0) > 0.999
        assert s21_at(f0 / 4) < 0.5

    def test_s21_db_helper(self):
        S = np.array([[0.0, 0.0], [0.1, 0.0]])
        np.testing.assert_allclose(s21_db(S), -20.0, rtol=1e-9)

    def test_reciprocity_of_passive_cascade(self):
        M = cascade_abcd(
            series_impedance_twoport(10 + 5j),
            shunt_admittance_twoport(0.002j),
            series_impedance_twoport(20.0),
        )
        S = abcd_to_s(M)
        np.testing.assert_allclose(S[0, 1], S[1, 0], rtol=1e-10)
