"""Harmonic balance tests: linear exactness, nonlinear cross-checks,
multi-tone intermodulation, solver variants, frequency-domain blocks."""

import numpy as np
import pytest

from repro.analysis import ac_analysis, shooting_analysis
from repro.hb import FrequencyDomainBlock, harmonic_balance, hb_grid
from repro.mpde import MPDEOptions
from repro.netlist import Circuit, MultiTone, Sine


class TestSingleTone:
    def test_linear_rc_exact(self, rc_lowpass, rc_theory_gain):
        hb = harmonic_balance(rc_lowpass, harmonics=4)
        np.testing.assert_allclose(
            hb.amplitude_at("out", (1,)), rc_theory_gain, rtol=1e-10
        )

    def test_matches_ac_phase(self, rc_lowpass):
        hb = harmonic_balance(rc_lowpass, harmonics=4)
        ac = ac_analysis(rc_lowpass, "V1", [1e6])
        h1 = hb.harmonics("out")
        k1 = 1  # fundamental bin
        # hb coefficient multiplies exp(j w t); source is sin -> -j/2 ref
        ratio = h1[(k1,)] / (-0.5j * ac.voltage(rc_lowpass, "out")[0])
        np.testing.assert_allclose(ratio, 1.0, rtol=1e-8)

    def test_rectifier_matches_shooting(self, diode_rectifier):
        hb = harmonic_balance(diode_rectifier, harmonics=24)
        sh = shooting_analysis(diode_rectifier, period=1e-6, steps_per_period=800)
        v_hb_dc = hb.amplitude_at("out", (0,))
        v_sh_dc = sh.voltage(diode_rectifier, "out").mean()
        np.testing.assert_allclose(v_hb_dc, v_sh_dc, rtol=2e-3)

    def test_harmonic_decay(self, diode_rectifier):
        hb = harmonic_balance(diode_rectifier, harmonics=24)
        amps = [hb.amplitude_at("out", (k,)) for k in range(1, 12)]
        assert amps[0] > amps[4] > amps[9]

    def test_default_freq_discovery(self, rc_lowpass):
        hb = harmonic_balance(rc_lowpass)  # no freqs given
        assert hb.grid.axes[0].freq == 1e6

    def test_no_sources_raises(self):
        ckt = Circuit()
        ckt.resistor("R1", "a", "0", 1.0)
        ckt.capacitor("C1", "a", "0", 1e-9)
        with pytest.raises(ValueError, match="no AC sources"):
            harmonic_balance(ckt.compile())


class TestSolverVariants:
    def test_direct_and_gmres_agree(self, diode_rectifier):
        direct = harmonic_balance(
            diode_rectifier, harmonics=10, options=MPDEOptions(solver="direct")
        )
        krylov = harmonic_balance(
            diode_rectifier, harmonics=10, options=MPDEOptions(solver="gmres")
        )
        np.testing.assert_allclose(
            direct.amplitude_at("out", (0,)), krylov.amplitude_at("out", (0,)), rtol=1e-7
        )
        assert krylov.gmres_iterations > 0
        assert direct.gmres_iterations == 0

    def test_ramping_fallback(self):
        # hard drive: big sine straight into diode stack
        ckt = Circuit()
        ckt.vsource("V1", "in", "0", Sine(5.0, 1e6))
        ckt.resistor("R1", "in", "a", 50.0)
        ckt.diode("D1", "a", "b")
        ckt.diode("D2", "b", "0")
        ckt.capacitor("C1", "a", "0", 1e-12)
        ckt.capacitor("C2", "b", "0", 1e-12)
        sys = ckt.compile()
        hb = harmonic_balance(
            sys, harmonics=16, options=MPDEOptions(ramp_steps=6)
        )
        assert hb.residual_norm < 1e-6


class TestTwoTone:
    def make_two_tone_amp(self, a=0.05):
        """Weakly nonlinear diode 'amplifier' driven by two close tones."""
        ckt = Circuit()
        ckt.vsource(
            "V1", "in", "0", MultiTone([(a, 1e6, 0.0), (a, 1.2e6, 0.0)])
        )
        ckt.resistor("R1", "in", "d", 200.0)
        ckt.diode("D1", "d", "0")
        ckt.vsource("Vb", "bias", "0", 0.7)
        ckt.resistor("Rb", "bias", "d", 200.0)
        return ckt.compile()

    def test_im3_location_and_scaling(self):
        sys_lo = self.make_two_tone_amp(a=0.02)
        sys_hi = self.make_two_tone_amp(a=0.04)
        hb_lo = harmonic_balance(sys_lo, freqs=[1e6, 1.2e6], harmonics=[4, 4])
        hb_hi = harmonic_balance(sys_hi, freqs=[1e6, 1.2e6], harmonics=[4, 4])
        # IM3 at 2f1 - f2 grows ~ 3x in dB terms when drive doubles
        im3_lo = hb_lo.amplitude_at("d", (2, -1))
        im3_hi = hb_hi.amplitude_at("d", (2, -1))
        fund_lo = hb_lo.amplitude_at("d", (1, 0))
        fund_hi = hb_hi.amplitude_at("d", (1, 0))
        growth_fund = 20 * np.log10(fund_hi / fund_lo)
        growth_im3 = 20 * np.log10(im3_hi / im3_lo)
        assert 4.0 < growth_fund < 8.0  # ~6 dB
        assert 14.0 < growth_im3 < 22.0  # ~18 dB

    def test_spectrum_lists_mix_products(self):
        sys = self.make_two_tone_amp()
        hb = harmonic_balance(sys, freqs=[1e6, 1.2e6], harmonics=[3, 3])
        freqs = [f for f, a in hb.spectrum("d") if a > 1e-8]
        assert any(abs(f - 0.2e6) < 1 for f in freqs)  # f2 - f1 beat
        assert any(abs(f - 2.2e6) < 1 for f in freqs)  # f1 + f2

    def test_dbc_helper(self):
        sys = self.make_two_tone_amp()
        hb = harmonic_balance(sys, freqs=[1e6, 1.2e6], harmonics=[3, 3])
        assert hb.dbc("d", (2, -1), (1, 0)) < -20.0


class TestFrequencyDomainBlocks:
    def test_fd_block_matches_inline_rc(self):
        """A shunt RC attached as Y(omega) must match the native element."""
        r_val, c_val = 200.0, 2e-9

        def build(native):
            ckt = Circuit()
            ckt.vsource("V1", "in", "0", Sine(0.5, 1e6))
            ckt.resistor("Rs", "in", "out", 100.0)
            ckt.diode("D1", "out", "0")  # some nonlinearity at the port
            if native:
                ckt.resistor("Rl", "out", "0", r_val)
                ckt.capacitor("Cl", "out", "0", c_val)
            return ckt.compile()

        sys_native = build(True)
        hb_native = harmonic_balance(sys_native, harmonics=12)

        sys_fd = build(False)

        def admittance(omega):
            omega = np.atleast_1d(omega)
            y = 1.0 / r_val + 1j * omega * c_val
            return y.reshape(-1, 1, 1)

        blk = FrequencyDomainBlock(
            ports=np.array([sys_fd.node("out")]), admittance=admittance
        )
        hb_fd = harmonic_balance(sys_fd, harmonics=12, fd_blocks=[blk])
        for k in range(4):
            np.testing.assert_allclose(
                hb_fd.amplitude_at("out", (k,)),
                hb_native.amplitude_at("out", (k,)),
                rtol=1e-6,
                atol=1e-12,
            )

    def test_fd_block_requires_fourier_axes(self):
        from repro.mpde import Axis, MPDEGrid, solve_mpde

        ckt = Circuit()
        ckt.vsource("V1", "in", "0", Sine(0.5, 1e6))
        ckt.resistor("R1", "in", "out", 100.0)
        ckt.capacitor("C1", "out", "0", 1e-9)
        sys = ckt.compile()
        blk = FrequencyDomainBlock(
            ports=np.array([sys.node("out")]),
            admittance=lambda w: (1e-3 + 0j) * np.ones((np.atleast_1d(w).size, 1, 1)),
        )
        grid = MPDEGrid([Axis("fd", 1e6, 16)])
        with pytest.raises(ValueError, match="Fourier"):
            solve_mpde(sys, grid, fd_blocks=[blk])


class TestHBGrid:
    def test_grid_sizing(self):
        grid = hb_grid([1e6], [8])
        assert grid.axes[0].size >= 32  # 4x oversampling

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            hb_grid([1e6, 2e6], [4])
