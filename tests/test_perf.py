"""Tests for the performance layer (repro.perf) and its adopters.

Covers the factor cache, modified Newton with fail-closed staleness
handling, the O(1) branch-index lookup, transient LU-reuse invalidation
on rejected steps, and serial/parallel equivalence of every sweep
adopter (AC, Monte-Carlo phase noise, ROM transfer, EM panel assembly).
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis import ac_analysis, transient_analysis
from repro.analysis.transient import TransientResult
from repro.em.geometry import make_plate
from repro.em.kernels import PanelKernel
from repro.linalg import ConvergenceError, NewtonOptions, newton_solve
from repro.netlist import Circuit, Sine
from repro.perf import FactorCache, PerfCounters, make_factor_solver, sweep_map
from repro.phasenoise import VanDerPol
from repro.phasenoise.montecarlo import simulate_sde_ensemble
from repro.robust import SolveReport
from repro.robust.faultinject import FaultClock, FaultyMNASystem, inject_nan
from repro.rom import port_descriptor


# ---------------------------------------------------------------------------
# FactorCache / make_factor_solver
# ---------------------------------------------------------------------------
class TestFactorCache:
    def test_solver_matches_direct_solve(self):
        rng = np.random.default_rng(0)
        A = rng.standard_normal((6, 6)) + 6 * np.eye(6)
        b = rng.standard_normal(6)
        np.testing.assert_allclose(make_factor_solver(A)(b), np.linalg.solve(A, b))
        As = sp.csr_matrix(A)
        np.testing.assert_allclose(make_factor_solver(As)(b), np.linalg.solve(A, b))

    def test_hit_miss_counting(self):
        cache = FactorCache()
        assert cache.get("k") is None
        cache.store("k", lambda r: r)
        assert cache.get("k") is not None
        assert cache.hits == 1 and cache.misses == 1
        assert "k" in cache and len(cache) == 1

    def test_lru_eviction(self):
        cache = FactorCache(max_entries=2)
        cache.store("a", lambda r: r)
        cache.store("b", lambda r: r)
        cache.get("a")  # refresh a: b becomes least-recently-used
        cache.store("c", lambda r: r)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.counters.factor_invalidations == 1

    def test_invalidate(self):
        cache = FactorCache()
        cache.store("a", lambda r: r)
        cache.store("b", lambda r: r)
        assert cache.invalidate("a") == 1
        assert cache.invalidate("a") == 0
        assert cache.invalidate() == 1
        assert len(cache) == 0

    def test_factor_builds_once(self):
        calls = []
        A = 4 * np.eye(3)

        def build():
            calls.append(1)
            return A

        cache = FactorCache()
        s1, cached1 = cache.factor("k", build)
        s2, cached2 = cache.factor("k", build)
        assert (cached1, cached2) == (False, True)
        assert len(calls) == 1
        np.testing.assert_allclose(s2(np.ones(3)), 0.25 * np.ones(3))


# ---------------------------------------------------------------------------
# sweep_map
# ---------------------------------------------------------------------------
class TestSweepMap:
    def test_preserves_order(self):
        items = list(range(40))
        assert sweep_map(lambda x: x * x, items, workers=4) == [x * x for x in items]

    def test_stats_and_serial(self):
        stats = {}
        sweep_map(lambda x: x, [1, 2, 3], workers=1, stats=stats)
        assert stats == {
            "workers": 1,
            "tasks": 3,
            "attempted": 3,
            "backend": "serial",
        }
        stats = {}
        sweep_map(lambda x: x, [1, 2, 3], workers=8, stats=stats)
        assert stats["workers"] == 3  # capped by item count
        assert stats["attempted"] == 3
        assert stats["backend"] == "thread"

    def test_exception_propagates(self):
        def boom(x):
            if x == 2:
                raise ValueError("item 2")
            return x

        with pytest.raises(ValueError, match="item 2"):
            sweep_map(boom, [1, 2, 3], workers=2)
        with pytest.raises(ValueError, match="item 2"):
            sweep_map(boom, [1, 2, 3], workers=1)

    def test_stats_filled_on_serial_failure(self):
        def boom(x):
            if x == 2:
                raise ValueError("item 2")
            return x

        stats = {}
        with pytest.raises(ValueError, match="item 2"):
            sweep_map(boom, [1, 2, 3], workers=1, stats=stats)
        # items 1 and 2 started before the failure; 3 never ran
        assert stats == {
            "workers": 1,
            "tasks": 3,
            "attempted": 2,
            "backend": "serial",
        }

    def test_stats_filled_on_threaded_failure(self):
        def boom(x):
            if x == 2:
                raise ValueError("item 2")
            return x

        stats = {}
        with pytest.raises(ValueError, match="item 2"):
            sweep_map(boom, [1, 2, 3], workers=2, backend="thread", stats=stats)
        # all items were submitted to the pool before the failure surfaced
        assert stats == {
            "workers": 2,
            "tasks": 3,
            "attempted": 3,
            "backend": "thread",
        }

    def test_fn_runtimeerror_propagates_under_threads(self):
        # an fn-raised RuntimeError must propagate, not trigger the
        # serial thread-creation fallback (which would re-run items)
        calls = []

        def boom(x):
            calls.append(x)
            raise RuntimeError("from fn")

        with pytest.raises(RuntimeError, match="from fn"):
            sweep_map(boom, [1, 2, 3], workers=2)
        assert sorted(calls) == [1, 2, 3]  # each item ran exactly once

    def test_env_var_resolution(self, monkeypatch):
        from repro.perf.sweep import WORKERS_ENV, resolve_workers

        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(None) == 3
        assert resolve_workers(2) == 2
        monkeypatch.delenv(WORKERS_ENV)
        assert resolve_workers(None) == 1
        # a typo'd env value must fail loudly, not silently run serial
        monkeypatch.setenv(WORKERS_ENV, "junk")
        with pytest.raises(ValueError, match="not an integer"):
            resolve_workers(None)


# ---------------------------------------------------------------------------
# modified Newton
# ---------------------------------------------------------------------------
def _cubic_problem():
    """F(x) = x^3 + x - 2 elementwise; root at x = 1."""

    def residual(x):
        return x**3 + x - 2.0

    def jacobian(x):
        return np.diag(3.0 * x**2 + 1.0)

    return residual, jacobian


class TestModifiedNewton:
    def test_reuse_converges_and_counts(self):
        residual, jacobian = _cubic_problem()
        x0 = np.full(4, 3.0)
        base = newton_solve(residual, jacobian, x0, NewtonOptions())
        mod = newton_solve(
            residual, jacobian, x0, NewtonOptions(reuse_jacobian=4)
        )
        np.testing.assert_allclose(mod.x, base.x, atol=1e-8)
        assert mod.converged
        assert mod.factor_reuses > 0
        assert mod.jacobian_evals < mod.iterations
        assert base.jacobian_evals == base.iterations

    def test_cache_shared_across_solves(self):
        residual, jacobian = _cubic_problem()
        cache = FactorCache()
        r1 = newton_solve(
            residual, jacobian, np.full(2, 1.05),
            factor_cache=cache, cache_key="cubic",
        )
        r2 = newton_solve(
            residual, jacobian, np.full(2, 0.95),
            factor_cache=cache, cache_key="cubic",
        )
        assert r1.converged and r2.converged
        # the second solve starts from the first solve's cached factor
        assert cache.hits >= 1
        assert r2.factor_reuses >= 1

    def test_poisoned_cache_fails_closed(self):
        """A NaN-poisoned cached factorization must be refreshed, not
        escalate: no ConvergenceError escapes, and the bad entry is
        dropped from the cache."""
        residual, jacobian = _cubic_problem()
        cache = FactorCache()
        clock = FaultClock(start=1, count=99)
        good_solver = make_factor_solver(jacobian(np.full(3, 2.0)))
        cache.store("cubic", inject_nan(good_solver, clock))
        res = newton_solve(
            residual, jacobian, np.full(3, 2.0),
            factor_cache=cache, cache_key="cubic",
        )
        assert res.converged
        np.testing.assert_allclose(res.x, np.ones(3), atol=1e-6)
        assert res.stale_refreshes >= 1
        assert cache.counters.factor_invalidations >= 1
        # the refreshed (good) factor replaced the poisoned entry
        good = cache.get("cubic")
        assert good is not None
        assert np.all(np.isfinite(good(np.ones(3))))

    def test_non_descent_stale_step_refreshes(self):
        """A stale factor that yields a residual-increasing step is
        replaced by a fresh Jacobian before any failure escapes."""
        residual, jacobian = _cubic_problem()
        cache = FactorCache()
        # wildly wrong (negated) factorization: steps go uphill
        cache.store("cubic", lambda r: -10.0 * r)
        res = newton_solve(
            residual, jacobian, np.full(2, 2.0),
            factor_cache=cache, cache_key="cubic",
        )
        assert res.converged
        assert res.stale_refreshes >= 1


# ---------------------------------------------------------------------------
# MNASystem.branch O(1) lookup + waveform accessor
# ---------------------------------------------------------------------------
def _rc_circuit():
    ckt = Circuit("rc")
    ckt.vsource("V1", "in", "0", Sine(1.0, 1e6))
    ckt.resistor("R1", "in", "out", 1e3)
    ckt.capacitor("C1", "out", "0", 1e-12)
    ckt.inductor("L1", "out", "0", 1e-6)
    return ckt.compile()


class TestBranchIndex:
    def test_matches_first_occurrence_scan(self):
        system = _rc_circuit()
        for owner in set(system.branch_owner):
            expect = len(system.node_names) + system.branch_owner.index(owner)
            assert system.branch(owner) == expect

    def test_keyerror_lists_available(self):
        system = _rc_circuit()
        with pytest.raises(KeyError) as err:
            system.branch("nope")
        msg = str(err.value)
        assert "no branch current" in msg and "V1" in msg and "L1" in msg

    def test_hit_from_transient_current_accessor(self):
        system = _rc_circuit()
        res = transient_analysis(system, 2e-7, 1e-9)
        i_src = res.current(system, "V1")
        assert isinstance(res, TransientResult)
        assert i_src.shape == res.t.shape
        np.testing.assert_array_equal(i_src, res.X[system.branch("V1")])
        with pytest.raises(KeyError):
            res.current(system, "R1")  # resistors carry no branch current


# ---------------------------------------------------------------------------
# transient LU reuse: rejection invalidation + counters
# ---------------------------------------------------------------------------
class TestTransientReuse:
    def _faulty_rc(self):
        system = _rc_circuit()
        # poison a window of f-evaluations mid-run: the affected steps
        # reject and back off, which must invalidate the factor cache
        clock = FaultClock(start=120, count=8)
        return FaultyMNASystem(system, f=inject_nan(system.f, clock)), system

    def test_rejected_step_invalidates_and_recovers(self):
        faulty_on, system = self._faulty_rc()
        faulty_off, _ = self._faulty_rc()
        res_on = transient_analysis(faulty_on, 1e-7, 1e-9, reuse_lu=True)
        res_off = transient_analysis(faulty_off, 1e-7, 1e-9, reuse_lu=False)
        assert res_on.converged and res_off.converged
        # the fault schedule is deterministic and the circuit linear
        # (identical Newton trajectories), so the rejection count must
        # be exact and unchanged by LU reuse
        assert res_on.rejected_steps == res_off.rejected_steps
        assert res_on.rejected_steps > 0
        perf = res_on.report.perf
        assert perf["factor_invalidations"] > 0
        assert perf["factor_hits"] > 0
        np.testing.assert_allclose(res_on.X[:, -1], res_off.X[:, -1], atol=1e-6)

    def test_reuse_answers_match_no_reuse(self):
        system = _rc_circuit()
        res_on = transient_analysis(system, 2e-7, 1e-9, reuse_lu=True)
        res_off = transient_analysis(system, 2e-7, 1e-9, reuse_lu=False)
        np.testing.assert_allclose(res_on.X, res_off.X, rtol=1e-6, atol=1e-9)
        perf = res_on.report.perf
        assert perf["factor_hits"] > 0
        assert perf["jacobian_evals_saved"] > 0
        assert res_off.report.perf["factor_hits"] == 0
        assert "stepping" in perf["stage_seconds"]


# ---------------------------------------------------------------------------
# serial vs parallel equivalence of the sweep adopters
# ---------------------------------------------------------------------------
class TestParallelEquivalence:
    def test_ac_sweep(self):
        system = _rc_circuit()
        freqs = np.logspace(3, 9, 25)
        serial = ac_analysis(system, "V1", freqs, workers=1)
        threaded = ac_analysis(system, "V1", freqs, workers=4)
        np.testing.assert_array_equal(serial.X, threaded.X)

    def test_monte_carlo_paths(self):
        vdp = VanDerPol(mu=0.2, sigma=0.05)
        x0 = np.array([2.0, 0.0])
        t1, tr1 = simulate_sde_ensemble(vdp, x0, 20.0, 400, 70, seed=7, workers=1)
        t4, tr4 = simulate_sde_ensemble(vdp, x0, 20.0, 400, 70, seed=7, workers=4)
        np.testing.assert_array_equal(tr1, tr4)
        # different seed still produces a different ensemble
        _, other = simulate_sde_ensemble(vdp, x0, 20.0, 400, 70, seed=8, workers=4)
        assert not np.array_equal(tr1, other)

    def test_rom_transfer_sweep(self):
        ckt = Circuit("rom")
        ckt.vsource("P1", "p", "0", 0.0)
        ckt.resistor("R1", "p", "a", 50.0)
        ckt.capacitor("C1", "a", "0", 1e-12)
        ckt.inductor("L1", "a", "0", 1e-9)
        desc = port_descriptor(ckt.compile(), ["P1"])
        s_vals = 2j * np.pi * np.logspace(6, 10, 20)
        h1 = desc.transfer(s_vals, workers=1)
        h4 = desc.transfer(s_vals, workers=4)
        np.testing.assert_array_equal(h1, h4)

    def test_em_panel_assembly(self):
        panels = make_plate(1.0, 1.0, 12, 12)
        kern = PanelKernel(panels)
        P1 = kern.dense(workers=1)
        kern2 = PanelKernel(panels)
        P4 = kern2.dense(workers=4)
        np.testing.assert_array_equal(P1, P4)
        assert P1.shape == (144, 144)


# ---------------------------------------------------------------------------
# perf counters / report plumbing
# ---------------------------------------------------------------------------
class TestPerfPlumbing:
    def test_counters_merge_and_rate(self):
        a = PerfCounters(factor_hits=3, factor_misses=1, workers=2)
        a.add_stage("x", 1.0)
        b = PerfCounters(factor_hits=1, factor_misses=3, workers=4)
        b.add_stage("x", 0.5)
        a.merge(b)
        assert a.factor_hits == 4 and a.factor_misses == 4
        assert a.hit_rate == 0.5
        assert a.workers == 4
        assert a.stage_seconds["x"] == 1.5

    def test_report_merge_recomputes_hit_rate(self):
        r1 = SolveReport(analysis="a")
        PerfCounters(factor_hits=4, factor_misses=0).attach(r1)
        r2 = SolveReport(analysis="b")
        PerfCounters(factor_hits=0, factor_misses=4).attach(r2)
        r1.merge(r2)
        assert r1.perf["factor_hits"] == 4
        assert r1.perf["factor_misses"] == 4
        assert r1.perf["factor_hit_rate"] == 0.5

    def test_summary_includes_perf_line(self):
        rep = SolveReport(analysis="transient")
        PerfCounters(factor_hits=9, factor_misses=1, jacobian_evals_saved=9).attach(rep)
        assert "factor cache 9 hit / 1 miss" in rep.summary()
