"""Tests for periodic (cyclostationary) noise analysis."""

import numpy as np
import pytest

from repro.analysis import noise_analysis, periodic_noise_analysis
from repro.hb import harmonic_balance
from repro.netlist import Circuit, Sine
from repro.netlist.components import BOLTZMANN, ELEMENTARY_CHARGE


class TestStationaryLimit:
    def test_linear_circuit_reduces_to_stationary(self):
        """With a vanishing drive the LPTV analysis is the LTI one."""
        ckt = Circuit("rc")
        ckt.vsource("V1", "in", "0", Sine(1e-9, 10e6))
        ckt.resistor("R1", "in", "out", 1e3)
        ckt.capacitor("C1", "out", "0", 10e-12)
        sys = ckt.compile()
        hb = harmonic_balance(sys, harmonics=4)
        freqs = [1e4, 1e6, 3e7]
        pn = periodic_noise_analysis(hb.solution, "out", freqs)
        st = noise_analysis(sys, "out", freqs)
        np.testing.assert_allclose(pn.psd, st.psd, rtol=1e-6)

    def test_contributions_sum_to_total(self):
        ckt = Circuit("rc2")
        ckt.vsource("V1", "in", "0", Sine(1e-9, 10e6))
        ckt.resistor("R1", "in", "out", 2e3)
        ckt.resistor("R2", "out", "0", 3e3)
        ckt.capacitor("C1", "out", "0", 1e-12)
        sys = ckt.compile()
        hb = harmonic_balance(sys, harmonics=4)
        pn = periodic_noise_analysis(hb.solution, "out", [1e5, 1e7])
        total = sum(pn.contributions.values())
        np.testing.assert_allclose(total, pn.psd, rtol=1e-10)

    def test_rejects_two_tone_solutions(self):
        from repro.netlist import MultiTone

        ckt = Circuit("tt")
        ckt.vsource("V1", "in", "0", MultiTone([(0.01, 1e6, 0.0), (0.01, 1.3e6, 0.0)]))
        ckt.resistor("R1", "in", "out", 1e3)
        ckt.capacitor("C1", "out", "0", 1e-12)
        sys = ckt.compile()
        hb = harmonic_balance(sys, freqs=[1e6, 1.3e6], harmonics=[2, 2])
        with pytest.raises(ValueError, match="one-tone"):
            periodic_noise_analysis(hb.solution, "out", [1e4])


class TestBiasModulation:
    def test_shot_noise_follows_average_current(self):
        """A diode switched by a large LO: its shot noise is set by the
        *orbit-averaged* current, not the DC operating point — the bias
        modulation the paper's sec. 1 calls out."""
        ckt = Circuit("pumped diode")
        ckt.vsource("Vlo", "lo", "0", Sine(0.75, 10e6, offset=0.2))
        ckt.resistor("Rs", "lo", "d", 100.0)
        ckt.diode("D1", "d", "0", isat=1e-14)
        ckt.capacitor("Cd", "d", "0", 0.1e-12)
        sys = ckt.compile()
        hb = harmonic_balance(sys, harmonics=16)

        # orbit samples and their instantaneous shot PSD
        X = hb.grid.columns(hb.x, sys.n)
        src = [s for s, _ in sys.noise_injection_vectors() if "shot" in s.name][0]
        psd_orbit = src.psd_at(X)
        # analysis at an offset well below the LO, where the diode's
        # low-frequency noise dominates
        pn = periodic_noise_analysis(hb.solution, "d", [1e4])
        shot_contrib = pn.contributions["D1.shot"][0]

        # stationary analysis at the DC point uses the (much smaller)
        # quiescent current
        st = noise_analysis(sys, "d", [1e4])
        shot_dc = st.contributions["D1.shot"][0]
        assert psd_orbit.max() > 50 * psd_orbit.min()  # strongly modulated
        assert shot_contrib > 3.0 * shot_dc  # DC analysis underestimates


class TestChopperDuty:
    @staticmethod
    def _chopped(duty_phase, r_load):
        ckt = Circuit("chopper")
        ckt.vsource("Vlo", "lo", "0", Sine(1.0, 10e6, offset=duty_phase))
        ckt.resistor("Rn", "src", "0", 1e3)
        ckt.switch("S1", "src", "out", "lo", "0", g_on=1e-1, g_off=1e-10,
                   sharpness=40.0)
        ckt.capacitor("Cp", "out", "0", 1e-15)
        ckt.resistor("Rload", "out", "0", r_load)
        sys = ckt.compile()
        hb = harmonic_balance(sys, harmonics=16)
        pn = periodic_noise_analysis(hb.solution, "out", [1e4])
        return pn.contributions["Rn.thermal"][0]

    def test_chopped_resistor_contribution_scales_with_duty(self):
        """With a fast-discharging load (no holding) the chopped
        resistor's low-frequency contribution follows its on-duty."""
        full = 4 * BOLTZMANN * 300 * 1e3
        # duty with control sin + off: 1 - acos(off)/pi
        low = self._chopped(-0.5, 1e3)  # duty ~ 1/3
        high = self._chopped(+0.5, 1e3)  # duty ~ 2/3
        assert low < high < full
        np.testing.assert_allclose(high / low, 2.0, rtol=0.4)

    def test_track_and_hold_folds_noise(self):
        """With a holding load the sampled (aliased) noise concentrates at
        low frequencies: the density EXCEEDS the tracked 4kTR — the noise
        folding that DC-point analysis cannot predict."""
        full = 4 * BOLTZMANN * 300 * 1e3
        held = self._chopped(0.0, 1e7)  # slow discharge: hold mode
        tracked = self._chopped(0.0, 1e3)  # fast discharge
        assert held > 1.5 * full  # folding gain over the plain density
        assert tracked < full


class TestHarmonicSidebands:
    def test_lti_limit_around_harmonic(self):
        """For a linear circuit, noise observed around k f0 + offset is
        the stationary noise at that absolute frequency."""
        from repro.analysis import periodic_noise_analysis

        ckt = Circuit("rc")
        ckt.vsource("V1", "in", "0", Sine(1e-9, 10e6))
        ckt.resistor("R1", "in", "out", 1e3)
        ckt.capacitor("C1", "out", "0", 10e-12)
        sys = ckt.compile()
        hb = harmonic_balance(sys, harmonics=4)
        offset = 1e5
        for k in (1, 2):
            pn = periodic_noise_analysis(hb.solution, "out", [offset], harmonic=k)
            st = noise_analysis(sys, "out", [k * 10e6 + offset])
            np.testing.assert_allclose(pn.psd[0], st.psd[0], rtol=1e-6)

    def test_carrier_sidebands_see_the_output_filter(self):
        """Observed through a lowpass whose corner sits between baseband
        and the carrier, the noise skirt around harmonic 1 is attenuated
        relative to the baseband noise — the sidebands live at
        ``f0 + offset``, not at ``offset``."""
        from repro.analysis import periodic_noise_analysis

        ckt = Circuit("pumped+filter")
        ckt.vsource("Vlo", "lo", "0", Sine(0.75, 10e6, offset=0.2))
        ckt.resistor("Rs", "lo", "d", 100.0)
        ckt.diode("D1", "d", "0", isat=1e-14)
        ckt.capacitor("Cd", "d", "0", 0.1e-12)
        # observation filter: 1 MHz corner (passes baseband, kills 10 MHz)
        ckt.resistor("Rf", "d", "out", 1e3)
        ckt.capacitor("Cf", "out", "0", 160e-12)
        sys = ckt.compile()
        hb = harmonic_balance(sys, harmonics=16)
        base = periodic_noise_analysis(hb.solution, "out", [1e4], harmonic=0)
        skirt = periodic_noise_analysis(hb.solution, "out", [1e4], harmonic=1)
        assert skirt.psd[0] > 0
        assert skirt.psd[0] < 0.2 * base.psd[0]
