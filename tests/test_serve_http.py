"""HTTP front-end + client: admission, auth, backpressure, chaos.

Exercises ``repro.serve.http`` / ``repro.serve.client`` end to end over
real loopback sockets — submit→poll→result round trips, bearer auth,
429 backpressure that sheds load without losing accepted jobs, verified
byte-serving of results, HTTP chaos (dropped connections, torn
responses, hangs, slow-loris bodies), and the GC endpoint — and locks
down the acceptance scenario: N concurrent clients submitting an
overlapping job set get every job solved exactly once, bit-identical
to a serial run.

The CI ``serve-http-smoke`` job runs this file.
"""

import json
import os
import pickle
import socket
import threading
import time

import numpy as np
import pytest

from repro.robust import ChaosSpec, ServeChaos, chaos_serve
from repro.serve import (
    ServeClient,
    ServeClientError,
    ServeHTTPServer,
    ServeResultError,
    ServiceConfig,
    open_service,
    serve_http,
)

RC = """rc lowpass
V1 in 0 SIN(0 1 1e6)
R1 in out 1k
C1 out 0 1n
.end
"""

BROKEN = "broken netlist\nR1 only\n.end\n"


def rc_variant(i):
    return RC.replace("C1 out 0 1n", f"C1 out 0 {i + 1}n")


@pytest.fixture
def server(tmp_path):
    srv = ServeHTTPServer(tmp_path / "s").start_background()
    yield srv
    srv.close()


@pytest.fixture
def client(server):
    return ServeClient(server.address, retries=4, backoff_base=0.01)


# -- basic round trips --------------------------------------------------


class TestEndpoints:
    def test_healthz_and_stats(self, server, client):
        h = client.healthz()
        assert h["ok"] and h["root"] == server.service.root
        st = client.server_stats()
        assert st["summary"]["jobs"] == 0
        assert st["queue_depth"] == 0
        assert "store_bytes" in st["summary"]
        assert st["http"]["requests"] >= 1

    def test_submit_drain_result_roundtrip(self, server, client):
        v = client.submit(RC, "dc")
        assert v["state"] == "queued"
        server.service.drain()
        rec = client.wait(v["job_id"], timeout=30)
        assert rec["state"] == "done"
        payload = client.result(v["job_id"])
        # bit-identical to a direct (no-HTTP) run in a fresh root
        ref = open_service(server.service.root + "-ref")
        ref_res = ref.submit(RC, "dc")
        ref.drain()
        want = ref.queue.store.get(ref_res.key)
        np.testing.assert_array_equal(payload["x"], want["x"])
        assert payload["node_names"] == want["node_names"]

    def test_resubmit_is_cache_hit(self, server, client):
        v = client.submit(RC, "dc")
        server.service.drain()
        v2 = client.submit(RC, "dc")
        assert v2["state"] == "done" and v2["cached"] is True
        assert server.counters["cache_hits"] == 1

    def test_identical_inflight_submission_dedupes(self, server, client):
        v1 = client.submit(RC, "dc")
        v2 = client.submit(RC, "dc")
        assert v2["state"] == "deduped"
        assert v2["job_id"] == v1["job_id"]
        assert server.counters["deduped"] == 1

    def test_rejection_carries_diagnostics(self, server, client):
        v = client.submit(BROKEN, "dc")
        assert v["state"] == "rejected"
        assert any("PARSE_ERROR" in str(d) for d in v["diagnostics"])
        with pytest.raises(ServeClientError) as err:
            client.submit_and_wait(BROKEN, "dc")
        assert err.value.status == 422

    def test_unknown_job_and_result_404(self, server, client):
        assert client.status("job-nope") is None
        with pytest.raises(ServeClientError) as err:
            client.result_blob("0" * 64)
        assert err.value.status == 404
        with pytest.raises(ServeClientError) as err:
            client.result_blob("not-a-key")
        assert err.value.status == 404

    def test_malformed_submissions_400(self, server, client):
        for body in (
            {"analysis": "dc"},             # no netlist
            {"netlist": RC},                # no analysis
            {"netlist": 42, "analysis": "dc"},
            {"netlist": RC, "analysis": "dc", "params": "nope"},
        ):
            status, doc = client._json("POST", "/jobs", body)
            assert status == 400, doc
        # non-JSON body
        status, doc = client._json("GET", "/jobs")
        assert status == 200

    def test_method_not_allowed_405(self, server, client):
        status, _ = client._json("POST", "/healthz", {})
        assert status == 405

    def test_submit_and_wait_convenience(self, server, client):
        procs = server.service.spawn_workers(1, until_drained=False,
                                             max_seconds=30)
        try:
            payload = client.submit_and_wait(RC, "dc", timeout=30)
            assert "x" in payload
        finally:
            for p in procs:
                p.terminate()
                p.join(timeout=10)

    def test_oversized_body_413(self, tmp_path):
        srv = ServeHTTPServer(tmp_path / "s", max_body=1024).start_background()
        try:
            c = ServeClient(srv.address, retries=0)
            status, doc = c._json(
                "POST", "/jobs",
                {"netlist": "x" * 4096, "analysis": "dc"},
            )
            assert status == 413
        finally:
            srv.close()


# -- auth ---------------------------------------------------------------


class TestAuth:
    def test_token_required_when_configured(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_TOKEN", raising=False)
        srv = ServeHTTPServer(tmp_path / "s", token="hunter2").start_background()
        try:
            anon = ServeClient(srv.address, token=None, retries=0)
            # healthz stays open for load balancers
            assert anon.healthz()["ok"]
            with pytest.raises(ServeClientError) as err:
                anon.submit(RC, "dc")
            assert err.value.status == 401
            with pytest.raises(ServeClientError) as err:
                anon.server_stats()
            assert err.value.status == 401
            assert srv.counters["unauthorized"] >= 2

            wrong = ServeClient(srv.address, token="guess", retries=0)
            with pytest.raises(ServeClientError):
                wrong.submit(RC, "dc")

            good = ServeClient(srv.address, token="hunter2", retries=0)
            assert good.submit(RC, "dc")["state"] == "queued"
        finally:
            srv.close()

    def test_token_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_TOKEN", "envsecret")
        srv = ServeHTTPServer(tmp_path / "s").start_background()
        try:
            assert srv.token == "envsecret"
            c = ServeClient(srv.address, retries=0)  # picks up the env too
            assert c.submit(RC, "dc")["state"] == "queued"
        finally:
            srv.close()


# -- backpressure -------------------------------------------------------


class TestBackpressure:
    def test_429_past_high_water_then_recovers(self, tmp_path):
        srv = ServeHTTPServer(tmp_path / "s", high_water=2).start_background()
        try:
            c = ServeClient(srv.address, retries=0, backoff_base=0.01)
            accepted = [c.submit(rc_variant(i), "dc") for i in range(2)]
            assert all(v["state"] == "queued" for v in accepted)
            # backlog is at the mark: the next submission is shed
            with pytest.raises(ServeClientError) as err:
                c.submit(rc_variant(7), "dc")
            assert err.value.status == 429
            assert srv.counters["throttled"] == 1
            # accepted jobs were not lost to the 429
            srv.service.drain()
            for v in accepted:
                assert c.status(v["job_id"])["state"] == "done"
            # backlog drained: the shed job is admitted on retry
            assert c.submit(rc_variant(7), "dc")["state"] == "queued"
        finally:
            srv.close()

    def test_retry_after_header_present(self, tmp_path):
        srv = ServeHTTPServer(
            tmp_path / "s", high_water=1, retry_after=3.5
        ).start_background()
        try:
            c = ServeClient(srv.address, retries=0)
            c.submit(rc_variant(0), "dc")
            import urllib.error
            import urllib.request

            req = urllib.request.Request(
                srv.address + "/jobs",
                data=json.dumps(
                    {"netlist": rc_variant(1), "analysis": "dc"}
                ).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(req, timeout=10)
            assert err.value.code == 429
            assert float(err.value.headers["Retry-After"]) == 3.5
        finally:
            srv.close()

    def test_client_waits_out_backpressure(self, tmp_path):
        """With retries in hand, the client sleeps the Retry-After hint
        and lands the job once workers free the backlog."""
        srv = ServeHTTPServer(
            tmp_path / "s", high_water=1, retry_after=0.05
        ).start_background()
        procs = []
        try:
            c = ServeClient(srv.address, retries=8, backoff_base=0.02)
            first = c.submit(rc_variant(0), "dc")
            procs = srv.service.spawn_workers(1, until_drained=False,
                                              max_seconds=60)
            second = c.submit(rc_variant(1), "dc")  # retries through 429s
            assert second["state"] in ("queued", "done")
            assert c.wait(first["job_id"], timeout=30)["state"] == "done"
            assert c.wait(second["job_id"], timeout=30)["state"] == "done"
            assert c.stats["throttled"] >= 0  # may or may not have hit 429
        finally:
            for p in procs:
                p.terminate()
                p.join(timeout=10)
            srv.close()


# -- results over the wire ----------------------------------------------


class TestResultTransport:
    def test_blob_headers_verify(self, server, client):
        v = client.submit(RC, "dc")
        server.service.drain()
        key = client.wait(v["job_id"], timeout=30)["key"]
        blob, headers = client.result_blob(key)
        import hashlib

        assert headers["X-Repro-Sha256"] == hashlib.sha256(blob).hexdigest()
        payload = pickle.loads(blob)
        assert "x" in payload

    def test_mac_headers_when_keyed(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_CHECKPOINT_KEY", raising=False)
        monkeypatch.setenv("REPRO_SERVE_RESULT_KEY", "s3cret")
        srv = ServeHTTPServer(tmp_path / "s").start_background()
        try:
            c = ServeClient(srv.address, retries=0)
            v = c.submit(RC, "dc")
            srv.service.drain()
            key = c.wait(v["job_id"], timeout=30)["key"]
            blob, headers = c.result_blob(key)  # client re-verifies MAC
            assert headers.get("X-Repro-Mac")
        finally:
            srv.close()


# -- HTTP chaos ---------------------------------------------------------


class TestHTTPChaos:
    def test_dropped_connection_is_retried(self, tmp_path, server):
        chaos = ServeChaos(
            http_faults={"/jobs": ChaosSpec(kind="drop", times=2)},
            state_dir=tmp_path / "chaos",
        )
        c = ServeClient(server.address, retries=4, backoff_base=0.01)
        with chaos_serve(chaos):
            v = c.submit(RC, "dc")
        assert v["state"] == "queued"
        assert c.stats["retries"] >= 2
        assert chaos.http_ops("/jobs") >= 2
        assert server.counters["chaos"] >= 2

    def test_torn_response_fails_verification_then_recovers(
        self, tmp_path, server
    ):
        v = ServeClient(server.address, retries=0).submit(RC, "dc")
        server.service.drain()
        key = server.service.status(v["job_id"])["key"]
        chaos = ServeChaos(
            http_faults={"/results/": ChaosSpec(kind="torn", times=1)},
            state_dir=tmp_path / "chaos",
        )
        c = ServeClient(server.address, retries=4, backoff_base=0.01)
        with chaos_serve(chaos):
            blob, _ = c.result_blob(key)
        assert pickle.loads(blob)["x"] is not None
        # the torn attempt either died as a short read or failed the
        # checksum — both count as one consumed retry
        assert c.stats["requests"] >= 2

    def test_injected_500_is_surfaced(self, tmp_path, server):
        chaos = ServeChaos(
            http_faults={"/stats": ChaosSpec(kind="error", times=1)},
            state_dir=tmp_path / "chaos",
        )
        c = ServeClient(server.address, retries=0)
        with chaos_serve(chaos):
            with pytest.raises(ServeClientError) as err:
                c.server_stats()
            assert err.value.status == 500
            assert c.server_stats()["http"]["chaos"] == 1  # schedule spent

    def test_torn_result_exhausting_retries_raises_verify_error(
        self, tmp_path, server
    ):
        v = ServeClient(server.address, retries=0).submit(RC, "dc")
        server.service.drain()
        key = server.service.status(v["job_id"])["key"]
        chaos = ServeChaos(
            http_faults={"/results/": ChaosSpec(kind="torn", times=99)},
            state_dir=tmp_path / "chaos",
        )
        c = ServeClient(server.address, retries=2, backoff_base=0.01)
        with chaos_serve(chaos):
            with pytest.raises(ServeResultError):
                c.result_blob(key)
        assert c.stats["verify_failures"] + c.stats["retries"] >= 2


# -- slow-loris guard ---------------------------------------------------


class TestSlowLoris:
    def test_dribbled_body_times_out_408(self, tmp_path):
        srv = ServeHTTPServer(
            tmp_path / "s", request_timeout=0.5
        ).start_background()
        try:
            host, port = srv.server_address[:2]
            with socket.create_connection((host, port), timeout=10) as sk:
                body = b'{"netlist": "x", "analysis": "dc"}'
                sk.sendall(
                    b"POST /jobs HTTP/1.1\r\n"
                    b"Host: t\r\nContent-Type: application/json\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                )
                sk.sendall(body[:4])  # dribble 4 bytes, then stall
                t0 = time.monotonic()
                sk.settimeout(10)
                data = b""
                while b"\r\n\r\n" not in data:
                    chunk = sk.recv(4096)
                    if not chunk:
                        break
                    data += chunk
            elapsed = time.monotonic() - t0
            assert b"408" in data.split(b"\r\n", 1)[0]
            assert elapsed < 8.0  # the guard fired near its 0.5 s budget
            assert srv.counters["timeouts"] == 1
        finally:
            srv.close()

    def test_fast_body_unaffected_by_guard(self, tmp_path):
        srv = ServeHTTPServer(
            tmp_path / "s", request_timeout=0.5
        ).start_background()
        try:
            c = ServeClient(srv.address, retries=0)
            assert c.submit(RC, "dc")["state"] == "queued"
        finally:
            srv.close()


# -- GC over HTTP -------------------------------------------------------


class TestGCEndpoint:
    def test_gc_endpoint_bounds_store(self, server, client):
        for i in range(3):
            client.submit(rc_variant(i), "dc")
        server.service.drain()
        before = client.server_stats()["summary"]["store_bytes"]
        assert before > 0
        plan = client.gc(max_bytes=1, dry_run=True)
        assert plan["dry_run"] and plan["evicted"] == 3
        assert client.server_stats()["summary"]["store_bytes"] == before
        stats = client.gc(max_bytes=1)
        assert stats["evicted"] == 3
        assert client.server_stats()["summary"]["store_bytes"] == 0
        assert server.counters["gc_runs"] == 2

    def test_gc_spares_inflight_jobs(self, server, client):
        client.submit(rc_variant(0), "dc")
        server.service.drain()
        v = client.submit(rc_variant(1), "dc")  # stays queued: no worker
        q = server.service.queue
        q.refresh()
        rec = q.jobs[v["job_id"]]
        q.store.put(rec.key, {"x": np.arange(4.0)})  # worker mid-crash state
        stats = client.gc(max_bytes=1)
        assert rec.key not in stats["evicted_keys"]
        assert q.store.has(rec.key)


# -- the acceptance scenario --------------------------------------------


class TestConcurrentClients:
    def test_n_clients_overlapping_jobs_exactly_once(self, tmp_path):
        """6 threads × 8 submissions over 8 distinct netlists (every
        job submitted by several clients at once), 2 worker processes:
        every job ends done, each distinct circuit is solved exactly
        once, and every client reads back bit-identical results."""
        srv = ServeHTTPServer(
            tmp_path / "s",
            config=ServiceConfig(backoff_base=0.01),
        ).start_background()
        procs = []
        try:
            distinct = [rc_variant(i) for i in range(8)]
            results = {}
            errors = []
            lock = threading.Lock()

            def one_client(seed):
                try:
                    c = ServeClient(srv.address, retries=6, backoff_base=0.02)
                    got = {}
                    for i, net in enumerate(distinct):
                        v = c.submit(net, "dc", label=f"c{seed}-j{i}")
                        assert v["state"] in ("queued", "deduped", "done"), v
                        got[i] = v
                    for i, v in got.items():
                        rec = c.wait(v["job_id"], timeout=90)
                        assert rec["state"] == "done", rec
                        blob, _ = c.result_blob(rec["key"])
                        with lock:
                            results.setdefault(i, []).append(blob)
                except Exception as exc:  # noqa: BLE001 - collected below
                    with lock:
                        errors.append(f"client {seed}: {exc!r}")

            threads = [
                threading.Thread(target=one_client, args=(s,)) for s in range(6)
            ]
            procs = srv.service.spawn_workers(2, until_drained=False,
                                              max_seconds=120)
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors, errors

            # every client saw bit-identical bytes per circuit
            assert sorted(results) == list(range(8))
            for i, blobs in results.items():
                assert len(blobs) == 6
                assert len({b for b in blobs}) == 1

            # exactly-once: one stored result per distinct circuit, and
            # exactly 8 non-cached done records across the whole table
            svc = srv.service
            solved = [
                r for r in svc.status()
                if r["state"] == "done" and not r["cached"]
            ]
            assert len(solved) == 8
            assert len(list(svc.queue.store.keys())) == 8
            st = srv.counters
            assert st["submitted"] == 8
            assert st["deduped"] + st["cache_hits"] == 6 * 8 - 8
        finally:
            for p in procs:
                p.terminate()
                p.join(timeout=10)
            srv.close()


# -- serve CLI ----------------------------------------------------------


class TestServeCLI:
    def test_serve_http_helper(self, tmp_path):
        srv = serve_http(tmp_path / "s")
        try:
            assert ServeClient(srv.address, retries=0).healthz()["ok"]
        finally:
            srv.close()

    def test_serve_subcommand_boots_and_answers(self, tmp_path):
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src"),
             env.get("PYTHONPATH", "")]
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "serve",
             str(tmp_path / "s"), "--port", "0"],
            env=env, stdout=subprocess.PIPE, text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert " at http://" in banner
            address = banner.split(" at ")[1].split(" ")[0]
            c = ServeClient(address, retries=2, backoff_base=0.05)
            assert c.healthz()["ok"]
            assert c.submit(RC, "dc")["state"] == "queued"
        finally:
            proc.terminate()
            proc.wait(timeout=15)
