"""Tests for AC and transient analyses against closed-form references."""

import numpy as np
import pytest

from repro.analysis import ac_analysis, dc_analysis, transient_analysis
from repro.netlist import Circuit, Sine


class TestAC:
    def test_rc_lowpass_magnitude(self, rc_lowpass):
        fc = 1.0 / (2 * np.pi * 1e3 * 1e-9)
        ac = ac_analysis(rc_lowpass, "V1", [fc / 100, fc, 100 * fc])
        mag = np.abs(ac.voltage(rc_lowpass, "out"))
        np.testing.assert_allclose(mag[0], 1.0, rtol=1e-3)
        np.testing.assert_allclose(mag[1], 1 / np.sqrt(2), rtol=1e-6)
        np.testing.assert_allclose(mag[2], 0.01, rtol=1e-3)

    def test_rc_phase(self, rc_lowpass):
        fc = 1.0 / (2 * np.pi * 1e3 * 1e-9)
        ac = ac_analysis(rc_lowpass, "V1", [fc])
        phase = np.angle(ac.voltage(rc_lowpass, "out"))
        np.testing.assert_allclose(phase[0], -np.pi / 4, rtol=1e-6)

    def test_rlc_resonance(self, rlc_tank):
        f0 = 1.0 / (2 * np.pi * np.sqrt(1e-6 * 1e-9))
        ac = ac_analysis(rlc_tank, "I1", [f0])
        # at resonance the tank impedance is just R
        np.testing.assert_allclose(np.abs(ac.voltage(rlc_tank, "out"))[0], 1e3, rtol=1e-6)

    def test_current_source_excitation(self):
        ckt = Circuit()
        ckt.isource("I1", "0", "a", Sine(1.0, 1e6))
        ckt.resistor("R1", "a", "0", 50.0)
        sys = ckt.compile()
        ac = ac_analysis(sys, "I1", [1e6])
        np.testing.assert_allclose(np.abs(ac.voltage(sys, "a"))[0], 50.0, rtol=1e-9)

    def test_transfer_db(self, rc_lowpass):
        fc = 1.0 / (2 * np.pi * 1e3 * 1e-9)
        ac = ac_analysis(rc_lowpass, "V1", [fc])
        np.testing.assert_allclose(ac.transfer_db(rc_lowpass, "out")[0], -3.0103, atol=1e-3)

    def test_unknown_source_raises(self, rc_lowpass):
        with pytest.raises(KeyError):
            ac_analysis(rc_lowpass, "Vnope", [1e6])


class TestTransient:
    def test_rc_step_charging(self):
        ckt = Circuit()
        ckt.vsource("V1", "in", "0", 1.0)
        ckt.resistor("R1", "in", "out", 1e3)
        ckt.capacitor("C1", "out", "0", 1e-9)
        sys = ckt.compile()
        tau = 1e-6
        # start discharged (zero state), watch the exponential charge
        x0 = np.zeros(sys.n)
        x0[sys.node("in")] = 1.0
        tr = transient_analysis(sys, t_stop=5 * tau, dt=tau / 200, x0=x0)
        v = tr.voltage(sys, "out")
        expect = 1.0 - np.exp(-tr.t / tau)
        np.testing.assert_allclose(v, expect, atol=5e-3)

    def test_sine_steady_state_amplitude(self, rc_lowpass, rc_theory_gain):
        tr = transient_analysis(rc_lowpass, t_stop=20e-6, dt=5e-9)
        v = tr.voltage(rc_lowpass, "out")
        tail = v[len(v) // 2 :]
        amp = 0.5 * (tail.max() - tail.min())
        np.testing.assert_allclose(amp, rc_theory_gain, rtol=1e-3)

    def test_trap_more_accurate_than_be(self, rc_lowpass, rc_theory_gain):
        def amp(method):
            tr = transient_analysis(rc_lowpass, t_stop=10e-6, dt=2e-8, method=method)
            # Fourier projection over the last 4 periods avoids the
            # discrete-sampling bias of a max/min amplitude estimate
            n = 200  # 4 periods at 50 points/period
            v = tr.voltage(rc_lowpass, "out")[-n:]
            t = tr.t[-n:]
            c = np.mean(v * np.exp(-2j * np.pi * 1e6 * t))
            return 2.0 * np.abs(c)

        err_trap = abs(amp("trap") - rc_theory_gain)
        err_be = abs(amp("be") - rc_theory_gain)
        assert err_trap < err_be

    def test_lc_energy_conservation_trap(self):
        # undriven LC tank: trapezoidal rule conserves the oscillation
        ckt = Circuit()
        ckt.inductor("L1", "a", "0", 1e-6)
        ckt.capacitor("C1", "a", "0", 1e-9)
        sys = ckt.compile()
        x0 = np.zeros(sys.n)
        x0[sys.node("a")] = 1.0
        f0 = 1.0 / (2 * np.pi * np.sqrt(1e-6 * 1e-9))
        tr = transient_analysis(sys, t_stop=20 / f0, dt=1 / f0 / 200, x0=x0, method="trap")
        v = tr.voltage(sys, "a")
        assert abs(v[-200:].max() - 1.0) < 1e-2  # amplitude preserved

    def test_adaptive_fewer_points_than_fixed(self, diode_rectifier):
        fixed = transient_analysis(diode_rectifier, t_stop=2e-6, dt=1e-9)
        adaptive = transient_analysis(
            diode_rectifier, t_stop=2e-6, dt=1e-9, adaptive=True, lte_tol=1e-4
        )
        assert adaptive.t.size < fixed.t.size
        # both agree on the final rectified value
        vf = fixed.voltage(diode_rectifier, "out")[-1]
        va = adaptive.voltage(diode_rectifier, "out")[-1]
        np.testing.assert_allclose(va, vf, rtol=5e-2)

    def test_rectifier_charges_positive(self, diode_rectifier):
        tr = transient_analysis(diode_rectifier, t_stop=4e-6, dt=4e-9)
        v = tr.voltage(diode_rectifier, "out")
        assert v[-1] > 0.8  # several diode drops below 2 V peak but well above 0

    def test_unknown_method_rejected(self, rc_lowpass):
        with pytest.raises(ValueError):
            transient_analysis(rc_lowpass, 1e-6, 1e-9, method="euler")

    def test_callback_invoked(self, rc_lowpass):
        seen = []
        transient_analysis(
            rc_lowpass, t_stop=1e-7, dt=1e-8, callback=lambda t, x: seen.append(t)
        )
        assert len(seen) == 10
