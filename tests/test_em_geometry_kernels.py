"""Tests for panel/segment geometry and the electrostatic kernel."""

import numpy as np
import pytest

from repro.em import (
    EPS0,
    Panel,
    PanelKernel,
    conductor_bus,
    crossing_bus,
    make_plate,
    parallel_plates,
    rect_self_integral,
    spiral_segments,
    square_spiral_path,
)


class TestPanel:
    def test_area_and_sides(self):
        p = Panel(
            center=np.zeros(3),
            e1=np.array([0.5, 0, 0]),
            e2=np.array([0, 1.0, 0]),
        )
        assert p.area == pytest.approx(2.0)
        assert p.sides == (1.0, 2.0)

    def test_corners(self):
        p = Panel(np.zeros(3), np.array([1.0, 0, 0]), np.array([0, 1.0, 0]))
        corners = p.corners()
        assert corners.shape == (4, 3)
        np.testing.assert_allclose(np.abs(corners).max(), 1.0)

    def test_quadrature_integrates_area(self):
        p = Panel(np.zeros(3), np.array([0.3, 0, 0]), np.array([0, 0.7, 0]))
        pts, wts = p.quadrature(order=3)
        np.testing.assert_allclose(wts.sum(), p.area, rtol=1e-12)

    def test_quadrature_integrates_linear_exactly(self):
        p = Panel(np.array([1.0, 2.0, 0.0]), np.array([0.4, 0, 0]), np.array([0, 0.2, 0]))
        pts, wts = p.quadrature(order=2)
        # integral of x over the panel = x_center * area
        np.testing.assert_allclose((pts[:, 0] * wts).sum(), 1.0 * p.area, rtol=1e-12)


class TestGenerators:
    def test_make_plate_count_and_area(self):
        panels = make_plate(2.0, 1.0, 4, 2)
        assert len(panels) == 8
        np.testing.assert_allclose(sum(p.area for p in panels), 2.0)

    def test_parallel_plates_conductors(self):
        panels = parallel_plates(1.0, 0.1, 3)
        assert {p.conductor for p in panels} == {0, 1}
        z = sorted({p.center[2] for p in panels})
        assert z == [-0.05, 0.05]

    def test_conductor_bus_pitch(self):
        panels = conductor_bus(3, 1e-6, 10e-6, 4e-6, 1, 4)
        xs = sorted({round(p.center[0] * 1e6, 3) for p in panels})
        assert xs == [-4.0, 0.0, 4.0]

    def test_crossing_bus_layers(self):
        panels = crossing_bus(2, 1e-6, 10e-6, 4e-6, 1, 4, gap=2e-6)
        assert {p.conductor for p in panels} == {0, 1, 2, 3}
        assert len({round(p.center[2] * 1e6, 3) for p in panels}) == 2

    def test_spiral_path_shrinks(self):
        path = square_spiral_path(3, 100e-6, 5e-6, 3e-6)
        assert path.shape[1] == 3
        # spiral contracts: later corner radii smaller than the first
        r_first = np.linalg.norm(path[0, :2])
        r_last = np.linalg.norm(path[-1, :2])
        assert r_last < r_first

    def test_spiral_segments_split(self):
        segs_coarse = spiral_segments(2, 100e-6, 5e-6, 3e-6, 1e-6)
        segs_fine = spiral_segments(
            2, 100e-6, 5e-6, 3e-6, 1e-6, max_segment_length=20e-6
        )
        assert len(segs_fine) > len(segs_coarse)
        total_coarse = sum(s.length for s in segs_coarse)
        total_fine = sum(s.length for s in segs_fine)
        np.testing.assert_allclose(total_coarse, total_fine, rtol=1e-12)


class TestKernel:
    def test_self_integral_against_quadrature(self):
        a, b = 1.0, 2.0
        N = 600
        xs = (np.arange(N) + 0.5) / N * a - a / 2
        ys = (np.arange(N) + 0.5) / N * b - b / 2
        X, Y = np.meshgrid(xs, ys)
        numeric = np.sum(1.0 / np.hypot(X, Y)) * (a / N) * (b / N)
        np.testing.assert_allclose(rect_self_integral(a, b), numeric, rtol=5e-3)

    def test_far_field_is_point_charge(self):
        panels = [
            Panel(np.zeros(3), np.array([0.5e-6, 0, 0]), np.array([0, 0.5e-6, 0])),
            Panel(np.array([0, 0, 100e-6]), np.array([0.5e-6, 0, 0]), np.array([0, 0.5e-6, 0])),
        ]
        kern = PanelKernel(panels)
        expect = 1.0 / (4 * np.pi * EPS0 * 100e-6)
        np.testing.assert_allclose(kern.entry(0, 1), expect, rtol=1e-6)

    def test_symmetry_far(self):
        panels = make_plate(1.0, 1.0, 3, 3)
        kern = PanelKernel(panels)
        np.testing.assert_allclose(kern.entry(0, 8), kern.entry(8, 0), rtol=1e-9)

    def test_block_matches_entries(self):
        panels = make_plate(1.0, 1.0, 3, 3)
        kern = PanelKernel(panels)
        rows = np.array([0, 4, 7])
        cols = np.array([1, 2])
        blk = kern.block(rows, cols)
        for i, r in enumerate(rows):
            for j, c in enumerate(cols):
                np.testing.assert_allclose(blk[i, j], kern.entry(r, c), rtol=1e-12)

    def test_dense_positive_definite(self):
        panels = make_plate(1.0, 1.0, 4, 4)
        P = PanelKernel(panels).dense()
        eigs = np.linalg.eigvalsh(0.5 * (P + P.T))
        assert np.all(eigs > 0)

    def test_ground_plane_reduces_potential(self):
        panels = make_plate(1e-6, 1e-6, 2, 2, center=(0, 0, 1e-6))
        free = PanelKernel(panels, ground_plane=False)
        grounded = PanelKernel(panels, ground_plane=True)
        assert grounded.entry(0, 3) < free.entry(0, 3)
        assert grounded.entry(0, 0) < free.entry(0, 0)
