"""Monte-Carlo validation of the phase-noise theory.

The paper validates its theory against *measurements*; our stand-in
ground truth is direct stochastic simulation of the noisy oscillator

    dx = f(x) dt + B dW,

integrated with Euler-Maruyama over an ensemble of paths.  Two
observables close the loop with the PPV prediction:

* the variance of threshold-crossing times, which must grow linearly
  with time with slope ``c`` (jitter law), and
* the ensemble-averaged periodogram, which must trace the Lorentzian.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.perf import sweep_map
from repro.phasenoise.ode import ODESystem

__all__ = ["JitterMeasurement", "simulate_sde_ensemble", "measure_jitter", "periodogram_psd"]


#: paths per simulation block in the default (per-path-seeded) mode; a
#: fixed block size keeps results independent of the worker count
_PATH_CHUNK = 32


class _SDEBlock:
    """Picklable Euler-Maruyama integration of one block of paths.

    Each path's noise is a pure function of ``(seed, path_id)``, so a
    block is a pure function of its span — exactly the sweep-executor
    purity contract, and what lets the process backend ship blocks to
    worker processes.
    """

    __slots__ = ("system", "x0", "B", "h", "sqh", "steps", "seed", "record_state", "p")

    def __init__(self, system, x0, B, h, sqh, steps, seed, record_state, p):
        self.system = system
        self.x0 = x0
        self.B = B
        self.h = h
        self.sqh = sqh
        self.steps = steps
        self.seed = seed
        self.record_state = record_state
        self.p = p

    def __call__(self, span):
        lo, hi = span
        m = hi - lo
        if self.p:
            # (steps, p, m): per-path precomputed noise, seeded by path id
            noise = np.stack(
                [
                    np.random.default_rng((self.seed, r)).standard_normal(
                        (self.steps, self.p)
                    )
                    for r in range(lo, hi)
                ],
                axis=2,
            )
        X = np.tile(self.x0[:, None], (1, m))
        out = np.empty((self.steps + 1, m))
        out[0] = X[self.record_state]
        for k in range(self.steps):
            drift = self.system.f(X)
            nz = self.B @ noise[k] if self.p else 0.0
            X = X + self.h * drift + self.sqh * nz
            out[k + 1] = X[self.record_state]
        return out


def simulate_sde_ensemble(
    system: ODESystem,
    x0: np.ndarray,
    t_stop: float,
    steps: int,
    n_paths: int,
    record_state: int = 0,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    sweep_options: Optional[dict] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Euler-Maruyama ensemble; records one state across all paths.

    Returns ``(t, traces)`` with ``traces`` of shape (steps+1, n_paths).
    The noise matrix is evaluated once at ``x0`` (constant-B systems;
    the reference oscillators all qualify).

    Randomness: when ``rng`` is given, every draw comes from it in the
    historical shared-generator order (fault-injection and jitter tests
    stay reproducible against an externally owned generator; this path
    is serial).  Otherwise path ``r`` owns the generator
    ``default_rng((seed, r))``, so its noise sequence is a function of
    ``(seed, r)`` alone — paths are then simulated in fixed-size blocks
    through :func:`repro.perf.sweep_map` and the ensemble is
    **bit-identical for any** ``workers`` and ``backend`` (process
    workers need a picklable ``system``; unpicklable systems degrade to
    threads transparently).  ``sweep_options`` forwards extra
    :func:`~repro.perf.sweep_map` keywords — the fault-tolerance knobs
    (``timeout``, ``retries``, ``on_item_failure``, ``checkpoint``, ...)
    and ``stats``.
    """
    x0 = np.asarray(x0, dtype=float)
    h = t_stop / steps
    B = system.noise_matrix(x0)
    p = B.shape[1]
    sqh = np.sqrt(h)
    t = np.linspace(0.0, t_stop, steps + 1)

    if rng is not None:
        X = np.tile(x0[:, None], (1, n_paths))
        traces = np.empty((steps + 1, n_paths))
        traces[0] = X[record_state]
        for k in range(steps):
            drift = system.f(X)
            noise = B @ rng.standard_normal((p, n_paths)) if p else 0.0
            X = X + h * drift + sqh * noise
            traces[k + 1] = X[record_state]
        return t, traces

    spans = [
        (lo, min(lo + _PATH_CHUNK, n_paths)) for lo in range(0, n_paths, _PATH_CHUNK)
    ]

    run_block = _SDEBlock(system, x0, B, h, sqh, steps, seed, record_state, p)
    blocks = sweep_map(
        run_block, spans, workers=workers, backend=backend, **(sweep_options or {})
    )
    if not blocks:
        return t, np.empty((steps + 1, 0))
    # blocks skipped by on_item_failure="skip" become NaN path columns so
    # the ensemble keeps its (steps+1, n_paths) shape and the holes are
    # visible to any downstream statistic instead of crashing here
    filled = [
        np.full((steps + 1, hi - lo), np.nan) if blk is None else blk
        for blk, (lo, hi) in zip(blocks, spans)
    ]
    return t, np.concatenate(filled, axis=1)


@dataclasses.dataclass
class JitterMeasurement:
    """Crossing-time statistics from an SDE ensemble.

    ``var_t[m]`` is the across-ensemble variance of the m-th rising
    crossing time; ``c_fit`` the fitted slope of variance vs mean time.
    """

    crossing_index: np.ndarray
    mean_t: np.ndarray
    var_t: np.ndarray
    c_fit: float


def _rising_crossings(t: np.ndarray, w: np.ndarray, level: float) -> np.ndarray:
    s = np.sign(w - level)
    idx = np.nonzero((s[:-1] <= 0) & (s[1:] > 0))[0]
    frac = (level - w[idx]) / (w[idx + 1] - w[idx])
    return t[idx] + frac * (t[idx + 1] - t[idx])


def measure_jitter(
    t: np.ndarray,
    traces: np.ndarray,
    level: Optional[float] = None,
    skip_cycles: int = 2,
) -> JitterMeasurement:
    """Fit the linear variance growth of crossing times across paths.

    Only the common prefix of crossings present in *every* path is used
    (noise can add/remove crossings near the end of the window).
    """
    if level is None:
        level = float(np.mean(traces))
    per_path = [_rising_crossings(t, traces[:, r], level) for r in range(traces.shape[1])]
    m_common = min(len(cr) for cr in per_path)
    if m_common <= skip_cycles + 2:
        raise ValueError("too few crossings for jitter statistics")
    crossings = np.array([cr[:m_common] for cr in per_path])  # (paths, m)
    crossings = crossings[:, skip_cycles:]
    mean_t = crossings.mean(axis=0)
    var_t = crossings.var(axis=0)
    # fit var = c * (t - t_first) through the origin of the window
    dt = mean_t - mean_t[0]
    dv = var_t - var_t[0]
    denom = float(dt @ dt)
    c_fit = float(dt @ dv) / denom if denom > 0 else np.nan
    return JitterMeasurement(
        crossing_index=np.arange(skip_cycles, skip_cycles + mean_t.size),
        mean_t=mean_t,
        var_t=var_t,
        c_fit=c_fit,
    )


def periodogram_psd(
    t: np.ndarray,
    traces: np.ndarray,
    segments: int = 4,
) -> Tuple[np.ndarray, np.ndarray]:
    """Ensemble/segment-averaged one-sided periodogram (Welch, boxcar).

    Returns (freq, psd) with psd normalized as a two-sided density
    folded to positive frequencies — directly comparable to
    :func:`repro.phasenoise.spectrum.oscillator_psd` times two.
    """
    dt = float(t[1] - t[0])
    n_total = traces.shape[0]
    seg_len = n_total // segments
    acc = None
    count = 0
    for r in range(traces.shape[1]):
        for s in range(segments):
            w = traces[s * seg_len : (s + 1) * seg_len, r]
            w = w - w.mean()
            spec = np.fft.rfft(w)
            pxx = (np.abs(spec) ** 2) * dt / seg_len
            acc = pxx if acc is None else acc + pxx
            count += 1
    freq = np.fft.rfftfreq(seg_len, d=dt)
    psd = acc / count
    psd[1:-1] *= 2.0  # fold to one-sided
    return freq, psd
