"""Monte-Carlo validation of the phase-noise theory.

The paper validates its theory against *measurements*; our stand-in
ground truth is direct stochastic simulation of the noisy oscillator

    dx = f(x) dt + B dW,

integrated with Euler-Maruyama over an ensemble of paths.  Two
observables close the loop with the PPV prediction:

* the variance of threshold-crossing times, which must grow linearly
  with time with slope ``c`` (jitter law), and
* the ensemble-averaged periodogram, which must trace the Lorentzian.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.phasenoise.ode import ODESystem

__all__ = ["JitterMeasurement", "simulate_sde_ensemble", "measure_jitter", "periodogram_psd"]


def simulate_sde_ensemble(
    system: ODESystem,
    x0: np.ndarray,
    t_stop: float,
    steps: int,
    n_paths: int,
    record_state: int = 0,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Euler-Maruyama ensemble; records one state across all paths.

    Returns ``(t, traces)`` with ``traces`` of shape (steps+1, n_paths).
    The noise matrix is evaluated once at ``x0`` (constant-B systems;
    the reference oscillators all qualify).  Every random draw comes
    from ``rng`` when given (so fault-injection and jitter tests are
    reproducible against an externally owned generator); otherwise a
    fresh generator is seeded with ``seed``.
    """
    rng = np.random.default_rng(seed) if rng is None else rng
    h = t_stop / steps
    X = np.tile(np.asarray(x0, dtype=float)[:, None], (1, n_paths))
    B = system.noise_matrix(np.asarray(x0, dtype=float))
    p = B.shape[1]
    sqh = np.sqrt(h)
    t = np.linspace(0.0, t_stop, steps + 1)
    traces = np.empty((steps + 1, n_paths))
    traces[0] = X[record_state]
    for k in range(steps):
        drift = system.f(X)
        noise = B @ rng.standard_normal((p, n_paths)) if p else 0.0
        X = X + h * drift + sqh * noise
        traces[k + 1] = X[record_state]
    return t, traces


@dataclasses.dataclass
class JitterMeasurement:
    """Crossing-time statistics from an SDE ensemble.

    ``var_t[m]`` is the across-ensemble variance of the m-th rising
    crossing time; ``c_fit`` the fitted slope of variance vs mean time.
    """

    crossing_index: np.ndarray
    mean_t: np.ndarray
    var_t: np.ndarray
    c_fit: float


def _rising_crossings(t: np.ndarray, w: np.ndarray, level: float) -> np.ndarray:
    s = np.sign(w - level)
    idx = np.nonzero((s[:-1] <= 0) & (s[1:] > 0))[0]
    frac = (level - w[idx]) / (w[idx + 1] - w[idx])
    return t[idx] + frac * (t[idx + 1] - t[idx])


def measure_jitter(
    t: np.ndarray,
    traces: np.ndarray,
    level: Optional[float] = None,
    skip_cycles: int = 2,
) -> JitterMeasurement:
    """Fit the linear variance growth of crossing times across paths.

    Only the common prefix of crossings present in *every* path is used
    (noise can add/remove crossings near the end of the window).
    """
    if level is None:
        level = float(np.mean(traces))
    per_path = [_rising_crossings(t, traces[:, r], level) for r in range(traces.shape[1])]
    m_common = min(len(cr) for cr in per_path)
    if m_common <= skip_cycles + 2:
        raise ValueError("too few crossings for jitter statistics")
    crossings = np.array([cr[:m_common] for cr in per_path])  # (paths, m)
    crossings = crossings[:, skip_cycles:]
    mean_t = crossings.mean(axis=0)
    var_t = crossings.var(axis=0)
    # fit var = c * (t - t_first) through the origin of the window
    dt = mean_t - mean_t[0]
    dv = var_t - var_t[0]
    denom = float(dt @ dt)
    c_fit = float(dt @ dv) / denom if denom > 0 else np.nan
    return JitterMeasurement(
        crossing_index=np.arange(skip_cycles, skip_cycles + mean_t.size),
        mean_t=mean_t,
        var_t=var_t,
        c_fit=c_fit,
    )


def periodogram_psd(
    t: np.ndarray,
    traces: np.ndarray,
    segments: int = 4,
) -> Tuple[np.ndarray, np.ndarray]:
    """Ensemble/segment-averaged one-sided periodogram (Welch, boxcar).

    Returns (freq, psd) with psd normalized as a two-sided density
    folded to positive frequencies — directly comparable to
    :func:`repro.phasenoise.spectrum.oscillator_psd` times two.
    """
    dt = float(t[1] - t[0])
    n_total = traces.shape[0]
    seg_len = n_total // segments
    acc = None
    count = 0
    for r in range(traces.shape[1]):
        for s in range(segments):
            w = traces[s * seg_len : (s + 1) * seg_len, r]
            w = w - w.mean()
            spec = np.fft.rfft(w)
            pxx = (np.abs(spec) ** 2) * dt / seg_len
            acc = pxx if acc is None else acc + pxx
            count += 1
    freq = np.fft.rfftfreq(seg_len, d=dt)
    psd = acc / count
    psd[1:-1] *= 2.0  # fold to one-sided
    return freq, psd
