"""Oscillator output spectra and jitter from the phase-noise theory.

Given the diffusion constant ``c`` and the Fourier coefficients of the
unperturbed limit cycle, the perturbed oscillator's output is
asymptotically *stationary* with autocorrelation

    R(tau) = sum_k |X_k|^2 exp(j k w0 tau) exp(-k^2 w0^2 c |tau| / 2),

i.e. every harmonic is spread into a Lorentzian of finite height —
total carrier power is preserved, and the PSD at the carrier is finite.
The (incorrect) linear time-varying analysis instead predicts a pure
1/fm^2 law diverging at the carrier; it is provided here as the explicit
foil, since demonstrating that failure is one of the paper's sec. 3
claims.
"""

from __future__ import annotations

import numpy as np

from repro.phasenoise.ppv import PPVResult

__all__ = [
    "lorentzian_psd",
    "oscillator_psd",
    "ssb_phase_noise_dbc",
    "ltv_phase_noise_dbc",
    "jitter_stddev",
    "total_power",
]


def lorentzian_psd(f, f0: float, c: float, k: int = 1, carrier_power: float = 1.0):
    """Two-sided PSD contribution of harmonic ``k`` (power ``|X_k|^2``).

        S_k(f) = |X_k|^2 k^2 f0^2 c / (pi^2 k^4 f0^4 c^2 + (f - k f0)^2)

    Integrates to ``|X_k|^2`` over all f: spectral spreading conserves
    carrier power.
    """
    f = np.asarray(f, dtype=float)
    num = carrier_power * (k**2) * (f0**2) * c
    den = (np.pi**2) * (k**4) * (f0**4) * (c**2) + (f - k * f0) ** 2
    return num / den


def oscillator_psd(f, ppv: PPVResult, state: int = 0, kmax: int = 8):
    """Full two-sided output PSD of one oscillator state (positive f).

    Sums the Lorentzians of harmonics 1..kmax weighted by the squared
    Fourier magnitudes of the unperturbed waveform.
    """
    f = np.asarray(f, dtype=float)
    f0 = ppv.pss.f0
    c = ppv.c
    coeffs = ppv.pss.harmonics(state, kmax)
    total = np.zeros_like(f)
    for k in range(1, kmax + 1):
        total += lorentzian_psd(f, f0, c, k=k, carrier_power=abs(coeffs[k]) ** 2)
    return total


def ssb_phase_noise_dbc(fm, f0: float, c: float):
    """Single-sideband phase noise L(fm) in dBc/Hz (fundamental).

        L(fm) = f0^2 c / (pi^2 f0^4 c^2 + fm^2)

    Finite at fm -> 0 (height 1/(pi^2 f0^2 c)); ~ f0^2 c / fm^2 in the
    1/f^2 region.
    """
    fm = np.asarray(fm, dtype=float)
    lin = (f0**2) * c / ((np.pi**2) * (f0**4) * (c**2) + fm**2)
    return 10.0 * np.log10(lin)


def ltv_phase_noise_dbc(fm, f0: float, c: float):
    """The LTV prediction L(fm) = f0^2 c / fm^2 — diverges at the carrier.

    Matches the correct result far from the carrier but erroneously
    predicts infinite noise power density at fm = 0 and infinite total
    integrated power (the paper's criticism of LTI/LTV analyses).
    """
    fm = np.asarray(fm, dtype=float)
    return 10.0 * np.log10((f0**2) * c / fm**2)


def jitter_stddev(tau, c: float):
    """RMS timing jitter accumulated over an interval ``tau``: sqrt(c tau).

    The linear-in-time variance growth (for white noise sources) is the
    time-domain face of the same ``c``.
    """
    return np.sqrt(c * np.asarray(tau, dtype=float))


def total_power(ppv: PPVResult, state: int = 0, kmax: int = 8) -> float:
    """Total AC carrier power sum |X_k|^2 (k != 0), preserved by noise."""
    coeffs = ppv.pss.harmonics(state, kmax)
    return float(2.0 * np.sum(np.abs(coeffs[1:]) ** 2))


def ssb_phase_noise_with_flicker(fm, f0: float, c: float, flicker_corner: float):
    """L(fm) with a 1/f (flicker) noise corner, in dBc/Hz.

    The paper lists flicker noise among the device noise types that set
    oscillator performance.  Up-converted 1/f noise steepens the skirt
    from 1/fm^2 to 1/fm^3 below the corner ``flicker_corner``; the
    standard composite model multiplies the white-noise Lorentzian tail
    by ``(1 + flicker_corner / fm)``:

        L(fm) = [f0^2 c / (pi^2 f0^4 c^2 + fm^2)] (1 + f_c / fm)

    This is the phenomenological extension (Demir's rigorous colored-
    noise treatment postdates this paper); the white-noise limit is
    recovered for ``flicker_corner = 0``.
    """
    fm = np.asarray(fm, dtype=float)
    white = (f0**2) * c / ((np.pi**2) * (f0**4) * (c**2) + fm**2)
    return 10.0 * np.log10(white * (1.0 + flicker_corner / fm))
