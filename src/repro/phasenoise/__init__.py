"""Oscillator phase noise (paper sec. 3)."""

from repro.phasenoise.ode import (
    MNAOscillator,
    NegativeResistanceLC,
    ODESystem,
    RingOscillator,
    VanDerPol,
    integrate,
    rk4_step,
    rk4_step_with_sensitivity,
)
from repro.phasenoise.pss import OscillatorPSS, estimate_period, find_oscillator_pss
from repro.phasenoise.ppv import (
    PPVResult,
    compute_ppv,
    node_sensitivity,
    per_source_c,
    phase_noise_characterize,
)
from repro.phasenoise.spectrum import (
    jitter_stddev,
    lorentzian_psd,
    ltv_phase_noise_dbc,
    oscillator_psd,
    ssb_phase_noise_dbc,
    ssb_phase_noise_with_flicker,
    total_power,
)
from repro.phasenoise.montecarlo import (
    JitterMeasurement,
    measure_jitter,
    periodogram_psd,
    simulate_sde_ensemble,
)

__all__ = [
    "ODESystem",
    "VanDerPol",
    "NegativeResistanceLC",
    "RingOscillator",
    "MNAOscillator",
    "integrate",
    "rk4_step",
    "rk4_step_with_sensitivity",
    "OscillatorPSS",
    "estimate_period",
    "find_oscillator_pss",
    "PPVResult",
    "compute_ppv",
    "per_source_c",
    "node_sensitivity",
    "phase_noise_characterize",
    "lorentzian_psd",
    "oscillator_psd",
    "ssb_phase_noise_dbc",
    "ssb_phase_noise_with_flicker",
    "ltv_phase_noise_dbc",
    "jitter_stddev",
    "total_power",
    "JitterMeasurement",
    "simulate_sde_ensemble",
    "measure_jitter",
    "periodogram_psd",
]
