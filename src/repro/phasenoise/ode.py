"""Autonomous ODE oscillator layer for phase-noise analysis.

The phase-noise theory of paper sec. 3 (Demir/Mehrotra/Roychowdhury)
operates on oscillators in the state-equation form

    dx/dt = f(x) + B(x) xi(t),

where ``xi`` is vector unit white noise (two-sided PSD 1).  This module
defines the :class:`ODESystem` interface, reference oscillators (van der
Pol, negative-resistance LC, odd-stage rings), RK4 integration with
joint variational (sensitivity) propagation, and an adapter from MNA
circuits with constant nonsingular capacitance matrices.

Noise convention: a physical one-sided current PSD ``S1`` (A^2/Hz)
enters ``B`` as ``sqrt(S1 / 2)`` (one-sided -> two-sided).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Tuple

import numpy as np

__all__ = [
    "ODESystem",
    "VanDerPol",
    "NegativeResistanceLC",
    "RingOscillator",
    "MNAOscillator",
    "rk4_step",
    "rk4_step_with_sensitivity",
    "integrate",
]


class ODESystem:
    """Autonomous system ``dx/dt = f(x) + B(x) xi(t)``."""

    n: int  # state dimension
    p: int = 0  # number of independent noise inputs

    def f(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def jac(self, x: np.ndarray) -> np.ndarray:
        """df/dx, dense (n, n)."""
        raise NotImplementedError

    def noise_matrix(self, x: np.ndarray) -> np.ndarray:
        """B(x), dense (n, p); zero columns for noiseless systems."""
        return np.zeros((self.n, max(self.p, 0)))


@dataclasses.dataclass
class VanDerPol(ODESystem):
    """Van der Pol oscillator  x'' - mu (1 - x^2) x' + x = 0  (unit freq).

    States (x, y=x').  For small ``mu`` the limit cycle has amplitude ~2
    and period ``2 pi (1 + mu^2/16 + ...)`` — used as an analytic anchor
    in the tests.  White noise of intensity ``sigma`` drives the velocity
    state (``B = [[0], [sigma]]``).
    """

    mu: float = 0.5
    sigma: float = 0.0

    n: int = 2
    p: int = 1

    def f(self, x):
        return np.array([x[1], self.mu * (1.0 - x[0] ** 2) * x[1] - x[0]])

    def jac(self, x):
        return np.array(
            [
                [0.0, 1.0],
                [-2.0 * self.mu * x[0] * x[1] - 1.0, self.mu * (1.0 - x[0] ** 2)],
            ]
        )

    def noise_matrix(self, x):
        return np.array([[0.0], [self.sigma]])


@dataclasses.dataclass
class NegativeResistanceLC(ODESystem):
    """Parallel LC tank with cubic negative-resistance cell.

    i_nl(v) = -g1 v + g3 v^3 across a parallel (L, C, R) tank.  States
    (v, iL).  A thermal-noise current ``sqrt(2 k T gamma / R)``-scale
    source across the tank models the resistor + active device noise;
    ``inoise_psd`` is the *one-sided* current PSD in A^2/Hz.
    """

    L: float = 1e-9
    C: float = 1e-12
    R: float = 300.0
    g1: float = 5e-3
    g3: float = 1e-3
    inoise_psd: float = 0.0

    n: int = 2
    p: int = 1

    def f(self, x):
        v, il = x
        i_nl = -self.g1 * v + self.g3 * v**3
        dv = (-(v / self.R) - il - i_nl) / self.C
        dil = v / self.L
        return np.array([dv, dil])

    def jac(self, x):
        v, _ = x
        g_nl = -self.g1 + 3.0 * self.g3 * v**2
        return np.array(
            [
                [-(1.0 / self.R + g_nl) / self.C, -1.0 / self.C],
                [1.0 / self.L, 0.0],
            ]
        )

    def noise_matrix(self, x):
        b = np.zeros((2, 1))
        b[0, 0] = np.sqrt(self.inoise_psd / 2.0) / self.C
        return b

    @property
    def f0_estimate(self) -> float:
        return 1.0 / (2.0 * np.pi * np.sqrt(self.L * self.C))


@dataclasses.dataclass
class RingOscillator(ODESystem):
    """N-stage (odd) inverter ring with first-order RC stages.

    Stage model: ``C dv_k/dt = -v_k/R - I0 tanh(g v_{k-1}) + noise``.
    White current noise of one-sided PSD ``inoise_psd`` at every stage
    output (independent sources), the classic jitter testbench of
    McNeill / Weigandt (paper refs [30, 46]).
    """

    stages: int = 3
    R: float = 10e3
    C: float = 100e-15
    I0: float = 100e-6
    gain: float = 4.0
    inoise_psd: float = 0.0

    def __post_init__(self):
        if self.stages % 2 == 0:
            raise ValueError("ring oscillator needs an odd number of stages")
        self.n = self.stages
        self.p = self.stages

    def f(self, x):
        prev = np.roll(x, 1)
        return (-x / self.R - self.I0 * np.tanh(self.gain * prev / (self.I0 * self.R))) / self.C

    def jac(self, x):
        J = np.diag(np.full(self.n, -1.0 / (self.R * self.C)))
        prev = np.roll(x, 1)
        arg = self.gain * prev / (self.I0 * self.R)
        dd = -self.I0 * self.gain / (self.I0 * self.R) * (1.0 - np.tanh(arg) ** 2) / self.C
        for k in range(self.n):
            J[k, (k - 1) % self.n] += dd[k]
        return J

    def noise_matrix(self, x):
        return np.eye(self.n) * (np.sqrt(self.inoise_psd / 2.0) / self.C)


class MNAOscillator(ODESystem):
    """Adapter turning an MNA oscillator circuit into ODE form.

    Requires the incremental capacitance matrix to be *constant and
    nonsingular* (every node needs a capacitor to somewhere; no voltage
    sources or inductor branches without dynamics).  Then

        C dx/dt = b_dc - f_mna(x)   =>   dx/dt = C^{-1} (b_dc - f_mna(x)).

    Device noise sources become columns of ``B = C^{-1} U sqrt(S1/2)``.
    """

    def __init__(self, system, x_ref: Optional[np.ndarray] = None):
        self.system = system
        self.n = system.n
        x_ref = np.zeros(self.n) if x_ref is None else x_ref
        C0 = system.C(x_ref).toarray()
        # verify constancy at a second, different point
        C1 = system.C(x_ref + 0.1).toarray()
        if not np.allclose(C0, C1, rtol=1e-9, atol=1e-18):
            raise ValueError(
                "MNAOscillator needs a state-independent capacitance matrix; "
                "replace nonlinear charge elements with linear ones"
            )
        cond = np.linalg.cond(C0)
        if not np.isfinite(cond) or cond > 1e14:
            raise ValueError(
                f"capacitance matrix is singular (cond={cond:.2e}); the "
                "circuit is a DAE — add capacitors so every unknown has "
                "dynamics, as required by the ODE phase-noise formulation"
            )
        self._Cinv = np.linalg.inv(C0)
        self._b_dc = system.b_dc()
        self._injections = system.noise_injection_vectors()
        self.p = len(self._injections)

    def f(self, x):
        b = self._b_dc if np.ndim(x) == 1 else self._b_dc[:, None]
        return self._Cinv @ (b - self.system.f(x))

    def jac(self, x):
        return -self._Cinv @ self.system.G(x).toarray()

    def noise_matrix(self, x):
        B = np.zeros((self.n, self.p))
        X = x[:, None]
        for k, (src, u) in enumerate(self._injections):
            s1 = float(src.psd_at(X)[0])
            B[:, k] = self._Cinv @ (u * np.sqrt(max(s1, 0.0) / 2.0))
        return B


# ----------------------------------------------------------------------
def rk4_step(system: ODESystem, x: np.ndarray, h: float) -> np.ndarray:
    """One classical Runge-Kutta step of the deterministic flow."""
    k1 = system.f(x)
    k2 = system.f(x + 0.5 * h * k1)
    k3 = system.f(x + 0.5 * h * k2)
    k4 = system.f(x + h * k3)
    return x + (h / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)


def rk4_step_with_sensitivity(
    system: ODESystem, x: np.ndarray, S: np.ndarray, h: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Joint RK4 on the state and the variational system dS/dt = J(x) S."""
    k1 = system.f(x)
    K1 = system.jac(x) @ S
    x2 = x + 0.5 * h * k1
    k2 = system.f(x2)
    K2 = system.jac(x2) @ (S + 0.5 * h * K1)
    x3 = x + 0.5 * h * k2
    k3 = system.f(x3)
    K3 = system.jac(x3) @ (S + 0.5 * h * K2)
    x4 = x + h * k3
    k4 = system.f(x4)
    K4 = system.jac(x4) @ (S + h * K3)
    x_new = x + (h / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
    S_new = S + (h / 6.0) * (K1 + 2 * K2 + 2 * K3 + K4)
    return x_new, S_new


def integrate(
    system: ODESystem,
    x0: np.ndarray,
    t_stop: float,
    steps: int,
    callback: Optional[Callable[[float, np.ndarray], None]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fixed-step RK4 trajectory; returns (t, X) with X of shape (n, steps+1)."""
    h = t_stop / steps
    x = np.asarray(x0, dtype=float).copy()
    ts = np.linspace(0.0, t_stop, steps + 1)
    out = np.empty((system.n, steps + 1))
    out[:, 0] = x
    for k in range(steps):
        x = rk4_step(system, x, h)
        out[:, k + 1] = x
        if callback is not None:
            callback(ts[k + 1], x)
    return ts, out
