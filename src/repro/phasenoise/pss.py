"""Oscillator periodic steady state with unknown period.

Autonomous circuits have no external time reference, so the period is an
unknown of the boundary-value problem.  Shooting unknowns are ``(x0, T)``
with residual

    [ Phi_T(x0) - x0 ]        (periodicity)
    [ x0[a] - level  ]        (phase anchor, pins the free time shift)

and Jacobian  [[M - I, xdot(T)], [e_a^T, 0]].  The monodromy matrix M is
propagated with the trajectory (joint RK4 on the variational system) and
is reused directly by the Floquet/PPV stage.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.linalg import ConvergenceError, attach_failure_payload
from repro.phasenoise.ode import ODESystem, integrate, rk4_step_with_sensitivity
from repro.robust import EscalationPolicy, RungOutcome, SolveReport, run_ladder

__all__ = ["OscillatorPSS", "estimate_period", "find_oscillator_pss", "PSS_LADDER"]

#: Escalation rungs of the oscillator PSS search: shooting from the
#: caller's guesses, then a longer settle transient to re-derive the
#: initial point and period before shooting again.
PSS_LADDER = ("direct", "settle-retry")


@dataclasses.dataclass
class OscillatorPSS:
    """Converged oscillator limit cycle.

    ``t``/``X`` sample exactly one period; ``monodromy`` is the state
    transition matrix over that period, whose leading Floquet multiplier
    is 1 (quality check: see ``floquet_error``).
    """

    system: ODESystem
    x0: np.ndarray
    period: float
    t: np.ndarray
    X: np.ndarray
    monodromy: np.ndarray
    step_transitions: np.ndarray  # (steps, n, n) per-step Phi(t_{k+1}, t_k)
    iterations: int
    converged: bool = True
    report: Optional[SolveReport] = None

    @property
    def f0(self) -> float:
        return 1.0 / self.period

    @property
    def floquet_error(self) -> float:
        """|largest multiplier - 1|; should be ~0 for a true limit cycle."""
        eigs = np.linalg.eigvals(self.monodromy)
        return float(np.min(np.abs(eigs - 1.0)))

    def harmonics(self, state: int, kmax: int = 8) -> np.ndarray:
        """Complex Fourier coefficients X_k, k = 0..kmax, of one state.

        Normalized so that ``x(t) = sum_k X_k exp(2 pi i k t / T)`` with
        ``X_{-k} = conj(X_k)``.
        """
        w = self.X[state, :-1]
        spec = np.fft.fft(w) / w.size
        return spec[: kmax + 1]


def estimate_period(
    system: ODESystem,
    x0: Optional[np.ndarray] = None,
    t_settle: float = 0.0,
    t_window: float = 0.0,
    steps_per_unit: Optional[int] = None,
    state: int = 0,
    total_steps: int = 40000,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, float]:
    """Settle onto the limit cycle and estimate (x_start, period).

    Runs a transient for ``t_settle``, then measures the spacing of
    rising zero crossings (relative to the mean) of ``state`` over
    ``t_window``.  The random starting point (used when ``x0`` is
    omitted) draws from ``rng`` when given, else a fixed seed.
    """
    n = system.n
    if x0 is None:
        gen = rng if rng is not None else np.random.default_rng(7)
        x0 = 0.1 + 0.1 * gen.standard_normal(n)
    if t_settle <= 0 or t_window <= 0:
        raise ValueError("t_settle and t_window must be positive")
    _, Xs = integrate(system, x0, t_settle, max(1000, total_steps // 4))
    x_start = Xs[:, -1]
    t, X = integrate(system, x_start, t_window, total_steps)
    w = X[state] - X[state].mean()
    sign = np.sign(w)
    idx = np.nonzero((sign[:-1] <= 0) & (sign[1:] > 0))[0]
    if idx.size < 3:
        raise ConvergenceError(
            "period estimation failed: fewer than 3 rising crossings in the "
            "observation window — the circuit may not be oscillating"
        )
    # linear interpolation of the crossing instants
    crossings = t[idx] + (t[idx + 1] - t[idx]) * (-w[idx]) / (w[idx + 1] - w[idx])
    periods = np.diff(crossings)
    return x_start, float(np.median(periods))


def _integrate_cycle(system: ODESystem, x0: np.ndarray, period: float, steps: int):
    """One period with per-step transition matrices."""
    n = system.n
    h = period / steps
    x = x0.copy()
    I = np.eye(n)
    X = np.empty((n, steps + 1))
    X[:, 0] = x
    Phis = np.empty((steps, n, n))
    for k in range(steps):
        x, S = rk4_step_with_sensitivity(system, x, I, h)
        X[:, k + 1] = x
        Phis[k] = S
    M = I
    for k in range(steps):
        M = Phis[k] @ M
    t = np.linspace(0.0, period, steps + 1)
    return t, X, M, Phis


def find_oscillator_pss(
    system: ODESystem,
    x0: Optional[np.ndarray] = None,
    period_guess: Optional[float] = None,
    steps: int = 400,
    anchor_state: int = 0,
    t_settle: Optional[float] = None,
    abstol: float = 1e-10,
    maxiter: int = 50,
    policy: Optional[EscalationPolicy] = None,
    on_failure: Optional[str] = None,
) -> OscillatorPSS:
    """Newton shooting for the limit cycle of an autonomous system.

    Parameters
    ----------
    x0, period_guess:
        Starting point on (or near) the cycle and period estimate; if
        either is missing, a settle-and-measure transient supplies them
        (``t_settle`` defaults to 20 estimated periods).
    steps:
        RK4 steps per period (also the sampling density handed to the
        Floquet/PPV stage).
    anchor_state:
        The state pinned by the phase condition ``x0[a] = const``.
    policy / on_failure:
        Escalation control over :data:`PSS_LADDER`.  The ``settle-retry``
        rung discards the caller's guesses, runs a longer settle
        transient to re-derive ``(x0, T)``, and shoots again.
    """
    if x0 is None or period_guess is None:
        guess_T = period_guess or 1.0
        settle = t_settle if t_settle is not None else 20.0 * guess_T
        window = 10.0 * guess_T
        x0_est, T_est = estimate_period(
            system, x0, t_settle=settle, t_window=window, state=anchor_state
        )
        x0 = x0_est if x0 is None else np.asarray(x0, dtype=float)
        period_guess = T_est if period_guess is None else period_guess

    n = system.n

    def _shoot(x_start, T_start):
        x = np.asarray(x_start, dtype=float).copy()
        T = float(T_start)
        anchor_level = float(x[anchor_state])
        history = []
        best = None

        def _raise(message, it):
            raise attach_failure_payload(
                ConvergenceError(message),
                best_x=best[1] if best is not None else (x.copy(), T),
                best_norm=best[0] if best is not None else float("inf"),
                iterations=it,
                history=history,
            )

        for it in range(maxiter):
            t, X, M, Phis = _integrate_cycle(system, x, T, steps)
            xT = X[:, -1]
            F = np.empty(n + 1)
            F[:n] = xT - x
            F[n] = x[anchor_state] - anchor_level
            fnorm = float(np.linalg.norm(F[:n]))
            history.append(fnorm)
            if best is None or fnorm < best[0]:
                best = (fnorm, (x.copy(), T))
            scale = max(1.0, float(np.linalg.norm(x)))
            if fnorm <= abstol * scale and abs(F[n]) <= abstol * scale:
                return RungOutcome(
                    value=(x, T, t, X, M, Phis),
                    iterations=it,
                    residual_norm=fnorm,
                    history=history,
                )
            J = np.zeros((n + 1, n + 1))
            J[:n, :n] = M - np.eye(n)
            J[:n, n] = system.f(xT)
            J[n, anchor_state] = 1.0
            try:
                dz = np.linalg.solve(J, F)
            except np.linalg.LinAlgError as exc:
                _raise(f"singular shooting Jacobian: {exc}", it)
            # cap the period update to keep the homotopy sane
            if abs(dz[n]) > 0.3 * T:
                dz *= 0.3 * T / abs(dz[n])
            x = x - dz[:n]
            T = T - dz[n]
            if T <= 0:
                _raise("period iterate went non-positive", it)

        _raise(
            f"oscillator shooting failed to converge in {maxiter} iterations",
            maxiter,
        )

    def direct_rung():
        return _shoot(x0, period_guess)

    def settle_rung():
        settle = (t_settle if t_settle is not None else 20.0 * period_guess) * 3.0
        window = 10.0 * period_guess
        x_est, T_est = estimate_period(
            system, None, t_settle=settle, t_window=window, state=anchor_state
        )
        return _shoot(x_est, T_est)

    strategies = [("direct", direct_rung), ("settle-retry", settle_rung)]

    def fallback(best, rep):
        if best is not None and best.value is not None:
            xb, Tb = best.value
        else:
            xb, Tb = np.asarray(x0, dtype=float), float(period_guess)
        t, X, M, Phis = _integrate_cycle(system, np.asarray(xb, dtype=float), float(Tb), steps)
        return RungOutcome(
            value=(np.asarray(xb, dtype=float), float(Tb), t, X, M, Phis),
            residual_norm=best.residual_norm if best is not None else float("inf"),
        )

    out, rep = run_ladder(
        "pss", strategies, policy=policy, on_failure=on_failure, fallback=fallback
    )
    x, T, t, X, M, Phis = out.value
    return OscillatorPSS(
        system=system,
        x0=x,
        period=T,
        t=t,
        X=X,
        monodromy=M,
        step_transitions=Phis,
        iterations=rep.total_iterations,
        converged=rep.converged,
        report=rep,
    )
