r"""Floquet decomposition and the perturbation projection vector (PPV).

The heart of the paper's sec. 3 theory: a perturbed oscillator responds
with a *phase deviation* ``alpha(t)`` along the orbit plus a small,
bounded *orbital deviation*.  The phase deviation obeys

    d alpha/dt = v1(t + alpha)^T  b(t + alpha),

where ``v1(t)`` — the PPV — is the periodic left Floquet eigenvector of
the linearized system for the unit multiplier, bi-orthonormalized
against ``u1(t) = dx_s/dt``.  For white-noise inputs the phase deviation
becomes a Wiener process with diffusion constant

    c = (1/T) \int_0^T  v1(t)^T B(x_s(t)) B(x_s(t))^T v1(t) dt,

the single scalar that fixes both spectral spreading and timing jitter.

Numerics: ``v1`` is obtained from the left unit-eigenvector of the
monodromy matrix and propagated *backward* through the per-step state
transition matrices (the stable direction for the adjoint), then
re-bi-orthonormalized pointwise against ``u1``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.phasenoise.pss import OscillatorPSS

__all__ = [
    "PPVResult",
    "compute_ppv",
    "scalar_c",
    "per_source_c",
    "node_sensitivity",
    "phase_noise_characterize",
]


@dataclasses.dataclass
class PPVResult:
    """PPV samples and the derived diffusion constant.

    ``v1[k]`` is the PPV at ``pss.t[k]``; ``u1[k]`` the tangent
    ``dx_s/dt``; ``c`` the white-noise phase diffusion constant in
    seconds (variance of the phase deviation grows as ``c * t``).
    """

    pss: OscillatorPSS
    v1: np.ndarray  # (steps+1, n)
    u1: np.ndarray  # (steps+1, n)
    c: float
    unit_multiplier_error: float

    @property
    def corner_offset_hz(self) -> float:
        """Offset at which the Lorentzian flattens: f0^2 pi c."""
        f0 = self.pss.f0
        return np.pi * f0**2 * self.c


def compute_ppv(pss: OscillatorPSS) -> PPVResult:
    """Compute the PPV v1(t) and diffusion constant from a converged PSS."""
    M = pss.monodromy
    n = M.shape[0]
    steps = pss.step_transitions.shape[0]

    # left eigenvector of M for the multiplier closest to 1
    eigvals, left_vecs = np.linalg.eig(M.T)
    k1 = int(np.argmin(np.abs(eigvals - 1.0)))
    err = float(abs(eigvals[k1] - 1.0))
    w = np.real(left_vecs[:, k1])

    u1 = np.array([pss.system.f(pss.X[:, k]) for k in range(steps + 1)])

    # normalize at t = 0: v1^T u1 = 1
    denom = float(w @ u1[0])
    if abs(denom) < 1e-300:
        raise ValueError("degenerate PPV normalization (v1 orthogonal to xdot)")
    w = w / denom

    v1 = np.empty((steps + 1, n))
    v1[0] = w
    v1[steps] = w  # periodicity
    # backward sweep: v1(t_k)^T = v1(t_{k+1})^T Phi(t_{k+1}, t_k)
    for k in range(steps - 1, 0, -1):
        v1[k] = pss.step_transitions[k].T @ v1[k + 1]
        # pointwise bi-orthonormalization guards against discretization drift
        proj = float(v1[k] @ u1[k])
        if abs(proj) > 1e-300:
            v1[k] /= proj
    return PPVResult(pss=pss, v1=v1, u1=u1, c=scalar_c_from(pss, v1), unit_multiplier_error=err)


def scalar_c_from(pss: OscillatorPSS, v1: np.ndarray) -> float:
    """c = (1/T) int v1^T B B^T v1 dt by the trapezoidal rule."""
    steps = v1.shape[0] - 1
    vals = np.empty(steps + 1)
    for k in range(steps + 1):
        B = pss.system.noise_matrix(pss.X[:, k])
        s = v1[k] @ B
        vals[k] = float(s @ s)
    return float(np.trapezoid(vals, pss.t) / pss.period)


def scalar_c(ppv: PPVResult) -> float:
    return ppv.c


def per_source_c(ppv: PPVResult) -> np.ndarray:
    """Split the diffusion constant over the independent noise inputs.

    Paper sec. 3: "The separate contributions of noise sources ... can be
    obtained easily."  Because the inputs are independent,

        c = sum_p  (1/T) int ( v1(t)^T B(t) e_p )^2 dt,

    so each column of ``B`` owns an additive share.  Returns an array of
    length ``system.p`` summing to ``ppv.c``.
    """
    pss = ppv.pss
    steps = ppv.v1.shape[0] - 1
    p = max(pss.system.p, 0)
    vals = np.empty((steps + 1, p))
    for k in range(steps + 1):
        B = pss.system.noise_matrix(pss.X[:, k])
        vals[k] = (ppv.v1[k] @ B) ** 2
    return np.trapezoid(vals, pss.t, axis=0) / pss.period


def node_sensitivity(ppv: PPVResult) -> np.ndarray:
    """Phase-noise sensitivity of each state/node to injected noise.

    Paper sec. 3: "the sensitivity of phase noise to individual circuit
    devices and nodes can be obtained easily."  A hypothetical unit
    white-noise current at state ``i`` would contribute
    ``(1/T) int v1_i(t)^2 dt`` to ``c``; the returned vector ranks the
    nodes by that exposure.
    """
    pss = ppv.pss
    return np.trapezoid(ppv.v1**2, pss.t, axis=0) / pss.period


def phase_noise_characterize(pss: OscillatorPSS) -> PPVResult:
    """One-call characterization: PPV + diffusion constant."""
    return compute_ppv(pss)
