"""The paper's sec. 2.2 workload: double-balanced switching mixer + filter.

"The RF input to the mixer was a 100kHz sinusoid with amplitude 100mV;
this sent it into a mildly nonlinear regime.  The LO input was a square
wave of large amplitude (1V), which switched the mixer on and off at a
fast rate (900Mhz)."

The mixer core is a quad of voltage-controlled switches (strongly
nonlinear in the fast LO path); the RF path passes through a weakly
cubic conductance that produces the third-harmonic mix products of
Figure 4(b) at the paper's ~35 dB-below-carrier level.  An RC filter
loads the differential output.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.netlist import Circuit, Sine, SquareWave
from repro.netlist.mna import MNASystem

__all__ = ["switching_mixer", "MIXER_DEFAULTS"]

MIXER_DEFAULTS = dict(
    f_rf=100e3,
    a_rf=0.1,
    f_lo=900e6,
    a_lo=1.0,
    r_source=50.0,
    g_on=20e-3,
    g_off=1e-9,
    cubic=1200.0,
    r_load=600.0,
    c_load=2e-12,
)


def switching_mixer(
    f_rf: float = 100e3,
    a_rf: float = 0.1,
    f_lo: float = 900e6,
    a_lo: float = 1.0,
    r_source: float = 50.0,
    g_on: float = 20e-3,
    g_off: float = 1e-9,
    cubic: float = 1200.0,
    r_load: float = 600.0,
    c_load: float = 2e-12,
    lo_square: bool = True,
    lo_sharpness: float = 8.0,
) -> MNASystem:
    """Compiled double-balanced switching mixer.

    Parameters
    ----------
    cubic:
        Relative cubic coefficient of the RF-path conductance,
        ``i = g v (1 + cubic v^2)`` — the "mildly nonlinear regime" knob.
        ``cubic = 0`` gives an ideal linear signal path.  The default is
        calibrated so the Figure 4 observables land at the paper's
        values: H1 fundamental ~60 mV, H3 mix ~1.1 mV (~35 dB down).
    lo_square:
        True for the paper's square-wave LO (smoothed tanh edges);
        False for a sinusoidal LO (useful for HB cross-checks).
    """
    ckt = Circuit("double-balanced switching mixer")
    ckt.vsource("Vrf", "rf", "0", Sine(a_rf, f_rf))
    lo_wave = (
        SquareWave(a_lo, f_lo, sharpness=lo_sharpness)
        if lo_square
        else Sine(a_lo, f_lo)
    )
    ckt.vsource("Vlo", "lo", "0", lo_wave)

    # differential RF drive: rfp follows the source, rfn is its inverse
    ckt.vcvs("Einv", "rfn", "0", "0", "rf", 1.0)
    ckt.resistor("Rsp", "rf", "ap", r_source)
    ckt.resistor("Rsn", "rfn", "an", r_source)

    # mildly nonlinear signal-path conductances (g v (1 + cubic v^2))
    g_sig = 1.0 / r_source

    def i_of_v(v):
        return g_sig * v * (1.0 + cubic * v * v)

    def di_dv(v):
        return g_sig * (1.0 + 3.0 * cubic * v * v)

    ckt.nonlinear_resistor("Gnlp", "ap", "bp", i_of_v, di_dv)
    ckt.nonlinear_resistor("Gnln", "an", "bn", i_of_v, di_dv)

    # switch quad: bp/bn commutated onto outp/outn by the LO polarity
    sw = dict(g_on=g_on, g_off=g_off, sharpness=10.0)
    ckt.switch("S1", "bp", "outp", "lo", "0", **sw)
    ckt.switch("S2", "bn", "outn", "lo", "0", **sw)
    ckt.switch("S3", "bp", "outn", "0", "lo", **sw)
    ckt.switch("S4", "bn", "outp", "0", "lo", **sw)

    # output RC filter
    ckt.resistor("Rlp", "outp", "0", r_load)
    ckt.resistor("Rln", "outn", "0", r_load)
    ckt.capacitor("Clp", "outp", "0", c_load)
    ckt.capacitor("Cln", "outn", "0", c_load)
    # small capacitors at the internal nodes keep fast-axis dynamics benign
    for node in ("ap", "an", "bp", "bn"):
        ckt.capacitor(f"Cpar_{node}", node, "0", 50e-15)
    return ckt.compile()
