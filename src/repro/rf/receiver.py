"""A complete receiver front end: LNA + downconversion mixer + IF filter.

The paper's introduction frames everything around receiver specs —
sensitivity, linearity, adjacent-channel interference — that "depend on
other performance measures such as noise figure, intercept point, and
1dB compression point".  This generator builds the whole signal path so
those system-level measures can be simulated end to end with the
library's engines (HB for gain/linearity, MMFT for the downconversion,
noise/pnoise for sensitivity).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.netlist import Circuit, MultiTone, Sine, Waveform
from repro.netlist.mna import MNASystem

__all__ = ["ReceiverSpec", "receiver_front_end", "lna_stage"]


@dataclasses.dataclass
class ReceiverSpec:
    """Frequency plan and component values of the demo receiver."""

    f_rf: float = 900e6
    f_lo: float = 890e6  # low-side LO -> IF at 10 MHz
    a_lo: float = 1.0
    vcc: float = 3.0
    vbias: float = 0.85
    r_source: float = 50.0
    rc_collector: float = 300.0
    re_degen: float = 20.0
    g_on: float = 20e-3
    r_if: float = 1e3
    c_if: float = 3e-12  # IF pole ~ 50 MHz: passes 10 MHz, kills RF

    @property
    def f_if(self) -> float:
        return abs(self.f_rf - self.f_lo)


def lna_stage(ckt: Circuit, spec: ReceiverSpec, node_in: str, node_out: str) -> None:
    """Common-emitter BJT LNA between two nodes (AC-coupled input)."""
    ckt.capacitor("Cin", node_in, "b", 20e-12)
    ckt.vsource("Vbb", "vbb", "0", spec.vbias)
    ckt.resistor("Rbb", "vbb", "b", 2e3)
    ckt.bjt("Q1", "c", "b", "e", isat=5e-16, beta_f=120.0, tf=5e-12,
            cje=50e-15, cjc=20e-15)
    ckt.resistor("Re", "e", "0", spec.re_degen)
    ckt.resistor("Rc", "vcc", "c", spec.rc_collector)
    ckt.capacitor("Cc", "c", node_out, 10e-12)
    ckt.resistor("Rmid", node_out, "0", 500.0)
    ckt.capacitor("Cmid", node_out, "0", 0.1e-12)


def receiver_front_end(
    spec: Optional[ReceiverSpec] = None,
    rf_wave: Optional[Waveform] = None,
) -> MNASystem:
    """Compiled LNA + double-balanced mixer + IF filter chain.

    ``rf_wave`` defaults to a small test tone at ``spec.f_rf``; pass a
    :class:`~repro.netlist.waveforms.MultiTone` for two-tone linearity
    runs.
    """
    sp = spec or ReceiverSpec()
    wave = rf_wave or Sine(1e-3, sp.f_rf)
    ckt = Circuit("receiver front end")
    ckt.vsource("Vcc", "vcc", "0", sp.vcc)
    ckt.vsource("Vrf", "ant", "0", wave)
    ckt.resistor("Rs", "ant", "rfin", sp.r_source)

    lna_stage(ckt, sp, "rfin", "lna_out")

    # LO and the commutating quad (single-balanced on the LNA output
    # plus its inverse from an ideal balun VCVS)
    ckt.vsource("Vlo", "lo", "0", Sine(sp.a_lo, sp.f_lo))
    ckt.vcvs("Ebal", "lna_inv", "0", "0", "lna_out", 1.0)
    sw = dict(g_on=sp.g_on, g_off=1e-9, sharpness=10.0)
    ckt.switch("S1", "lna_out", "ifp", "lo", "0", **sw)
    ckt.switch("S2", "lna_inv", "ifn", "lo", "0", **sw)
    ckt.switch("S3", "lna_out", "ifn", "0", "lo", **sw)
    ckt.switch("S4", "lna_inv", "ifp", "0", "lo", **sw)

    # IF lowpass load
    for node in ("ifp", "ifn"):
        ckt.resistor(f"Rif_{node}", node, "0", sp.r_if)
        ckt.capacitor(f"Cif_{node}", node, "0", sp.c_if)
    return ckt.compile()
