"""Circuit-level oscillator generators for the phase-noise analyses.

MNA counterparts of the ODE reference oscillators in
:mod:`repro.phasenoise.ode`.  They are built with *linear* capacitors at
every node so that the :class:`~repro.phasenoise.ode.MNAOscillator`
adapter (which requires a constant nonsingular capacitance matrix) can
convert them to state-equation form.
"""

from __future__ import annotations

import numpy as np

from repro.netlist import Circuit
from repro.netlist.mna import MNASystem

__all__ = ["lc_oscillator", "mna_ring_oscillator"]


def lc_oscillator(
    L: float = 1e-9,
    C: float = 1e-12,
    R: float = 300.0,
    g1: float = 5e-3,
    g3: float = 1e-3,
    allow_no_startup: bool = False,
) -> MNASystem:
    """Negative-resistance LC tank oscillator as an MNA circuit.

    Parallel (L, C, R) tank at node ``tank`` with a cubic
    negative-conductance cell ``i = -g1 v + g3 v^3`` (the behavioural
    model of a cross-coupled pair).  Startup requires ``g1 > 1/R``;
    oscillation amplitude settles near ``sqrt((g1 - 1/R)/g3)`` and
    frequency near ``1/(2 pi sqrt(L C))``.
    """
    if g1 <= 1.0 / R and not allow_no_startup:
        raise ValueError("no startup: need g1 > 1/R")
    ckt = Circuit("negative-resistance LC oscillator")
    ckt.capacitor("Ct", "tank", "0", C)
    ckt.inductor("Lt", "tank", "0", L)
    ckt.resistor("Rt", "tank", "0", R)
    ckt.nonlinear_resistor(
        "Gneg",
        "tank",
        "0",
        lambda v: -g1 * v + g3 * v**3,
        lambda v: -g1 + 3.0 * g3 * v**2,
    )
    return ckt.compile()


def mna_ring_oscillator(
    stages: int = 3,
    R: float = 10e3,
    C: float = 100e-15,
    I0: float = 100e-6,
    gain: float = 4.0,
) -> MNASystem:
    """Odd-stage inverter ring (tanh stages) as an MNA circuit.

    Stage k: capacitor + resistor to ground at node ``v{k}`` driven by a
    saturating transconductance from the previous node,
    ``i = I0 tanh(gain v_{k-1} / (I0 R))``.
    """
    if stages % 2 == 0:
        raise ValueError("ring oscillator needs an odd number of stages")
    ckt = Circuit(f"{stages}-stage ring oscillator")
    vsw = I0 * R

    def make_stage(k: int) -> None:
        prev = f"v{(k - 1) % stages}"
        node = f"v{k}"
        ckt.capacitor(f"C{k}", node, "0", C)
        ckt.resistor(f"R{k}", node, "0", R)

        def i_of_v(v, _g=gain, _vsw=vsw, _i0=I0):
            return _i0 * np.tanh(_g * v / _vsw)

        def di_dv(v, _g=gain, _vsw=vsw, _i0=I0):
            return _i0 * _g / _vsw * (1.0 - np.tanh(_g * v / _vsw) ** 2)

        # saturating inverting coupling realized as a nonlinear resistor
        # from the previous stage node into ground sensed at this node is
        # not expressible two-terminal; use a VCCS-like construction:
        # a nonlinear resistor between prev and a virtual node would load
        # the previous stage, so instead inject with polarity via a
        # dedicated two-port below.
        ckt.add(_TanhTransconductor(f"Gm{k}", node, prev, I0, gain / vsw))

    for k in range(stages):
        make_stage(k)
    return ckt.compile()


from repro.netlist.components import Device  # noqa: E402  (local import by design)


class _TanhTransconductor(Device):
    """Grounded tanh VCCS: i(out) = I0 tanh(k v_ctrl), inverting load."""

    nonlinear = True

    def __init__(self, name: str, out: str, ctrl: str, i0: float, k: float):
        super().__init__(name, [out, ctrl])
        self.i0 = float(i0)
        self.k = float(k)

    def nl_ports(self):
        idx = np.array(self.node_idx)
        return idx, idx[:1]

    def nl_eval(self, V):
        _, vc = V
        th = np.tanh(self.k * vc)
        i = self.i0 * th
        g = self.i0 * self.k * (1.0 - th**2)
        m = V.shape[1]
        f = i[None, :]
        df = np.zeros((1, 2, m))
        df[0, 1] = g
        q = np.zeros((1, m))
        dq = np.zeros((1, 2, m))
        return f, q, df, dq
