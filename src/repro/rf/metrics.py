"""RF performance metrics (paper sec. 1's specification list).

"Typical specifications ... include sensitivity, linearity, adjacent
channel interference, and power level.  These specifications depend on
other performance measures such as noise figure, intercept point, and
1dB compression point."  These helpers compute those measures from the
simulation engines: IP3 from two-tone HB, 1 dB compression from an
HB amplitude sweep, noise figure from the stationary noise analysis.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.noise import NoiseResult
from repro.hb.hb_core import HBResult
from repro.netlist.components import BOLTZMANN

__all__ = [
    "db20",
    "db10",
    "dbc",
    "ip3_from_two_tone",
    "acpr_from_two_tone",
    "CompressionResult",
    "compression_point",
    "noise_figure_db",
]


def db20(x) -> np.ndarray:
    """Amplitude ratio in dB."""
    return 20.0 * np.log10(np.abs(np.asarray(x)) + 1e-300)


def db10(x) -> np.ndarray:
    """Power ratio in dB."""
    return 10.0 * np.log10(np.abs(np.asarray(x)) + 1e-300)


def dbc(amplitude: float, carrier_amplitude: float) -> float:
    """Level of a spur relative to the carrier in dBc."""
    return float(db20(amplitude) - db20(carrier_amplitude))


def ip3_from_two_tone(
    hb: HBResult,
    node,
    fund_index: Tuple[int, int] = (1, 0),
    im3_index: Tuple[int, int] = (2, -1),
    input_amplitude: Optional[float] = None,
) -> dict:
    """Third-order intercept from a two-tone HB solution.

    With fundamental output amplitude A1 and IM3 amplitude A3 (both at
    the same small input level), the output intercept amplitude is

        OIP3 = A1 * sqrt(A1 / A3),

    i.e. +delta/2 dB above the fundamental where delta = A1/A3 in dB.
    ``IIP3`` is referred to the input when ``input_amplitude`` is given
    and the gain is assumed linear at the test level.
    """
    a1 = hb.amplitude_at(node, fund_index)
    a3 = hb.amplitude_at(node, im3_index)
    if a3 <= 0:
        raise ValueError("IM3 amplitude is zero — increase drive or harmonics")
    oip3_amp = a1 * np.sqrt(a1 / a3)
    out = {
        "fund_amplitude": a1,
        "im3_amplitude": a3,
        "im3_dbc": dbc(a3, a1),
        "oip3_amplitude": float(oip3_amp),
        "oip3_db": float(db20(oip3_amp)),
    }
    if input_amplitude is not None:
        gain = a1 / input_amplitude
        out["gain_db"] = float(db20(gain))
        out["iip3_amplitude"] = float(oip3_amp / gain)
        out["iip3_db"] = float(db20(oip3_amp / gain))
    return out


@dataclasses.dataclass
class CompressionResult:
    """1 dB compression sweep data."""

    input_amplitudes: np.ndarray
    output_amplitudes: np.ndarray
    small_signal_gain: float
    p1db_input: float  # input amplitude at 1 dB gain compression (nan if not reached)

    @property
    def gain_db(self) -> np.ndarray:
        return db20(self.output_amplitudes / self.input_amplitudes)


def compression_point(
    solve_amplitude: Callable[[float], float],
    amplitudes: Sequence[float],
) -> CompressionResult:
    """1 dB compression point from an amplitude sweep.

    ``solve_amplitude(a_in)`` must return the fundamental output
    amplitude (e.g. a closure running HB on a rebuilt circuit).  The
    small-signal gain is taken from the lowest drive; the compression
    point is interpolated where gain drops 1 dB below it.
    """
    amps = np.asarray(list(amplitudes), dtype=float)
    outs = np.array([solve_amplitude(a) for a in amps])
    gains = db20(outs / amps)
    g0 = gains[0]
    drop = g0 - gains
    p1 = np.nan
    above = np.nonzero(drop >= 1.0)[0]
    if above.size:
        k = above[0]
        if k == 0:
            p1 = amps[0]
        else:
            frac = (1.0 - drop[k - 1]) / (drop[k] - drop[k - 1])
            p1 = 10 ** (np.log10(amps[k - 1]) + frac * (np.log10(amps[k]) - np.log10(amps[k - 1])))
    return CompressionResult(
        input_amplitudes=amps,
        output_amplitudes=outs,
        small_signal_gain=float(g0),
        p1db_input=float(p1),
    )


def noise_figure_db(
    noise: NoiseResult,
    source_contribution_name: str,
    freq_index: int = 0,
) -> float:
    """Noise figure from a stationary noise analysis.

    F = (total output noise PSD) / (output noise PSD due to the source
    resistance alone); NF = 10 log10 F.  The source resistor's
    contribution is looked up by its noise-source name (e.g.
    ``"Rs.thermal"``).
    """
    total = noise.psd[freq_index]
    source = noise.contributions[source_contribution_name][freq_index]
    if source <= 0:
        raise ValueError("source contribution is zero; check the source name")
    return float(db10(total / source))


def acpr_from_two_tone(
    hb: HBResult,
    node,
    fund_indices=((1, 0), (0, 1)),
    adjacent_indices=((2, -1), (-1, 2)),
    alternate_indices=((3, -2), (-2, 3)),
) -> dict:
    """Adjacent-channel power ratio estimate from a two-tone HB run.

    Paper sec. 1 lists "adjacent channel interference" among the specs
    RF verification must predict.  With two closely spaced tones
    standing in for a modulated channel, the odd-order intermodulation
    products land exactly where spectral regrowth pollutes the adjacent
    (IM3) and alternate (IM5) channels:

        ACPR_adj = (IM3 power) / (two-tone channel power)

    Returns both ratios in dBc along with the raw powers.
    """
    p_main = sum(hb.amplitude_at(node, idx) ** 2 for idx in fund_indices)
    p_adj = sum(hb.amplitude_at(node, idx) ** 2 for idx in adjacent_indices)
    p_alt = sum(hb.amplitude_at(node, idx) ** 2 for idx in alternate_indices)
    if p_main <= 0:
        raise ValueError("no power at the fundamental indices")
    return {
        "channel_power": p_main,
        "adjacent_power": p_adj,
        "alternate_power": p_alt,
        "acpr_adjacent_db": float(db10(p_adj / p_main)),
        "acpr_alternate_db": float(db10(p_alt / p_main)),
    }
