"""Generators for the paper's example RF systems and RF metrics."""

from repro.rf.metrics import (
    CompressionResult,
    acpr_from_two_tone,
    compression_point,
    db10,
    db20,
    dbc,
    ip3_from_two_tone,
    noise_figure_db,
)
from repro.rf.mixer import MIXER_DEFAULTS, switching_mixer
from repro.rf.modulator import ModulatorSpec, quadrature_modulator
from repro.rf.oscillators import lc_oscillator, mna_ring_oscillator
from repro.rf.receiver import ReceiverSpec, lna_stage, receiver_front_end

__all__ = [
    "switching_mixer",
    "MIXER_DEFAULTS",
    "ModulatorSpec",
    "quadrature_modulator",
    "lc_oscillator",
    "mna_ring_oscillator",
    "ReceiverSpec",
    "receiver_front_end",
    "lna_stage",
    "db20",
    "db10",
    "dbc",
    "ip3_from_two_tone",
    "acpr_from_two_tone",
    "CompressionResult",
    "compression_point",
    "noise_figure_db",
]
