"""Dual-conversion quadrature modulator — the Figure 1 system.

The paper's HB showcase is "a large dual-conversion quadrature modulator
chip designed for cellular applications" driven at 80 kHz baseband and
emitting at 1.62 GHz, whose simulated spectrum revealed:

* a sideband at -35 dBc traced to a *layout imbalance*, and
* a weak LO spurious response near -78 dBc that conventional transient
  analysis could not resolve.

We rebuild the architecture at behavioural level (DESIGN.md records the
substitution for the proprietary chip): quadrature baseband sources, a
switch-quad upconversion to an IF, and a second up-conversion to RF.
Both LOs are harmonics of a common reference so the whole chain fits a
two-tone (baseband, LO-reference) HB grid.  Deliberate *imbalance knobs*
(quadrature gain/phase error, baseband DC offset) reproduce the sideband
and LO-feedthrough spurs at tunable levels.

Frequency plan (defaults): f_bb = 80 kHz; LO1 = f_ref = 202.5 MHz;
LO2 = 7 f_ref; output carrier at 8 f_ref = 1.62 GHz; desired upper
sideband at 1.62 GHz + 80 kHz.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.netlist import Circuit, Sine
from repro.netlist.mna import MNASystem

__all__ = ["ModulatorSpec", "quadrature_modulator"]


@dataclasses.dataclass
class ModulatorSpec:
    """Architecture and imbalance parameters of the modulator testbench."""

    f_bb: float = 80e3
    a_bb: float = 0.1
    f_ref: float = 202.5e6  # LO1 = f_ref, LO2 = 7 f_ref, carrier = 8 f_ref
    a_lo: float = 1.0
    gain_error: float = 0.015  # Q-path relative gain error (layout imbalance)
    phase_error: float = 0.02  # radians of quadrature error
    bb_offset: float = 9e-6  # baseband DC offset -> LO1 feedthrough ~ -78 dBc
    dual_conversion: bool = True
    r_load: float = 600.0
    c_if: float = 6e-12  # IF lowpass: suppresses LO1 commutation harmonics
    c_rf: float = 0.1e-12  # RF load: passes the 1.62 GHz carrier
    g_on: float = 20e-3
    g_off: float = 1e-9

    @property
    def f_lo1(self) -> float:
        return self.f_ref

    @property
    def f_lo2(self) -> float:
        return 7.0 * self.f_ref

    @property
    def f_carrier(self) -> float:
        return (8.0 if self.dual_conversion else 1.0) * self.f_ref


def _switch_modulator_cell(
    ckt: Circuit,
    tag: str,
    in_p: str,
    in_n: str,
    lo_p: str,
    lo_n: str,
    out_p: str,
    out_n: str,
    g_on: float,
    g_off: float,
) -> None:
    """Double-balanced commutating quad (same cell as the Fig 4 mixer)."""
    sw = dict(g_on=g_on, g_off=g_off, sharpness=10.0)
    ckt.switch(f"S{tag}1", in_p, out_p, lo_p, lo_n, **sw)
    ckt.switch(f"S{tag}2", in_n, out_n, lo_p, lo_n, **sw)
    ckt.switch(f"S{tag}3", in_p, out_n, lo_n, lo_p, **sw)
    ckt.switch(f"S{tag}4", in_n, out_p, lo_n, lo_p, **sw)


def quadrature_modulator(spec: Optional[ModulatorSpec] = None) -> MNASystem:
    """Compiled modulator circuit per the given spec."""
    sp = spec or ModulatorSpec()
    ckt = Circuit("dual-conversion quadrature modulator")

    # --- quadrature baseband, with gain/phase imbalance on the Q path ---
    ckt.vsource("Vbbi", "bbi", "0", Sine(sp.a_bb, sp.f_bb, phase=0.0, offset=sp.bb_offset))
    ckt.vsource(
        "Vbbq",
        "bbq",
        "0",
        Sine(
            sp.a_bb * (1.0 + sp.gain_error),
            sp.f_bb,
            phase=np.pi / 2.0 + sp.phase_error,
            offset=sp.bb_offset,
        ),
    )
    ckt.vcvs("Einv_i", "bbi_n", "0", "0", "bbi", 1.0)
    ckt.vcvs("Einv_q", "bbq_n", "0", "0", "bbq", 1.0)

    # --- first LO pair in quadrature (ideal polyphase substitution) ---
    ckt.vsource("Vlo1i", "lo1i", "0", Sine(sp.a_lo, sp.f_lo1, phase=0.0))
    ckt.vsource("Vlo1q", "lo1q", "0", Sine(sp.a_lo, sp.f_lo1, phase=np.pi / 2.0))

    # --- first conversion: I and Q quads summed at the IF nodes ---
    _switch_modulator_cell(
        ckt, "I", "bbi", "bbi_n", "lo1i", "0", "ifp", "ifn", sp.g_on, sp.g_off
    )
    # Q cell connected with inverted polarity: out = I cos - Q sin selects
    # the *upper* sideband as the desired product
    _switch_modulator_cell(
        ckt, "Q", "bbq_n", "bbq", "lo1q", "0", "ifp", "ifn", sp.g_on, sp.g_off
    )
    ckt.resistor("Rifp", "ifp", "0", sp.r_load)
    ckt.resistor("Rifn", "ifn", "0", sp.r_load)
    ckt.capacitor("Cifp", "ifp", "0", sp.c_if)
    ckt.capacitor("Cifn", "ifn", "0", sp.c_if)

    if not sp.dual_conversion:
        return ckt.compile()

    # --- interstage buffers (ideal IF amplifiers): without them the
    # second quad periodically load-pulls the IF nodes and degrades the
    # quadrature image cancellation — the partition-boundary effect the
    # paper warns about; the buffers emulate the chip's IF amplifier ---
    ckt.vcvs("Ebufp", "bifp", "0", "ifp", "0", 1.0)
    ckt.vcvs("Ebufn", "bifn", "0", "ifn", "0", 1.0)

    # --- second conversion to RF with LO2 = 7 f_ref -> carrier 8 f_ref ---
    ckt.vsource("Vlo2", "lo2", "0", Sine(sp.a_lo, sp.f_lo2, phase=0.0))
    _switch_modulator_cell(
        ckt, "U", "bifp", "bifn", "lo2", "0", "rfp", "rfn", sp.g_on, sp.g_off
    )
    ckt.resistor("Rrfp", "rfp", "0", sp.r_load)
    ckt.resistor("Rrfn", "rfn", "0", sp.r_load)
    ckt.capacitor("Crfp", "rfp", "0", sp.c_rf)
    ckt.capacitor("Crfn", "rfn", "0", sp.c_rf)
    return ckt.compile()
