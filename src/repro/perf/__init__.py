"""Hot-path performance layer: factorization reuse and sweep parallelism.

The paper's headline claims are about *speed* — harmonic balance "in
minutes" on large circuits (sec. 2.1), IES3 turning days of extraction
into minutes (sec. 4).  This package supplies the two mechanisms the
rest of the tool family uses to get there:

* :mod:`repro.perf.factorcache` — :class:`FactorCache`, a keyed cache of
  LU factorizations enabling *modified Newton* (reuse a factorization
  across iterations until the convergence rate degrades) and LU reuse
  across transient timesteps while the step size is unchanged;
* :mod:`repro.perf.sweep` — :func:`sweep_map`, a deterministic parallel
  executor for embarrassingly parallel workloads (AC/HB frequency
  points, Monte-Carlo paths, ROM transfer sweeps, EM panel-matrix
  assembly) with serial, thread and process backends — results are
  bit-identical whichever backend and worker count runs them;
* :mod:`repro.perf.counters` — :class:`PerfCounters`, the factor
  hit/miss, saved-Jacobian and per-stage wall-time counters attached to
  :class:`~repro.robust.report.SolveReport` objects as ``report.perf``.
"""

from repro.perf.counters import PerfCounters
from repro.perf.factorcache import FactorCache, make_factor_solver
from repro.perf.sweep import (
    BACKENDS,
    ON_ITEM_FAILURE_MODES,
    SkippedSlot,
    SweepItemSkipped,
    SweepItemTimeout,
    SweepRemoteError,
    SweepWorkerCrash,
    backoff_seconds,
    resolve_backend,
    resolve_checkpoint,
    resolve_retries,
    resolve_timeout,
    resolve_workers,
    sweep_map,
    worker_factor_cache,
)

__all__ = [
    "BACKENDS",
    "ON_ITEM_FAILURE_MODES",
    "FactorCache",
    "PerfCounters",
    "SkippedSlot",
    "SweepItemSkipped",
    "SweepItemTimeout",
    "SweepRemoteError",
    "SweepWorkerCrash",
    "backoff_seconds",
    "make_factor_solver",
    "resolve_backend",
    "resolve_checkpoint",
    "resolve_retries",
    "resolve_timeout",
    "resolve_workers",
    "sweep_map",
    "worker_factor_cache",
]
