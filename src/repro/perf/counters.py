"""Performance counters attached to solve reports.

A :class:`PerfCounters` instance travels with a
:class:`~repro.perf.factorcache.FactorCache` (which bumps the factor
hit/miss counts) and with the analyses that adopt the performance layer
(which bump the Jacobian-saving and stage-timing counts).  At the end of
a solve the counters are published onto the existing
:class:`~repro.robust.report.SolveReport` as the ``perf`` dict, so the
robustness layer's reports now carry timing next to the attempt history.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from typing import Dict

__all__ = ["PerfCounters"]


@dataclasses.dataclass
class PerfCounters:
    """Factorization-reuse and wall-time counters for one logical solve.

    Attributes
    ----------
    factor_hits / factor_misses:
        Cache lookups that reused an existing factorization vs. ones
        that had to factor fresh.
    factor_invalidations:
        Entries dropped (stepsize change, rejected step, poisoned
        factor, eviction).
    jacobian_evals:
        Jacobian evaluations actually performed.
    jacobian_evals_saved:
        Newton iterations served by a reused (stale) factorization —
        Jacobian evaluations *and* factorizations that never happened.
    stale_refreshes:
        Fail-closed refreshes: a stale factorization produced a
        non-descent (or non-finite) step and was replaced by a fresh
        Jacobian before any escalation ladder engaged.
    workers:
        Worker count of the sweep executor run that produced this
        result (1 for serial).
    sweep_backend:
        Backend the sweep executor actually ran (``"serial"``,
        ``"thread"`` or ``"process"``); merges keep the most parallel
        one seen.
    stage_seconds:
        Wall time per named stage (``"dc"``, ``"stepping"``, ...).
    """

    factor_hits: int = 0
    factor_misses: int = 0
    factor_invalidations: int = 0
    jacobian_evals: int = 0
    jacobian_evals_saved: int = 0
    stale_refreshes: int = 0
    workers: int = 1
    sweep_backend: str = "serial"
    stage_seconds: Dict[str, float] = dataclasses.field(default_factory=dict)

    #: backend names ordered by "parallelism rank" for merge()
    _BACKEND_RANK = {"serial": 0, "thread": 1, "process": 2}

    @property
    def hit_rate(self) -> float:
        """Factor-cache hit rate in [0, 1] (0 when never queried)."""
        total = self.factor_hits + self.factor_misses
        return self.factor_hits / total if total else 0.0

    @contextlib.contextmanager
    def stage(self, name: str):
        """Context manager accumulating wall time under ``name``."""
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.add_stage(name, time.perf_counter() - t0)

    def add_stage(self, name: str, seconds: float) -> None:
        self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + float(seconds)

    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Accumulate another counter set into this one (returned)."""
        self.factor_hits += other.factor_hits
        self.factor_misses += other.factor_misses
        self.factor_invalidations += other.factor_invalidations
        self.jacobian_evals += other.jacobian_evals
        self.jacobian_evals_saved += other.jacobian_evals_saved
        self.stale_refreshes += other.stale_refreshes
        self.workers = max(self.workers, other.workers)
        if self._BACKEND_RANK.get(other.sweep_backend, 0) > self._BACKEND_RANK.get(
            self.sweep_backend, 0
        ):
            self.sweep_backend = other.sweep_backend
        for name, sec in other.stage_seconds.items():
            self.add_stage(name, sec)
        return self

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot (what lands in ``report.perf``)."""
        return {
            "factor_hits": self.factor_hits,
            "factor_misses": self.factor_misses,
            "factor_hit_rate": self.hit_rate,
            "factor_invalidations": self.factor_invalidations,
            "jacobian_evals": self.jacobian_evals,
            "jacobian_evals_saved": self.jacobian_evals_saved,
            "stale_refreshes": self.stale_refreshes,
            "workers": self.workers,
            "sweep_backend": self.sweep_backend,
            "stage_seconds": dict(self.stage_seconds),
        }

    def attach(self, report) -> None:
        """Publish onto a :class:`SolveReport`'s ``perf`` dict (if any)."""
        if report is not None and hasattr(report, "perf"):
            report.perf.update(self.as_dict())
