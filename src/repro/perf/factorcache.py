"""Keyed cache of matrix factorizations.

Every implicit step and Newton iteration in the tool family bottoms out
in "factor a sparse/dense matrix, then solve against it".  Much of the
time the matrix is identical (transient steps at a fixed stepsize ``h``
share ``G + C/h`` for linear circuits) or *close enough* (modified
Newton tolerates a stale Jacobian as long as the iteration still
contracts).  :class:`FactorCache` holds the factorizations, keyed by the
caller's notion of matrix identity, with LRU eviction and explicit
invalidation for the staleness policies layered on top (see
:func:`repro.linalg.newton.newton_solve` and
:func:`repro.analysis.transient.transient_analysis`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, Optional, Tuple

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.perf.counters import PerfCounters
from repro.trace import get_tracer

__all__ = ["FactorCache", "make_factor_solver"]


def make_factor_solver(A) -> Callable[[np.ndarray], np.ndarray]:
    """Factor a dense or sparse matrix once; return ``solve(rhs)``.

    Sparse matrices go through SuperLU (:func:`scipy.sparse.linalg.splu`),
    dense ones through LAPACK :func:`scipy.linalg.lu_factor`.  Raises
    ``RuntimeError`` / :class:`numpy.linalg.LinAlgError` /
    ``ValueError`` on exactly singular input, matching what the callers'
    singular-Jacobian handling already expects.
    """
    if sp.issparse(A):
        lu = spla.splu(A.tocsc())
        return lu.solve
    A = np.asarray(A)
    lu, piv = sla.lu_factor(A)

    def solve(rhs):
        return sla.lu_solve((lu, piv), rhs)

    return solve


class FactorCache:
    """LRU cache of factorization solve-callables, with perf counters.

    Keys are caller-defined matrix identities — e.g. ``("step", method,
    h)`` for the transient companion matrix ``C/h + alpha G``.  The
    cache never decides staleness itself: callers (modified Newton, the
    transient step loop) invalidate or overwrite entries per their own
    policy, and every lookup is counted on :attr:`counters` so the
    effectiveness of that policy is observable in ``report.perf``.
    """

    def __init__(self, max_entries: int = 8, counters: Optional[PerfCounters] = None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.counters = counters if counters is not None else PerfCounters()
        self._entries: "OrderedDict[Hashable, Callable]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def hits(self) -> int:
        return self.counters.factor_hits

    @property
    def misses(self) -> int:
        return self.counters.factor_misses

    def get(self, key: Hashable) -> Optional[Callable]:
        """Cached solver for ``key`` or None; counts the hit/miss."""
        solver = self._entries.get(key)
        tr = get_tracer()
        if solver is None:
            self.counters.factor_misses += 1
            if tr.enabled:
                tr.event("factorcache.miss", key=str(key))
            return None
        self._entries.move_to_end(key)
        self.counters.factor_hits += 1
        if tr.enabled:
            tr.event("factorcache.hit", key=str(key))
        return solver

    def store(self, key: Hashable, solver: Callable) -> Callable:
        """Insert/replace the solver for ``key`` (LRU-evicting)."""
        self._entries[key] = solver
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.counters.factor_invalidations += 1
        return solver

    def factor(self, key: Hashable, build: Callable[[], object]) -> Tuple[Callable, bool]:
        """``(solver, was_cached)`` for ``key``; ``build()`` supplies the
        matrix on a miss and the resulting factorization is stored."""
        solver = self.get(key)
        if solver is not None:
            return solver, True
        return self.store(key, make_factor_solver(build())), False

    def invalidate(self, key: Optional[Hashable] = None) -> int:
        """Drop one entry (or all, when ``key`` is None); returns count."""
        if key is None:
            dropped = len(self._entries)
            self._entries.clear()
        else:
            dropped = 1 if self._entries.pop(key, None) is not None else 0
        self.counters.factor_invalidations += dropped
        if dropped:
            tr = get_tracer()
            if tr.enabled:
                tr.event("factorcache.invalidate", key=str(key), dropped=dropped)
        return dropped
