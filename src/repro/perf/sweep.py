"""Deterministic parallel executor for embarrassingly parallel sweeps.

AC/HB frequency points, phase-noise Monte-Carlo paths, ROM transfer
sweeps and EM panel-matrix row blocks are all independent work items.
:func:`sweep_map` runs them through one of three backends:

``"serial"``
    A plain loop.  The reference behaviour every other backend must
    reproduce bit-for-bit.
``"thread"``
    A ``concurrent.futures`` thread pool.  Cheap to spin up and fine
    when the per-item work releases the GIL (sparse LU, BLAS), but
    pure-Python device evaluation serialises on the GIL and threads can
    *lose* to serial.
``"process"``
    A ``concurrent.futures.ProcessPoolExecutor``.  Items are shipped to
    worker processes in contiguous chunks, so CPU-bound Python work
    scales with cores.  Requires the task callable, the items and the
    results to be picklable; when the task is not picklable the call
    transparently degrades to the thread backend (recorded in
    ``stats["backend"]``).

Three invariants the adopters rely on:

* **deterministic ordering** — results come back in item order,
  regardless of completion order, chunking, backend or worker count;
* **backend/worker-count independence** — the per-item computation
  never depends on ``workers`` or the backend, so serial, threaded and
  process runs produce bit-identical outputs (pinned by
  ``tests/test_sweep_backends.py``);
* **purity** — tasks must be deterministic functions of their item (no
  hidden mutable state): the process backend may re-run items serially
  after a worker-pool failure, and chunked dispatch gives no ordering
  guarantee during execution.

Configuration: ``workers=`` / ``backend=`` arguments win; otherwise the
``REPRO_SWEEP_WORKERS`` / ``REPRO_SWEEP_BACKEND`` environment variables
apply; the defaults are one worker (serial) and the thread backend.

Worker processes are seeded at pool start: the parent's tracing state is
propagated (child spans are aggregated in-memory and folded back into
the parent tracer, so ``SolveReport.perf["trace"]`` sees sweep work done
in workers), and each worker gets a fresh per-process
:class:`~repro.perf.factorcache.FactorCache` reachable through
:func:`worker_factor_cache`, so picklable tasks can share
factorizations across the items executed by the same worker.
"""

from __future__ import annotations

import math
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional

from .. import trace as _trace
from ..trace import get_tracer

__all__ = [
    "WORKERS_ENV",
    "BACKEND_ENV",
    "BACKENDS",
    "resolve_workers",
    "resolve_backend",
    "sweep_map",
    "worker_factor_cache",
]

#: Environment variable consulted when ``workers`` is None.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"
#: Environment variable consulted when ``backend`` is None.
BACKEND_ENV = "REPRO_SWEEP_BACKEND"
#: Recognised backend names.
BACKENDS = ("serial", "thread", "process")

#: Default FactorCache size seeded into each worker process.
_WORKER_CACHE_ENTRIES = 8

#: Per-process factor cache (created lazily, or by the pool initializer
#: in process-backend workers).  One per OS process by construction.
_WORKER_CACHE = None


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit arg, else env var, else 1.

    Rejects non-integers and values ``<= 0`` with :class:`ValueError`
    (both for the explicit argument and for the environment variable) —
    a typo'd worker count must fail loudly, not silently run serial.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV}={raw!r} is not an integer worker count"
            ) from None
    if isinstance(workers, bool) or not hasattr(type(workers), "__index__"):
        raise ValueError(
            f"workers must be an integer >= 1, got {workers!r} "
            f"({type(workers).__name__})"
        )
    workers = int(workers)
    if workers <= 0:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def resolve_backend(backend: Optional[str] = None) -> str:
    """Effective backend name: explicit arg, else env var, else "thread".

    Unknown names raise :class:`ValueError` listing the valid choices.
    """
    if backend is None:
        raw = os.environ.get(BACKEND_ENV, "").strip().lower()
        if not raw:
            return "thread"
        backend = raw
    backend = str(backend).lower()
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown sweep backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def worker_factor_cache():
    """The per-process :class:`FactorCache` for sweep tasks.

    In a process-backend worker this is the cache created by the pool
    initializer (fresh per pool, sized by the parent); in the parent
    process (serial/thread backends) it is a lazily created
    process-global cache.  Tasks that factor the same matrix for
    several items (duplicate frequency points, repeated corners) key
    into it — cache hits return the identical factorization object, so
    results stay bit-identical with and without hits.
    """
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        from .factorcache import FactorCache

        _WORKER_CACHE = FactorCache(max_entries=_WORKER_CACHE_ENTRIES)
    return _WORKER_CACHE


def _process_worker_init(trace_enabled: bool, cache_entries: int) -> None:
    """Pool initializer: seed per-worker tracer + factor cache."""
    global _WORKER_CACHE
    from .factorcache import FactorCache

    _WORKER_CACHE = FactorCache(max_entries=max(1, int(cache_entries)))
    if trace_enabled and not get_tracer().enabled:
        # in-memory child tracer: spans are aggregated and shipped back
        # to the parent with each chunk result (no JSONL file of its own)
        _trace.enable(None)


class _ChunkTask:
    """Picklable unit of process-backend work: run ``fn`` over a chunk.

    Returns ``(results, trace_summary, cache_counts)`` where the trace
    summary is the child tracer's span/event aggregate for this chunk
    (``None`` when tracing is disabled) and ``cache_counts`` the
    ``(hits, misses)`` delta of the per-worker factor cache.
    """

    __slots__ = ("fn", "chunk")

    def __init__(self, fn: Callable, chunk: List):
        self.fn = fn
        self.chunk = chunk

    def __call__(self):
        tr = get_tracer()
        mark = tr.mark() if tr.enabled else None
        cache = worker_factor_cache()
        h0, m0 = cache.hits, cache.misses
        results = []
        for it in self.chunk:
            if tr.enabled:
                with tr.span("sweep.task"):
                    results.append(self.fn(it))
            else:
                results.append(self.fn(it))
        summary = None
        if tr.enabled:
            summary = tr.summary_since(mark)
            summary.pop("file", None)
        return results, summary, (cache.hits - h0, cache.misses - m0)


def _is_picklable(fn: Callable) -> bool:
    try:
        pickle.dumps(fn)
        return True
    except Exception:
        return False


def _serial_run(task: Callable, items: List, counter: List[int]) -> List:
    results = []
    for it in items:
        counter[0] += 1
        results.append(task(it))
    return results


def sweep_map(
    fn: Callable,
    items: Iterable,
    workers: Optional[int] = None,
    stats: Optional[dict] = None,
    backend: Optional[str] = None,
    chunksize: Optional[int] = None,
) -> List:
    """Map ``fn`` over ``items`` preserving order; parallel when asked.

    Parameters
    ----------
    fn / items:
        The per-point work and the sweep points.  ``fn`` must be a pure,
        deterministic function of its item and must not depend on
        execution order — only result *ordering* is deterministic.  For
        the process backend ``fn``, the items and the results must all
        be picklable; an unpicklable ``fn`` silently degrades to the
        thread backend (recorded in ``stats``).
    workers:
        Worker count; ``None`` consults :data:`WORKERS_ENV`.  Values
        that are not integers >= 1 raise :class:`ValueError`.  A single
        item (or ``workers=1``) runs the serial path whatever the
        backend.
    backend:
        ``"serial"`` | ``"thread"`` | ``"process"``; ``None`` consults
        :data:`BACKEND_ENV`, defaulting to ``"thread"``.
    chunksize:
        Process-backend items per dispatched chunk.  Defaults to
        ``ceil(len(items) / (4 * workers))`` — large enough to amortise
        pickling, small enough to load-balance.  Chunking never affects
        results or their order.
    stats:
        Optional dict filled with ``{"workers", "tasks", "attempted",
        "backend"}`` describing what actually ran — the benchmarks
        record it.  The process backend adds ``"chunksize"`` and
        ``"worker_cache"`` (per-worker factor-cache hit/miss totals).
        ``backend`` reports the backend that *executed* (after any
        fallback), and ``backend_requested`` appears when a fallback
        demoted the requested backend (running serial because there is
        nothing to parallelise — one worker or one item — is the
        requested backend's degenerate case, not a fallback).
        The dict is populated even when ``fn`` raises (``attempted``
        counts the items whose execution started before the failure).

    Exceptions raised by ``fn`` propagate to the caller in every
    backend (the first failing item in item order wins under threads
    and processes, as with ``map``).
    """
    items = list(items)
    w = resolve_workers(workers)
    requested = resolve_backend(backend)
    effective = min(w, len(items)) if items else 1
    degenerate = effective <= 1  # nothing to parallelise: not a fallback
    ran_backend = requested if effective > 1 else "serial"
    tr = get_tracer()
    task = fn
    if tr.enabled:
        def task(it, _fn=fn, _tr=tr):
            with _tr.span("sweep.task"):
                return _fn(it)
    attempted = [0]
    extra_stats = {}
    # mutable execution record: fallbacks update it *before* running
    # tasks, so a task exception still leaves stats reporting the
    # backend that actually executed
    ran = {"backend": ran_backend, "workers": effective}
    results: List
    try:
        if tr.enabled:
            sweep_span = tr.span("sweep.map", tasks=len(items), backend=requested)
            sweep_span.__enter__()
        else:
            sweep_span = None
        try:
            if effective <= 1 or requested == "serial":
                ran["backend"], ran["workers"] = "serial", 1
                results = _serial_run(task, items, attempted)
            elif requested == "process":
                results = _process_map(
                    fn, task, items, effective, chunksize, attempted,
                    extra_stats, tr, ran,
                )
            else:
                results = _thread_map(task, items, effective, attempted, ran)
        finally:
            if sweep_span is not None:
                sweep_span.annotate(
                    workers=ran["workers"], attempted=attempted[0],
                    ran=ran["backend"],
                )
                sweep_span.__exit__(None, None, None)
    finally:
        if stats is not None:
            stats["workers"] = ran["workers"]
            stats["tasks"] = len(items)
            stats["attempted"] = attempted[0]
            stats["backend"] = ran["backend"]
            if ran["backend"] != requested and not degenerate:
                stats["backend_requested"] = requested
            stats.update(extra_stats)
    return results


def _thread_map(
    task: Callable, items: List, effective: int, attempted: List[int], ran: dict
):
    """Thread-pool dispatch with the historical serial fallback."""
    pool = None
    try:
        # Pool creation and submission are the only steps allowed to
        # trigger the serial fallback; an OSError/RuntimeError raised by
        # ``fn`` itself must propagate, not silently re-run the sweep.
        pool = ThreadPoolExecutor(max_workers=effective)
        futures = [pool.submit(task, it) for it in items]
    except (OSError, RuntimeError):
        # thread creation refused (container limits)
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        ran["backend"], ran["workers"] = "serial", 1
        return _serial_run(task, items, attempted)
    ran["backend"], ran["workers"] = "thread", effective
    attempted[0] = len(items)
    try:
        return [f.result() for f in futures]
    finally:
        pool.shutdown(wait=True)


def _process_map(
    fn: Callable,
    task: Callable,
    items: List,
    effective: int,
    chunksize: Optional[int],
    attempted: List[int],
    extra_stats: dict,
    tr,
    ran: dict,
):
    """Process-pool dispatch: chunked, seeded, with graceful fallback.

    Falls back to the thread backend when the task cannot be pickled or
    the pool cannot be created, and to a serial re-run when the pool
    breaks mid-flight (tasks are required to be pure, so re-running is
    safe).  ``ran`` records the backend that actually executed.
    """
    if not _is_picklable(fn):
        if tr.enabled:
            tr.event("sweep.process_fallback", reason="unpicklable")
        return _thread_map(task, items, effective, attempted, ran)

    if chunksize is None:
        chunksize = max(1, math.ceil(len(items) / (4 * effective)))
    chunksize = max(1, int(chunksize))
    chunks = [items[lo : lo + chunksize] for lo in range(0, len(items), chunksize)]

    pool = None
    try:
        pool = ProcessPoolExecutor(
            max_workers=effective,
            initializer=_process_worker_init,
            initargs=(bool(tr.enabled), _WORKER_CACHE_ENTRIES),
        )
        futures = [pool.submit(_ChunkTask(fn, chunk)) for chunk in chunks]
    except (OSError, RuntimeError, pickle.PicklingError):
        # process creation refused (sandbox/container limits) or a
        # late pickling failure: degrade to threads
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        if tr.enabled:
            tr.event("sweep.process_fallback", reason="pool_unavailable")
        return _thread_map(task, items, effective, attempted, ran)

    ran["backend"], ran["workers"] = "process", effective
    attempted[0] = len(items)
    extra_stats["chunksize"] = chunksize
    hits = misses = 0
    results = []
    try:
        for f in futures:
            try:
                chunk_results, summary, cache_counts = f.result()
            except BrokenProcessPool:
                # a worker died (OOM-killed, sandbox signal).  Tasks are
                # pure by contract, so the deterministic recovery is a
                # serial re-run of the whole sweep.
                pool.shutdown(wait=True, cancel_futures=True)
                if tr.enabled:
                    tr.event("sweep.process_fallback", reason="broken_pool")
                attempted[0] = 0
                ran["backend"], ran["workers"] = "serial", 1
                return _serial_run(task, items, attempted)
            results.extend(chunk_results)
            hits += cache_counts[0]
            misses += cache_counts[1]
            if summary and tr.enabled:
                tr.absorb(summary)
    finally:
        pool.shutdown(wait=True)
    if hits or misses:
        extra_stats["worker_cache"] = {"factor_hits": hits, "factor_misses": misses}
    return results
