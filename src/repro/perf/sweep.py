"""Deterministic parallel executor for embarrassingly parallel sweeps.

AC/HB frequency points, phase-noise Monte-Carlo paths, ROM transfer
sweeps and EM panel-matrix row blocks are all independent work items.
:func:`sweep_map` runs them through a ``concurrent.futures`` thread pool
when ``workers > 1`` and falls back to a plain serial loop otherwise (or
when the pool cannot be created, e.g. in restricted environments).

Two invariants the adopters rely on:

* **deterministic ordering** — results come back in item order,
  regardless of completion order or worker count;
* **worker-count independence** — the per-item computation never
  depends on ``workers``, so serial and parallel runs produce
  bit-identical outputs (the equivalence tests in
  ``tests/test_perf.py`` pin this down).

The default worker count is 1 (serial); set the environment variable
``REPRO_SWEEP_WORKERS`` or pass ``workers=`` explicitly to go parallel.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional

__all__ = ["WORKERS_ENV", "resolve_workers", "sweep_map"]

#: Environment variable consulted when ``workers`` is None.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit arg, else env var, else 1."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        try:
            workers = int(raw) if raw else 1
        except ValueError:
            workers = 1
    return max(1, int(workers))


def sweep_map(
    fn: Callable,
    items: Iterable,
    workers: Optional[int] = None,
    stats: Optional[dict] = None,
) -> List:
    """Map ``fn`` over ``items`` preserving order; parallel when asked.

    Parameters
    ----------
    fn / items:
        The per-point work and the sweep points.  ``fn`` must not
        depend on execution order (the executor guarantees nothing
        about it) — only result *ordering* is deterministic.
    workers:
        Thread count; ``None`` consults :data:`WORKERS_ENV`, and any
        value <= 1 (or a single item) runs the serial fallback.
    stats:
        Optional dict filled with ``{"workers", "tasks"}`` describing
        what actually ran — the benchmarks record it.

    Exceptions raised by ``fn`` propagate to the caller in both modes
    (the first failing item wins under threads, as with ``map``).
    """
    items = list(items)
    w = resolve_workers(workers)
    effective = min(w, len(items)) if items else 1
    results: List
    if effective <= 1:
        effective = 1
        results = [fn(it) for it in items]
    else:
        try:
            with ThreadPoolExecutor(max_workers=effective) as ex:
                results = list(ex.map(fn, items))
        except (OSError, RuntimeError):
            # thread creation refused (container limits): serial fallback
            effective = 1
            results = [fn(it) for it in items]
    if stats is not None:
        stats["workers"] = effective
        stats["tasks"] = len(items)
    return results
