"""Deterministic, fault-tolerant parallel executor for sweeps.

AC/HB frequency points, phase-noise Monte-Carlo paths, ROM transfer
sweeps and EM panel-matrix row blocks are all independent work items.
:func:`sweep_map` runs them through one of three backends:

``"serial"``
    A plain loop.  The reference behaviour every other backend must
    reproduce bit-for-bit.
``"thread"``
    A ``concurrent.futures`` thread pool.  Cheap to spin up and fine
    when the per-item work releases the GIL (sparse LU, BLAS), but
    pure-Python device evaluation serialises on the GIL and threads can
    *lose* to serial.
``"process"``
    A ``concurrent.futures.ProcessPoolExecutor``.  Items are shipped to
    worker processes in contiguous chunks, so CPU-bound Python work
    scales with cores.  Requires the task callable, the items and the
    results to be picklable; when the task is not picklable the call
    transparently degrades to the thread backend (recorded in
    ``stats["backend"]``).

Three invariants the adopters rely on:

* **deterministic ordering** — results come back in item order,
  regardless of completion order, chunking, backend or worker count;
* **backend/worker-count independence** — the per-item computation
  never depends on ``workers`` or the backend, so serial, threaded and
  process runs produce bit-identical outputs (pinned by
  ``tests/test_sweep_backends.py``);
* **purity** — tasks must be deterministic functions of their item (no
  hidden mutable state): the executor may re-run items after worker
  crashes, timeouts or transient faults, and dispatch gives no ordering
  guarantee during execution.

Configuration: ``workers=`` / ``backend=`` arguments win; otherwise the
``REPRO_SWEEP_WORKERS`` / ``REPRO_SWEEP_BACKEND`` environment variables
apply; the defaults are one worker (serial) and the thread backend.

Fault tolerance
---------------

Long sweeps (Monte-Carlo ensembles, EM extraction batches, corner
exploration) must survive individual solves hanging, crashing a worker,
or failing transiently.  :func:`sweep_map` grows four orthogonal knobs
(arguments win; ``REPRO_SWEEP_TIMEOUT`` / ``REPRO_SWEEP_RETRIES`` /
``REPRO_SWEEP_CHECKPOINT`` environment variables apply otherwise):

``timeout=``
    Per-item deadline in seconds.  Enforcement strength is per backend:
    the process backend interrupts the item *inside* the worker with
    ``SIGALRM`` (tasks run on the worker's main thread) and backstops a
    stuck worker by replacing the whole pool; the serial backend uses
    ``SIGALRM`` when running on the main thread and post-hoc detection
    otherwise; the thread backend can only *abandon* the worker thread
    (soft timeout — the thread leaks until its item returns).
``retries=`` / ``retry_backoff=`` / ``retry_on=``
    Bounded re-execution of failed items with deterministic jittered
    exponential backoff (:func:`backoff_seconds` — no RNG state, so two
    runs of the same sweep back off identically).  ``retry_on`` narrows
    which exception types are transient (default: any ``Exception``)
    and matches identically on every backend: a worker exception that
    cannot be pickled back to the parent arrives as
    :class:`SweepRemoteError`, which carries the original type's MRO
    and matches ``retry_on`` as the original would have.
``on_item_failure=``
    ``"raise"`` (default) fails the sweep on the first exhausted item;
    ``"retry"`` is ``"raise"`` with a default retry budget of one;
    ``"skip"`` quarantines exhausted items — their result slot is
    ``None`` and the sweep returns partial results plus a per-item
    ledger (``stats["items"]``, a list of
    :class:`~repro.robust.report.SweepItemRecord` dicts with wall time,
    attempts, backoff and failure cause per item).
``checkpoint=`` / ``checkpoint_tag=``
    Path of an append-only JSONL checkpoint.  Completed items are
    persisted keyed by a content address (fingerprint of ``fn`` +
    pickle hash of the item), so an interrupted sweep — including one
    torn down by ``KeyboardInterrupt`` or a broken pool — resumes
    executing only the items not already on disk.  ``checkpoint_tag``
    pins the fingerprint explicitly when ``fn`` is rebuilt between runs
    (closures, functools.partial) and would not hash stably.
    Restoring unpickles the stored results, so the checkpoint file must
    come from a trusted writer; set ``REPRO_SWEEP_CHECKPOINT_KEY`` to
    authenticate every line with an HMAC and have restore ignore
    tampered or unauthenticated lines instead of unpickling them.

Any of these knobs (or an installed
:func:`repro.robust.faultinject.chaos_sweeps` harness) routes the sweep
through the resilient engine, which dispatches process-backend work
per-item and recovers crashed workers by replaying only the suspects —
items whose in-flight breadcrumb file survived the crash — in isolated
single-worker pools, resubmitting undispatched items to a fresh pool
for free.  Without them, the historical chunked fast paths run
unchanged.

Worker processes are seeded at pool start: the parent's tracing state is
propagated (child spans are aggregated in-memory and folded back into
the parent tracer, so ``SolveReport.perf["trace"]`` sees sweep work done
in workers), and each worker gets a fresh per-process
:class:`~repro.perf.factorcache.FactorCache` reachable through
:func:`worker_factor_cache`, so picklable tasks can share
factorizations across the items executed by the same worker.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import json
import math
import os
import pickle
import shutil
import signal
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures import wait as _futures_wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional

from .. import trace as _trace
from ..robust.report import SweepItemRecord
from ..trace import get_tracer

__all__ = [
    "WORKERS_ENV",
    "BACKEND_ENV",
    "TIMEOUT_ENV",
    "RETRIES_ENV",
    "CHECKPOINT_ENV",
    "CHECKPOINT_KEY_ENV",
    "CHECKPOINT_COMPACT_ENV",
    "MAX_ITEM_RECORDS_ENV",
    "BACKENDS",
    "ON_ITEM_FAILURE_MODES",
    "SweepItemTimeout",
    "SweepWorkerCrash",
    "SweepRemoteError",
    "SweepItemSkipped",
    "SkippedSlot",
    "backoff_seconds",
    "resolve_workers",
    "resolve_backend",
    "resolve_timeout",
    "resolve_retries",
    "resolve_checkpoint",
    "resolve_checkpoint_compact",
    "resolve_max_item_records",
    "sweep_map",
    "worker_factor_cache",
]

#: Environment variable consulted when ``workers`` is None.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"
#: Environment variable consulted when ``backend`` is None.
BACKEND_ENV = "REPRO_SWEEP_BACKEND"
#: Environment variable consulted when ``timeout`` is None.
TIMEOUT_ENV = "REPRO_SWEEP_TIMEOUT"
#: Environment variable consulted when ``retries`` is None.
RETRIES_ENV = "REPRO_SWEEP_RETRIES"
#: Environment variable consulted when ``checkpoint`` is None.
CHECKPOINT_ENV = "REPRO_SWEEP_CHECKPOINT"
#: Optional secret for per-line checkpoint HMACs.  When set, saved
#: lines are authenticated and unauthenticated/tampered lines are
#: ignored on restore.  Without it the checkpoint file must be trusted:
#: restore unpickles result blobs, and unpickling attacker-controlled
#: data executes arbitrary code.
CHECKPOINT_KEY_ENV = "REPRO_SWEEP_CHECKPOINT_KEY"
#: Checkpoint-compaction size trigger in bytes.  Opening a checkpoint
#: file larger than this that contains superseded or corrupt lines
#: rewrites it atomically, keeping only the latest line per item key
#: (across every fingerprint sharing the file).  ``0`` disables
#: compaction; unset means 4 MiB.
CHECKPOINT_COMPACT_ENV = "REPRO_SWEEP_CHECKPOINT_COMPACT"
#: Cap on detailed ``stats["items"]`` ledger entries (see
#: :func:`resolve_max_item_records`).  ``0`` means unlimited; unset
#: means 10000.
MAX_ITEM_RECORDS_ENV = "REPRO_SWEEP_MAX_ITEM_RECORDS"
#: Recognised backend names.
BACKENDS = ("serial", "thread", "process")
#: Recognised ``on_item_failure`` policies.
ON_ITEM_FAILURE_MODES = ("raise", "retry", "skip")

#: Default base of the jittered exponential retry backoff, in seconds.
_DEFAULT_BACKOFF = 0.05

#: Default checkpoint-compaction trigger (bytes).
_DEFAULT_COMPACT_BYTES = 4 * 1024 * 1024

#: Default ``stats["items"]`` ledger cap (detailed records).
_DEFAULT_MAX_ITEM_RECORDS = 10000

#: Default FactorCache size seeded into each worker process.
_WORKER_CACHE_ENTRIES = 8

#: Per-process factor cache (created lazily, or by the pool initializer
#: in process-backend workers).  One per OS process by construction.
_WORKER_CACHE = None


class SweepItemTimeout(TimeoutError):
    """A sweep item exceeded its per-item deadline.

    ``enforced`` records the mechanism that caught it — ``"signal"``
    (``SIGALRM`` interrupted the item mid-flight), ``"posthoc"`` (the
    item finished but over budget; its result is discarded for
    determinism), ``"abandoned"`` (thread backend: the worker thread
    was abandoned and leaks until its item returns) or ``"kill"``
    (process backend: the worker ignored its in-worker alarm and the
    whole pool was replaced).

    All constructor arguments ride through ``args`` so instances
    pickle across process boundaries intact.
    """

    def __init__(self, index: int, deadline: float, enforced: str = "signal"):
        super().__init__(index, deadline, enforced)
        self.index = index
        self.deadline = deadline
        self.enforced = enforced

    def __str__(self):
        return (
            f"sweep item {self.index} exceeded its {self.deadline:.6g} s "
            f"deadline (enforced: {self.enforced})"
        )


class SweepItemSkipped(RuntimeError):
    """A consumer touched a result slot that ``on_item_failure="skip"``
    quarantined.

    ``sweep_map`` leaves ``None`` (or a :class:`SkippedSlot` placeholder,
    for consumers that wrap their results) in the slot of an item whose
    retries were exhausted.  Downstream code that cannot tolerate holes
    raises this instead of an opaque ``TypeError``/``AttributeError``,
    with guidance: inspect ``stats["items"]`` for the failure causes, or
    run with ``on_item_failure="raise"`` to surface the original error.
    """

    def __init__(self, index, context: str = ""):
        super().__init__(index, context)
        self.index = index
        self.context = context

    def __str__(self):
        where = f" in {self.context}" if self.context else ""
        return (
            f"sweep item {self.index} was skipped by on_item_failure='skip'"
            f"{where}; its result slot is empty.  Pass stats={{}} to the sweep "
            "and inspect stats['items'] for the recorded failure cause, or "
            "rerun with on_item_failure='raise' to surface the original error."
        )


class SkippedSlot:
    """Falsy placeholder for a skipped sweep item's result slot.

    Consumers that hand sweep results straight back to callers (e.g.
    ``hb_sweep``) replace ``None`` holes with this so that accidental
    attribute access fails loudly with :class:`SweepItemSkipped`
    guidance instead of an ``AttributeError`` on ``None``.  Test for it
    with ``bool(slot)`` / ``isinstance(slot, SkippedSlot)``.
    """

    __slots__ = ("index", "context")

    def __init__(self, index, context: str = ""):
        object.__setattr__(self, "index", index)
        object.__setattr__(self, "context", context)

    def __bool__(self):
        return False

    def __repr__(self):
        return f"SkippedSlot(index={self.index!r}, context={self.context!r})"

    def __getattr__(self, item):
        raise SweepItemSkipped(
            object.__getattribute__(self, "index"),
            object.__getattribute__(self, "context"),
        )


class SweepWorkerCrash(RuntimeError):
    """A worker process died while (probably) executing a sweep item.

    Raised against the item whose in-flight breadcrumb survived the
    crash once its isolated replay budget is exhausted — i.e. the item
    keeps killing workers and is presumed poisonous.
    """

    def __init__(self, index: int, detail: str = "worker process died"):
        super().__init__(index, detail)
        self.index = index
        self.detail = detail

    def __str__(self):
        return f"sweep item {self.index}: {self.detail}"


class SweepRemoteError(RuntimeError):
    """A worker-side exception that could not be pickled back to the
    parent process.

    The original object is lost at the process boundary, so this
    wrapper records the original type's qualified name (``original``)
    and the qualified names of its whole MRO (``mro``).  ``retry_on``
    matching consults ``mro`` — never this wrapper's own type — so an
    unpicklable ``MyError`` still matches ``retry_on=(MyError,)`` (and
    any of its bases) exactly as it would on the serial and thread
    backends.

    All constructor arguments ride through ``args`` so instances
    pickle across process boundaries intact.
    """

    def __init__(self, original: str, message: str, mro: tuple = ()):
        mro = tuple(mro)
        super().__init__(original, message, mro)
        self.original = original
        self.message = message
        self.mro = mro

    def __str__(self):
        return (
            f"{self.original}: {self.message} "
            "(original exception was not picklable across the process "
            "boundary)"
        )


def _qualify(tp: type) -> str:
    return f"{getattr(tp, '__module__', '')}.{getattr(tp, '__qualname__', '')}"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit arg, else env var, else 1.

    Rejects non-integers and values ``<= 0`` with :class:`ValueError`
    (both for the explicit argument and for the environment variable) —
    a typo'd worker count must fail loudly, not silently run serial.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV}={raw!r} is not an integer worker count"
            ) from None
    if isinstance(workers, bool) or not hasattr(type(workers), "__index__"):
        raise ValueError(
            f"workers must be an integer >= 1, got {workers!r} "
            f"({type(workers).__name__})"
        )
    workers = int(workers)
    if workers <= 0:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def resolve_backend(backend: Optional[str] = None) -> str:
    """Effective backend name: explicit arg, else env var, else "thread".

    Unknown names raise :class:`ValueError` listing the valid choices.
    """
    if backend is None:
        raw = os.environ.get(BACKEND_ENV, "").strip().lower()
        if not raw:
            return "thread"
        backend = raw
    backend = str(backend).lower()
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown sweep backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def resolve_timeout(timeout: Optional[float] = None) -> Optional[float]:
    """Effective per-item deadline: explicit arg, else env var, else None."""
    if timeout is None:
        raw = os.environ.get(TIMEOUT_ENV, "").strip()
        if not raw:
            return None
        try:
            timeout = float(raw)
        except ValueError:
            raise ValueError(
                f"{TIMEOUT_ENV}={raw!r} is not a number of seconds"
            ) from None
    timeout = float(timeout)
    if not math.isfinite(timeout) or timeout <= 0:
        raise ValueError(f"timeout must be a finite number > 0, got {timeout!r}")
    return timeout


def resolve_retries(
    retries: Optional[int] = None, on_item_failure: str = "raise"
) -> int:
    """Effective retry budget: explicit arg, else env var, else a
    policy-dependent default (1 under ``"retry"``, 0 otherwise)."""
    if retries is None:
        raw = os.environ.get(RETRIES_ENV, "").strip()
        if not raw:
            return 1 if on_item_failure == "retry" else 0
        try:
            retries = int(raw)
        except ValueError:
            raise ValueError(
                f"{RETRIES_ENV}={raw!r} is not an integer retry count"
            ) from None
    if isinstance(retries, bool) or not hasattr(type(retries), "__index__"):
        raise ValueError(f"retries must be an integer >= 0, got {retries!r}")
    retries = int(retries)
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    return retries


def resolve_checkpoint(checkpoint=None) -> Optional[str]:
    """Effective checkpoint path: explicit arg, else env var, else None."""
    if checkpoint is None:
        raw = os.environ.get(CHECKPOINT_ENV, "").strip()
        return raw or None
    return os.fspath(checkpoint)


def resolve_checkpoint_compact(value=None) -> int:
    """Effective checkpoint-compaction trigger in bytes.

    Explicit arg, else :data:`CHECKPOINT_COMPACT_ENV`, else 4 MiB.
    ``0`` disables compaction; negative or non-numeric values raise
    :class:`ValueError`.
    """
    if value is None:
        raw = os.environ.get(CHECKPOINT_COMPACT_ENV, "").strip()
        if not raw:
            return _DEFAULT_COMPACT_BYTES
        value = raw
    try:
        n = int(float(value))
    except (TypeError, ValueError):
        raise ValueError(
            f"checkpoint compact trigger must be a byte count >= 0, got {value!r}"
        )
    if n < 0:
        raise ValueError(
            f"checkpoint compact trigger must be a byte count >= 0, got {value!r}"
        )
    return n


def resolve_max_item_records(value=None) -> int:
    """Effective cap on detailed ``stats["items"]`` ledger entries.

    Explicit arg, else :data:`MAX_ITEM_RECORDS_ENV`, else 10000.  ``0``
    means unlimited; negative or non-numeric values raise
    :class:`ValueError`.  When a sweep has more items than the cap, the
    ledger keeps every non-``ok`` record first (failures are what the
    ledger is *for*), pads with ``ok`` records in index order, and
    reports the exact per-status tallies in ``stats["status_counts"]``
    plus the overflow in ``stats["items_truncated"]`` — bounded memory
    on million-point sweeps without losing the rollup arithmetic.
    """
    if value is None:
        raw = os.environ.get(MAX_ITEM_RECORDS_ENV, "").strip()
        if not raw:
            return _DEFAULT_MAX_ITEM_RECORDS
        value = raw
    try:
        n = int(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"max_item_records must be an integer >= 0, got {value!r}"
        )
    if n < 0:
        raise ValueError(
            f"max_item_records must be an integer >= 0, got {value!r}"
        )
    return n


def _resolve_on_item_failure(mode: Optional[str]) -> str:
    if mode is None:
        return "raise"
    mode = str(mode).lower()
    if mode not in ON_ITEM_FAILURE_MODES:
        raise ValueError(
            f"unknown on_item_failure mode {mode!r}; "
            f"expected one of {ON_ITEM_FAILURE_MODES}"
        )
    return mode


def _resolve_retry_on(retry_on) -> tuple:
    if retry_on is None:
        return (Exception,)
    if isinstance(retry_on, type):
        retry_on = (retry_on,)
    retry_on = tuple(retry_on)
    for t in retry_on:
        if not (isinstance(t, type) and issubclass(t, Exception)):
            raise ValueError(
                f"retry_on entries must be Exception subclasses, got {t!r}"
            )
    return retry_on


def backoff_seconds(index: int, attempt: int, base: float = _DEFAULT_BACKOFF) -> float:
    """Deterministic jittered exponential backoff before retrying an item.

    ``base * 2**(attempt-1)`` scaled by a jitter factor in ``[0.5, 1.5)``
    derived from ``sha256(f"{index}:{attempt}")`` — no RNG state, so a
    re-run of the same sweep sleeps identically, and simultaneous
    retries of different items decorrelate.
    """
    if attempt <= 0 or base <= 0:
        return 0.0
    digest = hashlib.sha256(f"{index}:{attempt}".encode("ascii")).digest()
    frac = int.from_bytes(digest[:4], "big") / 2.0**32
    return base * (2.0 ** (attempt - 1)) * (0.5 + frac)


def worker_factor_cache():
    """The per-process :class:`FactorCache` for sweep tasks.

    In a process-backend worker this is the cache created by the pool
    initializer (fresh per pool, sized by the parent); in the parent
    process (serial/thread backends) it is a lazily created
    process-global cache.  Tasks that factor the same matrix for
    several items (duplicate frequency points, repeated corners) key
    into it — cache hits return the identical factorization object, so
    results stay bit-identical with and without hits.
    """
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        from .factorcache import FactorCache

        _WORKER_CACHE = FactorCache(max_entries=_WORKER_CACHE_ENTRIES)
    return _WORKER_CACHE


def _process_worker_init(trace_enabled: bool, cache_entries: int) -> None:
    """Pool initializer: seed per-worker tracer + factor cache."""
    global _WORKER_CACHE
    from .factorcache import FactorCache

    _WORKER_CACHE = FactorCache(max_entries=max(1, int(cache_entries)))
    if trace_enabled and not get_tracer().enabled:
        # in-memory child tracer: spans are aggregated and shipped back
        # to the parent with each chunk result (no JSONL file of its own)
        _trace.enable(None)


def _active_chaos():
    """The installed chaos harness, if any (lazy import: no cycle)."""
    try:
        from ..robust.faultinject import active_sweep_chaos
    except Exception:  # pragma: no cover - degenerate import environment
        return None
    return active_sweep_chaos()


def _can_alarm() -> bool:
    """True when a SIGALRM deadline can be armed right here (POSIX +
    main thread — signal handlers only fire on the main thread)."""
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


def _guarded_call(fn: Callable, item, index: int, timeout: Optional[float], chaos):
    """Run chaos injection + ``fn(item)``, under a SIGALRM deadline when
    the platform and thread allow hard enforcement.

    The chaos ``before_item`` hook runs *inside* the alarm window so an
    injected hang is interrupted exactly like a genuinely stuck solve.
    """

    def _body():
        if chaos is not None:
            chaos.before_item(index)
        return fn(item)

    if timeout is None or not _can_alarm():
        return _body()

    def _on_alarm(signum, frame):
        raise SweepItemTimeout(index, timeout, "signal")

    prev = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return _body()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, prev)


# -- crash breadcrumbs --------------------------------------------------
#
# Process-backend workers touch ``inflight_<index>`` in a parent-owned
# scratch directory as an item starts and remove it in a ``finally``.
# A hard crash (os._exit, OOM kill, segfault) skips the ``finally``, so
# after a BrokenProcessPool the surviving files name exactly the items
# that were executing when the pool died — the crash *suspects*.  Items
# with no breadcrumb never started and are resubmitted for free.


def _inflight_path(scratch: str, index: int) -> str:
    return os.path.join(scratch, f"inflight_{int(index)}")


def _mark_inflight(scratch: str, index: int) -> None:
    try:
        with open(_inflight_path(scratch, index), "wb"):
            pass
    except OSError:  # pragma: no cover - scratch dir raced away
        pass


def _clear_inflight(scratch: str, index: int) -> None:
    try:
        os.remove(_inflight_path(scratch, index))
    except OSError:
        pass


def _inflight_started(scratch: str, index: int) -> Optional[float]:
    """Wall-clock time at which an item started executing in a worker,
    read off its breadcrumb file's mtime; ``None`` when the item has
    not started yet (or already finished and cleared its breadcrumb).
    This is what the parent's hard-kill backstop times against — queue
    wait must never count toward an item's deadline allowance."""
    try:
        return os.path.getmtime(_inflight_path(scratch, index))
    except OSError:
        return None


class _ItemCall:
    """Picklable unit of resilient process-backend work: one item, one
    attempt, with its deadline armed inside the worker.

    Failures are returned in-band — ``(result, failure, wall, summary,
    cache_delta)`` — so the parent gets the attempt's wall time and
    trace aggregate even when the item failed.  Only a hard worker
    death surfaces as a broken future.
    """

    __slots__ = ("fn", "item", "index", "attempt", "timeout", "chaos", "scratch")

    def __init__(self, fn, item, index, attempt, timeout, chaos, scratch):
        self.fn = fn
        self.item = item
        self.index = index
        self.attempt = attempt
        self.timeout = timeout
        self.chaos = chaos
        self.scratch = scratch

    def __call__(self):
        tr = get_tracer()
        mark = tr.mark() if tr.enabled else None
        cache = worker_factor_cache()
        h0, m0 = cache.hits, cache.misses
        _mark_inflight(self.scratch, self.index)
        result = None
        failure = None
        t0 = time.perf_counter()
        try:
            if tr.enabled:
                with tr.span("sweep.task", index=self.index, attempt=self.attempt):
                    result = _guarded_call(
                        self.fn, self.item, self.index, self.timeout, self.chaos
                    )
            else:
                result = _guarded_call(
                    self.fn, self.item, self.index, self.timeout, self.chaos
                )
        except Exception as exc:
            failure = exc
        finally:
            _clear_inflight(self.scratch, self.index)
        wall = time.perf_counter() - t0
        summary = None
        if tr.enabled:
            summary = tr.summary_since(mark)
            summary.pop("file", None)
        if failure is not None:
            try:
                pickle.loads(pickle.dumps(failure))
            except Exception:
                mro = tuple(
                    _qualify(c)
                    for c in type(failure).__mro__
                    if isinstance(c, type) and issubclass(c, BaseException)
                )
                failure = SweepRemoteError(
                    _qualify(type(failure)), str(failure), mro
                )
        return result, failure, wall, summary, (cache.hits - h0, cache.misses - m0)


# -- checkpoint store ---------------------------------------------------


def _fn_fingerprint(fn: Callable, tag=None) -> str:
    """Content fingerprint of the task callable for checkpoint keys.

    ``tag`` (from ``checkpoint_tag=``) pins it explicitly; otherwise the
    pickle of ``fn`` is hashed, falling back to module/qualname/bytecode
    for unpicklable callables.
    """
    if tag is not None:
        return str(tag)
    try:
        blob = pickle.dumps(fn)
    except Exception:
        code = getattr(fn, "__code__", None)
        parts = [
            getattr(fn, "__module__", "") or "",
            getattr(fn, "__qualname__", "") or repr(fn),
        ]
        if code is not None:
            parts.append(repr(code.co_code))
        blob = "|".join(parts).encode("utf-8", "replace")
    return hashlib.sha256(blob).hexdigest()[:16]


def _item_key(fingerprint: str, item) -> str:
    try:
        blob = pickle.dumps(item)
    except Exception:
        blob = repr(item).encode("utf-8", "replace")
    return fingerprint + ":" + hashlib.sha256(blob).hexdigest()[:32]


class _CheckpointStore:
    """Append-only JSONL store of completed sweep items.

    One line per completed item: ``{"fp", "key", "index", "result"}``
    with the result pickled and base64'd.  Lines whose fingerprint does
    not match the current sweep's are ignored (several sweeps may share
    a file), as are truncated/corrupt lines from an interrupted write —
    resume is best-effort by construction, never worse than recomputing.

    **Trust boundary**: restore unpickles the result blobs, and
    unpickling attacker-controlled bytes executes arbitrary code, so a
    checkpoint file (including one named by :data:`CHECKPOINT_ENV`)
    must only ever come from a trusted writer.  Setting
    :data:`CHECKPOINT_KEY_ENV` adds a per-line HMAC-SHA256 over
    ``fp|key|result``: saved lines carry a ``"mac"`` field, and restore
    ignores any line whose MAC is missing or wrong — tampered or
    foreign lines are recomputed instead of unpickled.
    """

    def __init__(self, path, fingerprint: str):
        self.path = os.fspath(path)
        self.fingerprint = fingerprint
        self.saved = 0
        self.compacted = None
        self._results = {}
        raw_key = os.environ.get(CHECKPOINT_KEY_ENV, "")
        self._key = raw_key.encode("utf-8") if raw_key else None
        try:
            fh = open(self.path, "r", encoding="utf-8")
        except OSError:
            return
        # latest surviving raw line per (fp, key) — every fingerprint
        # sharing the file, lines kept verbatim so foreign MACs survive
        # a compaction rewrite untouched
        latest: dict = {}
        total = 0
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                total += 1
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue  # torn/corrupt: unusable, compactable
                if not isinstance(rec, dict) or "key" not in rec:
                    continue
                mine = rec.get("fp") == fingerprint
                if mine and self._key is not None and not self._authentic(rec):
                    continue  # tampered: never restored, never kept
                latest[(rec.get("fp"), rec["key"])] = line
                if not mine:
                    continue
                try:
                    result = pickle.loads(base64.b64decode(rec["result"]))
                except Exception:
                    continue
                self._results[rec["key"]] = result
        self._maybe_compact(latest, total)

    def _maybe_compact(self, latest: dict, total: int) -> None:
        """Atomically rewrite the file when it is both big and garbagey.

        Triggered at store open, when the file exceeds the
        :func:`resolve_checkpoint_compact` byte budget *and* holds lines
        that no resume can use (superseded duplicates, torn tails,
        tampered lines).  The rewrite keeps exactly the latest line per
        ``(fingerprint, key)`` — verbatim, so lines belonging to other
        sweeps (including their MACs) ride through — via tmp-file +
        ``os.replace``, so a crash mid-compaction leaves the original.
        """
        limit = resolve_checkpoint_compact()
        if limit <= 0 or total <= len(latest):
            return
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return
        if size <= limit:
            return
        blob = "".join(line + "\n" for line in latest.values())
        d = os.path.dirname(self.path) or "."
        try:
            fd, tmp = tempfile.mkstemp(prefix=".ckpt-compact-", dir=d)
        except OSError:  # pragma: no cover - unwritable checkpoint dir
            return
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(blob)
            os.replace(tmp, self.path)
        except OSError:  # pragma: no cover - rewrite failed: keep original
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self.compacted = {
            "before_bytes": size,
            "after_bytes": len(blob.encode("utf-8")),
            "dropped_lines": total - len(latest),
        }

    def _mac(self, rec: dict) -> str:
        payload = "|".join(
            (str(rec.get("fp", "")), str(rec.get("key", "")), str(rec.get("result", "")))
        ).encode("utf-8")
        return hmac.new(self._key, payload, hashlib.sha256).hexdigest()

    def _authentic(self, rec: dict) -> bool:
        mac = rec.get("mac")
        return isinstance(mac, str) and hmac.compare_digest(mac, self._mac(rec))

    def __contains__(self, key: str) -> bool:
        return key in self._results

    def load(self, key: str):
        return self._results[key]

    def put(self, key: str, index: int, result) -> None:
        try:
            blob = base64.b64encode(pickle.dumps(result)).decode("ascii")
        except Exception:
            return  # unpicklable results simply are not checkpointable
        rec = {"fp": self.fingerprint, "key": key, "index": index, "result": blob}
        if self._key is not None:
            rec["mac"] = self._mac(rec)
        line = json.dumps(rec)
        # torn-tail guard: a writer killed mid-append leaves a file with
        # no trailing newline; starting this line with our own newline
        # isolates the torn tail instead of corrupting this record too
        prefix = ""
        try:
            with open(self.path, "rb") as rf:
                rf.seek(-1, os.SEEK_END)
                if rf.read(1) != b"\n":
                    prefix = "\n"
        except OSError:
            pass  # empty or missing file: nothing to guard
        try:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(prefix + line + "\n")
        except OSError:  # pragma: no cover - read-only checkpoint dir
            return
        self._results[key] = result
        self.saved += 1


def _abort_pool(pool) -> None:
    """Shut a process pool down *hard*: cancel queued work, terminate
    worker processes, and reap them — no orphans left behind when the
    sweep is interrupted or fails."""
    if pool is None:
        return
    # snapshot the worker handles first: shutdown() drops the executor's
    # _processes reference even with wait=False
    procs = getattr(pool, "_processes", None)
    workers = list(procs.values()) if procs else []
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - already broken
        pass
    for p in workers:
        try:
            p.terminate()
        except Exception:  # pragma: no cover
            pass
    for p in workers:
        try:
            p.join(timeout=2.0)
        except Exception:  # pragma: no cover
            pass


# -- legacy fast paths (no fault-tolerance knobs engaged) ---------------


class _ChunkTask:
    """Picklable unit of process-backend work: run ``fn`` over a chunk.

    Returns ``(results, trace_summary, cache_counts)`` where the trace
    summary is the child tracer's span/event aggregate for this chunk
    (``None`` when tracing is disabled) and ``cache_counts`` the
    ``(hits, misses)`` delta of the per-worker factor cache.
    """

    __slots__ = ("fn", "chunk")

    def __init__(self, fn: Callable, chunk: List):
        self.fn = fn
        self.chunk = chunk

    def __call__(self):
        tr = get_tracer()
        mark = tr.mark() if tr.enabled else None
        cache = worker_factor_cache()
        h0, m0 = cache.hits, cache.misses
        results = []
        for it in self.chunk:
            if tr.enabled:
                with tr.span("sweep.task"):
                    results.append(self.fn(it))
            else:
                results.append(self.fn(it))
        summary = None
        if tr.enabled:
            summary = tr.summary_since(mark)
            summary.pop("file", None)
        return results, summary, (cache.hits - h0, cache.misses - m0)


def _is_picklable(fn: Callable) -> bool:
    try:
        pickle.dumps(fn)
        return True
    except Exception:
        return False


def _serial_run(task: Callable, items: List, counter: List[int]) -> List:
    results = []
    for it in items:
        counter[0] += 1
        results.append(task(it))
    return results


def _thread_map(
    task: Callable, items: List, effective: int, attempted: List[int], ran: dict
):
    """Thread-pool dispatch with the historical serial fallback."""
    pool = None
    try:
        # Pool creation and submission are the only steps allowed to
        # trigger the serial fallback; an OSError/RuntimeError raised by
        # ``fn`` itself must propagate, not silently re-run the sweep.
        pool = ThreadPoolExecutor(max_workers=effective)
        futures = [pool.submit(task, it) for it in items]
    except (OSError, RuntimeError):
        # thread creation refused (container limits)
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        ran["backend"], ran["workers"] = "serial", 1
        return _serial_run(task, items, attempted)
    ran["backend"], ran["workers"] = "thread", effective
    attempted[0] = len(items)
    try:
        results = [f.result() for f in futures]
    except BaseException:
        # failing item or KeyboardInterrupt: drop queued work instead of
        # waiting the whole sweep out (abandoned threads drain on exit)
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    return results


def _process_map(
    fn: Callable,
    task: Callable,
    items: List,
    effective: int,
    chunksize: Optional[int],
    attempted: List[int],
    extra_stats: dict,
    tr,
    ran: dict,
):
    """Process-pool dispatch: chunked, seeded, with graceful fallback.

    Falls back to the thread backend when the task cannot be pickled or
    the pool cannot be created.  When the pool breaks mid-flight the
    chunks that completed are harvested off their futures and only the
    missing chunks re-run serially (tasks are pure by contract, so
    re-running is safe).  ``ran`` records the backend that actually
    executed.
    """
    if not _is_picklable(fn):
        if tr.enabled:
            tr.event("sweep.process_fallback", reason="unpicklable")
        return _thread_map(task, items, effective, attempted, ran)

    if chunksize is None:
        chunksize = max(1, math.ceil(len(items) / (4 * effective)))
    chunksize = max(1, int(chunksize))
    chunks = [items[lo : lo + chunksize] for lo in range(0, len(items), chunksize)]

    pool = None
    try:
        pool = ProcessPoolExecutor(
            max_workers=effective,
            initializer=_process_worker_init,
            initargs=(bool(tr.enabled), _WORKER_CACHE_ENTRIES),
        )
        futures = [pool.submit(_ChunkTask(fn, chunk)) for chunk in chunks]
    except (OSError, RuntimeError, pickle.PicklingError):
        # process creation refused (sandbox/container limits) or a
        # late pickling failure: degrade to threads
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        if tr.enabled:
            tr.event("sweep.process_fallback", reason="pool_unavailable")
        return _thread_map(task, items, effective, attempted, ran)

    ran["backend"], ran["workers"] = "process", effective
    attempted[0] = len(items)
    extra_stats["chunksize"] = chunksize
    hits = misses = 0
    results: List = []
    try:
        for k, f in enumerate(futures):
            try:
                chunk_results, summary, cache_counts = f.result()
            except BrokenProcessPool:
                # a worker died (OOM-killed, sandbox signal).  Harvest
                # every chunk that still completed and re-run only the
                # missing ones serially.
                _abort_pool(pool)
                if tr.enabled:
                    tr.event("sweep.process_fallback", reason="broken_pool")
                ran["backend"], ran["workers"] = "serial", 1
                attempted[0] = len(results)
                for k2 in range(k, len(futures)):
                    f2, chunk = futures[k2], chunks[k2]
                    got = None
                    if f2.done() and not f2.cancelled() and f2.exception() is None:
                        got = f2.result()
                    if got is not None:
                        chunk_results, summary2, cc2 = got
                        results.extend(chunk_results)
                        attempted[0] += len(chunk)
                        hits += cc2[0]
                        misses += cc2[1]
                        if summary2 and tr.enabled:
                            tr.absorb(summary2)
                    else:
                        results.extend(_serial_run(task, chunk, attempted))
                break
            results.extend(chunk_results)
            hits += cache_counts[0]
            misses += cache_counts[1]
            if summary and tr.enabled:
                tr.absorb(summary)
    except BaseException:
        # failing chunk or KeyboardInterrupt: cancel queued chunks and
        # terminate workers promptly instead of waiting the sweep out
        _abort_pool(pool)
        raise
    else:
        pool.shutdown(wait=True)
    if hits or misses:
        extra_stats["worker_cache"] = {"factor_hits": hits, "factor_misses": misses}
    return results


# -- resilient engine ---------------------------------------------------


class _ResilientSweep:
    """Per-item execution engine behind the fault-tolerance knobs.

    Responsibilities: checkpoint restore/persist, per-item deadline
    enforcement, bounded deterministic retry, quarantine, crashed-worker
    replacement with breadcrumb-guided replay, and the per-item ledger
    (:class:`~repro.robust.report.SweepItemRecord` per item).
    Results land positionally in ``self.results`` so ordering is
    deterministic whatever the completion order.
    """

    def __init__(
        self,
        fn,
        items,
        effective,
        backend,
        mode,
        timeout,
        retries,
        backoff_base,
        retry_on,
        checkpoint,
        checkpoint_tag,
        chaos,
        tr,
        ran,
        attempted,
        extra,
        max_item_records: Optional[int] = None,
    ):
        self.fn = fn
        self.items = items
        self.effective = effective
        self.backend = backend
        self.mode = mode
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.retry_on = retry_on
        self.chaos = chaos
        self.tr = tr
        self.ran = ran
        self.attempted = attempted
        self.extra = extra
        self.max_item_records = resolve_max_item_records(max_item_records)
        n = len(items)
        self.results: List = [None] * n
        self.records = [SweepItemRecord(index=i) for i in range(n)]
        self.store = None
        self.keys: List[Optional[str]] = [None] * n
        if checkpoint is not None:
            fp = _fn_fingerprint(fn, checkpoint_tag)
            self.store = _CheckpointStore(checkpoint, fp)
            self.keys = [_item_key(fp, it) for it in items]
        self.retried = 0
        self.quarantined = 0
        self.cached = 0
        self.timeouts = 0
        self.pool_replacements = 0
        # Backstop against pathological pool churn (e.g. the worker
        # initializer itself crashes, so every replacement pool breaks
        # on first submit with no breadcrumbs): once the budget is
        # spent, the pool stays down and the serial drain finishes the
        # sweep instead of replacing pools forever.
        self.max_pool_replacements = max(4, 2 * n)
        self.cache_hits = 0
        self.cache_misses = 0
        self._pool = None

    # -- entry point ---------------------------------------------------

    def run(self) -> List:
        pending = list(range(len(self.items)))
        if self.store is not None:
            pending = self._restore(pending)
        if not pending:
            return self.results
        if self.effective <= 1 or self.backend == "serial":
            self.ran["backend"], self.ran["workers"] = "serial", 1
            for i in pending:
                self._serial_item(i)
        elif self.backend == "process":
            self._run_process(pending)
        else:
            self._run_threads(pending)
        return self.results

    def finalize_stats(self, stats: dict) -> None:
        """Fault-mode stats keys, layered over the legacy base keys."""
        # exact per-status tallies over *every* item, independent of the
        # detailed-ledger cap below
        counts: dict = {}
        for r in self.records:
            counts[r.status] = counts.get(r.status, 0) + 1
        stats["status_counts"] = counts
        cap = self.max_item_records
        if cap and len(self.records) > cap:
            # failures are what the ledger is for: keep every non-ok
            # record first, pad with ok records in index order
            keep = [r for r in self.records if r.status != "ok"][:cap]
            if len(keep) < cap:
                budget = cap - len(keep)
                keep.extend(
                    [r for r in self.records if r.status == "ok"][:budget]
                )
            keep.sort(key=lambda r: r.index)
            stats["items"] = [r.as_dict() for r in keep]
            stats["items_truncated"] = len(self.records) - len(keep)
        else:
            stats["items"] = [r.as_dict() for r in self.records]
            stats["items_truncated"] = 0
        stats["retried"] = self.retried
        stats["quarantined"] = self.quarantined
        stats["cached"] = self.cached
        stats["timeouts"] = self.timeouts
        stats["pool_replacements"] = self.pool_replacements
        stats["fault_policy"] = {
            "timeout": self.timeout,
            "retries": self.retries,
            "on_item_failure": self.mode,
            "backoff_base": self.backoff_base,
        }
        if self.store is not None:
            stats["checkpoint"] = {
                "path": self.store.path,
                "restored": self.cached,
                "saved": self.store.saved,
            }
            if self.store.compacted is not None:
                stats["checkpoint"]["compacted"] = dict(self.store.compacted)
        if self.cache_hits or self.cache_misses:
            stats["worker_cache"] = {
                "factor_hits": self.cache_hits,
                "factor_misses": self.cache_misses,
            }

    # -- shared bookkeeping --------------------------------------------

    def _restore(self, pending: List[int]) -> List[int]:
        rest = []
        for i in pending:
            key = self.keys[i]
            if key is not None and key in self.store:
                self.results[i] = self.store.load(key)
                self.records[i].status = "cached"
                self.cached += 1
                if self.tr.enabled:
                    self.tr.event("sweep.checkpoint_restore", index=i)
            else:
                rest.append(i)
        return rest

    def _complete(self, i: int, result, wall: float) -> None:
        rec = self.records[i]
        rec.wall_time += wall
        rec.status = "ok"
        self.results[i] = result
        if self.store is not None and self.keys[i] is not None:
            self.store.put(self.keys[i], i, result)

    def _retryable(self, exc) -> bool:
        """``retry_on`` match that survives the process boundary: a
        :class:`SweepRemoteError` stands in for an unpicklable worker
        exception, so it matches on the *original* type's MRO — never
        on the wrapper's own type — keeping retry/quarantine decisions
        identical across the serial, thread and process backends."""
        if isinstance(exc, SweepRemoteError):
            names = set(exc.mro)
            return any(_qualify(t) in names for t in self.retry_on)
        return isinstance(exc, self.retry_on)

    def _handle_failure(
        self, i: int, exc, wall: float = 0.0, retry_at=None, allow_retry=True
    ) -> bool:
        """Dispose of a failed attempt per policy.  Returns True when a
        retry was scheduled (``retry_at`` list) or should run now
        (``retry_at is None`` — backoff already slept)."""
        rec = self.records[i]
        rec.wall_time += wall
        rec.failure_cause = f"{type(exc).__name__}: {exc}"
        tr = self.tr
        if isinstance(exc, SweepItemTimeout):
            self.timeouts += 1
            if tr.enabled:
                tr.event(
                    "sweep.timeout",
                    index=i,
                    deadline=self.timeout,
                    enforced=exc.enforced,
                )
        if allow_retry and self._retryable(exc) and rec.attempts <= self.retries:
            delay = backoff_seconds(i, rec.attempts, self.backoff_base)
            rec.backoff_time += delay
            self.retried += 1
            if tr.enabled:
                tr.event(
                    "sweep.retry", index=i, attempt=rec.attempts, delay=round(delay, 6)
                )
            if retry_at is None:
                if delay > 0:
                    time.sleep(delay)
            else:
                retry_at.append([time.monotonic() + delay, i])
            return True
        if self.mode == "skip":
            rec.status = "skipped"
            self.quarantined += 1
            self.results[i] = None
            if tr.enabled:
                tr.event("sweep.quarantine", index=i, cause=rec.failure_cause)
            return False
        rec.status = "failed"
        raise exc

    def _handle_out(self, i: int, out, retry_at=None) -> bool:
        """Unpack an ``_ItemCall`` return.  True when the item is done
        (completed or quarantined), False when a retry is scheduled."""
        result, failure, wall, summary, cache_delta = out
        if summary and self.tr.enabled:
            self.tr.absorb(summary)
        self.cache_hits += cache_delta[0]
        self.cache_misses += cache_delta[1]
        if failure is None:
            self._complete(i, result, wall)
            return True
        return not self._handle_failure(i, failure, wall=wall, retry_at=retry_at)

    # -- serial --------------------------------------------------------

    def _serial_item(self, i: int) -> None:
        tr = self.tr
        while True:
            rec = self.records[i]
            rec.attempts += 1
            self.attempted[0] += 1
            t0 = time.perf_counter()
            try:
                if tr.enabled:
                    with tr.span("sweep.task", index=i, attempt=rec.attempts):
                        result = _guarded_call(
                            self.fn, self.items[i], i, self.timeout, self.chaos
                        )
                else:
                    result = _guarded_call(
                        self.fn, self.items[i], i, self.timeout, self.chaos
                    )
                wall = time.perf_counter() - t0
                if (
                    self.timeout is not None
                    and wall > self.timeout
                    and not _can_alarm()
                ):
                    # alarm unavailable (non-main thread): post-hoc
                    # enforcement — over-budget results are discarded so
                    # the deadline contract holds on every platform
                    raise SweepItemTimeout(i, self.timeout, "posthoc")
                self._complete(i, result, wall)
                return
            except Exception as exc:
                wall = time.perf_counter() - t0
                if not self._handle_failure(i, exc, wall=wall, retry_at=None):
                    return

    # -- threads -------------------------------------------------------

    def _thread_attempt(self, i: int, attempt: int, started: dict):
        tr = self.tr
        started[i] = time.perf_counter()
        if tr.enabled:
            with tr.span("sweep.task", index=i, attempt=attempt):
                result = _guarded_call(
                    self.fn, self.items[i], i, self.timeout, self.chaos
                )
        else:
            result = _guarded_call(self.fn, self.items[i], i, self.timeout, self.chaos)
        return result, time.perf_counter() - started[i]

    def _thread_wait(self, fut, i: int, started: dict, abandoned: List[int]):
        if self.timeout is None:
            return fut.result()
        grace = max(0.25, 0.1 * self.timeout)
        qt0 = time.perf_counter()
        while True:
            try:
                return fut.result(timeout=0.05)
            except SweepItemTimeout:
                raise
            except _FuturesTimeout:
                t0 = started.get(i)
                now = time.perf_counter()
                if t0 is not None:
                    if now - t0 > self.timeout + grace:
                        fut.cancel()
                        abandoned[0] += 1
                        raise SweepItemTimeout(i, self.timeout, "abandoned") from None
                elif now - qt0 > (self.timeout + grace) * (abandoned[0] + 2):
                    # never started: every worker thread is abandoned
                    # and the queue is starved — fail the wait rather
                    # than hang the sweep
                    fut.cancel()
                    abandoned[0] += 1
                    raise SweepItemTimeout(i, self.timeout, "abandoned") from None

    def _run_threads(self, pending: List[int]) -> None:
        try:
            pool = ThreadPoolExecutor(max_workers=self.effective)
        except (OSError, RuntimeError):
            self.ran["backend"], self.ran["workers"] = "serial", 1
            for i in pending:
                self._serial_item(i)
            return
        self.ran["backend"], self.ran["workers"] = "thread", self.effective
        started: dict = {}
        abandoned = [0]
        clean = False
        try:
            round_items = list(pending)
            while round_items:
                futures = {}
                for i in round_items:
                    rec = self.records[i]
                    rec.attempts += 1
                    self.attempted[0] += 1
                    started.pop(i, None)
                    futures[i] = pool.submit(self._thread_attempt, i, rec.attempts, started)
                next_round = []
                for i in round_items:
                    try:
                        result, wall = self._thread_wait(
                            futures[i], i, started, abandoned
                        )
                        self._complete(i, result, wall)
                    except Exception as exc:
                        t0 = started.get(i)
                        wall = (time.perf_counter() - t0) if t0 is not None else 0.0
                        if self._handle_failure(i, exc, wall=wall, retry_at=None):
                            next_round.append(i)
                round_items = next_round
            clean = True
        finally:
            # an abandoned (hung) thread would make wait=True block for
            # its full run time; leaked threads drain at interpreter exit
            pool.shutdown(wait=clean and not abandoned[0], cancel_futures=True)

    # -- processes -----------------------------------------------------

    def _make_pool(self, n: int):
        try:
            return ProcessPoolExecutor(
                max_workers=n,
                initializer=_process_worker_init,
                initargs=(bool(self.tr.enabled), _WORKER_CACHE_ENTRIES),
            )
        except (OSError, RuntimeError, pickle.PicklingError):
            return None

    def _run_process(self, pending: List[int]) -> None:
        tr = self.tr
        if not _is_picklable(self.fn):
            if tr.enabled:
                tr.event("sweep.process_fallback", reason="unpicklable")
            return self._run_threads(pending)
        self._pool = self._make_pool(self.effective)
        if self._pool is None:
            if tr.enabled:
                tr.event("sweep.process_fallback", reason="pool_unavailable")
            return self._run_threads(pending)
        self.ran["backend"], self.ran["workers"] = "process", self.effective
        self.extra["chunksize"] = 1  # per-item dispatch: deadline/crash granularity
        scratch = tempfile.mkdtemp(prefix="repro-sweep-")
        clean = False
        try:
            self._process_loop(pending, scratch)
            clean = True
        finally:
            if clean:
                if self._pool is not None:
                    self._pool.shutdown(wait=True)
            else:
                _abort_pool(self._pool)
            shutil.rmtree(scratch, ignore_errors=True)

    def _submit(self, i: int, scratch: str):
        rec = self.records[i]
        rec.attempts += 1
        self.attempted[0] += 1
        return self._pool.submit(
            _ItemCall(
                self.fn,
                self.items[i],
                i,
                rec.attempts,
                self.timeout,
                self.chaos,
                scratch,
            )
        )

    def _process_loop(self, pending: List[int], scratch: str) -> None:
        todo = deque(pending)
        retry_at: List[List] = []  # [ready_monotonic, index]
        inflight: dict = {}  # future -> index
        submitted_at: dict = {}  # index -> monotonic
        allowance = None if self.timeout is None else self.timeout * 2.0 + 1.0
        while todo or retry_at or inflight:
            if self._pool is None:
                # pool permanently unavailable: finish what is left
                # serially (inflight is empty by construction here)
                if self.tr.enabled:
                    self.tr.event("sweep.process_fallback", reason="pool_unavailable")
                self.ran["backend"], self.ran["workers"] = "serial", 1
                rest = sorted(set(list(todo) + [e[1] for e in retry_at]))
                for i in rest:
                    self._serial_item(i)
                return
            now = time.monotonic()
            for entry in [e for e in retry_at if e[0] <= now]:
                retry_at.remove(entry)
                todo.append(entry[1])
            # Cap outstanding submissions at the worker count: an item
            # only enters the executor when a worker is free to take
            # it, so submission time approximates execution start and
            # queue wait never accrues against any deadline allowance.
            while todo and len(inflight) < self.effective:
                i = todo.popleft()
                try:
                    fut = self._submit(i, scratch)
                except BrokenProcessPool:
                    self.records[i].attempts -= 1
                    self.attempted[0] -= 1
                    todo.appendleft(i)
                    self._recover(inflight, scratch, todo, retry_at)
                    inflight = {}
                    break
                inflight[fut] = i
                submitted_at[i] = time.monotonic()
            if not inflight:
                if retry_at:
                    nxt = min(e[0] for e in retry_at)
                    time.sleep(min(max(nxt - time.monotonic(), 0.01), 0.25))
                continue
            done, _ = _futures_wait(
                list(inflight), timeout=0.1, return_when=FIRST_COMPLETED
            )
            broke = False
            for fut in done:
                i = inflight.pop(fut)
                try:
                    out = fut.result()
                except BrokenProcessPool:
                    inflight[fut] = i  # recovery classifies it with the rest
                    self._recover(inflight, scratch, todo, retry_at)
                    inflight = {}
                    broke = True
                    break
                except Exception as exc:
                    # dispatch-side failure (e.g. the item would not
                    # pickle): no worker wall time to account
                    self._handle_failure(i, exc, retry_at=retry_at)
                    continue
                self._handle_out(i, out, retry_at)
            if broke:
                continue
            if allowance is not None and inflight:
                # An item is overdue only once it has *executed* past
                # the allowance: its breadcrumb mtime is the start
                # time.  No breadcrumb means the worker never reached
                # the item body, so fall back to submission time —
                # accurate to a scheduling tick because submissions
                # are capped at the worker count above.  Futures that
                # completed since the wait are harvested next pass,
                # never killed.
                now_wall = time.time()
                now_mono = time.monotonic()
                overdue = set()
                for fut, i in inflight.items():
                    if fut.done():
                        continue
                    started = _inflight_started(scratch, i)
                    if started is not None:
                        if now_wall - started > allowance:
                            overdue.add(i)
                    elif now_mono - submitted_at[i] > allowance:
                        overdue.add(i)
                if overdue:
                    self._hard_kill(overdue, inflight, scratch, todo, retry_at)
                    inflight = {}

    def _recover(self, inflight: dict, scratch: str, todo, retry_at) -> None:
        """BrokenProcessPool recovery: harvest finished futures, replay
        breadcrumbed crash suspects in isolation, resubmit never-started
        items for free, and stand up a replacement pool."""
        self.pool_replacements += 1
        if self.tr.enabled:
            self.tr.event("sweep.pool_replaced", reason="broken_pool")
        _abort_pool(self._pool)
        self._pool = None
        suspects = []
        for fut, i in list(inflight.items()):
            if fut.done() and not fut.cancelled():
                exc = fut.exception()
                if exc is None:
                    self._handle_out(i, fut.result(), retry_at)
                    continue
                if not isinstance(exc, BrokenProcessPool):
                    self._handle_failure(i, exc, retry_at=retry_at)
                    continue
            if os.path.exists(_inflight_path(scratch, i)):
                _clear_inflight(scratch, i)
                suspects.append(i)
            else:
                # never started executing: refund the charged attempt
                # and resubmit for free
                self.records[i].attempts -= 1
                self.attempted[0] -= 1
                todo.append(i)
        if self.pool_replacements >= self.max_pool_replacements:
            # replacement budget spent: pools keep breaking (broken
            # initializer, broken fork/spawn) — stay down and let the
            # serial drain finish rather than churn pools forever
            if self.tr.enabled:
                self.tr.event(
                    "sweep.pool_budget_exhausted",
                    replacements=self.pool_replacements,
                )
            for i in suspects:
                todo.append(i)
            return
        self._pool = self._make_pool(self.effective)
        if self._pool is None:
            # cannot rebuild: hand suspects to the serial drain too
            for i in suspects:
                todo.append(i)
            return
        for i in sorted(suspects):
            self._replay_suspect(i, scratch, todo, retry_at)

    def _replay_suspect(self, i: int, scratch: str, todo, retry_at) -> None:
        """Replay a crash suspect in an isolated single-worker pool so a
        genuinely poisonous item can only kill its own sandbox.  Budget:
        ``max(1, retries)`` replays — even ``retries=0`` gets one, since
        a crash consumed the original attempt without a verdict."""
        budget = max(1, self.retries)
        last_crash = None
        while budget > 0:
            budget -= 1
            rec = self.records[i]
            rec.attempts += 1
            self.attempted[0] += 1
            iso = self._make_pool(1)
            if iso is None:
                last_crash = SweepWorkerCrash(i, "isolation pool unavailable")
                break
            ok = False
            t0 = time.perf_counter()
            try:
                fut = iso.submit(
                    _ItemCall(
                        self.fn,
                        self.items[i],
                        i,
                        rec.attempts,
                        self.timeout,
                        self.chaos,
                        scratch,
                    )
                )
                allowance = None if self.timeout is None else self.timeout * 2.0 + 1.0
                try:
                    out = fut.result(timeout=allowance)
                    ok = True
                except BrokenProcessPool:
                    _clear_inflight(scratch, i)
                    last_crash = SweepWorkerCrash(
                        i, "worker process died while executing this item"
                    )
                    continue
                except _FuturesTimeout:
                    _clear_inflight(scratch, i)
                    self._handle_failure(
                        i,
                        SweepItemTimeout(i, self.timeout, "kill"),
                        wall=time.perf_counter() - t0,
                        retry_at=retry_at,
                    )
                    return
            finally:
                if ok:
                    iso.shutdown(wait=True)
                else:
                    _abort_pool(iso)
            self._handle_out(i, out, retry_at)
            return
        if last_crash is None:  # pragma: no cover - defensive
            last_crash = SweepWorkerCrash(i)
        self._handle_failure(i, last_crash, retry_at=retry_at, allow_retry=False)

    def _hard_kill(self, overdue, inflight: dict, scratch: str, todo, retry_at) -> None:
        """A worker blew through its in-worker alarm *and* the parent's
        allowance (stuck in C code with signals blocked): replace the
        pool, time out the overdue items, resubmit the rest for free."""
        self.pool_replacements += 1
        if self.tr.enabled:
            self.tr.event("sweep.pool_replaced", reason="deadline")
        _abort_pool(self._pool)
        self._pool = None
        for fut, i in list(inflight.items()):
            if fut.done() and not fut.cancelled():
                exc = fut.exception()
                if exc is None:
                    self._handle_out(i, fut.result(), retry_at)
                    continue
                if not isinstance(exc, BrokenProcessPool):
                    self._handle_failure(i, exc, retry_at=retry_at)
                    continue
            _clear_inflight(scratch, i)
            if i in overdue:
                self._handle_failure(
                    i,
                    SweepItemTimeout(i, self.timeout, "kill"),
                    wall=self.timeout * 2.0 + 1.0,
                    retry_at=retry_at,
                )
            else:
                self.records[i].attempts -= 1
                self.attempted[0] -= 1
                todo.append(i)
        if self.pool_replacements >= self.max_pool_replacements:
            if self.tr.enabled:
                self.tr.event(
                    "sweep.pool_budget_exhausted",
                    replacements=self.pool_replacements,
                )
            return  # pool stays down: the serial drain takes over
        self._pool = self._make_pool(self.effective)


def sweep_map(
    fn: Callable,
    items: Iterable,
    workers: Optional[int] = None,
    stats: Optional[dict] = None,
    backend: Optional[str] = None,
    chunksize: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    retry_backoff: Optional[float] = None,
    retry_on=None,
    on_item_failure: Optional[str] = None,
    checkpoint=None,
    checkpoint_tag=None,
    max_item_records: Optional[int] = None,
) -> List:
    """Map ``fn`` over ``items`` preserving order; parallel when asked.

    Parameters
    ----------
    fn / items:
        The per-point work and the sweep points.  ``fn`` must be a pure,
        deterministic function of its item and must not depend on
        execution order — only result *ordering* is deterministic.  For
        the process backend ``fn``, the items and the results must all
        be picklable; an unpicklable ``fn`` silently degrades to the
        thread backend (recorded in ``stats``).
    workers:
        Worker count; ``None`` consults :data:`WORKERS_ENV`.  Values
        that are not integers >= 1 raise :class:`ValueError`.  A single
        item (or ``workers=1``) runs the serial path whatever the
        backend.
    backend:
        ``"serial"`` | ``"thread"`` | ``"process"``; ``None`` consults
        :data:`BACKEND_ENV`, defaulting to ``"thread"``.
    chunksize:
        Process-backend items per dispatched chunk.  Defaults to
        ``ceil(len(items) / (4 * workers))`` — large enough to amortise
        pickling, small enough to load-balance.  Chunking never affects
        results or their order.  Ignored (forced to 1) when any
        fault-tolerance knob is engaged: deadlines and crash recovery
        need per-item dispatch.
    timeout:
        Per-item deadline in seconds; ``None`` consults
        :data:`TIMEOUT_ENV`.  See the module docstring for per-backend
        enforcement strength.  A timed-out attempt raises (or retries
        as) :class:`SweepItemTimeout`.
    retries / retry_backoff / retry_on:
        Retry budget per item beyond the first attempt (``None``
        consults :data:`RETRIES_ENV`; defaults to 1 when
        ``on_item_failure="retry"``, else 0), the base seconds of the
        deterministic jittered exponential backoff
        (:func:`backoff_seconds`), and the exception types considered
        transient (default: any ``Exception``).  ``retry_on`` matching
        is backend-independent: worker exceptions that cannot be
        pickled back surface as :class:`SweepRemoteError` and match by
        the original type's MRO.
    on_item_failure:
        ``"raise"`` (default) — first exhausted item fails the sweep;
        ``"retry"`` — like raise but with a default retry budget of 1;
        ``"skip"`` — exhausted items are quarantined: their result slot
        is ``None``, the sweep completes, and ``stats["items"]`` tells
        the story per item.
    checkpoint / checkpoint_tag:
        JSONL checkpoint path (``None`` consults :data:`CHECKPOINT_ENV`)
        and an optional explicit fingerprint overriding the hash of
        ``fn`` for resume matching.  Restore unpickles stored results:
        only point this at files written by a trusted sweep, or set
        :data:`CHECKPOINT_KEY_ENV` to HMAC-authenticate lines.  Opening
        a checkpoint file that exceeds the
        :data:`CHECKPOINT_COMPACT_ENV` byte budget and contains
        superseded/corrupt lines compacts it atomically (latest line
        per item key, every fingerprint preserved); the rewrite is
        reported under ``stats["checkpoint"]["compacted"]``.
    max_item_records:
        Cap on detailed ``stats["items"]`` entries (``None`` consults
        :data:`MAX_ITEM_RECORDS_ENV`, defaulting to 10000; ``0`` means
        unlimited).  See :func:`resolve_max_item_records` for the
        keep/truncate policy; ``stats["status_counts"]`` stays exact
        regardless.
    stats:
        Optional dict filled with ``{"workers", "tasks", "attempted",
        "backend"}`` describing what actually ran — the benchmarks
        record it.  The process backend adds ``"chunksize"`` and
        ``"worker_cache"`` (per-worker factor-cache hit/miss totals).
        ``backend`` reports the backend that *executed* (after any
        fallback), and ``backend_requested`` appears when a fallback
        demoted the requested backend (running serial because there is
        nothing to parallelise — one worker or one item — is the
        requested backend's degenerate case, not a fallback).
        The dict is populated even when ``fn`` raises (``attempted``
        counts the executions started — retries included — before the
        failure).  When fault-tolerance is engaged the dict also gains
        ``"items"`` (the per-item ledger, capped by
        ``max_item_records``), ``"items_truncated"``,
        ``"status_counts"`` (exact per-status tallies), ``"retried"``,
        ``"quarantined"``, ``"cached"``, ``"timeouts"``,
        ``"pool_replacements"``, ``"fault_policy"`` and (with a
        checkpoint) ``"checkpoint"``.

    Exceptions raised by ``fn`` propagate to the caller in every
    backend (the first failing item in item order wins under threads
    and legacy-path processes; the resilient engine fails fast on the
    first *exhausted* item in completion order).
    """
    items = list(items)
    w = resolve_workers(workers)
    requested = resolve_backend(backend)
    mode = _resolve_on_item_failure(on_item_failure)
    eff_timeout = resolve_timeout(timeout)
    eff_retries = resolve_retries(retries, mode)
    ckpt_path = resolve_checkpoint(checkpoint)
    eff_retry_on = _resolve_retry_on(retry_on)
    if retry_backoff is None:
        backoff_base = _DEFAULT_BACKOFF
    else:
        backoff_base = float(retry_backoff)
        if backoff_base < 0 or not math.isfinite(backoff_base):
            raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff!r}")
    chaos = _active_chaos()
    fault_mode = (
        eff_timeout is not None
        or ckpt_path is not None
        or mode != "raise"
        or eff_retries > 0
        or chaos is not None
    )

    effective = min(w, len(items)) if items else 1
    degenerate = effective <= 1  # nothing to parallelise: not a fallback
    ran_backend = requested if effective > 1 else "serial"
    tr = get_tracer()
    task = fn
    if tr.enabled:
        def task(it, _fn=fn, _tr=tr):
            with _tr.span("sweep.task"):
                return _fn(it)
    attempted = [0]
    extra_stats = {}
    # mutable execution record: fallbacks update it *before* running
    # tasks, so a task exception still leaves stats reporting the
    # backend that actually executed
    ran = {"backend": ran_backend, "workers": effective if effective > 1 else 1}
    engine = None
    if fault_mode:
        engine = _ResilientSweep(
            fn,
            items,
            effective,
            requested,
            mode,
            eff_timeout,
            eff_retries,
            backoff_base,
            eff_retry_on,
            ckpt_path,
            checkpoint_tag,
            chaos,
            tr,
            ran,
            attempted,
            extra_stats,
            max_item_records=max_item_records,
        )
    results: List
    try:
        if tr.enabled:
            sweep_span = tr.span("sweep.map", tasks=len(items), backend=requested)
            sweep_span.__enter__()
        else:
            sweep_span = None
        try:
            if engine is not None:
                results = engine.run()
            elif effective <= 1 or requested == "serial":
                ran["backend"], ran["workers"] = "serial", 1
                results = _serial_run(task, items, attempted)
            elif requested == "process":
                results = _process_map(
                    fn, task, items, effective, chunksize, attempted,
                    extra_stats, tr, ran,
                )
            else:
                results = _thread_map(task, items, effective, attempted, ran)
        finally:
            if sweep_span is not None:
                sweep_span.annotate(
                    workers=ran["workers"], attempted=attempted[0],
                    ran=ran["backend"],
                )
                sweep_span.__exit__(None, None, None)
    finally:
        if stats is not None:
            stats["workers"] = ran["workers"]
            stats["tasks"] = len(items)
            stats["attempted"] = attempted[0]
            stats["backend"] = ran["backend"]
            if ran["backend"] != requested and not degenerate:
                stats["backend_requested"] = requested
            stats.update(extra_stats)
            if engine is not None:
                engine.finalize_stats(stats)
    return results
