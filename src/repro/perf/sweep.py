"""Deterministic parallel executor for embarrassingly parallel sweeps.

AC/HB frequency points, phase-noise Monte-Carlo paths, ROM transfer
sweeps and EM panel-matrix row blocks are all independent work items.
:func:`sweep_map` runs them through a ``concurrent.futures`` thread pool
when ``workers > 1`` and falls back to a plain serial loop otherwise (or
when the pool cannot be created, e.g. in restricted environments).

Two invariants the adopters rely on:

* **deterministic ordering** — results come back in item order,
  regardless of completion order or worker count;
* **worker-count independence** — the per-item computation never
  depends on ``workers``, so serial and parallel runs produce
  bit-identical outputs (the equivalence tests in
  ``tests/test_perf.py`` pin this down).

The default worker count is 1 (serial); set the environment variable
``REPRO_SWEEP_WORKERS`` or pass ``workers=`` explicitly to go parallel.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional

from ..trace import get_tracer

__all__ = ["WORKERS_ENV", "resolve_workers", "sweep_map"]

#: Environment variable consulted when ``workers`` is None.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit arg, else env var, else 1."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        try:
            workers = int(raw) if raw else 1
        except ValueError:
            workers = 1
    return max(1, int(workers))


def sweep_map(
    fn: Callable,
    items: Iterable,
    workers: Optional[int] = None,
    stats: Optional[dict] = None,
) -> List:
    """Map ``fn`` over ``items`` preserving order; parallel when asked.

    Parameters
    ----------
    fn / items:
        The per-point work and the sweep points.  ``fn`` must not
        depend on execution order (the executor guarantees nothing
        about it) — only result *ordering* is deterministic.
    workers:
        Thread count; ``None`` consults :data:`WORKERS_ENV`, and any
        value <= 1 (or a single item) runs the serial fallback.
    stats:
        Optional dict filled with ``{"workers", "tasks", "attempted"}``
        describing what actually ran — the benchmarks record it.  The
        dict is populated even when ``fn`` raises (``attempted`` counts
        the items whose execution started before the failure), so
        callers that pre-registered it never read stale entries.

    Exceptions raised by ``fn`` propagate to the caller in both modes
    (the first failing item wins under threads, as with ``map``).
    """
    items = list(items)
    w = resolve_workers(workers)
    effective = min(w, len(items)) if items else 1
    tr = get_tracer()
    task = fn
    if tr.enabled:
        def task(it, _fn=fn, _tr=tr):
            with _tr.span("sweep.task"):
                return _fn(it)
    attempted = 0
    results: List
    try:
        if tr.enabled:
            sweep_span = tr.span("sweep.map", tasks=len(items))
            sweep_span.__enter__()
        else:
            sweep_span = None
        try:
            if effective <= 1:
                effective = 1
                results = []
                for it in items:
                    attempted += 1
                    results.append(task(it))
            else:
                pool = None
                try:
                    # Pool creation and submission are the only steps
                    # allowed to trigger the serial fallback; an OSError/
                    # RuntimeError raised by ``fn`` itself must propagate,
                    # not silently re-run the sweep serially.
                    pool = ThreadPoolExecutor(max_workers=effective)
                    futures = [pool.submit(task, it) for it in items]
                except (OSError, RuntimeError):
                    # thread creation refused (container limits)
                    if pool is not None:
                        pool.shutdown(wait=True, cancel_futures=True)
                    effective = 1
                    results = []
                    for it in items:
                        attempted += 1
                        results.append(task(it))
                else:
                    attempted = len(items)
                    try:
                        results = [f.result() for f in futures]
                    finally:
                        pool.shutdown(wait=True)
        finally:
            if sweep_span is not None:
                sweep_span.annotate(workers=effective, attempted=attempted)
                sweep_span.__exit__(None, None, None)
    finally:
        if stats is not None:
            stats["workers"] = effective
            stats["tasks"] = len(items)
            stats["attempted"] = attempted
    return results
