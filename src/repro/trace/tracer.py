"""Span-based tracing core: :class:`Tracer`, the process-global default,
and the ``traceable``/``spanned`` decorators used to wire instrumentation
through the solver layers.

Design constraints (see DESIGN.md "Observability"):

* **Near-zero overhead when disabled.**  The process-global tracer is a
  :class:`NullTracer` singleton whose ``enabled`` flag is ``False``; hot
  loops guard every emission with ``if tr.enabled:`` so the disabled path
  costs one attribute read.  ``get_tracer()`` is a plain global read.
* **Thread-safe JSONL output.**  ``sweep_map`` workers emit concurrently;
  a single lock serialises writes and one record never spans lines.
* **Monotonic timestamps.**  All times are ``time.perf_counter()`` deltas
  relative to the tracer's creation, so traces are comparable within a
  run and immune to wall-clock jumps.

Record schema (one JSON object per line):

``{"type": "span", "name": ..., "id": ..., "parent": ..., "tid": ...,
   "t0": ..., "dur": ..., "attrs": {...}}``
    Emitted when a span *closes*.  ``parent`` is the id of the enclosing
    span on the same thread (``null`` at top level).  A span that exits
    via an exception carries ``attrs["error"]`` with the exception type.

``{"type": "event", "name": ..., "t": ..., "tid": ..., "span": ...,
   "attrs": {...}}``
    A point event attached to the innermost open span on its thread.
"""

from __future__ import annotations

import atexit
import functools
import itertools
import json
import os
import threading
import time
from contextlib import contextmanager

__all__ = [
    "Tracer",
    "NullTracer",
    "Span",
    "TRACE_ENV",
    "get_tracer",
    "enable",
    "disable",
    "using",
    "traceable",
    "spanned",
]

TRACE_ENV = "REPRO_TRACE"

#: Per-span-name cap on retained duration samples.  Bounds tracer
#: memory on million-span runs; percentile rollups then describe the
#: first ``_SAMPLE_CAP`` occurrences of each span name.
_SAMPLE_CAP = 512


def _json_default(obj):
    """Serialise numpy scalars/arrays (and anything else) best-effort."""
    tolist = getattr(obj, "tolist", None)
    if tolist is not None:
        try:
            return tolist()
        except Exception:
            pass
    return str(obj)


class Span:
    """An open span; used as a context manager via :meth:`Tracer.span`."""

    __slots__ = ("tracer", "name", "attrs", "id", "parent", "tid", "t0")

    def __init__(self, tracer, name, attrs, span_id, parent, tid, t0):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.id = span_id
        self.parent = parent
        self.tid = tid
        self.t0 = t0

    def annotate(self, **attrs):
        """Attach extra attributes to the span before it closes."""
        self.attrs.update(attrs)
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.tracer._close_span(self)
        return False


class _NullSpan:
    """Shared do-nothing span returned by :class:`NullTracer`."""

    __slots__ = ()

    def annotate(self, **attrs):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    Kept API-compatible with :class:`Tracer` so instrumented code can
    call ``span``/``event``/``mark``/``summary_since``/``publish``
    unconditionally — though hot paths should still guard on
    ``.enabled`` to skip attribute packing.
    """

    enabled = False
    path = None

    def span(self, name, **attrs):
        return _NULL_SPAN

    def event(self, name, **attrs):
        return None

    def mark(self):
        return None

    def summary_since(self, mark=None):
        return {}

    def absorb(self, summary):
        return None

    def publish(self, report, mark=None):
        return None

    def flush(self):
        return None

    def close(self):
        return None


_NULL = NullTracer()


class Tracer:
    """Collects spans and events, writing JSONL to ``path`` (optional).

    A tracer without a path still aggregates in-memory statistics
    (``summary_since``), which is what ``SolveReport.perf["trace"]``
    consumes; the file is only opened when ``path`` is given.
    """

    enabled = True

    def __init__(self, path=None):
        self.path = os.fspath(path) if path is not None else None
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._tids = {}
        self._fh = open(self.path, "w") if self.path else None
        # name -> [count, total_seconds]
        self._span_stats = {}
        # name -> list of per-span durations, capped at _SAMPLE_CAP per
        # name; feeds p50/p95 rollups (``summary_since`` deltas and the
        # synthetic records ``absorb`` writes for worker-process spans)
        self._span_samples = {}
        self._event_counts = {}
        self._seq = 0

    # -- internals -----------------------------------------------------

    def _now(self):
        return time.perf_counter() - self._t0

    def _tid(self):
        ident = threading.get_ident()
        with self._lock:
            tid = self._tids.get(ident)
            if tid is None:
                tid = len(self._tids)
                self._tids[ident] = tid
        return tid

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _write(self, record):
        line = json.dumps(record, default=_json_default)
        with self._lock:
            self._seq += 1
            if self._fh is not None:
                self._fh.write(line + "\n")

    # -- public API ----------------------------------------------------

    def span(self, name, **attrs):
        stack = self._stack()
        parent = stack[-1].id if stack else None
        sp = Span(self, name, attrs, next(self._ids), parent, self._tid(), self._now())
        stack.append(sp)
        return sp

    def _close_span(self, sp):
        stack = self._stack()
        if stack and stack[-1] is sp:
            stack.pop()
        elif sp in stack:  # pragma: no cover - misnested exit
            stack.remove(sp)
        dur = self._now() - sp.t0
        with self._lock:
            stat = self._span_stats.setdefault(sp.name, [0, 0.0])
            stat[0] += 1
            stat[1] += dur
            samples = self._span_samples.setdefault(sp.name, [])
            if len(samples) < _SAMPLE_CAP:
                samples.append(dur)
        self._write(
            {
                "type": "span",
                "name": sp.name,
                "id": sp.id,
                "parent": sp.parent,
                "tid": sp.tid,
                "t0": round(sp.t0, 9),
                "dur": round(dur, 9),
                "attrs": sp.attrs,
            }
        )

    def event(self, name, **attrs):
        stack = self._stack()
        parent = stack[-1].id if stack else None
        with self._lock:
            self._event_counts[name] = self._event_counts.get(name, 0) + 1
        self._write(
            {
                "type": "event",
                "name": name,
                "t": round(self._now(), 9),
                "tid": self._tid(),
                "span": parent,
                "attrs": attrs,
            }
        )

    def mark(self):
        """Snapshot of aggregate state, for later ``summary_since``."""
        with self._lock:
            return {
                "spans": {k: tuple(v) for k, v in self._span_stats.items()},
                "events": dict(self._event_counts),
                "samples": {k: len(v) for k, v in self._span_samples.items()},
            }

    def summary_since(self, mark=None):
        """Aggregate span/event statistics accumulated since ``mark``.

        Returns ``{"file": path-or-None, "spans": {name: {"count", "seconds"}},
        "events": {name: count}}`` — plain builtins, safe to stash on
        ``SolveReport.perf["trace"]`` and merge via ``setdefault``.
        """
        base_spans = (mark or {}).get("spans", {})
        base_events = (mark or {}).get("events", {})
        base_samples = (mark or {}).get("samples", {})
        with self._lock:
            spans = {}
            for name, (count, total) in self._span_stats.items():
                b = base_spans.get(name, (0, 0.0))
                dc, dt = count - b[0], total - b[1]
                if dc > 0:
                    fresh = self._span_samples.get(name, [])[base_samples.get(name, 0):]
                    spans[name] = {
                        "count": dc,
                        "seconds": round(dt, 9),
                        "samples": [round(d, 9) for d in fresh],
                    }
            events = {}
            for name, count in self._event_counts.items():
                dc = count - base_events.get(name, 0)
                if dc > 0:
                    events[name] = dc
        return {"file": self.path, "spans": spans, "events": events}

    def absorb(self, summary):
        """Fold a ``summary_since``-shaped aggregate into this tracer.

        Used by the process-backend sweep executor: worker processes
        aggregate their spans in-memory and ship the summary back with
        each chunk; absorbing it here makes child work visible to
        ``summary_since``/``publish`` (and hence
        ``SolveReport.perf["trace"]``).  When the child summary carries
        per-span duration samples and this tracer writes a JSONL file,
        a synthetic span record (``attrs: {"absorbed": true}``, zero
        ``t0``, no parent) is written per sample so the ``summarize``
        CLI's p50/p95 and flame rollups include worker-process work.
        """
        if not summary:
            return None
        synthetic = []
        with self._lock:
            for name, rec in (summary.get("spans") or {}).items():
                stat = self._span_stats.setdefault(name, [0, 0.0])
                stat[0] += int(rec.get("count", 0))
                stat[1] += float(rec.get("seconds", 0.0))
                child_samples = rec.get("samples") or []
                samples = self._span_samples.setdefault(name, [])
                for d in child_samples:
                    if len(samples) < _SAMPLE_CAP:
                        samples.append(float(d))
                if self._fh is not None:
                    synthetic.extend((name, float(d)) for d in child_samples)
            for name, count in (summary.get("events") or {}).items():
                self._event_counts[name] = self._event_counts.get(name, 0) + int(count)
        # write outside the lock: _write locks on its own
        tid = self._tid()
        for name, dur in synthetic:
            self._write(
                {
                    "type": "span",
                    "name": name,
                    "id": next(self._ids),
                    "parent": None,
                    "tid": tid,
                    "t0": 0.0,
                    "dur": round(dur, 9),
                    "attrs": {"absorbed": True},
                }
            )
        return None

    def publish(self, report, mark=None):
        """Attach a trace summary to a ``SolveReport``-like object."""
        if report is None:
            return None
        summary = self.summary_since(mark)
        perf = getattr(report, "perf", None)
        if isinstance(perf, dict):
            perf["trace"] = summary
        return summary

    def flush(self):
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self):
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                self._fh.close()
                self._fh = None


# -- process-global default tracer -------------------------------------

_active = _NULL
_active_lock = threading.Lock()


def get_tracer():
    """Return the active tracer (a :class:`NullTracer` unless enabled)."""
    return _active


def enable(path=None):
    """Install a live :class:`Tracer` as the process default.

    ``path`` may be ``None`` for in-memory aggregation only (no file).
    Returns the tracer.  Idempotent-ish: a second ``enable`` replaces
    (and closes) the previous tracer.
    """
    global _active
    with _active_lock:
        old = _active
        tracer = Tracer(path)
        _active = tracer
        if isinstance(old, Tracer):
            old.close()
    return tracer


def disable():
    """Restore the no-op default tracer, closing any open file."""
    global _active
    with _active_lock:
        old = _active
        _active = _NULL
        if isinstance(old, Tracer):
            old.close()


@contextmanager
def using(tracer):
    """Temporarily install ``tracer`` as the process default.

    Accepts a :class:`Tracer`, a path (``str``/``os.PathLike``) which is
    opened as a fresh tracer and closed on exit, or ``None`` (no-op).
    """
    global _active
    if tracer is None:
        yield _NULL
        return
    own = False
    if not isinstance(tracer, (Tracer, NullTracer)):
        tracer = Tracer(tracer)
        own = True
    with _active_lock:
        prev = _active
        _active = tracer
    try:
        yield tracer
    finally:
        with _active_lock:
            _active = prev
        if own:
            tracer.close()
        elif isinstance(tracer, Tracer):
            tracer.flush()


def traceable(fn):
    """Add a hidden ``trace=`` kwarg that scopes a tracer to this call.

    ``fn(..., trace="run.jsonl")`` writes a JSONL trace of just this
    call; ``trace=None`` (the default) leaves the ambient tracer alone.
    """

    @functools.wraps(fn)
    def wrapper(*args, trace=None, **kwargs):
        if trace is None:
            return fn(*args, **kwargs)
        with using(trace):
            return fn(*args, **kwargs)

    return wrapper


def spanned(name, **static_attrs):
    """Wrap a function in a span when the active tracer is enabled."""

    def deco(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tr = _active
            if not tr.enabled:
                return fn(*args, **kwargs)
            with tr.span(name, **static_attrs):
                return fn(*args, **kwargs)

        return wrapper

    return deco


def _close_active():  # pragma: no cover - atexit hook
    if isinstance(_active, Tracer):
        _active.close()


atexit.register(_close_active)

_env_path = os.environ.get(TRACE_ENV)
if _env_path:
    enable(_env_path)
