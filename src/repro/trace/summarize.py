"""Offline analysis of JSONL traces: per-span aggregates and a
flame-style rollup.  Exposed as ``python -m repro.trace summarize``.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["load_trace", "span_table", "event_table", "flame_rollup", "main"]


def load_trace(path):
    """Parse a JSONL trace file strictly; raise ``ValueError`` on junk."""
    records = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: malformed JSONL: {exc}") from exc
            if not isinstance(rec, dict) or "type" not in rec:
                raise ValueError(f"{path}:{lineno}: record missing 'type'")
            records.append(rec)
    return records


def _percentile(sorted_vals, q):
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


def span_table(records):
    """Per-span-name aggregates: count/total/mean/p50/p95/max."""
    durs = {}
    for rec in records:
        if rec.get("type") == "span":
            durs.setdefault(rec["name"], []).append(float(rec.get("dur", 0.0)))
    rows = []
    for name, vals in durs.items():
        vals.sort()
        total = sum(vals)
        rows.append(
            {
                "name": name,
                "count": len(vals),
                "total": total,
                "mean": total / len(vals),
                "p50": _percentile(vals, 0.50),
                "p95": _percentile(vals, 0.95),
                "max": vals[-1],
            }
        )
    rows.sort(key=lambda r: r["total"], reverse=True)
    return rows


def event_table(records):
    """Per-event-name counts, sorted by count descending."""
    counts = {}
    for rec in records:
        if rec.get("type") == "event":
            counts[rec["name"]] = counts.get(rec["name"], 0) + 1
    return sorted(counts.items(), key=lambda kv: kv[1], reverse=True)


def flame_rollup(records, top=10):
    """Inclusive time grouped by span call path (``a/b/c``), top-N.

    Paths are reconstructed from the id→parent chain; spans on different
    threads with the same path merge.  Times are inclusive, so a parent
    path's total covers its children.
    """
    by_id = {r["id"]: r for r in records if r.get("type") == "span"}
    paths = {}
    for rec in by_id.values():
        parts = [rec["name"]]
        parent = rec.get("parent")
        hops = 0
        while parent is not None and hops < 64:
            pr = by_id.get(parent)
            if pr is None:
                break
            parts.append(pr["name"])
            parent = pr.get("parent")
            hops += 1
        path = "/".join(reversed(parts))
        stat = paths.setdefault(path, [0, 0.0])
        stat[0] += 1
        stat[1] += float(rec.get("dur", 0.0))
    rows = [
        {"path": path, "count": count, "total": total}
        for path, (count, total) in paths.items()
    ]
    rows.sort(key=lambda r: r["total"], reverse=True)
    return rows[:top]


def _fmt_seconds(s):
    if s >= 1.0:
        return f"{s:8.3f}s"
    return f"{s * 1e3:7.2f}ms"


def summarize(path, top=0, out=None):
    out = out or sys.stdout
    records = load_trace(path)
    spans = span_table(records)
    events = event_table(records)
    out.write(f"trace: {path} ({len(records)} records)\n\n")
    out.write("spans:\n")
    out.write(
        f"  {'name':<28s} {'count':>7s} {'total':>9s} {'mean':>9s}"
        f" {'p50':>9s} {'p95':>9s} {'max':>9s}\n"
    )
    for row in spans:
        out.write(
            f"  {row['name']:<28s} {row['count']:>7d}"
            f" {_fmt_seconds(row['total'])}"
            f" {_fmt_seconds(row['mean'])}"
            f" {_fmt_seconds(row['p50'])}"
            f" {_fmt_seconds(row['p95'])}"
            f" {_fmt_seconds(row['max'])}\n"
        )
    if not spans:
        out.write("  (none)\n")
    out.write("\nevents:\n")
    for name, count in events:
        out.write(f"  {name:<36s} {count:>9d}\n")
    if not events:
        out.write("  (none)\n")
    if top:
        out.write(f"\ntop {top} span paths (inclusive time):\n")
        for row in flame_rollup(records, top=top):
            out.write(
                f"  {_fmt_seconds(row['total'])}  x{row['count']:<5d} {row['path']}\n"
            )
    return {"records": len(records), "spans": spans, "events": events}


def main(argv=None):
    parser = argparse.ArgumentParser(prog="python -m repro.trace")
    sub = parser.add_subparsers(dest="command", required=True)
    p_sum = sub.add_parser("summarize", help="aggregate a JSONL trace file")
    p_sum.add_argument("file", help="trace file produced via REPRO_TRACE / trace=")
    p_sum.add_argument(
        "--top",
        type=int,
        default=0,
        metavar="N",
        help="also print a flame-style rollup of the N hottest span paths",
    )
    args = parser.parse_args(argv)
    summarize(args.file, top=args.top)
    return 0
