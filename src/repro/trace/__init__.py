"""Structured tracing & metrics for the solver stack.

Enable with ``REPRO_TRACE=run.jsonl`` in the environment, a ``trace=``
kwarg on any ``@traceable`` entry point (``transient_analysis``,
``harmonic_balance``, ``solve_mpde``), or programmatically via
:func:`enable`/:func:`using`.  Summarize traces with
``python -m repro.trace summarize run.jsonl [--top N]``.
"""

from .summarize import (
    event_table,
    flame_rollup,
    load_trace,
    main,
    span_table,
    summarize,
)
from .tracer import (
    TRACE_ENV,
    NullTracer,
    Span,
    Tracer,
    disable,
    enable,
    get_tracer,
    spanned,
    traceable,
    using,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "Span",
    "TRACE_ENV",
    "get_tracer",
    "enable",
    "disable",
    "using",
    "traceable",
    "spanned",
    "load_trace",
    "span_table",
    "event_table",
    "flame_rollup",
    "summarize",
    "main",
]
