import sys

from .summarize import main

sys.exit(main())
