"""Structured failure reports for the solver-recovery layer.

Every nonlinear or iterative solve in the tool family — DC Newton, the
transient step loop, shooting, harmonic balance / MPDE, oscillator PSS,
GMRES — may need several *attempts* before it converges (or gives up).
This module defines the record of that process:

* :class:`AttemptRecord` — one strategy attempt: name, iteration count,
  residual trajectory, wall time, and the failure cause when it lost;
* :class:`SolveReport` — the ordered list of attempts for one logical
  solve, attached to every analysis result so callers (and the
  benchmarks) can see *how* an answer was obtained, not just the answer.

These classes are deliberately dependency-free (no imports from the
rest of :mod:`repro`) so the low-level solvers can reference them
without import cycles.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional

__all__ = ["AttemptRecord", "SolveReport", "SweepItemRecord"]


@dataclasses.dataclass
class SweepItemRecord:
    """Per-item ledger entry for one :func:`repro.perf.sweep_map` item.

    The sweep executor fills one of these per sweep point and publishes
    the list through ``stats["items"]`` — the sweep-level analogue of
    the per-attempt :class:`AttemptRecord` a solver ladder produces.

    Attributes
    ----------
    index:
        The item's position in the sweep (result ordering position).
    status:
        ``"pending"`` (never finished — the sweep aborted first),
        ``"ok"``, ``"cached"`` (restored from a checkpoint without
        executing), ``"skipped"`` (quarantined after exhausting its
        failure policy) or ``"failed"`` (the failure that aborted the
        sweep).
    attempts:
        Executions started for this item (1 for a clean first-try run;
        retries and post-crash replays each add one).
    wall_time:
        Total seconds spent executing this item across all attempts.
    backoff_time:
        Total seconds of retry backoff charged to this item.
    failure_cause:
        ``"ExcType: message"`` of the most recent failure — kept even
        when a later attempt succeeded, so transient faults stay
        visible in the ledger.
    """

    index: int
    status: str = "pending"
    attempts: int = 0
    wall_time: float = 0.0
    backoff_time: float = 0.0
    failure_cause: Optional[str] = None

    @property
    def retries(self) -> int:
        """Attempts beyond the first."""
        return max(0, self.attempts - 1)

    def as_dict(self) -> Dict[str, object]:
        """Plain-builtin form (JSON-safe) used by ``stats["items"]``."""
        out = dataclasses.asdict(self)
        out["retries"] = self.retries
        return out


@dataclasses.dataclass
class AttemptRecord:
    """Outcome of one strategy attempt inside an escalation ladder.

    Attributes
    ----------
    strategy:
        Name of the ladder rung that ran (e.g. ``"gmin-stepping"``).
    converged:
        Whether this attempt produced an accepted solution.
    iterations:
        Nonlinear/inner iterations spent by the attempt (0 when the
        strategy failed before iterating).
    residual_norm:
        Final (or best) residual norm the attempt reached.
    wall_time:
        Seconds spent inside the attempt.
    failure_cause:
        ``"ExcType: message"`` when the attempt failed, else ``None``.
    residual_history:
        Residual norms per iteration, when the strategy exposes them.
    detail:
        Free-form strategy-specific extras (homotopy step counts,
        restart sizes, grid shapes, ...).
    """

    strategy: str
    converged: bool
    iterations: int = 0
    residual_norm: float = math.inf
    wall_time: float = 0.0
    failure_cause: Optional[str] = None
    residual_history: List[float] = dataclasses.field(default_factory=list)
    detail: Dict[str, object] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class SolveReport:
    """Full record of one logical solve: every attempt, in ladder order.

    Attributes
    ----------
    analysis:
        Which solve this report describes (``"dc"``, ``"transient"``,
        ``"mpde"``, ``"gmres"``, ...).
    attempts:
        :class:`AttemptRecord` per strategy tried, in order.
    on_failure:
        The failure mode the solve ran under (``"raise"`` / ``"warn"``
        / ``"best_effort"``).
    notes:
        Ladder-level annotations (budget exhaustion, skipped rungs).
    perf:
        Performance counters published by :mod:`repro.perf` (factor
        cache hits/misses, Jacobian evaluations saved, per-stage wall
        times, sweep worker counts).  Empty for solves that never
        touched the performance layer.
    """

    analysis: str
    attempts: List[AttemptRecord] = dataclasses.field(default_factory=list)
    on_failure: str = "raise"
    notes: List[str] = dataclasses.field(default_factory=list)
    perf: Dict[str, object] = dataclasses.field(default_factory=dict)

    # -- outcome ----------------------------------------------------------
    @property
    def converged(self) -> bool:
        """True when some attempt succeeded (ladders stop at success)."""
        return any(a.converged for a in self.attempts)

    @property
    def strategy(self) -> Optional[str]:
        """Name of the winning strategy, or ``None`` if all failed."""
        for a in self.attempts:
            if a.converged:
                return a.strategy
        return None

    @property
    def total_iterations(self) -> int:
        return sum(a.iterations for a in self.attempts)

    @property
    def total_wall_time(self) -> float:
        return sum(a.wall_time for a in self.attempts)

    @property
    def best_residual(self) -> float:
        norms = [a.residual_norm for a in self.attempts if math.isfinite(a.residual_norm)]
        return min(norms) if norms else math.inf

    # -- aggregation ------------------------------------------------------
    def attempt_counts(self) -> Dict[str, int]:
        """Per-strategy attempt counts (the benchmarks report these)."""
        counts: Dict[str, int] = {}
        for a in self.attempts:
            counts[a.strategy] = counts.get(a.strategy, 0) + 1
        return counts

    def record(self, attempt: AttemptRecord) -> AttemptRecord:
        self.attempts.append(attempt)
        return attempt

    def merge(self, other: "SolveReport", prefix: Optional[str] = None) -> None:
        """Absorb a nested solve's attempts (e.g. per-step sub-reports)."""
        for a in other.attempts:
            name = f"{prefix}:{a.strategy}" if prefix else a.strategy
            self.attempts.append(dataclasses.replace(a, strategy=name))
        self.notes.extend(other.notes)
        for key, val in other.perf.items():
            if key == "workers":
                self.perf[key] = max(self.perf.get(key, 1), val)
            elif key == "stage_seconds" and isinstance(val, dict):
                mine = self.perf.setdefault(key, {})
                for stage, sec in val.items():
                    mine[stage] = mine.get(stage, 0.0) + sec
            elif (
                key in self.perf
                and not key.endswith("_rate")
                and isinstance(val, (int, float))
                and not isinstance(val, bool)
            ):
                self.perf[key] = self.perf[key] + val
            else:
                self.perf.setdefault(key, val)
        hits, misses = self.perf.get("factor_hits"), self.perf.get("factor_misses")
        if hits is not None and misses is not None:
            self.perf["factor_hit_rate"] = hits / (hits + misses) if hits + misses else 0.0

    def summary(self) -> str:
        """Human-readable multi-line account of the solve."""
        lines = [
            f"SolveReport[{self.analysis}] "
            f"{'converged' if self.converged else 'FAILED'}"
            + (f" via {self.strategy!r}" if self.strategy else "")
            + f" — {len(self.attempts)} attempt(s), "
            f"{self.total_iterations} iterations, "
            f"{self.total_wall_time:.3g} s"
        ]
        for i, a in enumerate(self.attempts):
            status = "ok" if a.converged else f"failed ({a.failure_cause})"
            lines.append(
                f"  [{i}] {a.strategy}: {status}, "
                f"{a.iterations} iters, |r| = {a.residual_norm:.3e}, "
                f"{a.wall_time:.3g} s"
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        if self.perf:
            hits = self.perf.get("factor_hits", 0)
            misses = self.perf.get("factor_misses", 0)
            saved = self.perf.get("jacobian_evals_saved", 0)
            lines.append(
                f"  perf: factor cache {hits} hit / {misses} miss, "
                f"{saved} Jacobian eval(s) saved"
            )
        return "\n".join(lines)
