"""Structured pre-flight diagnostics for every solver entry point.

PR 1 made every *solve* recoverable; this module makes every *input*
diagnosable.  A floating node, a voltage-source loop, or a degenerate
panel used to surface as a singular-matrix failure deep inside Newton or
GMRES — now the lint passes in :mod:`repro.robust.validate` run before
the solve and collect :class:`Diagnostic` records (stable code,
severity, location, suggested fix) into a :class:`ValidationReport`
attached to the analysis result next to the existing
:class:`~repro.robust.report.SolveReport`.

The enforcement policy mirrors PR 1's ``on_failure``:

* ``"raise"`` (default) — error-severity diagnostics raise
  :class:`ValidationError` carrying the full report;
* ``"warn"`` — errors are reported as Python warnings and the solve
  proceeds (it may still fail, but the report travels with the result);
* ``"ignore"`` — the report is collected and attached, nothing else.

Like :mod:`repro.robust.report`, this module is dependency-free within
the package so every layer (netlist, analysis, EM, ROM) can import it
without cycles.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Dict, List, Optional

__all__ = [
    "ON_INVALID_MODES",
    "SEVERITIES",
    "Diagnostic",
    "ValidationError",
    "ValidationReport",
    "enforce",
]

ON_INVALID_MODES = ("raise", "warn", "ignore")

#: Recognised severities, most severe first.  ``error`` means the solve
#: is expected to fail (structurally singular system, degenerate
#: geometry); ``warning`` means it is expected to struggle (poor
#: conditioning, coarse timestep); ``info`` carries advice only.
SEVERITIES = ("error", "warning", "info")


@dataclasses.dataclass
class Diagnostic:
    """One validated finding about a solver input.

    Attributes
    ----------
    code:
        Stable machine-readable identifier (``"TOPO_FLOATING_SUBGRAPH"``,
        ``"EM_ZERO_AREA_PANEL"``, ...).  Codes are documented in
        DESIGN.md and never change meaning between releases, so tests
        and tooling can match on them.
    severity:
        ``"error"`` / ``"warning"`` / ``"info"``.
    location:
        Where the problem is — a device or node name, a panel index, a
        ``file:line`` reference — empty when global.
    message:
        Human-readable description of the finding.
    suggestion:
        Concrete remedial action (``"add a large resistor to ground"``,
        ``"refine the panel mesh"``), empty when none applies.
    detail:
        Free-form extras for tooling (measured condition number,
        offending value, recommended gmin, ...).
    """

    code: str
    severity: str
    message: str
    location: str = ""
    suggestion: str = ""
    detail: Dict[str, object] = dataclasses.field(default_factory=dict)

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def format(self) -> str:
        loc = f" @ {self.location}" if self.location else ""
        fix = f"  (fix: {self.suggestion})" if self.suggestion else ""
        return f"[{self.severity}] {self.code}{loc}: {self.message}{fix}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form (``python -m repro.validate --json``, the
        service WAL's rejection events)."""
        return dataclasses.asdict(self)


@dataclasses.dataclass
class ValidationReport:
    """Everything the lint passes found about one solver input.

    Attributes
    ----------
    subject:
        What was validated (``"circuit"``, ``"panels"``, ``"hb-setup"``).
    diagnostics:
        Findings in discovery order.
    wall_time:
        Seconds spent linting — benchmarks record this so the pre-flight
        cost stays visible next to the solver attempt counts.
    """

    subject: str = "input"
    diagnostics: List[Diagnostic] = dataclasses.field(default_factory=list)
    wall_time: float = 0.0

    # -- collection -------------------------------------------------------
    def add(
        self,
        code: str,
        severity: str,
        message: str,
        location: str = "",
        suggestion: str = "",
        **detail,
    ) -> Diagnostic:
        diag = Diagnostic(
            code=code,
            severity=severity,
            message=message,
            location=location,
            suggestion=suggestion,
            detail=detail,
        )
        self.diagnostics.append(diag)
        return diag

    def merge(self, other: Optional["ValidationReport"]) -> "ValidationReport":
        """Absorb another report's findings (and lint time)."""
        if other is not None:
            self.diagnostics.extend(other.diagnostics)
            self.wall_time += other.wall_time
        return self

    # -- outcome ----------------------------------------------------------
    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was recorded."""
        return not self.errors

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    def has(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form: verdict + counts + every diagnostic."""
        return {
            "subject": self.subject,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "wall_time": self.wall_time,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def summary(self) -> str:
        """Human-readable multi-line account of the lint."""
        head = (
            f"ValidationReport[{self.subject}] "
            f"{'ok' if self.ok else 'INVALID'} — "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.diagnostics)} total, {self.wall_time:.3g} s"
        )
        return "\n".join([head] + [f"  {d.format()}" for d in self.diagnostics])


class ValidationError(ValueError):
    """Pre-flight validation found error-severity diagnostics.

    Carries the full :class:`ValidationReport` in ``.report`` so callers
    can inspect the structured findings instead of parsing the message.
    """

    def __init__(self, report: ValidationReport):
        self.report = report
        errs = report.errors
        lead = errs[0].format() if errs else "validation failed"
        extra = f" (+{len(errs) - 1} more)" if len(errs) > 1 else ""
        super().__init__(f"{report.subject}: {lead}{extra}")


def enforce(report: ValidationReport, on_invalid: str = "raise") -> ValidationReport:
    """Apply the ``on_invalid`` policy to a collected report.

    ``"raise"`` raises :class:`ValidationError` when the report has
    errors; ``"warn"`` emits one :class:`RuntimeWarning` per error;
    ``"ignore"`` does nothing.  Warning-severity diagnostics never raise
    — they are advisory by definition.  Returns the report for chaining.
    """
    if on_invalid not in ON_INVALID_MODES:
        raise ValueError(
            f"on_invalid must be one of {ON_INVALID_MODES}, got {on_invalid!r}"
        )
    if report.ok or on_invalid == "ignore":
        return report
    if on_invalid == "raise":
        raise ValidationError(report)
    for diag in report.errors:
        warnings.warn(
            f"{report.subject}: {diag.format()}", RuntimeWarning, stacklevel=3
        )
    return report
