"""Solver-recovery layer: escalation ladders, failure reports, fault injection.

Shared by every nonlinear and iterative solve in the tool family (DC,
transient, shooting, HB/MPDE, oscillator PSS, GMRES).  See
:mod:`repro.robust.policy` for the ladder engine and the named default
ladders, :mod:`repro.robust.report` for the structured attempt records
attached to analysis results, and :mod:`repro.robust.faultinject` for
the test harness that proves every rung fires and recovers.
"""

from repro.robust.diagnostics import (
    ON_INVALID_MODES,
    SEVERITIES,
    Diagnostic,
    ValidationError,
    ValidationReport,
    enforce,
)
from repro.robust.faultinject import (
    ChaosSpec,
    FaultClock,
    FaultyMNASystem,
    ServeChaos,
    SweepChaos,
    TransientFault,
    active_serve_chaos,
    active_sweep_chaos,
    chaos_serve,
    chaos_sweeps,
    inject_error,
    inject_nan,
    inject_perturb,
    inject_singular,
    install_serve_chaos,
    install_sweep_chaos,
    tear_final_line,
)
from repro.robust.krylov import DirectSolveResult, robust_direct_solve, robust_gmres
from repro.robust.policy import (
    ON_FAILURE_MODES,
    EscalationPolicy,
    RungOutcome,
    SolveFailure,
    run_ladder,
)
from repro.robust.report import AttemptRecord, SolveReport, SweepItemRecord

__all__ = [
    "ON_FAILURE_MODES",
    "ON_INVALID_MODES",
    "SEVERITIES",
    "AttemptRecord",
    "ChaosSpec",
    "Diagnostic",
    "DirectSolveResult",
    "EscalationPolicy",
    "FaultClock",
    "FaultyMNASystem",
    "RungOutcome",
    "ServeChaos",
    "SolveFailure",
    "SolveReport",
    "SweepChaos",
    "SweepItemRecord",
    "TransientFault",
    "ValidationError",
    "ValidationReport",
    "active_serve_chaos",
    "active_sweep_chaos",
    "chaos_serve",
    "chaos_sweeps",
    "enforce",
    "inject_error",
    "inject_nan",
    "inject_perturb",
    "inject_singular",
    "install_serve_chaos",
    "install_sweep_chaos",
    "robust_direct_solve",
    "robust_gmres",
    "run_ladder",
    "tear_final_line",
]
