"""Pre-flight lint passes over solver inputs.

Four families of checks, each returning a
:class:`~repro.robust.diagnostics.ValidationReport`:

* :func:`lint_circuit` — circuit topology and device parameters:
  floating/dangling nodes, voltage-source (and inductor) loops,
  current-source cutsets, disconnected subgraphs, zero/negative or
  non-finite device parameters.  Works on a :class:`Circuit` or a
  compiled :class:`MNASystem` (anything with a ``.devices`` list) and
  never calls the numerical evaluators, so fault-injection proxies pass
  through untouched.
* :func:`lint_mna` — numerical health of the compiled system: a
  conditioning estimate of the DC Jacobian, scaling/equilibration
  advice, and an automatic gmin recommendation.
* :func:`lint_analysis` — analysis setup: HB/MPDE tone lists consistent
  with the source fundamentals, transient timestep against the fastest
  tone, positive periods.
* :func:`lint_panels` / :func:`lint_segments` / :func:`lint_fd_grid` —
  EM geometry: degenerate/zero-area panels, overlapping plates, extreme
  aspect ratios, invalid filament segments, unresolved FD conductor
  boxes.

Diagnostic codes are stable; DESIGN.md documents the full table.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.robust.diagnostics import ValidationReport, enforce

__all__ = [
    "lint_circuit",
    "lint_mna",
    "lint_analysis",
    "lint_panels",
    "lint_segments",
    "lint_fd_grid",
    "preflight",
    "enforce",
]

#: Node aliases treated as the global reference.
_GROUND = {"0", "gnd", "GND", "ground"}

#: Device type names whose node terminals conduct DC current between
#: them (edges of the DC-path graph).  Capacitors, current sources, and
#: controlled-current outputs are deliberately absent: they provide no
#: DC path, which is exactly what the cutset checks detect.
_DC_EDGES: Dict[str, object] = {
    "Resistor": [(0, 1)],
    "Inductor": [(0, 1)],
    "VSource": [(0, 1)],
    "VCVS": [(0, 1)],  # output branch is voltage-defined; control only senses
    "Diode": [(0, 1)],
    "NonlinearResistor": [(0, 1)],
    "SwitchConductance": [(0, 1)],
    "BJT": [(0, 1), (1, 2)],
    "MOSFET": [(0, 2)],  # channel d-s; the gate is purely capacitive
}

#: Voltage-defined / flux-defined edges: a cycle of these makes the MNA
#: matrix singular (indeterminate circulating branch current).
_VOLTAGE_EDGES: Dict[str, List[Tuple[int, int]]] = {
    "VSource": [(0, 1)],
    "VCVS": [(0, 1)],
    "Inductor": [(0, 1)],
}


class _UnionFind:
    def __init__(self):
        self.parent: Dict[str, str] = {}

    def find(self, a: str) -> str:
        path = []
        while self.parent.setdefault(a, a) != a:
            path.append(a)
            a = self.parent[a]
        for p in path:
            self.parent[p] = a
        return a

    def union(self, a: str, b: str) -> bool:
        """Merge; returns False when a and b were already connected."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[ra] = rb
        return True


def _canon(node: str) -> str:
    return "0" if node in _GROUND else node


def _lint_device_params(dev, rep: ValidationReport) -> None:
    """Zero / negative / non-finite / out-of-range parameter checks."""
    kind = type(dev).__name__
    checks: List[Tuple[str, float]] = []
    for attr in (
        "resistance", "capacitance", "inductance", "coupling", "isat",
        "ideality", "tt", "cj0", "beta_f", "beta_r", "tf", "cje", "cjc",
        "kp", "vth", "lam", "cgs", "cgd", "g_on", "g_off", "gm", "gain",
        "temp",
    ):
        if hasattr(dev, attr):
            checks.append((attr, getattr(dev, attr)))
    for attr, value in checks:
        if not isinstance(value, (int, float)):
            continue
        if not np.isfinite(value):
            rep.add(
                "DEV_NONFINITE_PARAM", "error",
                f"{kind} parameter {attr} = {value!r} is not finite",
                location=dev.name,
                suggestion="fix the netlist value (suffix typo?)",
                param=attr, value=float(value),
            )
    positive_required = {
        "Resistor": ("resistance",),
        "Capacitor": ("capacitance",),
        "Inductor": ("inductance",),
        "Diode": ("isat", "ideality"),
        "BJT": ("isat", "beta_f", "beta_r"),
        "MOSFET": ("kp",),
        "SwitchConductance": ("g_on",),
    }
    for attr in positive_required.get(kind, ()):
        value = getattr(dev, attr, None)
        if value is not None and np.isfinite(value) and value <= 0:
            rep.add(
                "DEV_NONPOSITIVE_PARAM", "error",
                f"{kind} parameter {attr} = {value:g} must be positive",
                location=dev.name,
                suggestion=f"give {dev.name} a positive {attr}",
                param=attr, value=float(value),
            )
    if kind == "MutualInductance":
        k = getattr(dev, "coupling", 0.0)
        if np.isfinite(k) and not (-1.0 < k < 1.0):
            rep.add(
                "DEV_COUPLING_RANGE", "error",
                f"mutual coupling |k| = {abs(k):g} >= 1 makes the "
                "inductance matrix non-positive-definite",
                location=dev.name,
                suggestion="use |k| < 1 (physical coupling)",
                value=float(k),
            )
    negative_suspicious = {
        "Resistor": ("resistance",),
        "Capacitor": ("capacitance",),
        "Inductor": ("inductance",),
        "Diode": ("tt", "cj0"),
        "BJT": ("tf", "cje", "cjc"),
        "MOSFET": ("cgs", "cgd"),
    }
    for attr in negative_suspicious.get(kind, ()):
        value = getattr(dev, attr, None)
        if value is not None and np.isfinite(value) and value < 0:
            rep.add(
                "DEV_NEGATIVE_PARAM", "warning",
                f"{kind} parameter {attr} = {value:g} is negative",
                location=dev.name,
                suggestion="negative element values usually indicate a sign error",
                param=attr, value=float(value),
            )


def lint_circuit(circuit) -> ValidationReport:
    """Topology + parameter lint over a :class:`Circuit` or MNA system.

    Emits (codes documented in DESIGN.md):

    * ``TOPO_NO_GROUND`` — no device touches the reference node;
    * ``TOPO_FLOATING_SUBGRAPH`` — a connected component with no path of
      any kind to ground (its absolute potential is undefined);
    * ``TOPO_NO_DC_PATH`` — a node reachable only through capacitors
      (DC-singular: the classic cap-coupled floating node);
    * ``TOPO_CURRENT_CUTSET`` — current sources inject into a subgraph
      with no DC return path (KCL cannot balance);
    * ``TOPO_VSOURCE_LOOP`` / ``TOPO_INDUCTOR_LOOP`` — a cycle of
      voltage-defined branches (indeterminate circulating current);
    * ``TOPO_DANGLING_NODE`` — a node touched by exactly one terminal;
    * ``DEV_*`` — per-device parameter problems.
    """
    t0 = time.perf_counter()
    rep = ValidationReport(subject="circuit")
    devices = list(getattr(circuit, "devices", circuit))

    touches: Dict[str, int] = {}
    all_uf = _UnionFind()
    dc_uf = _UnionFind()
    grounded = False
    for dev in devices:
        _lint_device_params(dev, rep)
        kind = type(dev).__name__
        nodes = [_canon(n) for n in dev.nodes]
        for n in nodes:
            touches[n] = touches.get(n, 0) + 1
            grounded = grounded or n == "0"
            all_uf.find(n)
            dc_uf.find(n)
        # full connectivity: every device couples all of its terminals
        for a, b in zip(nodes, nodes[1:]):
            all_uf.union(a, b)
        for i, j in _DC_EDGES.get(kind, ()):
            if i < len(nodes) and j < len(nodes):
                dc_uf.union(nodes[i], nodes[j])

    if devices and not grounded:
        rep.add(
            "TOPO_NO_GROUND", "error",
            "no device terminal is connected to ground ('0'/'gnd')",
            suggestion="tie one node to ground to fix the reference potential",
        )

    # --- voltage-defined loops (V sources, VCVS outputs, inductors) ----
    loop_uf = _UnionFind()
    for dev in devices:
        kind = type(dev).__name__
        nodes = [_canon(n) for n in dev.nodes]
        for i, j in _VOLTAGE_EDGES.get(kind, ()):
            if not loop_uf.union(nodes[i], nodes[j]):
                code = (
                    "TOPO_INDUCTOR_LOOP" if kind == "Inductor"
                    else "TOPO_VSOURCE_LOOP"
                )
                rep.add(
                    code, "error",
                    f"{dev.name} closes a loop of voltage-defined branches "
                    "(V sources / VCVS outputs / inductors): the circulating "
                    "branch current is indeterminate and the MNA matrix singular",
                    location=dev.name,
                    suggestion="insert a small series resistance in the loop",
                )

    # --- connectivity to ground ----------------------------------------
    nodes = [n for n in touches if n != "0"]
    ground_all = all_uf.find("0") if "0" in all_uf.parent else None
    ground_dc = dc_uf.find("0") if "0" in dc_uf.parent else None

    floating = [n for n in nodes if ground_all is None or all_uf.find(n) != ground_all]
    if floating and grounded:
        rep.add(
            "TOPO_FLOATING_SUBGRAPH", "error",
            f"node(s) {sorted(floating)} have no connection of any kind to "
            "ground; their absolute potential is undefined",
            location=sorted(floating)[0],
            suggestion="connect the subcircuit to ground (a large leak "
            "resistor is enough)",
            nodes=sorted(floating),
        )

    # DC-path analysis only for nodes that are at least AC-connected
    undc = [
        n for n in nodes
        if n not in floating and (ground_dc is None or dc_uf.find(n) != ground_dc)
    ]
    if undc:
        # classify: does a current source inject into the isolated island?
        isrc_nodes = set()
        for dev in devices:
            if type(dev).__name__ in ("ISource", "VCCS"):
                inject = dev.nodes[:2]
                for n in inject:
                    isrc_nodes.add(_canon(n))
        islands: Dict[str, List[str]] = {}
        for n in undc:
            islands.setdefault(dc_uf.find(n), []).append(n)
        for members in islands.values():
            members = sorted(members)
            if any(n in isrc_nodes for n in members):
                rep.add(
                    "TOPO_CURRENT_CUTSET", "error",
                    f"current source(s) drive node(s) {members} which have no "
                    "DC return path to ground (current-source cutset)",
                    location=members[0],
                    suggestion="shunt the current source with a resistor or "
                    "provide a DC path to ground",
                    nodes=members,
                )
            else:
                rep.add(
                    "TOPO_NO_DC_PATH", "error",
                    f"node(s) {members} reach ground only through "
                    "capacitors: the DC system is singular",
                    location=members[0],
                    suggestion="add a DC leak resistor (or rely on gmin "
                    "stepping with an explicit shunt)",
                    nodes=members,
                )

    for n in sorted(nodes):
        if touches.get(n, 0) == 1:
            rep.add(
                "TOPO_DANGLING_NODE", "warning",
                f"node {n!r} is touched by exactly one device terminal "
                "(open circuit)",
                location=n,
                suggestion="remove the unused terminal or complete the connection",
            )

    rep.wall_time = time.perf_counter() - t0
    return rep


def lint_mna(
    system,
    x0: Optional[np.ndarray] = None,
    condition_limit: float = 1e12,
    dense_limit: int = 400,
) -> ValidationReport:
    """Numerical health probes on the compiled DC Jacobian.

    * ``MNA_EMPTY_ROW`` — an unknown appears in neither G nor C (the
      matrix is structurally singular for every analysis);
    * ``MNA_SINGULAR_JACOBIAN`` — the DC Jacobian G(x0) is numerically
      singular; the detail carries a recommended gmin;
    * ``MNA_ILL_CONDITIONED`` — cond(G) beyond ``condition_limit``;
    * ``MNA_POOR_SCALING`` — row norms spread over > 8 decades, with a
      suggested equilibration.

    Unlike :func:`lint_circuit` this *does* evaluate ``system.G``; call
    it on genuine systems, not fault-injection proxies.
    """
    t0 = time.perf_counter()
    rep = ValidationReport(subject="mna")
    n = system.n
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=float)
    try:
        G = system.G(x)
        C = system.C(x)
    except Exception as exc:  # pragma: no cover - defensive
        rep.add(
            "MNA_EVAL_FAILED", "error",
            f"Jacobian evaluation failed at the probe point: {exc}",
            suggestion="check nonlinear device callbacks",
        )
        rep.wall_time = time.perf_counter() - t0
        return rep

    pattern = (abs(G) + abs(C)).tocsr()
    row_nnz = np.diff(pattern.indptr)
    col_nnz = np.diff(pattern.tocsc().indptr)
    num_nodes = len(system.node_names)
    for idx in np.flatnonzero((row_nnz == 0) | (col_nnz == 0)):
        name = (
            system.node_names[idx]
            if idx < num_nodes
            else f"branch[{system.branch_owner[idx - num_nodes]}]"
        )
        rep.add(
            "MNA_EMPTY_ROW", "error",
            f"unknown {name!r} has an empty row or column in both G and C "
            "(structurally singular)",
            location=str(name),
            suggestion="the node is isolated — connect it or remove it",
        )

    if n and not rep.errors:
        Gd = np.asarray(G.todense(), dtype=float) if n <= dense_limit else None
        cond = np.inf
        if Gd is not None:
            try:
                cond = float(np.linalg.cond(Gd))
            except np.linalg.LinAlgError:  # pragma: no cover
                cond = np.inf
        else:
            import scipy.sparse as sp
            import scipy.sparse.linalg as spla

            try:
                lu = spla.splu(sp.csc_matrix(G))
                inv_norm = spla.onenormest(
                    spla.LinearOperator((n, n), matvec=lu.solve)
                )
                cond = float(spla.onenormest(G.tocsc()) * inv_norm)
            except (RuntimeError, ValueError, np.linalg.LinAlgError):
                cond = np.inf

        diag = np.abs(G.diagonal())
        gmin_rec = float(max(diag.max() if diag.size else 1.0, 1.0) * 1e-12)
        if not np.isfinite(cond) or cond > 1e15:
            rep.add(
                "MNA_SINGULAR_JACOBIAN", "error",
                f"DC Jacobian at the probe point is numerically singular "
                f"(cond ~ {cond:.2e})",
                suggestion=f"add a gmin shunt (recommended gmin = {gmin_rec:.1e} S) "
                "on every node, or fix the topology problems above",
                condition=cond, gmin=gmin_rec,
            )
        elif cond > condition_limit:
            row_norms = np.sqrt(np.asarray(G.multiply(G).sum(axis=1)).ravel())
            nz = row_norms[row_norms > 0]
            spread = float(nz.max() / nz.min()) if nz.size else 1.0
            rep.add(
                "MNA_ILL_CONDITIONED", "warning",
                f"DC Jacobian condition estimate {cond:.2e} exceeds "
                f"{condition_limit:.0e}; Newton and GMRES will struggle",
                suggestion="expect the escalation ladder to engage; consider "
                f"a gmin shunt (~{gmin_rec:.1e} S) or unit rescaling",
                condition=cond, gmin=gmin_rec,
            )
            if spread > 1e8:
                rep.add(
                    "MNA_POOR_SCALING", "warning",
                    f"row norms of G span {spread:.1e}; the conditioning is "
                    "dominated by unit scaling",
                    suggestion="equilibrate: scale rows/columns by the square "
                    "root of their norms (diagonal preconditioner)",
                    spread=spread,
                )
    rep.wall_time = time.perf_counter() - t0
    return rep


def _active_source_freqs(system) -> Tuple[float, ...]:
    """Distinct fundamentals of sources that actually inject signal.

    Zero-amplitude sources (the standard probe idiom for periodic noise
    and small-signal analyses) contribute nothing and must not trigger
    tone-consistency errors.
    """
    freqs: List[float] = []
    for dev in getattr(system, "devices", []):
        wave = getattr(dev, "waveform", None)
        if wave is None:
            continue
        tones = getattr(wave, "tones", None)
        if tones is not None:  # MultiTone: per-tone amplitudes
            pairs = [(amp, freq) for amp, freq, _ in tones]
        else:
            amp = getattr(wave, "amplitude", None)
            pairs = [
                (1.0 if amp is None else amp, f)
                for f in getattr(wave, "frequencies", ())
            ]
        for amp, f in pairs:
            if amp != 0.0 and f > 0 and not any(
                abs(f - g) <= 1e-9 * g for g in freqs
            ):
                freqs.append(f)
    return tuple(sorted(freqs))


def _tone_covers(target: float, freqs: Sequence[float], kmax: int = 8) -> bool:
    """Is ``target`` an integer combination sum(k_i f_i), |k_i| <= kmax?"""
    freqs = [f for f in freqs if f > 0]
    if not freqs:
        return False
    if len(freqs) > 3:  # keep the search bounded; check single-tone multiples
        return any(
            abs(target - k * f) <= 1e-6 * target for f in freqs for k in range(1, kmax + 1)
        )
    for combo in itertools.product(range(-kmax, kmax + 1), repeat=len(freqs)):
        if all(k == 0 for k in combo):
            continue
        mix = sum(k * f for k, f in zip(combo, freqs))
        if abs(target - abs(mix)) <= 1e-6 * target:
            return True
    return False


def lint_analysis(
    system,
    analysis: str,
    freqs: Optional[Sequence[float]] = None,
    dt: Optional[float] = None,
    t_stop: Optional[float] = None,
    t_start: float = 0.0,
    period: Optional[float] = None,
) -> ValidationReport:
    """Analysis-setup lint for one runner invocation.

    ``analysis`` is the runner family (``"dc"``, ``"transient"``,
    ``"shooting"``, ``"hb"``, ``"mpde"``); the keyword arguments carry
    the setup under test.  Source fundamentals come from
    ``system.source_frequencies()`` when available.
    """
    t0 = time.perf_counter()
    rep = ValidationReport(subject=f"{analysis}-setup")
    source_freqs = _active_source_freqs(system)

    if analysis in ("transient",):
        if dt is not None and (not np.isfinite(dt) or dt <= 0):
            rep.add(
                "AN_TIMESTEP_NONPOSITIVE", "error",
                f"timestep dt = {dt!r} must be positive and finite",
                suggestion="pick dt ~ 1/(20 * fastest tone)",
            )
        if (
            t_stop is not None
            and dt is not None
            and np.isfinite(dt)
            and dt > 0
            and t_stop <= t_start
        ):
            rep.add(
                "AN_TIME_RANGE_EMPTY", "error",
                f"t_stop = {t_stop:g} does not exceed t_start = {t_start:g}",
                suggestion="swap or extend the integration window",
            )
        fmax = max(source_freqs, default=0.0)
        if dt is not None and np.isfinite(dt) and dt > 0 and fmax > 0 and dt > 0.5 / fmax:
            rep.add(
                "AN_TIMESTEP_COARSE", "warning",
                f"dt = {dt:g} s undersamples the fastest source tone "
                f"({fmax:g} Hz, Nyquist step {0.5 / fmax:g} s)",
                suggestion=f"use dt <= {1.0 / (20.0 * fmax):.3g} s "
                "(20 points per fastest period)",
                dt=float(dt), fmax=float(fmax),
            )

    if analysis in ("hb", "mpde") and freqs is not None:
        tones = list(freqs)
        for f in tones:
            if not np.isfinite(f) or f <= 0:
                rep.add(
                    "AN_TONE_NONPOSITIVE", "error",
                    f"tone {f!r} must be a positive finite frequency",
                    suggestion="drop DC/negative entries from the tone list",
                )
        clean = [f for f in tones if np.isfinite(f) and f > 0]
        for a, b in itertools.combinations(range(len(clean)), 2):
            if abs(clean[a] - clean[b]) <= 1e-9 * max(clean[a], clean[b]):
                rep.add(
                    "AN_TONE_DUPLICATE", "warning",
                    f"tones {clean[a]:g} and {clean[b]:g} coincide; the "
                    "multi-tone grid wastes an axis",
                    suggestion="merge duplicate tones and raise the harmonic count",
                )
        for fs in source_freqs:
            if clean and not _tone_covers(fs, clean):
                rep.add(
                    "AN_TONE_MISMATCH", "error",
                    f"source fundamental {fs:g} Hz is not an integer "
                    f"combination of the analysis tones {clean}",
                    suggestion="add the source fundamental to the tone list "
                    "(or correct a mistyped frequency)",
                    source_freq=float(fs), tones=[float(f) for f in clean],
                )

    if analysis in ("shooting", "pss"):
        if period is not None and (not np.isfinite(period) or period <= 0):
            rep.add(
                "AN_PERIOD_NONPOSITIVE", "error",
                f"period {period!r} must be positive and finite",
                suggestion="pass the forcing period (slow beat period for "
                "multi-tone stimuli)",
            )
        elif period is not None and source_freqs:
            cycles = [period * f for f in source_freqs]
            if all(abs(c - round(c)) > 1e-3 * max(c, 1.0) for c in cycles):
                rep.add(
                    "AN_PERIOD_MISMATCH", "warning",
                    f"period {period:g} s is not a whole number of cycles of "
                    f"any source tone {tuple(source_freqs)}",
                    suggestion="shooting needs the common (beat) period of "
                    "all stimuli",
                    period=float(period),
                )

    rep.wall_time = time.perf_counter() - t0
    return rep


def lint_panels(
    panels,
    aspect_limit: float = 100.0,
) -> ValidationReport:
    """EM surface-mesh lint: degenerate, overlapping, or extreme panels.

    * ``EM_ZERO_AREA_PANEL`` — zero/degenerate area (collinear edge
      vectors included): the collocation row is all-singular;
    * ``EM_NONFINITE_GEOMETRY`` — NaN/inf coordinates;
    * ``EM_OVERLAPPING_PANELS`` — coincident collocation centers (two
      identical rows make the dense operator exactly singular);
    * ``EM_EXTREME_ASPECT`` — aspect ratio beyond ``aspect_limit``
      (quadrature and conditioning degrade).
    """
    t0 = time.perf_counter()
    rep = ValidationReport(subject="panels")
    panels = list(panels)
    centers = []
    for k, p in enumerate(panels):
        geom = np.concatenate([np.ravel(p.center), np.ravel(p.e1), np.ravel(p.e2)])
        if not np.all(np.isfinite(geom)):
            rep.add(
                "EM_NONFINITE_GEOMETRY", "error",
                "panel has non-finite center or edge vectors",
                location=f"panel[{k}]",
                suggestion="check the mesh generator inputs",
                index=k,
            )
            continue
        centers.append((k, np.ravel(p.center)))
        area = float(p.area)
        s1, s2 = (float(s) for s in p.sides)
        if area <= 0.0 or min(s1, s2) <= 0.0:
            rep.add(
                "EM_ZERO_AREA_PANEL", "error",
                f"panel area {area:g} is degenerate (sides {s1:g} x {s2:g})",
                location=f"panel[{k}]",
                suggestion="drop the panel or fix the discretizer "
                "(collinear edge vectors?)",
                index=k, area=area,
            )
        elif max(s1, s2) / min(s1, s2) > aspect_limit:
            rep.add(
                "EM_EXTREME_ASPECT", "warning",
                f"panel aspect ratio {max(s1, s2) / min(s1, s2):.1f} exceeds "
                f"{aspect_limit:g}",
                location=f"panel[{k}]",
                suggestion="re-mesh with closer-to-square panels",
                index=k,
            )

    if centers:
        pts = np.array([c for _, c in centers])
        scale = float(np.ptp(pts, axis=0).max()) or 1.0
        seen: Dict[Tuple[int, int, int], int] = {}
        for k, c in centers:
            key = tuple(int(round(v / (1e-9 * scale))) for v in c)
            if key in seen:
                rep.add(
                    "EM_OVERLAPPING_PANELS", "error",
                    f"panels [{seen[key]}] and [{k}] share a collocation "
                    "center: the interaction matrix is exactly singular",
                    location=f"panel[{k}]",
                    suggestion="remove duplicated geometry (double-counted "
                    "plate?)",
                    indices=[seen[key], k],
                )
            else:
                seen[key] = k
    rep.wall_time = time.perf_counter() - t0
    return rep


def lint_segments(segments) -> ValidationReport:
    """Filament lint for the PEEC inductance path.

    ``EM_ZERO_LENGTH_SEGMENT`` / ``EM_ZERO_CROSS_SECTION`` /
    ``EM_NONFINITE_GEOMETRY`` — each makes the partial-inductance kernel
    singular or undefined.
    """
    t0 = time.perf_counter()
    rep = ValidationReport(subject="segments")
    for k, seg in enumerate(segments):
        geom = np.concatenate([np.ravel(seg.start), np.ravel(seg.end)])
        if not (
            np.all(np.isfinite(geom))
            and np.isfinite(seg.width)
            and np.isfinite(seg.thickness)
        ):
            rep.add(
                "EM_NONFINITE_GEOMETRY", "error",
                "segment has non-finite endpoints or cross-section",
                location=f"segment[{k}]",
                suggestion="check the path generator inputs",
                index=k,
            )
            continue
        if np.linalg.norm(np.asarray(seg.end) - np.asarray(seg.start)) <= 0.0:
            rep.add(
                "EM_ZERO_LENGTH_SEGMENT", "error",
                "segment start and end coincide (zero filament length)",
                location=f"segment[{k}]",
                suggestion="drop the segment or merge the duplicate path point",
                index=k,
            )
        if seg.width <= 0.0 or seg.thickness <= 0.0:
            rep.add(
                "EM_ZERO_CROSS_SECTION", "error",
                f"segment cross-section {seg.width:g} x {seg.thickness:g} "
                "is not positive",
                location=f"segment[{k}]",
                suggestion="give the trace a physical width and thickness",
                index=k,
            )
    rep.wall_time = time.perf_counter() - t0
    return rep


def lint_fd_grid(domain, shape, boxes) -> ValidationReport:
    """Finite-difference setup lint for the Laplace solver.

    ``FD_DOMAIN_NONPOSITIVE`` / ``FD_BOX_INVERTED`` /
    ``FD_BOX_OUTSIDE_DOMAIN`` / ``FD_BOX_UNRESOLVED`` /
    ``FD_GRID_COARSE`` — setup problems that otherwise surface as
    empty conductors or meaningless capacitances.
    """
    t0 = time.perf_counter()
    rep = ValidationReport(subject="fd-grid")
    domain = tuple(float(d) for d in domain)
    shape = tuple(int(s) for s in shape)
    if any(d <= 0 or not np.isfinite(d) for d in domain):
        rep.add(
            "FD_DOMAIN_NONPOSITIVE", "error",
            f"domain extents {domain} must all be positive",
            suggestion="pass the physical box size in meters",
        )
        rep.wall_time = time.perf_counter() - t0
        return rep
    if any(s < 4 for s in shape):
        rep.add(
            "FD_GRID_COARSE", "warning",
            f"grid shape {shape} leaves fewer than 2 interior planes on "
            "some axis",
            suggestion="use at least 4 grid points per axis",
        )
    h = [d / max(s - 1, 1) for d, s in zip(domain, shape)]
    for k, box in enumerate(boxes):
        lo = tuple(float(v) for v in box.lo)
        hi = tuple(float(v) for v in box.hi)
        if any(l > u for l, u in zip(lo, hi)):
            rep.add(
                "FD_BOX_INVERTED", "error",
                f"conductor box {k} has lo > hi: {lo} vs {hi}",
                location=f"box[{k}]",
                suggestion="swap the corner coordinates",
                index=k,
            )
            continue
        if any(u < 0 or l > d for (l, u), d in zip(zip(lo, hi), domain)):
            rep.add(
                "FD_BOX_OUTSIDE_DOMAIN", "warning",
                f"conductor box {k} lies entirely outside the domain",
                location=f"box[{k}]",
                suggestion="move the box inside the simulation domain",
                index=k,
            )
            continue
        if any((u - l) < hk for (l, u), hk in zip(zip(lo, hi), h)):
            rep.add(
                "FD_BOX_UNRESOLVED", "warning",
                f"conductor box {k} is thinner than the grid spacing on "
                "some axis and may contain no grid points",
                location=f"box[{k}]",
                suggestion="refine the grid or thicken the box",
                index=k,
            )
    rep.wall_time = time.perf_counter() - t0
    return rep


def preflight(
    system,
    analysis: Optional[str] = None,
    numeric: bool = False,
    **setup,
) -> ValidationReport:
    """Composite pre-flight lint used by every analysis runner.

    Runs :func:`lint_circuit` always, :func:`lint_analysis` when
    ``analysis`` names a runner family, and :func:`lint_mna` when
    ``numeric`` is requested *and* the target is a genuine
    :class:`~repro.netlist.mna.MNASystem` (numeric probes call the
    evaluators, which must not consume scheduled faults on injection
    proxies).
    """
    rep = lint_circuit(system)
    rep.subject = f"{analysis or 'solve'}-preflight"
    if analysis:
        rep.merge(lint_analysis(system, analysis, **setup))
    if numeric:
        from repro.netlist.mna import MNASystem

        if isinstance(system, MNASystem) and rep.ok:
            rep.merge(lint_mna(system))
    return rep
