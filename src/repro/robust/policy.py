"""Escalation-ladder engine shared by every nonlinear/iterative solve.

All analyses in the tool family reduce to a Newton loop around a linear
(often Krylov) solve, and all of them can fail on strongly nonlinear RF
circuits.  Instead of each analysis hand-rolling its own try/except
chain, they declare an ordered list of named *strategies* ("rungs") and
hand them to :func:`run_ladder`, which:

* runs the rungs in order, recording an :class:`~repro.robust.report.AttemptRecord`
  per attempt (success or failure) into a :class:`~repro.robust.report.SolveReport`;
* stops at the first success;
* on exhaustion, honours the policy's ``on_failure`` mode:

  - ``"raise"`` (default) — raise :class:`SolveFailure` carrying the report;
  - ``"warn"`` — emit a warning and return the caller's degraded
    best-effort value;
  - ``"best_effort"`` — silently return the degraded value with
    ``converged=False`` in the report.

The default ladders (policy names referenced in DESIGN.md):

========== ==========================================================
analysis   rungs, in escalation order
========== ==========================================================
dc         ``newton`` → ``gmin-stepping`` → ``source-stepping``
           → ``pseudo-transient``
transient  ``step`` → ``step-backoff`` (exponential, floored)
shooting   ``shooting`` → ``transient-settle``
mpde / hb  ``direct`` → ``source-ramp`` → ``harmonic-continuation``
pss        ``direct`` → ``settle-retry``
gmres      ``restart(r)`` → ``restart(2r)`` → ``restart(4r)``
           → ``dense-fallback``
========== ==========================================================
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.linalg.newton import ConvergenceError
from repro.robust.report import AttemptRecord, SolveReport
from repro.trace import get_tracer

__all__ = [
    "ON_FAILURE_MODES",
    "EscalationPolicy",
    "RungOutcome",
    "SolveFailure",
    "run_ladder",
]

ON_FAILURE_MODES = ("raise", "warn", "best_effort")

# Exception family a failing rung is allowed to raise; anything else is
# a programming error and propagates untouched.
_RECOVERABLE = (ConvergenceError, FloatingPointError, ZeroDivisionError, np.linalg.LinAlgError)


class SolveFailure(ConvergenceError):
    """All rungs of an escalation ladder failed.

    Subclasses :class:`~repro.linalg.newton.ConvergenceError` so existing
    ``except ConvergenceError`` call sites keep working; additionally
    carries the full :class:`SolveReport` and the best iterate seen.
    """

    def __init__(self, message: str, report: SolveReport, best=None):
        super().__init__(message)
        self.report = report
        self.best = best  # RungOutcome of the least-bad failed attempt, or None


@dataclasses.dataclass
class RungOutcome:
    """What one strategy hands back to the ladder engine.

    ``value`` is the analysis payload (solution vector, result object,
    ...); the remaining fields feed the :class:`AttemptRecord`.
    """

    value: object
    iterations: int = 0
    residual_norm: float = float("inf")
    history: List[float] = dataclasses.field(default_factory=list)
    detail: Dict[str, object] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class EscalationPolicy:
    """Which rungs run, in what order, under what budgets.

    Attributes
    ----------
    rungs:
        Ordered strategy names to run; ``None`` means the analysis's
        full default ladder.  Unknown names raise ``ValueError`` so a
        typo cannot silently disable recovery.
    on_failure:
        ``"raise"`` / ``"warn"`` / ``"best_effort"`` — see module docs.
    max_attempts:
        Cap on recorded attempts across the ladder.
    time_budget:
        Soft wall-clock budget (seconds): once exceeded, no *further*
        rungs start (the running rung is never interrupted).
    rung_options:
        Per-rung keyword overrides, passed to strategies that accept
        options (e.g. ``{"source-stepping": {"step": 0.05}}``).
    """

    rungs: Optional[Tuple[str, ...]] = None
    on_failure: str = "raise"
    max_attempts: Optional[int] = None
    time_budget: Optional[float] = None
    rung_options: Dict[str, dict] = dataclasses.field(default_factory=dict)

    def __post_init__(self):
        if self.on_failure not in ON_FAILURE_MODES:
            raise ValueError(
                f"on_failure must be one of {ON_FAILURE_MODES}, got {self.on_failure!r}"
            )
        if self.rungs is not None:
            self.rungs = tuple(self.rungs)

    def select(self, strategies: Sequence[Tuple[str, Callable]]) -> List[Tuple[str, Callable]]:
        """Filter/order the analysis's strategies per this policy."""
        if self.rungs is None:
            return list(strategies)
        table = dict(strategies)
        unknown = [name for name in self.rungs if name not in table]
        if unknown:
            raise ValueError(
                f"unknown escalation rung(s) {unknown}; available: {sorted(table)}"
            )
        return [(name, table[name]) for name in self.rungs]

    def options_for(self, rung: str) -> dict:
        return dict(self.rung_options.get(rung, {}))


def _coerce_policy(policy, on_failure: Optional[str]) -> EscalationPolicy:
    if policy is None:
        policy = EscalationPolicy()
    if on_failure is not None:
        policy = dataclasses.replace(policy, on_failure=on_failure)
    return policy


def run_ladder(
    analysis: str,
    strategies: Sequence[Tuple[str, Callable[[], RungOutcome]]],
    policy: Optional[EscalationPolicy] = None,
    on_failure: Optional[str] = None,
    fallback: Optional[Callable[[Optional[RungOutcome], SolveReport], RungOutcome]] = None,
    report: Optional[SolveReport] = None,
) -> Tuple[RungOutcome, SolveReport]:
    """Run ``strategies`` in order until one succeeds.

    Parameters
    ----------
    analysis:
        Label stamped on the report (``"dc"``, ``"mpde"``, ...).
    strategies:
        ``(name, thunk)`` pairs in escalation order.  Each thunk returns
        a :class:`RungOutcome` on success and raises a
        :class:`ConvergenceError`-family exception on failure.  A raised
        exception may carry ``best_x`` / ``best_norm`` / ``iterations``
        / ``history`` attributes (the Newton solver attaches them) —
        they are folded into the attempt record and the best-effort
        candidate.
    policy / on_failure:
        Rung selection and failure mode; ``on_failure`` overrides the
        policy's mode when both are given.
    fallback:
        Builds the degraded ``best_effort``/``warn`` value from the
        least-bad failed attempt.  Without it those modes re-raise.
    report:
        Existing report to append to (used by multi-phase drivers).

    Returns
    -------
    (outcome, report):
        The winning (or degraded) :class:`RungOutcome` and the report.
    """
    pol = _coerce_policy(policy, on_failure)
    rep = report if report is not None else SolveReport(analysis=analysis)
    rep.on_failure = pol.on_failure
    chosen = pol.select(strategies)
    tr = get_tracer()

    best: Optional[RungOutcome] = None
    t_ladder = time.perf_counter()
    for idx, (name, thunk) in enumerate(chosen):
        if pol.max_attempts is not None and len(rep.attempts) >= pol.max_attempts:
            rep.notes.append(f"attempt cap ({pol.max_attempts}) reached before {name!r}")
            break
        if (
            pol.time_budget is not None
            and idx > 0
            and time.perf_counter() - t_ladder > pol.time_budget
        ):
            rep.notes.append(f"time budget ({pol.time_budget:g} s) exhausted before {name!r}")
            break
        t0 = time.perf_counter()
        try:
            if tr.enabled:
                with tr.span("ladder.attempt", analysis=analysis, strategy=name):
                    out = thunk()
            else:
                out = thunk()
        except _RECOVERABLE as exc:
            norm = float(getattr(exc, "best_norm", np.inf) or np.inf)
            rep.record(
                AttemptRecord(
                    strategy=name,
                    converged=False,
                    iterations=int(getattr(exc, "iterations", 0) or 0),
                    residual_norm=norm,
                    wall_time=time.perf_counter() - t0,
                    failure_cause=f"{type(exc).__name__}: {exc}",
                    residual_history=list(getattr(exc, "history", None) or []),
                )
            )
            if tr.enabled:
                tr.event(
                    "ladder.rung",
                    analysis=analysis,
                    strategy=name,
                    converged=False,
                    cause=type(exc).__name__,
                    residual=norm,
                    iterations=int(getattr(exc, "iterations", 0) or 0),
                )
            bx = getattr(exc, "best_x", None)
            if bx is not None and (best is None or norm < best.residual_norm):
                best = RungOutcome(
                    value=bx,
                    iterations=int(getattr(exc, "iterations", 0) or 0),
                    residual_norm=norm,
                    history=list(getattr(exc, "history", None) or []),
                    detail={"strategy": name},
                )
            continue
        if not isinstance(out, RungOutcome):
            out = RungOutcome(value=out)
        rep.record(
            AttemptRecord(
                strategy=name,
                converged=True,
                iterations=out.iterations,
                residual_norm=out.residual_norm,
                wall_time=time.perf_counter() - t0,
                residual_history=list(out.history),
                detail=dict(out.detail),
            )
        )
        if tr.enabled:
            tr.event(
                "ladder.rung",
                analysis=analysis,
                strategy=name,
                converged=True,
                residual=float(out.residual_norm),
                iterations=out.iterations,
            )
        return out, rep

    counts = rep.attempt_counts()
    msg = (
        f"{analysis}: all escalation rungs failed "
        f"({', '.join(f'{k}x{v}' if v > 1 else k for k, v in counts.items()) or 'none ran'}; "
        f"best |r| = {rep.best_residual:.3e})"
    )
    if tr.enabled:
        tr.event(
            "ladder.exhausted",
            analysis=analysis,
            attempts=len(rep.attempts),
            mode=pol.on_failure,
        )
    if pol.on_failure == "raise" or fallback is None:
        raise SolveFailure(msg, rep, best)
    if pol.on_failure == "warn":
        warnings.warn(f"{msg} — returning best-effort result", RuntimeWarning, stacklevel=2)
    out = fallback(best, rep)
    if not isinstance(out, RungOutcome):
        out = RungOutcome(value=out)
    return out, rep
