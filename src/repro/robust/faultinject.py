"""Fault injection for solver callables — proves the recovery ladders work.

The escalation ladders in :mod:`repro.robust.policy` only earn their
keep if every rung demonstrably fires and recovers.  Real circuits that
break *specific* rungs on demand are hard to construct, so instead this
module wraps the callables the solvers consume — residuals, Jacobians,
matvecs, whole MNA systems — and injects faults on a scheduled window of
calls:

* ``inject_nan`` — poison the output with NaNs (models overflowing
  device evaluations);
* ``inject_singular`` — replace a Jacobian with an all-zero (hence
  singular) matrix of the same shape/format;
* ``inject_perturb`` — add a random perturbation (models noisy or
  inconsistent operator applications, which stall Krylov solvers);
* ``inject_error`` — raise a spurious :class:`ConvergenceError`
  (models an inner solver giving up).

Faults are scheduled by a :class:`FaultClock` counting calls, so a test
can make exactly the first ``k`` evaluations fail and then observe the
ladder recover.  All wrappers leave argument/return conventions intact.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

from repro.linalg.newton import ConvergenceError

__all__ = [
    "FaultClock",
    "FaultyMNASystem",
    "inject_error",
    "inject_nan",
    "inject_perturb",
    "inject_singular",
]


@dataclasses.dataclass
class FaultClock:
    """Decides *which* calls of a wrapped callable are faulty.

    Fires on calls ``start .. start + count - 1`` (1-based).  Shared
    between several wrappers it provides a global call ordering, so one
    schedule can span residual and Jacobian evaluations.

    Attributes
    ----------
    start:
        First (1-based) call number that faults.
    count:
        How many consecutive calls fault; ``None`` means "forever".
    calls / fired:
        Observability counters for test assertions.
    """

    start: int = 1
    count: Optional[int] = 1
    calls: int = 0
    fired: int = 0

    def tick(self) -> bool:
        self.calls += 1
        active = self.calls >= self.start and (
            self.count is None or self.calls < self.start + self.count
        )
        if active:
            self.fired += 1
        return active


def inject_nan(fn: Callable, clock: FaultClock) -> Callable:
    """Wrap ``fn`` so scheduled calls return a NaN-poisoned copy."""

    def wrapped(*args, **kwargs):
        out = fn(*args, **kwargs)
        if clock.tick():
            out = np.array(out, dtype=float, copy=True)
            out[...] = np.nan
        return out

    return wrapped


def inject_singular(fn: Callable, clock: FaultClock) -> Callable:
    """Wrap a Jacobian evaluator so scheduled calls return a singular
    (all-zero) matrix of the same shape and storage format."""

    def wrapped(*args, **kwargs):
        out = fn(*args, **kwargs)
        if clock.tick():
            if sp.issparse(out):
                return sp.csr_matrix(out.shape, dtype=out.dtype)
            return np.zeros_like(np.asarray(out))
        return out

    return wrapped


def inject_perturb(
    fn: Callable,
    clock: FaultClock,
    scale: float = 1e-2,
    rng: Optional[np.random.Generator] = None,
) -> Callable:
    """Wrap ``fn`` so scheduled calls get a relative random perturbation.

    Applied to a Krylov matvec this makes the operator inconsistent
    between iterations, which reliably forces GMRES stagnation without
    touching the solver internals.
    """
    gen = rng if rng is not None else np.random.default_rng(0)

    def wrapped(*args, **kwargs):
        out = fn(*args, **kwargs)
        if clock.tick():
            out = np.asarray(out)
            bump = gen.standard_normal(out.shape)
            if np.iscomplexobj(out):
                bump = bump + 1j * gen.standard_normal(out.shape)
            return out + scale * (np.linalg.norm(out) or 1.0) * bump
        return out

    return wrapped


def inject_error(
    fn: Callable,
    clock: FaultClock,
    exc_factory: Callable[[], Exception] = lambda: ConvergenceError("injected failure"),
) -> Callable:
    """Wrap ``fn`` so scheduled calls raise a spurious solver failure."""

    def wrapped(*args, **kwargs):
        if clock.tick():
            raise exc_factory()
        return fn(*args, **kwargs)

    return wrapped


class FaultyMNASystem:
    """Proxy over a compiled :class:`~repro.netlist.mna.MNASystem` with
    selected evaluators replaced by fault-injecting wrappers.

    Everything not overridden delegates to the wrapped system, so the
    proxy drops into any analysis entry point unchanged::

        clock = FaultClock(start=1, count=2)
        bad = FaultyMNASystem(sys, G=inject_singular(sys.G, clock))
        dc_analysis(bad)   # plain Newton fails, the ladder recovers

    Overridable names are the evaluator methods analyses call:
    ``f``, ``G``, ``q``, ``C``, ``b``, ``b_dc``, ``batch_fq``,
    ``batch_jacobians``.
    """

    _OVERRIDABLE = ("f", "G", "q", "C", "b", "b_dc", "batch_fq", "batch_jacobians")

    def __init__(self, system, **overrides):
        unknown = set(overrides) - set(self._OVERRIDABLE)
        if unknown:
            raise ValueError(
                f"cannot override {sorted(unknown)}; allowed: {self._OVERRIDABLE}"
            )
        self._system = system
        self._overrides = overrides

    def __getattr__(self, name):
        overrides = object.__getattribute__(self, "_overrides")
        if name in overrides:
            return overrides[name]
        return getattr(object.__getattribute__(self, "_system"), name)
