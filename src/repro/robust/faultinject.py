"""Fault injection for solver callables — proves the recovery ladders work.

The escalation ladders in :mod:`repro.robust.policy` only earn their
keep if every rung demonstrably fires and recovers.  Real circuits that
break *specific* rungs on demand are hard to construct, so instead this
module wraps the callables the solvers consume — residuals, Jacobians,
matvecs, whole MNA systems — and injects faults on a scheduled window of
calls:

* ``inject_nan`` — poison the output with NaNs (models overflowing
  device evaluations);
* ``inject_singular`` — replace a Jacobian with an all-zero (hence
  singular) matrix of the same shape/format;
* ``inject_perturb`` — add a random perturbation (models noisy or
  inconsistent operator applications, which stall Krylov solvers);
* ``inject_error`` — raise a spurious :class:`ConvergenceError`
  (models an inner solver giving up).

Faults are scheduled by a :class:`FaultClock` counting calls, so a test
can make exactly the first ``k`` evaluations fail and then observe the
ladder recover.  All wrappers leave argument/return conventions intact.

Beyond the solver-callable wrappers, this module also hosts the **sweep
chaos harness** (:class:`SweepChaos` + :func:`chaos_sweeps`): scheduled
per-item faults — transient errors, hangs, and hard worker crashes via
``os._exit`` — injected into :func:`repro.perf.sweep_map` tasks, in
whatever process the task executes.  Attempt counters live in files so a
schedule like "crash the first execution of item 3, succeed afterwards"
holds across worker processes, retries and pool replacements; that is
what makes the sweep executor's recovery paths *testable* instead of
merely written.
"""

from __future__ import annotations

import dataclasses
import os
import time
from contextlib import contextmanager
from typing import Callable, Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.linalg.newton import ConvergenceError

__all__ = [
    "ChaosSpec",
    "FaultClock",
    "FaultyMNASystem",
    "ServeChaos",
    "SweepChaos",
    "TransientFault",
    "active_serve_chaos",
    "active_sweep_chaos",
    "chaos_serve",
    "chaos_sweeps",
    "inject_error",
    "inject_nan",
    "inject_perturb",
    "inject_singular",
    "install_serve_chaos",
    "install_sweep_chaos",
    "tear_final_line",
]


class TransientFault(RuntimeError):
    """Marker for injected transient failures.

    Raised by the chaos harness's ``"error"`` fault kind; retry policies
    in tests key on it to mean "would succeed if tried again".
    """


@dataclasses.dataclass
class FaultClock:
    """Decides *which* calls of a wrapped callable are faulty.

    Fires on calls ``start .. start + count - 1`` (1-based).  Shared
    between several wrappers it provides a global call ordering, so one
    schedule can span residual and Jacobian evaluations.

    Attributes
    ----------
    start:
        First (1-based) call number that faults.
    count:
        How many consecutive calls fault; ``None`` means "forever".
    calls / fired:
        Observability counters for test assertions.
    """

    start: int = 1
    count: Optional[int] = 1
    calls: int = 0
    fired: int = 0

    def tick(self) -> bool:
        self.calls += 1
        active = self.calls >= self.start and (
            self.count is None or self.calls < self.start + self.count
        )
        if active:
            self.fired += 1
        return active


def inject_nan(fn: Callable, clock: FaultClock) -> Callable:
    """Wrap ``fn`` so scheduled calls return a NaN-poisoned copy."""

    def wrapped(*args, **kwargs):
        out = fn(*args, **kwargs)
        if clock.tick():
            out = np.array(out, dtype=float, copy=True)
            out[...] = np.nan
        return out

    return wrapped


def inject_singular(fn: Callable, clock: FaultClock) -> Callable:
    """Wrap a Jacobian evaluator so scheduled calls return a singular
    (all-zero) matrix of the same shape and storage format."""

    def wrapped(*args, **kwargs):
        out = fn(*args, **kwargs)
        if clock.tick():
            if sp.issparse(out):
                return sp.csr_matrix(out.shape, dtype=out.dtype)
            return np.zeros_like(np.asarray(out))
        return out

    return wrapped


def inject_perturb(
    fn: Callable,
    clock: FaultClock,
    scale: float = 1e-2,
    rng: Optional[np.random.Generator] = None,
) -> Callable:
    """Wrap ``fn`` so scheduled calls get a relative random perturbation.

    Applied to a Krylov matvec this makes the operator inconsistent
    between iterations, which reliably forces GMRES stagnation without
    touching the solver internals.
    """
    gen = rng if rng is not None else np.random.default_rng(0)

    def wrapped(*args, **kwargs):
        out = fn(*args, **kwargs)
        if clock.tick():
            out = np.asarray(out)
            bump = gen.standard_normal(out.shape)
            if np.iscomplexobj(out):
                bump = bump + 1j * gen.standard_normal(out.shape)
            return out + scale * (np.linalg.norm(out) or 1.0) * bump
        return out

    return wrapped


def inject_error(
    fn: Callable,
    clock: FaultClock,
    exc_factory: Callable[[], Exception] = lambda: ConvergenceError("injected failure"),
) -> Callable:
    """Wrap ``fn`` so scheduled calls raise a spurious solver failure."""

    def wrapped(*args, **kwargs):
        if clock.tick():
            raise exc_factory()
        return fn(*args, **kwargs)

    return wrapped


#: ``error``/``hang``/``crash`` strike executing tasks (sweep items,
#: service jobs); ``disk_full``/``torn`` strike write-ahead-log appends
#: and result-store writes; ``drop`` (close the connection without a
#: response) is HTTP-only.  Which kinds a fault map accepts is enforced
#: per surface in :class:`ServeChaos`.
_CHAOS_KINDS = ("error", "hang", "crash", "disk_full", "torn", "drop")


@dataclasses.dataclass
class ChaosSpec:
    """One scheduled fault for a single sweep item.

    Attributes
    ----------
    kind:
        ``"error"`` — raise ``exc_type(message)`` (a transient fault);
        ``"hang"`` — sleep ``duration`` seconds before running (models a
        stuck solve; a sweep deadline interrupts the sleep);
        ``"crash"`` — ``os._exit(exit_code)``, killing the worker
        process without cleanup (models OOM kills / segfaults).  Never
        schedule a crash for a task that executes in the parent process
        (serial/thread backends) unless losing the parent is the point.
    times:
        Executions 1..times of the item fault; later executions run
        clean — so ``times=1`` models a transient fault that a single
        retry survives, and a large ``times`` models a poison item.
    duration / exit_code / exc_type / message:
        Kind-specific knobs.  ``exc_type`` must be a module-level
        exception class so the spec stays picklable.
    """

    kind: str = "error"
    times: int = 1
    duration: float = 30.0
    exit_code: int = 87
    exc_type: type = TransientFault
    message: str = "chaos: injected transient fault"

    def __post_init__(self):
        if self.kind not in _CHAOS_KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r}; expected one of {_CHAOS_KINDS}"
            )
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")


class SweepChaos:
    """Deterministic per-item fault injection for sweep executor tasks.

    ``faults`` maps **item index** (the position in the sweep's item
    list) to a :class:`ChaosSpec`.  The harness is picklable, so it
    rides into process-backend workers with the task itself; attempt
    counters are one file per item under ``state_dir`` (a byte appended
    per execution), which makes schedules hold across worker processes,
    retries, pool replacements, and the parent's own serial fallbacks.

    Install it around a block of sweeps with :func:`chaos_sweeps`::

        chaos = SweepChaos({3: ChaosSpec(kind="crash")}, tmp_path)
        with chaos_sweeps(chaos):
            ac_analysis(system, "V1", freqs, backend="process",
                        sweep_options={"on_item_failure": "retry"})
        assert chaos.attempts(3) == 2   # crashed once, replayed once
    """

    def __init__(self, faults: Dict[int, ChaosSpec], state_dir):
        self.faults = {int(k): v for k, v in faults.items()}
        for spec in self.faults.values():
            if not isinstance(spec, ChaosSpec):
                raise TypeError(f"fault values must be ChaosSpec, got {spec!r}")
        self.state_dir = os.fspath(state_dir)
        os.makedirs(self.state_dir, exist_ok=True)

    # -- attempt bookkeeping (file-based: shared across processes) -----
    def _counter_path(self, index: int) -> str:
        return os.path.join(self.state_dir, f"item_{int(index)}.attempts")

    def attempts(self, index: int) -> int:
        """How many times item ``index`` started executing so far."""
        try:
            return os.path.getsize(self._counter_path(index))
        except OSError:
            return 0

    def reset(self) -> None:
        """Forget all attempt counters (fresh schedule)."""
        for index in self.faults:
            try:
                os.remove(self._counter_path(index))
            except OSError:
                pass

    # -- the injection point consumed by repro.perf.sweep --------------
    def before_item(self, index: int) -> None:
        """Called by the sweep executor as item ``index`` starts.

        Counts the execution, then applies the scheduled fault (if any
        remain for this item).  Runs in whatever process executes the
        item, which is exactly where a real fault would strike.
        """
        spec = self.faults.get(int(index))
        if spec is None:
            return
        with open(self._counter_path(index), "ab") as fh:
            fh.write(b".")
            fh.flush()
            n = fh.tell()
        if n > spec.times:
            return
        if spec.kind == "crash":
            os._exit(spec.exit_code)
        if spec.kind == "hang":
            time.sleep(spec.duration)
            return
        raise spec.exc_type(f"{spec.message} (item {index}, attempt {n})")


#: Process-global chaos harness consumed by repro.perf.sweep (parent
#: side — the harness is then shipped to workers with each task).
_SWEEP_CHAOS: Optional[SweepChaos] = None


def install_sweep_chaos(chaos: Optional[SweepChaos]) -> Optional[SweepChaos]:
    """Install (or clear, with ``None``) the active sweep chaos harness.

    Returns the previously installed harness so callers can restore it.
    """
    global _SWEEP_CHAOS
    prev = _SWEEP_CHAOS
    _SWEEP_CHAOS = chaos
    return prev


def active_sweep_chaos() -> Optional[SweepChaos]:
    """The harness :func:`repro.perf.sweep_map` will inject, if any."""
    return _SWEEP_CHAOS


@contextmanager
def chaos_sweeps(chaos: SweepChaos):
    """Scope ``chaos`` over a block: every ``sweep_map`` inside it runs
    with the harness's scheduled faults, whatever backend executes."""
    prev = install_sweep_chaos(chaos)
    try:
        yield chaos
    finally:
        install_sweep_chaos(prev)


# -- service-level chaos ------------------------------------------------

_JOB_KINDS = ("error", "hang", "crash")
_WAL_KINDS = ("disk_full", "torn")
_STORE_KINDS = ("error", "torn", "crash")
_HTTP_KINDS = ("error", "hang", "drop", "torn")


class ServeChaos:
    """Deterministic fault injection for the simulation service.

    Two fault surfaces:

    * ``job_faults`` maps a **netlist tag** — any substring of the
      submitted netlist text, or ``"*"`` for every job — to a
      :class:`ChaosSpec` with a task-level kind (``error``/``hang``/
      ``crash``).  Workers call :meth:`before_job` as a claimed job
      starts solving; the fault strikes *in the worker process*, so a
      ``crash`` models a worker SIGKILL'd mid-job and a ``hang`` models
      a stuck solve the lease TTL must reap.
    * ``wal_faults`` maps a WAL **operation name** (currently
      ``"append"``) to a spec with a log-level kind: ``disk_full``
      makes scheduled appends raise ``ENOSPC``, ``torn`` makes them
      persist only half the line — what a crash mid-``write`` leaves.
    * ``store_faults`` maps a result-store **operation name**
      (currently ``"put"``) to a spec: ``torn`` leaves a half-written
      payload under the final name (the pre-fsync power-loss failure
      mode) and raises, ``crash`` ``os._exit``'s after the temp write
      but before publication (the atomicity regression net), ``error``
      raises before any write.
    * ``http_faults`` maps a **path substring** (or ``"*"``) of HTTP
      front-end requests to a spec: ``drop`` closes the connection
      without any response, ``torn`` sends the headers plus half the
      body then kills the connection mid-response, ``hang`` sleeps
      ``duration`` before handling, ``error`` answers 500.

    All schedules count executions in files under ``state_dir`` (one
    byte per occurrence), so "crash the first attempt, succeed after"
    holds across worker processes and service restarts — the same
    idiom as :class:`SweepChaos`.

    Install process-wide with :func:`chaos_serve`::

        chaos = ServeChaos({"poison": ChaosSpec(kind="crash")}, tmp_path)
        with chaos_serve(chaos):
            svc.drain()
        assert chaos.attempts("poison") == 2   # crashed once, retried
    """

    def __init__(
        self,
        job_faults: Optional[Dict[str, ChaosSpec]] = None,
        state_dir=".",
        wal_faults: Optional[Dict[str, ChaosSpec]] = None,
        store_faults: Optional[Dict[str, ChaosSpec]] = None,
        http_faults: Optional[Dict[str, ChaosSpec]] = None,
    ):
        self.job_faults = dict(job_faults or {})
        self.wal_faults = dict(wal_faults or {})
        self.store_faults = dict(store_faults or {})
        self.http_faults = dict(http_faults or {})
        surfaces = (
            ("job", self.job_faults, _JOB_KINDS),
            ("wal", self.wal_faults, _WAL_KINDS),
            ("store", self.store_faults, _STORE_KINDS),
            ("http", self.http_faults, _HTTP_KINDS),
        )
        for surface, faults, kinds in surfaces:
            for tag, spec in faults.items():
                if not isinstance(spec, ChaosSpec):
                    raise TypeError(
                        f"fault values must be ChaosSpec, got {spec!r}"
                    )
                if spec.kind not in kinds:
                    raise ValueError(
                        f"{surface} fault {tag!r}: kind must be one of "
                        f"{kinds}, got {spec.kind!r}"
                    )
        self.state_dir = os.fspath(state_dir)
        os.makedirs(self.state_dir, exist_ok=True)

    # -- counters (file-based: shared across processes) ----------------
    @staticmethod
    def _slug(text: str) -> str:
        import hashlib

        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]

    def _job_counter(self, tag: str) -> str:
        return os.path.join(self.state_dir, f"serve_job_{self._slug(tag)}.attempts")

    def _wal_counter(self, op: str) -> str:
        return os.path.join(self.state_dir, f"serve_wal_{op}.count")

    def _store_counter(self, op: str) -> str:
        return os.path.join(self.state_dir, f"serve_store_{op}.count")

    def _http_counter(self, tag: str) -> str:
        return os.path.join(
            self.state_dir, f"serve_http_{self._slug(tag)}.count"
        )

    @staticmethod
    def _bump(path: str) -> int:
        with open(path, "ab") as fh:
            fh.write(b".")
            fh.flush()
            return fh.tell()

    @staticmethod
    def _count(path: str) -> int:
        try:
            return os.path.getsize(path)
        except OSError:
            return 0

    def attempts(self, tag: str) -> int:
        """Executions so far of jobs matching ``tag``."""
        return self._count(self._job_counter(tag))

    def wal_ops(self, op: str) -> int:
        """WAL operations of kind ``op`` seen so far."""
        return self._count(self._wal_counter(op))

    def store_ops(self, op: str) -> int:
        """Result-store operations of kind ``op`` seen so far."""
        return self._count(self._store_counter(op))

    def http_ops(self, tag: str) -> int:
        """HTTP requests matching fault tag ``tag`` seen so far."""
        return self._count(self._http_counter(tag))

    def reset(self) -> None:
        paths = (
            [self._job_counter(t) for t in self.job_faults]
            + [self._wal_counter(o) for o in self.wal_faults]
            + [self._store_counter(o) for o in self.store_faults]
            + [self._http_counter(t) for t in self.http_faults]
        )
        for path in paths:
            try:
                os.remove(path)
            except OSError:
                pass

    # -- injection points consumed by repro.serve ----------------------
    def before_job(self, netlist: str, job_id: str = "") -> None:
        """Called by a worker as a claimed job starts solving.

        The first ``job_faults`` tag found in the netlist text (``"*"``
        matches everything) is counted and, while executions remain in
        its schedule, applied — in this process, like a real fault.
        """
        for tag, spec in self.job_faults.items():
            if tag != "*" and tag not in netlist:
                continue
            n = self._bump(self._job_counter(tag))
            if n > spec.times:
                return
            if spec.kind == "crash":
                os._exit(spec.exit_code)
            if spec.kind == "hang":
                time.sleep(spec.duration)
                return
            raise spec.exc_type(f"{spec.message} (job {job_id}, attempt {n})")

    def wal_op(self, op: str) -> Optional[str]:
        """Called by the WAL before operation ``op``; returns the fault
        kind to apply (``"disk_full"``/``"torn"``) or ``None``."""
        spec = self.wal_faults.get(op)
        if spec is None:
            return None
        n = self._bump(self._wal_counter(op))
        if n > spec.times:
            return None
        return spec.kind

    def store_op(self, op: str) -> Optional[ChaosSpec]:
        """Called by the result store before operation ``op``; returns
        the scheduled :class:`ChaosSpec` (the store needs its
        ``exc_type``/``exit_code``, not just the kind) or ``None``."""
        spec = self.store_faults.get(op)
        if spec is None:
            return None
        n = self._bump(self._store_counter(op))
        if n > spec.times:
            return None
        return spec

    def http_op(self, path: str) -> Optional[ChaosSpec]:
        """Called by the HTTP front-end per request; first tag found in
        ``path`` (``"*"`` matches everything) is counted and, while its
        schedule lasts, returned for the server to apply."""
        for tag, spec in self.http_faults.items():
            if tag != "*" and tag not in path:
                continue
            n = self._bump(self._http_counter(tag))
            if n > spec.times:
                return None
            return spec
        return None


def tear_final_line(path) -> int:
    """Truncate a file's final line to half its bytes (a torn write).

    Models a writer killed mid-``write`` — exactly the damage the WAL's
    replay rules and torn-tail guard must absorb.  Returns how many
    bytes were removed (0 when the file is empty or has no final line).
    """
    path = os.fspath(path)
    try:
        size = os.path.getsize(path)
    except OSError:
        return 0
    if size == 0:
        return 0
    with open(path, "r+b") as fh:
        data = fh.read()
        body = data[:-1] if data.endswith(b"\n") else data
        if not body:
            return 0
        start = body.rfind(b"\n") + 1
        line = body[start:]
        if not line:
            return 0
        new_end = start + max(1, len(line) // 2)
        fh.truncate(new_end)
    return size - new_end


#: Process-global service chaos harness consumed by repro.serve (each
#: worker process re-imports this module, so install it *before* fork
#: or inside worker_main's process).
_SERVE_CHAOS: Optional[ServeChaos] = None


def install_serve_chaos(chaos: Optional[ServeChaos]) -> Optional[ServeChaos]:
    """Install (or clear, with ``None``) the active service chaos
    harness; returns the previously installed one."""
    global _SERVE_CHAOS
    prev = _SERVE_CHAOS
    _SERVE_CHAOS = chaos
    return prev


def active_serve_chaos() -> Optional[ServeChaos]:
    """The harness the service's WAL and workers will consult, if any."""
    return _SERVE_CHAOS


@contextmanager
def chaos_serve(chaos: ServeChaos):
    """Scope ``chaos`` over a block of service activity."""
    prev = install_serve_chaos(chaos)
    try:
        yield chaos
    finally:
        install_serve_chaos(prev)


class FaultyMNASystem:
    """Proxy over a compiled :class:`~repro.netlist.mna.MNASystem` with
    selected evaluators replaced by fault-injecting wrappers.

    Everything not overridden delegates to the wrapped system, so the
    proxy drops into any analysis entry point unchanged::

        clock = FaultClock(start=1, count=2)
        bad = FaultyMNASystem(sys, G=inject_singular(sys.G, clock))
        dc_analysis(bad)   # plain Newton fails, the ladder recovers

    Overridable names are the evaluator methods analyses call:
    ``f``, ``G``, ``q``, ``C``, ``b``, ``b_dc``, ``batch_fq``,
    ``batch_jacobians``.
    """

    _OVERRIDABLE = ("f", "G", "q", "C", "b", "b_dc", "batch_fq", "batch_jacobians")

    def __init__(self, system, **overrides):
        unknown = set(overrides) - set(self._OVERRIDABLE)
        if unknown:
            raise ValueError(
                f"cannot override {sorted(unknown)}; allowed: {self._OVERRIDABLE}"
            )
        self._system = system
        self._overrides = overrides

    def __getattr__(self, name):
        overrides = object.__getattribute__(self, "_overrides")
        if name in overrides:
            return overrides[name]
        return getattr(object.__getattribute__(self, "_system"), name)
