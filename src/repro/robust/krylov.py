"""Recovery ladder for Krylov solves: restart escalation + dense fallback.

Restarted GMRES stalls when the restart window is too small for the
operator's spectrum (the classic failure on the shift-register-like
operators HB preconditioning sometimes leaves behind).  The remedy
ladder is cheap and mechanical:

    restart(r)  →  restart(2r)  →  restart(4r)  →  dense-fallback

The dense fallback materializes the operator column-by-column (``n``
matvecs) and solves directly with LAPACK; it is gated by
``dense_max_n`` because that cost is only acceptable for small systems
(which is exactly where stagnation is usually fatal rather than just
slow).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.linalg.gmres import GMRESResult, gmres
from repro.linalg.newton import ConvergenceError
from repro.robust.policy import EscalationPolicy, RungOutcome, run_ladder

__all__ = ["robust_gmres"]


def _materialize(matvec: Callable, n: int, dtype) -> np.ndarray:
    A = np.empty((n, n), dtype=dtype)
    e = np.zeros(n, dtype=dtype)
    for j in range(n):
        e[j] = 1.0
        A[:, j] = matvec(e)
        e[j] = 0.0
    return A


def robust_gmres(
    matvec: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    restart: int = 60,
    maxiter: int = 2000,
    precond: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    policy: Optional[EscalationPolicy] = None,
    on_failure: Optional[str] = None,
    dense_max_n: int = 1500,
    restart_growth: tuple = (1, 2, 4),
) -> GMRESResult:
    """GMRES with an escalation ladder; returns a report-carrying result.

    Same contract as :func:`repro.linalg.gmres.gmres`, plus:

    * on non-convergence the restart size escalates through
      ``restart * g for g in restart_growth`` (capped at ``len(b)``);
    * if every restart size stalls and ``len(b) <= dense_max_n``, the
      operator is materialized and solved densely;
    * ``policy``/``on_failure`` control rung selection and whether
      exhaustion raises (:class:`~repro.robust.policy.SolveFailure`) or
      returns the best iterate with ``converged=False``
      (``"best_effort"``/``"warn"``).

    The returned :class:`GMRESResult` carries the
    :class:`~repro.robust.report.SolveReport` in ``.report``.
    """
    b = np.asarray(b)
    n = b.shape[0]

    def krylov_rung(r):
        def thunk():
            res = gmres(
                matvec, b, x0=x0, tol=tol, restart=r, maxiter=maxiter, precond=precond
            )
            if not res.converged:
                exc = ConvergenceError(
                    f"GMRES(restart={r}) stalled at relres {res.final_residual:.3e}"
                )
                exc.best_x = res.x
                exc.best_norm = res.final_residual
                exc.iterations = res.iterations
                exc.history = res.residuals
                raise exc
            return RungOutcome(
                value=res,
                iterations=res.iterations,
                residual_norm=res.final_residual,
                history=res.residuals,
                detail={"restart": r},
            )

        return thunk

    def dense_thunk():
        if n > dense_max_n:
            raise ConvergenceError(
                f"dense fallback refused: n = {n} > dense_max_n = {dense_max_n}"
            )
        dtype = np.result_type(b.dtype, np.float64)
        A = _materialize(matvec, n, dtype)
        try:
            x = np.linalg.solve(A, b.astype(dtype))
        except np.linalg.LinAlgError:
            x, *_ = np.linalg.lstsq(A, b.astype(dtype), rcond=None)
        rel = float(np.linalg.norm(b - matvec(x)) / (np.linalg.norm(b) or 1.0))
        if not np.isfinite(rel) or rel > max(tol * 100, 1e-6):
            exc = ConvergenceError(f"dense fallback residual {rel:.3e} still too large")
            exc.best_x = x
            exc.best_norm = rel
            raise exc
        return RungOutcome(
            value=GMRESResult(x, True, n, [rel]),
            iterations=n,
            residual_norm=rel,
            detail={"dense": True},
        )

    sizes = []
    for g in restart_growth:
        r = min(int(restart * g), n)
        if r not in sizes:
            sizes.append(r)
    strategies = [(f"restart({r})", krylov_rung(r)) for r in sizes]
    strategies.append(("dense-fallback", dense_thunk))

    def fallback(best, rep):
        if best is not None and best.value is not None:
            res = GMRESResult(
                np.asarray(best.value),
                False,
                best.iterations,
                list(best.history) or [best.residual_norm],
            )
        else:
            res = GMRESResult(
                np.zeros(n, dtype=np.result_type(b.dtype, np.float64)), False, 0, []
            )
        return RungOutcome(value=res, residual_norm=best.residual_norm if best else np.inf)

    out, rep = run_ladder(
        "gmres", strategies, policy=policy, on_failure=on_failure, fallback=fallback
    )
    result: GMRESResult = out.value
    result.report = rep
    return result
