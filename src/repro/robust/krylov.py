"""Recovery ladder for Krylov solves: restart escalation + dense fallback.

Restarted GMRES stalls when the restart window is too small for the
operator's spectrum (the classic failure on the shift-register-like
operators HB preconditioning sometimes leaves behind).  The remedy
ladder is cheap and mechanical:

    restart(r)  →  restart(2r)  →  restart(4r)  →  jacobi-precond  →  dense-fallback

The Jacobi rung re-runs the largest restart with a diagonal
(equilibration) preconditioner — available only when the caller can
supply the operator diagonal via ``jacobi_diag`` (the EM solvers can:
the FD Laplacian and the IES³ compressed operator both expose it
cheaply).  The dense fallback materializes the operator
column-by-column (``n`` matvecs) and solves directly with LAPACK; it is
gated by ``dense_max_n`` because that cost is only acceptable for small
systems (which is exactly where stagnation is usually fatal rather than
just slow).

:func:`robust_direct_solve` is the direct-solver counterpart used by
the ROM layer: LU first, then GMRES with Jacobi preconditioning, then a
least-squares (minimum-norm) rung for singular-but-consistent systems.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np

from repro.linalg.gmres import GMRESResult, gmres
from repro.linalg.newton import ConvergenceError
from repro.robust.policy import EscalationPolicy, RungOutcome, run_ladder
from repro.robust.report import SolveReport
from repro.trace import get_tracer

__all__ = ["robust_gmres", "robust_direct_solve", "DirectSolveResult"]


def _materialize(matvec: Callable, n: int, dtype) -> np.ndarray:
    A = np.empty((n, n), dtype=dtype)
    e = np.zeros(n, dtype=dtype)
    for j in range(n):
        e[j] = 1.0
        A[:, j] = matvec(e)
        e[j] = 0.0
    return A


def robust_gmres(
    matvec: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    restart: int = 60,
    maxiter: int = 2000,
    precond: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    policy: Optional[EscalationPolicy] = None,
    on_failure: Optional[str] = None,
    dense_max_n: int = 1500,
    restart_growth: tuple = (1, 2, 4),
    jacobi_diag: Optional[np.ndarray] = None,
) -> GMRESResult:
    """GMRES with an escalation ladder; returns a report-carrying result.

    Same contract as :func:`repro.linalg.gmres.gmres`, plus:

    * on non-convergence the restart size escalates through
      ``restart * g for g in restart_growth`` (capped at ``len(b)``);
    * when ``jacobi_diag`` (the operator diagonal) is supplied and no
      preconditioner was passed, a ``jacobi-precond`` rung re-runs the
      largest restart with diagonal scaling before going dense;
    * if every restart size stalls and ``len(b) <= dense_max_n``, the
      operator is materialized and solved densely;
    * ``policy``/``on_failure`` control rung selection and whether
      exhaustion raises (:class:`~repro.robust.policy.SolveFailure`) or
      returns the best iterate with ``converged=False``
      (``"best_effort"``/``"warn"``).

    The returned :class:`GMRESResult` carries the
    :class:`~repro.robust.report.SolveReport` in ``.report``.
    """
    b = np.asarray(b)
    n = b.shape[0]

    def krylov_rung(r, rung_precond=None, label=""):
        def thunk():
            res = gmres(
                matvec,
                b,
                x0=x0,
                tol=tol,
                restart=r,
                maxiter=maxiter,
                precond=rung_precond,
            )
            if not res.converged:
                exc = ConvergenceError(
                    f"GMRES({label or f'restart={r}'}) stalled at relres "
                    f"{res.final_residual:.3e}"
                )
                exc.best_x = res.x
                exc.best_norm = res.final_residual
                exc.iterations = res.iterations
                exc.history = res.residuals
                raise exc
            return RungOutcome(
                value=res,
                iterations=res.iterations,
                residual_norm=res.final_residual,
                history=res.residuals,
                detail={"restart": r, "precond": label or None},
            )

        return thunk

    def dense_thunk():
        if n > dense_max_n:
            raise ConvergenceError(
                f"dense fallback refused: n = {n} > dense_max_n = {dense_max_n}"
            )
        tr = get_tracer()
        if tr.enabled:
            tr.event("krylov.dense_fallback", n=n)
        dtype = np.result_type(b.dtype, np.float64)
        A = _materialize(matvec, n, dtype)
        try:
            x = np.linalg.solve(A, b.astype(dtype))
        except np.linalg.LinAlgError:
            x, *_ = np.linalg.lstsq(A, b.astype(dtype), rcond=None)
        rel = float(np.linalg.norm(b - matvec(x)) / (np.linalg.norm(b) or 1.0))
        if not np.isfinite(rel) or rel > max(tol * 100, 1e-6):
            exc = ConvergenceError(f"dense fallback residual {rel:.3e} still too large")
            exc.best_x = x
            exc.best_norm = rel
            raise exc
        return RungOutcome(
            value=GMRESResult(x, True, n, [rel]),
            iterations=n,
            residual_norm=rel,
            detail={"dense": True},
        )

    sizes = []
    for g in restart_growth:
        r = min(int(restart * g), n)
        if r not in sizes:
            sizes.append(r)
    strategies = [(f"restart({r})", krylov_rung(r, precond)) for r in sizes]
    if jacobi_diag is not None and precond is None:
        d = np.asarray(jacobi_diag)
        safe = np.where(np.abs(d) > 0, d, 1.0)
        strategies.append(
            (
                "jacobi-precond",
                krylov_rung(sizes[-1], lambda v: v / safe, label="jacobi"),
            )
        )
    strategies.append(("dense-fallback", dense_thunk))

    def fallback(best, rep):
        if best is not None and best.value is not None:
            res = GMRESResult(
                np.asarray(best.value),
                False,
                best.iterations,
                list(best.history) or [best.residual_norm],
            )
        else:
            res = GMRESResult(
                np.zeros(n, dtype=np.result_type(b.dtype, np.float64)), False, 0, []
            )
        return RungOutcome(value=res, residual_norm=best.residual_norm if best else np.inf)

    out, rep = run_ladder(
        "gmres", strategies, policy=policy, on_failure=on_failure, fallback=fallback
    )
    result: GMRESResult = out.value
    result.report = rep
    return result


@dataclasses.dataclass
class DirectSolveResult:
    """Outcome of :func:`robust_direct_solve`.

    ``x`` has the shape of ``b``; ``report`` records which rung produced
    it (``lu`` / ``gmres-jacobi`` / ``lstsq``).
    """

    x: np.ndarray
    converged: bool
    residual_norm: float
    report: SolveReport


def robust_direct_solve(
    A,
    b: np.ndarray,
    tol: float = 1e-9,
    policy: Optional[EscalationPolicy] = None,
    on_failure: Optional[str] = None,
    report: Optional[SolveReport] = None,
) -> DirectSolveResult:
    """Direct linear solve with an escalation ladder for the ROM layer.

    ``A`` may be dense or ``scipy.sparse``; ``b`` may be a vector or a
    matrix of right-hand sides.  The ladder is

        lu  →  gmres-jacobi  →  lstsq

    * ``lu`` — the ordinary factorization path (``splu`` for sparse,
      LAPACK otherwise) with an a-posteriori residual check, so a
      "successful" factorization of a near-singular matrix that returns
      garbage still escalates;
    * ``gmres-jacobi`` — :func:`robust_gmres` per right-hand side with a
      diagonal preconditioner (handles ill-conditioning that defeats a
      pivoted LU in float64);
    * ``lstsq`` — dense minimum-norm solution, which recovers
      singular-but-consistent systems (e.g. a descriptor system probed
      exactly at a pole of the resolvent).

    Exhaustion obeys ``on_failure`` like every other ladder: ``raise``
    raises :class:`~repro.robust.policy.SolveFailure`; ``warn`` /
    ``best_effort`` return the best iterate with ``converged=False``.
    """
    import scipy.sparse as sp

    b = np.asarray(b)
    sparse = sp.issparse(A)
    n = A.shape[0]
    B = b.reshape(n, -1) if b.ndim == 1 else b
    bnorm = float(np.linalg.norm(B)) or 1.0
    dtype = np.result_type(
        A.dtype if hasattr(A, "dtype") else np.float64, B.dtype, np.float64
    )

    def _residual(X) -> float:
        return float(np.linalg.norm(B - A @ X) / bnorm)

    def _check(X, what: str) -> RungOutcome:
        rel = _residual(X)
        if not np.isfinite(rel) or rel > max(tol * 100, 1e-6):
            exc = ConvergenceError(f"{what} residual {rel:.3e} too large")
            exc.best_x = X
            exc.best_norm = rel
            raise exc
        return RungOutcome(value=X, residual_norm=rel, detail={"rung": what})

    def lu_thunk():
        try:
            if sparse:
                import scipy.sparse.linalg as spla

                X = spla.splu(sp.csc_matrix(A, dtype=dtype)).solve(
                    np.asarray(B, dtype=dtype)
                )
            else:
                X = np.linalg.solve(np.asarray(A, dtype=dtype), B.astype(dtype))
        except (RuntimeError, ValueError) as exc:  # splu: "exactly singular"
            raise ConvergenceError(f"LU factorization failed: {exc}") from exc
        return _check(X, "lu")

    def gmres_thunk():
        Ad = A.tocsr() if sparse else np.asarray(A, dtype=dtype)
        diag = Ad.diagonal() if sparse else np.diagonal(Ad)
        X = np.empty((n, B.shape[1]), dtype=dtype)
        iters = 0
        for j in range(B.shape[1]):
            res = robust_gmres(
                lambda v: Ad @ v,
                np.asarray(B[:, j], dtype=dtype),
                tol=max(tol, 1e-12),
                restart=min(60, n),
                jacobi_diag=diag,
                on_failure="best_effort",
            )
            X[:, j] = res.x
            iters += res.iterations
        out = _check(X, "gmres-jacobi")
        out.iterations = iters
        return out

    def lstsq_thunk():
        Ad = np.asarray(A.todense() if sparse else A, dtype=dtype)
        X, *_ = np.linalg.lstsq(Ad, B.astype(dtype), rcond=None)
        return _check(X, "lstsq")

    strategies = [
        ("lu", lu_thunk),
        ("gmres-jacobi", gmres_thunk),
        ("lstsq", lstsq_thunk),
    ]

    def fallback(best, rep):
        X = (
            np.asarray(best.value)
            if best is not None and best.value is not None
            else np.zeros((n, B.shape[1]), dtype=dtype)
        )
        return RungOutcome(
            value=X, residual_norm=best.residual_norm if best else np.inf
        )

    out, rep = run_ladder(
        "direct-solve",
        strategies,
        policy=policy,
        on_failure=on_failure,
        fallback=fallback,
        report=report,
    )
    X = np.asarray(out.value)
    return DirectSolveResult(
        x=X.reshape(b.shape),
        converged=rep.converged,
        residual_norm=out.residual_norm
        if out.residual_norm is not None
        else _residual(X.reshape(n, -1)),
        report=rep,
    )
