"""Classic SPICE-class analyses: DC, AC, transient, shooting, noise."""

from repro.analysis.ac import ACResult, ac_analysis, ac_excitation_vector
from repro.analysis.dc import DCResult, dc_analysis
from repro.analysis.noise import NoiseResult, noise_analysis
from repro.analysis.pnoise import PNoiseResult, periodic_noise_analysis
from repro.analysis.poles import PoleResult, pole_analysis
from repro.analysis.shooting import (
    ShootingResult,
    integrate_with_sensitivity,
    shooting_analysis,
)
from repro.analysis.transient import TransientResult, step_once, transient_analysis

__all__ = [
    "DCResult",
    "dc_analysis",
    "ACResult",
    "ac_analysis",
    "ac_excitation_vector",
    "TransientResult",
    "transient_analysis",
    "step_once",
    "ShootingResult",
    "shooting_analysis",
    "integrate_with_sensitivity",
    "NoiseResult",
    "noise_analysis",
    "PNoiseResult",
    "periodic_noise_analysis",
    "PoleResult",
    "pole_analysis",
]
