"""Small-signal pole analysis of the linearized circuit.

The natural frequencies of the circuit linearized at an operating point
are the finite generalized eigenvalues of the pencil ``(-G, C)``:

    (G + s C) v = 0.

Two RF uses, both exercised in the tests:

* **oscillator startup**: a negative-resistance oscillator must have a
  right-half-plane complex pole pair at its DC point (paper sec. 3's
  oscillators are exactly such circuits before the nonlinearity limits
  them);
* **stability audit** of amplifiers/filters before running the
  steady-state engines, which all assume a stable (or deliberately
  autonomous) circuit.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np
import scipy.linalg as sla

from repro.analysis.dc import dc_analysis
from repro.netlist.mna import MNASystem

__all__ = ["PoleResult", "pole_analysis"]


@dataclasses.dataclass
class PoleResult:
    """Finite small-signal poles (rad/s, complex) at an operating point."""

    poles: np.ndarray
    x_dc: np.ndarray

    @property
    def unstable(self) -> np.ndarray:
        """Right-half-plane poles (growing natural responses)."""
        return self.poles[np.real(self.poles) > 0]

    @property
    def is_stable(self) -> bool:
        return self.unstable.size == 0

    def frequencies_hz(self) -> np.ndarray:
        """|Im s| / 2 pi of the oscillatory poles."""
        osc = self.poles[np.abs(np.imag(self.poles)) > 0]
        return np.abs(np.imag(osc)) / (2 * np.pi)

    def dominant(self) -> complex:
        """The pole closest to the imaginary axis (slowest dynamics)."""
        return complex(self.poles[np.argmin(np.abs(np.real(self.poles)))])


def pole_analysis(
    system: MNASystem,
    x_dc: Optional[np.ndarray] = None,
    infinity_tol: float = 1e-8,
) -> PoleResult:
    """Generalized-eigenvalue pole extraction at the DC point.

    Dense computation — intended for the (small to medium) circuits this
    library targets; large linear blocks should be reduced first
    (:mod:`repro.rom`), which preserves the dominant poles by
    construction.
    """
    if x_dc is None:
        x_dc = dc_analysis(system).x
    G = system.G(x_dc).toarray()
    C = system.C(x_dc).toarray()
    w = sla.eig(-G, C, right=False, homogeneous_eigvals=True)
    alphas, betas = np.asarray(w[0]), np.asarray(w[1])
    scale = float(np.max(np.abs(betas))) or 1.0
    finite = np.abs(betas) > infinity_tol * scale
    poles = alphas[finite] / betas[finite]
    return PoleResult(poles=poles, x_dc=x_dc)
