"""Periodic (cyclostationary) noise analysis around a periodic steady state.

Paper sec. 1: "Noise sources and signals in RF circuits are modulated by
time-varying signals and can only be modeled by cyclo-stationary and
nonstationary stochastic processes."  Stationary noise analysis around a
DC point misses two effects the paper cares about: *noise folding* (the
LPTV circuit mixes noise from every sideband f + k f0 down to f) and
*bias modulation* of shot/channel noise along the large-signal orbit.

Formulation (the classical frequency-domain "pnoise"): linearize the
circuit about its periodic steady state x_s(t), giving the LPTV system

    C(t) dw/dt + G(t) w = u(t),      C(t) = dq/dx|_{x_s(t)}, etc.

In the HB sample basis, the response to an input at envelope frequency
``nu`` is governed by the *offset Jacobian*

    A(nu) = D_{nu} C_blocks + G_blocks,

where ``D_nu`` is the spectral-derivative circulant with eigenvalues
``lambda_k + j 2 pi nu``.  One transposed solve per analysis frequency,

    A(nu)^T z = (1/N) e_out  (replicated over the samples),

yields the sampled harmonic-weighted transfer H(t_i, nu) = N z_i^T u_s,
and the time-averaged output PSD including all folding terms is

    S_out(f) = N * sum_s sum_i |z_i^T u_s|^2  psd_s(t_i),

with ``psd_s(t_i)`` the (bias-modulated, one-sided) white PSD of source
``s`` evaluated along the orbit.  In the time-invariant limit this
collapses exactly to :func:`repro.analysis.noise.noise_analysis`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.netlist.mna import MNASystem

__all__ = ["PNoiseResult", "periodic_noise_analysis"]


@dataclasses.dataclass
class PNoiseResult:
    """Cyclostationary output noise over the analysis frequencies.

    ``psd`` is the time-averaged one-sided output voltage noise density
    (V^2/Hz); ``contributions`` maps source names to their share;
    ``stationary_psd`` is what a (wrong, for switching circuits) DC-point
    analysis would have predicted, kept for the folding comparison.
    """

    freqs: np.ndarray
    psd: np.ndarray
    contributions: Dict[str, np.ndarray]

    def spot_noise_volts(self, k: int = 0) -> float:
        return float(np.sqrt(self.psd[k]))


def periodic_noise_analysis(
    solution,
    output_node,
    freqs: Sequence[float],
    harmonic: int = 0,
) -> PNoiseResult:
    """Output noise of a periodically driven circuit (one-tone PSS).

    Parameters
    ----------
    solution:
        A converged single-axis (one-tone) :class:`MPDESolution` — e.g.
        ``harmonic_balance(...).solution`` — whose grid supplies both the
        sampled orbit and the spectral differentiation.
    output_node:
        Node name (or unknown index) observed.
    freqs:
        Analysis frequencies (the envelope offset; typically below the
        large-signal fundamental).
    harmonic:
        Observe the noise sidebands around ``harmonic * f0 + freq``
        instead of baseband: ``harmonic=1`` gives the noise skirt riding
        on the carrier (what a spectrum analyzer shows next to the LO),
        ``harmonic=0`` the demodulated/baseband noise.
    """
    # imported here: repro.mpde imports repro.analysis.dc, so a module-level
    # import would be circular
    from repro.mpde.mpde_core import _block_diag_sparse, _circulant_matrix

    system: MNASystem = solution.system
    grid = solution.grid
    if grid.ndim != 1:
        raise ValueError("periodic noise analysis expects a one-tone (single-axis) PSS")
    n = system.n
    N = grid.total

    X = grid.columns(solution.x, n)  # (n, N) orbit samples
    g_vals, c_vals = system.batch_jacobians(X)
    pattern = system.jacobian_pattern()
    G_big = _block_diag_sparse(pattern, g_vals, n, N)
    C_big = _block_diag_sparse(pattern, c_vals, n, N)

    lam = grid.axes[0].deriv_eigenvalues()

    out_idx = system.node(output_node) if isinstance(output_node, str) else int(output_node)
    b_adj = np.zeros(n * N, dtype=complex)
    # select the observed output harmonic: Y_k = (1/N) sum_i w_i e^{-j2pi k i/N}
    phase = np.exp(-2j * np.pi * harmonic * np.arange(N) / N)
    b_adj[out_idx::n] = phase / N

    injections = system.noise_injection_vectors()
    # bias-modulated one-sided PSDs along the orbit, shape (N,) per source
    psd_samples = [src.psd_at(X) for src, _ in injections]

    freqs = np.asarray(list(freqs), dtype=float)
    total = np.zeros(freqs.size)
    contributions: Dict[str, np.ndarray] = {
        src.name: np.zeros(freqs.size) for src, _ in injections
    }

    for kf, f0 in enumerate(freqs):
        eigs = lam + 2j * np.pi * f0
        D = _circulant_matrix(eigs)
        D_big = sp.kron(D, sp.identity(n))
        A = (D_big @ C_big + G_big).tocsc()
        z = spla.spsolve(A.T, b_adj)
        Z = z.reshape(N, n)
        for (src, u), s_vals in zip(injections, psd_samples):
            transfer = Z @ u  # z_i^T u per sample
            contrib = float(N * np.sum(np.abs(transfer) ** 2 * s_vals))
            contributions[src.name][kf] += contrib
            total[kf] += contrib

    return PNoiseResult(freqs=freqs, psd=total, contributions=contributions)
