"""Small-signal AC analysis.

Linearizes the circuit at its DC operating point and solves

    (G + j omega C) dx = db

per frequency, where ``db`` is a unit (or user-set) excitation applied at
one independent source.  Standard substrate shared by the noise analysis
and used by the benchmarks to cross-check HB in the small-signal limit.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np
import scipy.sparse.linalg as spla

from repro.analysis.dc import dc_analysis
from repro.netlist.components import ISource, VSource
from repro.netlist.mna import MNASystem
from repro.perf import sweep_map

__all__ = ["ACResult", "ac_analysis", "ac_excitation_vector"]


@dataclasses.dataclass
class ACResult:
    """Complex response ``X[:, k]`` per analysis frequency ``freqs[k]``.

    Frequencies skipped by ``on_item_failure="skip"`` come back as
    all-NaN columns; their indices are listed in ``skipped`` and a note
    is appended to ``notes``.
    """

    freqs: np.ndarray
    X: np.ndarray
    x_dc: np.ndarray
    skipped: tuple = ()
    notes: tuple = ()

    def voltage(self, system: MNASystem, node: str) -> np.ndarray:
        return self.X[system.node(node)]

    def transfer_db(self, system: MNASystem, node: str) -> np.ndarray:
        return 20.0 * np.log10(np.abs(self.voltage(system, node)) + 1e-300)


def ac_excitation_vector(system: MNASystem, source_name: str, magnitude: float = 1.0) -> np.ndarray:
    """Unit excitation vector for the named V or I source."""
    for dev in system.devices:
        if dev.name != source_name:
            continue
        if isinstance(dev, VSource):
            db = np.zeros(system.n)
            db[dev.branch_idx[0]] = magnitude
            return db
        if isinstance(dev, ISource):
            db = np.zeros(system.n)
            i, j = dev.node_idx
            if i >= 0:
                db[i] -= magnitude
            if j >= 0:
                db[j] += magnitude
            return db
        raise TypeError(f"{source_name!r} is not an independent source")
    raise KeyError(f"no source named {source_name!r}")


class _ACPoint:
    """Picklable per-frequency solve for the sweep executor.

    Ships the linearized (G, C, db) triple to process-backend workers;
    a plain closure over the sparse matrices would not pickle.
    """

    __slots__ = ("G", "C", "db")

    def __init__(self, G, C, db):
        self.G = G
        self.C = C
        self.db = db

    def __call__(self, f0):
        A = (self.G + 1j * 2.0 * np.pi * f0 * self.C).tocsc()
        return spla.spsolve(A, self.db)


def ac_analysis(
    system: MNASystem,
    source_name: str,
    freqs: Sequence[float],
    x_dc: Optional[np.ndarray] = None,
    magnitude: float = 1.0,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    sweep_options: Optional[dict] = None,
) -> ACResult:
    """Frequency sweep of the linearized circuit.

    Parameters
    ----------
    source_name:
        Independent source carrying the (unit) AC excitation.
    freqs:
        Analysis frequencies in Hz.
    x_dc:
        Operating point; computed via :func:`dc_analysis` if omitted.
    workers:
        Sweep-executor worker count (each frequency point is an
        independent sparse solve).  Serial and parallel runs produce
        bit-identical results; defaults to the ``REPRO_SWEEP_WORKERS``
        environment variable, else serial.
    backend:
        Sweep-executor backend (``"serial"`` | ``"thread"`` |
        ``"process"``); defaults to ``REPRO_SWEEP_BACKEND``, else
        threads.
    sweep_options:
        Extra :func:`repro.perf.sweep_map` keyword arguments — the
        fault-tolerance knobs (``timeout``, ``retries``,
        ``on_item_failure``, ``checkpoint``, ...) and ``stats``.
    """
    if x_dc is None:
        x_dc = dc_analysis(system).x
    G = system.G(x_dc).tocsc()
    C = system.C(x_dc).tocsc()
    db = ac_excitation_vector(system, source_name, magnitude).astype(complex)

    freqs = np.asarray(list(freqs), dtype=float)

    cols = sweep_map(
        _ACPoint(G, C, db),
        freqs,
        workers=workers,
        backend=backend,
        **(sweep_options or {}),
    )
    X = np.zeros((system.n, freqs.size), dtype=complex)
    skipped = []
    for k, col in enumerate(cols):
        if col is None:
            # on_item_failure="skip" quarantined this frequency point;
            # a NaN column keeps the result shape and poisons any
            # downstream arithmetic visibly instead of crashing here
            X[:, k] = np.nan
            skipped.append(k)
        else:
            X[:, k] = col
    notes = ()
    if skipped:
        notes = (
            f"{len(skipped)} of {freqs.size} frequency points skipped by "
            f"on_item_failure='skip' (NaN columns at indices {skipped}); "
            "pass stats={} via sweep_options to see the failure causes",
        )
    return ACResult(
        freqs=freqs, X=X, x_dc=x_dc, skipped=tuple(skipped), notes=notes
    )
