"""Small-signal (stationary) noise analysis.

At a DC operating point every device noise generator is a stationary
white current source.  The output noise PSD at node ``out`` is

    S_out(omega) = sum_s |u_s^T z(omega)|^2 * S_s

with one *adjoint* solve per frequency,

    (G + j omega C)^T z = e_out,

so the cost is independent of the number of noise sources.  This is the
substrate the reduced-order noise evaluation of paper sec. 5 (ref [7])
accelerates, and the stationary baseline against which the oscillator
phase-noise module (sec. 3) differs qualitatively.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

import numpy as np
import scipy.sparse.linalg as spla

from repro.analysis.dc import dc_analysis
from repro.netlist.mna import MNASystem

__all__ = ["NoiseResult", "noise_analysis"]


@dataclasses.dataclass
class NoiseResult:
    """Output noise PSD per frequency, with per-source breakdown.

    ``psd`` is the total one-sided output voltage noise density in
    V^2/Hz; ``contributions`` maps source names to their share.
    """

    freqs: np.ndarray
    psd: np.ndarray
    contributions: Dict[str, np.ndarray]
    x_dc: np.ndarray

    def spot_noise_volts(self, k: int = 0) -> float:
        """sqrt(S_out) at frequency index k, in V/sqrt(Hz)."""
        return float(np.sqrt(self.psd[k]))


def noise_analysis(
    system: MNASystem,
    output_node: str,
    freqs: Sequence[float],
    x_dc: Optional[np.ndarray] = None,
) -> NoiseResult:
    """Stationary output-referred noise over a frequency sweep."""
    if x_dc is None:
        x_dc = dc_analysis(system).x
    G = system.G(x_dc).tocsc()
    C = system.C(x_dc).tocsc()
    e_out = np.zeros(system.n)
    e_out[system.node(output_node)] = 1.0

    injections = system.noise_injection_vectors()
    x_col = x_dc[:, None]
    psd_values = [src.psd_at(x_col)[0] for src, _ in injections]

    freqs = np.asarray(list(freqs), dtype=float)
    total = np.zeros(freqs.size)
    contributions: Dict[str, np.ndarray] = {
        src.name: np.zeros(freqs.size) for src, _ in injections
    }
    for k, f0 in enumerate(freqs):
        A_T = (G + 1j * 2.0 * np.pi * f0 * C).T.tocsc()
        z = spla.spsolve(A_T, e_out.astype(complex))
        for (src, u), s_val in zip(injections, psd_values):
            transfer = abs(np.dot(u, z)) ** 2
            contrib = transfer * s_val
            contributions[src.name][k] += contrib
            total[k] += contrib
    return NoiseResult(freqs=freqs, psd=total, contributions=contributions, x_dc=x_dc)
