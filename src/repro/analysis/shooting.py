"""Univariate shooting for periodic steady state.

Finds ``x0`` with ``Phi_T(x0) = x0``, where ``Phi_T`` is the one-period
transient map, by Newton iteration on the boundary condition.  The
sensitivity (monodromy) matrix is propagated alongside the transient
integration: differentiating the backward-Euler step

    (q(x_{k+1}) - q(x_k))/h + f(x_{k+1}) - b = 0

with respect to ``x0`` gives

    (C_{k+1}/h + G_{k+1}) S_{k+1} = (C_k/h) S_k,

(and the trapezoidal analogue).  The monodromy matrix is also the input
to the Floquet analysis in :mod:`repro.phasenoise`.

This is the classical *single time scale* method: its cost per period is
proportional to ``f_fast / f_slow`` when both tones are present, which is
the Figure 5 comparison (univariate shooting ~300x slower than MMFT on
the switching mixer).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np
import scipy.sparse.linalg as spla

from repro.analysis.dc import dc_analysis
from repro.linalg import ConvergenceError, NewtonOptions, newton_solve
from repro.netlist.mna import MNASystem

__all__ = ["ShootingResult", "shooting_analysis", "integrate_with_sensitivity"]


@dataclasses.dataclass
class ShootingResult:
    """Periodic steady state from shooting.

    ``t``/``X`` sample one period; ``monodromy`` is d x(T) / d x(0).
    """

    x0: np.ndarray
    t: np.ndarray
    X: np.ndarray
    monodromy: np.ndarray
    period: float
    newton_iterations: int
    transient_steps: int

    def voltage(self, system: MNASystem, node: str) -> np.ndarray:
        return self.X[system.node(node)]


def integrate_with_sensitivity(
    system: MNASystem,
    x0: np.ndarray,
    t0: float,
    period: float,
    steps: int,
    method: str = "trap",
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """One period of transient plus the monodromy matrix.

    Returns ``(t, X, M, newton_iters)`` where ``X`` is (n, steps+1) and
    ``M = dx(T)/dx(0)`` is dense (n, n).
    """
    n = system.n
    h = period / steps
    alpha = 1.0 if method == "be" else 0.5
    x = np.asarray(x0, dtype=float).copy()
    S = np.eye(n)
    t = t0
    times = [t]
    states = [x.copy()]
    total_newton = 0
    opts = NewtonOptions(abstol=1e-10, maxiter=60, dx_limit=2.0)

    C_prev = system.C(x).toarray()
    G_prev = system.G(x).toarray()
    for k in range(steps):
        # First step is always backward Euler: trapezoidal integration
        # does not damp inconsistent algebraic initial conditions (their
        # perturbations alternate sign forever), which would poison the
        # monodromy matrix with spurious unit eigenvalues.
        step_alpha = 1.0 if k == 0 else alpha
        q_prev = system.q(x)
        hist = (
            np.zeros(n)
            if step_alpha == 1.0
            else 0.5 * (system.f(x) - system.b(t))
        )
        t_next = t + h
        b_next = system.b(t_next)

        def residual(z):
            return (system.q(z) - q_prev) / h + step_alpha * (system.f(z) - b_next) + hist

        def jacobian(z):
            return (system.C(z) / h + step_alpha * system.G(z)).tocsc()

        res = newton_solve(residual, jacobian, x, opts)
        x = res.x
        total_newton += res.iterations

        C_new = system.C(x).toarray()
        G_new = system.G(x).toarray()
        lhs = C_new / h + step_alpha * G_new
        if step_alpha == 1.0:
            rhs = (C_prev / h) @ S
        else:
            rhs = (C_prev / h - step_alpha * G_prev) @ S
        S = np.linalg.solve(lhs, rhs)
        C_prev, G_prev = C_new, G_new

        t = t_next
        times.append(t)
        states.append(x.copy())

    return np.array(times), np.array(states).T, S, total_newton


def shooting_analysis(
    system: MNASystem,
    period: float,
    steps_per_period: int = 100,
    x0: Optional[np.ndarray] = None,
    t0: float = 0.0,
    method: str = "trap",
    abstol: float = 1e-8,
    maxiter: int = 40,
) -> ShootingResult:
    """Periodic steady state of a forced circuit by Newton shooting.

    Parameters
    ----------
    period:
        Forcing period (the slow beat period for multi-tone stimuli —
        which is exactly why this method is expensive there).
    steps_per_period:
        Transient steps per period; accuracy of the PSS waveform (and of
        the Figure 5 runtime comparison) scales with it.
    """
    if x0 is None:
        x0 = dc_analysis(system).x
    x0 = np.asarray(x0, dtype=float).copy()
    n = system.n
    total_newton = 0
    total_steps = 0
    last = {}

    for it in range(maxiter):
        t, X, M, iters = integrate_with_sensitivity(
            system, x0, t0, period, steps_per_period, method
        )
        total_newton += iters
        total_steps += steps_per_period
        F = X[:, -1] - x0
        last = {"t": t, "X": X, "M": M}
        if np.linalg.norm(F) <= abstol * max(1.0, np.linalg.norm(x0)):
            return ShootingResult(
                x0=x0,
                t=t,
                X=X,
                monodromy=M,
                period=period,
                newton_iterations=total_newton,
                transient_steps=total_steps,
            )
        J = M - np.eye(n)
        dx = np.linalg.solve(J, F)
        x0 = x0 - dx

    raise ConvergenceError(
        f"shooting failed to converge in {maxiter} outer iterations "
        f"(|x(T)-x(0)| = {np.linalg.norm(last['X'][:, -1] - x0):.3e})"
    )
