"""Univariate shooting for periodic steady state.

Finds ``x0`` with ``Phi_T(x0) = x0``, where ``Phi_T`` is the one-period
transient map, by Newton iteration on the boundary condition.  The
sensitivity (monodromy) matrix is propagated alongside the transient
integration: differentiating the backward-Euler step

    (q(x_{k+1}) - q(x_k))/h + f(x_{k+1}) - b = 0

with respect to ``x0`` gives

    (C_{k+1}/h + G_{k+1}) S_{k+1} = (C_k/h) S_k,

(and the trapezoidal analogue).  The monodromy matrix is also the input
to the Floquet analysis in :mod:`repro.phasenoise`.

This is the classical *single time scale* method: its cost per period is
proportional to ``f_fast / f_slow`` when both tones are present, which is
the Figure 5 comparison (univariate shooting ~300x slower than MMFT on
the switching mixer).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np
import scipy.sparse.linalg as spla

from repro.analysis.dc import dc_analysis
from repro.linalg import ConvergenceError, NewtonOptions, attach_failure_payload, newton_solve
from repro.netlist.mna import MNASystem
from repro.robust import EscalationPolicy, RungOutcome, SolveReport, run_ladder
from repro.robust.diagnostics import ValidationReport, enforce
from repro.robust.validate import preflight

__all__ = [
    "ShootingResult",
    "shooting_analysis",
    "integrate_with_sensitivity",
    "SHOOTING_LADDER",
]

#: Escalation rungs for forced-circuit shooting: plain Newton shooting,
#: then a transient settle to supply a near-cycle initial guess.
SHOOTING_LADDER = ("shooting", "transient-settle")


@dataclasses.dataclass
class ShootingResult:
    """Periodic steady state from shooting.

    ``t``/``X`` sample one period; ``monodromy`` is d x(T) / d x(0).
    """

    x0: np.ndarray
    t: np.ndarray
    X: np.ndarray
    monodromy: np.ndarray
    period: float
    newton_iterations: int
    transient_steps: int
    converged: bool = True
    report: Optional[SolveReport] = None
    validation: Optional[ValidationReport] = None

    def voltage(self, system: MNASystem, node: str) -> np.ndarray:
        return self.X[system.node(node)]


def integrate_with_sensitivity(
    system: MNASystem,
    x0: np.ndarray,
    t0: float,
    period: float,
    steps: int,
    method: str = "trap",
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """One period of transient plus the monodromy matrix.

    Returns ``(t, X, M, newton_iters)`` where ``X`` is (n, steps+1) and
    ``M = dx(T)/dx(0)`` is dense (n, n).
    """
    n = system.n
    h = period / steps
    alpha = 1.0 if method == "be" else 0.5
    x = np.asarray(x0, dtype=float).copy()
    S = np.eye(n)
    t = t0
    times = [t]
    states = [x.copy()]
    total_newton = 0
    opts = NewtonOptions(abstol=1e-10, maxiter=60, dx_limit=2.0)

    C_prev = system.C(x).toarray()
    G_prev = system.G(x).toarray()
    for k in range(steps):
        # First step is always backward Euler: trapezoidal integration
        # does not damp inconsistent algebraic initial conditions (their
        # perturbations alternate sign forever), which would poison the
        # monodromy matrix with spurious unit eigenvalues.
        step_alpha = 1.0 if k == 0 else alpha
        q_prev = system.q(x)
        hist = (
            np.zeros(n)
            if step_alpha == 1.0
            else 0.5 * (system.f(x) - system.b(t))
        )
        t_next = t + h
        b_next = system.b(t_next)

        def residual(z):
            return (system.q(z) - q_prev) / h + step_alpha * (system.f(z) - b_next) + hist

        def jacobian(z):
            return (system.C(z) / h + step_alpha * system.G(z)).tocsc()

        res = newton_solve(residual, jacobian, x, opts)
        x = res.x
        total_newton += res.iterations

        C_new = system.C(x).toarray()
        G_new = system.G(x).toarray()
        lhs = C_new / h + step_alpha * G_new
        if step_alpha == 1.0:
            rhs = (C_prev / h) @ S
        else:
            rhs = (C_prev / h - step_alpha * G_prev) @ S
        S = np.linalg.solve(lhs, rhs)
        C_prev, G_prev = C_new, G_new

        t = t_next
        times.append(t)
        states.append(x.copy())

    return np.array(times), np.array(states).T, S, total_newton


def shooting_analysis(
    system: MNASystem,
    period: float,
    steps_per_period: int = 100,
    x0: Optional[np.ndarray] = None,
    t0: float = 0.0,
    method: str = "trap",
    abstol: float = 1e-8,
    maxiter: int = 40,
    policy: Optional[EscalationPolicy] = None,
    on_failure: Optional[str] = None,
    settle_periods: int = 8,
    on_invalid: str = "raise",
) -> ShootingResult:
    """Periodic steady state of a forced circuit by Newton shooting.

    Parameters
    ----------
    period:
        Forcing period (the slow beat period for multi-tone stimuli —
        which is exactly why this method is expensive there).
    steps_per_period:
        Transient steps per period; accuracy of the PSS waveform (and of
        the Figure 5 runtime comparison) scales with it.
    policy / on_failure:
        Escalation control over :data:`SHOOTING_LADDER`.  The
        ``transient-settle`` rung integrates ``settle_periods`` forcing
        periods of plain transient to land near the limit cycle, then
        re-shoots from there — the standard rescue when shooting from
        the DC point diverges.
    on_invalid:
        Pre-flight lint policy: circuit topology plus period checks
        (``AN_PERIOD_NONPOSITIVE``, ``AN_PERIOD_MISMATCH``).
    """
    validation = enforce(preflight(system, "shooting", period=period), on_invalid)
    guess = (
        dc_analysis(system, on_invalid="ignore").x
        if x0 is None
        else np.asarray(x0, dtype=float)
    )
    guess = guess.copy()
    n = system.n
    counters = {"newton": 0, "steps": 0}

    def _shoot(start):
        z = start.copy()
        history = []
        best = None
        for it in range(maxiter):
            t, X, M, iters = integrate_with_sensitivity(
                system, z, t0, period, steps_per_period, method
            )
            counters["newton"] += iters
            counters["steps"] += steps_per_period
            F = X[:, -1] - z
            fnorm = float(np.linalg.norm(F))
            history.append(fnorm)
            if best is None or fnorm < best[0]:
                best = (fnorm, z.copy(), t, X, M)
            if fnorm <= abstol * max(1.0, np.linalg.norm(z)):
                return RungOutcome(
                    value=(z, t, X, M),
                    iterations=it + 1,
                    residual_norm=fnorm,
                    history=history,
                )
            J = M - np.eye(n)
            dx = np.linalg.solve(J, F)
            z = z - dx
        raise attach_failure_payload(
            ConvergenceError(
                f"shooting failed to converge in {maxiter} outer iterations "
                f"(best |x(T)-x(0)| = {best[0]:.3e})"
            ),
            best_x=best[1],
            best_norm=best[0],
            iterations=maxiter,
            history=history,
        )

    def shooting_rung():
        return _shoot(guess)

    def settle_rung():
        # late import: transient imports this module's sibling dc only,
        # but keep the dependency local to the rung regardless
        from repro.analysis.transient import transient_analysis

        dt = period / steps_per_period
        tr = transient_analysis(
            system,
            t_stop=settle_periods * period,
            dt=dt,
            x0=guess,
            method=method,
            on_invalid="ignore",
        )
        counters["newton"] += tr.newton_iterations
        counters["steps"] += tr.t.size - 1
        return _shoot(tr.X[:, -1])

    strategies = [("shooting", shooting_rung), ("transient-settle", settle_rung)]

    def fallback(best, rep):
        start = best.value if best is not None else guess
        t, X, M, iters = integrate_with_sensitivity(
            system, np.asarray(start), t0, period, steps_per_period, method
        )
        counters["newton"] += iters
        counters["steps"] += steps_per_period
        return RungOutcome(
            value=(np.asarray(start), t, X, M),
            residual_norm=best.residual_norm if best is not None else float("inf"),
        )

    out, rep = run_ladder(
        "shooting", strategies, policy=policy, on_failure=on_failure, fallback=fallback
    )
    z, t, X, M = out.value
    return ShootingResult(
        x0=z,
        t=t,
        X=X,
        monodromy=M,
        period=period,
        newton_iterations=counters["newton"],
        transient_steps=counters["steps"],
        converged=rep.converged,
        report=rep,
        validation=validation,
    )
