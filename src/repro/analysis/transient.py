"""Time-domain transient analysis.

Backward-Euler and trapezoidal integration of the circuit DAE

    d q(x)/dt + f(x) = b(t)

with Newton solution of each implicit step.  The paper's point of
departure (sec. 1-2) is that this workhorse becomes hopeless for RF
stimuli with widely separated time scales — the Figure 1 and Figure 5
benchmarks quantify exactly that against HB and MMFT.  It remains the
substrate for everything else: shooting wraps it, TD-ENV integrates the
slow MPDE axis with it, and the phase-noise Monte Carlo is a stochastic
variant of it.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from typing import Callable, Optional

import numpy as np
import scipy.sparse.linalg as spla

from repro.analysis.dc import dc_analysis
from repro.linalg import ConvergenceError, NewtonOptions, newton_solve
from repro.netlist.mna import MNASystem
from repro.perf import FactorCache, PerfCounters
from repro.robust import AttemptRecord, EscalationPolicy, SolveFailure, SolveReport
from repro.robust.diagnostics import ValidationReport, enforce
from repro.robust.validate import preflight
from repro.trace import get_tracer, spanned, traceable

__all__ = ["TransientResult", "transient_analysis", "step_once", "TRANSIENT_LADDER"]

#: Recovery rungs of the transient step loop: a plain implicit step,
#: then exponential step backoff down to a floor.
TRANSIENT_LADDER = ("step", "step-backoff")

# cap on per-rejection attempt records kept in the report (the counters
# remain exact; only the detailed records are bounded)
_MAX_RECORDED_REJECTIONS = 40


@dataclasses.dataclass
class TransientResult:
    """Time points ``t`` (m,) and solution samples ``X`` (n, m)."""

    t: np.ndarray
    X: np.ndarray
    newton_iterations: int
    rejected_steps: int = 0
    converged: bool = True
    report: Optional[SolveReport] = None
    validation: Optional[ValidationReport] = None

    def voltage(self, system: MNASystem, node: str) -> np.ndarray:
        return self.X[system.node(node)]

    def current(self, system: MNASystem, device: str) -> np.ndarray:
        """Branch-current waveform of a device (vsource/inductor/...)."""
        return self.X[system.branch(device)]

    def sample(self, k: int) -> np.ndarray:
        return self.X[:, k]


def step_once(
    system: MNASystem,
    x_prev: np.ndarray,
    t_prev: float,
    h: float,
    method: str = "trap",
    newton_opts: Optional[NewtonOptions] = None,
    cache: Optional[FactorCache] = None,
    cache_key=None,
):
    """Advance one implicit step; returns (x_next, newton_iterations).

    BE:    (q(x+) - q(x))/h + f(x+) - b(t+) = 0
    trap:  (q(x+) - q(x))/h + (f(x+) - b(t+))/2 + (f(x) - b(t))/2 = 0

    When a :class:`FactorCache` is supplied the step Jacobian
    ``C(x)/h + alpha G(x)`` is solved in modified-Newton mode: the LU
    factorization is reused across iterations *and* across consecutive
    steps sharing ``cache_key`` (i.e. while ``h`` is unchanged), with
    fail-closed refresh on any residual-increasing stale step.
    """
    t_next = t_prev + h
    q_prev = system.q(x_prev)
    b_next = system.b(t_next)
    opts = newton_opts or NewtonOptions(abstol=1e-9, maxiter=50, dx_limit=2.0)

    if method == "be":
        alpha = 1.0
        hist = np.zeros(system.n)
    elif method == "trap":
        alpha = 0.5
        hist = 0.5 * (system.f(x_prev) - system.b(t_prev))
    else:
        raise ValueError(f"unknown method {method!r} (use 'be' or 'trap')")

    def residual(x):
        return (system.q(x) - q_prev) / h + alpha * (system.f(x) - b_next) + hist

    def jacobian(x):
        return (system.C(x) / h + alpha * system.G(x)).tocsc()

    res = newton_solve(
        residual, jacobian, x_prev, opts, factor_cache=cache, cache_key=cache_key
    )
    if cache is not None:
        c = cache.counters
        c.jacobian_evals += res.jacobian_evals
        c.jacobian_evals_saved += res.factor_reuses
        c.stale_refreshes += res.stale_refreshes
    return res.x, res.iterations


@traceable
@spanned("transient.analysis")
def transient_analysis(
    system: MNASystem,
    t_stop: float,
    dt: float,
    x0: Optional[np.ndarray] = None,
    t_start: float = 0.0,
    method: str = "trap",
    adaptive: bool = False,
    lte_tol: float = 1e-4,
    max_steps: int = 2_000_000,
    callback: Optional[Callable[[float, np.ndarray], None]] = None,
    policy: Optional[EscalationPolicy] = None,
    on_failure: Optional[str] = None,
    h_floor: Optional[float] = None,
    on_invalid: str = "raise",
    reuse_lu: bool = True,
    reuse_iter_threshold: int = 2,
) -> TransientResult:
    """Integrate the circuit from ``t_start`` to ``t_stop``.

    Parameters
    ----------
    dt:
        Fixed step size, or the initial step when ``adaptive``.
    x0:
        Initial state; DC operating point when omitted.
    method:
        ``"trap"`` (default, 2nd order) or ``"be"``.
    adaptive:
        Enable step-size control based on a local extrapolation error
        estimate; ``lte_tol`` is the per-step relative target.
    policy / on_failure:
        Failure handling for the step-backoff ladder.  On an unrecoverable
        step (backoff hit ``h_floor``) the default raises; ``"warn"`` /
        ``"best_effort"`` return the partial trajectory integrated so far
        with ``converged=False`` and the report attached.
    h_floor:
        Smallest step the backoff may try before declaring the step
        unrecoverable (default ``1e-21``, the historical hard floor).
    on_invalid:
        Pre-flight lint policy: circuit topology plus timestep checks
        (``AN_TIMESTEP_NONPOSITIVE``, ``AN_TIMESTEP_COARSE``).
    reuse_lu:
        Reuse the step-Jacobian LU factorization across Newton
        iterations and across timesteps while the stepsize ``h`` is
        unchanged (``C/h + alpha G`` keyed by ``h``), with fail-closed
        refresh on stale steps.  The cache is invalidated whenever a
        step is rejected, since backoff changes ``h``.  Converged
        answers are unchanged (the residual stays exact); disable only
        to benchmark the reuse itself.
    reuse_iter_threshold:
        Step-level staleness policy: a converged step that needed more
        than this many Newton iterations signals that the cached LU has
        drifted (strong nonlinearity active), so the cache is dropped
        and the next step factors fresh.  Keeps reuse a net win on
        nonlinear circuits where stale factors degrade the convergence
        rate.
    """
    validation = enforce(
        preflight(system, "transient", dt=dt, t_stop=t_stop, t_start=t_start),
        on_invalid,
    )
    pol = policy or EscalationPolicy()
    mode = on_failure if on_failure is not None else pol.on_failure
    backoff_opts = pol.options_for("step-backoff")
    backoff_factor = float(backoff_opts.get("factor", 0.25))
    floor = float(h_floor if h_floor is not None else backoff_opts.get("floor", 1e-21))
    report = SolveReport(analysis="transient", on_failure=mode)
    tr = get_tracer()
    trace_mark = tr.mark() if tr.enabled else None
    counters = PerfCounters()
    cache = FactorCache(max_entries=4, counters=counters) if reuse_lu else None

    if x0 is None:
        # already linted above; don't lint (or raise) twice
        with counters.stage("dc"):
            x0 = dc_analysis(system, on_invalid="ignore").x
    x = np.asarray(x0, dtype=float).copy()

    # LTE is only meaningful for unknowns with dynamics: algebraic
    # variables (e.g. source branch currents) follow instantaneously and
    # their trapezoidal micro-ringing must not drive the step size.
    C0 = system.C(x)
    dynamic = np.asarray(
        (np.abs(C0) @ np.ones(system.n)) + (np.abs(C0).T @ np.ones(system.n))
    ) > 0.0
    if not np.any(dynamic):
        dynamic = np.ones(system.n, dtype=bool)

    times = [t_start]
    states = [x.copy()]
    t = t_start
    h = dt
    total_newton = 0
    rejected = 0

    def finish(converged: bool) -> TransientResult:
        report.record(
            AttemptRecord(
                strategy="step",
                converged=converged,
                iterations=total_newton,
                residual_norm=0.0 if converged else float("inf"),
                detail={"steps": len(times) - 1, "rejected": rejected},
            )
        )
        counters.add_stage("stepping", time.perf_counter() - step_t0)
        counters.attach(report)
        if tr.enabled:
            tr.publish(report, trace_mark)
        return TransientResult(
            t=np.array(times),
            X=np.array(states).T,
            newton_iterations=total_newton,
            rejected_steps=rejected,
            converged=converged,
            report=report,
            validation=validation,
        )

    def give_up(cause: str) -> TransientResult:
        msg = (
            f"transient on {system.title!r} {cause} at t = {t:.6g} "
            f"({len(times) - 1} accepted steps, {rejected} rejected)"
        )
        report.notes.append(msg)
        if mode == "raise":
            raise SolveFailure(msg, finish(False).report)
        if mode == "warn":
            warnings.warn(f"{msg} — returning partial trajectory", RuntimeWarning)
        return finish(False)

    def record_rejection(
        strategy: str,
        iterations: int,
        residual_norm: float,
        cause: str,
        **detail,
    ) -> None:
        # both rejection flavors (Newton failure and LTE) share one cap so
        # the report's attempt list stays bounded while rejected_steps
        # remains exact; the cap note fires once, on the first overflow
        if rejected <= _MAX_RECORDED_REJECTIONS:
            report.record(
                AttemptRecord(
                    strategy=strategy,
                    converged=False,
                    iterations=iterations,
                    residual_norm=residual_norm,
                    failure_cause=cause,
                    detail=detail,
                )
            )
        elif rejected == _MAX_RECORDED_REJECTIONS + 1:
            report.notes.append(
                f"further step rejections not individually recorded "
                f"(cap {_MAX_RECORDED_REJECTIONS}); see rejected_steps"
            )

    t_eps = 1e-12 * max(abs(t_stop), abs(t_start), dt)
    step_t0 = time.perf_counter()
    while t < t_stop - t_eps:
        if len(times) > max_steps:
            return give_up(f"exceeded {max_steps} steps")
        h = min(h, t_stop - t)
        try:
            x_new, iters = step_once(
                system, x, t, h, method, cache=cache, cache_key=("step", method, h)
            )
        except ConvergenceError as exc:
            rejected += 1
            if tr.enabled:
                tr.event(
                    "transient.step",
                    t=float(t),
                    h=float(h),
                    iters=int(getattr(exc, "iterations", 0) or 0),
                    accepted=False,
                    cause="newton-fail",
                )
            if cache is not None:
                # backoff changes h, so G + C/h changes: any cached
                # factorization is stale for every retry from here on
                cache.invalidate()
            record_rejection(
                "step-backoff",
                int(getattr(exc, "iterations", 0) or 0),
                float(getattr(exc, "best_norm", np.inf) or np.inf),
                f"{type(exc).__name__}: {exc}",
                t=t,
                h=h,
            )
            h *= backoff_factor
            if h < floor:
                return give_up(f"step backoff hit the floor ({floor:g} s)")
            continue
        total_newton += iters
        if cache is not None and iters > reuse_iter_threshold:
            # slow step: the cached factorization no longer matches the
            # active nonlinearity — refactor fresh next step
            cache.invalidate()

        # floor: below ~dt/100 the extrapolation error estimate is
        # dominated by Newton solver noise, so force acceptance there
        h_min = 1e-2 * dt
        h_prev = times[-1] - times[-2] if len(times) >= 2 else 0.0
        if adaptive and h_prev > 0.0:
            x_pred = x + (x - states[-2]) * (h / h_prev)
            scale = np.maximum(np.abs(x_new), 1e-6)
            err = float(np.max((np.abs(x_new - x_pred) / scale)[dynamic]))
            if not np.isfinite(err):
                err = 8.0 * lte_tol  # treat as a bad step, but bounded
            if err > 4.0 * lte_tol and h > h_min:
                if tr.enabled:
                    tr.event(
                        "transient.step",
                        t=float(t),
                        h=float(h),
                        iters=iters,
                        accepted=False,
                        cause="lte",
                    )
                rejected += 1
                record_rejection(
                    "step-lte",
                    iters,
                    float(err),
                    f"local truncation error {err:.3g} exceeded "
                    f"{4.0 * lte_tol:.3g} (4x lte_tol)",
                    t=t,
                    h=h,
                )
                h = max(0.5 * h, h_min)
                continue
            grow = min(2.0, max(0.5, (lte_tol / max(err, 1e-30)) ** 0.5))
            h_next = max(h * grow, h_min)
        else:
            h_next = h

        if tr.enabled:
            tr.event(
                "transient.step", t=float(t), h=float(h), iters=iters, accepted=True
            )
        t += h
        x = x_new
        times.append(t)
        states.append(x.copy())
        if callback is not None:
            callback(t, x)
        h = h_next

    return finish(True)
