"""DC operating-point analysis.

Solves ``f(x) = b_dc`` by damped Newton, escalating through the standard
SPICE homotopies when plain Newton fails on strongly nonlinear circuits.
The escalation ladder (see :mod:`repro.robust.policy`) is

    ``newton`` → ``gmin-stepping`` → ``source-stepping`` → ``pseudo-transient``

* **gmin stepping** — a shunt conductance on every node diagonal is swept
  from large to negligible;
* **source stepping** — the excitation is ramped from 0 to 100 %;
* **pseudo-transient** — artificial time stepping ``(x_k+1 - x_k)/h``
  with a growing step, the last-resort continuation that follows the
  circuit's own relaxation dynamics toward the operating point.

Every result carries a :class:`~repro.robust.report.SolveReport`
recording each attempt; ``on_failure="best_effort"`` returns the best
iterate with ``converged=False`` instead of raising.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.linalg import ConvergenceError, NewtonOptions, newton_solve
from repro.netlist.mna import MNASystem
from repro.robust import EscalationPolicy, RungOutcome, SolveReport, run_ladder
from repro.robust.diagnostics import ValidationReport, enforce
from repro.robust.validate import preflight

__all__ = ["DCResult", "dc_analysis", "DC_LADDER"]

#: Rung names of the DC escalation ladder, in order.
DC_LADDER = ("newton", "gmin-stepping", "source-stepping", "pseudo-transient")


@dataclasses.dataclass
class DCResult:
    """Operating point ``x`` plus bookkeeping about how it was found."""

    x: np.ndarray
    iterations: int
    strategy: str
    residual_norm: float
    converged: bool = True
    report: Optional[SolveReport] = None
    validation: Optional[ValidationReport] = None

    def voltage(self, system: MNASystem, node: str) -> float:
        return float(self.x[system.node(node)])


def _newton_dc(system: MNASystem, b: np.ndarray, x0: np.ndarray, gshunt: float, opts: NewtonOptions):
    n = system.n
    num_nodes = len(system.node_names)
    shunt = sp.diags(
        np.concatenate([np.full(num_nodes, gshunt), np.zeros(n - num_nodes)])
    ).tocsr()

    def residual(x):
        return system.f(x) + shunt @ x - b

    def jacobian(x):
        return (system.G(x) + shunt).tocsc()

    return newton_solve(residual, jacobian, x0, opts)


def dc_analysis(
    system: MNASystem,
    x0: Optional[np.ndarray] = None,
    abstol: float = 1e-9,
    maxiter: int = 100,
    dx_limit: float = 2.0,
    policy: Optional[EscalationPolicy] = None,
    on_failure: Optional[str] = None,
    on_invalid: str = "raise",
) -> DCResult:
    """Find the DC operating point of a compiled circuit.

    Parameters
    ----------
    system:
        Compiled circuit.
    x0:
        Optional initial guess (defaults to all-zero, the SPICE default).
    dx_limit:
        Per-iteration cap on the Newton update infinity-norm; junction
        devices blow up without it.
    policy:
        Escalation policy selecting/ordering rungs from
        :data:`DC_LADDER` and setting the failure mode.
    on_failure:
        ``"raise"`` (default) / ``"warn"`` / ``"best_effort"``;
        overrides ``policy.on_failure``.
    on_invalid:
        Pre-flight lint policy (``"raise"``/``"warn"``/``"ignore"``);
        error-severity diagnostics (floating node, V-source loop, ...)
        raise :class:`~repro.robust.diagnostics.ValidationError` before
        the solve under the default.
    """
    validation = enforce(preflight(system, "dc"), on_invalid)
    b = system.b_dc()
    guess = np.zeros(system.n) if x0 is None else np.asarray(x0, dtype=float)
    opts = NewtonOptions(abstol=abstol, maxiter=maxiter, dx_limit=dx_limit)

    def _outcome(x, iterations, res):
        return RungOutcome(
            value=x,
            iterations=iterations,
            residual_norm=res.residual_norm,
            history=list(res.history),
        )

    def newton_rung():
        res = _newton_dc(system, b, guess, 0.0, opts)
        return _outcome(res.x, res.iterations, res)

    def gmin_rung():
        x = guess.copy()
        total = 0
        try:
            for gshunt in 10.0 ** np.arange(-2, -13, -1.0):
                res = _newton_dc(system, b, x, gshunt, opts)
                x = res.x
                total += res.iterations
            res = _newton_dc(system, b, x, 0.0, opts)
        except ConvergenceError as exc:
            exc.iterations = total + int(getattr(exc, "iterations", 0) or 0)
            if getattr(exc, "best_x", None) is None:
                exc.best_x = x
            raise
        return _outcome(res.x, total + res.iterations, res)

    def source_rung():
        x = guess.copy()
        total = 0
        alpha = 0.0
        step = 0.1
        failures = 0
        while alpha < 1.0:
            target = min(1.0, alpha + step)
            try:
                res = _newton_dc(system, target * b, x, 0.0, opts)
                x = res.x
                total += res.iterations
                alpha = target
                step = min(step * 2.0, 0.25)
            except ConvergenceError:
                step *= 0.5
                failures += 1
                if failures > 40 or step < 1e-6:
                    exc = ConvergenceError(
                        f"source stepping stalled at alpha = {alpha:.3g} "
                        f"for {system.title!r}"
                    )
                    exc.best_x = x
                    exc.iterations = total
                    raise exc
        final = _newton_dc(system, b, x, 0.0, opts)
        return _outcome(final.x, total + final.iterations, final)

    def pseudo_transient_rung():
        # Artificial time stepping d x / d tau = -(f(x) - b): regularizes
        # every unknown (including branch currents, which gmin misses)
        # and follows the relaxation trajectory; the step grows until the
        # implicit solve *is* the DC Newton solve.
        n = system.n
        reg = sp.identity(n, format="csr")
        x = guess.copy()
        total = 0
        h = 1e-9
        try:
            for _ in range(36):
                x_prev = x

                def residual(z):
                    return system.f(z) - b + (reg @ (z - x_prev)) / h

                def jacobian(z):
                    return (system.G(z) + reg / h).tocsc()

                res = newton_solve(residual, jacobian, x, opts)
                x = res.x
                total += res.iterations
                h *= 4.0
                if h > 1.0 and np.linalg.norm(system.f(x) - b) <= abstol * 10:
                    break
            final = _newton_dc(system, b, x, 0.0, opts)
        except ConvergenceError as exc:
            exc.iterations = total + int(getattr(exc, "iterations", 0) or 0)
            if getattr(exc, "best_x", None) is None:
                exc.best_x = x
            raise
        return _outcome(final.x, total + final.iterations, final)

    strategies = [
        ("newton", newton_rung),
        ("gmin-stepping", gmin_rung),
        ("source-stepping", source_rung),
        ("pseudo-transient", pseudo_transient_rung),
    ]

    def fallback(best, rep):
        x = best.value if best is not None else guess
        norm = best.residual_norm if best is not None else float("inf")
        return RungOutcome(value=np.asarray(x), residual_norm=norm)

    out, rep = run_ladder(
        "dc", strategies, policy=policy, on_failure=on_failure, fallback=fallback
    )
    winning = rep.strategy or "best-effort"
    norm = out.residual_norm
    if not np.isfinite(norm):
        norm = float(np.linalg.norm(system.f(out.value) - b))
    return DCResult(
        x=out.value,
        iterations=rep.total_iterations,
        strategy=winning,
        residual_norm=norm,
        converged=rep.converged,
        report=rep,
        validation=validation,
    )
