"""DC operating-point analysis.

Solves ``f(x) = b_dc`` by damped Newton, with two continuation fallbacks
when plain Newton fails on strongly nonlinear circuits:

* **gmin stepping** — a shunt conductance on every node diagonal is swept
  from large to negligible;
* **source stepping** — the excitation is ramped from 0 to 100 %.

Both are the standard SPICE homotopies; RF circuits full of exponential
junctions routinely need them.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.linalg import ConvergenceError, NewtonOptions, newton_solve
from repro.netlist.mna import MNASystem

__all__ = ["DCResult", "dc_analysis"]


@dataclasses.dataclass
class DCResult:
    """Operating point ``x`` plus bookkeeping about how it was found."""

    x: np.ndarray
    iterations: int
    strategy: str
    residual_norm: float

    def voltage(self, system: MNASystem, node: str) -> float:
        return float(self.x[system.node(node)])


def _newton_dc(system: MNASystem, b: np.ndarray, x0: np.ndarray, gshunt: float, opts: NewtonOptions):
    n = system.n
    num_nodes = len(system.node_names)
    shunt = sp.diags(
        np.concatenate([np.full(num_nodes, gshunt), np.zeros(n - num_nodes)])
    ).tocsr()

    def residual(x):
        return system.f(x) + shunt @ x - b

    def jacobian(x):
        return (system.G(x) + shunt).tocsc()

    return newton_solve(residual, jacobian, x0, opts)


def dc_analysis(
    system: MNASystem,
    x0: Optional[np.ndarray] = None,
    abstol: float = 1e-9,
    maxiter: int = 100,
    dx_limit: float = 2.0,
) -> DCResult:
    """Find the DC operating point of a compiled circuit.

    Parameters
    ----------
    system:
        Compiled circuit.
    x0:
        Optional initial guess (defaults to all-zero, the SPICE default).
    dx_limit:
        Per-iteration cap on the Newton update infinity-norm; junction
        devices blow up without it.
    """
    b = system.b_dc()
    guess = np.zeros(system.n) if x0 is None else np.asarray(x0, dtype=float)
    opts = NewtonOptions(abstol=abstol, maxiter=maxiter, dx_limit=dx_limit)

    try:
        res = _newton_dc(system, b, guess, 0.0, opts)
        return DCResult(res.x, res.iterations, "newton", res.residual_norm)
    except ConvergenceError:
        pass

    # gmin stepping
    x = guess.copy()
    total_iters = 0
    try:
        for gshunt in 10.0 ** np.arange(-2, -13, -1.0):
            res = _newton_dc(system, b, x, gshunt, opts)
            x = res.x
            total_iters += res.iterations
        res = _newton_dc(system, b, x, 0.0, opts)
        return DCResult(res.x, total_iters + res.iterations, "gmin-stepping", res.residual_norm)
    except ConvergenceError:
        pass

    # source stepping
    x = guess.copy()
    total_iters = 0
    alpha = 0.0
    step = 0.1
    failures = 0
    while alpha < 1.0:
        target = min(1.0, alpha + step)
        try:
            res = _newton_dc(system, target * b, x, 0.0, opts)
            x = res.x
            total_iters += res.iterations
            alpha = target
            step = min(step * 2.0, 0.25)
        except ConvergenceError:
            step *= 0.5
            failures += 1
            if failures > 40 or step < 1e-6:
                raise ConvergenceError(
                    f"DC analysis failed for {system.title!r}: newton, gmin and "
                    f"source stepping all diverged (stalled at alpha={alpha:.3g})"
                )
    final = _newton_dc(system, b, x, 0.0, opts)
    return DCResult(final.x, total_iters + final.iterations, "source-stepping", final.residual_norm)
