"""Command-line pre-flight linter for netlists.

    python -m repro.validate examples/netlists/*.cir

Parses each SPICE-style netlist, compiles it, and runs the full
pre-flight suite from :mod:`repro.robust.validate` — circuit topology
(floating nodes, voltage-source loops, current-source cutsets, bad
element values) plus the numerical-health probes on the assembled MNA
system (conditioning estimate, scaling spread, gmin suggestion).  Every
finding is printed as a structured diagnostic with its stable code;
parse failures are reported with ``filename:line``.

Exit status: 0 when no file produced an error-severity diagnostic,
1 otherwise, 2 for usage errors.  Warnings never fail the run unless
``--strict`` is given.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.netlist.parser import NetlistError, parse_netlist
from repro.robust.diagnostics import ValidationReport
from repro.robust.validate import preflight

__all__ = ["lint_file", "main"]


def lint_file(path: str, numeric: bool = True) -> ValidationReport:
    """Parse + compile + pre-flight one netlist file.

    Parse and compile failures are folded into the returned report as
    ``PARSE_ERROR`` / ``COMPILE_ERROR`` diagnostics rather than raised,
    so a batch run reports every file.
    """
    report = ValidationReport(subject=path)
    try:
        with open(path, "r") as fh:
            text = fh.read()
    except OSError as exc:
        report.add("PARSE_ERROR", "error", str(exc), location=path)
        return report
    try:
        circuit = parse_netlist(text, filename=path)
    except NetlistError as exc:
        report.add(
            "PARSE_ERROR",
            "error",
            str(exc),
            location=f"{path}:{exc.line_no}" if exc.line_no else path,
        )
        return report
    try:
        system = circuit.compile(on_invalid=None)
    except Exception as exc:  # topology so broken that assembly fails
        report.add("COMPILE_ERROR", "error", str(exc), location=path)
        return report
    pre = preflight(system, numeric=numeric)
    pre.subject = path
    report.merge(pre)
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.validate",
        description="Pre-flight lint for SPICE-style netlists.",
    )
    parser.add_argument("files", nargs="*", help="netlist files (*.cir)")
    parser.add_argument(
        "--no-numeric",
        action="store_true",
        help="skip the MNA numerical-health probes (topology lint only)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures",
    )
    args = parser.parse_args(argv)
    if not args.files:
        parser.print_usage(sys.stderr)
        print("error: no netlist files given", file=sys.stderr)
        return 2

    failed = 0
    for path in args.files:
        rep = lint_file(path, numeric=not args.no_numeric)
        bad = bool(rep.errors) or (args.strict and bool(rep.warnings))
        status = "FAIL" if bad else "ok"
        print(f"{path}: {status} ({len(rep.errors)} error(s), "
              f"{len(rep.warnings)} warning(s))")
        for diag in rep.diagnostics:
            print(f"  {diag.format()}")
        failed += bad
    print(f"{len(args.files)} file(s) linted, {failed} failed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
