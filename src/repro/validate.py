"""Command-line pre-flight linter for netlists.

    python -m repro.validate examples/netlists/*.cir
    python -m repro.validate --json examples/netlists/*.cir

Parses each SPICE-style netlist, compiles it, and runs the full
pre-flight suite from :mod:`repro.robust.validate` — circuit topology
(floating nodes, voltage-source loops, current-source cutsets, bad
element values) plus the numerical-health probes on the assembled MNA
system (conditioning estimate, scaling spread, gmin suggestion).  Every
finding is printed as a structured diagnostic with its stable code;
parse failures are reported with ``filename:line``.

``--json`` emits one machine-readable document on stdout instead::

    {"ok": false, "files": <n>, "failed": <n>,
     "reports": [{"subject": ..., "ok": ..., "errors": ..., "warnings":
                  ..., "wall_time": ..., "diagnostics": [{"code": ...,
                  "severity": ..., "location": ..., "message": ...,
                  "suggestion": ..., "detail": {...}}, ...]}, ...]}

Exit status (stable, scripts may rely on it):

* ``0`` — every file linted clean (no error-severity diagnostics;
  with ``--strict``, no warnings either);
* ``1`` — at least one file produced a failing diagnostic;
* ``2`` — usage error (no files given, unreadable arguments).

:func:`lint_text` is the library entry point the simulation service's
admission gate (:func:`repro.serve.runner.lint_spec`) reuses, so a
netlist rejected at submit time fails ``python -m repro.validate`` with
the same codes.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.netlist.parser import NetlistError, parse_netlist
from repro.robust.diagnostics import ValidationReport
from repro.robust.validate import preflight

__all__ = ["lint_file", "lint_text", "main"]


def lint_text(
    text: str, name: str = "<netlist>", numeric: bool = True
) -> ValidationReport:
    """Parse + compile + pre-flight netlist *text*.

    Parse and compile failures are folded into the returned report as
    ``PARSE_ERROR`` / ``COMPILE_ERROR`` diagnostics rather than raised,
    so callers always get a report they can render or gate on.
    """
    report = ValidationReport(subject=name)
    try:
        circuit = parse_netlist(text, filename=name)
    except NetlistError as exc:
        report.add(
            "PARSE_ERROR",
            "error",
            str(exc),
            location=f"{name}:{exc.line_no}" if exc.line_no else name,
        )
        return report
    try:
        system = circuit.compile(on_invalid=None)
    except Exception as exc:  # topology so broken that assembly fails
        report.add("COMPILE_ERROR", "error", str(exc), location=name)
        return report
    pre = preflight(system, numeric=numeric)
    pre.subject = name
    report.merge(pre)
    return report


def lint_file(path: str, numeric: bool = True) -> ValidationReport:
    """Parse + compile + pre-flight one netlist file (see
    :func:`lint_text`; unreadable files become ``PARSE_ERROR``)."""
    try:
        with open(path, "r") as fh:
            text = fh.read()
    except OSError as exc:
        report = ValidationReport(subject=path)
        report.add("PARSE_ERROR", "error", str(exc), location=path)
        return report
    return lint_text(text, name=path, numeric=numeric)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.validate",
        description="Pre-flight lint for SPICE-style netlists. "
        "Exit status: 0 all clean, 1 failures found, 2 usage error.",
    )
    parser.add_argument("files", nargs="*", help="netlist files (*.cir)")
    parser.add_argument(
        "--no-numeric",
        action="store_true",
        help="skip the MNA numerical-health probes (topology lint only)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON document instead of text",
    )
    args = parser.parse_args(argv)
    if not args.files:
        parser.print_usage(sys.stderr)
        print("error: no netlist files given", file=sys.stderr)
        return 2

    failed = 0
    reports = []
    for path in args.files:
        rep = lint_file(path, numeric=not args.no_numeric)
        bad = bool(rep.errors) or (args.strict and bool(rep.warnings))
        failed += bad
        if args.json:
            doc = rep.as_dict()
            doc["failed"] = bool(bad)
            reports.append(doc)
            continue
        status = "FAIL" if bad else "ok"
        print(f"{path}: {status} ({len(rep.errors)} error(s), "
              f"{len(rep.warnings)} warning(s))")
        for diag in rep.diagnostics:
            print(f"  {diag.format()}")
    if args.json:
        print(json.dumps(
            {
                "ok": not failed,
                "files": len(args.files),
                "failed": failed,
                "strict": bool(args.strict),
                "reports": reports,
            },
            indent=2,
            default=repr,
        ))
    else:
        print(f"{len(args.files)} file(s) linted, {failed} failed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
