"""Reduced-order modeling (paper sec. 5)."""

from repro.rom.awe import PadeModel, awe
from repro.rom.krylov import arnoldi, krylov_basis, prima, pvl
from repro.rom.noise_rom import NoiseROM
from repro.rom.passivity import PassivityReport, check_passivity, stable_poles_only
from repro.rom.romdevice import ReducedOrderBlock, rom_to_fd_block
from repro.rom.statespace import DescriptorSystem, ReducedSystem, port_descriptor
from repro.rom.vecfit import (
    VectorFitResult,
    initial_poles,
    vector_fit,
    vector_fit_common_poles,
)

__all__ = [
    "DescriptorSystem",
    "ReducedSystem",
    "port_descriptor",
    "awe",
    "PadeModel",
    "pvl",
    "arnoldi",
    "prima",
    "krylov_basis",
    "PassivityReport",
    "check_passivity",
    "stable_poles_only",
    "NoiseROM",
    "ReducedOrderBlock",
    "rom_to_fd_block",
    "VectorFitResult",
    "vector_fit",
    "vector_fit_common_poles",
    "initial_poles",
]
