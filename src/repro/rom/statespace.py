"""Descriptor-form linear systems for reduced-order modeling.

Large linear sub-blocks (interconnect, package, extracted passives) are
handled as descriptor systems

    C dx/dt + G x = B u,      y = L^T x,
    H(s) = L^T (G + s C)^{-1} B,

built either directly or by linearizing a compiled circuit.  Reduction
algorithms (:mod:`repro.rom.pvl`, ``arnoldi``, ``prima``) map these to
small dense :class:`ReducedSystem` objects with identical interfaces.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.netlist.components import ISource, VSource
from repro.netlist.mna import MNASystem
from repro.perf import sweep_map
from repro.robust import SolveReport
from repro.robust.krylov import robust_direct_solve

__all__ = ["DescriptorSystem", "ReducedSystem", "port_descriptor"]


class _TransferPoint:
    """Picklable per-frequency resolvent solve for the sweep executor."""

    __slots__ = ("system", "policy", "on_failure")

    def __init__(self, system, policy, on_failure):
        self.system = system
        self.policy = policy
        self.on_failure = on_failure

    def __call__(self, s):
        A = self.system.G + s * self.system.C
        return robust_direct_solve(
            sp.csc_matrix(A) if sp.issparse(A) else A,
            self.system.B.astype(complex),
            policy=self.policy,
            on_failure=self.on_failure,
        )


@dataclasses.dataclass
class DescriptorSystem:
    """Sparse/dense descriptor system with p inputs and m outputs."""

    C: object  # (n, n)
    G: object  # (n, n)
    B: np.ndarray  # (n, p)
    L: np.ndarray  # (n, m)

    @property
    def order(self) -> int:
        return self.B.shape[0]

    @property
    def num_inputs(self) -> int:
        return self.B.shape[1]

    @property
    def num_outputs(self) -> int:
        return self.L.shape[1]

    def transfer(
        self,
        s_values: Sequence[complex],
        policy=None,
        on_failure: Optional[str] = None,
        report: Optional[SolveReport] = None,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        sweep_options: Optional[dict] = None,
    ) -> np.ndarray:
        """H(s) over an array of complex frequencies -> (len(s), m, p).

        Each resolvent solve runs through
        :func:`~repro.robust.krylov.robust_direct_solve` (LU →
        GMRES-Jacobi → least-squares), so probing at or near a pole of
        ``H`` degrades to the minimum-norm solution instead of silently
        returning garbage.  Pass a :class:`SolveReport` to collect the
        per-frequency attempt history (merged in frequency order even
        under a parallel sweep), and ``workers``/``backend`` to dispatch
        the independent frequency points through the
        :func:`repro.perf.sweep_map` executor — serial, threaded and
        process runs are bit-identical.  ``sweep_options`` forwards
        extra ``sweep_map`` keywords — the fault-tolerance knobs
        (``timeout``, ``retries``, ``on_item_failure``, ``checkpoint``,
        ...) and ``stats``.
        """
        s_values = np.asarray(list(s_values), dtype=complex)
        out = np.empty((s_values.size, self.num_outputs, self.num_inputs), dtype=complex)

        results = sweep_map(
            _TransferPoint(self, policy, on_failure),
            s_values,
            workers=workers,
            backend=backend,
            **(sweep_options or {}),
        )
        skipped = []
        for k, (s, res) in enumerate(zip(s_values, results)):
            if res is None:
                # frequency point quarantined by on_item_failure="skip":
                # keep the (len(s), m, p) shape with a NaN block and a
                # note on the report instead of crashing on None
                out[k] = np.nan
                skipped.append(k)
                continue
            if report is not None:
                report.merge(res.report, prefix=f"s={s:.3g}")
            out[k] = self.L.T @ res.x
        if skipped and report is not None:
            report.notes.append(
                f"{len(skipped)} of {s_values.size} transfer points skipped by "
                f"on_item_failure='skip' (NaN blocks at indices {skipped})"
            )
        return out

    def moments(self, q: int, s0: complex = 0.0, scale: float = 1.0) -> np.ndarray:
        """First q moments of H about s0: H(s0 + sigma) = sum m_k sigma^k.

        m_k = L^T (-A)^k r with A = (G + s0 C)^{-1} C and
        r = (G + s0 C)^{-1} B.  Returned shape (q, m, p).

        ``scale`` returns frequency-normalized moments ``m_k scale^k``
        (the expansion in ``sigma' = sigma/scale``), applied inside the
        recursion so that extreme time-constant ratios neither overflow
        nor underflow — AWE depends on this.
        """
        A0 = self.G + s0 * self.C
        try:
            if sp.issparse(A0):
                lu = spla.splu(sp.csc_matrix(A0))
                solve = lu.solve
            else:
                import scipy.linalg as sla

                lu = sla.lu_factor(np.asarray(A0, dtype=complex if np.iscomplexobj(s0) or s0 != 0 else float))
                solve = lambda rhs: sla.lu_solve(lu, rhs)  # noqa: E731
        except (RuntimeError, ValueError):
            # singular expansion point: degrade to the recovery ladder
            # (GMRES-Jacobi → least-squares) per application
            solve = lambda rhs: robust_direct_solve(  # noqa: E731
                A0, rhs, on_failure="best_effort"
            ).x
        Cd = self.C.toarray() if sp.issparse(self.C) else np.asarray(self.C)
        vec = solve(np.asarray(self.B, dtype=float) if s0 == 0 else self.B.astype(complex))
        vec = np.atleast_2d(vec)
        if vec.shape[0] != self.order:
            vec = vec.T
        out = np.empty((q, self.num_outputs, self.num_inputs), dtype=complex)
        for k in range(q):
            out[k] = ((-1.0) ** k) * (self.L.T @ vec)
            vec = scale * solve(Cd @ vec)
            vec = np.atleast_2d(vec)
            if vec.shape[0] != self.order:
                vec = vec.T
        return out


@dataclasses.dataclass
class ReducedSystem:
    """Dense reduced model with the same transfer interface.

    ``D`` is an optional direct feedthrough term (outputs x inputs) —
    rational fits of admittance data generally need one.
    """

    C: np.ndarray
    G: np.ndarray
    B: np.ndarray
    L: np.ndarray
    s0: complex = 0.0
    D: Optional[np.ndarray] = None

    @property
    def order(self) -> int:
        return self.B.shape[0]

    @property
    def num_inputs(self) -> int:
        return self.B.shape[1]

    @property
    def num_outputs(self) -> int:
        return self.L.shape[1]

    def transfer(self, s_values: Sequence[complex]) -> np.ndarray:
        s_values = np.asarray(list(s_values), dtype=complex)
        out = np.empty((s_values.size, self.num_outputs, self.num_inputs), dtype=complex)
        for k, s in enumerate(s_values):
            out[k] = self.L.T @ np.linalg.solve(self.G + s * self.C, self.B.astype(complex))
        if self.D is not None:
            out = out + np.asarray(self.D)[None, :, :]
        return out

    def moments(self, q: int, s0: complex = 0.0) -> np.ndarray:
        m = DescriptorSystem(self.C, self.G, self.B, self.L).moments(q, s0)
        if self.D is not None:
            m[0] = m[0] + np.asarray(self.D)
        return m

    def poles(self) -> np.ndarray:
        """Finite generalized eigenvalues of (-G, C)."""
        import scipy.linalg as sla

        w = sla.eig(-self.G, self.C, right=False, homogeneous_eigvals=True)
        alphas, betas = np.asarray(w[0]), np.asarray(w[1])
        finite = np.abs(betas) > 1e-12 * max(float(np.max(np.abs(betas))), 1e-300)
        return alphas[finite] / betas[finite]


def port_descriptor(system: MNASystem, port_sources: Sequence[str]) -> DescriptorSystem:
    """Port-admittance descriptor of a linear circuit.

    The circuit must contain a :class:`VSource` at every port (value
    irrelevant); inputs are the port voltages, outputs the currents
    flowing *into* the rest of the circuit, so ``H(s)`` is the port
    admittance matrix ``Y(s)`` — the form both the HB frequency-domain
    hook and the time-domain ROM device expect.

    The port-source branch equations are sign-flipped so that for a
    passive RLC block the matrices carry the PRIMA structure
    ``G = [[N, E], [-E^T, 0]]`` with ``N + N^T >= 0``, ``C`` symmetric
    PSD, and ``L = B`` — the precondition for congruence reduction to
    preserve passivity.  (Row scaling changes nothing about ``H(s)``.)
    """
    x0 = np.zeros(system.n)
    G = sp.lil_matrix(system.G(x0))
    C = sp.lil_matrix(system.C(x0))
    p = len(port_sources)
    B = np.zeros((system.n, p))
    L = np.zeros((system.n, p))
    for k, name in enumerate(port_sources):
        dev = None
        for d in system.devices:
            if d.name == name:
                dev = d
                break
        if dev is None or not isinstance(dev, VSource):
            raise KeyError(f"{name!r} is not a VSource in this circuit")
        br = dev.branch_idx[0]
        # flip the branch row:  (v+ - v-) = u   becomes   -(v+ - v-) = -u
        G[br, :] = -G[br, :]
        C[br, :] = -C[br, :]
        B[br, k] = -1.0
        # current delivered into the block is minus the branch current
        L[br, k] = -1.0
    return DescriptorSystem(C=sp.csr_matrix(C), G=sp.csr_matrix(G), B=B, L=L)
