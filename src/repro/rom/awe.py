"""Asymptotic Waveform Evaluation: direct Pade from explicit moments.

The paper (sec. 5, refs [35, 36]) notes that "the direct computation of
Pade approximations is numerically unstable" — AWE is that direct
computation, kept here as the baseline whose failure beyond ~8 matched
moments motivates the Krylov methods.  The Hankel moment matrix that
determines the denominator coefficients becomes catastrophically
ill-conditioned as the order grows; the benchmark measures exactly
this.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from repro.rom.statespace import DescriptorSystem

__all__ = ["PadeModel", "awe"]


@dataclasses.dataclass
class PadeModel:
    """Rational approximant H(s0 + sigma) ~ P(sigma) / Q(sigma).

    ``num``/``den`` are polynomial coefficients in ascending powers of
    sigma, with ``den[0] = 1``.  ``hankel_condition`` records the
    conditioning of the moment system that produced the denominator —
    the instability diagnostic.
    """

    num: np.ndarray
    den: np.ndarray
    s0: complex
    hankel_condition: float
    freq_scale: float = 1.0

    @property
    def order(self) -> int:
        return self.den.size - 1

    def transfer(self, s_values: Sequence[complex]) -> np.ndarray:
        s_values = np.asarray(list(s_values), dtype=complex)
        sigma = (s_values - self.s0) / self.freq_scale
        p = np.polyval(self.num[::-1], sigma)
        qv = np.polyval(self.den[::-1], sigma)
        return p / qv

    def poles(self) -> np.ndarray:
        """Roots of the denominator mapped back to the s-plane."""
        return np.roots(self.den[::-1]) * self.freq_scale + self.s0


def awe(system: DescriptorSystem, q: int, s0: complex = 0.0,
        input_index: int = 0, output_index: int = 0,
        freq_scale: Optional[float] = None) -> PadeModel:
    """[q-1 / q] Pade approximant from 2q explicitly computed moments.

    Solves the Hankel system  H a = -m[q:2q]  for the denominator and
    back-substitutes the numerator — the classical AWE recipe.

    ``freq_scale`` normalizes the expansion variable (``sigma' = sigma /
    freq_scale``) as production AWE codes do; without it the Hankel
    conditioning is dominated by unit scaling rather than the genuine
    moment-collinearity instability.  Default: ``|m0/m1|`` when finite
    (the system's dominant time-constant scale).
    """
    if freq_scale is None:
        probe = system.moments(4, s0)[:, output_index, input_index]
        freq_scale = 1.0
        for k in range(3):
            if abs(probe[k]) > 0 and abs(probe[k + 1]) > 0:
                freq_scale = abs(probe[k] / probe[k + 1])
                break
    # frequency-normalized moments m_k w^k, computed inside the moment
    # recursion so extreme time-constant ratios cannot over/underflow
    m = system.moments(2 * q, s0, scale=freq_scale)[:, output_index, input_index]
    H = np.empty((q, q), dtype=complex)
    for i in range(q):
        for j in range(q):
            H[i, j] = m[i + j]
    rhs = -m[q : 2 * q]
    try:
        cond = float(np.linalg.cond(H))
    except np.linalg.LinAlgError:
        cond = np.inf
    if not np.isfinite(cond):
        cond = np.inf
    try:
        a_rev = np.linalg.solve(H, rhs)
    except np.linalg.LinAlgError:
        a_rev = np.linalg.lstsq(H, rhs, rcond=None)[0]
    # denominator 1 + a1 s + ... + aq s^q with coefficients ordered so that
    # sum_j a_j m_{k-j} convolution matches: a_rev solves for (a_q,...,a_1)
    den = np.concatenate([[1.0], a_rev[::-1]])
    num = np.empty(q, dtype=complex)
    for k in range(q):
        acc = m[k]
        for j in range(1, min(k, q) + 1):
            acc += den[j] * m[k - j]
        num[k] = acc
    if not np.iscomplexobj(np.asarray(s0)) or np.imag(s0) == 0:
        num = np.real_if_close(num, tol=1e6)
        den = np.real_if_close(den, tol=1e6)
    return PadeModel(
        num=np.asarray(num),
        den=np.asarray(den),
        s0=s0,
        hankel_condition=cond,
        freq_scale=float(freq_scale),
    )
