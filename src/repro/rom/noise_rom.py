"""ROM-accelerated noise evaluation (paper sec. 5, ref [7]).

The stationary noise analysis of :mod:`repro.analysis.noise` solves one
adjoint system per frequency on the *full* circuit.  Feldmann & Freund's
observation: the map from all noise injection vectors to the output is a
MIMO transfer function that reduces beautifully — reduce once, then
evaluating the noise PSD at any frequency costs a small dense solve.
"The entire noise behavior of a circuit block is captured in a compact
form and can be used hierarchically in system-level simulations."
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from repro.analysis.dc import dc_analysis
from repro.netlist.mna import MNASystem
from repro.rom.krylov import arnoldi
from repro.rom.statespace import DescriptorSystem, ReducedSystem

__all__ = ["NoiseROM"]


@dataclasses.dataclass
class NoiseROM:
    """Compact noise model: reduced multi-input transfer + source PSDs."""

    rom: ReducedSystem
    psd_values: np.ndarray  # one-sided PSD per source at the DC point
    source_names: list

    @classmethod
    def from_mna(
        cls,
        system: MNASystem,
        output_node: str,
        order: int = 10,
        s0: float = 0.0,
        x_dc: Optional[np.ndarray] = None,
    ) -> "NoiseROM":
        """Build the reduced noise model of a compiled circuit.

        Inputs of the underlying descriptor system are the device noise
        injection vectors, the single output is the observation node;
        block Arnoldi reduction about ``s0``.
        """
        if x_dc is None:
            x_dc = dc_analysis(system).x
        G = system.G(x_dc)
        C = system.C(x_dc)
        injections = system.noise_injection_vectors()
        if not injections:
            raise ValueError("circuit has no noise sources")
        B = np.column_stack([u for _, u in injections])
        L = np.zeros((system.n, 1))
        L[system.node(output_node), 0] = 1.0
        # Reduce the ADJOINT system: it has ONE input (the output
        # observation vector) and p outputs (the noise injections), so a
        # depth-q Krylov basis stays q-dimensional regardless of how many
        # noise sources the circuit carries.  |H_adj(s)_{p0}| equals
        # |H(s)_{0p}|, which is all the PSD needs — the same adjoint trick
        # the frequency-by-frequency noise analysis uses, moved into the
        # reduction.
        desc = DescriptorSystem(C=C.T.tocsr(), G=G.T.tocsr(), B=L, L=B)
        rom = arnoldi(desc, order, s0=s0)
        X = x_dc[:, None]
        psd = np.array([src.psd_at(X)[0] for src, _ in injections])
        names = [src.name for src, _ in injections]
        return cls(rom=rom, psd_values=psd, source_names=names)

    def psd(self, freqs: Sequence[float]) -> np.ndarray:
        """Total output noise PSD (V^2/Hz) over a frequency sweep."""
        freqs = np.asarray(list(freqs), dtype=float)
        H = self.rom.transfer(2j * np.pi * freqs)  # adjoint: (k, p, 1)
        return np.einsum("kpo,p->k", np.abs(H) ** 2, self.psd_values)

    def contribution(self, freqs: Sequence[float], source_name: str) -> np.ndarray:
        freqs = np.asarray(list(freqs), dtype=float)
        idx = self.source_names.index(source_name)
        H = self.rom.transfer(2j * np.pi * freqs)
        return np.abs(H[:, idx, 0]) ** 2 * self.psd_values[idx]
