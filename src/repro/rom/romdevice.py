"""Reduced-order models as circuit elements — the mixed-domain bridge.

Paper sec. 5: "the reduced-order model should have efficient
representations in both the time and frequency domains."  Two adapters
realize that:

* :class:`ReducedOrderBlock` — an MNA :class:`~repro.netlist.components.Device`
  stamping the reduced state equations

      Cr dz/dt + Gr z = Br v_ports,      i_ports = Lr^T z,

  so a PRIMA/Arnoldi admittance ROM runs inside DC/AC/**transient**/
  shooting like any other element.
* :func:`rom_to_fd_block` — wraps the same ROM as a
  :class:`~repro.mpde.mpde_core.FrequencyDomainBlock` evaluated as
  ``Y(j w)`` inside **harmonic balance**, the one analysis that accepts
  frequency-domain models natively.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mpde.mpde_core import FrequencyDomainBlock
from repro.netlist.components import Device
from repro.rom.statespace import ReducedSystem

__all__ = ["ReducedOrderBlock", "rom_to_fd_block"]


class ReducedOrderBlock(Device):
    """An admittance-form ROM stamped as an MNA device.

    The ROM must be square (inputs = outputs = ports, admittance
    convention: port current flows *into* the block).  Its reduced
    states become branch-type unknowns of the enclosing circuit.
    Complex-valued reduced matrices are rejected: use a real expansion
    point (PRIMA / real-s0 Arnoldi) for time-domain use — exactly the
    paper's point about domain-compatible models.
    """

    def __init__(self, name: str, nodes: Sequence[str], rom: ReducedSystem):
        if rom.num_inputs != rom.num_outputs or rom.num_inputs != len(nodes):
            raise ValueError(
                f"{name}: ROM must be square with one port per node "
                f"(ports={rom.num_inputs}, nodes={len(nodes)})"
            )
        mats = [rom.C, rom.G, rom.B, rom.L] + ([rom.D] if rom.D is not None else [])
        for mat in mats:
            if np.iscomplexobj(mat) and np.max(np.abs(np.imag(mat))) > 1e-12 * max(
                1.0, np.max(np.abs(mat))
            ):
                raise ValueError(
                    f"{name}: complex-valued ROM cannot be stamped in the time "
                    "domain; rebuild it about a real expansion point"
                )
        super().__init__(name, list(nodes))
        self.rom = rom
        self.n_branches = rom.order

    def g_stamps(self):
        stamps = []
        Gr = np.real(self.rom.G)
        Br = np.real(self.rom.B)
        Lr = np.real(self.rom.L)
        z = self.branch_idx
        ports = self.node_idx
        order = self.rom.order
        for i in range(order):
            for j in range(order):
                if Gr[i, j] != 0.0:
                    stamps.append((z[i], z[j], float(Gr[i, j])))
            for p, node in enumerate(ports):
                if Br[i, p] != 0.0:
                    stamps.append((z[i], node, -float(Br[i, p])))
        # port currents into the block: i_p = (Lr^T z)_p + (D v)_p
        for p, node in enumerate(ports):
            for i in range(order):
                if Lr[i, p] != 0.0:
                    stamps.append((node, z[i], float(Lr[i, p])))
        if self.rom.D is not None:
            Dr = np.real(self.rom.D)
            for p, node_p in enumerate(ports):
                for q_, node_q in enumerate(ports):
                    if Dr[p, q_] != 0.0:
                        stamps.append((node_p, node_q, float(Dr[p, q_])))
        return [(r, c, v) for r, c, v in stamps if r >= 0 and c >= 0]

    def c_stamps(self):
        stamps = []
        Cr = np.real(self.rom.C)
        z = self.branch_idx
        for i in range(self.rom.order):
            for j in range(self.rom.order):
                if Cr[i, j] != 0.0:
                    stamps.append((z[i], z[j], float(Cr[i, j])))
        return stamps


def rom_to_fd_block(system, rom: ReducedSystem, nodes: Sequence[str]) -> FrequencyDomainBlock:
    """Wrap an admittance ROM as an HB frequency-domain block.

    ``system`` is the compiled host circuit (for node index lookup);
    ``nodes`` the port node names in ROM port order.
    """
    if rom.num_inputs != rom.num_outputs or rom.num_inputs != len(nodes):
        raise ValueError("ROM must be square with one port per node")
    ports = np.array([system.node(nd) for nd in nodes])

    def admittance(omega):
        omega = np.atleast_1d(np.asarray(omega, dtype=float))
        return rom.transfer(1j * omega)

    return FrequencyDomainBlock(ports=ports, admittance=admittance)
