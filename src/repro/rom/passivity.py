"""Passivity and stability checks for reduced-order models.

The paper warns that "Lanczos-based methods may produce non-passive
reduced-order models of passive linear systems.  In these cases
post-processing is required."  This module provides the checks (sampled
positive-realness of the admittance, pole stability) and the simple
post-processing (unstable-pole flipping/removal) that realize that
remark; PRIMA needs neither — that contrast is an explicit test.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.rom.statespace import ReducedSystem

__all__ = ["PassivityReport", "check_passivity", "stable_poles_only"]


@dataclasses.dataclass
class PassivityReport:
    """Outcome of sampled positive-real and stability tests."""

    is_stable: bool
    is_positive_real: bool
    min_hermitian_eig: float
    worst_frequency: float
    unstable_poles: np.ndarray

    @property
    def is_passive(self) -> bool:
        return self.is_stable and self.is_positive_real


def check_passivity(
    rom: ReducedSystem,
    omegas: Sequence[float],
    tol: float = -1e-12,
) -> PassivityReport:
    """Sampled passivity test of a (square) admittance-form ROM.

    Positive-realness requires the Hermitian part of ``Y(j w)`` to be
    positive semidefinite for all real w; we test on the given grid and
    report the worst eigenvalue and where it occurs.  Stability is
    checked from the reduced pole set.
    """
    omegas = np.asarray(list(omegas), dtype=float)
    H = rom.transfer(1j * omegas)
    worst = np.inf
    worst_f = 0.0
    for k in range(omegas.size):
        Yh = 0.5 * (H[k] + H[k].conj().T)
        lam = float(np.min(np.linalg.eigvalsh(Yh)))
        if lam < worst:
            worst, worst_f = lam, omegas[k]
    poles = rom.poles()
    unstable = poles[np.real(poles) > 1e-9 * np.max(np.abs(poles) + 1e-300)]
    return PassivityReport(
        is_stable=unstable.size == 0,
        is_positive_real=worst >= tol,
        min_hermitian_eig=worst,
        worst_frequency=worst_f,
        unstable_poles=unstable,
    )


def stable_poles_only(rom: ReducedSystem) -> ReducedSystem:
    """Post-process a SISO ROM by discarding unstable poles.

    Expands the reduced model into poles/residues, drops right-half-plane
    poles, and rebuilds a (diagonal) state-space realization — the simple
    post-processing step the paper alludes to.  Only meaningful for SISO
    reduced models.
    """
    if rom.num_inputs != 1 or rom.num_outputs != 1:
        raise ValueError("pole post-processing implemented for SISO ROMs")
    import scipy.linalg as sla

    lam = sla.eig(-rom.G, rom.C, right=False)
    lam = lam[np.isfinite(lam)]
    # residues by numerical contour sampling around each retained pole
    keep = np.real(lam) <= 0
    lam_keep = lam[keep]
    residues = []
    for p in lam_keep:
        eps = max(1e-6 * abs(p), 1e-3)
        s_pts = p + eps * np.exp(1j * np.array([0.0, np.pi / 2, np.pi, 3 * np.pi / 2]))
        h = rom.transfer(s_pts)[:, 0, 0]
        residues.append(np.mean(h * (s_pts - p)))
    k = lam_keep.size
    Cd = np.eye(k, dtype=complex)
    Gd = -np.diag(lam_keep)
    Bd = np.ones((k, 1), dtype=complex)
    Ld = np.array(residues, dtype=complex)[:, None]
    return ReducedSystem(C=Cd, G=Gd, B=Bd, L=Ld, s0=rom.s0)
