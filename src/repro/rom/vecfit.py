"""Vector fitting: rational models from tabulated frequency data.

Paper sec. 4: "Output from the simulator is typically an S parameter
matrix, which can be used directly in a frequency-domain simulation.
Alternatively, a circuit model can be constructed, using either
*parameter fitting* or the model reduction techniques described in
Section 5."  The model-reduction route needs the matrices; measured or
field-solver data comes as samples ``H(j w_k)``.  Vector fitting is the
parameter-fitting workhorse: iteratively relocated poles

    H(s) ~ d + sum_i  r_i / (s - p_i)

with each iteration solving one linear least-squares problem for the
weighting function sigma(s) and taking the new poles as sigma's zeros.
The result converts to a :class:`~repro.rom.statespace.ReducedSystem`
(real block-diagonal realization), so a *fitted* model plugs into the
same time-domain / HB co-simulation hooks as a *reduced* one — closing
the paper's sec. 4 -> sec. 5 pipeline from data instead of matrices.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from repro.rom.statespace import ReducedSystem

__all__ = ["VectorFitResult", "vector_fit", "vector_fit_common_poles", "initial_poles"]


@dataclasses.dataclass
class VectorFitResult:
    """Fitted rational model ``H(s) = d + sum r_i / (s - p_i)``."""

    poles: np.ndarray
    residues: np.ndarray
    d: float
    rms_error: float
    iterations: int

    def transfer(self, s_values) -> np.ndarray:
        s_values = np.asarray(s_values, dtype=complex)
        out = np.full(s_values.shape, self.d, dtype=complex)
        for p, r in zip(self.poles, self.residues):
            out = out + r / (s_values - p)
        return out

    def to_reduced_system(self) -> ReducedSystem:
        """Real block-diagonal state-space realization.

        Real poles map to 1x1 blocks; conjugate pairs to the rotation
        block ``[[a, b], [-b, a]]`` with ``L = [2 Re r, 2 Im r]`` — the
        standard real Gilbert realization.  The feedthrough ``d`` is
        carried in the ReducedSystem ``D`` term.
        """
        blocks_A: list = []
        Bs: list = []
        Ls: list = []
        used = np.zeros(self.poles.size, dtype=bool)
        for i, p in enumerate(self.poles):
            if used[i]:
                continue
            r = self.residues[i]
            if abs(p.imag) < 1e-9 * max(abs(p.real), 1.0):
                blocks_A.append(np.array([[p.real]]))
                Bs.append([1.0])
                Ls.append([r.real])
                used[i] = True
            else:
                # find the conjugate partner
                j = None
                for k in range(i + 1, self.poles.size):
                    if not used[k] and abs(self.poles[k] - np.conj(p)) <= 1e-6 * abs(p):
                        j = k
                        break
                if j is None:
                    raise ValueError("complex pole without conjugate partner")
                a, b = p.real, p.imag
                blocks_A.append(np.array([[a, b], [-b, a]]))
                Bs.append([1.0, 0.0])
                Ls.append([2.0 * r.real, 2.0 * r.imag])
                used[i] = used[j] = True
        order = sum(blk.shape[0] for blk in blocks_A)
        A = np.zeros((order, order))
        pos = 0
        for blk in blocks_A:
            k = blk.shape[0]
            A[pos : pos + k, pos : pos + k] = blk
            pos += k
        B = np.concatenate(Bs)[:, None]
        L = np.concatenate(Ls)[:, None]
        D = np.array([[self.d]])
        return ReducedSystem(C=np.eye(order), G=-A, B=B, L=L, D=D)


def initial_poles(freqs: Sequence[float], n_poles: int) -> np.ndarray:
    """Standard VF starting poles: log-spaced, lightly damped pairs."""
    freqs = np.asarray(list(freqs), dtype=float)
    f_lo = max(freqs.min(), 1e-3)
    f_hi = freqs.max()
    n_pairs = n_poles // 2
    poles = []
    if n_pairs:
        betas = 2 * np.pi * np.geomspace(f_lo, f_hi, n_pairs)
        for beta in betas:
            alpha = -beta / 100.0
            poles.extend([alpha + 1j * beta, alpha - 1j * beta])
    if n_poles % 2:
        poles.append(-2 * np.pi * np.sqrt(f_lo * f_hi))
    return np.array(poles, dtype=complex)


def _conjugate_basis(s, poles):
    """Real-coefficient partial-fraction basis columns.

    For a real pole: 1/(s-p).  For each conjugate pair only one member
    is stored; its two columns are 1/(s-p)+1/(s-p*) and
    j/(s-p)-j/(s-p*), keeping the LS unknowns real.
    Returns (columns, mapping) where mapping reconstructs complex
    residues from the real solution vector.
    """
    cols = []
    mapping = []  # (kind, pole_index) per solution entry
    skip = np.zeros(poles.size, dtype=bool)
    for i, p in enumerate(poles):
        if skip[i]:
            continue
        if abs(p.imag) < 1e-9 * max(abs(p.real), 1.0):
            cols.append(1.0 / (s - p))
            mapping.append(("real", i))
            skip[i] = True
        else:
            j = None
            for k in range(i + 1, poles.size):
                if not skip[k] and abs(poles[k] - np.conj(p)) <= 1e-6 * abs(p):
                    j = k
                    break
            if j is None:
                raise ValueError("complex pole without conjugate partner")
            cols.append(1.0 / (s - p) + 1.0 / (s - np.conj(p)))
            cols.append(1j / (s - p) - 1j / (s - np.conj(p)))
            mapping.append(("cplx_re", i))
            mapping.append(("cplx_im", i))
            skip[i] = skip[j] = True
    return np.column_stack(cols), mapping


def _residues_from_solution(x, mapping, poles):
    res = np.zeros(poles.size, dtype=complex)
    for val, (kind, i) in zip(x, mapping):
        if kind == "real":
            res[i] += val
        elif kind == "cplx_re":
            res[i] += val
            # conjugate partner handled implicitly when evaluating
        else:  # cplx_im
            res[i] += 1j * val
    # fill conjugate partners
    out_poles = []
    out_res = []
    skip = np.zeros(poles.size, dtype=bool)
    for i, p in enumerate(poles):
        if skip[i]:
            continue
        if abs(p.imag) < 1e-9 * max(abs(p.real), 1.0):
            out_poles.append(p)
            out_res.append(res[i])
            skip[i] = True
        else:
            out_poles.append(p)
            out_res.append(res[i])
            out_poles.append(np.conj(p))
            out_res.append(np.conj(res[i]))
            for k in range(i + 1, poles.size):
                if not skip[k] and abs(poles[k] - np.conj(p)) <= 1e-6 * abs(p):
                    skip[k] = True
                    break
            skip[i] = True
    return np.array(out_poles), np.array(out_res)


def vector_fit(
    freqs: Sequence[float],
    H: Sequence[complex],
    n_poles: int,
    iterations: int = 8,
    enforce_stable: bool = True,
    fit_d: bool = True,
    poles0: Optional[np.ndarray] = None,
) -> VectorFitResult:
    """Fit a rational model to SISO frequency samples ``H(j 2 pi f)``.

    Parameters
    ----------
    freqs, H:
        Sample frequencies (Hz) and complex responses.
    n_poles:
        Model order (conjugate pairs counted individually).
    iterations:
        Pole-relocation sweeps; convergence is typically 3-8.
    enforce_stable:
        Flip any right-half-plane pole into the left half plane after
        each relocation (the standard VF stabilization).
    """
    freqs = np.asarray(list(freqs), dtype=float)
    Hs = np.asarray(list(H), dtype=complex)
    s = 2j * np.pi * freqs
    weights = 1.0 / np.maximum(np.abs(Hs), 1e-12 * np.max(np.abs(Hs)))
    poles = initial_poles(freqs, n_poles) if poles0 is None else np.asarray(poles0)

    for it in range(iterations):
        basis, mapping = _conjugate_basis(s[:, None], poles)
        ncols = basis.shape[1]
        # unknowns: residues of H*sigma (ncols) + d (1) + sigma residues (ncols)
        n_d = 1 if fit_d else 0
        A = np.zeros((2 * s.size, 2 * ncols + n_d))
        rhs = np.zeros(2 * s.size)
        WH = (weights * Hs)[:, None]
        blockH = weights[:, None] * basis
        blockS = -WH * basis
        A[: s.size, :ncols] = np.real(blockH)
        A[s.size :, :ncols] = np.imag(blockH)
        if fit_d:
            A[: s.size, ncols] = np.real(weights)
            A[s.size :, ncols] = 0.0
        A[: s.size, ncols + n_d :] = np.real(blockS)
        A[s.size :, ncols + n_d :] = np.imag(blockS)
        rhs[: s.size] = np.real(weights * Hs)
        rhs[s.size :] = np.imag(weights * Hs)
        sol, *_ = np.linalg.lstsq(A, rhs, rcond=None)
        sigma_res = sol[ncols + n_d :]
        _, c_tilde = _residues_from_solution(sigma_res, mapping, poles)
        # new poles: zeros of sigma(s) = 1 + sum c_i/(s - p_i)
        # = eig( diag(p) - ones * c^T )
        Ap = np.diag(poles) - np.outer(np.ones(poles.size), c_tilde)
        new_poles = np.linalg.eigvals(Ap)
        if enforce_stable:
            new_poles = np.where(
                new_poles.real > 0, -new_poles.real + 1j * new_poles.imag, new_poles
            )
        # re-pair conjugates cleanly
        new_poles = np.sort_complex(new_poles)
        poles = new_poles

    # final residue fit with fixed poles
    basis, mapping = _conjugate_basis(s[:, None], poles)
    ncols = basis.shape[1]
    n_d = 1 if fit_d else 0
    A = np.zeros((2 * s.size, ncols + n_d))
    A[: s.size, :ncols] = np.real(weights[:, None] * basis)
    A[s.size :, :ncols] = np.imag(weights[:, None] * basis)
    if fit_d:
        A[: s.size, ncols] = np.real(weights)
    rhs = np.concatenate([np.real(weights * Hs), np.imag(weights * Hs)])
    sol, *_ = np.linalg.lstsq(A, rhs, rcond=None)
    d_val = float(sol[ncols]) if fit_d else 0.0
    out_poles, out_res = _residues_from_solution(sol[:ncols], mapping, poles)

    fit = VectorFitResult(
        poles=out_poles, residues=out_res, d=d_val, rms_error=0.0, iterations=iterations
    )
    err = fit.transfer(s) - Hs
    fit.rms_error = float(np.sqrt(np.mean(np.abs(err) ** 2)) / np.sqrt(np.mean(np.abs(Hs) ** 2)))
    return fit

def vector_fit_common_poles(
    freqs: Sequence[float],
    H_set,
    n_poles: int,
    iterations: int = 8,
    enforce_stable: bool = True,
    fit_d: bool = True,
):
    """Fit several responses with one *shared* pole set (classic VF).

    This is vector fitting's trademark for multiports: all entries of an
    S/Y matrix share the structure's resonances, so the sigma iteration
    is driven by every response at once (stacked least squares) and only
    the residues differ per entry.

    Parameters
    ----------
    H_set:
        Array-like of shape (k, m): k responses sampled at the m
        frequencies.

    Returns a list of k :class:`VectorFitResult` sharing ``poles``.
    """
    freqs = np.asarray(list(freqs), dtype=float)
    H_set = np.asarray(H_set, dtype=complex)
    if H_set.ndim == 1:
        H_set = H_set[None, :]
    k, m = H_set.shape
    s = 2j * np.pi * freqs
    poles = initial_poles(freqs, n_poles)

    for _ in range(iterations):
        basis, mapping = _conjugate_basis(s[:, None], poles)
        ncols = basis.shape[1]
        n_d = 1 if fit_d else 0
        # stacked LS: per-response residue/d unknowns + SHARED sigma unknowns
        per = ncols + n_d
        A = np.zeros((2 * m * k, per * k + ncols))
        rhs = np.zeros(2 * m * k)
        for r in range(k):
            Hr = H_set[r]
            w = 1.0 / np.maximum(np.abs(Hr), 1e-12 * np.max(np.abs(Hr)))
            row0 = 2 * m * r
            blockH = w[:, None] * basis
            blockS = -(w * Hr)[:, None] * basis
            A[row0 : row0 + m, per * r : per * r + ncols] = np.real(blockH)
            A[row0 + m : row0 + 2 * m, per * r : per * r + ncols] = np.imag(blockH)
            if fit_d:
                A[row0 : row0 + m, per * r + ncols] = np.real(w)
            A[row0 : row0 + m, per * k :] = np.real(blockS)
            A[row0 + m : row0 + 2 * m, per * k :] = np.imag(blockS)
            rhs[row0 : row0 + m] = np.real(w * Hr)
            rhs[row0 + m : row0 + 2 * m] = np.imag(w * Hr)
        sol, *_ = np.linalg.lstsq(A, rhs, rcond=None)
        _, c_tilde = _residues_from_solution(sol[per * k :], mapping, poles)
        Ap = np.diag(poles) - np.outer(np.ones(poles.size), c_tilde)
        new_poles = np.linalg.eigvals(Ap)
        if enforce_stable:
            new_poles = np.where(
                new_poles.real > 0, -new_poles.real + 1j * new_poles.imag, new_poles
            )
        poles = np.sort_complex(new_poles)

    return [
        vector_fit(freqs, H_set[r], n_poles, iterations=0, poles0=poles, fit_d=fit_d)
        for r in range(k)
    ]
