"""Krylov projection engines: PVL, Arnoldi, PRIMA (paper sec. 5).

All three reduce the descriptor system about an expansion point s0 by
projecting onto Krylov subspaces of

    A = (G + s0 C)^{-1} C,       r = (G + s0 C)^{-1} B.

* :func:`pvl` — two-sided (Pade) projection onto K_q(A, r) and
  K_q(A^H, l): the Pade-via-Lanczos approximant, matching **2q** moments
  per reduced order q.  (Implementation note: we build orthonormal bases
  for the two Krylov subspaces and project obliquely; this spans the
  same spaces as nonsymmetric Lanczos, produces the identical Pade
  approximant, and sidesteps Lanczos breakdown without look-ahead.)
* :func:`arnoldi` — one-sided orthogonal projection, matching **q**
  moments (the factor-of-two disadvantage the paper quotes).
* :func:`prima` — block one-sided projection applied *by congruence* to
  (C, G, B): for RLC-structured matrices the reduced model is provably
  passive, at the price of Arnoldi-level moment matching.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.rom.statespace import DescriptorSystem, ReducedSystem

__all__ = ["krylov_basis", "pvl", "arnoldi", "prima"]


def _is_complex_point(s0) -> bool:
    return bool(np.iscomplexobj(s0)) and np.imag(s0) != 0


def _solver(G, C, s0: complex):
    A0 = G + s0 * C
    dtype = complex if _is_complex_point(s0) else float
    try:
        if sp.issparse(A0):
            lu = spla.splu(sp.csc_matrix(A0, dtype=dtype))
            return lu.solve
        import scipy.linalg as sla

        lu = sla.lu_factor(np.asarray(A0, dtype=dtype))
        return lambda rhs: sla.lu_solve(lu, rhs)
    except (RuntimeError, ValueError):
        # singular shifted matrix (expansion point on a pole): fall back
        # to the recovery ladder so the Krylov recursion still advances
        from repro.robust.krylov import robust_direct_solve

        return lambda rhs: robust_direct_solve(
            A0, rhs, on_failure="best_effort"
        ).x


def krylov_basis(apply_A, start: np.ndarray, q: int, reorth: bool = True) -> np.ndarray:
    """Orthonormal basis of the block Krylov space K_q(A, start).

    ``start`` may be a vector or an (n, p) block; the basis dimension is
    at most q*p (deflation drops converged directions).
    """
    start = np.atleast_2d(np.asarray(start))
    if start.shape[0] < start.shape[1]:
        start = start.T
    n = start.shape[0]
    V: list = []

    def push(vec) -> bool:
        v = vec.copy()
        for u in V:
            v -= u * (np.conj(u) @ v)
        if reorth:
            for u in V:
                v -= u * (np.conj(u) @ v)
        nrm = np.linalg.norm(v)
        if nrm < 1e-12 * max(1.0, np.linalg.norm(vec)):
            return False
        V.append(v / nrm)
        return True

    block = [start[:, j] for j in range(start.shape[1])]
    for col in block:
        push(col)
    current = list(V)
    for _ in range(1, q):
        nxt = []
        for v in current:
            w = apply_A(v)
            if push(w):
                nxt.append(V[-1])
        if not nxt:
            break
        current = nxt
    return np.array(V).T if V else np.zeros((n, 0))


def pvl(
    system: DescriptorSystem,
    q: int,
    s0: complex = 0.0,
    input_index: int = 0,
    output_index: int = 0,
) -> ReducedSystem:
    """Pade-via-Lanczos reduction (SISO), matching 2q moments about s0."""
    solve = _solver(system.G, system.C, s0)
    Cd = system.C.toarray() if sp.issparse(system.C) else np.asarray(system.C)
    dtype = complex if _is_complex_point(s0) else float
    b = np.asarray(system.B[:, input_index], dtype=dtype)
    l = np.asarray(system.L[:, output_index], dtype=dtype)

    def apply_A(v):
        return solve(Cd @ v)

    # adjoint operator uses the transposed factorization
    solve_T = _solver(
        system.G.T if hasattr(system.G, "T") else system.G.transpose(),
        system.C.T if hasattr(system.C, "T") else system.C.transpose(),
        s0,
    )

    def apply_AT(v):
        return Cd.T @ solve_T(v)

    r = solve(b)
    V = krylov_basis(apply_A, r, q)
    W = krylov_basis(apply_AT, l, q)
    k = min(V.shape[1], W.shape[1])
    V, W = V[:, :k], W[:, :k]

    Gs = system.G.toarray() if sp.issparse(system.G) else np.asarray(system.G)
    Gr = W.conj().T @ (Gs @ V)
    Cr = W.conj().T @ (Cd @ V)
    Br = W.conj().T @ b[:, None]
    Lr = V.conj().T @ l[:, None]
    return ReducedSystem(C=np.real_if_close(Cr), G=np.real_if_close(Gr),
                         B=np.real_if_close(Br), L=np.real_if_close(Lr), s0=s0)


def arnoldi(
    system: DescriptorSystem,
    q: int,
    s0: complex = 0.0,
) -> ReducedSystem:
    """One-sided Arnoldi reduction, matching q moments about s0 (MIMO)."""
    solve = _solver(system.G, system.C, s0)
    Cd = system.C.toarray() if sp.issparse(system.C) else np.asarray(system.C)

    def apply_A(v):
        return solve(Cd @ v)

    B = np.asarray(system.B, dtype=complex if _is_complex_point(s0) else float)
    R = solve(B)
    V = krylov_basis(apply_A, R, q)

    Gs = system.G.toarray() if sp.issparse(system.G) else np.asarray(system.G)
    Gr = V.conj().T @ (Gs @ V)
    Cr = V.conj().T @ (Cd @ V)
    Br = V.conj().T @ B
    Lr = V.conj().T @ np.asarray(system.L)
    return ReducedSystem(C=np.real_if_close(Cr), G=np.real_if_close(Gr),
                         B=np.real_if_close(Br), L=np.real_if_close(Lr), s0=s0)


def prima(
    system: DescriptorSystem,
    q: int,
    s0: float = 0.0,
) -> ReducedSystem:
    """PRIMA: block-Arnoldi congruence reduction preserving passivity.

    Projects C, G, B by the *same* real basis V (congruence), so
    symmetric semidefinite structure — and hence passivity of RLC
    blocks in admittance form with L = B — survives reduction.
    """
    if np.iscomplexobj(np.asarray(s0)) and np.imag(s0) != 0:
        raise ValueError("PRIMA congruence needs a real expansion point")
    solve = _solver(system.G, system.C, float(s0))
    Cd = system.C.toarray() if sp.issparse(system.C) else np.asarray(system.C)

    def apply_A(v):
        return solve(Cd @ v)

    R = solve(np.asarray(system.B, dtype=float))
    V = np.real(krylov_basis(apply_A, R, q))
    # re-orthonormalize the real basis
    V, _ = np.linalg.qr(V)

    Gs = system.G.toarray() if sp.issparse(system.G) else np.asarray(system.G)
    Gr = V.T @ Gs @ V
    Cr = V.T @ Cd @ V
    Br = V.T @ np.asarray(system.B)
    Lr = V.T @ np.asarray(system.L)
    return ReducedSystem(C=Cr, G=Gr, B=Br, L=Lr, s0=s0)
