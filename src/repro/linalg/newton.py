"""Damped Newton solvers shared by DC, transient, shooting, HB and MPDE.

Every nonlinear solve in the tool family reduces to the same template:
``F(x) = 0`` with a Jacobian that may be a dense array, a scipy sparse
matrix, or an abstract linear operator solved iteratively.  This module
implements a line-search damped Newton iteration over that template.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

__all__ = [
    "NewtonResult",
    "NewtonOptions",
    "newton_solve",
    "ConvergenceError",
    "attach_failure_payload",
]


class ConvergenceError(RuntimeError):
    """Raised when an iterative solver fails to reach its tolerance.

    Instances may carry a best-effort payload consumed by the recovery
    ladders in :mod:`repro.robust`:

    * ``best_x`` — least-bad iterate seen before giving up;
    * ``best_norm`` — its residual norm;
    * ``iterations`` — iterations spent;
    * ``history`` — residual norms per iteration.

    All default to ``None``/absent; use :func:`attach_failure_payload`
    to populate them.
    """


def attach_failure_payload(exc, best_x=None, best_norm=None, iterations=None, history=None):
    """Stamp a best-effort payload onto a solver exception (returned)."""
    exc.best_x = best_x
    exc.best_norm = best_norm
    exc.iterations = iterations
    exc.history = history
    return exc


@dataclasses.dataclass
class NewtonOptions:
    """Tuning knobs for :func:`newton_solve`.

    Attributes
    ----------
    abstol / reltol:
        Convergence is declared when ``||F|| <= abstol`` or the Newton
        update is small relative to the iterate.
    maxiter:
        Iteration cap before raising :class:`ConvergenceError`.
    damping:
        Enable backtracking line search on the residual norm.
    max_backtrack:
        Number of step-halvings tried before accepting the step anyway.
    dx_limit:
        Optional cap on the infinity norm of a Newton update; exponential
        device models need this to avoid overflow on early iterations.
    """

    abstol: float = 1e-9
    reltol: float = 1e-9
    maxiter: int = 100
    damping: bool = True
    max_backtrack: int = 20
    dx_limit: Optional[float] = None


@dataclasses.dataclass
class NewtonResult:
    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    history: list
    # SolveReport attached by the repro.robust recovery layer when this
    # solve ran inside an escalation ladder; None for bare solves.
    report: object = None


def _solve_linear(J, r):
    """Solve J dx = r for dense, sparse, or callable J."""
    if callable(J):
        return J(r)
    if sp.issparse(J):
        return spla.spsolve(J.tocsc(), r)
    return np.linalg.solve(J, r)


def newton_solve(
    residual: Callable[[np.ndarray], np.ndarray],
    jacobian: Callable[[np.ndarray], object],
    x0: np.ndarray,
    options: Optional[NewtonOptions] = None,
    callback: Optional[Callable[[int, np.ndarray, float], None]] = None,
) -> NewtonResult:
    """Solve ``residual(x) = 0`` by damped Newton iteration.

    Parameters
    ----------
    residual:
        Maps an iterate to the residual vector ``F(x)``.
    jacobian:
        Maps an iterate to either a matrix ``J(x)`` (dense or sparse) or a
        *solver* callable ``dx = J(r)`` implementing ``J(x)^{-1} r`` (used
        by the matrix-free HB Newton where the Jacobian solve is GMRES).
    x0:
        Initial guess (not modified).
    """
    opts = options or NewtonOptions()
    x = np.array(x0, dtype=float)
    F = residual(x)
    fnorm = np.linalg.norm(F)
    history = [fnorm]
    best_x, best_norm = x.copy(), fnorm

    def _fail(message, it):
        raise attach_failure_payload(
            ConvergenceError(message),
            best_x=best_x,
            best_norm=float(best_norm),
            iterations=it,
            history=history,
        )

    for it in range(1, opts.maxiter + 1):
        if fnorm <= opts.abstol:
            return NewtonResult(x, True, it - 1, fnorm, history)

        J = jacobian(x)
        try:
            dx = _solve_linear(J, F)
        except np.linalg.LinAlgError as exc:
            _fail(f"singular Jacobian at iteration {it}: {exc}", it - 1)
        dx = np.asarray(dx, dtype=float)
        if not np.all(np.isfinite(dx)):
            _fail("Newton update is not finite (singular Jacobian?)", it - 1)

        if opts.dx_limit is not None:
            peak = np.max(np.abs(dx))
            if peak > opts.dx_limit:
                dx = dx * (opts.dx_limit / peak)

        step = 1.0
        accepted = False
        for _ in range(opts.max_backtrack + 1):
            x_new = x - step * dx
            F_new = residual(x_new)
            fnorm_new = np.linalg.norm(F_new)
            if np.isfinite(fnorm_new) and (not opts.damping or fnorm_new < fnorm or fnorm <= opts.abstol):
                accepted = True
                break
            step *= 0.5
        if not accepted:
            # Accept the smallest step anyway; Newton sometimes needs to
            # climb out of a shallow residual plateau.  But never carry a
            # non-finite residual into the next iteration — that only
            # loops on NaNs until maxiter with no diagnostic.
            x_new = x - step * dx
            F_new = residual(x_new)
            fnorm_new = np.linalg.norm(F_new)
            if not np.isfinite(fnorm_new):
                _fail(
                    f"residual is not finite after {opts.max_backtrack} "
                    f"backtracks at iteration {it} (last finite ||F|| = "
                    f"{best_norm:.3e})",
                    it,
                )

        dx_norm = np.linalg.norm(x_new - x)
        x_scale = max(np.linalg.norm(x_new), 1.0)
        x, F, fnorm = x_new, F_new, fnorm_new
        history.append(fnorm)
        if np.isfinite(fnorm) and fnorm < best_norm:
            best_x, best_norm = x.copy(), fnorm
        if callback is not None:
            callback(it, x, fnorm)

        if fnorm <= opts.abstol or (dx_norm <= opts.reltol * x_scale and fnorm <= 1e3 * opts.abstol):
            return NewtonResult(x, True, it, fnorm, history)

    if fnorm <= opts.abstol * 10:
        return NewtonResult(x, True, opts.maxiter, fnorm, history)
    _fail(
        f"Newton failed to converge in {opts.maxiter} iterations (||F|| = {fnorm:.3e})",
        opts.maxiter,
    )
