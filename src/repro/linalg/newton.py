"""Damped Newton solvers shared by DC, transient, shooting, HB and MPDE.

Every nonlinear solve in the tool family reduces to the same template:
``F(x) = 0`` with a Jacobian that may be a dense array, a scipy sparse
matrix, or an abstract linear operator solved iteratively.  This module
implements a line-search damped Newton iteration over that template.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..trace import get_tracer, spanned

__all__ = [
    "NewtonResult",
    "NewtonOptions",
    "newton_solve",
    "ConvergenceError",
    "attach_failure_payload",
]


class ConvergenceError(RuntimeError):
    """Raised when an iterative solver fails to reach its tolerance.

    Instances may carry a best-effort payload consumed by the recovery
    ladders in :mod:`repro.robust`:

    * ``best_x`` — least-bad iterate seen before giving up;
    * ``best_norm`` — its residual norm;
    * ``iterations`` — iterations spent;
    * ``history`` — residual norms per iteration.

    All default to ``None``/absent; use :func:`attach_failure_payload`
    to populate them.
    """


def attach_failure_payload(exc, best_x=None, best_norm=None, iterations=None, history=None):
    """Stamp a best-effort payload onto a solver exception (returned)."""
    exc.best_x = best_x
    exc.best_norm = best_norm
    exc.iterations = iterations
    exc.history = history
    return exc


@dataclasses.dataclass
class NewtonOptions:
    """Tuning knobs for :func:`newton_solve`.

    Attributes
    ----------
    abstol / reltol:
        Convergence is declared when ``||F|| <= abstol`` or the Newton
        update is small relative to the iterate.
    maxiter:
        Iteration cap before raising :class:`ConvergenceError`.
    damping:
        Enable backtracking line search on the residual norm.
    max_backtrack:
        Number of step-halvings tried before accepting the step anyway.
    dx_limit:
        Optional cap on the infinity norm of a Newton update; exponential
        device models need this to avoid overflow on early iterations.
    reuse_jacobian:
        Modified-Newton knob: maximum consecutive iterations one
        factorization may serve before a mandatory refresh.  0 (the
        default) disables in-solve reuse unless a ``factor_cache`` is
        passed to :func:`newton_solve`, in which case a conservative
        default applies.
    reuse_rate_limit:
        Staleness policy: after a step taken with a *stale*
        factorization, refresh when ``||F_new|| > reuse_rate_limit *
        ||F||`` — i.e. as soon as the contraction rate degrades past
        this ratio, the next iteration pays for a fresh Jacobian.
    """

    abstol: float = 1e-9
    reltol: float = 1e-9
    maxiter: int = 100
    damping: bool = True
    max_backtrack: int = 20
    dx_limit: Optional[float] = None
    reuse_jacobian: int = 0
    reuse_rate_limit: float = 0.5


@dataclasses.dataclass
class NewtonResult:
    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    history: list
    # SolveReport attached by the repro.robust recovery layer when this
    # solve ran inside an escalation ladder; None for bare solves.
    report: object = None
    # modified-Newton accounting: Jacobians actually evaluated, steps
    # served by a reused factorization, and fail-closed refreshes where
    # a stale factor produced a bad step and was replaced in-place
    jacobian_evals: int = 0
    factor_reuses: int = 0
    stale_refreshes: int = 0


def _solve_linear(J, r):
    """Solve J dx = r for dense, sparse, or callable J."""
    if callable(J):
        return J(r)
    if sp.issparse(J):
        return spla.spsolve(J.tocsc(), r)
    return np.linalg.solve(J, r)


#: in-solve reuse cap applied when a factor cache is supplied but the
#: caller did not set ``NewtonOptions.reuse_jacobian`` explicitly
_CACHE_DEFAULT_REUSE = 8


@spanned("newton.solve")
def newton_solve(
    residual: Callable[[np.ndarray], np.ndarray],
    jacobian: Callable[[np.ndarray], object],
    x0: np.ndarray,
    options: Optional[NewtonOptions] = None,
    callback: Optional[Callable[[int, np.ndarray, float], None]] = None,
    factor_cache=None,
    cache_key=None,
) -> NewtonResult:
    """Solve ``residual(x) = 0`` by damped Newton iteration.

    Parameters
    ----------
    residual:
        Maps an iterate to the residual vector ``F(x)``.
    jacobian:
        Maps an iterate to either a matrix ``J(x)`` (dense or sparse) or a
        *solver* callable ``dx = J(r)`` implementing ``J(x)^{-1} r`` (used
        by the matrix-free HB Newton where the Jacobian solve is GMRES).
    x0:
        Initial guess (not modified).
    factor_cache / cache_key:
        Optional :class:`~repro.perf.factorcache.FactorCache` and entry
        key enabling *modified Newton*: the Jacobian factorization is
        reused across iterations (and across successive solves sharing
        the cache, e.g. transient timesteps at a fixed stepsize) until
        the staleness policy in :class:`NewtonOptions` triggers a
        refresh.  The stale-factor mode **fails closed**: a reused
        factorization that produces a non-finite or non-descent step is
        invalidated and the step retried with a fresh Jacobian before
        any :class:`ConvergenceError` escapes to an escalation ladder.
    """
    opts = options or NewtonOptions()
    tr = get_tracer()
    x = np.array(x0, dtype=float)
    F = residual(x)
    fnorm = np.linalg.norm(F)
    history = [fnorm]
    best_x, best_norm = x.copy(), fnorm

    reuse_limit = opts.reuse_jacobian
    if reuse_limit <= 0 and factor_cache is not None:
        reuse_limit = _CACHE_DEFAULT_REUSE
    use_reuse = reuse_limit > 0
    cache = factor_cache if (factor_cache is not None and cache_key is not None) else None

    solver = None  # current linear-solve callable (factorization)
    solver_stale = False  # factored at an earlier iterate / another solve
    reusable = True  # False for matrix-free (callable) Jacobians
    force_fresh = False  # staleness policy demanded a refresh: skip cache
    age = 0  # accepted steps served by the current factorization
    jac_evals = 0
    reuses = 0
    stale_refreshes = 0

    def _fail(message, it):
        if tr.enabled:
            tr.event("newton.fail", iterations=it, best_norm=float(best_norm))
        raise attach_failure_payload(
            ConvergenceError(message),
            best_x=best_x,
            best_norm=float(best_norm),
            iterations=it,
            history=history,
        )

    def _result(xv, converged, iters, norm):
        if tr.enabled:
            tr.event(
                "newton.done",
                converged=converged,
                iterations=iters,
                rnorm=float(norm),
                jacobian_evals=jac_evals,
                factor_reuses=reuses,
                stale_refreshes=stale_refreshes,
            )
        return NewtonResult(
            xv,
            converged,
            iters,
            norm,
            history,
            jacobian_evals=jac_evals,
            factor_reuses=reuses,
            stale_refreshes=stale_refreshes,
        )

    def _fresh_solver(it):
        """Evaluate the Jacobian at the current iterate and factor it."""
        nonlocal jac_evals
        from repro.perf.factorcache import make_factor_solver

        J = jacobian(x)
        jac_evals += 1
        if callable(J):
            return J, False
        try:
            s = make_factor_solver(J)
        except (np.linalg.LinAlgError, RuntimeError, ValueError) as exc:
            _fail(f"singular Jacobian at iteration {it}: {exc}", it - 1)
        if cache is not None:
            cache.store(cache_key, s)
        return s, True

    def _limited(dx):
        if opts.dx_limit is not None:
            peak = np.max(np.abs(dx))
            if peak > opts.dx_limit:
                dx = dx * (opts.dx_limit / peak)
        return dx

    def _line_search(dx):
        """Backtracking search; mirrors the classic accept-anyway tail."""
        step = 1.0
        for _ in range(opts.max_backtrack + 1):
            x_new = x - step * dx
            F_new = residual(x_new)
            fnorm_new = np.linalg.norm(F_new)
            if np.isfinite(fnorm_new) and (
                not opts.damping or fnorm_new < fnorm or fnorm <= opts.abstol
            ):
                return x_new, F_new, fnorm_new, True
            step *= 0.5
        # smallest step, evaluated once more (historical behaviour)
        x_new = x - step * dx
        F_new = residual(x_new)
        fnorm_new = np.linalg.norm(F_new)
        return x_new, F_new, fnorm_new, False

    for it in range(1, opts.maxiter + 1):
        if fnorm <= opts.abstol:
            return _result(x, True, it - 1, fnorm)

        if not use_reuse:
            J = jacobian(x)
            jac_evals += 1
            try:
                dx = _solve_linear(J, F)
            except np.linalg.LinAlgError as exc:
                _fail(f"singular Jacobian at iteration {it}: {exc}", it - 1)
            dx = np.asarray(dx, dtype=float)
            if not np.all(np.isfinite(dx)):
                _fail("Newton update is not finite (singular Jacobian?)", it - 1)
            x_new, F_new, fnorm_new, accepted = _line_search(_limited(dx))
        else:
            used_stale = False
            while True:
                if solver is None:
                    cached = None
                    if cache is not None and not force_fresh:
                        cached = cache.get(cache_key)
                    if cached is not None:
                        solver, solver_stale, reusable = cached, True, True
                    else:
                        solver, reusable = _fresh_solver(it)
                        solver_stale = False
                    force_fresh = False
                    age = 0
                used_stale = solver_stale
                dx = np.asarray(solver(F), dtype=float)
                if not np.all(np.isfinite(dx)):
                    if used_stale:
                        # fail closed: poisoned/stale factorization — drop
                        # it and retry with a fresh Jacobian before any
                        # escalation ladder sees a failure
                        if cache is not None:
                            cache.invalidate(cache_key)
                        solver = None
                        stale_refreshes += 1
                        if tr.enabled:
                            tr.event("newton.stale_refresh", iter=it, cause="nonfinite-step")
                        continue
                    _fail("Newton update is not finite (singular Jacobian?)", it - 1)
                x_new, F_new, fnorm_new, accepted = _line_search(_limited(dx))
                if accepted or not used_stale:
                    break
                # fail closed: the stale factorization could not produce a
                # descent step — refresh and redo this iteration
                if cache is not None:
                    cache.invalidate(cache_key)
                solver = None
                stale_refreshes += 1
                if tr.enabled:
                    tr.event("newton.stale_refresh", iter=it, cause="non-descent")

        if not accepted:
            # Accept the smallest step anyway; Newton sometimes needs to
            # climb out of a shallow residual plateau.  But never carry a
            # non-finite residual into the next iteration — that only
            # loops on NaNs until maxiter with no diagnostic.
            if not np.isfinite(fnorm_new):
                _fail(
                    f"residual is not finite after {opts.max_backtrack} "
                    f"backtracks at iteration {it} (last finite ||F|| = "
                    f"{best_norm:.3e})",
                    it,
                )

        if use_reuse:
            if used_stale:
                reuses += 1
            age += 1
            rate_bad = used_stale and fnorm_new > opts.reuse_rate_limit * fnorm
            if not reusable or age >= reuse_limit or rate_bad:
                solver = None
                force_fresh = True
            else:
                solver_stale = True

        dx_norm = np.linalg.norm(x_new - x)
        x_scale = max(np.linalg.norm(x_new), 1.0)
        if tr.enabled:
            tr.event(
                "newton.iter",
                iter=it,
                rnorm=float(fnorm_new),
                contraction=float(fnorm_new / fnorm) if fnorm > 0 else 0.0,
                stale=bool(use_reuse and used_stale),
            )
        x, F, fnorm = x_new, F_new, fnorm_new
        history.append(fnorm)
        if np.isfinite(fnorm) and fnorm < best_norm:
            best_x, best_norm = x.copy(), fnorm
        if callback is not None:
            callback(it, x, fnorm)

        if fnorm <= opts.abstol or (dx_norm <= opts.reltol * x_scale and fnorm <= 1e3 * opts.abstol):
            return _result(x, True, it, fnorm)

    if fnorm <= opts.abstol * 10:
        return _result(x, True, opts.maxiter, fnorm)
    _fail(
        f"Newton failed to converge in {opts.maxiter} iterations (||F|| = {fnorm:.3e})",
        opts.maxiter,
    )
