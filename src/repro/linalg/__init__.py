"""Shared numerical substrate: Krylov solvers and Newton iterations."""

from repro.linalg.gmres import GMRESResult, gmres
from repro.linalg.newton import (
    ConvergenceError,
    NewtonOptions,
    NewtonResult,
    attach_failure_payload,
    newton_solve,
)

__all__ = [
    "GMRESResult",
    "gmres",
    "ConvergenceError",
    "NewtonOptions",
    "NewtonResult",
    "attach_failure_payload",
    "newton_solve",
]
