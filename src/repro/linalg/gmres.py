"""Matrix-free GMRES with optional right preconditioning.

The paper's harmonic-balance and extraction engines both hinge on Krylov
subspace iterative solvers applied to operators that are never formed
explicitly (the HB Jacobian is applied via FFTs; the IES3-compressed
integral operator is applied block-by-block).  This module provides the
single GMRES implementation shared by both.

scipy's gmres would also work, but rolling our own keeps the iteration
count and residual history observable (the benchmarks report them) and
removes any dependence on scipy's changing callback semantics.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np

from ..trace import get_tracer

__all__ = ["GMRESResult", "gmres"]


@dataclasses.dataclass
class GMRESResult:
    """Outcome of a GMRES solve.

    Attributes
    ----------
    x:
        Approximate solution.
    converged:
        True when the relative residual dropped below ``tol``.
    iterations:
        Total inner iterations performed (across restarts).
    residuals:
        Relative residual norm after each inner iteration.
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residuals: list
    # SolveReport attached by the repro.robust recovery layer (e.g.
    # robust_gmres restart escalation); None for bare solves.
    report: object = None

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else np.inf


def gmres(
    matvec: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    restart: int = 60,
    maxiter: int = 2000,
    precond: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> GMRESResult:
    """Solve ``A x = b`` where ``A`` is given only through ``matvec``.

    Parameters
    ----------
    matvec:
        Function applying the (real or complex) operator.
    b:
        Right-hand side vector.
    x0:
        Initial guess (defaults to zero).
    tol:
        Relative residual tolerance ``||b - A x|| <= tol * ||b||``.
    restart:
        Krylov subspace dimension per restart cycle.
    maxiter:
        Cap on total inner iterations.
    precond:
        Right preconditioner: function approximating ``A^{-1} v``.  Right
        preconditioning keeps the monitored residual equal to the true
        residual of the original system.
    """
    tr = get_tracer()
    if not tr.enabled:
        return _gmres_impl(tr, matvec, b, x0, tol, restart, maxiter, precond)
    with tr.span("gmres.solve", n=int(np.asarray(b).shape[0]), restart=restart,
                 maxiter=maxiter, tol=tol):
        res = _gmres_impl(tr, matvec, b, x0, tol, restart, maxiter, precond)
        tr.event(
            "gmres.done",
            converged=res.converged,
            iterations=res.iterations,
            final_rel=float(res.final_residual),
        )
        return res


def _gmres_impl(tr, matvec, b, x0, tol, restart, maxiter, precond):
    b = np.asarray(b)
    n = b.shape[0]
    dtype = np.result_type(b.dtype, np.float64)
    if precond is None:
        precond = lambda v: v  # noqa: E731 - identity preconditioner

    x = np.zeros(n, dtype=dtype) if x0 is None else np.array(x0, dtype=dtype)
    bnorm = np.linalg.norm(b)
    if bnorm == 0.0:
        return GMRESResult(np.zeros(n, dtype=dtype), True, 0, [0.0])

    residuals: list = []
    total_iters = 0
    cycle = 0

    while total_iters < maxiter:
        cycle += 1
        r = b - matvec(x)
        beta = np.linalg.norm(r)
        if beta / bnorm <= tol:
            residuals.append(beta / bnorm)
            return GMRESResult(x, True, total_iters, residuals)

        m = min(restart, maxiter - total_iters)
        Q = np.zeros((n, m + 1), dtype=dtype)
        H = np.zeros((m + 1, m), dtype=dtype)
        # Givens rotation coefficients and the rotated RHS of the
        # least-squares problem.
        cs = np.zeros(m, dtype=dtype)
        sn = np.zeros(m, dtype=dtype)
        g = np.zeros(m + 1, dtype=dtype)
        g[0] = beta
        Q[:, 0] = r / beta

        k_used = 0
        for k in range(m):
            # force a copy: matvec may return its input (e.g. identity),
            # and the in-place orthogonalization below must not alias Q
            w = np.array(matvec(precond(Q[:, k])), dtype=dtype)
            # Modified Gram-Schmidt with one re-orthogonalization pass.
            for j in range(k + 1):
                H[j, k] = np.vdot(Q[:, j], w)
                w -= H[j, k] * Q[:, j]
            correction = Q[:, : k + 1].conj().T @ w
            w -= Q[:, : k + 1] @ correction
            H[: k + 1, k] += correction
            # Capture the subdiagonal norm *before* the Givens rotation
            # below zeroes H[k+1, k]: this is the quantity the happy-
            # breakdown test must see (a tiny value means the Krylov
            # space is exhausted and the projected solve is exact).
            subdiag = float(np.linalg.norm(w))
            H[k + 1, k] = subdiag

            if subdiag > 1e-300:
                Q[:, k + 1] = w / subdiag

            # Apply accumulated Givens rotations to the new column.
            for j in range(k):
                temp = cs[j] * H[j, k] + sn[j] * H[j + 1, k]
                H[j + 1, k] = -np.conj(sn[j]) * H[j, k] + np.conj(cs[j]) * H[j + 1, k]
                H[j, k] = temp
            denom = np.sqrt(abs(H[k, k]) ** 2 + abs(H[k + 1, k]) ** 2)
            if denom == 0.0:
                cs[k], sn[k] = 1.0, 0.0
            else:
                cs[k] = abs(H[k, k]) / denom if H[k, k] != 0 else 0.0
                if H[k, k] != 0:
                    phase = H[k, k] / abs(H[k, k])
                    cs[k] = abs(H[k, k]) / denom
                    sn[k] = phase * np.conj(H[k + 1, k]) / denom
                else:
                    cs[k], sn[k] = 0.0, 1.0
            temp = cs[k] * g[k] + sn[k] * g[k + 1]
            g[k + 1] = -np.conj(sn[k]) * g[k] + np.conj(cs[k]) * g[k + 1]
            g[k] = temp
            H[k, k] = cs[k] * H[k, k] + sn[k] * H[k + 1, k]
            H[k + 1, k] = 0.0

            total_iters += 1
            k_used = k + 1
            rel = abs(g[k + 1]) / bnorm
            residuals.append(rel)
            # Happy breakdown: the captured subdiagonal (not H[k+1, k],
            # which the rotation above has already zeroed) detects an
            # exhausted Krylov space; the least-squares solution is then
            # exact over that space, so continuing the cycle would only
            # orthogonalize against a zero vector.
            if rel <= tol or subdiag <= 1e-300:
                break

        # Back-substitute the triangular least-squares system.
        y = np.zeros(k_used, dtype=dtype)
        for i in range(k_used - 1, -1, -1):
            y[i] = (g[i] - H[i, i + 1 : k_used] @ y[i + 1 : k_used]) / H[i, i]
        x = x + precond(Q[:, :k_used] @ y)

        if tr.enabled:
            tr.event(
                "gmres.cycle",
                cycle=cycle,
                iters=k_used,
                total_iters=total_iters,
                rel=float(abs(residuals[-1])),
            )

        if residuals[-1] <= tol:
            # Re-check with a true residual to guard against drift in the
            # recurrence-based estimate.
            true_rel = np.linalg.norm(b - matvec(x)) / bnorm
            residuals[-1] = true_rel
            if true_rel <= tol * 10:
                return GMRESResult(x, True, total_iters, residuals)

    # Restart budget exhausted.  The Arnoldi-recurrence estimate in
    # ``residuals[-1]`` can drift arbitrarily far from the true residual
    # (inexact matvecs, loss of orthogonality mid-cycle), so the verdict
    # must come from the same ``||b - Ax|| / ||b||`` recheck the in-loop
    # exit performs — otherwise an exhausted solve can claim convergence
    # the true residual contradicts.
    claimed = bool(residuals) and residuals[-1] <= tol
    true_rel = float(np.linalg.norm(b - matvec(x)) / bnorm)
    if residuals:
        residuals[-1] = true_rel
    else:
        residuals.append(true_rel)
    converged = true_rel <= (tol * 10 if claimed else tol)
    return GMRESResult(x, converged, total_iters, residuals)
