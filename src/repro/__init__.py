"""repro — reproduction of "Tools and Methodology for RF IC Design" (DAC 1998).

Subpackages
-----------
``repro.netlist``
    Circuit devices, waveforms, SPICE-like parser, MNA compilation.
``repro.analysis``
    DC, AC, transient, univariate shooting, stationary noise.
``repro.hb``
    Harmonic balance (single- and multi-tone) with matrix-free Krylov
    solution of the HB Jacobian (paper sec. 2.1).
``repro.mpde``
    Multi-rate PDE methods: MFDTD, MMFT, hierarchical shooting, and
    time-domain envelope following (paper sec. 2.2).
``repro.phasenoise``
    Oscillator PSS, Floquet/PPV phase-noise characterization, Lorentzian
    spectra and jitter (paper sec. 3).
``repro.em``
    Electrostatic / magneto-quasi-static extraction: dense MoM, sparse FD
    field solver, IES3-style hierarchical matrix compression, spiral
    inductor PEEC models (paper sec. 4).
``repro.rom``
    Krylov reduced-order modeling: AWE, PVL, Arnoldi, PRIMA, passivity,
    ROM-accelerated noise, ROM devices for time/frequency co-simulation
    (paper sec. 5).
``repro.rf``
    Generators for the paper's example systems (quadrature modulator,
    switching mixer, oscillators) and RF metrics.
``repro.robust``
    Solve reports, escalation-ladder recovery, pre-flight validation.
``repro.perf``
    Factor caching, perf counters, deterministic sweep executor.
``repro.trace``
    Span-based tracing/metrics (``REPRO_TRACE=run.jsonl``) with a
    ``python -m repro.trace summarize`` aggregator.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
