"""Source waveforms for independent sources.

RF stimuli are dominated by (multi-)sinusoids and fast square waves (LO
drives).  Every waveform is callable on scalar or array time arguments and
reports the fundamental frequencies it contains, which is how the HB and
MPDE engines discover the tone structure of a circuit.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "Waveform",
    "DC",
    "Sine",
    "MultiTone",
    "SquareWave",
    "Pulse",
    "PWL",
    "am_source",
]


class Waveform:
    """Base class: a time-domain excitation ``value(t)``."""

    def __call__(self, t):
        raise NotImplementedError

    @property
    def frequencies(self) -> Tuple[float, ...]:
        """Fundamental frequencies present in this waveform (Hz).

        DC-only waveforms return an empty tuple.
        """
        return ()

    @property
    def dc(self) -> float:
        """The DC (time-average) component, used as the DC-analysis value."""
        return 0.0


@dataclasses.dataclass
class DC(Waveform):
    """Constant excitation."""

    value: float = 0.0

    def __call__(self, t):
        return self.value * np.ones_like(np.asarray(t, dtype=float))

    @property
    def dc(self) -> float:
        return self.value


@dataclasses.dataclass
class Sine(Waveform):
    """``offset + amplitude * sin(2 pi freq t + phase)``."""

    amplitude: float
    freq: float
    phase: float = 0.0
    offset: float = 0.0

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        return self.offset + self.amplitude * np.sin(2 * np.pi * self.freq * t + self.phase)

    @property
    def frequencies(self) -> Tuple[float, ...]:
        return (self.freq,)

    @property
    def dc(self) -> float:
        return self.offset


class MultiTone(Waveform):
    """Sum of sinusoids at (possibly incommensurate) frequencies.

    Parameters
    ----------
    tones:
        Sequence of ``(amplitude, freq, phase)`` triples.
    offset:
        DC offset added to the sum.
    """

    def __init__(self, tones: Sequence[Tuple[float, float, float]], offset: float = 0.0):
        self.tones = [tuple(map(float, tone)) for tone in tones]
        self.offset = float(offset)

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        out = np.full(t.shape, self.offset)
        for amp, freq, phase in self.tones:
            out = out + amp * np.sin(2 * np.pi * freq * t + phase)
        return out

    @property
    def frequencies(self) -> Tuple[float, ...]:
        return tuple(freq for _, freq, _ in self.tones)

    @property
    def dc(self) -> float:
        return self.offset


@dataclasses.dataclass
class SquareWave(Waveform):
    """Smoothed square wave, the canonical LO drive.

    A tanh-shaped transition of relative sharpness ``sharpness`` keeps the
    waveform differentiable, which both transient LTE control and the
    spectral MPDE axes need.  ``sharpness = 20`` gives rise/fall times of
    roughly 2% of the period.
    """

    amplitude: float
    freq: float
    phase: float = 0.0
    offset: float = 0.0
    sharpness: float = 20.0

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        s = np.sin(2 * np.pi * self.freq * t + self.phase)
        return self.offset + self.amplitude * np.tanh(self.sharpness * s)

    @property
    def frequencies(self) -> Tuple[float, ...]:
        return (self.freq,)

    @property
    def dc(self) -> float:
        return self.offset


@dataclasses.dataclass
class Pulse(Waveform):
    """SPICE-style periodic trapezoidal pulse."""

    v1: float
    v2: float
    delay: float = 0.0
    rise: float = 1e-12
    fall: float = 1e-12
    width: float = 0.5
    period: float = 1.0

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        tau = np.mod(t - self.delay, self.period)
        out = np.full(tau.shape, self.v1)
        rising = tau < self.rise
        out = np.where(rising, self.v1 + (self.v2 - self.v1) * tau / self.rise, out)
        flat = (tau >= self.rise) & (tau < self.rise + self.width)
        out = np.where(flat, self.v2, out)
        falling = (tau >= self.rise + self.width) & (tau < self.rise + self.width + self.fall)
        out = np.where(
            falling,
            self.v2 + (self.v1 - self.v2) * (tau - self.rise - self.width) / self.fall,
            out,
        )
        before = t < self.delay
        out = np.where(before, self.v1, out)
        return out

    @property
    def frequencies(self) -> Tuple[float, ...]:
        return (1.0 / self.period,)

    @property
    def dc(self) -> float:
        duty = (self.width + 0.5 * (self.rise + self.fall)) / self.period
        return self.v1 + (self.v2 - self.v1) * duty


class PWL(Waveform):
    """Piecewise-linear waveform from ``(t, v)`` breakpoints."""

    def __init__(self, points: Sequence[Tuple[float, float]]):
        pts = sorted((float(a), float(b)) for a, b in points)
        if len(pts) < 2:
            raise ValueError("PWL needs at least two breakpoints")
        self._t = np.array([p[0] for p in pts])
        self._v = np.array([p[1] for p in pts])

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        return np.interp(t, self._t, self._v)

    @property
    def dc(self) -> float:
        return float(self._v[0])


def am_source(
    carrier_amplitude: float,
    carrier_freq: float,
    mod_freq: float,
    depth: float,
    carrier_phase: float = 0.0,
) -> MultiTone:
    """Amplitude-modulated carrier as an exact three-tone source.

        v(t) = A [1 + m sin(2 pi fm t)] sin(2 pi fc t + phi)
             = A sin(wc t + phi)
               + (A m / 2) [cos((wc - wm) t + phi) - cos((wc + wm) t + phi)]

    Returned as a :class:`MultiTone` so the HB/MPDE engines can place
    each sideband on the right grid axis (fc and fm are typically the
    two fundamentals of an envelope-style simulation).
    """
    a, m = float(carrier_amplitude), float(depth)
    phi = float(carrier_phase)
    half = 0.5 * a * m
    # cos(x + phi) = sin(x + phi + pi/2)
    return MultiTone(
        [
            (a, carrier_freq, phi),
            (half, carrier_freq - mod_freq, phi + np.pi / 2.0),
            (-half, carrier_freq + mod_freq, phi + np.pi / 2.0),
        ]
    )
