"""Circuit container: devices + topology, compiled into an MNA system."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.netlist import components as cmp
from repro.netlist.mna import MNASystem
from repro.netlist.waveforms import Waveform

__all__ = ["Circuit", "GROUND_NAMES"]

GROUND_NAMES = {"0", "gnd", "GND", "ground"}


class Circuit:
    """A netlist under construction.

    Devices are added either through :meth:`add` or the convenience
    constructors (``circuit.resistor("R1", "a", "b", 50.0)``).  Node names
    are arbitrary strings; ``"0"``/``"gnd"`` are ground.  Call
    :meth:`compile` to obtain the :class:`~repro.netlist.mna.MNASystem`
    used by every analysis.
    """

    def __init__(self, title: str = "circuit"):
        self.title = title
        self.devices: List[cmp.Device] = []
        self._names: Dict[str, cmp.Device] = {}

    # ------------------------------------------------------------------
    def add(self, device: cmp.Device) -> cmp.Device:
        if device.name in self._names:
            raise ValueError(f"duplicate device name {device.name!r}")
        self._names[device.name] = device
        self.devices.append(device)
        return device

    def __getitem__(self, name: str) -> cmp.Device:
        return self._names[name]

    def __contains__(self, name: str) -> bool:
        return name in self._names

    def __len__(self) -> int:
        return len(self.devices)

    # --- convenience constructors --------------------------------------
    def resistor(self, name, n1, n2, value, **kw) -> cmp.Resistor:
        return self.add(cmp.Resistor(name, n1, n2, value, **kw))

    def capacitor(self, name, n1, n2, value) -> cmp.Capacitor:
        return self.add(cmp.Capacitor(name, n1, n2, value))

    def inductor(self, name, n1, n2, value) -> cmp.Inductor:
        return self.add(cmp.Inductor(name, n1, n2, value))

    def mutual(self, name, ind1, ind2, k) -> cmp.MutualInductance:
        if isinstance(ind1, str):
            ind1 = self._names[ind1]
        if isinstance(ind2, str):
            ind2 = self._names[ind2]
        return self.add(cmp.MutualInductance(name, ind1, ind2, k))

    def vsource(self, name, npos, nneg, waveform=0.0) -> cmp.VSource:
        return self.add(cmp.VSource(name, npos, nneg, waveform))

    def isource(self, name, npos, nneg, waveform=0.0) -> cmp.ISource:
        return self.add(cmp.ISource(name, npos, nneg, waveform))

    def vccs(self, name, op, on, cp, cn, gm) -> cmp.VCCS:
        return self.add(cmp.VCCS(name, op, on, cp, cn, gm))

    def vcvs(self, name, op, on, cp, cn, gain) -> cmp.VCVS:
        return self.add(cmp.VCVS(name, op, on, cp, cn, gain))

    def diode(self, name, anode, cathode, **kw) -> cmp.Diode:
        return self.add(cmp.Diode(name, anode, cathode, **kw))

    def bjt(self, name, c, b, e, **kw) -> cmp.BJT:
        return self.add(cmp.BJT(name, c, b, e, **kw))

    def mosfet(self, name, d, g, s, **kw) -> cmp.MOSFET:
        return self.add(cmp.MOSFET(name, d, g, s, **kw))

    def nonlinear_resistor(self, name, n1, n2, i_of_v, di_dv) -> cmp.NonlinearResistor:
        return self.add(cmp.NonlinearResistor(name, n1, n2, i_of_v, di_dv))

    def nonlinear_capacitor(self, name, n1, n2, q_of_v, dq_dv) -> cmp.NonlinearCapacitor:
        return self.add(cmp.NonlinearCapacitor(name, n1, n2, q_of_v, dq_dv))

    def switch(self, name, n1, n2, cp, cn, **kw) -> cmp.SwitchConductance:
        return self.add(cmp.SwitchConductance(name, n1, n2, cp, cn, **kw))

    # ------------------------------------------------------------------
    def node_names(self) -> List[str]:
        """Non-ground node names in first-appearance order."""
        seen: List[str] = []
        for dev in self.devices:
            for node in dev.nodes:
                if node not in GROUND_NAMES and node not in seen:
                    seen.append(node)
        return seen

    def lint(self) -> "ValidationReport":
        """Run the topology/parameter lint without compiling."""
        from repro.robust.validate import lint_circuit

        return lint_circuit(self)

    def compile(self, on_invalid: Optional[str] = None, vectorize=None) -> MNASystem:
        """Assign global indices, bind devices, and build the MNA system.

        ``on_invalid`` controls what happens when the pre-flight lint
        (see :mod:`repro.robust.validate`) finds error-severity
        diagnostics: ``"raise"`` raises
        :class:`~repro.robust.diagnostics.ValidationError`, ``"warn"``
        emits warnings, ``"ignore"`` only records.  The default
        (``None``) records without enforcing — the report is attached to
        the returned system as ``system.validation`` and the analysis
        entry points apply their own policy.

        ``vectorize`` selects the nonlinear stamping path (see
        :mod:`repro.netlist.mna`): ``True``/``"vectorized"`` for the
        batched path, ``False``/``"scalar"`` for the per-device
        reference, ``None`` (default) to consult ``REPRO_STAMP_MODE``.
        """
        names = self.node_names()
        index = {name: i for i, name in enumerate(names)}
        num_nodes = len(names)

        branch_owner: List[str] = []
        next_branch = num_nodes
        for dev in self.devices:
            node_idx = [index.get(n, -1) for n in dev.nodes]
            branch_idx = list(range(next_branch, next_branch + dev.n_branches))
            for _ in range(dev.n_branches):
                branch_owner.append(dev.name)
            next_branch += dev.n_branches
            dev.bind(node_idx, branch_idx)

        system = MNASystem(
            title=self.title,
            devices=list(self.devices),
            node_names=names,
            branch_owner=branch_owner,
            vectorize=vectorize,
        )
        from repro.robust.diagnostics import enforce

        system.validation = self.lint()
        if on_invalid is not None:
            enforce(system.validation, on_invalid)
        return system
