"""Compiled modified-nodal-analysis system.

:class:`MNASystem` is the numerical object every analysis consumes.  It
evaluates the DAE terms of paper eq. (3),

    d q(x)/dt + f(x) = b(t),

together with their Jacobians ``G = df/dx`` and ``C = dq/dx``, both at a
single operating point (sparse matrices, used by DC/AC/transient) and in
*batch* over many time samples at once (used by the HB/MPDE engines,
where one Newton iteration touches an entire periodic grid).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.netlist.components import Device, NoiseSource

__all__ = ["MNASystem"]


class MNASystem:
    """Evaluated form of a compiled circuit.

    Attributes
    ----------
    n:
        Total unknown count (node voltages + branch currents).
    node_names:
        Names of the voltage unknowns; unknown ``i`` for
        ``i < len(node_names)`` is the voltage of ``node_names[i]``.
    branch_owner:
        Device name owning each branch-current unknown.
    """

    def __init__(
        self,
        title: str,
        devices: Sequence[Device],
        node_names: Sequence[str],
        branch_owner: Sequence[str],
    ):
        self.title = title
        self.devices = list(devices)
        self.node_names = list(node_names)
        self.branch_owner = list(branch_owner)
        self.n = len(node_names) + len(branch_owner)
        self._node_index = {name: i for i, name in enumerate(node_names)}
        # first-occurrence wins, matching the historical linear scan for
        # devices owning several branch currents
        self._branch_index = {}
        for i, owner in enumerate(self.branch_owner):
            self._branch_index.setdefault(owner, len(self.node_names) + i)
        #: pre-flight ValidationReport attached by Circuit.compile (or None)
        self.validation = None

        self._build_linear()
        self._build_nonlinear()
        self._build_sources()
        self._build_noise()

    # ------------------------------------------------------------------
    def node(self, name: str) -> int:
        """Global unknown index of a node voltage."""
        return self._node_index[name]

    def branch(self, device_name: str) -> int:
        """Global unknown index of a device's (first) branch current."""
        idx = self._branch_index.get(device_name)
        if idx is None:
            available = sorted(set(self.branch_owner))
            raise KeyError(
                f"device {device_name!r} has no branch current; devices with "
                f"branch currents: {available or 'none'}"
            )
        return idx

    # ------------------------------------------------------------------
    def _build_linear(self) -> None:
        g_rows, g_cols, g_vals = [], [], []
        c_rows, c_cols, c_vals = [], [], []
        for dev in self.devices:
            for i, j, v in dev.g_stamps():
                if i >= 0 and j >= 0:
                    g_rows.append(i), g_cols.append(j), g_vals.append(v)
            for i, j, v in dev.c_stamps():
                if i >= 0 and j >= 0:
                    c_rows.append(i), c_cols.append(j), c_vals.append(v)
        n = self.n
        self.G_lin = sp.csr_matrix(
            (np.array(g_vals, dtype=float), (g_rows, g_cols)), shape=(n, n)
        )
        self.C_lin = sp.csr_matrix(
            (np.array(c_vals, dtype=float), (c_rows, c_cols)), shape=(n, n)
        )
        # COO copies kept for batch-Jacobian assembly
        gc = self.G_lin.tocoo()
        cc = self.C_lin.tocoo()
        self._g_lin_coo = (gc.row.copy(), gc.col.copy(), gc.data.copy())
        self._c_lin_coo = (cc.row.copy(), cc.col.copy(), cc.data.copy())

    def _build_nonlinear(self) -> None:
        self._nl: List[Tuple[Device, np.ndarray, np.ndarray]] = []
        for dev in self.devices:
            if dev.nonlinear:
                var_idx, eq_idx = dev.nl_ports()
                self._nl.append((dev, np.asarray(var_idx), np.asarray(eq_idx)))
        self.has_nonlinear = bool(self._nl)

    def _build_sources(self) -> None:
        rows, waves, signs = [], [], []
        for dev in self.devices:
            for row, wave, sign in dev.b_stamps():
                if row >= 0:
                    rows.append(row), waves.append(wave), signs.append(sign)
        self._b_rows = np.array(rows, dtype=int)
        self._b_waves = waves
        self._b_signs = np.array(signs, dtype=float)

    def _build_noise(self) -> None:
        self.noise_sources: List[NoiseSource] = []
        for dev in self.devices:
            self.noise_sources.extend(dev.noise_sources())

    # ------------------------------------------------------------------
    @staticmethod
    def _local_voltages(x: np.ndarray, var_idx: np.ndarray) -> np.ndarray:
        """Gather device-local variables; ground (-1) reads as 0."""
        V = np.zeros((len(var_idx), x.shape[1]))
        for k, idx in enumerate(var_idx):
            if idx >= 0:
                V[k] = x[idx]
        return V

    def _eval_nl(self, x2d: np.ndarray):
        """Yield (dev, var_idx, eq_idx, f, q, df, dq) over nonlinear devices."""
        for dev, var_idx, eq_idx in self._nl:
            V = self._local_voltages(x2d, var_idx)
            f, q, df, dq = dev.nl_eval(V)
            yield dev, var_idx, eq_idx, f, q, df, dq

    def _as2d(self, x: np.ndarray) -> Tuple[np.ndarray, bool]:
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            return x[:, None], True
        return x, False

    # --- DAE terms -------------------------------------------------------
    def f(self, x: np.ndarray) -> np.ndarray:
        """Resistive term f(x); accepts (n,) or (n, m)."""
        x2d, squeeze = self._as2d(x)
        out = self.G_lin @ x2d
        for _, _, eq_idx, fv, _, _, _ in self._eval_nl(x2d):
            for k, row in enumerate(eq_idx):
                if row >= 0:
                    out[row] += fv[k]
        return out[:, 0] if squeeze else out

    def q(self, x: np.ndarray) -> np.ndarray:
        """Charge/flux term q(x); accepts (n,) or (n, m)."""
        x2d, squeeze = self._as2d(x)
        out = self.C_lin @ x2d
        for _, _, eq_idx, _, qv, _, _ in self._eval_nl(x2d):
            for k, row in enumerate(eq_idx):
                if row >= 0:
                    out[row] += qv[k]
        return out[:, 0] if squeeze else out

    def b(self, t) -> np.ndarray:
        """Excitation vector; scalar t -> (n,), array t (m,) -> (n, m)."""
        t_arr = np.asarray(t, dtype=float)
        scalar = t_arr.ndim == 0
        t2 = np.atleast_1d(t_arr)
        out = np.zeros((self.n, t2.shape[0]))
        for row, wave, sign in zip(self._b_rows, self._b_waves, self._b_signs):
            out[row] += sign * wave(t2)
        return out[:, 0] if scalar else out

    def b_dc(self) -> np.ndarray:
        """DC component of the excitation (used by DC analysis)."""
        out = np.zeros(self.n)
        for row, wave, sign in zip(self._b_rows, self._b_waves, self._b_signs):
            out[row] += sign * wave.dc
        return out

    def source_frequencies(self) -> Tuple[float, ...]:
        """Distinct nonzero fundamentals present in the excitations."""
        freqs: List[float] = []
        for wave in self._b_waves:
            for f0 in wave.frequencies:
                if f0 > 0 and not any(abs(f0 - g) <= 1e-9 * g for g in freqs):
                    freqs.append(f0)
        return tuple(sorted(freqs))

    # --- Jacobians ---------------------------------------------------------
    def _point_jacobian(self, x: np.ndarray, which: str) -> sp.csr_matrix:
        x2d, _ = self._as2d(x)
        rows, cols, vals = [], [], []
        for _, var_idx, eq_idx, _, _, df, dq in self._eval_nl(x2d):
            block = df if which == "G" else dq
            for a, row in enumerate(eq_idx):
                if row < 0:
                    continue
                for bb, col in enumerate(var_idx):
                    if col < 0:
                        continue
                    rows.append(row), cols.append(col), vals.append(block[a, bb, 0])
        base = self.G_lin if which == "G" else self.C_lin
        if not rows:
            return base.copy()
        extra = sp.csr_matrix(
            (np.array(vals, dtype=float), (rows, cols)), shape=(self.n, self.n)
        )
        return (base + extra).tocsr()

    def G(self, x: np.ndarray) -> sp.csr_matrix:
        """df/dx at a single operating point."""
        return self._point_jacobian(x, "G")

    def C(self, x: np.ndarray) -> sp.csr_matrix:
        """dq/dx at a single operating point."""
        return self._point_jacobian(x, "C")

    # --- batch Jacobians (HB / MPDE) ----------------------------------------
    def jacobian_pattern(self) -> Tuple[np.ndarray, np.ndarray]:
        """(rows, cols) of the combined per-sample Jacobian pattern.

        The pattern is the union of the linear G/C stamps and all
        nonlinear device blocks.  :meth:`batch_jacobians` returns values
        aligned with this fixed pattern, so HB/MPDE can pre-build one
        sparsity structure and refill data on every Newton iteration.
        """
        rows: List[int] = []
        cols: List[int] = []
        for r, c, _ in zip(*self._g_lin_coo):
            rows.append(int(r)), cols.append(int(c))
        for r, c, _ in zip(*self._c_lin_coo):
            rows.append(int(r)), cols.append(int(c))
        for _, var_idx, eq_idx in self._nl:
            for row in eq_idx:
                if row < 0:
                    continue
                for col in var_idx:
                    if col < 0:
                        continue
                    rows.append(int(row)), cols.append(int(col))
        return np.array(rows, dtype=int), np.array(cols, dtype=int)

    def batch_jacobians(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-sample G and C entry values aligned with jacobian_pattern().

        ``X`` has shape ``(n, m)``; returns ``(g_vals, c_vals)`` each of
        shape ``(nnz, m)``.
        """
        m = X.shape[1]
        nnz_gl = len(self._g_lin_coo[0])
        nnz_cl = len(self._c_lin_coo[0])
        nnz_nl = sum(
            int(np.sum(eq_idx >= 0)) * int(np.sum(var_idx >= 0))
            for _, var_idx, eq_idx in self._nl
        )
        nnz = nnz_gl + nnz_cl + nnz_nl
        g_vals = np.zeros((nnz, m))
        c_vals = np.zeros((nnz, m))
        g_vals[:nnz_gl] = self._g_lin_coo[2][:, None]
        c_vals[nnz_gl : nnz_gl + nnz_cl] = self._c_lin_coo[2][:, None]
        pos = nnz_gl + nnz_cl
        for _, var_idx, eq_idx, _, _, df, dq in self._eval_nl(X):
            for a, row in enumerate(eq_idx):
                if row < 0:
                    continue
                for bb, col in enumerate(var_idx):
                    if col < 0:
                        continue
                    g_vals[pos] = df[a, bb]
                    c_vals[pos] = dq[a, bb]
                    pos += 1
        return g_vals, c_vals

    def batch_fq(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(f(X), q(X)) over sample columns; both shape (n, m)."""
        return self.f(X), self.q(X)

    # --- noise ---------------------------------------------------------------
    def noise_injection_vectors(self) -> List[Tuple[NoiseSource, np.ndarray]]:
        """(source, unit-injection column) pairs with ground rows dropped."""
        out = []
        for src in self.noise_sources:
            u = np.zeros(self.n)
            for row, sign in zip(src.rows, src.signs):
                if row >= 0:
                    u[row] += sign
            out.append((src, u))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"MNASystem({self.title!r}, n={self.n}, nodes={len(self.node_names)}, "
            f"branches={len(self.branch_owner)}, devices={len(self.devices)})"
        )
