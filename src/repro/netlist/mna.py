"""Compiled modified-nodal-analysis system.

:class:`MNASystem` is the numerical object every analysis consumes.  It
evaluates the DAE terms of paper eq. (3),

    d q(x)/dt + f(x) = b(t),

together with their Jacobians ``G = df/dx`` and ``C = dq/dx``, both at a
single operating point (sparse matrices, used by DC/AC/transient) and in
*batch* over many time samples at once (used by the HB/MPDE engines,
where one Newton iteration touches an entire periodic grid).

Stamping paths
--------------
Nonlinear devices are evaluated through one of two equivalent paths:

* **vectorized** (default): devices are grouped by type
  (``Device.nl_group_key``) and each group is evaluated as one numpy
  batch through ``Device.nl_eval_group``; results are scattered into
  preallocated index structures (``np.add.at`` for f/q, precomputed
  COO row/col arrays for the Jacobians).  One Python-level call per
  device *type* instead of one per device.
* **scalar**: the historical per-device loop, kept as the reference
  implementation.

Both paths share one canonical device ordering (batchable families
grouped by first occurrence, netlist order within a family) and mirror
each other operation-for-operation, so their outputs are bit-identical
— ``tests/test_properties.py`` pins this down on random circuits.
Select with ``compile(vectorize=...)`` or the ``REPRO_STAMP_MODE``
environment variable (``"vectorized"`` | ``"scalar"``).

Compiled systems pickle (for the process-backend sweep executor) by
re-running compilation from the device list on unpickle — the noise
closures and index structures are rebuilt, not serialized.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.netlist.components import Device, NoiseSource

__all__ = ["MNASystem", "STAMP_ENV", "resolve_stamp_mode"]

STAMP_ENV = "REPRO_STAMP_MODE"

_STAMP_MODES = ("vectorized", "scalar")


def resolve_stamp_mode(mode=None) -> str:
    """Normalize a stamping-mode request to ``"vectorized"`` | ``"scalar"``.

    ``mode`` may be a mode name, a boolean (``True`` -> vectorized), or
    ``None`` to consult the ``REPRO_STAMP_MODE`` environment variable
    (default ``"vectorized"``).  Unknown values raise ``ValueError``.
    """
    if mode is None:
        mode = os.environ.get(STAMP_ENV) or "vectorized"
    if isinstance(mode, bool):
        return "vectorized" if mode else "scalar"
    if not isinstance(mode, str):
        raise ValueError(
            f"stamp mode must be a string or bool, got {type(mode).__name__}"
        )
    norm = mode.strip().lower()
    if norm not in _STAMP_MODES:
        raise ValueError(
            f"unknown stamp mode {mode!r}; expected one of {_STAMP_MODES} "
            f"(set via argument or ${STAMP_ENV})"
        )
    return norm


class _NLGroup:
    """Precomputed scatter indices for one batch of nonlinear devices.

    Holds ``d`` same-family devices (``d == 1`` for devices that opt out
    of batching via ``nl_group_key() is None``) together with the index
    arrays the vectorized stamping path needs:

    * ``var_safe``/``var_mask`` — gather ``(d, k_in, m)`` local voltages
      from a state block, grounds reading as 0;
    * ``eq_rows``/``eq_valid`` — scatter ``(d, k_eq, m)`` f/q
      contributions onto global KCL rows, grounds dropped;
    * ``jac_rows``/``jac_cols``/``jac_valid`` — the COO coordinates of
      the group's Jacobian block in canonical (device, eq, var) order,
      matching :meth:`MNASystem.jacobian_pattern`.
    """

    __slots__ = (
        "devices",
        "cls",
        "batched",
        "entries",
        "var_idx",
        "var_safe",
        "var_mask",
        "eq_rows",
        "eq_valid",
        "jac_rows",
        "jac_cols",
        "jac_valid",
        "jac_nnz",
    )

    def __init__(self, entries, batched: bool):
        self.entries = entries
        self.devices = [dev for dev, _, _ in entries]
        self.cls = type(self.devices[0])
        self.batched = batched
        var_idx = np.stack([v for _, v, _ in entries])  # (d, k_in)
        eq_idx = np.stack([e for _, _, e in entries])  # (d, k_eq)
        self.var_idx = var_idx
        self.var_safe = np.where(var_idx >= 0, var_idx, 0)
        self.var_mask = (var_idx >= 0)[..., None]
        eq_flat = eq_idx.reshape(-1)
        self.eq_valid = eq_flat >= 0
        self.eq_rows = eq_flat[self.eq_valid]
        valid = (eq_idx[:, :, None] >= 0) & (var_idx[:, None, :] >= 0)
        rows = np.broadcast_to(eq_idx[:, :, None], valid.shape)
        cols = np.broadcast_to(var_idx[:, None, :], valid.shape)
        self.jac_valid = valid.reshape(-1)
        self.jac_rows = rows.reshape(-1)[self.jac_valid]
        self.jac_cols = cols.reshape(-1)[self.jac_valid]
        self.jac_nnz = int(self.jac_rows.size)

    def eval(self, x2d: np.ndarray):
        """(f, q, df, dq) with a leading device axis of length ``d``."""
        if self.batched:
            V = np.where(self.var_mask, x2d[self.var_safe], 0.0)
            return self.cls.nl_eval_group(self.devices, V)
        # solo device: per-device reference evaluation, d == 1
        dev, var_idx, _ = self.entries[0]
        V = MNASystem._local_voltages(x2d, var_idx)
        f, q, df, dq = dev.nl_eval(V)
        return f[None], q[None], df[None], dq[None]


class MNASystem:
    """Evaluated form of a compiled circuit.

    Attributes
    ----------
    n:
        Total unknown count (node voltages + branch currents).
    node_names:
        Names of the voltage unknowns; unknown ``i`` for
        ``i < len(node_names)`` is the voltage of ``node_names[i]``.
    branch_owner:
        Device name owning each branch-current unknown.
    vectorize:
        True when the batched stamping path is active (see module
        docstring); flip via the ``vectorize=`` compile argument or
        ``REPRO_STAMP_MODE``.
    """

    def __init__(
        self,
        title: str,
        devices: Sequence[Device],
        node_names: Sequence[str],
        branch_owner: Sequence[str],
        vectorize=None,
    ):
        self.title = title
        self.devices = list(devices)
        self.node_names = list(node_names)
        self.branch_owner = list(branch_owner)
        self.vectorize = resolve_stamp_mode(vectorize) == "vectorized"
        self.n = len(node_names) + len(branch_owner)
        self._node_index = {name: i for i, name in enumerate(node_names)}
        # first-occurrence wins, matching the historical linear scan for
        # devices owning several branch currents
        self._branch_index = {}
        for i, owner in enumerate(self.branch_owner):
            self._branch_index.setdefault(owner, len(self.node_names) + i)
        #: pre-flight ValidationReport attached by Circuit.compile (or None)
        self.validation = None

        self._build_linear()
        self._build_nonlinear()
        self._build_sources()
        self._build_noise()

    # --- pickling (process-backend sweeps) -----------------------------
    def __getstate__(self):
        # noise PSD closures and scatter structures are rebuilt from the
        # device list on unpickle; only constructor inputs travel
        return {
            "title": self.title,
            "devices": self.devices,
            "node_names": self.node_names,
            "branch_owner": self.branch_owner,
            "vectorize": self.vectorize,
            "validation": self.validation,
        }

    def __setstate__(self, state):
        self.__init__(
            state["title"],
            state["devices"],
            state["node_names"],
            state["branch_owner"],
            vectorize=state["vectorize"],
        )
        self.validation = state.get("validation")

    # ------------------------------------------------------------------
    def refresh_stamps(self, linear: bool = True, sources: bool = False) -> None:
        """Rebuild cached stamp structures after device parameters change.

        The sensitivity/exploration layer mutates device parameters in
        place (``Device.set_param``); nonlinear evaluation reads the
        attributes live, but the linear ``G_lin``/``C_lin`` matrices and
        the excitation row lists are assembled once at compile time and
        must be refreshed here.  ``sources=True`` additionally re-scans
        ``b_stamps`` (only needed when waveform *objects* were replaced
        — in-place waveform attribute mutation is picked up live).
        """
        if linear:
            self._build_linear()
        if sources:
            self._build_sources()

    # ------------------------------------------------------------------
    def node(self, name: str) -> int:
        """Global unknown index of a node voltage."""
        return self._node_index[name]

    def branch(self, device_name: str) -> int:
        """Global unknown index of a device's (first) branch current."""
        idx = self._branch_index.get(device_name)
        if idx is None:
            available = sorted(set(self.branch_owner))
            raise KeyError(
                f"device {device_name!r} has no branch current; devices with "
                f"branch currents: {available or 'none'}"
            )
        return idx

    # ------------------------------------------------------------------
    def _build_linear(self) -> None:
        g_rows, g_cols, g_vals = [], [], []
        c_rows, c_cols, c_vals = [], [], []
        for dev in self.devices:
            for i, j, v in dev.g_stamps():
                if i >= 0 and j >= 0:
                    g_rows.append(i), g_cols.append(j), g_vals.append(v)
            for i, j, v in dev.c_stamps():
                if i >= 0 and j >= 0:
                    c_rows.append(i), c_cols.append(j), c_vals.append(v)
        n = self.n
        self.G_lin = sp.csr_matrix(
            (np.array(g_vals, dtype=float), (g_rows, g_cols)), shape=(n, n)
        )
        self.C_lin = sp.csr_matrix(
            (np.array(c_vals, dtype=float), (c_rows, c_cols)), shape=(n, n)
        )
        # COO copies kept for batch-Jacobian assembly
        gc = self.G_lin.tocoo()
        cc = self.C_lin.tocoo()
        self._g_lin_coo = (gc.row.copy(), gc.col.copy(), gc.data.copy())
        self._c_lin_coo = (cc.row.copy(), cc.col.copy(), cc.data.copy())

    def _build_nonlinear(self) -> None:
        entries: List[Tuple[Device, np.ndarray, np.ndarray]] = []
        for dev in self.devices:
            if dev.nonlinear:
                var_idx, eq_idx = dev.nl_ports()
                entries.append((dev, np.asarray(var_idx), np.asarray(eq_idx)))
        # canonical ordering shared by BOTH stamping paths: batchable
        # families grouped by first occurrence of their group key (netlist
        # order within a family); unbatchable devices are solo groups in
        # place.  Scalar and vectorized stamping therefore visit devices
        # in the same sequence and produce bit-identical sums and
        # identically-ordered Jacobian patterns.
        grouped: dict = {}
        order: List[object] = []
        solo_keys = set()
        for pos, entry in enumerate(entries):
            key = entry[0].nl_group_key()
            if key is None:
                key = ("__solo__", pos)
                solo_keys.add(key)
            if key not in grouped:
                grouped[key] = []
                order.append(key)
            grouped[key].append(entry)
        self._nl: List[Tuple[Device, np.ndarray, np.ndarray]] = [
            e for key in order for e in grouped[key]
        ]
        self.has_nonlinear = bool(self._nl)
        self._nl_groups: List[_NLGroup] = [
            _NLGroup(grouped[key], batched=key not in solo_keys) for key in order
        ]

    def _build_sources(self) -> None:
        rows, waves, signs = [], [], []
        for dev in self.devices:
            for row, wave, sign in dev.b_stamps():
                if row >= 0:
                    rows.append(row), waves.append(wave), signs.append(sign)
        self._b_rows = np.array(rows, dtype=int)
        self._b_waves = waves
        self._b_signs = np.array(signs, dtype=float)

    def _build_noise(self) -> None:
        self.noise_sources: List[NoiseSource] = []
        for dev in self.devices:
            self.noise_sources.extend(dev.noise_sources())

    # ------------------------------------------------------------------
    @staticmethod
    def _local_voltages(x: np.ndarray, var_idx: np.ndarray) -> np.ndarray:
        """Gather device-local variables; ground (-1) reads as 0."""
        V = np.zeros((len(var_idx), x.shape[1]))
        for k, idx in enumerate(var_idx):
            if idx >= 0:
                V[k] = x[idx]
        return V

    def _eval_nl(self, x2d: np.ndarray):
        """Yield (dev, var_idx, eq_idx, f, q, df, dq) over nonlinear devices.

        The scalar reference path: one ``nl_eval`` call per device, in
        the canonical ``self._nl`` order.
        """
        for dev, var_idx, eq_idx in self._nl:
            V = self._local_voltages(x2d, var_idx)
            f, q, df, dq = dev.nl_eval(V)
            yield dev, var_idx, eq_idx, f, q, df, dq

    def _as2d(self, x: np.ndarray) -> Tuple[np.ndarray, bool]:
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            return x[:, None], True
        return x, False

    # --- DAE terms -------------------------------------------------------
    def _add_nl_term(self, out: np.ndarray, x2d: np.ndarray, which: str) -> None:
        """Accumulate nonlinear f or q contributions onto ``out`` in place."""
        if not self.has_nonlinear:
            return
        if self.vectorize:
            for grp in self._nl_groups:
                fv, qv, _, _ = grp.eval(x2d)
                vals = fv if which == "f" else qv
                # np.add.at is unbuffered and applies additions in index
                # order — the same (device, port) sequence as the scalar
                # loop, so duplicate-row sums are bit-identical
                flat = vals.reshape(-1, vals.shape[-1])
                np.add.at(out, grp.eq_rows, flat[grp.eq_valid])
            return
        for _, _, eq_idx, fv, qv, _, _ in self._eval_nl(x2d):
            vals = fv if which == "f" else qv
            for k, row in enumerate(eq_idx):
                if row >= 0:
                    out[row] += vals[k]

    def f(self, x: np.ndarray) -> np.ndarray:
        """Resistive term f(x); accepts (n,) or (n, m)."""
        x2d, squeeze = self._as2d(x)
        out = self.G_lin @ x2d
        self._add_nl_term(out, x2d, "f")
        return out[:, 0] if squeeze else out

    def q(self, x: np.ndarray) -> np.ndarray:
        """Charge/flux term q(x); accepts (n,) or (n, m)."""
        x2d, squeeze = self._as2d(x)
        out = self.C_lin @ x2d
        self._add_nl_term(out, x2d, "q")
        return out[:, 0] if squeeze else out

    def b(self, t) -> np.ndarray:
        """Excitation vector; scalar t -> (n,), array t (m,) -> (n, m)."""
        t_arr = np.asarray(t, dtype=float)
        scalar = t_arr.ndim == 0
        t2 = np.atleast_1d(t_arr)
        out = np.zeros((self.n, t2.shape[0]))
        for row, wave, sign in zip(self._b_rows, self._b_waves, self._b_signs):
            out[row] += sign * wave(t2)
        return out[:, 0] if scalar else out

    def b_dc(self) -> np.ndarray:
        """DC component of the excitation (used by DC analysis)."""
        out = np.zeros(self.n)
        for row, wave, sign in zip(self._b_rows, self._b_waves, self._b_signs):
            out[row] += sign * wave.dc
        return out

    def source_frequencies(self) -> Tuple[float, ...]:
        """Distinct nonzero fundamentals present in the excitations."""
        freqs: List[float] = []
        for wave in self._b_waves:
            for f0 in wave.frequencies:
                if f0 > 0 and not any(abs(f0 - g) <= 1e-9 * g for g in freqs):
                    freqs.append(f0)
        return tuple(sorted(freqs))

    # --- Jacobians ---------------------------------------------------------
    def _point_jacobian(self, x: np.ndarray, which: str) -> sp.csr_matrix:
        x2d, _ = self._as2d(x)
        base = self.G_lin if which == "G" else self.C_lin
        if not self.has_nonlinear:
            return base.copy()
        if self.vectorize:
            rows_parts, cols_parts, vals_parts = [], [], []
            for grp in self._nl_groups:
                _, _, df, dq = grp.eval(x2d)
                block = df if which == "G" else dq
                # C-order flatten of (d, k_eq, k_in) matches the scalar
                # (device, eq, var) loop nest entry-for-entry
                vals_parts.append(block[..., 0].reshape(-1)[grp.jac_valid])
                rows_parts.append(grp.jac_rows)
                cols_parts.append(grp.jac_cols)
            rows = np.concatenate(rows_parts)
            cols = np.concatenate(cols_parts)
            vals = np.concatenate(vals_parts)
        else:
            lrows: List[int] = []
            lcols: List[int] = []
            lvals: List[float] = []
            for _, var_idx, eq_idx, _, _, df, dq in self._eval_nl(x2d):
                block = df if which == "G" else dq
                for a, row in enumerate(eq_idx):
                    if row < 0:
                        continue
                    for bb, col in enumerate(var_idx):
                        if col < 0:
                            continue
                        lrows.append(row), lcols.append(col)
                        lvals.append(block[a, bb, 0])
            rows, cols = lrows, lcols
            vals = np.array(lvals, dtype=float)
        if not len(rows):
            return base.copy()
        extra = sp.csr_matrix((vals, (rows, cols)), shape=(self.n, self.n))
        return (base + extra).tocsr()

    def G(self, x: np.ndarray) -> sp.csr_matrix:
        """df/dx at a single operating point."""
        return self._point_jacobian(x, "G")

    def C(self, x: np.ndarray) -> sp.csr_matrix:
        """dq/dx at a single operating point."""
        return self._point_jacobian(x, "C")

    # --- batch Jacobians (HB / MPDE) ----------------------------------------
    def jacobian_pattern(self) -> Tuple[np.ndarray, np.ndarray]:
        """(rows, cols) of the combined per-sample Jacobian pattern.

        The pattern is the union of the linear G/C stamps and all
        nonlinear device blocks.  :meth:`batch_jacobians` returns values
        aligned with this fixed pattern, so HB/MPDE can pre-build one
        sparsity structure and refill data on every Newton iteration.
        """
        rows: List[int] = []
        cols: List[int] = []
        for r, c, _ in zip(*self._g_lin_coo):
            rows.append(int(r)), cols.append(int(c))
        for r, c, _ in zip(*self._c_lin_coo):
            rows.append(int(r)), cols.append(int(c))
        for _, var_idx, eq_idx in self._nl:
            for row in eq_idx:
                if row < 0:
                    continue
                for col in var_idx:
                    if col < 0:
                        continue
                    rows.append(int(row)), cols.append(int(col))
        return np.array(rows, dtype=int), np.array(cols, dtype=int)

    def batch_jacobians(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-sample G and C entry values aligned with jacobian_pattern().

        ``X`` has shape ``(n, m)``; returns ``(g_vals, c_vals)`` each of
        shape ``(nnz, m)``.
        """
        m = X.shape[1]
        nnz_gl = len(self._g_lin_coo[0])
        nnz_cl = len(self._c_lin_coo[0])
        nnz_nl = sum(
            int(np.sum(eq_idx >= 0)) * int(np.sum(var_idx >= 0))
            for _, var_idx, eq_idx in self._nl
        )
        nnz = nnz_gl + nnz_cl + nnz_nl
        g_vals = np.zeros((nnz, m))
        c_vals = np.zeros((nnz, m))
        g_vals[:nnz_gl] = self._g_lin_coo[2][:, None]
        c_vals[nnz_gl : nnz_gl + nnz_cl] = self._c_lin_coo[2][:, None]
        pos = nnz_gl + nnz_cl
        if self.vectorize:
            for grp in self._nl_groups:
                _, _, df, dq = grp.eval(X)
                g_vals[pos : pos + grp.jac_nnz] = df.reshape(-1, m)[grp.jac_valid]
                c_vals[pos : pos + grp.jac_nnz] = dq.reshape(-1, m)[grp.jac_valid]
                pos += grp.jac_nnz
            return g_vals, c_vals
        for _, var_idx, eq_idx, _, _, df, dq in self._eval_nl(X):
            for a, row in enumerate(eq_idx):
                if row < 0:
                    continue
                for bb, col in enumerate(var_idx):
                    if col < 0:
                        continue
                    g_vals[pos] = df[a, bb]
                    c_vals[pos] = dq[a, bb]
                    pos += 1
        return g_vals, c_vals

    def batch_fq(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(f(X), q(X)) over sample columns; both shape (n, m)."""
        return self.f(X), self.q(X)

    # --- noise ---------------------------------------------------------------
    def noise_injection_vectors(self) -> List[Tuple[NoiseSource, np.ndarray]]:
        """(source, unit-injection column) pairs with ground rows dropped."""
        out = []
        for src in self.noise_sources:
            u = np.zeros(self.n)
            for row, sign in zip(src.rows, src.signs):
                if row >= 0:
                    u[row] += sign
            out.append((src, u))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"MNASystem({self.title!r}, n={self.n}, nodes={len(self.node_names)}, "
            f"branches={len(self.branch_owner)}, devices={len(self.devices)}, "
            f"stamp={'vectorized' if self.vectorize else 'scalar'})"
        )
