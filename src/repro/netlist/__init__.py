"""Circuit representation: devices, waveforms, netlists, and MNA."""

from repro.netlist.circuit import Circuit
from repro.netlist.components import (
    BJT,
    MOSFET,
    VCCS,
    VCVS,
    Capacitor,
    Diode,
    Device,
    ISource,
    Inductor,
    MutualInductance,
    NoiseSource,
    NonlinearCapacitor,
    NonlinearResistor,
    Resistor,
    SwitchConductance,
    VSource,
    thermal_voltage,
)
from repro.netlist.mna import MNASystem
from repro.netlist.parser import NetlistError, parse_netlist, parse_value
from repro.netlist.waveforms import DC, PWL, MultiTone, Pulse, Sine, SquareWave, Waveform, am_source

__all__ = [
    "Circuit",
    "MNASystem",
    "Device",
    "Resistor",
    "Capacitor",
    "Inductor",
    "MutualInductance",
    "VSource",
    "ISource",
    "VCCS",
    "VCVS",
    "Diode",
    "BJT",
    "MOSFET",
    "NonlinearResistor",
    "NonlinearCapacitor",
    "SwitchConductance",
    "NoiseSource",
    "thermal_voltage",
    "Waveform",
    "DC",
    "Sine",
    "MultiTone",
    "SquareWave",
    "Pulse",
    "PWL",
    "am_source",
    "parse_netlist",
    "parse_value",
    "NetlistError",
]
