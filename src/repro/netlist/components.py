"""Circuit device library.

Devices contribute stamps to the MNA differential-algebraic equation

    d q(x)/dt + f(x) = b(t)                                   (paper eq. 3)

where ``x`` collects node voltages (ground eliminated) plus branch
currents for inductors and voltage-defined elements.

Linear devices contribute constant stamps to the conductance matrix ``G``
(the linear part of ``f``), the capacitance/flux matrix ``C`` (the linear
part of ``q``), and to the excitation vector ``b(t)``.  Nonlinear devices
expose a *vectorized* evaluation over many time samples at once — the HB
and MPDE engines evaluate the whole periodic grid in one call, which is
what keeps the pure-Python implementation usable on full circuits.

Sign conventions
----------------
* KCL residual at a node: sum of currents *leaving* the node.
* ``VSource(npos, nneg)``: branch current flows npos -> through source ->
  nneg inside the element; positive branch current leaves ``npos``.
* ``ISource(npos, nneg)``: the source pushes its current from ``npos``
  through itself into ``nneg`` (matching SPICE).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.netlist.waveforms import DC, Waveform

__all__ = [
    "BOLTZMANN",
    "ELEMENTARY_CHARGE",
    "thermal_voltage",
    "Device",
    "NoiseSource",
    "Resistor",
    "Capacitor",
    "Inductor",
    "MutualInductance",
    "VSource",
    "ISource",
    "VCCS",
    "VCVS",
    "Diode",
    "BJT",
    "MOSFET",
    "NonlinearResistor",
    "NonlinearCapacitor",
    "SwitchConductance",
]

BOLTZMANN = 1.380649e-23
ELEMENTARY_CHARGE = 1.602176634e-19


def thermal_voltage(temp_kelvin: float = 300.0) -> float:
    """kT/q at the given temperature."""
    return BOLTZMANN * temp_kelvin / ELEMENTARY_CHARGE


def limexp(u, umax: float = 80.0):
    """Exponential with linear extension beyond ``umax``.

    Standard SPICE-style guard: keeps Newton iterates finite for the huge
    junction overdrives that occur before convergence.  Returns the value
    and its derivative.
    """
    u = np.asarray(u, dtype=float)
    clipped = np.minimum(u, umax)
    e = np.exp(clipped)
    over = u > umax
    val = np.where(over, e * (1.0 + (u - umax)), e)
    dval = e  # derivative of the linear extension is exp(umax) = e there
    return val, dval


@dataclasses.dataclass
class NoiseSource:
    """A stationary or bias-modulated white current-noise generator.

    Attributes
    ----------
    name:
        Human-readable identifier (``"R1.thermal"``).
    rows:
        Global equation (KCL) indices the unit current couples into; -1
        entries (ground) are dropped at assembly time.
    signs:
        +-1 per row.
    psd:
        One-sided current PSD in A^2/Hz.  Either a constant or a callable
        ``psd(X)`` over full state columns ``X`` of shape ``(n, m)``
        returning shape ``(m,)`` (shot noise is bias dependent, hence
        cyclostationary in a periodically driven circuit).
    """

    name: str
    rows: np.ndarray
    signs: np.ndarray
    psd: object

    def psd_at(self, X: np.ndarray) -> np.ndarray:
        m = X.shape[1] if X.ndim == 2 else 1
        if callable(self.psd):
            out = np.asarray(self.psd(X), dtype=float)
            return np.broadcast_to(out, (m,)).copy()
        return np.full(m, float(self.psd))


class Device:
    """Base class for every circuit element."""

    #: number of internal branch-current unknowns this device adds
    n_branches = 0
    #: True when the device contributes nonlinear f/q terms
    nonlinear = False

    def __init__(self, name: str, nodes: Sequence[str]):
        self.name = name
        self.nodes = [str(n) for n in nodes]
        self.node_idx: List[int] = []
        self.branch_idx: List[int] = []

    def bind(self, node_idx: Sequence[int], branch_idx: Sequence[int]) -> None:
        """Receive global indices (ground mapped to -1)."""
        self.node_idx = list(node_idx)
        self.branch_idx = list(branch_idx)

    # --- linear stamps -------------------------------------------------
    def g_stamps(self) -> List[Tuple[int, int, float]]:
        """Constant entries of df/dx (conductance-like)."""
        return []

    def c_stamps(self) -> List[Tuple[int, int, float]]:
        """Constant entries of dq/dx (capacitance/flux-like)."""
        return []

    def b_stamps(self) -> List[Tuple[int, Waveform, float]]:
        """(row, waveform, sign) excitation contributions."""
        return []

    # --- nonlinear interface -------------------------------------------
    def nl_ports(self) -> Tuple[np.ndarray, np.ndarray]:
        """(variable indices read, equation indices written)."""
        raise NotImplementedError

    def nl_eval(self, V: np.ndarray):
        """Evaluate nonlinear contributions at local voltages ``V``.

        ``V`` has shape ``(k_in, m)``; returns ``(f, q, df, dq)`` with
        ``f, q`` of shape ``(k_eq, m)`` and ``df, dq`` of shape
        ``(k_eq, k_in, m)``.
        """
        raise NotImplementedError

    def nl_group_key(self):
        """Batch-evaluation family, or None to evaluate per device.

        Devices returning the same key are stacked into one numpy batch
        and evaluated through the class's :meth:`nl_eval_group` by the
        vectorized stamping path in :class:`~repro.netlist.mna.MNASystem`
        — one call per device *type* instead of one Python-level call
        per device.  Classes whose evaluation involves per-device user
        callables (:class:`NonlinearResistor`, :class:`NonlinearCapacitor`)
        keep the default ``None`` and stay on the per-device path.
        """
        return None

    @classmethod
    def nl_eval_group(cls, devices: Sequence["Device"], V: np.ndarray):
        """Batched :meth:`nl_eval` over ``d`` same-class devices.

        ``V`` has shape ``(d, k_in, m)``; returns ``(f, q, df, dq)``
        with ``f, q`` of shape ``(d, k_eq, m)`` and ``df, dq`` of shape
        ``(d, k_eq, k_in, m)``.  Implementations must mirror
        :meth:`nl_eval` operation-for-operation (same expressions, same
        association order) so the batched path is bit-identical to the
        per-device reference — the property tests in
        ``tests/test_properties.py`` pin this down.
        """
        raise NotImplementedError

    # --- noise -----------------------------------------------------------
    def noise_sources(self) -> List[NoiseSource]:
        return []

    # --- parameter-sensitivity protocol --------------------------------
    #: scalar parameters with first-class derivative support; anything
    #: else that happens to be a float attribute still works through the
    #: finite-difference fallbacks below
    sens_params: Tuple[str, ...] = ()

    #: relative step for the central finite-difference fallbacks
    _FD_REL_STEP = 1e-6

    def param_names(self) -> List[str]:
        """Differentiable scalar parameter names for this device."""
        return list(self.sens_params)

    def get_param(self, name: str) -> float:
        val = getattr(self, name)
        if isinstance(val, bool) or not isinstance(val, (int, float)):
            raise TypeError(f"{self.name}.{name} is not a scalar parameter")
        return float(val)

    def set_param(self, name: str, value: float) -> None:
        """Assign a scalar parameter, recomputing any derived fields.

        Subclasses with derived attributes (e.g. the diode's ``vt``)
        override this so the finite-difference fallbacks stay honest.
        """
        self.get_param(name)  # validates existence and scalarity
        setattr(self, name, float(value))

    def _fd_step(self, name: str) -> float:
        return self._FD_REL_STEP * max(1.0, abs(self.get_param(name)))

    def g_stamp_derivs(self, name: str) -> List[Tuple[int, int, float]]:
        """Entries of d(G stamps)/d(param) for linear contributions."""
        return self._fd_stamp_derivs(name, "g_stamps")

    def c_stamp_derivs(self, name: str) -> List[Tuple[int, int, float]]:
        """Entries of d(C stamps)/d(param) for linear contributions."""
        return self._fd_stamp_derivs(name, "c_stamps")

    def b_stamp_derivs(self, name: str) -> List[Tuple[int, Waveform, float]]:
        """(row, waveform, sign) triples where the waveform *is* the
        derivative signal d b_row(t)/d(param).

        Only independent sources touch ``b``; they override this.
        """
        return []

    def _fd_stamp_derivs(self, name: str, which: str) -> List[Tuple[int, int, float]]:
        p0 = self.get_param(name)
        h = self._fd_step(name)
        acc: dict = {}

        def collect(factor: float) -> None:
            for i, j, v in getattr(self, which)():
                acc[(i, j)] = acc.get((i, j), 0.0) + factor * v

        try:
            self.set_param(name, p0 + h)
            collect(1.0)
            self.set_param(name, p0 - h)
            collect(-1.0)
        finally:
            self.set_param(name, p0)
        return [(i, j, dv / (2.0 * h)) for (i, j), dv in acc.items() if dv != 0.0]

    def nl_dfdp(self, V: np.ndarray, name: str) -> Tuple[np.ndarray, np.ndarray]:
        """Explicit parameter derivatives ``(∂f/∂p, ∂q/∂p)`` at fixed
        port voltages ``V``; each of shape ``(k_eq, m)``.

        Central finite differences through :meth:`nl_eval` by default;
        the library devices override with the exact expressions.
        """
        p0 = self.get_param(name)
        h = self._fd_step(name)
        try:
            self.set_param(name, p0 + h)
            f_hi, q_hi, _, _ = self.nl_eval(V)
            self.set_param(name, p0 - h)
            f_lo, q_lo, _, _ = self.nl_eval(V)
        finally:
            self.set_param(name, p0)
        return (f_hi - f_lo) / (2.0 * h), (q_hi - q_lo) / (2.0 * h)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}({self.name}, nodes={self.nodes})"


def _param_column(devices: Sequence["Device"], attr: str) -> np.ndarray:
    """(d, 1) float column of one scalar parameter across a batch."""
    return np.array([getattr(dev, attr) for dev in devices], dtype=float)[:, None]


def _two_node_stamps(i: int, j: int, val: float) -> List[Tuple[int, int, float]]:
    """Standard 2x2 conductance-style stamp between global indices i, j."""
    return [(i, i, val), (i, j, -val), (j, i, -val), (j, j, val)]


def _waveform_param_names(wave: Waveform) -> List[str]:
    """Differentiable scalar parameters of an excitation waveform."""
    from repro.netlist.waveforms import Sine, SquareWave

    if isinstance(wave, DC):
        return ["value"]
    if isinstance(wave, SquareWave):
        # amplitude multiplies a fixed tanh shape, offset shifts it
        return ["amplitude", "offset"]
    if isinstance(wave, Sine):
        return ["amplitude", "offset", "phase"]
    return []


def _waveform_param_deriv(wave: Waveform, name: str) -> Waveform:
    """The waveform d wave(t)/d(param) — itself a time signal."""
    from repro.netlist.waveforms import Sine, SquareWave

    if isinstance(wave, DC) and name == "value":
        return DC(1.0)
    if name == "offset" and isinstance(wave, (Sine, SquareWave)):
        return DC(1.0)
    if isinstance(wave, Sine):
        if name == "amplitude":
            return Sine(1.0, wave.freq, wave.phase)
        if name == "phase":
            # d/dphase [A sin(wt + phi)] = A cos(wt + phi)
            return Sine(wave.amplitude, wave.freq, wave.phase + np.pi / 2.0)
    if isinstance(wave, SquareWave) and name == "amplitude":
        return SquareWave(1.0, wave.freq, wave.phase, 0.0, wave.sharpness)
    raise KeyError(
        f"no analytic derivative for parameter {name!r} of {type(wave).__name__}"
    )


class Resistor(Device):
    """Linear resistor with thermal noise 4kT/R."""

    def __init__(self, name: str, n1: str, n2: str, resistance: float, temp: float = 300.0):
        super().__init__(name, [n1, n2])
        if resistance <= 0:
            raise ValueError(f"{name}: resistance must be positive, got {resistance}")
        self.resistance = float(resistance)
        self.temp = float(temp)

    sens_params = ("resistance",)

    def g_stamps(self):
        i, j = self.node_idx
        return _two_node_stamps(i, j, 1.0 / self.resistance)

    def g_stamp_derivs(self, name):
        if name == "resistance":
            i, j = self.node_idx
            return _two_node_stamps(i, j, -1.0 / self.resistance**2)
        return super().g_stamp_derivs(name)

    def noise_sources(self):
        i, j = self.node_idx
        psd = 4.0 * BOLTZMANN * self.temp / self.resistance
        return [
            NoiseSource(
                f"{self.name}.thermal",
                rows=np.array([i, j]),
                signs=np.array([1.0, -1.0]),
                psd=psd,
            )
        ]


class Capacitor(Device):
    """Linear capacitor."""

    def __init__(self, name: str, n1: str, n2: str, capacitance: float):
        super().__init__(name, [n1, n2])
        if capacitance <= 0:
            raise ValueError(f"{name}: capacitance must be positive, got {capacitance}")
        self.capacitance = float(capacitance)

    sens_params = ("capacitance",)

    def c_stamps(self):
        i, j = self.node_idx
        return _two_node_stamps(i, j, self.capacitance)

    def c_stamp_derivs(self, name):
        if name == "capacitance":
            i, j = self.node_idx
            return _two_node_stamps(i, j, 1.0)
        return super().c_stamp_derivs(name)


class Inductor(Device):
    """Linear inductor; adds one branch-current unknown.

    Branch equation: ``L di/dt - (v1 - v2) = 0``.
    """

    n_branches = 1

    def __init__(self, name: str, n1: str, n2: str, inductance: float):
        super().__init__(name, [n1, n2])
        if inductance <= 0:
            raise ValueError(f"{name}: inductance must be positive, got {inductance}")
        self.inductance = float(inductance)

    def g_stamps(self):
        i, j = self.node_idx
        (br,) = self.branch_idx
        return [(i, br, 1.0), (j, br, -1.0), (br, i, -1.0), (br, j, 1.0)]

    sens_params = ("inductance",)

    def c_stamps(self):
        (br,) = self.branch_idx
        return [(br, br, self.inductance)]

    def c_stamp_derivs(self, name):
        if name == "inductance":
            (br,) = self.branch_idx
            return [(br, br, 1.0)]
        return super().c_stamp_derivs(name)


class MutualInductance(Device):
    """Mutual coupling ``M = k sqrt(L1 L2)`` between two bound inductors.

    Construct *after* both inductors; the circuit resolves branch indices
    at compile time via the stored references.
    """

    def __init__(self, name: str, ind1: Inductor, ind2: Inductor, coupling: float):
        super().__init__(name, [])
        if not -1.0 < coupling < 1.0:
            raise ValueError(f"{name}: |k| must be < 1, got {coupling}")
        self.ind1 = ind1
        self.ind2 = ind2
        self.coupling = float(coupling)

    @property
    def mutual(self) -> float:
        return self.coupling * math.sqrt(self.ind1.inductance * self.ind2.inductance)

    sens_params = ("coupling",)

    def c_stamps(self):
        (b1,) = self.ind1.branch_idx
        (b2,) = self.ind2.branch_idx
        m = self.mutual
        return [(b1, b2, m), (b2, b1, m)]

    def c_stamp_derivs(self, name):
        if name == "coupling":
            (b1,) = self.ind1.branch_idx
            (b2,) = self.ind2.branch_idx
            dm = math.sqrt(self.ind1.inductance * self.ind2.inductance)
            return [(b1, b2, dm), (b2, b1, dm)]
        return super().c_stamp_derivs(name)


class VSource(Device):
    """Independent voltage source; adds one branch current."""

    n_branches = 1

    def __init__(self, name: str, npos: str, nneg: str, waveform=0.0):
        super().__init__(name, [npos, nneg])
        if not isinstance(waveform, Waveform):
            waveform = DC(float(waveform))
        self.waveform = waveform

    def g_stamps(self):
        i, j = self.node_idx
        (br,) = self.branch_idx
        return [(i, br, 1.0), (j, br, -1.0), (br, i, 1.0), (br, j, -1.0)]

    def b_stamps(self):
        (br,) = self.branch_idx
        return [(br, self.waveform, 1.0)]

    def param_names(self):
        return _waveform_param_names(self.waveform)

    def get_param(self, name):
        if hasattr(self.waveform, name):
            return float(getattr(self.waveform, name))
        return super().get_param(name)

    def set_param(self, name, value):
        if hasattr(self.waveform, name):
            setattr(self.waveform, name, float(value))
            return
        super().set_param(name, value)

    def b_stamp_derivs(self, name):
        (br,) = self.branch_idx
        return [(br, _waveform_param_deriv(self.waveform, name), 1.0)]


class ISource(Device):
    """Independent current source (current npos -> nneg through source)."""

    def __init__(self, name: str, npos: str, nneg: str, waveform=0.0):
        super().__init__(name, [npos, nneg])
        if not isinstance(waveform, Waveform):
            waveform = DC(float(waveform))
        self.waveform = waveform

    def b_stamps(self):
        i, j = self.node_idx
        return [(i, self.waveform, -1.0), (j, self.waveform, 1.0)]

    def param_names(self):
        return _waveform_param_names(self.waveform)

    def get_param(self, name):
        if hasattr(self.waveform, name):
            return float(getattr(self.waveform, name))
        return super().get_param(name)

    def set_param(self, name, value):
        if hasattr(self.waveform, name):
            setattr(self.waveform, name, float(value))
            return
        super().set_param(name, value)

    def b_stamp_derivs(self, name):
        i, j = self.node_idx
        d = _waveform_param_deriv(self.waveform, name)
        return [(i, d, -1.0), (j, d, 1.0)]


class VCCS(Device):
    """Voltage-controlled current source ``i = gm (vcp - vcn)`` out of op."""

    def __init__(self, name: str, op: str, on: str, cp: str, cn: str, gm: float):
        super().__init__(name, [op, on, cp, cn])
        self.gm = float(gm)

    sens_params = ("gm",)

    def g_stamps(self):
        op, on, cp, cn = self.node_idx
        gm = self.gm
        return [(op, cp, gm), (op, cn, -gm), (on, cp, -gm), (on, cn, gm)]

    def g_stamp_derivs(self, name):
        if name == "gm":
            op, on, cp, cn = self.node_idx
            return [(op, cp, 1.0), (op, cn, -1.0), (on, cp, -1.0), (on, cn, 1.0)]
        return super().g_stamp_derivs(name)


class VCVS(Device):
    """Voltage-controlled voltage source ``v(op,on) = gain (vcp - vcn)``."""

    n_branches = 1

    def __init__(self, name: str, op: str, on: str, cp: str, cn: str, gain: float):
        super().__init__(name, [op, on, cp, cn])
        self.gain = float(gain)

    def g_stamps(self):
        op, on, cp, cn = self.node_idx
        (br,) = self.branch_idx
        a = self.gain
        return [
            (op, br, 1.0),
            (on, br, -1.0),
            (br, op, 1.0),
            (br, on, -1.0),
            (br, cp, -a),
            (br, cn, a),
        ]

    sens_params = ("gain",)

    def g_stamp_derivs(self, name):
        if name == "gain":
            op, on, cp, cn = self.node_idx
            (br,) = self.branch_idx
            return [(br, cp, -1.0), (br, cn, 1.0)]
        return super().g_stamp_derivs(name)


class Diode(Device):
    """Junction diode: ``i = Is (exp(v/(n Vt)) - 1) + gmin v``.

    Charge model: diffusion charge ``tt * i_junction`` plus a linear
    junction capacitance ``cj0``.  Shot noise ``2 q |i|``.
    """

    nonlinear = True

    def __init__(
        self,
        name: str,
        anode: str,
        cathode: str,
        isat: float = 1e-14,
        ideality: float = 1.0,
        tt: float = 0.0,
        cj0: float = 0.0,
        gmin: float = 1e-12,
        temp: float = 300.0,
    ):
        super().__init__(name, [anode, cathode])
        self.isat = float(isat)
        self.ideality = float(ideality)
        self.tt = float(tt)
        self.cj0 = float(cj0)
        self.gmin = float(gmin)
        self.temp = float(temp)
        self.vt = thermal_voltage(temp) * self.ideality

    sens_params = ("isat", "tt", "cj0", "gmin", "ideality", "temp")

    def set_param(self, name, value):
        super().set_param(name, value)
        if name in ("ideality", "temp"):
            self.vt = thermal_voltage(self.temp) * self.ideality

    def nl_dfdp(self, V, name):
        vd = V[0] - V[1]
        if name == "isat":
            e, _ = limexp(vd / self.vt)
            di = e - 1.0
            dqd = self.tt * di
        elif name == "gmin":
            di = vd
            dqd = self.tt * vd
        elif name == "tt":
            di = np.zeros_like(vd)
            dqd, _ = self.current(vd)
        elif name == "cj0":
            di = np.zeros_like(vd)
            dqd = vd
        else:
            return super().nl_dfdp(V, name)
        return np.stack([di, -di]), np.stack([dqd, -dqd])

    def nl_ports(self):
        idx = np.array(self.node_idx)
        return idx, idx

    def current(self, vd):
        """Junction current and small-signal conductance at voltage vd."""
        e, de = limexp(np.asarray(vd) / self.vt)
        i = self.isat * (e - 1.0) + self.gmin * vd
        g = self.isat * de / self.vt + self.gmin
        return i, g

    def nl_eval(self, V):
        vd = V[0] - V[1]
        i, g = self.current(vd)
        f = np.stack([i, -i])
        df = np.empty((2, 2, V.shape[1]))
        df[0, 0], df[0, 1] = g, -g
        df[1, 0], df[1, 1] = -g, g
        qd = self.tt * i + self.cj0 * vd
        cq = self.tt * g + self.cj0
        q = np.stack([qd, -qd])
        dq = np.empty((2, 2, V.shape[1]))
        dq[0, 0], dq[0, 1] = cq, -cq
        dq[1, 0], dq[1, 1] = -cq, cq
        return f, q, df, dq

    def nl_group_key(self):
        return "diode"

    @classmethod
    def nl_eval_group(cls, devices, V):
        # mirrors nl_eval/current with a leading device axis; parameter
        # columns broadcast against the (d, m) sample planes
        isat = _param_column(devices, "isat")
        vt = _param_column(devices, "vt")
        gmin = _param_column(devices, "gmin")
        tt = _param_column(devices, "tt")
        cj0 = _param_column(devices, "cj0")
        vd = V[:, 0] - V[:, 1]
        e, de = limexp(vd / vt)
        i = isat * (e - 1.0) + gmin * vd
        g = isat * de / vt + gmin
        f = np.stack([i, -i], axis=1)
        d, m = vd.shape
        df = np.empty((d, 2, 2, m))
        df[:, 0, 0], df[:, 0, 1] = g, -g
        df[:, 1, 0], df[:, 1, 1] = -g, g
        qd = tt * i + cj0 * vd
        cq = tt * g + cj0
        q = np.stack([qd, -qd], axis=1)
        dq = np.empty((d, 2, 2, m))
        dq[:, 0, 0], dq[:, 0, 1] = cq, -cq
        dq[:, 1, 0], dq[:, 1, 1] = -cq, cq
        return f, q, df, dq

    def noise_sources(self):
        i, j = self.node_idx
        vrow_a, vrow_c = self.node_idx

        def shot_psd(X):
            va = X[vrow_a] if vrow_a >= 0 else 0.0
            vc = X[vrow_c] if vrow_c >= 0 else 0.0
            cur, _ = self.current(np.asarray(va - vc))
            return 2.0 * ELEMENTARY_CHARGE * np.abs(cur)

        return [
            NoiseSource(
                f"{self.name}.shot",
                rows=np.array([i, j]),
                signs=np.array([1.0, -1.0]),
                psd=shot_psd,
            )
        ]


class BJT(Device):
    """Ebers-Moll bipolar transistor (NPN by default).

    Transport formulation:

        IF = Is (exp(vbe/Vt) - 1),  IR = Is (exp(vbc/Vt) - 1)
        IC = IF - IR (1 + 1/betaR),  IB = IF/betaF + IR/betaR

    Charges: diffusion ``tf IF`` on B-E plus linear junction caps.  PNP is
    modeled by flipping terminal polarities.
    """

    nonlinear = True

    def __init__(
        self,
        name: str,
        collector: str,
        base: str,
        emitter: str,
        isat: float = 1e-16,
        beta_f: float = 100.0,
        beta_r: float = 1.0,
        tf: float = 0.0,
        cje: float = 0.0,
        cjc: float = 0.0,
        polarity: int = 1,
        gmin: float = 1e-12,
        temp: float = 300.0,
    ):
        super().__init__(name, [collector, base, emitter])
        self.isat = float(isat)
        self.beta_f = float(beta_f)
        self.beta_r = float(beta_r)
        self.tf = float(tf)
        self.cje = float(cje)
        self.cjc = float(cjc)
        if polarity not in (1, -1):
            raise ValueError(f"{name}: polarity must be +1 (NPN) or -1 (PNP)")
        self.polarity = polarity
        self.gmin = float(gmin)
        self.temp = float(temp)
        self.vt = thermal_voltage(temp)

    sens_params = ("isat", "beta_f", "beta_r", "tf", "cje", "cjc", "gmin", "temp")

    def set_param(self, name, value):
        super().set_param(name, value)
        if name == "temp":
            self.vt = thermal_voltage(self.temp)

    def nl_dfdp(self, V, name):
        p = self.polarity
        vc, vb, ve = V
        vbe = p * (vb - ve)
        vbc = p * (vb - vc)
        z = np.zeros_like(vbe)
        dqbe, dqbc = z, z
        if name in ("isat", "gmin"):
            if name == "isat":
                ef, _ = limexp(vbe / self.vt)
                er, _ = limexp(vbc / self.vt)
                dif, dir_ = ef - 1.0, er - 1.0
            else:
                dif, dir_ = vbe, vbc
            dic = dif - dir_ * (1.0 + 1.0 / self.beta_r)
            dib = dif / self.beta_f + dir_ / self.beta_r
            dqbe = self.tf * dif
        elif name in ("beta_f", "beta_r", "tf"):
            i_f, i_r, _, _ = self._junction_currents(vbe, vbc)
            if name == "beta_f":
                dic, dib = z, -i_f / self.beta_f**2
            elif name == "beta_r":
                dic, dib = i_r / self.beta_r**2, -i_r / self.beta_r**2
            else:
                dic, dib = z, z
                dqbe = i_f
        elif name == "cje":
            dic, dib = z, z
            dqbe = vbe
        elif name == "cjc":
            dic, dib = z, z
            dqbc = vbc
        else:
            return super().nl_dfdp(V, name)
        die = -(dic + dib)
        f = p * np.stack([dic, dib, die])
        q = p * np.stack([-dqbc, dqbe + dqbc, -dqbe])
        return f, q

    def nl_ports(self):
        idx = np.array(self.node_idx)
        return idx, idx

    def _junction_currents(self, vbe, vbc):
        ef, def_ = limexp(vbe / self.vt)
        er, der = limexp(vbc / self.vt)
        i_f = self.isat * (ef - 1.0) + self.gmin * vbe
        i_r = self.isat * (er - 1.0) + self.gmin * vbc
        gf = self.isat * def_ / self.vt + self.gmin
        gr = self.isat * der / self.vt + self.gmin
        return i_f, i_r, gf, gr

    def nl_eval(self, V):
        p = self.polarity
        vc, vb, ve = V
        vbe = p * (vb - ve)
        vbc = p * (vb - vc)
        i_f, i_r, gf, gr = self._junction_currents(vbe, vbc)

        kr = 1.0 + 1.0 / self.beta_r
        ic = i_f - i_r * kr
        ib = i_f / self.beta_f + i_r / self.beta_r
        ie = -(ic + ib)

        m = V.shape[1]
        f = p * np.stack([ic, ib, ie])
        # partials w.r.t. (vbe, vbc)
        dic = np.stack([gf, -gr * kr])
        dib = np.stack([gf / self.beta_f, gr / self.beta_r])
        die = -(dic + dib)
        # chain rule to node voltages (vc, vb, ve); the two polarity
        # factors (current sign and junction-voltage sign) cancel.
        dvbe = np.array([0.0, 1.0, -1.0])
        dvbc = np.array([-1.0, 1.0, 0.0])
        df = np.empty((3, 3, m))
        for row, dterm in enumerate((dic, dib, die)):
            for col in range(3):
                df[row, col] = dterm[0] * dvbe[col] + dterm[1] * dvbc[col]

        # charges: qbe = tf*IF + cje*vbe on the B-E junction, qbc = cjc*vbc
        qbe = self.tf * i_f + self.cje * vbe
        qbc = self.cjc * vbc
        cbe = self.tf * gf + self.cje
        cbc = np.full(m, self.cjc)
        # charge leaves base into emitter/collector terminals
        q = p * np.stack([-qbc, qbe + qbc, -qbe])
        dq = np.empty((3, 3, m))
        # terminal charge partials via the same chain rule
        dq_c = np.stack([np.zeros(m), -cbc])  # d(-qbc)/d(vbe,vbc)
        dq_b = np.stack([cbe, cbc])
        dq_e = np.stack([-cbe, np.zeros(m)])
        for row, dterm in enumerate((dq_c, dq_b, dq_e)):
            for col in range(3):
                dq[row, col] = dterm[0] * dvbe[col] + dterm[1] * dvbc[col]
        return f, q, df, dq

    def nl_group_key(self):
        return "bjt"

    @classmethod
    def nl_eval_group(cls, devices, V):
        # mirrors nl_eval/_junction_currents with a leading device axis
        p = _param_column(devices, "polarity")
        isat = _param_column(devices, "isat")
        vt = _param_column(devices, "vt")
        gmin = _param_column(devices, "gmin")
        beta_f = _param_column(devices, "beta_f")
        beta_r = _param_column(devices, "beta_r")
        tf = _param_column(devices, "tf")
        cje = _param_column(devices, "cje")
        cjc = _param_column(devices, "cjc")

        vc, vb, ve = V[:, 0], V[:, 1], V[:, 2]
        vbe = p * (vb - ve)
        vbc = p * (vb - vc)
        ef, def_ = limexp(vbe / vt)
        er, der = limexp(vbc / vt)
        i_f = isat * (ef - 1.0) + gmin * vbe
        i_r = isat * (er - 1.0) + gmin * vbc
        gf = isat * def_ / vt + gmin
        gr = isat * der / vt + gmin

        kr = 1.0 + 1.0 / beta_r
        ic = i_f - i_r * kr
        ib = i_f / beta_f + i_r / beta_r
        ie = -(ic + ib)

        d, m = vbe.shape
        f = p[:, None] * np.stack([ic, ib, ie], axis=1)
        dic = np.stack([gf, -gr * kr], axis=1)
        dib = np.stack([gf / beta_f, gr / beta_r], axis=1)
        die = -(dic + dib)
        dvbe = np.array([0.0, 1.0, -1.0])
        dvbc = np.array([-1.0, 1.0, 0.0])
        df = np.empty((d, 3, 3, m))
        for row, dterm in enumerate((dic, dib, die)):
            for col in range(3):
                df[:, row, col] = dterm[:, 0] * dvbe[col] + dterm[:, 1] * dvbc[col]

        qbe = tf * i_f + cje * vbe
        qbc = cjc * vbc
        cbe = tf * gf + cje
        cbc = np.broadcast_to(cjc, (d, m))
        q = p[:, None] * np.stack([-qbc, qbe + qbc, -qbe], axis=1)
        dq = np.empty((d, 3, 3, m))
        zeros = np.zeros((d, m))
        dq_c = np.stack([zeros, -cbc], axis=1)
        dq_b = np.stack([np.broadcast_to(cbe, (d, m)), cbc], axis=1)
        dq_e = np.stack([np.broadcast_to(-cbe, (d, m)), zeros], axis=1)
        for row, dterm in enumerate((dq_c, dq_b, dq_e)):
            for col in range(3):
                dq[:, row, col] = dterm[:, 0] * dvbe[col] + dterm[:, 1] * dvbc[col]
        return f, q, df, dq

    def noise_sources(self):
        nc, nb, ne = self.node_idx
        p = self.polarity

        def _currents(X):
            vc = X[nc] if nc >= 0 else 0.0
            vb = X[nb] if nb >= 0 else 0.0
            ve = X[ne] if ne >= 0 else 0.0
            vbe = p * (np.asarray(vb) - ve)
            vbc = p * (np.asarray(vb) - vc)
            i_f, i_r, _, _ = self._junction_currents(vbe, vbc)
            ic = i_f - i_r * (1.0 + 1.0 / self.beta_r)
            ib = i_f / self.beta_f + i_r / self.beta_r
            return ic, ib

        def psd_ic(X):
            ic, _ = _currents(X)
            return 2.0 * ELEMENTARY_CHARGE * np.abs(ic)

        def psd_ib(X):
            _, ib = _currents(X)
            return 2.0 * ELEMENTARY_CHARGE * np.abs(ib)

        return [
            NoiseSource(f"{self.name}.ic_shot", np.array([nc, ne]), np.array([1.0, -1.0]), psd_ic),
            NoiseSource(f"{self.name}.ib_shot", np.array([nb, ne]), np.array([1.0, -1.0]), psd_ib),
        ]


class MOSFET(Device):
    """Level-1 (square-law) MOSFET, NMOS by default.

    Piecewise triode/saturation with channel-length modulation; the model
    is C^1 at the region boundaries, which is all Newton needs.  Symmetric
    operation (vds < 0) handled by drain/source swap.
    """

    nonlinear = True

    def __init__(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        kp: float = 2e-4,
        vth: float = 0.5,
        lam: float = 0.0,
        cgs: float = 0.0,
        cgd: float = 0.0,
        polarity: int = 1,
        gmin: float = 1e-12,
        temp: float = 300.0,
    ):
        super().__init__(name, [drain, gate, source])
        self.kp = float(kp)
        self.vth = float(vth)
        self.lam = float(lam)
        self.cgs = float(cgs)
        self.cgd = float(cgd)
        if polarity not in (1, -1):
            raise ValueError(f"{name}: polarity must be +1 (NMOS) or -1 (PMOS)")
        self.polarity = polarity
        self.gmin = float(gmin)
        self.temp = float(temp)

    sens_params = ("kp", "vth", "lam", "cgs", "cgd", "gmin")

    def nl_dfdp(self, V, name):
        p = self.polarity
        vd, vg, vs = V
        m = V.shape[1]
        z = np.zeros(m)
        if name in ("cgs", "cgd"):
            f = np.zeros((3, m))
            if name == "cgs":
                dqs = vg - vs
                return f, np.stack([z, dqs, -dqs])
            dqd = -(vg - vd)
            return f, np.stack([dqd, -dqd, z])
        vds_raw = p * (vd - vs)
        swap = vds_raw < 0.0
        vgs = np.where(swap, p * (vg - vd), p * (vg - vs))
        vds = np.abs(vds_raw)
        if name == "gmin":
            dids = vds
        else:
            ids, gm, _ = self._ids(vgs, vds)
            if name == "kp":
                dids = ids / self.kp
            elif name == "vth":
                dids = -gm
            elif name == "lam":
                dids = ids * vds / (1.0 + self.lam * vds)
            else:
                return super().nl_dfdp(V, name)
        sign = np.where(swap, -1.0, 1.0)
        di_d = p * sign * dids
        return np.stack([di_d, z, -di_d]), np.zeros((3, m))

    def nl_ports(self):
        idx = np.array(self.node_idx)
        return idx, idx

    def _ids(self, vgs, vds):
        """Drain current and partials for vds >= 0 (vectorized)."""
        vov = vgs - self.vth
        on = vov > 0.0
        sat = vds >= vov
        kp, lam = self.kp, self.lam
        clm = 1.0 + lam * vds

        ids_sat = 0.5 * kp * vov**2 * clm
        g_sat = kp * vov * clm
        go_sat = 0.5 * kp * vov**2 * lam

        ids_tri = kp * (vov - 0.5 * vds) * vds * clm
        g_tri = kp * vds * clm
        go_tri = kp * (vov - vds) * clm + kp * (vov - 0.5 * vds) * vds * lam

        ids = np.where(sat, ids_sat, ids_tri)
        gm = np.where(sat, g_sat, g_tri)
        go = np.where(sat, go_sat, go_tri)
        zero = np.zeros_like(ids)
        ids = np.where(on, ids, zero)
        gm = np.where(on, gm, zero)
        go = np.where(on, go, zero)
        return ids, gm, go

    def nl_eval(self, V):
        p = self.polarity
        vd, vg, vs = V
        vds_raw = p * (vd - vs)
        swap = vds_raw < 0.0
        # operate on the electrically equivalent forward device
        vgs = np.where(swap, p * (vg - vd), p * (vg - vs))
        vds = np.abs(vds_raw)
        ids, gm, go = self._ids(vgs, vds)
        ids = ids + self.gmin * vds
        go = go + self.gmin

        m = V.shape[1]
        # current flows drain -> source for the forward device; flip on swap
        sign = np.where(swap, -1.0, 1.0)
        i_d = p * sign * ids
        f = np.stack([i_d, np.zeros(m), -i_d])

        # partials of i_d w.r.t. (vd, vg, vs); polarity cancels as in BJT
        df = np.zeros((3, 3, m))
        # forward: d i/d vd = go ; d i/d vg = gm ; d i/d vs = -(gm+go)
        did_vd = np.where(swap, gm + go, go)
        did_vg = np.where(swap, -gm, gm)
        did_vs = np.where(swap, -go, -(gm + go))
        df[0, 0], df[0, 1], df[0, 2] = did_vd, did_vg, did_vs
        df[2, 0], df[2, 1], df[2, 2] = -did_vd, -did_vg, -did_vs

        # linear gate caps
        qg = self.cgs * (vg - vs) + self.cgd * (vg - vd)
        q = np.stack([-self.cgd * (vg - vd), qg, -self.cgs * (vg - vs)])
        dq = np.zeros((3, 3, m))
        dq[0, 0], dq[0, 1] = self.cgd, -self.cgd
        dq[1, 0], dq[1, 1], dq[1, 2] = -self.cgd, self.cgs + self.cgd, -self.cgs
        dq[2, 1], dq[2, 2] = -self.cgs, self.cgs
        return f, q, df, dq

    def nl_group_key(self):
        return "mosfet"

    @staticmethod
    def _ids_group(vgs, vds, kp, vth, lam):
        # mirrors _ids with (d, 1) parameter columns
        vov = vgs - vth
        on = vov > 0.0
        sat = vds >= vov
        clm = 1.0 + lam * vds

        ids_sat = 0.5 * kp * vov**2 * clm
        g_sat = kp * vov * clm
        go_sat = 0.5 * kp * vov**2 * lam

        ids_tri = kp * (vov - 0.5 * vds) * vds * clm
        g_tri = kp * vds * clm
        go_tri = kp * (vov - vds) * clm + kp * (vov - 0.5 * vds) * vds * lam

        ids = np.where(sat, ids_sat, ids_tri)
        gm = np.where(sat, g_sat, g_tri)
        go = np.where(sat, go_sat, go_tri)
        zero = np.zeros_like(ids)
        ids = np.where(on, ids, zero)
        gm = np.where(on, gm, zero)
        go = np.where(on, go, zero)
        return ids, gm, go

    @classmethod
    def nl_eval_group(cls, devices, V):
        # mirrors nl_eval with a leading device axis
        p = _param_column(devices, "polarity")
        kp = _param_column(devices, "kp")
        vth = _param_column(devices, "vth")
        lam = _param_column(devices, "lam")
        gmin = _param_column(devices, "gmin")
        cgs = _param_column(devices, "cgs")
        cgd = _param_column(devices, "cgd")

        vd, vg, vs = V[:, 0], V[:, 1], V[:, 2]
        vds_raw = p * (vd - vs)
        swap = vds_raw < 0.0
        vgs = np.where(swap, p * (vg - vd), p * (vg - vs))
        vds = np.abs(vds_raw)
        ids, gm, go = cls._ids_group(vgs, vds, kp, vth, lam)
        ids = ids + gmin * vds
        go = go + gmin

        d, m = vds.shape
        sign = np.where(swap, -1.0, 1.0)
        i_d = p * sign * ids
        f = np.stack([i_d, np.zeros((d, m)), -i_d], axis=1)

        df = np.zeros((d, 3, 3, m))
        did_vd = np.where(swap, gm + go, go)
        did_vg = np.where(swap, -gm, gm)
        did_vs = np.where(swap, -go, -(gm + go))
        df[:, 0, 0], df[:, 0, 1], df[:, 0, 2] = did_vd, did_vg, did_vs
        df[:, 2, 0], df[:, 2, 1], df[:, 2, 2] = -did_vd, -did_vg, -did_vs

        qg = cgs * (vg - vs) + cgd * (vg - vd)
        q = np.stack([-cgd * (vg - vd), qg, -cgs * (vg - vs)], axis=1)
        dq = np.zeros((d, 3, 3, m))
        dq[:, 0, 0], dq[:, 0, 1] = cgd, -cgd
        dq[:, 1, 0], dq[:, 1, 1], dq[:, 1, 2] = -cgd, cgs + cgd, -cgs
        dq[:, 2, 1], dq[:, 2, 2] = -cgs, cgs
        return f, q, df, dq

    def noise_sources(self):
        nd, ng, ns = self.node_idx
        p = self.polarity

        def psd(X):
            vd = X[nd] if nd >= 0 else 0.0
            vg = X[ng] if ng >= 0 else 0.0
            vs = X[ns] if ns >= 0 else 0.0
            vgs = p * (np.asarray(vg) - vs)
            vds = np.abs(p * (np.asarray(vd) - vs))
            _, gm, _ = self._ids(np.asarray(vgs), np.asarray(vds))
            # channel thermal noise 4kT (2/3) gm
            return 4.0 * BOLTZMANN * self.temp * (2.0 / 3.0) * gm

        return [
            NoiseSource(f"{self.name}.channel", np.array([nd, ns]), np.array([1.0, -1.0]), psd)
        ]


class NonlinearResistor(Device):
    """Generic two-terminal ``i = i_of_v(v)`` element.

    The caller supplies the current function and its derivative, both
    vectorized.  Used for van der Pol-style negative-resistance cells in
    the oscillator examples.
    """

    nonlinear = True

    def __init__(self, name: str, n1: str, n2: str, i_of_v: Callable, di_dv: Callable):
        super().__init__(name, [n1, n2])
        self.i_of_v = i_of_v
        self.di_dv = di_dv

    def nl_ports(self):
        idx = np.array(self.node_idx)
        return idx, idx

    def nl_eval(self, V):
        v = V[0] - V[1]
        i = np.asarray(self.i_of_v(v), dtype=float)
        g = np.asarray(self.di_dv(v), dtype=float)
        m = V.shape[1]
        f = np.stack([i, -i])
        df = np.empty((2, 2, m))
        df[0, 0], df[0, 1] = g, -g
        df[1, 0], df[1, 1] = -g, g
        q = np.zeros((2, m))
        dq = np.zeros((2, 2, m))
        return f, q, df, dq


class NonlinearCapacitor(Device):
    """Generic two-terminal ``q = q_of_v(v)`` element (e.g. varactor)."""

    nonlinear = True

    def __init__(self, name: str, n1: str, n2: str, q_of_v: Callable, dq_dv: Callable):
        super().__init__(name, [n1, n2])
        self.q_of_v = q_of_v
        self.dq_dv = dq_dv

    def nl_ports(self):
        idx = np.array(self.node_idx)
        return idx, idx

    def nl_eval(self, V):
        v = V[0] - V[1]
        qv = np.asarray(self.q_of_v(v), dtype=float)
        c = np.asarray(self.dq_dv(v), dtype=float)
        m = V.shape[1]
        q = np.stack([qv, -qv])
        dq = np.empty((2, 2, m))
        dq[0, 0], dq[0, 1] = c, -c
        dq[1, 0], dq[1, 1] = -c, c
        f = np.zeros((2, m))
        df = np.zeros((2, 2, m))
        return f, q, df, dq


class SwitchConductance(Device):
    """Voltage-controlled smooth switch, the idealized mixing element.

    Conductance between (n1, n2) swings from ``g_off`` to ``g_on`` as the
    control voltage (cp - cn) crosses zero, with transition sharpness
    ``k`` (1/V):

        g(vc) = g_off + (g_on - g_off) * (1 + tanh(k vc)) / 2
        i     = g(vc) * (v1 - v2)

    This is the canonical double-balanced-mixer core element: strongly
    nonlinear in the (fast) LO control path, linear in the (slow) RF
    signal path — exactly the structure MMFT exploits (paper sec. 2.2).
    """

    nonlinear = True

    def __init__(
        self,
        name: str,
        n1: str,
        n2: str,
        cp: str,
        cn: str,
        g_on: float = 1e-2,
        g_off: float = 1e-9,
        sharpness: float = 20.0,
    ):
        super().__init__(name, [n1, n2, cp, cn])
        self.g_on = float(g_on)
        self.g_off = float(g_off)
        self.sharpness = float(sharpness)

    sens_params = ("g_on", "g_off", "sharpness")

    def nl_dfdp(self, V, name):
        v1, v2, cp, cn = V
        vc = cp - cn
        vs = v1 - v2
        th = np.tanh(self.sharpness * vc)
        if name == "g_on":
            dg = 0.5 * (1.0 + th)
        elif name == "g_off":
            dg = 0.5 * (1.0 - th)
        elif name == "sharpness":
            dg = (self.g_on - self.g_off) * 0.5 * vc * (1.0 - th**2)
        else:
            return super().nl_dfdp(V, name)
        di = dg * vs
        return np.stack([di, -di]), np.zeros((2, V.shape[1]))

    def nl_ports(self):
        idx = np.array(self.node_idx)
        return idx, idx[:2]

    def conductance(self, vc):
        th = np.tanh(self.sharpness * vc)
        g = self.g_off + (self.g_on - self.g_off) * 0.5 * (1.0 + th)
        dg = (self.g_on - self.g_off) * 0.5 * self.sharpness * (1.0 - th**2)
        return g, dg

    def nl_eval(self, V):
        v1, v2, cp, cn = V
        vc = cp - cn
        vs = v1 - v2
        g, dg = self.conductance(vc)
        i = g * vs
        m = V.shape[1]
        f = np.stack([i, -i])
        df = np.empty((2, 4, m))
        df[0, 0], df[0, 1] = g, -g
        df[0, 2], df[0, 3] = dg * vs, -dg * vs
        df[1] = -df[0]
        q = np.zeros((2, m))
        dq = np.zeros((2, 4, m))
        return f, q, df, dq

    def nl_group_key(self):
        return "switch"

    @classmethod
    def nl_eval_group(cls, devices, V):
        # mirrors nl_eval/conductance with a leading device axis
        g_on = _param_column(devices, "g_on")
        g_off = _param_column(devices, "g_off")
        sharpness = _param_column(devices, "sharpness")
        v1, v2, cp, cn = V[:, 0], V[:, 1], V[:, 2], V[:, 3]
        vc = cp - cn
        vs = v1 - v2
        th = np.tanh(sharpness * vc)
        g = g_off + (g_on - g_off) * 0.5 * (1.0 + th)
        dg = (g_on - g_off) * 0.5 * sharpness * (1.0 - th**2)
        i = g * vs
        d, m = vc.shape
        f = np.stack([i, -i], axis=1)
        df = np.empty((d, 2, 4, m))
        df[:, 0, 0], df[:, 0, 1] = g, -g
        df[:, 0, 2], df[:, 0, 3] = dg * vs, -dg * vs
        df[:, 1] = -df[:, 0]
        q = np.zeros((d, 2, m))
        dq = np.zeros((d, 2, 4, m))
        return f, q, df, dq
