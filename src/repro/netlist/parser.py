"""SPICE-flavoured netlist parser.

Supports the element cards needed by the paper's example circuits:

    R<name> n1 n2 value
    C<name> n1 n2 value
    L<name> n1 n2 value
    K<name> L1 L2 k
    V<name> n+ n- [dc] value | SIN(off amp freq [phase_deg]) | PULSE(v1 v2 td tr tf pw per)
    I<name> n+ n- (same source syntax)
    D<name> anode cathode [IS=..] [N=..] [TT=..] [CJ0=..]
    Q<name> c b e [IS=..] [BF=..] [BR=..] [TF=..] [CJE=..] [CJC=..] [PNP]
    M<name> d g s [KP=..] [VTH=..] [LAMBDA=..] [CGS=..] [CGD=..] [PMOS]
    E<name> out+ out- ctl+ ctl- gain        (VCVS)
    G<name> out+ out- ctl+ ctl- gm          (VCCS)
    X<name> n1 n2 ... subckt_name           (subcircuit instance)

Subcircuits are defined with ``.subckt <name> <ports...>`` ... ``.ends``
and expanded textually at instantiation: internal nodes and device names
are prefixed with the instance path (``x1.mid``, ``x1.R1``), so nested
hierarchies flatten naturally.

Unit suffixes: f p n u m k meg g t.  ``*`` and ``;`` start comments,
``+`` continues the previous card, ``.end`` stops parsing.  This is a
substrate convenience — the benchmark circuits are built with the Python
API — but it makes the library usable the way designers drove the
original tools.

Every :class:`NetlistError` carries the 1-based source ``line_no`` (of
the card's first physical line, before continuation joining) and the
``filename`` when one was passed to :func:`parse_netlist`, so a bad card
in a thousand-line deck reports ``deck.cir:412`` instead of just the raw
card text.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.netlist.circuit import Circuit
from repro.netlist.waveforms import DC, Pulse, Sine

__all__ = ["parse_netlist", "parse_value", "NetlistError"]


class NetlistError(ValueError):
    """Raised on malformed netlist input.

    Attributes
    ----------
    line_no:
        1-based line number of the offending card in the original text
        (the first physical line when the card used ``+`` continuations),
        or ``None`` when the error is not tied to a line.
    filename:
        The deck's filename as given to :func:`parse_netlist`, or ``None``.
    """

    def __init__(
        self,
        message: str,
        line_no: Optional[int] = None,
        filename: Optional[str] = None,
    ):
        self.line_no = line_no
        self.filename = filename
        if line_no is not None and filename:
            loc = f"{filename}:{line_no}: "
        elif line_no is not None:
            loc = f"line {line_no}: "
        elif filename:
            loc = f"{filename}: "
        else:
            loc = ""
        super().__init__(loc + message)


def _located(exc: Exception, line_no: Optional[int], filename: Optional[str]) -> NetlistError:
    """Wrap/annotate an exception with source location.

    A :class:`NetlistError` that already knows its line keeps it; bare
    errors (including device-constructor ``ValueError``) get the card's.
    """
    if isinstance(exc, NetlistError) and exc.line_no is not None:
        return exc
    msg = exc.args[0] if exc.args else str(exc)
    return NetlistError(str(msg), line_no=line_no, filename=filename)


_SUFFIX = {
    "f": 1e-15,
    "p": 1e-12,
    "n": 1e-9,
    "u": 1e-6,
    "m": 1e-3,
    "k": 1e3,
    "meg": 1e6,
    "g": 1e9,
    "t": 1e12,
}

_VALUE_RE = re.compile(r"^([+-]?[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)([a-zA-Z]*)$")


def parse_value(token: str) -> float:
    """Parse a SPICE number like ``4.7k``, ``100n``, ``1meg``."""
    match = _VALUE_RE.match(token.strip())
    if not match:
        raise NetlistError(f"cannot parse value {token!r}")
    base = float(match.group(1))
    suffix = match.group(2).lower()
    if not suffix:
        return base
    if suffix.startswith("meg"):
        return base * 1e6
    if suffix[0] in _SUFFIX:
        return base * _SUFFIX[suffix[0]]
    # trailing unit letters like "5v" or "10hz" -- ignore the unit
    return base


#: a logical card: (text, 1-based line number of its first physical line)
_Card = Tuple[str, int]


def _join_continuations(text: str) -> List[_Card]:
    lines: List[_Card] = []
    for no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0].rstrip()
        if not line.strip() or line.lstrip().startswith("*"):
            continue
        if line.lstrip().startswith("+") and lines:
            prev, prev_no = lines[-1]
            lines[-1] = (prev + " " + line.lstrip()[1:], prev_no)
        else:
            lines.append((line.strip(), no))
    return lines


def _parse_kwargs(tokens: List[str]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for tok in tokens:
        if "=" not in tok:
            raise NetlistError(f"expected key=value, got {tok!r}")
        key, val = tok.split("=", 1)
        out[key.lower()] = parse_value(val)
    return out


def _parse_source(tokens: List[str]):
    """Parse the waveform part of a V/I card."""
    joined = " ".join(tokens)
    m = re.search(r"(sin|pulse)\s*\(([^)]*)\)", joined, re.IGNORECASE)
    if m:
        kind = m.group(1).lower()
        args = [parse_value(t) for t in m.group(2).replace(",", " ").split()]
        if kind == "sin":
            if len(args) < 3:
                raise NetlistError(f"SIN needs at least 3 arguments, got {len(args)}")
            off, amp, freq = args[0], args[1], args[2]
            phase = args[3] * 3.141592653589793 / 180.0 if len(args) > 3 else 0.0
            return Sine(amplitude=amp, freq=freq, phase=phase, offset=off)
        if len(args) < 7:
            raise NetlistError(f"PULSE needs 7 arguments, got {len(args)}")
        v1, v2, td, tr, tf, pw, per = args[:7]
        return Pulse(v1=v1, v2=v2, delay=td, rise=tr, fall=tf, width=pw, period=per)
    # plain DC: "[dc] value"
    toks = [t for t in tokens if t.lower() != "dc"]
    if not toks:
        return DC(0.0)
    return DC(parse_value(toks[0]))


def _collect_subcircuits(cards: List[_Card], filename: Optional[str] = None):
    """Split out .subckt definitions; returns (top_cards, subckts).

    ``subckts`` maps a lower-cased name to ``(ports, body_cards)``.
    Definitions may nest instances of earlier definitions but not other
    definitions.
    """
    subckts: Dict[str, tuple] = {}
    top: List[_Card] = []
    current: Optional[str] = None
    current_no = 0
    body: List[_Card] = []
    for line, no in cards:
        tokens = line.split()
        low = tokens[0].lower()
        if low == ".subckt":
            if current is not None:
                raise NetlistError(
                    "nested .subckt definitions are not supported",
                    line_no=no, filename=filename,
                )
            if len(tokens) < 3:
                raise NetlistError(
                    ".subckt needs a name and at least one port",
                    line_no=no, filename=filename,
                )
            current = tokens[1].lower()
            current_no = no
            subckts[current] = (tokens[2:], [])
            body = subckts[current][1]
        elif low == ".ends":
            if current is None:
                raise NetlistError(
                    ".ends without .subckt", line_no=no, filename=filename
                )
            current = None
        elif current is not None:
            body.append((line, no))
        else:
            top.append((line, no))
    if current is not None:
        raise NetlistError(
            f"unterminated .subckt {current!r}",
            line_no=current_no, filename=filename,
        )
    return top, subckts


def _expand_instances(
    cards: List[_Card],
    subckts,
    prefix: str = "",
    depth: int = 0,
    filename: Optional[str] = None,
) -> List[_Card]:
    """Recursively expand X cards by textual substitution.

    Expanded body cards keep the line number of the body line they came
    from, so an error inside a subcircuit points at its definition.
    """
    if depth > 20:
        raise NetlistError("subcircuit recursion deeper than 20 levels")
    out: List[_Card] = []
    for line, no in cards:
        tokens = line.split()
        if tokens[0][0].upper() != "X":
            if prefix:
                # rename the device and its non-ground, non-port nodes
                tokens = list(tokens)
                tokens[0] = prefix + tokens[0]
                out.append((" ".join(tokens), no))
            else:
                out.append((line, no))
            continue
        inst = tokens[0]
        name = tokens[-1].lower()
        if name not in subckts:
            raise NetlistError(
                f"unknown subcircuit {tokens[-1]!r} in card {line!r}",
                line_no=no, filename=filename,
            )
        ports, body = subckts[name]
        actuals = tokens[1:-1]
        if len(actuals) != len(ports):
            raise NetlistError(
                f"{inst}: subcircuit {name!r} has {len(ports)} ports, "
                f"got {len(actuals)} connections",
                line_no=no, filename=filename,
            )
        mapping = dict(zip(ports, actuals))
        inst_prefix = f"{prefix}{inst}."
        renamed: List[_Card] = []
        for body_line, body_no in body:
            btok = body_line.split()
            card_kind = btok[0][0].upper()
            node_count = _NODE_COUNT.get(card_kind)
            new_tok = [btok[0]]
            for pos, tok in enumerate(btok[1:], start=1):
                is_node = node_count is not None and pos <= node_count
                if card_kind == "X" and pos < len(btok) - 1:
                    is_node = True
                if is_node:
                    if tok in mapping:
                        new_tok.append(mapping[tok])
                    elif tok in GROUND_NAMES_LOCAL:
                        new_tok.append(tok)
                    else:
                        new_tok.append(inst_prefix + tok)
                elif card_kind == "K" and pos <= 2:
                    new_tok.append(inst_prefix + tok)  # inductor references
                else:
                    new_tok.append(tok)
            renamed.append((" ".join(new_tok), body_no))
        out.extend(
            _expand_instances(renamed, subckts, inst_prefix, depth + 1, filename)
        )
    return out


#: how many leading tokens after the card name are node names, per card type
_NODE_COUNT = {
    "R": 2, "C": 2, "L": 2, "V": 2, "I": 2, "D": 2,
    "Q": 3, "M": 3, "E": 4, "G": 4, "K": 0,
}
GROUND_NAMES_LOCAL = {"0", "gnd", "GND", "ground"}


def parse_netlist(
    text: str, title: Optional[str] = None, filename: Optional[str] = None
) -> Circuit:
    """Parse netlist text into a :class:`Circuit` (not yet compiled).

    ``filename`` is used only for error reporting: every
    :class:`NetlistError` raised from a card carries ``filename:line_no``.
    """
    cards = _join_continuations(text)
    if cards:
        first = cards[0][0]
        looks_like_card = (
            first[0].upper() in "RCLKVIDQMEGX." and len(first.split()) >= 3
        )
        if not looks_like_card:
            # first line is a title card
            title = title or first
            cards = cards[1:]
    # cut at .end before structural passes
    cut: List[_Card] = []
    for line, no in cards:
        if line.split()[0].lower() == ".end":
            break
        cut.append((line, no))
    top, subckts = _collect_subcircuits(cut, filename)
    cards = _expand_instances(top, subckts, filename=filename)
    ckt = Circuit(title or "netlist")

    for line, no in cards:
        tokens = line.split()
        card = tokens[0]
        # hierarchical names like "x1.R3" type by their last path segment
        kind = card.rsplit(".", 1)[-1][0].upper()
        if card[0] == ".":
            kind = "."
        if kind == ".":
            if card.lower() in (".end", ".ends"):
                break
            continue  # ignore other dot-cards

        try:
            if kind == "R":
                ckt.resistor(card, tokens[1], tokens[2], parse_value(tokens[3]))
            elif kind == "C":
                ckt.capacitor(card, tokens[1], tokens[2], parse_value(tokens[3]))
            elif kind == "L":
                ckt.inductor(card, tokens[1], tokens[2], parse_value(tokens[3]))
            elif kind == "K":
                ckt.mutual(card, tokens[1], tokens[2], parse_value(tokens[3]))
            elif kind == "V":
                ckt.vsource(card, tokens[1], tokens[2], _parse_source(tokens[3:]))
            elif kind == "I":
                ckt.isource(card, tokens[1], tokens[2], _parse_source(tokens[3:]))
            elif kind == "D":
                kw = _parse_kwargs(tokens[3:])
                ckt.diode(
                    card,
                    tokens[1],
                    tokens[2],
                    isat=kw.get("is", 1e-14),
                    ideality=kw.get("n", 1.0),
                    tt=kw.get("tt", 0.0),
                    cj0=kw.get("cj0", 0.0),
                )
            elif kind == "Q":
                flags = [t for t in tokens[4:] if "=" not in t]
                kw = _parse_kwargs([t for t in tokens[4:] if "=" in t])
                ckt.bjt(
                    card,
                    tokens[1],
                    tokens[2],
                    tokens[3],
                    isat=kw.get("is", 1e-16),
                    beta_f=kw.get("bf", 100.0),
                    beta_r=kw.get("br", 1.0),
                    tf=kw.get("tf", 0.0),
                    cje=kw.get("cje", 0.0),
                    cjc=kw.get("cjc", 0.0),
                    polarity=-1 if any(f.lower() == "pnp" for f in flags) else 1,
                )
            elif kind == "M":
                flags = [t for t in tokens[4:] if "=" not in t]
                kw = _parse_kwargs([t for t in tokens[4:] if "=" in t])
                ckt.mosfet(
                    card,
                    tokens[1],
                    tokens[2],
                    tokens[3],
                    kp=kw.get("kp", 2e-4),
                    vth=kw.get("vth", 0.5),
                    lam=kw.get("lambda", 0.0),
                    cgs=kw.get("cgs", 0.0),
                    cgd=kw.get("cgd", 0.0),
                    polarity=-1 if any(f.lower() == "pmos" for f in flags) else 1,
                )
            elif kind == "E":
                ckt.vcvs(card, tokens[1], tokens[2], tokens[3], tokens[4], parse_value(tokens[5]))
            elif kind == "G":
                ckt.vccs(card, tokens[1], tokens[2], tokens[3], tokens[4], parse_value(tokens[5]))
            else:
                raise NetlistError(f"unknown element type {card!r}")
        except IndexError as exc:
            raise NetlistError(
                f"too few fields on card: {line!r}", line_no=no, filename=filename
            ) from exc
        except KeyError as exc:
            # Circuit.mutual raises KeyError on an unknown inductor name
            raise NetlistError(
                f"card {card!r} references unknown device {exc.args[0]!r}",
                line_no=no, filename=filename,
            ) from exc
        except (NetlistError, ValueError) as exc:
            # device constructors raise plain ValueError on bad element
            # values — annotate them all with the source line
            raise _located(exc, no, filename) from exc
    return ckt
